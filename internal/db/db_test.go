package db

import (
	"os"
	"path/filepath"
	"testing"

	"cbes/internal/cluster"
	"cbes/internal/netmodel"
	"cbes/internal/profile"
	"cbes/internal/trace"
)

func TestModelRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewTestTopology()
	m := netmodel.New(topo)
	m.SetClass("loop|alpha", netmodel.Class{
		Curve: netmodel.Curve{Sizes: []int64{64}, Lat: []float64{1e-5}},
		Pairs: 4,
	})
	if err := s.SaveModel(m); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadModel("testnet")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Attach(topo); err != nil {
		t.Fatal(err)
	}
	if got.Classes["loop|alpha"].Pairs != 4 {
		t.Fatalf("round trip lost data: %+v", got.Classes)
	}
}

func TestProfileRoundTripAndList(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"lu.B.8", "hpl/10000", "aztec 8"} {
		p := &profile.Profile{
			App:     app,
			Cluster: "orange-grove",
			Ranks:   8,
			Mapping: []int{0, 1, 2, 3, 4, 5, 6, 7},
			ArchSpeed: map[cluster.Arch]float64{
				cluster.ArchAlpha: 1.0,
			},
			Segments: []profile.SegmentProfile{{
				Name: "main",
				Procs: []profile.ProcProfile{{
					Rank: 0, X: 1, O: 0.1, B: 0.2,
					Sends: []trace.MsgGroup{{Peer: 1, Size: 4096, Count: 3}},
				}},
			}},
		}
		if err := s.SaveProfile(p); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadProfile(app)
		if err != nil {
			t.Fatal(err)
		}
		if got.App != app || got.Segments[0].Procs[0].Sends[0].Count != 3 {
			t.Fatalf("round trip: %+v", got)
		}
	}
	names, err := s.ListProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("profiles = %v", names)
	}
}

func TestLoadMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.LoadModel("nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := s.LoadProfile("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSanitizeKeepsFilesInsideStore(t *testing.T) {
	s, _ := Open(t.TempDir())
	p := &profile.Profile{App: "../../evil", Cluster: "c", Ranks: 1, Mapping: []int{0}}
	if err := s.SaveProfile(p); err != nil {
		t.Fatal(err)
	}
	// The file must be inside the store's apps dir.
	entries, _ := os.ReadDir(filepath.Join(s.Dir(), "apps"))
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	outside := filepath.Join(s.Dir(), "..", "evil.profile.json")
	if _, err := os.Stat(outside); err == nil {
		t.Fatal("path traversal escaped the store")
	}
}

func TestAtomicOverwrite(t *testing.T) {
	s, _ := Open(t.TempDir())
	p := &profile.Profile{App: "a", Cluster: "c", Ranks: 1, Mapping: []int{0}}
	if err := s.SaveProfile(p); err != nil {
		t.Fatal(err)
	}
	p.Ranks = 2
	p.Mapping = []int{0, 1}
	if err := s.SaveProfile(p); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadProfile("a")
	if err != nil {
		t.Fatal(err)
	}
	if got.Ranks != 2 {
		t.Fatalf("overwrite lost update: %+v", got)
	}
}
