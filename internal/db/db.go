// Package db implements the database component of the CBES infrastructure
// (§2): file-backed stores for the system profile (the calibrated network
// latency model) and application profiles, so the expensive off-line
// calibration and profiling phases run once and their results are reused
// across service restarts.
package db

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cbes/internal/netmodel"
	"cbes/internal/profile"
)

// Store is a directory-backed CBES database.
type Store struct {
	dir string
}

// Open creates (if necessary) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"system", "apps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("db: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) modelPath(cluster string) string {
	return filepath.Join(s.dir, "system", sanitize(cluster)+".model.json")
}

func (s *Store) profilePath(app string) string {
	return filepath.Join(s.dir, "apps", sanitize(app)+".profile.json")
}

// sanitize makes a name safe as a file stem.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// SaveModel persists a calibrated network model under its cluster name.
func (s *Store) SaveModel(m *netmodel.Model) error {
	return writeAtomic(s.modelPath(m.ClusterName), m.Encode)
}

// LoadModel reads the model calibrated for the named cluster. The caller
// must Attach it to the topology before use.
func (s *Store) LoadModel(cluster string) (*netmodel.Model, error) {
	f, err := os.Open(s.modelPath(cluster))
	if err != nil {
		return nil, fmt.Errorf("db: load model: %w", err)
	}
	defer f.Close()
	return netmodel.Decode(f)
}

// SaveProfile persists an application profile under its app name.
func (s *Store) SaveProfile(p *profile.Profile) error {
	return writeAtomic(s.profilePath(p.App), p.Encode)
}

// LoadProfile reads the profile of the named application.
func (s *Store) LoadProfile(app string) (*profile.Profile, error) {
	f, err := os.Open(s.profilePath(app))
	if err != nil {
		return nil, fmt.Errorf("db: load profile: %w", err)
	}
	defer f.Close()
	return profile.Decode(f)
}

// ListProfiles returns the names of all stored application profiles,
// sorted.
func (s *Store) ListProfiles() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "apps"))
	if err != nil {
		return nil, fmt.Errorf("db: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".profile.json") {
			names = append(names, strings.TrimSuffix(name, ".profile.json"))
		}
	}
	sort.Strings(names)
	return names, nil
}

// writeAtomic writes via a temp file + rename so readers never observe a
// torn file.
func writeAtomic(path string, encode func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("db: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("db: encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("db: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("db: %w", err)
	}
	return nil
}
