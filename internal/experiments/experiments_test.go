package experiments

import (
	"strings"
	"sync"
	"testing"

	"cbes/internal/stats"
)

// The experiment drivers are exercised at tiny scale: these tests verify
// the *shape* of every reproduced result (who wins, zone ordering,
// sensitivity directions), not absolute numbers. cmd/experiments runs the
// full-scale versions.

var (
	labOnce sync.Once
	sharedL *Lab
)

func lab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() { sharedL = NewLab(Config{Seed: 42}) })
	return sharedL
}

func tinyCfg() Config { return Config{Seed: 42, Scale: 0.01} }

func TestFig6ZoneOrdering(t *testing.T) {
	l := lab(t)
	res := Fig6LUZones(l, tinyCfg())
	if len(res.Zones) != 3 {
		t.Fatalf("zones = %d", len(res.Zones))
	}
	h, m, lo := res.Zones[0], res.Zones[1], res.Zones[2]
	// Three distinct zones: high faster than medium faster than low.
	if !(h.Max < m.Min) {
		t.Fatalf("high zone [%v,%v] overlaps medium [%v,%v]", h.Min, h.Max, m.Min, m.Max)
	}
	if !(m.Max < lo.Min) {
		t.Fatalf("medium zone [%v,%v] overlaps low [%v,%v]", m.Min, m.Max, lo.Min, lo.Max)
	}
	// Zones have width (the communication effect).
	for _, z := range res.Zones {
		if z.Max-z.Min <= 0 {
			t.Fatalf("zone %s has no width", z.Name)
		}
	}
	if !strings.Contains(res.Render(), "zones") {
		t.Fatal("render broken")
	}
}

func TestTable1SpeedupsPositive(t *testing.T) {
	l := lab(t)
	res := Table1(l, tinyCfg())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.BestTime >= row.WorstTime {
			t.Fatalf("%s: best %v !< worst %v", row.Case, row.BestTime, row.WorstTime)
		}
		// Within-zone speedups: positive, single-digit-percent scale
		// (paper: 5.3-9.3%; our pipelined-wavefront model realizes a
		// smaller but clearly positive effect — see EXPERIMENTS.md).
		if row.SpeedupPct < 0.5 || row.SpeedupPct > 25 {
			t.Fatalf("%s: speedup %.1f%% outside plausible band", row.Case, row.SpeedupPct)
		}
	}
	// Cross-zone max speedup is far larger than within-zone ones
	// (paper: 36.6%).
	if res.MaxVsRandomPct < 20 || res.MaxVsRandomPct > 60 {
		t.Fatalf("max vs random = %.1f%%, want ≈30-45%%", res.MaxVsRandomPct)
	}
}

func TestTable2CSBeatsNCS(t *testing.T) {
	l := lab(t)
	cfg := Config{Seed: 42, Scale: 0.06} // a few runs per scheduler
	res := Table2(l, cfg)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < 3; i++ {
		cs, ncs := res.Rows[2*i], res.Rows[2*i+1]
		if cs.Scheduler != "CS" || ncs.Scheduler != "NCS" {
			t.Fatal("row order broken")
		}
		if cs.AvgPredicted > ncs.AvgPredicted*1.001 {
			t.Fatalf("%s: CS avg predicted %v worse than NCS %v", cs.Case, cs.AvgPredicted, ncs.AvgPredicted)
		}
		if cs.HitsPct < ncs.HitsPct {
			t.Fatalf("%s: CS hits %v%% < NCS hits %v%%", cs.Case, cs.HitsPct, ncs.HitsPct)
		}
	}
	// CS hit rate high in at least two zones; NCS low overall.
	goodZones := 0
	for i := 0; i < 3; i++ {
		if res.Rows[2*i].HitsPct >= 60 {
			goodZones++
		}
	}
	if goodZones < 2 {
		t.Fatalf("CS hit rates too low: %v %v %v",
			res.Rows[0].HitsPct, res.Rows[2].HitsPct, res.Rows[4].HitsPct)
	}

	// Figure 7 from the same data.
	f7 := Fig7(res)
	if f7.CS.Total() == 0 || f7.NCS.Total() == 0 {
		t.Fatal("fig7 histograms empty")
	}
	// CS mass concentrates in the lower half; NCS in the upper half.
	lowerCS := lowerHalfFraction(f7.CS)
	lowerNCS := lowerHalfFraction(f7.NCS)
	if lowerCS <= lowerNCS {
		t.Fatalf("CS lower-half mass %.2f not above NCS %.2f", lowerCS, lowerNCS)
	}
	if !strings.Contains(f7.Render(), "#") {
		t.Fatal("fig7 render broken")
	}
}

func lowerHalfFraction(h *stats.Histogram) float64 {
	lower := 0
	for i := 0; i < len(h.Counts)/2; i++ {
		lower += h.Counts[i]
	}
	total := h.Total()
	if total == 0 {
		return 0
	}
	return float64(lower) / float64(total)
}

func TestPhase1SweepShape(t *testing.T) {
	l := lab(t)
	res := Phase1Sweep(l, tinyCfg())
	if res.Cases < 20 {
		t.Fatalf("cases = %d", res.Cases)
	}
	// The prediction formulation holds across the sweep: most cases within
	// the paper's 4% band, overall mean low.
	if res.FracWithin4 < 0.6 {
		t.Fatalf("only %.0f%% of cases within 4%% error", res.FracWithin4*100)
	}
	if res.MeanErr > 5 {
		t.Fatalf("mean error %.2f%% too high", res.MeanErr)
	}
	if res.P95Err < res.MeanErr {
		t.Fatal("p95 below mean")
	}
	if !strings.Contains(res.Render(), "Phase 1") {
		t.Fatal("render broken")
	}
}

func TestFig5PredictionErrors(t *testing.T) {
	l := lab(t)
	res := Fig5(l, tinyCfg())
	if len(res.Cases) < 3 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	for _, c := range res.Cases {
		if c.MeanErr > 10 {
			t.Fatalf("%s: prediction error %.2f%% far above the paper's <4%% band", c.Name, c.MeanErr)
		}
		if c.Predicted <= 0 || c.MeanTime <= 0 {
			t.Fatalf("%s: degenerate times", c.Name)
		}
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Fatal("render broken")
	}
}

func TestPhase3ErrorGrowsWithLoad(t *testing.T) {
	l := lab(t)
	res := Phase3LoadSensitivity(l, tinyCfg())
	e0 := res.MeanErrAtLoad(0)
	e10 := res.MeanErrAtLoad(10)
	e30 := res.MeanErrAtLoad(30)
	if e0 > 5 {
		t.Fatalf("no-load error %.2f%% too high", e0)
	}
	if e10 <= e0 {
		t.Fatalf("10%% load error %.2f%% not above base %.2f%%", e10, e0)
	}
	if e30 <= e10 {
		t.Fatalf("error not monotone: %.2f%% at 30%% vs %.2f%% at 10%%", e30, e10)
	}
	if e30 < 4 {
		t.Fatalf("30%% load error %.2f%% should exceed the 4%% ceiling", e30)
	}
	// With the load visible in the snapshot, the error must on average be
	// clearly smaller than with a stale snapshot at the same load level
	// (the formula handles known load; stale conditions are what
	// invalidate predictions). Per-program exceptions exist: LU in its
	// latency-bound regime absorbs single-node CPU load in the wavefront
	// pipeline, which the R-term correction cannot know.
	staleAt30 := res.MeanErrAtLoad(30)
	var knownSum float64
	var knownN int
	for _, row := range res.Rows {
		if !row.Stale {
			knownSum += row.MeanErr
			knownN++
		}
	}
	if knownN == 0 {
		t.Fatal("no known-load control rows")
	}
	if knownMean := knownSum / float64(knownN); knownMean >= staleAt30 {
		t.Fatalf("known-load mean error %.2f%% not below stale error %.2f%%", knownMean, staleAt30)
	}
}

func TestTable3UncertainCases(t *testing.T) {
	l := lab(t)
	res := Table3(l, tinyCfg())
	byName := map[string]Table3Row{}
	for _, row := range res.Rows {
		byName[row.Case] = row
	}
	// Towhee (embarrassingly parallel) must be uncertain.
	if !byName["towhee.8"].Uncertain {
		t.Fatalf("towhee speedup %.1f%% should be uncertain", byName["towhee.8"].SpeedupPct)
	}
	// Aztec (latency-bound solver) must show a clear speedup.
	if az := byName["aztec.8"]; az.Uncertain || az.SpeedupPct < 4 {
		t.Fatalf("aztec speedup %.1f%% too small", az.SpeedupPct)
	}
	// smg2000 and HPL(5000+) show real speedups.
	for _, name := range []string{"smg2000.50.8", "smg2000.60.8", "hpl.10000.8"} {
		if row := byName[name]; row.SpeedupPct < 1.5 {
			t.Fatalf("%s speedup %.1f%% too small", name, row.SpeedupPct)
		}
	}
}

func TestAblationShapes(t *testing.T) {
	l := lab(t)
	res := Ablations(l, tinyCfg())
	// λ correction must help on the latency-bound Aztec.
	if res.LambdaOnErr >= res.LambdaOffErr {
		t.Fatalf("λ correction did not help: on %.2f%% vs off %.2f%%",
			res.LambdaOnErr, res.LambdaOffErr)
	}
	// The class model must be competitive with O(N²) calibration while
	// using far fewer measurements.
	if res.ClassCount >= res.PairCount/4 {
		t.Fatalf("class count %d not far below pair count %d", res.ClassCount, res.PairCount)
	}
	if res.ClassModelErr > res.AllPairsModelErr+3 {
		t.Fatalf("class model err %.2f%% much worse than all-pairs %.2f%%",
			res.ClassModelErr, res.AllPairsModelErr)
	}
	// The adaptive forecaster must beat last-value on a volatile series.
	if res.NWSRMSE >= res.LastValueRMSE {
		t.Fatalf("NWS RMSE %.4f not below last-value %.4f", res.NWSRMSE, res.LastValueRMSE)
	}
	// Scheduler ordering: CS close to optimal, RS clearly worse.
	if res.SchedulerGapPct["cs"] > 2 {
		t.Fatalf("CS gap to optimum %.2f%% too large", res.SchedulerGapPct["cs"])
	}
	if res.SchedulerGapPct["rs"] <= res.SchedulerGapPct["cs"] {
		t.Fatalf("RS gap %.2f%% not above CS gap %.2f%%",
			res.SchedulerGapPct["rs"], res.SchedulerGapPct["cs"])
	}
	if !strings.Contains(res.Render(), "λ") {
		t.Fatal("render broken")
	}
}

func TestHeadlineShapes(t *testing.T) {
	l := lab(t)
	res := Headline(l, tinyCfg())
	if res.GroveSpreadPct < 35 || res.GroveSpreadPct > 120 {
		t.Fatalf("grove spread %.1f%% out of band (paper ≈54%%)", res.GroveSpreadPct)
	}
	if res.CenturionSpreadPct < 8 || res.CenturionSpreadPct > 35 {
		t.Fatalf("centurion spread %.1f%% out of band (paper ≈13%%)", res.CenturionSpreadPct)
	}
	if res.GroveSpreadPct <= res.CenturionSpreadPct {
		t.Fatal("grove must be more heterogeneous than centurion")
	}
	if res.BestVsRandomAvgPct < 10 || res.BestVsRandomAvgPct > 50 {
		t.Fatalf("best vs random avg %.1f%% out of band (paper ≈30%%)", res.BestVsRandomAvgPct)
	}
	if res.BestVsRandomMaxPct <= res.BestVsRandomAvgPct {
		t.Fatal("max speedup must exceed average speedup")
	}
}

func TestFaultToleranceShapes(t *testing.T) {
	l := lab(t)
	res := FaultTolerance(l, tinyCfg())
	if len(res.Steps) < 6 {
		t.Fatalf("steps = %d, want >= 6", len(res.Steps))
	}
	// The schedule must have disturbed the cluster in view of the monitor.
	sawDown := false
	for _, s := range res.Steps {
		if s.Down > 0 {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatal("no observation step saw a down node")
	}
	// The targeted crash hits the running application's mapping: the
	// advisor must have evacuated at least once.
	if res.Evacuations < 1 {
		t.Fatalf("evacuations = %d, want >= 1", res.Evacuations)
	}
	if res.TotalFaults < 4 {
		t.Fatalf("only %d faults fired", res.TotalFaults)
	}
	// CS picks near-best healthy mappings; random selection pays for it.
	if res.MeanRSPenaltyPct <= 0 {
		t.Fatalf("mean RS penalty %.1f%%, want > 0", res.MeanRSPenaltyPct)
	}
	out := res.Render()
	if !strings.Contains(out, "evacuate") || !strings.Contains(out, "faults injected") {
		t.Fatalf("render broken:\n%s", out)
	}
}
