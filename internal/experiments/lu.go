package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cbes/internal/accuracy"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/monitor"
	"cbes/internal/parfor"
	"cbes/internal/schedule"
	"cbes/internal/stats"
)

// zoneSpec describes one of the three §6.1 node groups.
type zoneSpec struct {
	Name string
	Pool []int
	// Requires is the architecture that must appear in a sampled mapping
	// for it to represent this zone ("" = no constraint).
	Requires cluster.Arch
}

// luZones builds the three zones: high (Alpha only), medium (Alpha+Intel,
// Intel present), low (all architectures, SPARC present).
func (l *Lab) luZones() []zoneSpec {
	high, med, low := l.groveGroups()
	return []zoneSpec{
		{Name: "LU(1) high-speed (A)", Pool: high},
		{Name: "LU(2) medium-speed (A+I)", Pool: med, Requires: cluster.ArchIntel},
		{Name: "LU(3) low-speed (A+I+S)", Pool: low, Requires: cluster.ArchSPARC},
	}
}

// sampleZoneMapping draws a random mapping that represents the zone.
func (l *Lab) sampleZoneMapping(z zoneSpec, ranks int, rng *rand.Rand) []int {
	for {
		m := pickMapping(z.Pool, ranks, rng)
		if z.Requires == "" {
			return m
		}
		for _, n := range m {
			if l.GroveTopo.Node(n).Arch == z.Requires {
				return m
			}
		}
	}
}

// zoneRequest builds a scheduling request over the zone pool, constrained
// to zone-representative mappings (the defining architecture must appear).
func (l *Lab) zoneRequest(e *core.Evaluator, z zoneSpec, seed int64, effort int, maximize bool) *schedule.Request {
	var constraint func(core.Mapping) bool
	if z.Requires != "" {
		req := z.Requires
		topo := l.GroveTopo
		constraint = func(m core.Mapping) bool {
			for _, n := range m {
				if topo.Node(n).Arch == req {
					return true
				}
			}
			return false
		}
	}
	return &schedule.Request{
		Eval:       e,
		Snap:       monitor.IdleSnapshot(l.GroveTopo.NumNodes()),
		Pool:       z.Pool,
		Seed:       seed,
		Effort:     effort,
		Maximize:   maximize,
		Constraint: constraint,
	}
}

// Fig6Zone is one execution-time zone of figure 6.
type Fig6Zone struct {
	Name     string
	Mappings int
	Times    []float64
	Min, Max float64
	Mean     float64
}

// Fig6Result reproduces figure 6: measured LU execution-time ranges on 8
// Orange Grove nodes for the high/medium/low speed groups — three distinct
// zones whose offsets come from node compute speeds and whose widths come
// from communication.
type Fig6Result struct {
	Zones []Fig6Zone
}

// Fig6LUZones samples representative mappings per zone and measures them.
func Fig6LUZones(l *Lab, cfg Config) *Fig6Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	prog := luProgram()
	perZone := cfg.scaled(33, 8)
	res := &Fig6Result{}
	type fig6Trial struct {
		m    []int
		seed int64
	}
	for _, z := range l.luZones() {
		zone := Fig6Zone{Name: z.Name, Mappings: perZone, Times: make([]float64, perZone)}
		// Draw every trial's mapping and jitter seed serially, in the exact
		// order the serial loop consumed the rng, then fan the measurements
		// out: results land by index, so output is identical for any -jobs.
		trials := make([]fig6Trial, perZone)
		for k := range trials {
			trials[k].m = l.sampleZoneMapping(z, prog.Ranks, rng)
			trials[k].seed = rng.Int63()
		}
		parfor.Do(cfg.jobs(), perZone, func(k int) {
			zone.Times[k] = l.Measure(l.GroveTopo, prog, trials[k].m, JitterOS, trials[k].seed)
		})
		zone.Min = stats.Min(zone.Times)
		zone.Max = stats.Max(zone.Times)
		zone.Mean = stats.Mean(zone.Times)
		res.Zones = append(res.Zones, zone)
		cfg.logf("fig6: %s done [%0.1f, %0.1f]s", z.Name, zone.Min, zone.Max)
	}
	return res
}

// Render draws the zones as text ranges.
func (r *Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — LU on 8 Orange Grove nodes: measured execution-time zones\n")
	for _, z := range r.Zones {
		fmt.Fprintf(&sb, "  %-26s [%6.1f .. %6.1f]s  mean %6.1f  (%d mappings)\n",
			z.Name, z.Min, z.Max, z.Mean, z.Mappings)
	}
	sb.WriteString("  (paper: three distinct zones ≈207-220 / ≈235-262 / ≈300-330 s)\n")
	return sb.String()
}

// Table1Row is one row of table 1 (worst vs best case).
type Table1Row struct {
	Case          string
	WorstTime     float64
	WorstCI       float64
	BestTime      float64
	BestCI        float64
	SpeedupPct    float64
	SchedulerSecs float64
	Comment       string
}

// Table1Result reproduces table 1: the maximum feasible speedup within each
// node group, from the measured times of the CS-found best mapping vs. the
// worst mapping of the group.
type Table1Result struct {
	Rows []Table1Row
	// MaxVsRandomPct is the §6.1.1 companion number: best overall vs.
	// worst overall mapping — the 36.6 % potential speedup against a
	// random scheduler that may pick any mapping.
	MaxVsRandomPct float64
}

// Table1 finds and measures best/worst mappings per zone.
func Table1(l *Lab, cfg Config) *Table1Result {
	prog := luProgram()
	high, _, _ := l.groveGroups()
	eval := l.Evaluator(l.GroveTopo, prog, high)
	runs := cfg.scaled(5, 3)
	res := &Table1Result{}
	globalBest, globalWorst := 0.0, 0.0
	for zi, z := range l.luZones() {
		// The best/worst anneals are independent (distinct seeds), as is
		// every measurement run (index-derived jitter seeds) — fan them out.
		var best, worst *schedule.Decision
		var bestErr, worstErr error
		parfor.Do(cfg.jobs(), 2, func(i int) {
			if i == 0 {
				best, bestErr = schedule.SimulatedAnnealing(l.zoneRequest(eval, z, cfg.Seed+int64(zi), 6000, false))
			} else {
				worst, worstErr = schedule.SimulatedAnnealing(l.zoneRequest(eval, z, cfg.Seed+int64(zi)+50, 6000, true))
			}
		})
		if bestErr != nil {
			panic(bestErr)
		}
		if worstErr != nil {
			panic(worstErr)
		}
		bestT := make([]float64, runs)
		worstT := make([]float64, runs)
		parfor.Do(cfg.jobs(), 2*runs, func(i int) {
			r := i / 2
			if i%2 == 0 {
				bestT[r] = l.Measure(l.GroveTopo, prog, best.Mapping, JitterOS, cfg.Seed+int64(100*zi+r))
			} else {
				worstT[r] = l.Measure(l.GroveTopo, prog, worst.Mapping, JitterOS, cfg.Seed+int64(100*zi+r+9999))
			}
		})
		bm, bci := stats.MeanCI(bestT)
		wm, wci := stats.MeanCI(worstT)
		res.Rows = append(res.Rows, Table1Row{
			Case:          z.Name,
			WorstTime:     wm,
			WorstCI:       wci,
			BestTime:      bm,
			BestCI:        bci,
			SpeedupPct:    (wm - bm) / wm * 100,
			SchedulerSecs: best.SchedulerTime.Seconds() + worst.SchedulerTime.Seconds(),
			Comment:       zoneComment(zi),
		})
		if zi == 0 {
			globalBest = bm
		}
		globalWorst = wm
		cfg.logf("table1: %s best %.1f worst %.1f", z.Name, bm, wm)
	}
	if globalWorst > 0 {
		res.MaxVsRandomPct = (globalWorst - globalBest) / globalWorst * 100
	}
	return res
}

func zoneComment(zi int) string {
	switch zi {
	case 0:
		return "High-speed group"
	case 1:
		return "Medium-speed group"
	default:
		return "Low-speed group"
	}
}

// Render formats table 1.
func (r *Table1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1 — LU: worst vs best case scenario (Orange Grove)\n")
	sb.WriteString("  case                        worst(s)  ±CI     best(s)  ±CI     speedup  sched(s)  comment\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-26s %8.1f %5.1f   %8.1f %5.1f   %6.1f%%  %7.2f   %s\n",
			row.Case, row.WorstTime, row.WorstCI, row.BestTime, row.BestCI,
			row.SpeedupPct, row.SchedulerSecs, row.Comment)
	}
	fmt.Fprintf(&sb, "  max speedup vs random scheduler (best overall vs worst overall): %.1f%%  (paper: 36.6%%)\n",
		r.MaxVsRandomPct)
	sb.WriteString("  (paper speedups: 5.3% / 9.3% / 6.0%; scheduler ≈6 s)\n")
	return sb.String()
}

// Table2Row is one scheduler's average-case row for one zone.
type Table2Row struct {
	Case         string
	Scheduler    string // "CS" or "NCS"
	Runs         int
	AvgPredicted float64
	PredCI       float64
	HitsPct      float64
	AvgMeasured  float64
	MeasCI       float64
	Predictions  []float64 // per-run full-evaluation predictions (fig. 7)
}

// Table2Result reproduces table 2: average-case scheduling. CS hits the
// minimum-time mappings ≈90 % of the time; NCS, blind to communication,
// almost never does.
type Table2Result struct {
	Rows []Table2Row
	// ExpectedSpeedup[zone] and MeasuredSpeedup[zone] compare NCS to CS.
	ExpectedSpeedup []float64
	MeasuredSpeedup []float64
}

// Table2 runs the average-case scheduling study.
func Table2(l *Lab, cfg Config) *Table2Result {
	prog := luProgram()
	high, _, _ := l.groveGroups()
	eval := l.Evaluator(l.GroveTopo, prog, high)
	runs := cfg.scaled(100, 10)
	res := &Table2Result{}
	for zi, z := range l.luZones() {
		// Ground truth best predicted time: a high-effort anneal.
		ref, err := schedule.SimulatedAnnealing(l.zoneRequest(eval, z, cfg.Seed+77, 24000, false))
		if err != nil {
			panic(err)
		}
		bestPred := ref.Predicted

		// Every (scheduler, run) trial derives its seeds from its indices, so
		// the full 2×runs block fans out; rows are assembled serially after.
		preds := [2][]float64{make([]float64, runs), make([]float64, runs)}
		meas := [2][]float64{make([]float64, runs), make([]float64, runs)}
		parfor.Do(cfg.jobs(), 2*runs, func(i int) {
			si, k := i/runs, i%runs
			req := l.zoneRequest(eval, z, cfg.Seed+int64(200*zi+k), 6000, false)
			var dec *schedule.Decision
			var err error
			if si == 0 {
				dec, err = schedule.SimulatedAnnealing(req)
			} else {
				dec, err = schedule.SimulatedAnnealingNoComm(req)
			}
			if err != nil {
				panic(err)
			}
			preds[si][k] = dec.Predicted
			meas[si][k] = l.Measure(l.GroveTopo, prog, dec.Mapping, JitterOS,
				cfg.Seed+int64(300*zi+k))
		})
		for si, sched := range []string{"CS", "NCS"} {
			row := Table2Row{Case: z.Name, Scheduler: sched, Runs: runs}
			hits := 0
			for k := 0; k < runs; k++ {
				if preds[si][k] <= bestPred*1.005 {
					hits++
				}
				// Join scheduler estimates with their measured runs in the
				// accuracy ledger (serial assembly — safe to report here).
				accuracy.Default().ReportPair(accuracy.Prediction{
					App:       prog.Name,
					Scheduler: "table2/" + sched,
					AgeBucket: accuracy.AgeBucket(0),
					Predicted: preds[si][k],
				}, meas[si][k])
			}
			row.AvgPredicted, row.PredCI = stats.MeanCI(preds[si])
			row.HitsPct = float64(hits) / float64(runs) * 100
			row.AvgMeasured, row.MeasCI = stats.MeanCI(meas[si])
			row.Predictions = preds[si]
			res.Rows = append(res.Rows, row)
			cfg.logf("table2: %s %s hits %.0f%%", z.Name, sched, row.HitsPct)
		}
		cs := res.Rows[len(res.Rows)-2]
		ncs := res.Rows[len(res.Rows)-1]
		res.ExpectedSpeedup = append(res.ExpectedSpeedup,
			(ncs.AvgPredicted-cs.AvgPredicted)/ncs.AvgPredicted*100)
		res.MeasuredSpeedup = append(res.MeasuredSpeedup,
			(ncs.AvgMeasured-cs.AvgMeasured)/ncs.AvgMeasured*100)
	}
	return res
}

// Render formats table 2.
func (r *Table2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 2 — LU: average case scenario (per zone: CS then NCS)\n")
	sb.WriteString("  case                        sched  runs  avg pred  ±CI    hits   measured  ±CI\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-26s %-5s %5d  %8.1f %5.1f  %4.0f%%  %8.1f %5.1f\n",
			row.Case, row.Scheduler, row.Runs, row.AvgPredicted, row.PredCI,
			row.HitsPct, row.AvgMeasured, row.MeasCI)
	}
	for i := range r.ExpectedSpeedup {
		fmt.Fprintf(&sb, "  zone %d: expected speedup %.1f%%, measured speedup %.1f%%\n",
			i+1, r.ExpectedSpeedup[i], r.MeasuredSpeedup[i])
	}
	sb.WriteString("  (paper: CS ≈90% hits, NCS <3%; measured speedups 4.8/8.7/5.5%)\n")
	return sb.String()
}

// Fig7Result reproduces figure 7: the distributions of predicted times of
// the CS and NCS selections for the LU(3) case. CS results skew to the
// minimum-time mappings, NCS to the near-worst.
type Fig7Result struct {
	CS  *stats.Histogram
	NCS *stats.Histogram
	Lo  float64
	Hi  float64
}

// Fig7 derives the distributions from table-2 data for the low-speed zone.
func Fig7(t2 *Table2Result) *Fig7Result {
	var cs, ncs []float64
	for _, row := range t2.Rows {
		if !strings.Contains(row.Case, "LU(3)") {
			continue
		}
		if row.Scheduler == "CS" {
			cs = row.Predictions
		} else {
			ncs = row.Predictions
		}
	}
	all := append(append([]float64{}, cs...), ncs...)
	lo, hi := stats.Min(all), stats.Max(all)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	lo -= span * 0.05
	hi += span * 0.05
	return &Fig7Result{
		CS:  stats.NewHistogram(cs, lo, hi, 12),
		NCS: stats.NewHistogram(ncs, lo, hi, 12),
		Lo:  lo,
		Hi:  hi,
	}
}

// Render draws both histograms.
func (r *Fig7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 7 — predicted-time distributions, LU(3) case\n")
	sb.WriteString("  CS (skewed toward minimum-time mappings):\n")
	sb.WriteString(indent(r.CS.Render(40), "  "))
	sb.WriteString("  NCS (skewed toward near-worst mappings):\n")
	sb.WriteString(indent(r.NCS.Render(40), "  "))
	return sb.String()
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
