package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"cbes/internal/stats"
)

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	p1 := &Phase1Result{Errors: []float64{1.5, 2.5, 8.0}, Cases: 3}
	f5 := &Fig5Result{Cases: []Fig5Case{{Name: "lu.A.64", Nodes: 64, Runs: 5, MeanErr: 2.1}}}
	p3 := &Phase3Result{Rows: []Phase3Row{{Program: "lu", LoadPct: 10, Stale: true, MeanErr: 5}}}
	f6 := &Fig6Result{Zones: []Fig6Zone{{Name: "high", Times: []float64{200, 210}}}}
	t1 := &Table1Result{Rows: []Table1Row{{Case: "LU(1)", WorstTime: 220, BestTime: 208, SpeedupPct: 5.4}}}
	t2 := &Table2Result{Rows: []Table2Row{{Case: "LU(1)", Scheduler: "CS", Runs: 2, HitsPct: 90}}}
	f7 := &Fig7Result{
		CS:  stats.NewHistogram([]float64{1, 2}, 0, 3, 3),
		NCS: stats.NewHistogram([]float64{2, 3}, 0, 3, 3),
	}
	t3 := &Table3Result{Rows: []Table3Row{{Case: "aztec.8", SpeedupPct: 10.1}}}
	t4 := &Table4Result{Rows: []Table4Row{{Case: "aztec.8", Scheduler: "NCS", Runs: 4}}}
	hl := &HeadlineResult{GroveSpreadPct: 54}
	ft := &FaultTolResult{Steps: []FaultTolStep{{TimeSec: 40, Advice: "stay"}, {TimeSec: 80, Down: 1, Advice: "evacuate"}}}

	if err := ExportAll(dir, p1, f5, p3, f6, t1, t2, f7, t3, t4, hl, ft, nil); err != nil {
		t.Fatal(err)
	}
	wantRows := map[string]int{
		"phase1_errors.csv": 3,
		"fig5.csv":          1,
		"phase3.csv":        1,
		"fig6.csv":          2,
		"table1.csv":        1,
		"table2.csv":        1,
		"fig7.csv":          3,
		"table3.csv":        1,
		"table4.csv":        1,
		"headline.csv":      6,
		"faulttol.csv":      2,
	}
	for name, want := range wantRows {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := countCSVRows(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: %d rows, want %d", name, got, want)
		}
	}
}

func TestExportAllCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := ExportAll(dir, &HeadlineResult{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "headline.csv")); err != nil {
		t.Fatal(err)
	}
}
