package experiments

import (
	"fmt"
	"strings"

	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/monitor"
	"cbes/internal/parfor"
	"cbes/internal/schedule"
	"cbes/internal/stats"
	"cbes/internal/workloads"
)

// otherCases returns the §6.2 program selection (HPL sizes and the ASCI
// Purple benchmarks), all at 8 ranks.
func otherCases() []workloads.Program {
	return []workloads.Program{
		workloads.HPL(500, 8),
		workloads.HPL(5000, 8),
		workloads.HPL(10000, 8),
		workloads.Sweep3D(8),
		workloads.SMG2000(12, 8),
		workloads.SMG2000(50, 8),
		workloads.SMG2000(60, 8),
		workloads.SAMRAI(8),
		workloads.Towhee(8),
		workloads.Aztec(8),
	}
}

// table4Programs are the cases the paper carries into the average-case
// study (the "uncertain speedup" programs are excluded, §6.2).
func table4Programs() map[string]bool {
	return map[string]bool{
		"hpl.5000.8":   true,
		"hpl.10000.8":  true,
		"smg2000.12.8": true,
		"smg2000.50.8": true,
		"smg2000.60.8": true,
		"aztec.8":      true,
	}
}

// intelPool returns the homogeneous Intel subset: 12 dual-PII nodes split
// across the two federation halves — the "level field" on which only
// communication placement distinguishes mappings.
func (l *Lab) intelPool() []int {
	return l.GroveTopo.NodesByArch(cluster.ArchIntel)
}

// uncertainThresholdPct is the speedup below which a case is labeled
// "uncertain" (benefits cancelled by penalties or run too short).
const uncertainThresholdPct = 2.5

// Table3Row is one row of table 3.
type Table3Row struct {
	Case          string
	WorstTime     float64
	WorstCI       float64
	BestTime      float64
	BestCI        float64
	SpeedupPct    float64
	SchedulerSecs float64
	Uncertain     bool
	CommFraction  float64
}

// Table3Result reproduces table 3: worst-vs-best scheduling for the other
// programs, on a homogeneous node subset so the effect is communication
// only. The paper finds 5.6–10.8 % maximum speedups, with sweep3d, SAMRAI,
// Towhee, and HPL(500) exhibiting only questionable potential.
type Table3Result struct {
	Rows []Table3Row
}

// otherEvaluator profiles prog on the first 8 Intel nodes and returns its
// evaluator.
func (l *Lab) otherEvaluator(prog workloads.Program) *core.Evaluator {
	pool := l.intelPool()
	return l.Evaluator(l.GroveTopo, prog, pool[:prog.Ranks])
}

// Table3 runs the worst-vs-best study for the other programs.
func Table3(l *Lab, cfg Config) *Table3Result {
	runs := cfg.scaled(5, 3)
	pool := l.intelPool()
	res := &Table3Result{}
	for pi, prog := range otherCases() {
		eval := l.otherEvaluator(prog)
		req := func(seed int64, maximize bool) *schedule.Request {
			return &schedule.Request{
				Eval:     eval,
				Snap:     monitor.IdleSnapshot(l.GroveTopo.NumNodes()),
				Pool:     pool,
				Seed:     seed,
				Effort:   6000,
				Maximize: maximize,
			}
		}
		var best, worst *schedule.Decision
		var bestErr, worstErr error
		parfor.Do(cfg.jobs(), 2, func(i int) {
			if i == 0 {
				best, bestErr = schedule.SimulatedAnnealing(req(cfg.Seed+int64(pi), false))
			} else {
				worst, worstErr = schedule.SimulatedAnnealing(req(cfg.Seed+int64(pi)+40, true))
			}
		})
		if bestErr != nil {
			panic(bestErr)
		}
		if worstErr != nil {
			panic(worstErr)
		}
		bestT := make([]float64, runs)
		worstT := make([]float64, runs)
		parfor.Do(cfg.jobs(), 2*runs, func(i int) {
			r := i / 2
			if i%2 == 0 {
				bestT[r] = l.Measure(l.GroveTopo, prog, best.Mapping, JitterOS, cfg.Seed+int64(500*pi+r))
			} else {
				worstT[r] = l.Measure(l.GroveTopo, prog, worst.Mapping, JitterOS, cfg.Seed+int64(500*pi+r+7777))
			}
		})
		bm, bci := stats.MeanCI(bestT)
		wm, wci := stats.MeanCI(worstT)
		speedup := (wm - bm) / wm * 100
		prof := l.Profile(l.GroveTopo, prog, pool[:prog.Ranks])
		// A case is "uncertain" when the gap is within noise or the run is
		// too short — §6.2's HPL(1) reasoning: "the short execution
		// duration exaggerates the differences".
		uncertain := speedup < uncertainThresholdPct || bm < 10
		res.Rows = append(res.Rows, Table3Row{
			Case:          prog.Name,
			WorstTime:     wm,
			WorstCI:       wci,
			BestTime:      bm,
			BestCI:        bci,
			SpeedupPct:    speedup,
			SchedulerSecs: best.SchedulerTime.Seconds() + worst.SchedulerTime.Seconds(),
			Uncertain:     uncertain,
			CommFraction:  prof.CommFraction(),
		})
		cfg.logf("table3: %s speedup %.1f%%", prog.Name, speedup)
	}
	return res
}

// Render formats table 3.
func (r *Table3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3 — other tests: worst vs best case (homogeneous Intel subset)\n")
	sb.WriteString("  case            worst(s)  ±CI     best(s)  ±CI     speedup  comm%%   sched(s)  comment\n")
	for _, row := range r.Rows {
		comment := ""
		if row.Uncertain {
			comment = "uncertain speedup"
		}
		fmt.Fprintf(&sb, "  %-14s %8.1f %5.1f  %8.1f %5.1f   %6.1f%%  %5.1f%%  %7.2f   %s\n",
			row.Case, row.WorstTime, row.WorstCI, row.BestTime, row.BestCI,
			row.SpeedupPct, row.CommFraction*100, row.SchedulerSecs, comment)
	}
	sb.WriteString("  (paper: max speedups 5.6-10.8%; sweep3d/SAMRAI/Towhee/HPL(500) uncertain)\n")
	return sb.String()
}

// Table4Row is one scheduler's average-case row for one program.
type Table4Row struct {
	Case         string
	Scheduler    string
	Runs         int
	AvgPredicted float64
	PredCI       float64
	HitsPct      float64
	AvgMeasured  float64
	MeasCI       float64
}

// Table4Result reproduces table 4: the average case for the programs with
// real speedup potential. The paper finds average speedups within ≈10 % of
// the maxima of table 3.
type Table4Result struct {
	Rows            []Table4Row
	ExpectedSpeedup map[string]float64
	MeasuredSpeedup map[string]float64
}

// Table4 runs the average-case study for the retained programs.
func Table4(l *Lab, cfg Config) *Table4Result {
	runs := cfg.scaled(100, 10)
	pool := l.intelPool()
	keep := table4Programs()
	res := &Table4Result{
		ExpectedSpeedup: map[string]float64{},
		MeasuredSpeedup: map[string]float64{},
	}
	for pi, prog := range otherCases() {
		if !keep[prog.Name] {
			continue
		}
		eval := l.otherEvaluator(prog)
		ref, err := schedule.SimulatedAnnealing(&schedule.Request{
			Eval: eval, Snap: monitor.IdleSnapshot(l.GroveTopo.NumNodes()),
			Pool: pool, Seed: cfg.Seed + 99, Effort: 24000,
		})
		if err != nil {
			panic(err)
		}
		bestPred := ref.Predicted

		// As in Table 2, the full (scheduler × run) block fans out on
		// index-derived seeds and the rows are assembled serially after.
		preds := [2][]float64{make([]float64, runs), make([]float64, runs)}
		meas := [2][]float64{make([]float64, runs), make([]float64, runs)}
		parfor.Do(cfg.jobs(), 2*runs, func(i int) {
			si, k := i/runs, i%runs
			req := &schedule.Request{
				Eval: eval, Snap: monitor.IdleSnapshot(l.GroveTopo.NumNodes()),
				Pool: pool, Seed: cfg.Seed + int64(400*pi+k), Effort: 6000,
			}
			var dec *schedule.Decision
			var err error
			if si == 0 {
				dec, err = schedule.SimulatedAnnealing(req)
			} else {
				dec, err = schedule.SimulatedAnnealingNoComm(req)
			}
			if err != nil {
				panic(err)
			}
			preds[si][k] = dec.Predicted
			meas[si][k] = l.Measure(l.GroveTopo, prog, dec.Mapping, JitterOS,
				cfg.Seed+int64(600*pi+k))
		})
		var csRow, ncsRow Table4Row
		for si, sched := range []string{"CS", "NCS"} {
			row := Table4Row{Case: prog.Name, Scheduler: sched, Runs: runs}
			hits := 0
			for k := 0; k < runs; k++ {
				if preds[si][k] <= bestPred*1.005 {
					hits++
				}
			}
			row.AvgPredicted, row.PredCI = stats.MeanCI(preds[si])
			row.HitsPct = float64(hits) / float64(runs) * 100
			row.AvgMeasured, row.MeasCI = stats.MeanCI(meas[si])
			res.Rows = append(res.Rows, row)
			if sched == "CS" {
				csRow = row
			} else {
				ncsRow = row
			}
		}
		res.ExpectedSpeedup[prog.Name] = (ncsRow.AvgPredicted - csRow.AvgPredicted) / ncsRow.AvgPredicted * 100
		res.MeasuredSpeedup[prog.Name] = (ncsRow.AvgMeasured - csRow.AvgMeasured) / ncsRow.AvgMeasured * 100
		cfg.logf("table4: %s CS hits %.0f%%", prog.Name, csRow.HitsPct)
	}
	return res
}

// Render formats table 4.
func (r *Table4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 4 — other tests: average case scenario (CS then NCS per program)\n")
	sb.WriteString("  case            sched  runs  avg pred  ±CI    hits   measured  ±CI\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-14s %-5s %5d  %8.1f %5.1f  %4.0f%%  %8.1f %5.1f\n",
			row.Case, row.Scheduler, row.Runs, row.AvgPredicted, row.PredCI,
			row.HitsPct, row.AvgMeasured, row.MeasCI)
	}
	for name, e := range r.ExpectedSpeedup {
		fmt.Fprintf(&sb, "  %-14s expected speedup %.1f%%, measured %.1f%%\n",
			name, e, r.MeasuredSpeedup[name])
	}
	sb.WriteString("  (paper: average speedups 5.2-10.3%, within ~10% of the maxima)\n")
	return sb.String()
}
