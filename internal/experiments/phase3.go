package experiments

import (
	"fmt"
	"strings"

	"cbes/internal/monitor"
	"cbes/internal/parfor"
	"cbes/internal/stats"
	"cbes/internal/workloads"
)

// Phase3Row is the prediction error of one program at one level of
// background load added after the prediction was made.
type Phase3Row struct {
	Program   string
	LoadPct   int // CPU availability lost on one mapped node, %
	Nodes     int // number of loaded nodes
	MeanErr   float64
	CI        float64
	Stale     bool // load invisible to the snapshot (the paper's scenario)
	Predicted float64
	Measured  float64
}

// Phase3Result reproduces the §5 phase-3 load-sensitivity study: how
// tolerant a prediction is to background-load changes that occur after the
// snapshot it was computed from. The paper finds the error exceeds the ≈4 %
// ceiling as soon as a single mapped node loses ≥10 % CPU, while <10 % or
// short-lived loads do not invalidate predictions.
type Phase3Result struct {
	Rows []Phase3Row
}

// Phase3LoadSensitivity runs LU, SP, and BT under stale-snapshot load.
func Phase3LoadSensitivity(l *Lab, cfg Config) *Phase3Result {
	topo, _ := l.Centurion()
	runs := cfg.scaled(5, 2)
	progs := []workloads.Program{
		workloads.LU(workloads.ClassA, 16),
		workloads.SP(workloads.ClassA, 16),
		workloads.BT(workloads.ClassA, 16),
	}
	loads := []int{0, 5, 10, 20, 30}

	res := &Phase3Result{}
	for pi, prog := range progs {
		mapping := centurionSpread(topo, 16)
		eval := l.Evaluator(topo, prog, mapping)
		// The prediction is made against the pre-load (idle) snapshot.
		stalePred := predict(eval, mapping, monitor.IdleSnapshot(topo.NumNodes()))
		// Every (load, run) measurement derives its jitter seed from its
		// indices, so the whole grid fans out across workers.
		availByLoad := make([]map[int]float64, len(loads))
		grid := make([][]float64, len(loads))
		for li, loadPct := range loads {
			availByLoad[li] = map[int]float64{}
			if loadPct > 0 {
				availByLoad[li][mapping[3]] = 1 - float64(loadPct)/100
			}
			grid[li] = make([]float64, runs)
		}
		parfor.Do(cfg.jobs(), len(loads)*runs, func(i int) {
			li, r := i/runs, i%runs
			grid[li][r] = l.MeasureWithLoad(topo, prog, mapping, JitterOS,
				cfg.Seed+int64(7000*pi+100*loads[li]+r), availByLoad[li])
		})
		for li, loadPct := range loads {
			times := grid[li]
			errs := make([]float64, runs)
			for r, actual := range times {
				errs[r] = errPct(stalePred, actual)
			}
			mean, ci := stats.MeanCI(errs)
			res.Rows = append(res.Rows, Phase3Row{
				Program: prog.Name, LoadPct: loadPct, Nodes: 1,
				MeanErr: mean, CI: ci, Stale: true,
				Predicted: stalePred, Measured: stats.Mean(times),
			})
		}
		// Control: the same 30% load, but visible to the snapshot — the
		// formula itself handles known load.
		avail := map[int]float64{mapping[3]: 0.7}
		knownPred := predict(eval, mapping, snapshotWithLoad(topo, avail))
		times := make([]float64, runs)
		parfor.Do(cfg.jobs(), runs, func(r int) {
			times[r] = l.MeasureWithLoad(topo, prog, mapping, JitterOS,
				cfg.Seed+int64(7000*pi+9000+r), avail)
		})
		errs := make([]float64, runs)
		for r, actual := range times {
			errs[r] = errPct(knownPred, actual)
		}
		mean, ci := stats.MeanCI(errs)
		res.Rows = append(res.Rows, Phase3Row{
			Program: prog.Name, LoadPct: 30, Nodes: 1,
			MeanErr: mean, CI: ci, Stale: false,
			Predicted: knownPred, Measured: stats.Mean(times),
		})
		cfg.logf("phase3: %s done", prog.Name)
	}
	return res
}

// Render formats the phase-3 table.
func (r *Phase3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Phase 3 — prediction tolerance to background-load changes (Centurion, 16 nodes)\n")
	sb.WriteString("  program      load on 1 node   snapshot    mean err   ±CI95\n")
	for _, row := range r.Rows {
		snap := "stale  "
		if !row.Stale {
			snap = "current"
		}
		fmt.Fprintf(&sb, "  %-12s %6d%%          %s   %7.2f%%   %5.2f%%\n",
			row.Program, row.LoadPct, snap, row.MeanErr, row.CI)
	}
	sb.WriteString("  (paper: stale-snapshot error exceeds ≈4% once a mapped node loses ≥10% CPU)\n")
	return sb.String()
}

// MeanErrAtLoad returns the mean stale-snapshot error over programs at the
// given load level (test hook).
func (r *Phase3Result) MeanErrAtLoad(loadPct int) float64 {
	var errs []float64
	for _, row := range r.Rows {
		if row.Stale && row.LoadPct == loadPct {
			errs = append(errs, row.MeanErr)
		}
	}
	return stats.Mean(errs)
}
