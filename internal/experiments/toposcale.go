package experiments

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

// TopoScale is not part of the paper reproduction: it characterizes the
// simulator itself at 1k–5k-node scale on the structured topologies
// (fat tree, torus, dragonfly). For each spec it times topology
// construction, reports the route-memory mode and interned class count,
// and drives a seeded 2D-halo workload end to end, reporting simulated
// versus wall-clock time.

// TopoScaleRow is one topology's measurements.
type TopoScaleRow struct {
	Spec      string
	Nodes     int
	Switches  int
	Links     int
	Classes   int
	RouteMode string
	BuildMS   float64
	Ranks     int
	SimS      float64 // simulated seconds the workload took
	WallMS    float64 // wall-clock milliseconds the simulation took
	Messages  uint64
}

// TopoScaleResult aggregates the sweep.
type TopoScaleResult struct {
	Rows []TopoScaleRow
}

// TopoScale runs the scale characterization over the given topology specs
// (cluster.FromSpec grammar) with the given rank count (clamped to the
// node count of each topology).
func TopoScale(specs []string, ranks int, seed int64) (*TopoScaleResult, error) {
	if ranks <= 0 {
		ranks = 256
	}
	res := &TopoScaleResult{}
	for _, spec := range specs {
		t0 := time.Now()
		topo, err := cluster.FromSpec(spec)
		if err != nil {
			return nil, err
		}
		buildMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		if topo.NumNodes() < 2 {
			return nil, fmt.Errorf("experiments: toposcale needs >= 2 nodes, %q has %d", spec, topo.NumNodes())
		}

		r := ranks
		if n := topo.NumNodes(); r > n {
			r = n
		}
		eng := des.NewEngine()
		vc := vcluster.New(eng, topo)
		net := simnet.New(eng, topo)
		mapping := seededMapping(topo.NumNodes(), r, seed)
		prog := workloads.Halo2D(workloads.Halo2DConfig{Ranks: r, Iterations: 3, MsgSize: 16 << 10, ComputePerIter: 0.002})
		t1 := time.Now()
		run := mpisim.Run(vc, net, mapping, prog.Body, prog.Options())
		eng.Shutdown()

		res.Rows = append(res.Rows, TopoScaleRow{
			Spec:      spec,
			Nodes:     topo.NumNodes(),
			Switches:  len(topo.Switches),
			Links:     len(topo.Links),
			Classes:   topo.NumClasses(),
			RouteMode: topo.RouteMemoryMode(),
			BuildMS:   buildMS,
			Ranks:     r,
			SimS:      run.Elapsed.Seconds(),
			WallMS:    float64(time.Since(t1).Nanoseconds()) / 1e6,
			Messages:  net.Messages(),
		})
	}
	return res, nil
}

// seededMapping spreads ranks over distinct nodes with a deterministic
// multiplicative-stride walk (no rand dependency: same seed, same walk).
func seededMapping(nodes, ranks int, seed int64) []int {
	stride := int(seed%int64(nodes-1)) + 1
	// Force the stride coprime with nodes so the walk covers all of them.
	for gcd(stride, nodes) != 1 {
		stride++
	}
	m := make([]int, ranks)
	at := int(seed) % nodes
	if at < 0 {
		at += nodes
	}
	for i := range m {
		m[i] = at
		at = (at + stride) % nodes
	}
	return m
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Render formats the sweep as a table.
func (r *TopoScaleResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Topology scale characterization (build + seeded halo2d run)\n")
	fmt.Fprintf(&sb, "%-24s %7s %7s %8s %8s %10s %9s %6s %9s %9s %9s\n",
		"spec", "nodes", "switch", "links", "classes", "routes", "build_ms", "ranks", "sim_s", "wall_ms", "msgs")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-24s %7d %7d %8d %8d %10s %9.2f %6d %9.3f %9.1f %9d\n",
			row.Spec, row.Nodes, row.Switches, row.Links, row.Classes,
			row.RouteMode, row.BuildMS, row.Ranks, row.SimS, row.WallMS, row.Messages)
	}
	return sb.String()
}

// WriteCSV dumps the sweep rows.
func (r *TopoScaleResult) WriteCSV(dir string) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Spec, strconv.Itoa(row.Nodes),
			strconv.Itoa(row.Switches), strconv.Itoa(row.Links),
			strconv.Itoa(row.Classes), row.RouteMode, f(row.BuildMS),
			strconv.Itoa(row.Ranks), f(row.SimS), f(row.WallMS),
			strconv.FormatUint(row.Messages, 10)})
	}
	return writeCSV(filepath.Join(dir, "toposcale.csv"),
		[]string{"spec", "nodes", "switches", "links", "classes", "route_mode",
			"build_ms", "ranks", "sim_s", "wall_ms", "messages"}, rows)
}
