package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export of every experiment result, so the paper's figures can be
// replotted from the regenerated data with any plotting tool.

func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteCSV dumps the per-case sweep errors.
func (r *Phase1Result) WriteCSV(dir string) error {
	rows := make([][]string, len(r.Errors))
	for i, e := range r.Errors {
		rows[i] = []string{strconv.Itoa(i), f(e)}
	}
	return writeCSV(filepath.Join(dir, "phase1_errors.csv"), []string{"case", "err_pct"}, rows)
}

// WriteCSV dumps the figure-5 bars.
func (r *Fig5Result) WriteCSV(dir string) error {
	var rows [][]string
	for _, c := range r.Cases {
		rows = append(rows, []string{c.Name, strconv.Itoa(c.Nodes), strconv.Itoa(c.Runs),
			f(c.MeanErr), f(c.CI), f(c.Predicted), f(c.MeanTime)})
	}
	return writeCSV(filepath.Join(dir, "fig5.csv"),
		[]string{"benchmark", "nodes", "runs", "mean_err_pct", "ci95", "predicted_s", "measured_s"}, rows)
}

// WriteCSV dumps the load-sensitivity rows.
func (r *Phase3Result) WriteCSV(dir string) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Program, strconv.Itoa(row.LoadPct),
			strconv.FormatBool(row.Stale), f(row.MeanErr), f(row.CI)})
	}
	return writeCSV(filepath.Join(dir, "phase3.csv"),
		[]string{"program", "load_pct", "stale_snapshot", "mean_err_pct", "ci95"}, rows)
}

// WriteCSV dumps every sampled mapping time per zone.
func (r *Fig6Result) WriteCSV(dir string) error {
	var rows [][]string
	for zi, z := range r.Zones {
		for _, t := range z.Times {
			rows = append(rows, []string{strconv.Itoa(zi + 1), z.Name, f(t)})
		}
	}
	return writeCSV(filepath.Join(dir, "fig6.csv"),
		[]string{"zone", "name", "measured_s"}, rows)
}

// WriteCSV dumps the worst-vs-best rows.
func (r *Table1Result) WriteCSV(dir string) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Case, f(row.WorstTime), f(row.WorstCI),
			f(row.BestTime), f(row.BestCI), f(row.SpeedupPct), f(row.SchedulerSecs)})
	}
	return writeCSV(filepath.Join(dir, "table1.csv"),
		[]string{"case", "worst_s", "worst_ci", "best_s", "best_ci", "speedup_pct", "scheduler_s"}, rows)
}

// WriteCSV dumps the average-case rows.
func (r *Table2Result) WriteCSV(dir string) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Case, row.Scheduler, strconv.Itoa(row.Runs),
			f(row.AvgPredicted), f(row.PredCI), f(row.HitsPct), f(row.AvgMeasured), f(row.MeasCI)})
	}
	return writeCSV(filepath.Join(dir, "table2.csv"),
		[]string{"case", "scheduler", "runs", "avg_pred_s", "pred_ci", "hits_pct", "avg_meas_s", "meas_ci"}, rows)
}

// WriteCSV dumps both histograms.
func (r *Fig7Result) WriteCSV(dir string) error {
	var rows [][]string
	for i := range r.CS.Counts {
		rows = append(rows, []string{f(r.CS.BucketLo(i)),
			strconv.Itoa(r.CS.Counts[i]), strconv.Itoa(r.NCS.Counts[i])})
	}
	return writeCSV(filepath.Join(dir, "fig7.csv"),
		[]string{"bucket_lo_s", "cs_count", "ncs_count"}, rows)
}

// WriteCSV dumps the other-programs worst-vs-best rows.
func (r *Table3Result) WriteCSV(dir string) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Case, f(row.WorstTime), f(row.BestTime),
			f(row.SpeedupPct), f(row.CommFraction), strconv.FormatBool(row.Uncertain)})
	}
	return writeCSV(filepath.Join(dir, "table3.csv"),
		[]string{"case", "worst_s", "best_s", "speedup_pct", "comm_fraction", "uncertain"}, rows)
}

// WriteCSV dumps the other-programs average-case rows.
func (r *Table4Result) WriteCSV(dir string) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Case, row.Scheduler, strconv.Itoa(row.Runs),
			f(row.AvgPredicted), f(row.HitsPct), f(row.AvgMeasured)})
	}
	return writeCSV(filepath.Join(dir, "table4.csv"),
		[]string{"case", "scheduler", "runs", "avg_pred_s", "hits_pct", "avg_meas_s"}, rows)
}

// WriteCSV dumps the headline summary as key/value pairs.
func (r *HeadlineResult) WriteCSV(dir string) error {
	rows := [][]string{
		{"grove_spread_pct", f(r.GroveSpreadPct)},
		{"centurion_spread_pct", f(r.CenturionSpreadPct)},
		{"best_vs_random_max_pct", f(r.BestVsRandomMaxPct)},
		{"best_vs_random_avg_pct", f(r.BestVsRandomAvgPct)},
		{"comm_speedup_pct", f(r.CommSpeedupPct)},
		{"efficiency_pct", f(r.EfficiencyPct)},
	}
	return writeCSV(filepath.Join(dir, "headline.csv"), []string{"metric", "value"}, rows)
}

// WriteCSV dumps the fault-tolerance timeline.
func (r *FaultTolResult) WriteCSV(dir string) error {
	var rows [][]string
	for _, s := range r.Steps {
		rows = append(rows, []string{f(s.TimeSec), strconv.Itoa(s.Down), strconv.Itoa(s.Suspect),
			strconv.Itoa(s.Injected), f(s.CSPred), f(s.RSPred), f(s.RSPenaltyPct),
			strconv.FormatBool(s.CSDegraded), s.Advice})
	}
	return writeCSV(filepath.Join(dir, "faulttol.csv"),
		[]string{"t_s", "down", "suspect", "faults_injected", "cs_pred_s", "rs_pred_s",
			"rs_penalty_pct", "cs_degraded", "advice"}, rows)
}

// CSVWriter is implemented by every experiment result.
type CSVWriter interface {
	WriteCSV(dir string) error
}

// ExportAll writes every non-nil result to dir (created if needed).
func ExportAll(dir string, results ...CSVWriter) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		if err := r.WriteCSV(dir); err != nil {
			return err
		}
	}
	return nil
}

// countCSVRows is a test helper: rows excluding the header.
func countCSVRows(rd io.Reader) (int, error) {
	recs, err := csv.NewReader(rd).ReadAll()
	if err != nil {
		return 0, err
	}
	return len(recs) - 1, nil
}
