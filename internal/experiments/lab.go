// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–6): the phase-1 synthetic prediction-error sweep, the
// figure-5 NPB/HPL prediction errors, the phase-3 load-sensitivity study,
// the figure-6 LU execution-time zones, tables 1–4 (worst-vs-best and
// average-case scheduling for LU and the ASCI/HPL selection), the
// figure-7 predicted-time distributions, and the §6 headline numbers.
//
// Every experiment is deterministic for a fixed Config.Seed. Scale factors
// let the full paper-sized runs (16 000+ sweep cases, 100 scheduler runs
// per scenario) be shrunk for quick regeneration.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/mpisim"
	"cbes/internal/netmodel"
	"cbes/internal/profile"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Seed drives all experiment randomness.
	Seed int64
	// Scale in (0,1] shrinks case counts / repetitions; 1.0 is the
	// paper-sized run. The default (0) means 0.25.
	Scale float64
	// Jobs bounds the worker pool that fans independent trials across
	// cores: 0 (the default) uses one worker per core, 1 forces the serial
	// reference order. Results are identical for any value — trials draw
	// their randomness serially (or from index-derived seeds) and write
	// results by index.
	Jobs int
	// Verbose enables progress lines on stdout.
	Verbose bool
}

// jobs resolves the worker count handed to parfor.Do.
func (c Config) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 0.25
	}
	if c.Scale > 1 {
		return 1
	}
	return c.Scale
}

// scaled returns max(min, 1, round(full*scale)): even a tiny Scale yields at
// least one trial, so loops that split the budget afterwards (for example
// Table 2's per-scheduler runs) can never round down to zero iterations.
func (c Config) scaled(full, min int) int {
	n := int(float64(full)*c.scale() + 0.5)
	if n < min {
		n = min
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// Lab owns the calibrated clusters and profiled applications shared by the
// experiments. Building one performs the off-line calibration phase.
type Lab struct {
	cfg Config

	GroveTopo *cluster.Topology
	GroveNet  *netmodel.Model

	centTopo *cluster.Topology
	centNet  *netmodel.Model

	profiles map[string]*profile.Profile
	speeds   map[string]map[cluster.Arch]float64
}

// NewLab calibrates Orange Grove (Centurion is calibrated lazily on first
// use, as only phase 1 and figure 5 need it).
func NewLab(cfg Config) *Lab {
	l := &Lab{
		cfg:       cfg,
		GroveTopo: cluster.NewOrangeGrove(),
		profiles:  map[string]*profile.Profile{},
		speeds:    map[string]map[cluster.Arch]float64{},
	}
	cfg.logf("calibrating orange-grove (%d nodes)...", l.GroveTopo.NumNodes())
	l.GroveNet = bench.Calibrate(l.GroveTopo, bench.Options{Reps: 5})
	return l
}

// Centurion returns the lazily calibrated Centurion testbed.
func (l *Lab) Centurion() (*cluster.Topology, *netmodel.Model) {
	if l.centTopo == nil {
		l.centTopo = cluster.NewCenturion()
		l.cfg.logf("calibrating centurion (%d nodes)...", l.centTopo.NumNodes())
		l.centNet = bench.Calibrate(l.centTopo, bench.Options{Reps: 5})
	}
	return l.centTopo, l.centNet
}

// modelFor returns the calibrated model of the given topology.
func (l *Lab) modelFor(topo *cluster.Topology) *netmodel.Model {
	if topo == l.GroveTopo {
		return l.GroveNet
	}
	if topo == l.centTopo {
		return l.centNet
	}
	panic("experiments: unknown topology")
}

// archSpeeds measures (and caches) an application's per-architecture
// speeds.
func (l *Lab) archSpeeds(topo *cluster.Topology, prog workloads.Program) map[cluster.Arch]float64 {
	key := topo.Name + "/" + prog.Name
	if s, ok := l.speeds[key]; ok {
		return s
	}
	s := bench.MeasureArchSpeeds(topo, prog.ArchEff, 0.5)
	l.speeds[key] = s
	return s
}

// Profile profiles (and caches) a program on the given topology/mapping.
func (l *Lab) Profile(topo *cluster.Topology, prog workloads.Program, mapping []int) *profile.Profile {
	key := topo.Name + "/" + prog.Name
	if p, ok := l.profiles[key]; ok {
		return p
	}
	eng := engPool.Get().(*des.Engine)
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, mapping, prog.Body, prog.Options())
	releaseEngine(eng)
	p, err := profile.FromTrace(res.Trace, topo, l.archSpeeds(topo, prog))
	if err != nil {
		panic(err)
	}
	if err := p.ComputeLambdas(l.modelFor(topo)); err != nil {
		panic(err)
	}
	l.profiles[key] = p
	return p
}

// dropProfiles evicts cached profiles (and speed measurements) whose app
// name matches, so one-shot synthetic configurations do not accumulate.
func (l *Lab) dropProfiles(app string) {
	for k := range l.profiles {
		if l.profiles[k].App == app {
			delete(l.profiles, k)
		}
	}
	for k := range l.speeds {
		if len(k) > len(app) && k[len(k)-len(app):] == app {
			delete(l.speeds, k)
		}
	}
}

// Evaluator builds the CBES evaluator for a profiled program.
func (l *Lab) Evaluator(topo *cluster.Topology, prog workloads.Program, profMapping []int) *core.Evaluator {
	p := l.Profile(topo, prog, profMapping)
	e, err := core.NewEvaluator(topo, l.modelFor(topo), p)
	if err != nil {
		panic(err)
	}
	return e
}

// JitterLevel selects background-load realism for measurement runs.
type JitterLevel int

// Jitter levels.
const (
	// JitterNone: perfectly quiet cluster.
	JitterNone JitterLevel = iota
	// JitterOS: "routine operating system processes" — availability
	// wanders in [0.97, 1.0]; per §5 this does not invalidate predictions.
	JitterOS
)

// Measure runs a program on a fresh instance of the topology under the
// mapping and returns the actual execution time in seconds. jitterSeed
// varies the background-load realization between repetitions.
func (l *Lab) Measure(topo *cluster.Topology, prog workloads.Program, mapping []int, jitter JitterLevel, jitterSeed int64) float64 {
	res := l.MeasureWithLoad(topo, prog, mapping, jitter, jitterSeed, nil)
	return res
}

// engPool recycles DES engines (and their warm event free lists) across
// measurement trials; engines come back via des.Engine.Reset, which restores
// the freshly-constructed state.
var engPool = sync.Pool{New: func() any { return des.NewEngine() }}

// releaseEngine returns a finished engine to the pool.
func releaseEngine(eng *des.Engine) {
	eng.Shutdown()
	eng.Reset()
	engPool.Put(eng)
}

// MeasureWithLoad is Measure plus explicit per-node availability overrides
// applied before the run (used by the phase-3 load-sensitivity study).
func (l *Lab) MeasureWithLoad(topo *cluster.Topology, prog workloads.Program, mapping []int, jitter JitterLevel, jitterSeed int64, avail map[int]float64) float64 {
	eng := engPool.Get().(*des.Engine)
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	rng := rand.New(rand.NewSource(jitterSeed))
	for id := 0; id < topo.NumNodes(); id++ {
		mean, overridden := avail[id]
		if !overridden {
			mean = 0.985
		}
		switch {
		case jitter == JitterOS:
			// The OS-noise walk wanders around the node's base availability
			// (explicit load overrides shift that base).
			vc.RandomWalkLoad(id, mean, 0.006, 500*des.Millisecond, rng.Int63())
			id := id
			m := mean
			eng.Schedule(0, func() { vc.SetAvailability(id, m) })
		case overridden:
			id := id
			m := mean
			eng.Schedule(0, func() { vc.SetAvailability(id, m) })
		}
	}
	res := mpisim.Run(vc, net, mapping, prog.Body, prog.Options())
	releaseEngine(eng)
	return res.Elapsed.Seconds()
}

// snapshotWithLoad builds an idle snapshot with explicit availability
// overrides — what the monitor would report after observing that load.
func snapshotWithLoad(topo *cluster.Topology, avail map[int]float64) *monitor.Snapshot {
	s := monitor.IdleSnapshot(topo.NumNodes())
	for node, a := range avail {
		s.AvailCPU[node] = a
	}
	return s
}

// predict evaluates a mapping under an idle snapshot.
func predict(e *core.Evaluator, m []int, snap *monitor.Snapshot) float64 {
	p, err := e.Predict(core.Mapping(m), snap)
	if err != nil {
		panic(err)
	}
	return p.Seconds
}

// errPct is the prediction error percentage relative to the actual time.
func errPct(predicted, actual float64) float64 {
	d := predicted - actual
	if d < 0 {
		d = -d
	}
	return d / actual * 100
}

// pickMapping draws a random injective mapping from pool.
func pickMapping(pool []int, ranks int, rng *rand.Rand) []int {
	p := append([]int(nil), pool...)
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return append([]int(nil), p[:ranks]...)
}

// pickContiguous draws a contiguous block of the (ID-sorted) pool starting
// at a random offset, wrapping around — the shape of mappings produced by
// round-robin allocation from a node list, which keeps most ranks
// topologically close.
func pickContiguous(pool []int, ranks int, rng *rand.Rand) []int {
	off := rng.Intn(len(pool))
	m := make([]int, ranks)
	for i := range m {
		m[i] = pool[(off+i)%len(pool)]
	}
	return m
}

// groveGroups returns the three node groups of §6.1: high (Alpha only),
// medium (Alpha+Intel), low (Alpha+Intel+SPARC).
func (l *Lab) groveGroups() (high, medium, low []int) {
	t := l.GroveTopo
	high = t.NodesByArch(cluster.ArchAlpha)
	medium = append(append([]int{}, high...), t.NodesByArch(cluster.ArchIntel)...)
	low = append(append([]int{}, medium...), t.NodesByArch(cluster.ArchSPARC)...)
	sort.Ints(medium)
	sort.Ints(low)
	return high, medium, low
}

// luProgram is the LU configuration of the §6.1 study.
func luProgram() workloads.Program { return workloads.LU(workloads.ClassB, 8) }
