package experiments

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/service"
	"cbes/internal/workloads"
)

// OverloadLab is not part of the paper reproduction: it characterizes
// the service tier's overload protection (DESIGN.md §15). Two arms run
// back to back — a protected daemon (adaptive admission, deadline-aware
// shedding, brownout degradation) and an unprotected control
// (DisableAdmission) — each driven by an open-loop fixed-arrival
// workload with per-request deadlines at several multiples of the
// probed 1x closed-loop capacity. Goodput counts only replies that
// return success within their deadline; brownout replies count, since a
// labeled cheaper answer beats an error. The protected arm should hold
// goodput near the 1x baseline at 10x offered load, while the
// unprotected arm collapses.

// overloadDeadline is the per-request deadline the lab's clients stamp.
const overloadDeadline = 250 * time.Millisecond

// overloadMults are the offered-load multiples of probed 1x capacity.
var overloadMults = []float64{1, 2, 5, 10}

// OverloadRow is one (arm, multiplier) measurement.
type OverloadRow struct {
	Protected bool
	Mult      float64
	Offered   float64 // offered load, requests/sec
	Sent      int64
	OK        int64 // successful replies (any latency)
	Goodput   float64
	GoodPct   float64 // goodput as % of offered
	Brownout  int64
	Shed      int64
	DeadlineE int64
	P50ms     float64
	P99ms     float64
}

// OverloadResult aggregates both arms.
type OverloadResult struct {
	Rows []OverloadRow
}

// Overload runs the overload-protection experiment. Scale shrinks the
// per-point duration and the synthetic application's phase count;
// multipliers are fixed so the two arms stay comparable at any scale.
func Overload(cfg Config) (*OverloadResult, error) {
	dur := time.Duration(float64(8*time.Second) * cfg.Scale)
	if dur < 2*time.Second {
		dur = 2 * time.Second
	}
	phases := int(12000 * cfg.Scale)
	if phases < 3000 {
		phases = 3000
	}
	res := &OverloadResult{}
	for _, protected := range []bool{true, false} {
		rows, err := overloadArm(protected, phases, dur, cfg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// overloadArm boots one daemon and sweeps the offered-load multipliers
// against it.
func overloadArm(protected bool, phases int, dur time.Duration, cfg Config) ([]OverloadRow, error) {
	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	defer sys.Close()
	sys.Calibrate(bench.Options{Reps: 3})
	// A heavyweight multi-phase application: each cache-miss prediction
	// walks phases × ranks proc estimates, so the overload is generated
	// against real prediction work rather than RPC plumbing.
	prog := workloads.Phased(phases, 8)
	if _, err := sys.Profile(prog, []int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		return nil, err
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		service.ServeWith(sys, l, service.ServeOptions{ //nolint:errcheck // clean close
			AdmissionTarget:  overloadDeadline / 2,
			DisableAdmission: !protected,
		})
	}()
	defer func() {
		l.Close()
		<-served
	}()
	addr := l.Addr().String()

	// A mapping pool much larger than the server's prediction cache keeps
	// the steady state on the real prediction path, not cache hits.
	rng := rand.New(rand.NewSource(cfg.Seed))
	mappings := make([][]int, 1<<15)
	for i := range mappings {
		mappings[i] = rng.Perm(8)
	}

	r0, err := overloadProbe(addr, prog.Name, mappings)
	if err != nil {
		return nil, err
	}
	if cfg.Verbose {
		arm := "unprotected"
		if protected {
			arm = "protected"
		}
		log.Printf("overload: %s arm, 1x capacity %.0f rps", arm, r0)
	}

	// off advances across points so each one exercises fresh mappings —
	// otherwise later points replay earlier ones out of the server's
	// prediction cache and measure hit latency instead of overload.
	var rows []OverloadRow
	off := 0
	for _, mult := range overloadMults {
		row, err := overloadPoint(addr, prog.Name, mappings, off, protected, mult, r0*mult, dur)
		if err != nil {
			return nil, err
		}
		off += int(row.Sent)
		rows = append(rows, *row)
		// Let the previous point's queue fully drain before the next one.
		time.Sleep(300 * time.Millisecond)
		if cfg.Verbose {
			log.Printf("overload: %4.0fx offered %.0f rps -> goodput %.0f rps (%.0f%%)",
				mult, row.Offered, row.Goodput, row.GoodPct)
		}
	}
	return rows, nil
}

// overloadOp fires request i of the 80% Evaluate / 20% Compare mix and
// reports whether the reply was a brownout answer.
func overloadOp(c *service.Client, app string, i int, mappings [][]int) (brownout bool, err error) {
	if i%5 == 4 {
		batch := [][]int{mappings[i%len(mappings)], mappings[(i+1)%len(mappings)]}
		var r *service.CompareReply
		if r, err = c.Compare(app, batch); err == nil {
			brownout = r.Brownout
		}
		return brownout, err
	}
	var r *service.EvaluateReply
	if r, err = c.Evaluate(app, mappings[i%len(mappings)]); err == nil {
		brownout = r.Brownout
	}
	return brownout, err
}

// overloadProbe measures closed-loop throughput of the op mix — the 1x
// reference the multipliers scale from.
func overloadProbe(addr, app string, mappings [][]int) (float64, error) {
	const clients = 8
	// One synchronous warmup pays the first-evaluation setup outside the
	// probe window.
	if c, err := service.Dial(addr); err == nil {
		c.Evaluate(app, mappings[len(mappings)-1]) //nolint:errcheck // warmup only
		c.Close()
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ops int64
	)
	deadl := time.Now().Add(time.Second)
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := service.Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			var my int64
			base := ci * (len(mappings) / clients)
			for i := 0; time.Now().Before(deadl); i++ {
				if _, err := overloadOp(c, app, base+i, mappings); err == nil {
					my++
				}
			}
			mu.Lock()
			ops += my
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if ops == 0 || elapsed <= 0 {
		return 0, fmt.Errorf("experiments: overload capacity probe completed no requests")
	}
	return float64(ops) / elapsed, nil
}

// overloadPoint sustains one offered load on a fixed arrival schedule
// and aggregates the outcome. A side goroutine advances simulated time
// once a second, so the snapshot epoch churns under load like a live
// deployment's monitor would make it.
func overloadPoint(addr, app string, mappings [][]int, off int, protected bool, mult, rps float64, dur time.Duration) (*OverloadRow, error) {
	if rps < 1 {
		rps = 1
	}
	const nConns = 16
	conns := make([]*service.Client, nConns)
	for i := range conns {
		c, err := service.Dial(addr)
		if err != nil {
			return nil, err
		}
		c.SetCallTimeout(overloadDeadline)
		c.SetRetryPolicy(service.RetryPolicy{Max: -1})
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	stop := make(chan struct{})
	var advWG sync.WaitGroup
	advWG.Add(1)
	go func() {
		defer advWG.Done()
		c, err := service.Dial(addr)
		if err != nil {
			return
		}
		defer c.Close()
		c.SetCallTimeout(5 * time.Second)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				c.Advance(0.05) //nolint:errcheck // epoch churn only
			}
		}
	}()

	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		sent, ok  int64
		good      int64
		brownouts int64
		sheds     int64
		deadlines int64
		lat       []float64
	)
	interval := time.Duration(float64(time.Second) / rps)
	n := int(rps * dur.Seconds())
	start := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := conns[i%len(conns)]
			t0 := time.Now()
			brownout, err := overloadOp(c, app, off+i, mappings)
			took := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			sent++
			switch {
			case err == nil:
				ok++
				lat = append(lat, took.Seconds())
				if took <= overloadDeadline {
					good++
				}
				if brownout {
					brownouts++
				}
			case service.IsShed(err):
				sheds++
			case service.IsDeadlineExceeded(err):
				deadlines++
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	advWG.Wait()

	sort.Float64s(lat)
	row := &OverloadRow{
		Protected: protected,
		Mult:      mult,
		Offered:   rps,
		Sent:      sent,
		OK:        ok,
		Goodput:   float64(good) / elapsed.Seconds(),
		Brownout:  brownouts,
		Shed:      sheds,
		DeadlineE: deadlines,
	}
	if rps > 0 {
		row.GoodPct = row.Goodput / rps * 100
	}
	if len(lat) > 0 {
		row.P50ms = quantileSorted(lat, 0.50) * 1e3
		row.P99ms = quantileSorted(lat, 0.99) * 1e3
	}
	return row, nil
}

// quantileSorted reads the p-quantile from sorted samples (nearest rank).
func quantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// Render formats both arms as a table plus the acceptance summary.
func (r *OverloadResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Overload protection: open-loop goodput vs offered load (250ms deadlines)\n")
	fmt.Fprintf(&sb, "%-12s %5s %9s %7s %7s %9s %7s %9s %6s %9s %9s %9s\n",
		"arm", "mult", "offered", "sent", "ok", "goodput", "good%", "brownout", "shed", "deadline", "p50_ms", "p99_ms")
	for _, row := range r.Rows {
		arm := "unprotected"
		if row.Protected {
			arm = "protected"
		}
		fmt.Fprintf(&sb, "%-12s %4.0fx %9.0f %7d %7d %9.0f %6.1f%% %9d %6d %9d %9.1f %9.1f\n",
			arm, row.Mult, row.Offered, row.Sent, row.OK, row.Goodput, row.GoodPct,
			row.Brownout, row.Shed, row.DeadlineE, row.P50ms, row.P99ms)
	}
	// Both arms compare against the healthy protected 1x goodput: the
	// unprotected arm's own 1x point sits at the open-loop instability
	// knee (offered == capacity), so it makes a degenerate baseline.
	if base := r.find(true, 1); base != nil && base.Goodput > 0 {
		if at10 := r.find(true, 10); at10 != nil {
			fmt.Fprintf(&sb, "protected goodput at 10x = %.0f%% of the 1x baseline (%.0f vs %.0f rps)\n",
				at10.Goodput/base.Goodput*100, at10.Goodput, base.Goodput)
		}
		if at10 := r.find(false, 10); at10 != nil {
			fmt.Fprintf(&sb, "unprotected goodput at 10x = %.0f%% of that baseline (%.0f vs %.0f rps)\n",
				at10.Goodput/base.Goodput*100, at10.Goodput, base.Goodput)
		}
	}
	return sb.String()
}

// find returns the row for (protected, mult), or nil.
func (r *OverloadResult) find(protected bool, mult float64) *OverloadRow {
	for i := range r.Rows {
		if r.Rows[i].Protected == protected && r.Rows[i].Mult == mult {
			return &r.Rows[i]
		}
	}
	return nil
}

// WriteCSV dumps both arms' rows.
func (r *OverloadResult) WriteCSV(dir string) error {
	var rows [][]string
	for _, row := range r.Rows {
		arm := "unprotected"
		if row.Protected {
			arm = "protected"
		}
		rows = append(rows, []string{arm, f(row.Mult), f(row.Offered),
			strconv.FormatInt(row.Sent, 10), strconv.FormatInt(row.OK, 10),
			f(row.Goodput), f(row.GoodPct), strconv.FormatInt(row.Brownout, 10),
			strconv.FormatInt(row.Shed, 10), strconv.FormatInt(row.DeadlineE, 10),
			f(row.P50ms), f(row.P99ms)})
	}
	return writeCSV(filepath.Join(dir, "overload.csv"),
		[]string{"arm", "mult", "offered_rps", "sent", "ok", "goodput_rps",
			"goodput_pct", "brownout", "shed", "deadline_err", "p50_ms", "p99_ms"}, rows)
}
