package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/parfor"
	"cbes/internal/schedule"
	"cbes/internal/stats"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

// AblationResult quantifies the design choices DESIGN.md calls out:
//
//   - the λ correction factor of eq. 7 (vs. assuming λ = 1);
//   - the O(N) path-class latency model (vs. full O(N²) calibration);
//   - NWS-style adaptive forecasting (vs. the Grove prototype's
//     last-value);
//   - the SA scheduler (vs. GA, random, and the exhaustive optimum on a
//     small pool).
type AblationResult struct {
	LambdaOnErr  float64 // mean prediction error % with λ
	LambdaOffErr float64 // mean prediction error % with λ forced to 1

	ClassModelErr    float64 // mean |model-sim| % of class-based curves
	AllPairsModelErr float64 // same for full O(N²) calibration
	ClassCount       int
	PairCount        int

	LastValueRMSE float64 // forecaster error under volatile load
	NWSRMSE       float64

	SchedulerGapPct map[string]float64 // mean gap to exhaustive optimum
}

// Ablations runs all four studies.
func Ablations(l *Lab, cfg Config) *AblationResult {
	res := &AblationResult{SchedulerGapPct: map[string]float64{}}
	res.lambdaStudy(l, cfg)
	res.modelStudy(l, cfg)
	res.forecastStudy(cfg)
	res.schedulerStudy(l, cfg)
	return res
}

// lambdaStudy compares prediction error with and without the λ correction
// in the regime eq. 7 is designed for: computation/communication overlap,
// where the theoretical time Θ overstates the real communication
// contribution and λ < 1 corrects it. The program is a half-overlapped
// synthetic ring on the single-switch east group (4 Alpha + 6 Intel on the
// stack), so contention and collective skew — which the formula cannot
// represent — stay out of the picture.
func (r *AblationResult) lambdaStudy(l *Lab, cfg Config) {
	prog := workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 8, Iterations: 30, ComputePerIter: 0.03,
		MsgSize: 24 << 10, MsgsPerIter: 2, Overlap: 0.7,
	})
	// The ten stack nodes (IDs 0..9): one switch, no trunk.
	pool := make([]int, 10)
	for i := range pool {
		pool[i] = i
	}
	evalOn := l.Evaluator(l.GroveTopo, prog, pool[:8])
	prof := l.Profile(l.GroveTopo, prog, pool[:8])
	defer l.dropProfiles(prog.Name)

	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	n := cfg.scaled(16, 6)
	snap := monitor.IdleSnapshot(l.GroveTopo.NumNodes())
	// Pre-draw the mappings serially, then fan the measure+predict pairs out.
	mappings := make([][]int, n)
	for i := range mappings {
		mappings[i] = pickMapping(pool, prog.Ranks, rng)
	}
	errOn := make([]float64, n)
	errOff := make([]float64, n)
	parfor.Do(cfg.jobs(), n, func(i int) {
		m := mappings[i]
		actual := l.Measure(l.GroveTopo, prog, m, JitterNone, 0)
		pOn := predict(evalOn, m, snap)
		errOn[i] = errPct(pOn, actual)

		// λ=1 prediction: undo the per-process λ scaling of the C term in
		// the breakdown (C_i/λ_i = raw Θ_i).
		pred, err := evalOn.Predict(core.Mapping(m), snap)
		if err != nil {
			panic(err)
		}
		adj := 0.0
		for si, seg := range pred.Segments {
			segMax := 0.0
			for pi, pe := range seg.Procs {
				lam := prof.Segments[si].Procs[pi].Lambda
				c := pe.C
				if lam > 0 {
					c = pe.C / lam
				}
				if t := pe.R + c; t > segMax {
					segMax = t
				}
			}
			adj += segMax
		}
		errOff[i] = errPct(adj, actual)
	})
	r.LambdaOnErr = stats.Mean(errOn)
	r.LambdaOffErr = stats.Mean(errOff)
	cfg.logf("ablation λ: on %.2f%% off %.2f%%", r.LambdaOnErr, r.LambdaOffErr)
}

// modelStudy compares class-representative calibration against full
// O(N²) calibration on Orange Grove, scoring both against direct
// measurements of random pairs.
func (r *AblationResult) modelStudy(l *Lab, cfg Config) {
	topo := l.GroveTopo
	sizes := []int64{64, 8 << 10}
	classModel := bench.Calibrate(topo, bench.Options{Reps: 3, Sizes: sizes, SkipLoadFit: true})
	allModel := bench.Calibrate(topo, bench.Options{Reps: 3, Sizes: sizes, SkipLoadFit: true, AllPairs: true})
	r.ClassCount = len(classModel.Classes)
	r.PairCount = topo.NumNodes() * (topo.NumNodes() - 1)

	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	probes := cfg.scaled(24, 8)
	// Pre-draw all probe pairs — including the discarded a==b draws, which
	// still consume rng state exactly as the serial loop did — then fan the
	// valid probes out.
	type probe struct {
		a, b int
		size int64
	}
	var valid []probe
	for i := 0; i < probes; i++ {
		a, b := rng.Intn(topo.NumNodes()), rng.Intn(topo.NumNodes())
		if a == b {
			continue
		}
		valid = append(valid, probe{a, b, sizes[i%len(sizes)]})
	}
	classErr := make([]float64, len(valid))
	allErr := make([]float64, len(valid))
	parfor.Do(cfg.jobs(), len(valid), func(i int) {
		p := valid[i]
		direct := bench.MeasurePairLatency(topo, p.a, p.b, p.size, 5, 1.0)
		classErr[i] = errPct(classModel.NoLoad(p.a, p.b, p.size), direct)
		allErr[i] = errPct(allModel.NoLoad(p.a, p.b, p.size), direct)
	})
	r.ClassModelErr = stats.Mean(classErr)
	r.AllPairsModelErr = stats.Mean(allErr)
	cfg.logf("ablation model: class %.2f%% allpairs %.2f%%", r.ClassModelErr, r.AllPairsModelErr)
}

// forecastStudy scores last-value vs NWS-adaptive forecasts of the true
// availability from NOISY sensor observations of a slowly varying load —
// the condition real monitors operate under, where last-value carries the
// full measurement noise while the adaptive predictor family smooths it.
func (r *AblationResult) forecastStudy(cfg Config) {
	eng := des.NewEngine()
	topo := cluster.NewTestTopology()
	vc := vcluster.New(eng, topo)
	vc.RandomWalkLoad(0, 0.6, 0.02, des.Second, cfg.Seed+13)
	noise := rand.New(rand.NewSource(cfg.Seed + 14))

	last := monitor.NewLastValue()
	nws := monitor.NewAdaptive()
	var seLast, seNWS float64
	n := 0
	eng.Spawn("probe", func(p *des.Proc) {
		for i := 0; i < 300; i++ {
			p.Sleep(des.Second)
			truth := vc.Availability(0)
			if i > 0 {
				dl := last.Forecast() - truth
				dn := nws.Forecast() - truth
				seLast += dl * dl
				seNWS += dn * dn
				n++
			}
			observed := truth * (1 + 0.12*noise.NormFloat64())
			last.Update(observed)
			nws.Update(observed)
		}
	})
	eng.RunUntil(400 * des.Second)
	eng.Shutdown()
	r.LastValueRMSE = rmse(seLast, n)
	r.NWSRMSE = rmse(seNWS, n)
	cfg.logf("ablation forecast: last %.4f nws %.4f", r.LastValueRMSE, r.NWSRMSE)
}

func rmse(se float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(se / float64(n))
}

// schedulerStudy measures the gap of each scheduler to the exhaustive
// optimum on a small pool.
func (r *AblationResult) schedulerStudy(l *Lab, cfg Config) {
	prog := luProgram()
	high, _, _ := l.groveGroups()
	eval := l.Evaluator(l.GroveTopo, prog, high)
	pool := high // 8 nodes, 8 ranks: 8! mappings, exhaustive feasible
	snap := monitor.IdleSnapshot(l.GroveTopo.NumNodes())
	req := func(seed int64) *schedule.Request {
		return &schedule.Request{Eval: eval, Snap: snap, Pool: pool, Seed: seed, Effort: 2500}
	}
	opt, err := schedule.Exhaustive(req(0))
	if err != nil {
		panic(err)
	}
	type alg struct {
		name string
		run  func(seed int64) (*schedule.Decision, error)
	}
	algs := []alg{
		{"cs", func(s int64) (*schedule.Decision, error) { return schedule.SimulatedAnnealing(req(s)) }},
		{"ga", func(s int64) (*schedule.Decision, error) { return schedule.Genetic(req(s)) }},
		{"rs", func(s int64) (*schedule.Decision, error) { return schedule.Random(req(s)) }},
	}
	trials := cfg.scaled(10, 4)
	gaps := make([][]float64, len(algs))
	for ai := range gaps {
		gaps[ai] = make([]float64, trials)
	}
	parfor.Do(cfg.jobs(), len(algs)*trials, func(i int) {
		ai, s := i/trials, i%trials
		d, err := algs[ai].run(cfg.Seed + 100 + int64(s))
		if err != nil {
			panic(err)
		}
		gaps[ai][s] = (d.Predicted - opt.Predicted) / opt.Predicted * 100
	})
	for ai, a := range algs {
		r.SchedulerGapPct[a.name] = stats.Mean(gaps[ai])
	}
	cfg.logf("ablation schedulers: %v", r.SchedulerGapPct)
}

// Render formats the ablation summary.
func (r *AblationResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablations — design-choice studies\n")
	fmt.Fprintf(&sb, "  λ correction (eq. 7):   with λ %.2f%% mean error, λ=1 %.2f%%\n",
		r.LambdaOnErr, r.LambdaOffErr)
	fmt.Fprintf(&sb, "  latency model:          %d classes err %.2f%% vs %d-pair O(N²) err %.2f%%\n",
		r.ClassCount, r.ClassModelErr, r.PairCount, r.AllPairsModelErr)
	fmt.Fprintf(&sb, "  forecasting (volatile): last-value RMSE %.4f vs NWS-adaptive %.4f\n",
		r.LastValueRMSE, r.NWSRMSE)
	sb.WriteString("  scheduler gap to exhaustive optimum:")
	for _, name := range []string{"cs", "ga", "rs"} {
		if v, ok := r.SchedulerGapPct[name]; ok {
			fmt.Fprintf(&sb, "  %s %.2f%%", name, v)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}
