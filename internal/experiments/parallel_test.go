package experiments

import (
	"reflect"
	"testing"

	"cbes/internal/raceflag"
)

// TestParallelMatchesSerial is the acceptance test for the parallel lab:
// experiment results for a fixed seed must be byte-identical between the
// serial reference order (Jobs=1) and a parallel run. It covers the three
// distinct fan-out shapes — pre-drawn rng trials (Fig6), a serial
// pre-pass feeding an indexed grid (Phase1), and index-derived seeds with
// embedded anneals (Table2). Wall-clock fields (SchedulerSecs and friends)
// are excluded by construction: none of these results carry them.
func TestParallelMatchesSerial(t *testing.T) {
	l := lab(t)
	serial := tinyCfg()
	serial.Jobs = 1
	parallel := tinyCfg()
	parallel.Jobs = 8

	t.Run("fig6", func(t *testing.T) {
		a := Fig6LUZones(l, serial)
		b := Fig6LUZones(l, parallel)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("fig6 diverged:\nserial:   %+v\nparallel: %+v", a, b)
		}
		if a.Render() != b.Render() {
			t.Fatal("fig6 renders differ")
		}
	})
	t.Run("phase1", func(t *testing.T) {
		a := Phase1Sweep(l, serial)
		b := Phase1Sweep(l, parallel)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("phase1 diverged:\nserial:   %+v\nparallel: %+v", a, b)
		}
		if a.Render() != b.Render() {
			t.Fatal("phase1 renders differ")
		}
	})
	t.Run("table2", func(t *testing.T) {
		if raceflag.Enabled {
			t.Skip("embedded anneals make table2 impractically slow under -race; fig6/phase1 exercise the same fan-out machinery")
		}
		a := Table2(l, serial)
		b := Table2(l, parallel)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("table2 diverged:\nserial:   %+v\nparallel: %+v", a, b)
		}
		if a.Render() != b.Render() {
			t.Fatal("table2 renders differ")
		}
	})
}

// TestScaledClamp pins the rounding fix: scaled can never return 0, even for
// Scale values that round the budget down past the explicit minimum.
func TestScaledClamp(t *testing.T) {
	cases := []struct {
		scale     float64
		full, min int
		want      int
	}{
		{0.0001, 100, 0, 1}, // rounds to 0, clamped to 1
		{0.0001, 5, 3, 3},   // explicit min still wins
		{0.01, 100, 0, 1},
		{1, 100, 10, 100},
		{0.25, 100, 0, 25},
		{0.5, 1, 0, 1}, // 0.5 rounds up
	}
	for _, c := range cases {
		got := Config{Scale: c.scale}.scaled(c.full, c.min)
		if got != c.want {
			t.Errorf("Config{Scale:%v}.scaled(%d,%d) = %d, want %d",
				c.scale, c.full, c.min, got, c.want)
		}
		if got < 1 {
			t.Errorf("scaled(%d,%d) at scale %v returned %d < 1", c.full, c.min, c.scale, got)
		}
	}
}

// TestJobsResolution pins the worker-count defaulting.
func TestJobsResolution(t *testing.T) {
	if got := (Config{Jobs: 1}).jobs(); got != 1 {
		t.Fatalf("Jobs=1 resolved to %d", got)
	}
	if got := (Config{Jobs: 3}).jobs(); got != 3 {
		t.Fatalf("Jobs=3 resolved to %d", got)
	}
	if got := (Config{}).jobs(); got < 1 {
		t.Fatalf("default jobs = %d, want >= 1", got)
	}
}
