package experiments

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"cbes/internal/des"
	"cbes/internal/faults"
	"cbes/internal/monitor"
	"cbes/internal/parfor"
	"cbes/internal/remap"
	"cbes/internal/schedule"
	"cbes/internal/simnet"
	"cbes/internal/stats"
	"cbes/internal/vcluster"
)

// FaultTolStep is one observation point of the fault-tolerance study: the
// cluster health the monitor reports, the quality of a fresh CS and RS
// scheduling decision under those conditions, and what the remap advisor
// told the running application to do.
type FaultTolStep struct {
	TimeSec float64
	Down    int
	Suspect int
	// Injected is the cumulative fault-event count at this point.
	Injected int
	// CSPred / RSPred are the predicted execution times of the mappings the
	// communication-sensitive and random schedulers pick from the healthy
	// pool (RS averaged over several draws).
	CSPred       float64
	RSPred       float64
	RSPenaltyPct float64
	// CSDegraded reports that the CS prediction ran in profile-only
	// fallback mode (stale monitoring data on a mapped node).
	CSDegraded bool
	// Advice is the remap advisor's verdict for the running application:
	// "stay", "remap", or "evacuate" (current mapping straddles a dead
	// node). "infeasible" marks steps where too few healthy nodes remained.
	Advice string
}

// FaultTolResult is the fault-tolerance experiment: CS-vs-RS mapping
// quality and remap-advisor behaviour while a seeded fault schedule
// crashes nodes, degrades links, and drops sensors — the degraded-mode
// story the paper's §8 monitoring discussion implies but never measures.
type FaultTolResult struct {
	Steps       []FaultTolStep
	TotalFaults int
	Remaps      int
	Evacuations int
	// MeanRSPenaltyPct is the average extra predicted time RS pays over CS
	// across all feasible observation points.
	MeanRSPenaltyPct float64
	// DegradedSteps counts observation points whose CS prediction fell back
	// to profile-only data.
	DegradedSteps int
}

// FaultTolerance replays a seeded crash/degrade schedule against a fresh
// simulated Orange Grove and, at fixed observation intervals, (a) re-runs
// the CS and RS schedulers on the monitor's (possibly degraded) snapshot,
// and (b) consults the remap advisor for an application that keeps running
// on its original mapping. One crash is aimed at that application's first
// node so the evacuation path is always exercised.
func FaultTolerance(l *Lab, cfg Config) *FaultTolResult {
	prog := luProgram()
	high, med, _ := l.groveGroups()
	eval := l.Evaluator(l.GroveTopo, prog, high)

	// A dedicated simulated instance of the grove: the lab's measurement
	// engines are pooled and reset, while this one accumulates fault state
	// across the whole horizon.
	eng := des.NewEngine()
	defer eng.Shutdown()
	topo := l.GroveTopo
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	mon := monitor.NewSystemMonitor(vc, net, monitor.Config{Noise: monitor.NoNoise})
	inj := faults.NewInjector(vc, net, mon)

	const horizon = 240 * des.Second
	sched := faults.RandomSchedule(topo, faults.RandomConfig{
		Seed:        cfg.Seed + 13,
		Horizon:     horizon,
		Crashes:     3,
		Degrades:    2,
		SensorDrops: 1,
	})
	if err := inj.Install(sched); err != nil {
		panic(err)
	}

	// The running application: CS places it on the medium pool while the
	// cluster is still healthy; the advisor follows it from there.
	pool := med
	effort := cfg.scaled(4000, 1500)
	dec0, err := schedule.SimulatedAnnealing(&schedule.Request{
		Eval: eval, Snap: mon.Snapshot(), Pool: pool, Seed: cfg.Seed, Effort: effort,
	})
	if err != nil {
		panic(err)
	}
	current := dec0.Mapping

	// Aim one crash at the application's first node: the random schedule
	// may well miss the chosen mapping, and the evacuation path is the
	// behaviour this experiment exists to show.
	if err := inj.Install(faults.Schedule{
		{At: horizon / 3, Kind: faults.NodeCrash, Node: current[0]},
		{At: 3 * horizon / 4, Kind: faults.NodeRecover, Node: current[0]},
	}); err != nil {
		panic(err)
	}

	adv := &remap.Advisor{Eval: eval, Pool: pool, MigrationCost: 5, Effort: effort}

	steps := cfg.scaled(12, 6)
	rsRuns := cfg.scaled(8, 3)
	res := &FaultTolResult{}
	var penalties []float64
	for s := 1; s <= steps; s++ {
		ts := horizon * des.Time(s) / des.Time(steps)
		eng.RunUntil(ts)
		snap := mon.Snapshot()
		_, suspect, down := snap.HealthCounts()
		row := FaultTolStep{
			TimeSec:  ts.Seconds(),
			Down:     down,
			Suspect:  suspect,
			Injected: inj.Injected(),
		}

		// Fresh scheduling under the observed conditions: CS plus rsRuns
		// independent RS draws, all over the same snapshot (pure reads), so
		// they fan out; seeds derive from the step and draw indices.
		rsPreds := make([]float64, rsRuns)
		var csDec *schedule.Decision
		var csErr error
		rsErrs := make([]error, rsRuns)
		parfor.Do(cfg.jobs(), rsRuns+1, func(i int) {
			if i == rsRuns {
				csDec, csErr = schedule.SimulatedAnnealing(&schedule.Request{
					Eval: eval, Snap: snap, Pool: pool,
					Seed: cfg.Seed + int64(10*s), Effort: effort,
				})
				return
			}
			d, err := schedule.Random(&schedule.Request{
				Eval: eval, Snap: snap, Pool: pool,
				Seed: cfg.Seed + int64(100*s+i),
			})
			if err != nil {
				rsErrs[i] = err
				return
			}
			rsPreds[i] = d.Predicted
		})
		feasible := csErr == nil
		for _, err := range rsErrs {
			if err != nil {
				feasible = false
			}
		}
		switch {
		case feasible:
			row.CSPred = csDec.Predicted
			row.RSPred = stats.Mean(rsPreds)
			row.RSPenaltyPct = (row.RSPred - row.CSPred) / row.CSPred * 100
			penalties = append(penalties, row.RSPenaltyPct)
			if p, err := eval.Predict(csDec.Mapping, snap); err == nil && p.Degraded {
				row.CSDegraded = true
				res.DegradedSteps++
			}
		case errors.Is(csErr, schedule.ErrInfeasible):
			row.Advice = "infeasible"
		default:
			panic(csErr)
		}

		// The remap advisor follows the running application; remaining work
		// shrinks linearly over the horizon.
		if row.Advice == "" {
			remaining := float64(steps-s+1) / float64(steps)
			advice, err := adv.Evaluate(current, remaining, snap, cfg.Seed+int64(1000+s))
			switch {
			case errors.Is(err, schedule.ErrInfeasible):
				row.Advice = "infeasible"
			case err != nil:
				panic(err)
			case advice.Remap && math.IsInf(advice.Current, 1):
				row.Advice = "evacuate"
				res.Evacuations++
				res.Remaps++
				current = advice.Mapping
			case advice.Remap:
				row.Advice = "remap"
				res.Remaps++
				current = advice.Mapping
			default:
				row.Advice = "stay"
			}
		}
		res.Steps = append(res.Steps, row)
		cfg.logf("faulttol: t=%.0fs down=%d suspect=%d cs=%.1f rs=%.1f advice=%s",
			row.TimeSec, down, suspect, row.CSPred, row.RSPred, row.Advice)
	}
	res.TotalFaults = inj.Injected()
	if len(penalties) > 0 {
		res.MeanRSPenaltyPct = stats.Mean(penalties)
	}
	return res
}

// Render formats the fault-tolerance timeline.
func (r *FaultTolResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Fault tolerance — CS vs RS and remap advice under a crash/degrade schedule (Orange Grove)\n")
	sb.WriteString("  t(s)   down susp  CS pred(s)  RS pred(s)  RS penalty  degraded  advice\n")
	for _, s := range r.Steps {
		deg := ""
		if s.CSDegraded {
			deg = "yes"
		}
		fmt.Fprintf(&sb, "  %5.0f  %4d %4d  %10.1f  %10.1f  %9.1f%%  %-8s  %s\n",
			s.TimeSec, s.Down, s.Suspect, s.CSPred, s.RSPred, s.RSPenaltyPct, deg, s.Advice)
	}
	fmt.Fprintf(&sb, "  faults injected: %d; remaps: %d (%d forced evacuations); mean RS penalty %.1f%%; degraded steps: %d\n",
		r.TotalFaults, r.Remaps, r.Evacuations, r.MeanRSPenaltyPct, r.DegradedSteps)
	sb.WriteString("  (CS keeps finding near-best healthy mappings; the advisor evacuates the dead node and otherwise holds)\n")
	return sb.String()
}
