package experiments

import (
	"fmt"
	"strings"

	"cbes/internal/accuracy"
	"cbes/internal/monitor"
	"cbes/internal/parfor"
	"cbes/internal/stats"
	"cbes/internal/workloads"
)

// Fig5Case is one bar of figure 5: a benchmark/class/node-count case with
// its mean prediction error and 95 % confidence interval over repetitions.
type Fig5Case struct {
	Name      string
	Nodes     int
	Runs      int
	MeanErr   float64
	CI        float64
	Predicted float64
	MeanTime  float64
}

// Fig5Result reproduces figure 5: prediction errors for the NPB 2.4 suite
// and HPL on Centurion mappings of up to 128 nodes. The paper observes
// mean errors below ≈3.5 % (one case slightly under 4 %).
type Fig5Result struct {
	Cases []Fig5Case
}

// Fig5 runs the benchmark suite predictions.
func Fig5(l *Lab, cfg Config) *Fig5Result {
	topo, _ := l.Centurion()
	runs := cfg.scaled(5, 2)

	type c struct {
		prog  workloads.Program
		nodes int
	}
	cases := []c{
		{workloads.IS(workloads.ClassA, 16), 16},
		{workloads.EP(workloads.ClassB, 64), 64},
		{workloads.SP(workloads.ClassA, 64), 64},
		{workloads.SP(workloads.ClassB, 64), 64},
		{workloads.MG(workloads.ClassA, 16), 16},
		{workloads.MG(workloads.ClassB, 64), 64},
		{workloads.CG(workloads.ClassA, 16), 16},
		{workloads.BT(workloads.ClassS, 16), 16},
		{workloads.BT(workloads.ClassA, 64), 64},
		{workloads.BT(workloads.ClassB, 121), 121},
		{workloads.LU(workloads.ClassA, 64), 64},
		{workloads.LU(workloads.ClassB, 128), 128},
		{workloads.HPL(10000, 128), 128},
	}

	if cfg.scale() <= 0.05 {
		// Tiny-scale runs keep one case per node-count tier.
		cases = []c{
			{workloads.IS(workloads.ClassA, 16), 16},
			{workloads.CG(workloads.ClassA, 16), 16},
			{workloads.BT(workloads.ClassS, 16), 16},
			{workloads.LU(workloads.ClassA, 64), 64},
		}
	}

	res := &Fig5Result{}
	// Serial pre-pass builds the profiled evaluators (lab caches are not
	// goroutine-safe); the measurement grid then fans out with per-trial
	// seeds derived from (case, run) indices.
	mappings := make([][]int, len(cases))
	preds := make([]float64, len(cases))
	grid := make([][]float64, len(cases))
	for i, tc := range cases {
		mappings[i] = centurionSpread(topo, tc.nodes)
		eval := l.Evaluator(topo, tc.prog, mappings[i])
		preds[i] = predict(eval, mappings[i], monitor.IdleSnapshot(topo.NumNodes()))
		grid[i] = make([]float64, runs)
	}
	parfor.Do(cfg.jobs(), len(cases)*runs, func(k int) {
		i, r := k/runs, k%runs
		grid[i][r] = l.Measure(topo, cases[i].prog, mappings[i], JitterOS, cfg.Seed+int64(1000*i+r))
	})
	for i, tc := range cases {
		pred := preds[i]
		times := grid[i]
		errs := make([]float64, runs)
		for r, actual := range times {
			errs[r] = errPct(pred, actual)
			// Feed every (predicted, measured) pair into the accuracy
			// ledger so the figure-5 study doubles as calibration data.
			accuracy.Default().ReportPair(accuracy.Prediction{
				App:       tc.prog.Name,
				Scheduler: "fig5",
				AgeBucket: accuracy.AgeBucket(0),
				Predicted: pred,
			}, actual)
		}
		mean, ci := stats.MeanCI(errs)
		res.Cases = append(res.Cases, Fig5Case{
			Name:      tc.prog.Name,
			Nodes:     tc.nodes,
			Runs:      runs,
			MeanErr:   mean,
			CI:        ci,
			Predicted: pred,
			MeanTime:  stats.Mean(times),
		})
		cfg.logf("fig5: %s done (err %.2f%%)", tc.prog.Name, mean)
	}
	return res
}

// Render formats the figure-5 table.
func (r *Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5 — prediction errors, NPB 2.4 suite and HPL (Centurion)\n")
	sb.WriteString("  benchmark        nodes  runs   mean err   ±CI95    predicted    measured\n")
	for _, c := range r.Cases {
		fmt.Fprintf(&sb, "  %-15s %5d %5d   %6.2f%%   %5.2f%%   %8.1fs   %8.1fs\n",
			c.Name, c.Nodes, c.Runs, c.MeanErr, c.CI, c.Predicted, c.MeanTime)
	}
	sb.WriteString("  (paper: all means < ≈3.5%, single worst case just under 4%)\n")
	return sb.String()
}
