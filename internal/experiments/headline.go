package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cbes/internal/monitor"
	"cbes/internal/parfor"
	"cbes/internal/schedule"
	"cbes/internal/stats"
)

// HeadlineResult reproduces the §1/§6 headline numbers:
//
//   - the internode-latency spread of each cluster (paper: ≈13 % Centurion,
//     ≈54 % Orange Grove);
//   - the maximum speedup of CS over a random scheduler for LU
//     (paper: 36.6 %) and the average-case gain over the mapping
//     population (paper: best ≈30 % below the population mean);
//   - the fraction of the theoretically available communication speedup
//     CBES captures (paper: up to ≈85 %).
type HeadlineResult struct {
	GroveSpreadPct     float64
	CenturionSpreadPct float64
	BestVsRandomMaxPct float64 // best mapping vs worst random selection
	BestVsRandomAvgPct float64 // best mapping vs random-selection average
	PopulationMean     float64
	BestTime           float64
	CommSpeedupPct     float64 // communication-time decrease, medium zone
	EfficiencyPct      float64 // achieved / theoretically available
}

// Headline computes the summary numbers.
func Headline(l *Lab, cfg Config) *HeadlineResult {
	res := &HeadlineResult{}
	// Small-message latency spread: the "internode latency differences" of
	// §6.
	res.GroveSpreadPct = l.GroveNet.Spread(64) * 100
	_, centNet := l.Centurion()
	res.CenturionSpreadPct = centNet.Spread(64) * 100

	// LU over the full Orange Grove: CS best vs random-scheduler samples.
	prog := luProgram()
	high, _, low := l.groveGroups()
	eval := l.Evaluator(l.GroveTopo, prog, high)
	snap := monitor.IdleSnapshot(l.GroveTopo.NumNodes())
	best, err := schedule.SimulatedAnnealing(&schedule.Request{
		Eval: eval, Snap: snap, Pool: low, Seed: cfg.Seed, Effort: 8000,
	})
	if err != nil {
		panic(err)
	}
	bestTime := l.Measure(l.GroveTopo, prog, best.Mapping, JitterOS, cfg.Seed)

	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	samples := cfg.scaled(40, 10)
	// Pre-draw each sample's two seeds in the serial rng order, then fan the
	// schedule+measure pairs out.
	type seedPair struct{ sched, jitter int64 }
	seeds := make([]seedPair, samples)
	for i := range seeds {
		seeds[i].sched = rng.Int63()
		seeds[i].jitter = rng.Int63()
	}
	times := make([]float64, samples)
	parfor.Do(cfg.jobs(), samples, func(i int) {
		dec, err := schedule.Random(&schedule.Request{
			Eval: eval, Snap: snap, Pool: low, Seed: seeds[i].sched,
		})
		if err != nil {
			panic(err)
		}
		times[i] = l.Measure(l.GroveTopo, prog, dec.Mapping, JitterOS, seeds[i].jitter)
	})
	res.PopulationMean = stats.Mean(times)
	res.BestTime = bestTime
	worst := stats.Max(times)
	res.BestVsRandomMaxPct = (worst - bestTime) / worst * 100
	res.BestVsRandomAvgPct = (res.PopulationMean - bestTime) / res.PopulationMean * 100

	// Communication-time decrease in the medium zone (the paper's LU(2)
	// analysis): best vs worst mapping at equal computation, so the entire
	// difference is communication.
	zones := l.luZones()
	med := zones[1]
	b2, err := schedule.SimulatedAnnealing(l.zoneRequest(eval, med, cfg.Seed+3, 6000, false))
	if err != nil {
		panic(err)
	}
	w2, err := schedule.SimulatedAnnealing(l.zoneRequest(eval, med, cfg.Seed+4, 6000, true))
	if err != nil {
		panic(err)
	}
	bt := l.Measure(l.GroveTopo, prog, b2.Mapping, JitterOS, cfg.Seed+5)
	wt := l.Measure(l.GroveTopo, prog, w2.Mapping, JitterOS, cfg.Seed+6)
	prof := l.Profile(l.GroveTopo, prog, high)
	commFrac := prof.CommFraction()
	if commFrac > 0 && wt > bt {
		res.CommSpeedupPct = (wt - bt) / (commFrac * wt) * 100
		if res.CommSpeedupPct > 100 {
			res.CommSpeedupPct = 100
		}
		available := res.GroveSpreadPct
		if available > 0 {
			res.EfficiencyPct = res.CommSpeedupPct / available * 100
			if res.EfficiencyPct > 100 {
				res.EfficiencyPct = 100
			}
		}
	}
	cfg.logf("headline done")
	return res
}

// Render formats the headline summary.
func (r *HeadlineResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Headline numbers (§1/§6)\n")
	fmt.Fprintf(&sb, "  internode latency spread, Orange Grove : %5.1f%%  (paper: up to ≈54%%)\n", r.GroveSpreadPct)
	fmt.Fprintf(&sb, "  internode latency spread, Centurion    : %5.1f%%  (paper: up to ≈13%%)\n", r.CenturionSpreadPct)
	fmt.Fprintf(&sb, "  LU best vs worst random mapping        : %5.1f%%  (paper max: 36.6%%)\n", r.BestVsRandomMaxPct)
	fmt.Fprintf(&sb, "  LU best vs random-population average   : %5.1f%%  (paper: ≈30%%)\n", r.BestVsRandomAvgPct)
	fmt.Fprintf(&sb, "  LU(2) communication-time decrease      : %5.1f%%  (paper: 46.4%%)\n", r.CommSpeedupPct)
	fmt.Fprintf(&sb, "  fraction of available speedup captured : %5.1f%%  (paper: ≈85%%)\n", r.EfficiencyPct)
	return sb.String()
}
