package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/monitor"
	"cbes/internal/parfor"
	"cbes/internal/stats"
	"cbes/internal/workloads"
)

// phase1Case is one pre-drawn sweep case, ready to be evaluated in parallel.
type phase1Case struct {
	bedName string
	topo    *cluster.Topology
	eval    *core.Evaluator
	mapping []int
	seed    int64
}

// Phase1Result summarises the synthetic prediction-error sweep of §5
// (phase 1): >16 000 parameter combinations in the paper, covering
// computation/communication overlap, communication granularity, execution
// duration, and the mapping space of both clusters. The paper found over
// 90 % of cases within 4 % error and a mean of ≈2 % ± 0.75 %.
type Phase1Result struct {
	Cases        int
	Errors       []float64 // per-case prediction error, %
	FracWithin4  float64
	MeanErr      float64
	MeanErrCI    float64
	P95Err       float64
	WorstErr     float64
	ByOverlap    map[string]float64 // mean error per overlap bucket
	ByGranular   map[string]float64 // mean error per message-size bucket
	ClusterCases map[string]int
}

// Phase1Sweep runs the synthetic benchmark sweep on both testbeds.
func Phase1Sweep(l *Lab, cfg Config) *Phase1Result {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	res := &Phase1Result{
		ByOverlap:    map[string]float64{},
		ByGranular:   map[string]float64{},
		ClusterCases: map[string]int{},
	}
	overlapCount := map[string]int{}
	granCount := map[string]int{}

	// Granularities span the latency-bound regime up to the eager/
	// rendezvous boundary. Larger transfers saturate the Orange Grove
	// federation trunk, whose queueing the additive latency model of eq. 6
	// cannot represent (documented in EXPERIMENTS.md).
	overlaps := []float64{0, 0.25, 0.5, 0.75, 1.0}
	sizes := []int64{1 << 10, 8 << 10, 32 << 10, 64 << 10}
	durations := []int{5, 20, 45} // iterations: short / medium / long
	if cfg.scale() <= 0.05 {
		// Tiny-scale runs (tests, benches) trim the sweep dimensions.
		overlaps = []float64{0, 0.5, 1.0}
		sizes = []int64{8 << 10, 64 << 10}
		durations = []int{5, 20}
	}
	mappingsPerConfig := cfg.scaled(12, 6)

	centTopo, _ := l.Centurion()
	type bed struct {
		name string
		pool []int
	}
	groveHigh, groveMed, groveLow := l.groveGroups()
	// Centurion's mapping space dwarfs Orange Grove's (128 vs 28 nodes),
	// so half the sweep cases live there: one bed of nodes packed onto two
	// switches, one spread round-robin across all eight, and one mixing
	// both architectures of a single switch.
	beds := []bed{
		{"grove-high", groveHigh},
		{"cent-spread", centurionSpread(centTopo, 16)},
		{"grove-med", groveMed},
		{"cent-packed", append(append([]int{}, centTopo.NodesOnSwitch(1)...), centTopo.NodesOnSwitch(2)...)},
		{"grove-low", groveLow},
		{"cent-switch", centTopo.NodesOnSwitch(3)},
	}

	for _, overlap := range overlaps {
		for _, size := range sizes {
			for _, iters := range durations {
				prog := workloads.Synthetic(workloads.SyntheticConfig{
					Ranks:          8,
					Iterations:     iters,
					ComputePerIter: 0.06,
					MsgSize:        size,
					MsgsPerIter:    2,
					Overlap:        overlap,
				})
				// Serial pre-pass: profile/evaluator cache population and
				// every rng draw happen in the original loop order; the
				// predict+measure work — all of the cost — then fans out
				// with results landing by index.
				cases := make([]phase1Case, mappingsPerConfig)
				for m := 0; m < mappingsPerConfig; m++ {
					c := &cases[m]
					c.bedName = beds[m%len(beds)].name
					pool := beds[m%len(beds)].pool
					c.topo = l.GroveTopo
					if strings.HasPrefix(c.bedName, "cent") {
						c.topo = centTopo
					}
					c.eval = l.Evaluator(c.topo, prog, pool[:8])
					// Most mappings are node-list-contiguous (the shape
					// real allocators hand out); a minority are fully
					// random scatters, which stress the model hardest.
					if m%4 == 3 {
						c.mapping = pickMapping(pool, 8, rng)
					} else {
						c.mapping = pickContiguous(pool, 8, rng)
					}
					c.seed = rng.Int63()
				}
				errs := make([]float64, mappingsPerConfig)
				parfor.Do(cfg.jobs(), mappingsPerConfig, func(m int) {
					c := &cases[m]
					pred := predict(c.eval, c.mapping, monitor.IdleSnapshot(c.topo.NumNodes()))
					actual := l.Measure(c.topo, prog, c.mapping, JitterOS, c.seed)
					errs[m] = errPct(pred, actual)
				})
				for m := 0; m < mappingsPerConfig; m++ {
					e := errs[m]
					res.Errors = append(res.Errors, e)
					res.Cases++
					res.ClusterCases[cases[m].bedName]++
					ok := fmt.Sprintf("%.2f", overlap)
					res.ByOverlap[ok] += e
					overlapCount[ok]++
					gk := sizeBucket(size)
					res.ByGranular[gk] += e
					granCount[gk]++
				}
				// Each synthetic config gets its own profile cache entry;
				// clear so the next config re-profiles.
				l.dropProfiles(prog.Name)
			}
		}
		cfg.logf("phase1: overlap %.2f done (%d cases)", overlap, res.Cases)
	}

	for k := range res.ByOverlap {
		res.ByOverlap[k] /= float64(overlapCount[k])
	}
	for k := range res.ByGranular {
		res.ByGranular[k] /= float64(granCount[k])
	}
	res.FracWithin4 = stats.FractionBelow(res.Errors, 4.0)
	res.MeanErr, res.MeanErrCI = stats.MeanCI(res.Errors)
	res.P95Err = stats.Percentile(res.Errors, 95)
	res.WorstErr = stats.Max(res.Errors)
	return res
}

// sizeBucket labels a message size for reporting.
func sizeBucket(size int64) string {
	switch {
	case size <= 1<<10:
		return "1KB"
	case size <= 8<<10:
		return "8KB"
	case size <= 32<<10:
		return "32KB"
	default:
		return "64KB"
	}
}

// centurionSpread picks n Centurion nodes spread round-robin over the edge
// switches with mixed architectures.
func centurionSpread(topo *cluster.Topology, n int) []int {
	var pool []int
	for i := 0; len(pool) < n; i++ {
		for sw := 1; sw <= 8 && len(pool) < n; sw++ {
			nodes := topo.NodesOnSwitch(sw)
			if i < len(nodes) {
				pool = append(pool, nodes[i])
			}
		}
	}
	return pool
}

// Render formats the result as a paper-style summary.
func (r *Phase1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Phase 1 — synthetic prediction-error sweep (%d cases)\n", r.Cases)
	fmt.Fprintf(&sb, "  cases with error <= 4%% : %5.1f%%   (paper: >90%%)\n", r.FracWithin4*100)
	fmt.Fprintf(&sb, "  mean error            : %5.2f%% ± %.2f%% (95%% CI)  (paper: ≈2%% ± 0.75%%)\n", r.MeanErr, r.MeanErrCI)
	fmt.Fprintf(&sb, "  95th percentile       : %5.2f%%\n", r.P95Err)
	fmt.Fprintf(&sb, "  worst case            : %5.2f%%\n", r.WorstErr)
	sb.WriteString("  mean error by overlap  :")
	for _, k := range []string{"0.00", "0.25", "0.50", "0.75", "1.00"} {
		if v, ok := r.ByOverlap[k]; ok {
			fmt.Fprintf(&sb, "  %s→%.2f%%", k, v)
		}
	}
	sb.WriteString("\n  mean error by msg size :")
	for _, k := range []string{"1KB", "8KB", "32KB", "64KB"} {
		if v, ok := r.ByGranular[k]; ok {
			fmt.Fprintf(&sb, "  %s→%.2f%%", k, v)
		}
	}
	sb.WriteString("\n")
	for _, b := range []string{"grove-high", "grove-med", "grove-low", "cent-spread", "cent-packed", "cent-switch"} {
		if c, ok := r.ClusterCases[b]; ok {
			fmt.Fprintf(&sb, "  %-12s %d cases\n", b, c)
		}
	}
	return sb.String()
}
