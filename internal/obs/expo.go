// Metric exposition: Prometheus text format (for /metrics and scraping
// tools), an expvar-compatible JSON snapshot (for /debug/vars and the
// Metrics RPC), and the debug HTTP mux cbesd mounts.
package obs

import (
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per child, and for
// histograms the cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			base := labelString(f.labels, c.labelValues, "")
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, base, c.counter.Value())
			case KindGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, base, formatFloat(c.gauge.Value()))
			case KindHistogram:
				cum := uint64(0)
				for i, b := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, c.labelValues, formatFloat(b)), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelValues, "+Inf"), c.hist.Count())
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatFloat(c.hist.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, c.hist.Count())
			}
		}
	}
}

// labelString renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label. Returns "" for no labels at all.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trippable form, +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns the registry as a plain JSON-marshalable tree:
// metric name → value (counter/gauge) or → {count, sum, buckets} for
// histograms; labeled families map label-set → value. This is the
// payload of /debug/vars and the Metrics RPC's JSON format.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		render := func(c *child) any {
			switch f.kind {
			case KindCounter:
				return c.counter.Value()
			case KindGauge:
				return c.gauge.Value()
			default:
				buckets := map[string]uint64{}
				cum := uint64(0)
				for i, b := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					buckets[formatFloat(b)] = cum
				}
				buckets["+Inf"] = c.hist.Count()
				return map[string]any{
					"count":   c.hist.Count(),
					"sum":     c.hist.Sum(),
					"buckets": buckets,
				}
			}
		}
		if len(f.labels) == 0 {
			if len(children) > 0 {
				out[f.name] = render(children[0])
			}
			continue
		}
		m := map[string]any{}
		for _, c := range children {
			key := strings.Join(c.labelValues, ",")
			m[key] = render(c)
		}
		out[f.name] = m
	}
	return out
}

var publishOnce sync.Once

// PublishExpvar publishes the registry under the expvar name "cbes", so
// the standard /debug/vars handler (and anything else walking expvar)
// sees the full metric tree next to memstats and cmdline. Idempotent —
// expvar panics on duplicate names, so only the first call publishes.
func PublishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("cbes", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// Handler serves the registry in Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// warnError is a probe result that should surface to operators without
// failing the probe: the endpoint stays 200 (traffic keeps flowing) but
// the body carries a "warning:" line for humans and smoke scripts.
type warnError struct{ msg string }

func (w *warnError) Error() string { return w.msg }

// Warnf builds a probe warning. Returned from a live/ready check, it
// keeps the probe passing (HTTP 200) while appending "warning: <text>"
// to the body — for conditions like calibration drift that an operator
// must see but that must not pull the daemon out of rotation.
func Warnf(format string, a ...any) error {
	return &warnError{msg: fmt.Sprintf(format, a...)}
}

// IsWarning reports whether err is (or wraps) a probe warning built by
// Warnf.
func IsWarning(err error) bool {
	var w *warnError
	return errors.As(err, &w)
}

// probeHandler renders one health probe: check() == nil ⇒ 200 "ok", a
// Warnf result ⇒ 200 "ok" plus a warning line, any other error ⇒ 503
// with the error text. A nil check always passes.
func probeHandler(check func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		var warn error
		if check != nil {
			if err := check(); err != nil {
				if !IsWarning(err) {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
				warn = err
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		if warn != nil {
			fmt.Fprintf(w, "warning: %s\n", warn.Error())
		}
	}
}

// DebugMux builds the debug-endpoint mux cbesd serves on -debug-listen:
//
//	/metrics         — Prometheus text exposition of reg
//	/debug/vars      — expvar JSON (reg published as "cbes")
//	/debug/spans     — recent spans of tr as a JSON array (?n=, ?name=, ?trace=)
//	/debug/trace     — one trace tree as Chrome trace-event JSON (?id=)
//	/debug/decisions — flight-recorder decision records (?n=, ?kind=, ?app=, ?trace=)
//	/healthz         — liveness probe; live() == nil ⇒ 200 "ok"
//	/readyz          — readiness probe; ready() == nil ⇒ 200 "ok"
//	/debug/pprof     — the standard runtime profiles
//
// Liveness answers "is the process able to serve at all" (restart it if
// not); readiness answers "should traffic be routed here right now" — a
// daemon serving a degraded cluster view stays live but goes unready. A
// nil ready falls back to live, so single-probe callers keep the old
// one-check behaviour on both paths; live, tr, and rec may also be nil
// (always-healthy, no span/trace/decision endpoints).
func DebugMux(reg *Registry, tr *Tracer, rec *Recorder, live, ready func() error) *http.ServeMux {
	PublishExpvar(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	if ready == nil {
		ready = live
	}
	mux.HandleFunc("/healthz", probeHandler(live))
	mux.HandleFunc("/readyz", probeHandler(ready))
	if tr != nil {
		mux.Handle("/debug/spans", SpanHandler(tr))
		mux.Handle("/debug/trace", TraceHandler(tr))
	}
	if rec != nil {
		mux.Handle("/debug/decisions", DecisionHandler(rec))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
