//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in; timing
// guards relax under its instrumentation overhead.
const raceEnabled = true
