// Chrome trace-event export: renders one trace's spans as the JSON
// object format Perfetto (https://ui.perfetto.dev) and chrome://tracing
// load directly — the /debug/trace?id=... endpoint. Each span becomes a
// complete ("X") event; events are laid out on synthetic tracks so that
// spans sharing a track always nest (child fully inside parent), which
// is the containment rule those viewers use to draw flame stacks.
// Concurrent siblings — parallel SA restarts under one scheduling
// decision — therefore land on separate tracks instead of rendering as
// a corrupted stack.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// chromeEvent is one trace-event JSON object (the subset we emit).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format; Perfetto accepts it
// with metadata alongside the event array.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteChromeTrace renders spans (typically one trace tree from
// Tracer.TraceSpans) as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for i, tid := range assignTracks(spans) {
		sp := spans[i]
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  "cbes",
			Ph:   "X",
			Ts:   sp.Start.UnixMicro(),
			Dur:  int64(sp.Seconds * 1e6),
			Pid:  1,
			Tid:  tid,
		}
		if ev.Dur < 1 {
			ev.Dur = 1 // zero-width events vanish in the viewer
		}
		if len(sp.Attrs) > 0 || sp.ID != "" {
			ev.Args = make(map[string]any, len(sp.Attrs)+2)
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Val
			}
			ev.Args["span"] = sp.ID
			if sp.Parent != "" {
				ev.Args["parent"] = sp.Parent
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"source": "cbes", "spans": len(spans)},
	})
}

// assignTracks maps each span index to a track (tid) such that any two
// spans on the same track are either disjoint in time or one contains
// the other — the invariant the trace viewers' nesting layout needs.
// Greedy first-fit over spans sorted by (start, -duration), so a parent
// is placed before its children and a child prefers its parent's track.
func assignTracks(spans []Span) []int {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := spans[order[a]], spans[order[b]]
		if !sa.Start.Equal(sb.Start) {
			return sa.Start.Before(sb.Start)
		}
		return sa.Seconds > sb.Seconds
	})
	type placed struct{ start, end int64 } // microseconds
	var tracks [][]placed
	tids := make([]int, len(spans))
	for _, i := range order {
		sp := spans[i]
		s := sp.Start.UnixMicro()
		e := s + int64(sp.Seconds*1e6)
		tid := -1
		for t := range tracks {
			ok := true
			for _, p := range tracks[t] {
				disjoint := e <= p.start || s >= p.end
				contains := (s >= p.start && e <= p.end) || (p.start >= s && p.end <= e)
				if !disjoint && !contains {
					ok = false
					break
				}
			}
			if ok {
				tid = t
				break
			}
		}
		if tid < 0 {
			tracks = append(tracks, nil)
			tid = len(tracks) - 1
		}
		tracks[tid] = append(tracks[tid], placed{s, e})
		tids[i] = tid
	}
	return tids
}

// TraceHandler serves one trace tree as Chrome trace-event JSON — the
// /debug/trace?id=<hex trace id> endpoint. Download the body and open
// it in Perfetto (or chrome://tracing) to see the RPC → cache → search
// → anneal-restart flame.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		idStr := req.URL.Query().Get("id")
		if idStr == "" {
			http.Error(w, "obs: missing ?id=<trace id>", http.StatusBadRequest)
			return
		}
		id, err := ParseID(idStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spans := t.TraceSpans(id)
		if len(spans) == 0 {
			http.Error(w, fmt.Sprintf("obs: no spans recorded for trace %s (evicted or never sampled?)", FormatID(id)),
				http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteChromeTrace(w, spans) //nolint:errcheck // best-effort debug endpoint
	})
}
