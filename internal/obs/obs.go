// Package obs is the CBES observability layer: a dependency-free metrics
// registry (atomic counters, gauges, and fixed log-scale-bucket
// histograms, optionally split by labels) with Prometheus text-exposition
// and expvar JSON output, plus a lightweight span tracer
// (see trace.go) that records timed, attributed events to an in-memory
// ring buffer and an optional JSONL sink.
//
// Design constraints, in order:
//
//  1. The hot path must stay hot. A counter increment is a single
//     uncontended atomic add (single-digit ns); a nil metric is a no-op,
//     so instrumentation can be disabled per call site without branches
//     at the caller. The schedulers evaluate millions of energies per
//     second (DESIGN.md §6) and must not notice they are being watched.
//  2. Stdlib only. No client_golang, no OpenTelemetry: the container
//     bakes in nothing beyond the go toolchain, and the paper's service
//     has no external dependencies either.
//  3. One global registry by default. CBES packages register their
//     metrics at init against Default(); a test that wants isolation
//     builds its own Registry.
//
// Naming follows the Prometheus conventions: `cbes_<subsystem>_<what>_
// <unit|total>`, snake_case, base units (seconds), counters suffixed
// `_total`. Label cardinality is kept tiny and fixed (RPC method names,
// scheduler algorithm names) — never node IDs or application names drawn
// from user input.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric families a Registry can hold.
type Kind int

// The supported metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter is a disabled no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n events.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (stored as atomic bits). The
// zero value is ready to use; a nil Gauge is a disabled no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d (CAS loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Bucket upper bounds
// are set at registration (LatencyBuckets by default) and never change,
// so observation is lock-free: a linear scan over ~25 bounds plus two
// atomic adds. A nil Histogram is a disabled no-op.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge // float64 sum via the gauge's CAS add
}

// NewHistogram builds a standalone histogram that is not attached to any
// registry. A nil buckets slice selects LatencyBuckets. Use this for
// local aggregation whose key space is too wide for Prometheus labels
// (per-application calibration buckets, say) while reusing the same
// lock-free observation path and quantile math.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Buckets snapshots the histogram: the sorted upper bounds and the
// per-bucket (non-cumulative) counts. counts has one extra trailing entry
// for the implicit +Inf overflow bucket, so len(counts) == len(bounds)+1.
// A nil histogram returns (nil, nil).
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed samples
// by linear interpolation inside the bucket holding the target rank.
// Samples in the +Inf overflow bucket clamp to the last finite bound. An
// empty (or nil) histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	_, counts := h.Buckets()
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) { // overflow bucket: clamp
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		within := (rank - float64(cum-c)) / float64(c)
		return lo + (h.bounds[i]-lo)*within
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets is the default histogram bucket set: a 1-2-5 log series
// from 1µs to 100s, suitable for both sub-millisecond fast-path
// evaluations and multi-second scheduler runs.
var LatencyBuckets = LogBuckets(1e-6, 100)

// LogBuckets builds a 1-2-5 log-scale bucket series covering [min, max].
// min must be a positive power-of-ten multiple of 1, 2, or 5 to land on
// the series exactly; any positive min is rounded down to the series.
func LogBuckets(min, max float64) []float64 {
	if min <= 0 || max < min {
		panic("obs: LogBuckets needs 0 < min <= max")
	}
	// Round min down onto the 1-2-5 grid.
	exp := math.Floor(math.Log10(min))
	base := math.Pow(10, exp)
	var start float64
	switch {
	case min >= 5*base:
		start = 5 * base
	case min >= 2*base:
		start = 2 * base
	default:
		start = base
	}
	var out []float64
	for v := start; v <= max*(1+1e-9); {
		out = append(out, v)
		switch lead(v) {
		case 1:
			v *= 2
		case 2:
			v *= 2.5
		default:
			v *= 2
		}
	}
	return out
}

// lead returns the leading 1-2-5 digit of a series value.
func lead(v float64) int {
	m := v / math.Pow(10, math.Floor(math.Log10(v)*(1+1e-12)))
	switch {
	case m < 1.5:
		return 1
	case m < 3.5:
		return 2
	default:
		return 5
	}
}

// family is one named metric with its children (one per label-value
// combination; the empty combination for unlabeled metrics).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child // keyed by joined label values
}

type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// labelKey joins label values with a separator no sane label contains.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) child(values ...string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.children[key] = c
	return c
}

// sortedChildren returns the children in deterministic label order.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	return out
}

// CounterVec is a counter family split by labels.
type CounterVec struct{ f *family }

// With resolves (creating on first use) the child for the label values.
// Hot call sites should resolve once and keep the *Counter.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values...).counter }

// GaugeVec is a gauge family split by labels.
type GaugeVec struct{ f *family }

// With resolves the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values...).gauge }

// HistogramVec is a histogram family split by labels.
type HistogramVec struct{ f *family }

// With resolves the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values...).hist }

// Registry holds metric families. Registration is idempotent: asking for
// an already-registered name returns the existing metric, so independent
// packages (and repeated test runs) can share families safely;
// re-registering under a different kind or label set panics, since that
// is always a programming error.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry all CBES packages register
// against.
func Default() *Registry { return defaultRegistry }

func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name: name, help: help, kind: kind,
				labels:   append([]string(nil), labels...),
				bounds:   bounds,
				children: map[string]*child{},
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %s re-registered as %v(%d labels), was %v(%d labels)",
			name, kind, len(labels), f.kind, len(f.labels)))
	}
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).child().counter
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).child().gauge
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabeled histogram. A nil buckets
// slice selects LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return r.family(name, help, KindHistogram, nil, buckets).child().hist
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return &HistogramVec{r.family(name, help, KindHistogram, labels, buckets)}
}

// sortedFamilies snapshots the families in name order for exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
