package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("c_total", "a counter"); same != c {
		t.Fatal("re-registration did not return the existing counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Start("x").Attr("k", 1).End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Spans() != nil {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("sum = %v, want 102.65", h.Sum())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary value 0.1
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
		"# TYPE h_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rpc_total", "requests", "method")
	v.With("Evaluate").Add(2)
	v.With("Schedule").Inc()
	if v.With("Evaluate").Value() != 2 {
		t.Fatal("labeled child lost its count")
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `rpc_total{method="Evaluate"} 2`) ||
		!strings.Contains(out, `rpc_total{method="Schedule"} 1`) {
		t.Fatalf("labeled exposition wrong:\n%s", out)
	}

	hv := r.HistogramVec("lat_seconds", "latency", []float64{1}, "method")
	hv.With("Evaluate").Observe(0.5)
	buf.Reset()
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `lat_seconds_bucket{method="Evaluate",le="1"} 1`) {
		t.Fatalf("labeled histogram exposition wrong:\n%s", buf.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("x", "")
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("h_seconds", "", []float64{1})
	v := r.CounterVec("l_total", "", "k")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.5)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per || h.Count() != workers*per || v.With("a").Value() != workers*per {
		t.Fatalf("lost updates: %d %d %d", c.Value(), h.Count(), v.With("a").Value())
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-3, 1)
	want := []float64{1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1}
	if len(b) != len(want) {
		t.Fatalf("buckets = %v, want %v", b, want)
	}
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12*want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.GaugeVec("b", "", "k").With("x").Set(1.25)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["a_total"].(float64) != 7 {
		t.Fatalf("snapshot a_total = %v", back["a_total"])
	}
	if back["b"].(map[string]any)["x"].(float64) != 1.25 {
		t.Fatalf("snapshot b = %v", back["b"])
	}
	hist := back["c_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("snapshot c_seconds = %v", hist)
	}
}

func TestTracerRingAndSink(t *testing.T) {
	var sink bytes.Buffer
	tr := NewTracer(4)
	tr.SetSink(&sink)
	for i := 0; i < 6; i++ {
		tr.Start("step").Attr("i", i).End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	// Oldest-first: the surviving spans are i = 2..5.
	if got := spans[0].Attrs[0].Val.(int); got != 2 {
		t.Fatalf("oldest surviving span i = %v, want 2", got)
	}
	// The sink saw all six, one JSON object per line.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("sink got %d lines, want 6", len(lines))
	}
	for _, ln := range lines {
		var sp Span
		if err := json.Unmarshal([]byte(ln), &sp); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if sp.Name != "step" {
			t.Fatalf("span name = %q", sp.Name)
		}
	}
	if tr.SinkDrops() != 0 {
		t.Fatalf("sink drops = %d", tr.SinkDrops())
	}
}

func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("cbes_test_total", "").Inc()
	tr := NewTracer(8)
	tr.Start("boot").End()
	mux := DebugMux(r, tr, nil, nil, nil)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "cbes_test_total 1") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars: %d\n%s", code, body)
	}
	if code, body := get("/debug/spans"); code != 200 || !strings.Contains(body, "boot") {
		t.Fatalf("/debug/spans: %d\n%s", code, body)
	}
}

func TestDebugMuxUnhealthy(t *testing.T) {
	mux := DebugMux(NewRegistry(), nil, nil, func() error { return errTest }, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz on unhealthy service: %d, want 503", rec.Code)
	}
	// nil ready falls back to live: unready too.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz fallback: %d, want 503", rec.Code)
	}
}

// TestDebugMuxSplitProbes pins the liveness/readiness split: a live-but-
// degraded daemon answers 200 on /healthz and 503 on /readyz.
func TestDebugMuxSplitProbes(t *testing.T) {
	degraded := true
	mux := DebugMux(NewRegistry(), nil, nil,
		func() error { return nil },
		func() error {
			if degraded {
				return errTest
			}
			return nil
		})
	get := func(path string) int {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	if code := get("/healthz"); code != 200 {
		t.Fatalf("/healthz while degraded: %d, want 200 (still live)", code)
	}
	if code := get("/readyz"); code != 503 {
		t.Fatalf("/readyz while degraded: %d, want 503", code)
	}
	degraded = false
	if code := get("/readyz"); code != 200 {
		t.Fatalf("/readyz recovered: %d, want 200", code)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "not ready" }
