package obs

import (
	"testing"
	"time"
)

// The acceptance bar for instrumenting the fast path (ISSUE 3): an
// enabled counter increment — and a disabled (nil) one — must cost
// < 25 ns/op, so per-Apply accounting cannot measurably dent the ~90×
// evals/s gain of the PR 1 fast path (whose own floor is guarded by
// TestFastPathSpeedupTarget in the root bench_test.go).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter // disabled call site: nil metric
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkVecWithResolved(b *testing.B) {
	// The recommended hot-path pattern: resolve the child once.
	c := NewRegistry().CounterVec("bench_total", "", "method").With("Evaluate")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkVecWithLookup(b *testing.B) {
	// The lazy pattern: map lookup under RLock on every increment —
	// fine for RPC-rate call sites, not for the evaluation loop.
	v := NewRegistry().CounterVec("bench_total", "", "method")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("Evaluate").Inc()
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(DefaultRingSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start("bench").End()
	}
}

// TestCounterCostBudget enforces the < 25 ns/op bar in the test suite so
// a regression fails CI rather than only drifting in benchmark logs.
// Skipped under -race (atomic instrumentation inflates every op) and
// -short (timing-sensitive).
func TestCounterCostBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	const budget = 25 * time.Nanosecond
	for name, run := range map[string]func(b *testing.B){
		"enabled":  BenchmarkCounterInc,
		"disabled": BenchmarkCounterIncDisabled,
	} {
		res := testing.Benchmark(run)
		if got := res.NsPerOp(); got >= int64(budget) {
			t.Errorf("%s counter increment: %d ns/op, budget %v", name, got, budget)
		} else {
			t.Logf("%s counter increment: %d ns/op (budget %v)", name, got, budget)
		}
	}
}
