// Decision flight recorder: a bounded ring of structured records, one
// per prediction or scheduling decision the service makes. Spans answer
// "where did the time go"; a decision record answers "why did the
// service say that" — which epoch of monitored state it saw, whether
// the answer came from the cache or a coalesced in-flight search, which
// nodes were degraded, what the search actually chose and for how much.
// Records are queryable over the Decisions RPC, `cbesctl decisions`,
// and /debug/decisions, and every record carries its trace ID so the
// full causal tree is one /debug/trace?id=... away.
package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Decision is one recorded prediction/scheduling decision. Fields are
// exported for gob (the Decisions RPC) and tagged for JSON
// (/debug/decisions); zero-valued optionals are elided.
type Decision struct {
	Time    time.Time `json:"time"`
	TraceID string    `json:"trace,omitempty"`
	// Kind is the decision class: "schedule", "evaluate", "explain",
	// "compare", or "outcome" (a measured runtime joined back to a served
	// prediction).
	Kind string `json:"kind"`
	App  string `json:"app"`
	// Algorithm and Seed describe schedule decisions ("cs", "ncs", ...).
	Algorithm string `json:"alg,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	// Epoch is the snapshot epoch of the view the decision ran against.
	Epoch uint64 `json:"epoch"`
	// CacheHits / CacheLookups record the prediction-cache outcome
	// (1/1 = hit, 0/1 = miss; compare decisions aggregate per-candidate
	// lookups).
	CacheHits    int `json:"cache_hits"`
	CacheLookups int `json:"cache_lookups"`
	// Coalesced marks a schedule request served by joining another
	// request's in-flight search; LeaderTraceID names the trace that ran
	// the search it joined.
	Coalesced     bool   `json:"coalesced,omitempty"`
	LeaderTraceID string `json:"leader_trace,omitempty"`
	// Degraded/StaleNodes mirror the prediction's degraded-mode markers.
	Degraded   bool  `json:"degraded,omitempty"`
	StaleNodes []int `json:"stale_nodes,omitempty"`
	// Shed marks a request the admission limiter refused full service to;
	// Brownout marks the subset that was answered anyway from the cheaper
	// profile-only fast path instead of being rejected (DESIGN.md §15).
	Shed     bool `json:"shed,omitempty"`
	Brownout bool `json:"brownout,omitempty"`
	// Mapping and Predicted are the decision itself (for compare, the
	// winning candidate).
	Mapping   []int   `json:"mapping,omitempty"`
	Predicted float64 `json:"predicted_seconds,omitempty"`
	// Search statistics (schedule decisions).
	Evaluations     int   `json:"evaluations,omitempty"`
	SchedulerMicros int64 `json:"scheduler_micros,omitempty"`
	// PredictionID keys the decision into the accuracy ledger: the served
	// prediction this record describes, or — for kind "outcome" — the
	// prediction the reported runtime was joined against.
	PredictionID string `json:"prediction_id,omitempty"`
	// Actual is the measured runtime of an "outcome" record (seconds).
	Actual float64 `json:"actual_seconds,omitempty"`
	// Err records failed decisions — forensics wants the denials too.
	Err string `json:"error,omitempty"`
}

// Recorder is a bounded overwrite-oldest ring of decisions. A nil
// Recorder is a disabled no-op.
type Recorder struct {
	mu    sync.Mutex
	ring  []Decision
	next  int
	n     int
	total uint64
}

// DefaultRecorderSize is the decision capacity of the default recorder.
const DefaultRecorderSize = 512

// NewRecorder returns a recorder holding the most recent size decisions.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &Recorder{ring: make([]Decision, size)}
}

var defaultRecorder = NewRecorder(DefaultRecorderSize)

// Default-recorder observability, mirroring the tracer's ring gauges.
var (
	decisionsRecorded = Default().Counter(
		"cbes_decisions_recorded_total", "Decision records captured by the flight recorder.")
	decisionRecords = Default().Gauge(
		"cbes_decision_records", "Decision records currently resident in the default flight recorder.")
)

// DefaultRecorder returns the process-wide flight recorder the service
// records into.
func DefaultRecorder() *Recorder { return defaultRecorder }

// Record captures one decision. Safe on a nil recorder.
func (r *Recorder) Record(d Decision) {
	if r == nil {
		return
	}
	if d.Time.IsZero() {
		d.Time = time.Now()
	}
	r.mu.Lock()
	r.ring[r.next] = d
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.total++
	occupancy := r.n
	r.mu.Unlock()
	if r == defaultRecorder {
		decisionsRecorded.Inc()
		decisionRecords.Set(float64(occupancy))
	}
}

// Total reports how many decisions have ever been recorded (including
// those since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// DecisionQuery filters and bounds a flight-recorder read. The zero
// value returns every resident record.
type DecisionQuery struct {
	// N bounds the result to the N most recent matches; <=0 is unbounded.
	N int
	// Kind/App/TraceID, when non-empty, require an exact match.
	Kind    string
	App     string
	TraceID string
}

func (q *DecisionQuery) match(d *Decision) bool {
	return (q.Kind == "" || d.Kind == q.Kind) &&
		(q.App == "" || d.App == q.App) &&
		(q.TraceID == "" || d.TraceID == q.TraceID)
}

// Decisions returns matching records, newest first.
func (r *Recorder) Decisions(q DecisionQuery) []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Decision, 0, r.n)
	for i := 1; i <= r.n; i++ {
		d := &r.ring[(r.next-i+len(r.ring))%len(r.ring)]
		if !q.match(d) {
			continue
		}
		out = append(out, *d)
		if q.N > 0 && len(out) >= q.N {
			break
		}
	}
	return out
}

// DecisionHandler serves the flight recorder as a JSON array (newest
// first) — the /debug/decisions endpoint. Query filters: ?n=K,
// ?kind=schedule, ?app=NAME, ?trace=HEXID.
func DecisionHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		qv := req.URL.Query()
		q := DecisionQuery{Kind: qv.Get("kind"), App: qv.Get("app")}
		if tid := qv.Get("trace"); tid != "" {
			id, err := ParseID(tid)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			q.TraceID = FormatID(id)
		}
		if ns := qv.Get("n"); ns != "" {
			n, err := strconv.Atoi(ns)
			if err != nil || n < 0 {
				http.Error(w, "obs: bad n "+strconv.Quote(ns), http.StatusBadRequest)
				return
			}
			q.N = n
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Decisions(q)) //nolint:errcheck // best-effort debug endpoint
	})
}
