package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRecorderWraparound pins the ring's overwrite behaviour: a serial pass
// checks the exact surviving window, and a concurrent pass (run under -race)
// checks that wraparound under contention never tears a record or loses
// ring invariants.
func TestRecorderWraparound(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		const cap, writes = 64, 100
		r := NewRecorder(cap)
		for i := 0; i < writes; i++ {
			r.Record(Decision{Kind: "evaluate", App: "app", Epoch: uint64(i)})
		}
		if r.Total() != writes {
			t.Fatalf("Total = %d, want %d", r.Total(), writes)
		}
		got := r.Decisions(DecisionQuery{})
		if len(got) != cap {
			t.Fatalf("resident = %d, want %d", len(got), cap)
		}
		// Newest-first: epochs 99, 98, ..., 36. Everything older was
		// overwritten.
		for i, d := range got {
			if want := uint64(writes - 1 - i); d.Epoch != want {
				t.Fatalf("got[%d].Epoch = %d, want %d", i, d.Epoch, want)
			}
		}
	})

	t.Run("concurrent", func(t *testing.T) {
		const cap, writers, perWriter = 64, 8, 100
		r := NewRecorder(cap)
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				app := fmt.Sprintf("g%d", g)
				for i := 0; i < perWriter; i++ {
					// App and TraceID both encode (writer, seq): a torn
					// record under contention would disagree with its Epoch.
					r.Record(Decision{
						Kind:    "evaluate",
						App:     app,
						TraceID: fmt.Sprintf("%s-%d", app, i),
						Epoch:   uint64(i),
					})
				}
			}(g)
		}
		wg.Wait()

		if r.Total() != writers*perWriter {
			t.Fatalf("Total = %d, want %d", r.Total(), writers*perWriter)
		}
		got := r.Decisions(DecisionQuery{})
		if len(got) != cap {
			t.Fatalf("resident = %d, want %d", len(got), cap)
		}
		// Every surviving record must be internally consistent, and each
		// writer's survivors must be a suffix of its own sequence (the ring
		// overwrites oldest-first and each writer records in order).
		minSeq := map[string]uint64{}
		count := map[string]int{}
		seen := map[string]bool{}
		for _, d := range got {
			want := fmt.Sprintf("%s-%d", d.App, d.Epoch)
			if d.TraceID != want {
				t.Fatalf("torn record: App=%s Epoch=%d TraceID=%s", d.App, d.Epoch, d.TraceID)
			}
			if seen[d.TraceID] {
				t.Fatalf("record %s survived twice", d.TraceID)
			}
			seen[d.TraceID] = true
			count[d.App]++
			if cur, ok := minSeq[d.App]; !ok || d.Epoch < cur {
				minSeq[d.App] = d.Epoch
			}
		}
		for app, n := range count {
			if lo := minSeq[app]; lo != uint64(perWriter-n) {
				t.Errorf("writer %s: %d survivors but oldest seq %d, want %d (suffix)",
					app, n, lo, perWriter-n)
			}
		}
	})
}
