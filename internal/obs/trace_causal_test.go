package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

func TestIDFormatParse(t *testing.T) {
	if FormatID(0) != "" {
		t.Fatalf("FormatID(0) = %q, want empty", FormatID(0))
	}
	id := NewTraceID()
	if id == 0 {
		t.Fatal("NewTraceID minted the zero sentinel")
	}
	s := FormatID(id)
	if len(s) != 16 {
		t.Fatalf("FormatID(%d) = %q, want 16 hex digits", id, s)
	}
	back, err := ParseID(s)
	if err != nil || back != id {
		t.Fatalf("ParseID(%q) = %d, %v; want %d", s, back, err, id)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestCausalPropagation(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("root")
	ctx := ContextWithSpan(context.Background(), root)
	if TraceIDFromContext(ctx) != root.TraceID() {
		t.Fatal("context does not carry the root's trace")
	}
	child, ctx := StartSpan(ctx, "child")
	grand, _ := StartSpan(ctx, "grand")
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatal("descendants did not inherit the trace ID")
	}
	grand.End()
	child.End()
	root.Attr("k", 1).End()

	spans := tr.TraceSpans(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("TraceSpans returned %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["root"].Parent != "" {
		t.Fatalf("root has parent %q", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatalf("child parent = %q, want root %q", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Fatalf("grand parent = %q, want child %q", byName["grand"].Parent, byName["child"].ID)
	}
}

func TestStartRemoteAdoptsOrMints(t *testing.T) {
	tr := NewTracer(16)
	parent := SpanContext{TraceID: 0xabcd, SpanID: 0x1234}
	s := tr.StartRemote("rpc.X", parent)
	if s.TraceID() != parent.TraceID {
		t.Fatalf("adopted trace = %x, want %x", s.TraceID(), parent.TraceID)
	}
	s.End()
	got := tr.TraceSpans(parent.TraceID)
	if len(got) != 1 || got[0].Parent != FormatID(parent.SpanID) {
		t.Fatalf("remote span = %+v, want parent %s", got, FormatID(parent.SpanID))
	}

	minted := tr.StartRemote("rpc.Y", SpanContext{})
	if minted.TraceID() == 0 {
		t.Fatal("zero parent should mint a fresh trace")
	}
	minted.End()
	if n := len(tr.TraceSpans(minted.TraceID())); n != 1 {
		t.Fatalf("minted trace has %d spans, want 1", n)
	}
}

func TestHeadSamplingAndTailKeep(t *testing.T) {
	tr := NewTracer(64)
	// headEveryN so large that a random trace ID essentially never lands
	// on a multiple: every trace loses the head draw.
	tr.SetSampling(1<<62, time.Hour)

	fast := tr.Start("fast-clean")
	child := fast.StartChild("fast-child")
	child.End()
	fast.End()
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("unsampled fast clean spans recorded: %d", got)
	}
	if tr.SampledOut() != 2 {
		t.Fatalf("SampledOut = %d, want 2", tr.SampledOut())
	}

	failed := tr.Start("failed")
	failed.Error(errors.New("boom")).End()
	if got := tr.TraceSpans(failed.TraceID()); len(got) != 1 {
		t.Fatalf("errored span not tail-kept: %v", got)
	}

	tr.SetSampling(1<<62, time.Millisecond)
	slow := tr.StartAt("slow", time.Now().Add(-time.Second))
	slow.End()
	if got := tr.TraceSpans(slow.TraceID()); len(got) != 1 {
		t.Fatalf("slow span not tail-kept: %v", got)
	}

	// Back to keep-everything: clean fast spans record again.
	tr.SetSampling(1, 0)
	kept := tr.Start("kept")
	kept.End()
	if got := tr.TraceSpans(kept.TraceID()); len(got) != 1 {
		t.Fatalf("keep-all span dropped: %v", got)
	}
}

func TestNilTracerAndNilSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	s.Attr("k", 1).Error(errors.New("e")).End() // must not panic
	if s.TraceID() != 0 || s.Context().Valid() {
		t.Fatal("nil span has an identity")
	}
	if tr.Spans() != nil || tr.TraceSpans(1) != nil {
		t.Fatal("nil tracer returned spans")
	}
	child := s.StartChild("y")
	if child != nil {
		t.Fatal("nil span spawned a child")
	}
	_, ctx := StartSpan(context.Background(), "root-fallback")
	if TraceIDFromContext(ctx) == 0 {
		t.Fatal("StartSpan without a parent did not root on the default tracer")
	}
}

func TestRecorderRingAndQuery(t *testing.T) {
	r := NewRecorder(4)
	kinds := []string{"schedule", "evaluate", "schedule", "evaluate", "schedule", "compare"}
	for i, k := range kinds {
		r.Record(Decision{Kind: k, App: "app", TraceID: FormatID(uint64(i + 1)), Epoch: uint64(i)})
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
	all := r.Decisions(DecisionQuery{})
	if len(all) != 4 {
		t.Fatalf("resident = %d, want capacity 4", len(all))
	}
	if all[0].Kind != "compare" || all[0].Epoch != 5 {
		t.Fatalf("newest-first order violated: %+v", all[0])
	}
	sched := r.Decisions(DecisionQuery{Kind: "schedule"})
	if len(sched) != 2 { // oldest two schedules were overwritten
		t.Fatalf("kind filter returned %d, want 2", len(sched))
	}
	if got := r.Decisions(DecisionQuery{Kind: "schedule", N: 1}); len(got) != 1 || got[0].Epoch != 4 {
		t.Fatalf("N bound broken: %+v", got)
	}
	if got := r.Decisions(DecisionQuery{TraceID: FormatID(6)}); len(got) != 1 || got[0].Kind != "compare" {
		t.Fatalf("trace filter broken: %+v", got)
	}
	if got := r.Decisions(DecisionQuery{App: "other"}); len(got) != 0 {
		t.Fatalf("app filter matched %d, want 0", len(got))
	}
	if r.Decisions(DecisionQuery{})[0].Time.IsZero() {
		t.Fatal("Record did not stamp the time")
	}

	var nilRec *Recorder
	nilRec.Record(Decision{}) // must not panic
	if nilRec.Total() != 0 || nilRec.Decisions(DecisionQuery{}) != nil {
		t.Fatal("nil recorder is not a no-op")
	}
}

func TestChromeTraceTracks(t *testing.T) {
	base := time.Unix(1000, 0)
	spans := []Span{
		{Name: "parent", ID: "01", Start: base, Seconds: 0.100},
		{Name: "c1", ID: "02", Parent: "01", Start: base.Add(10 * time.Millisecond), Seconds: 0.050},
		{Name: "c2", ID: "03", Parent: "01", Start: base.Add(40 * time.Millisecond), Seconds: 0.050,
			Attrs: []Attr{{Key: "restart", Val: 1}}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(out.TraceEvents))
	}
	tid := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
		tid[ev.Name] = ev.Tid
	}
	// c1 nests inside parent (same track legal); c2 overlaps c1 without
	// containment, so it must move to another track to render sanely.
	if tid["c1"] != tid["parent"] {
		t.Fatalf("contained child on track %d, parent on %d", tid["c1"], tid["parent"])
	}
	if tid["c2"] == tid["c1"] {
		t.Fatal("overlapping siblings share a track")
	}
	for _, ev := range out.TraceEvents {
		if ev.Name == "c2" {
			if ev.Args["restart"] != float64(1) || ev.Args["parent"] != "01" {
				t.Fatalf("attrs not exported: %+v", ev.Args)
			}
		}
	}
}

func TestSpanHandlerFilters(t *testing.T) {
	tr := NewTracer(16)
	a := tr.Start("alpha.one")
	a.End()
	b := tr.Start("beta.two")
	b.End()
	c := tr.Start("alpha.three")
	c.End()

	get := func(url string) (int, []Span) {
		rec := httptest.NewRecorder()
		SpanHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var spans []Span
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
				t.Fatalf("%s: bad JSON: %v", url, err)
			}
		}
		return rec.Code, spans
	}

	if code, spans := get("/debug/spans"); code != 200 || len(spans) != 3 {
		t.Fatalf("unfiltered: code=%d spans=%d", code, len(spans))
	}
	if _, spans := get("/debug/spans?name=alpha"); len(spans) != 2 {
		t.Fatalf("name filter: %d spans, want 2", len(spans))
	}
	if _, spans := get("/debug/spans?name=alpha&n=1"); len(spans) != 1 || spans[0].Name != "alpha.three" {
		t.Fatalf("n keeps most recent: %+v", spans)
	}
	if _, spans := get("/debug/spans?trace=" + FormatID(b.TraceID())); len(spans) != 1 || spans[0].Name != "beta.two" {
		t.Fatalf("trace filter: %+v", spans)
	}
	if code, _ := get("/debug/spans?n=bogus"); code != 400 {
		t.Fatalf("bad n: code=%d, want 400", code)
	}
	if code, _ := get("/debug/spans?trace=zz"); code != 400 {
		t.Fatalf("bad trace: code=%d, want 400", code)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("root")
	root.StartChild("child").End()
	root.End()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}
	if rec := get("/debug/trace"); rec.Code != 400 {
		t.Fatalf("missing id: code=%d", rec.Code)
	}
	if rec := get("/debug/trace?id=nothex"); rec.Code != 400 {
		t.Fatalf("bad id: code=%d", rec.Code)
	}
	if rec := get("/debug/trace?id=" + FormatID(NewTraceID())); rec.Code != 404 {
		t.Fatalf("unknown trace: code=%d", rec.Code)
	}
	rec := get("/debug/trace?id=" + FormatID(root.TraceID()))
	if rec.Code != 200 {
		t.Fatalf("known trace: code=%d body=%s", rec.Code, rec.Body.String())
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out.TraceEvents) != 2 {
		t.Fatalf("export: err=%v events=%d, want 2", err, len(out.TraceEvents))
	}
}

func TestDecisionHandlerFilters(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Decision{Kind: "schedule", App: "a", TraceID: FormatID(11)})
	r.Record(Decision{Kind: "evaluate", App: "b", TraceID: FormatID(12)})

	get := func(url string) (int, []Decision) {
		rec := httptest.NewRecorder()
		DecisionHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var ds []Decision
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &ds); err != nil {
				t.Fatalf("%s: bad JSON: %v", url, err)
			}
		}
		return rec.Code, ds
	}
	if code, ds := get("/debug/decisions"); code != 200 || len(ds) != 2 {
		t.Fatalf("unfiltered: code=%d n=%d", code, len(ds))
	}
	if _, ds := get("/debug/decisions?kind=schedule"); len(ds) != 1 || ds[0].App != "a" {
		t.Fatalf("kind filter: %+v", ds)
	}
	if _, ds := get("/debug/decisions?trace=" + FormatID(12)); len(ds) != 1 || ds[0].Kind != "evaluate" {
		t.Fatalf("trace filter: %+v", ds)
	}
	if _, ds := get("/debug/decisions?n=1"); len(ds) != 1 || ds[0].Kind != "evaluate" {
		t.Fatalf("n bound (newest first): %+v", ds)
	}
	if code, _ := get("/debug/decisions?n=-1"); code != 400 {
		t.Fatalf("bad n: code=%d", code)
	}
	if code, _ := get("/debug/decisions?trace=zz"); code != 400 {
		t.Fatalf("bad trace: code=%d", code)
	}
}
