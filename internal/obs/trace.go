// Causal span tracing: timed, attributed events linked into per-request
// trace trees (TraceID/SpanID/ParentID), recorded to a fixed-size
// in-memory ring buffer (overwrite-oldest) and optionally streamed to a
// JSONL sink. Spans are coarse-grained by design — one per RPC, per
// annealing restart, per scheduling decision — never one per energy
// evaluation, so the tracer stays off the fast path entirely.
//
// Causality crosses both goroutines and the net/rpc wire: the active
// span rides a context.Context inside a process, and its SpanContext
// (two uint64 IDs) rides request args between processes — the client
// stamps, the server adopts or mints, and the reply echoes the trace ID
// so the caller can query the trace afterwards.
//
// Cost policy: a nil *Tracer (and the nil *ActiveSpan it returns) is a
// complete no-op. An enabled tracer applies a head sampler at root-span
// creation (keep one trace in N, decided deterministically from the
// trace ID so every process keeps the *same* traces) plus a tail-keep
// override at End: spans that errored or ran slower than the cutoff are
// recorded even when their trace was not head-sampled, so the ring
// always holds the interesting evidence.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// Span is one completed timed event. Trace, ID, and Parent are
// fixed-width lowercase-hex IDs (see FormatID); Parent is empty for
// root spans, and all three are empty for spans recorded by pre-causal
// call sites (none remain in-tree, but the JSONL shape admits them).
type Span struct {
	Name    string    `json:"name"`
	Trace   string    `json:"trace,omitempty"`
	ID      string    `json:"span,omitempty"`
	Parent  string    `json:"parent,omitempty"`
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"`
	Attrs   []Attr    `json:"attrs,omitempty"`
}

// SpanContext is the wire-portable identity of a span: enough for a
// remote callee (or a child goroutine) to parent new spans under it.
// The zero value is "no span".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context identifies a trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// ID generation: splitmix64 over an atomic counter seeded once from the
// wall clock and PID. Fast (one atomic add plus shifts), collision-safe
// enough for a debugging facility, and allocation-free.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano())*0x9e3779b97f4a7c15 ^ uint64(os.Getpid())<<32)
}

func newID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // 0 is the "no trace" sentinel
	}
	return x
}

// NewTraceID mints a fresh trace ID — for callers that must stamp a
// request even when their local tracer is disabled, so the far side can
// still mint correlated spans.
func NewTraceID() uint64 { return newID() }

// FormatID renders a trace or span ID the way spans, decision records,
// and the /debug/trace endpoint spell it: 16 lowercase hex digits.
func FormatID(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}

// ParseID parses a FormatID-rendered (or any hex) ID.
func ParseID(s string) (uint64, error) {
	id, err := strconv.ParseUint(strings.TrimSpace(s), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q", s)
	}
	return id, nil
}

// Tracer records spans. The zero value is unusable; build one with
// NewTracer. A nil Tracer is a disabled no-op (all Start variants
// return a nil ActiveSpan whose methods are also no-ops).
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	next int
	n    int
	sink io.Writer
	drop uint64 // sink write failures, for diagnostics

	// Sampling policy (atomics: read on every root Start / span End).
	headEveryN atomic.Int64  // keep 1 trace in N; <=1 keeps all
	slowKeepNs atomic.Int64  // tail-keep cutoff; <=0 uses DefaultSlowKeep
	sampledOut atomic.Uint64 // spans discarded by the sampler
}

// DefaultRingSize is the span capacity of the default tracer.
const DefaultRingSize = 1024

// DefaultSlowKeep is the tail-keep latency cutoff when SetSampling does
// not override it: any span at least this slow is recorded regardless
// of the head-sampling decision.
const DefaultSlowKeep = 100 * time.Millisecond

// NewTracer returns a tracer holding the most recent size spans.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Tracer{ring: make([]Span, size)}
}

var defaultTracer = NewTracer(DefaultRingSize)

// Default-tracer observability (satellite of ISSUE 7): sink drops used
// to be silent unless SinkDrops() was polled by hand, and ring
// occupancy was invisible. Only the process-wide default tracer feeds
// these series; ad-hoc tracers in tests stay out of the registry.
var (
	traceSinkDrops = Default().Counter(
		"cbes_trace_sink_drops_total", "Spans that failed to reach the JSONL span sink.")
	traceRingSpans = Default().Gauge(
		"cbes_trace_ring_spans", "Spans currently resident in the default tracer's ring buffer.")
	traceSampledOut = Default().Counter(
		"cbes_trace_spans_sampled_out_total",
		"Finished spans discarded by the head sampler (trace unsampled, span neither slow nor errored).")
)

// DefaultTracer returns the process-wide tracer the CBES packages record
// into.
func DefaultTracer() *Tracer { return defaultTracer }

// SetSink attaches (or with nil, detaches) a JSONL sink: every finished
// span is appended to w as one JSON object per line. The tracer
// serializes writes; w need not be concurrency-safe.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.mu.Unlock()
}

// SetSampling installs the head-sampling policy: keep one trace in
// headEveryN (<=1 keeps every trace), with any span slower than slowKeep
// — or carrying an error — recorded regardless (tail keep). slowKeep
// <= 0 selects DefaultSlowKeep. The head decision is a pure function of
// the trace ID, so a multi-process trace is kept or dropped coherently
// on every node.
func (t *Tracer) SetSampling(headEveryN int, slowKeep time.Duration) {
	if t == nil {
		return
	}
	t.headEveryN.Store(int64(headEveryN))
	t.slowKeepNs.Store(int64(slowKeep))
}

// headSampled applies the head-sampling policy to a trace ID.
func (t *Tracer) headSampled(traceID uint64) bool {
	n := t.headEveryN.Load()
	return n <= 1 || traceID%uint64(n) == 0
}

func (t *Tracer) slowKeep() time.Duration {
	if ns := t.slowKeepNs.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return DefaultSlowKeep
}

// ActiveSpan is an in-progress span; call End to record it.
type ActiveSpan struct {
	t       *Tracer
	span    Span
	start   time.Time
	sc      SpanContext
	sampled bool
	failed  bool
}

// Start opens a root span: a fresh trace ID, no parent. Safe on a nil
// tracer.
func (t *Tracer) Start(name string) *ActiveSpan {
	return t.StartAt(name, time.Now())
}

// StartAt opens a root span that began at an earlier wall-clock time —
// for call sites that only learn a span is worth recording after the
// fact. Safe on a nil tracer.
func (t *Tracer) StartAt(name string, start time.Time) *ActiveSpan {
	if t == nil {
		return nil
	}
	return t.startSpan(name, start, SpanContext{TraceID: newID()}, 0)
}

// StartRemote opens a span adopting a caller-supplied parent — the
// server half of wire propagation. An invalid (zero) parent degenerates
// to a root span; a parent with a trace but no span ID (a caller whose
// own tracer was disabled but who still minted a trace ID) joins the
// trace as a root-like span.
func (t *Tracer) StartRemote(name string, parent SpanContext) *ActiveSpan {
	return t.StartRemoteAt(name, parent, time.Now())
}

// StartRemoteAt is StartRemote with an explicit start time.
func (t *Tracer) StartRemoteAt(name string, parent SpanContext, start time.Time) *ActiveSpan {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.startSpan(name, start, SpanContext{TraceID: newID()}, 0)
	}
	return t.startSpan(name, start, SpanContext{TraceID: parent.TraceID}, parent.SpanID)
}

// StartChild opens a child span in the receiver's trace. Safe on a nil
// span (returns nil). Safe to call from multiple goroutines on the same
// parent — the parent's identity is immutable after creation.
func (s *ActiveSpan) StartChild(name string) *ActiveSpan {
	return s.StartChildAt(name, time.Now())
}

// StartChildAt is StartChild with an explicit start time.
func (s *ActiveSpan) StartChildAt(name string, start time.Time) *ActiveSpan {
	if s == nil {
		return nil
	}
	child := s.t.startSpan(name, start, SpanContext{TraceID: s.sc.TraceID}, s.sc.SpanID)
	child.sampled = s.sampled // inherit: one head decision per trace
	return child
}

// startSpan builds the span shell; sc carries the trace (and, for the
// new span, a freshly minted span ID), parentID the causal parent.
func (t *Tracer) startSpan(name string, start time.Time, sc SpanContext, parentID uint64) *ActiveSpan {
	sc.SpanID = newID()
	return &ActiveSpan{
		t:       t,
		start:   start,
		sc:      sc,
		sampled: t.headSampled(sc.TraceID),
		span: Span{
			Name:   name,
			Trace:  FormatID(sc.TraceID),
			ID:     FormatID(sc.SpanID),
			Parent: FormatID(parentID),
			Start:  start,
		},
	}
}

// Context returns the span's wire-portable identity (zero on nil).
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID (0 on nil).
func (s *ActiveSpan) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.sc.TraceID
}

// Attr annotates the span; returns the span for chaining.
func (s *ActiveSpan) Attr(key string, val any) *ActiveSpan {
	if s != nil {
		s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Val: val})
	}
	return s
}

// Error annotates the span with err and marks it tail-kept: an errored
// span is recorded even when its trace lost the head-sampling draw.
// A nil err is a no-op; returns the span for chaining.
func (s *ActiveSpan) Error(err error) *ActiveSpan {
	if s != nil && err != nil {
		s.failed = true
		s.span.Attrs = append(s.span.Attrs, Attr{Key: "error", Val: err.Error()})
	}
	return s
}

// End finishes the span and records it, subject to the sampling policy:
// head-sampled traces always record; others record only spans that
// errored or exceeded the slow cutoff.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.span.Seconds = d.Seconds()
	if !s.sampled && !s.failed && d < s.t.slowKeep() {
		s.t.sampledOut.Add(1)
		if s.t == defaultTracer {
			traceSampledOut.Inc()
		}
		return
	}
	s.t.record(s.span)
}

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	t.ring[t.next] = sp
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	sink := t.sink
	var sinkErr error
	if sink != nil {
		line, err := json.Marshal(sp)
		if err == nil {
			line = append(line, '\n')
			_, err = sink.Write(line)
		}
		if err != nil {
			t.drop++
			sinkErr = err
		}
	}
	occupancy := t.n
	t.mu.Unlock()
	if t == defaultTracer {
		traceRingSpans.Set(float64(occupancy))
		if sinkErr != nil {
			traceSinkDrops.Inc()
		}
	}
}

// Spans returns the recorded spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	if t.n == len(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.n]...)
	}
	return out
}

// TraceSpans returns every recorded span of one trace, oldest first.
func (t *Tracer) TraceSpans(traceID uint64) []Span {
	if t == nil || traceID == 0 {
		return nil
	}
	want := FormatID(traceID)
	var out []Span
	for _, sp := range t.Spans() {
		if sp.Trace == want {
			out = append(out, sp)
		}
	}
	return out
}

// SinkDrops reports how many spans failed to reach the JSONL sink.
func (t *Tracer) SinkDrops() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drop
}

// SampledOut reports how many finished spans the head sampler discarded.
func (t *Tracer) SampledOut() uint64 {
	if t == nil {
		return 0
	}
	return t.sampledOut.Load()
}

// Context propagation: the active span rides a context.Context so a
// request's causal chain survives function boundaries without threading
// *ActiveSpan through every signature.

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *ActiveSpan) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *ActiveSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*ActiveSpan)
	return s
}

// TraceIDFromContext returns the active trace ID, or 0.
func TraceIDFromContext(ctx context.Context) uint64 {
	return SpanFromContext(ctx).TraceID()
}

// StartSpan opens a span as a child of the context's active span — or,
// with no active span, as a root span on the default tracer — and
// returns it along with a context carrying it as the new active span.
// This is the one call most instrumented code paths need.
func StartSpan(ctx context.Context, name string) (*ActiveSpan, context.Context) {
	if parent := SpanFromContext(ctx); parent != nil {
		child := parent.StartChild(name)
		return child, ContextWithSpan(ctx, child)
	}
	s := DefaultTracer().Start(name)
	return s, ContextWithSpan(ctx, s)
}

// SpanHandler serves the tracer's ring buffer as a JSON array (newest
// last) — the /debug/spans endpoint. Optional query filters:
//
//	?n=K         keep only the K most recent matching spans
//	?name=S      keep only spans whose name contains S
//	?trace=ID    keep only spans of one trace (hex ID)
//
// The element shape is identical to the unfiltered dump (and to the
// JSONL sink lines), so scrapers parse both the same way.
func SpanHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Spans()
		q := req.URL.Query()
		if name := q.Get("name"); name != "" {
			kept := spans[:0]
			for _, sp := range spans {
				if strings.Contains(sp.Name, name) {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		if tid := q.Get("trace"); tid != "" {
			want, err := ParseID(tid)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			hex := FormatID(want)
			kept := spans[:0]
			for _, sp := range spans {
				if sp.Trace == hex {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		if ns := q.Get("n"); ns != "" {
			n, err := strconv.Atoi(ns)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("obs: bad n %q", ns), http.StatusBadRequest)
				return
			}
			if n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(spans) //nolint:errcheck // best-effort debug endpoint
	})
}
