// Span tracing: timed, attributed events recorded to a fixed-size
// in-memory ring buffer (always on, overwrite-oldest) and optionally
// streamed to a JSONL sink. Spans are coarse-grained by design — one per
// RPC, per annealing restart, per scheduling decision — never one per
// energy evaluation, so the tracer stays off the fast path entirely.
package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// Span is one completed timed event.
type Span struct {
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"`
	Attrs   []Attr    `json:"attrs,omitempty"`
}

// Tracer records spans. The zero value is unusable; build one with
// NewTracer. A nil Tracer is a disabled no-op (Start returns a nil
// ActiveSpan whose methods are also no-ops).
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	next int
	n    int
	sink io.Writer
	drop uint64 // sink write failures, for diagnostics
}

// DefaultRingSize is the span capacity of the default tracer.
const DefaultRingSize = 1024

// NewTracer returns a tracer holding the most recent size spans.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Tracer{ring: make([]Span, size)}
}

var defaultTracer = NewTracer(DefaultRingSize)

// DefaultTracer returns the process-wide tracer the CBES packages record
// into.
func DefaultTracer() *Tracer { return defaultTracer }

// SetSink attaches (or with nil, detaches) a JSONL sink: every finished
// span is appended to w as one JSON object per line. The tracer
// serializes writes; w need not be concurrency-safe.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.mu.Unlock()
}

// ActiveSpan is an in-progress span; call End to record it.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	start time.Time
}

// Start opens a span. Safe on a nil tracer.
func (t *Tracer) Start(name string) *ActiveSpan {
	return t.StartAt(name, time.Now())
}

// StartAt opens a span that began at an earlier wall-clock time — for
// call sites that only learn a span is worth recording after the fact.
// Safe on a nil tracer.
func (t *Tracer) StartAt(name string, start time.Time) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, start: start, span: Span{Name: name, Start: start}}
}

// Attr annotates the span; returns the span for chaining.
func (s *ActiveSpan) Attr(key string, val any) *ActiveSpan {
	if s != nil {
		s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Val: val})
	}
	return s
}

// End finishes the span and records it.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.Seconds = time.Since(s.start).Seconds()
	s.t.record(s.span)
}

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	t.ring[t.next] = sp
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	sink := t.sink
	if sink != nil {
		line, err := json.Marshal(sp)
		if err == nil {
			line = append(line, '\n')
			_, err = sink.Write(line)
		}
		if err != nil {
			t.drop++
		}
	}
	t.mu.Unlock()
}

// Spans returns the recorded spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	if t.n == len(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.n]...)
	}
	return out
}

// SinkDrops reports how many spans failed to reach the JSONL sink.
func (t *Tracer) SinkDrops() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drop
}

// SpanHandler serves the tracer's ring buffer as a JSON array (newest
// last) — the /debug/spans endpoint.
func SpanHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Spans()) //nolint:errcheck // best-effort debug endpoint
	})
}
