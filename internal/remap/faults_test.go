package remap

import (
	"errors"
	"math"
	"testing"

	"cbes/internal/core"
	"cbes/internal/monitor"
	"cbes/internal/schedule"
)

// crashSnap marks nodes down in an otherwise idle snapshot.
func crashSnap(n int, down ...int) *monitor.Snapshot {
	s := monitor.IdleSnapshot(n)
	s.Health = make([]monitor.Health, n)
	for _, i := range down {
		s.Health[i] = monitor.HealthDown
		s.AvailCPU[i] = 0
	}
	return s
}

// TestAdvisorEvacuatesDeadNode: a crashed node under the current mapping
// must force a remap onto healthy nodes regardless of migration cost or
// hysteresis — staying costs +Inf.
func TestAdvisorEvacuatesDeadNode(t *testing.T) {
	f := newFixture(t)
	adv := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 1000, HysteresisPct: 50}
	snap := crashSnap(f.topo.NumNodes(), 1)
	advice, err := adv.Evaluate(core.Mapping{0, 1, 2, 3}, 0.5, snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !advice.Remap {
		t.Fatal("mapping straddles a dead node: advisor must evacuate")
	}
	if !math.IsInf(advice.Current, 1) || !math.IsInf(advice.Gain, 1) {
		t.Fatalf("evacuation advice: Current = %v, Gain = %v, want +Inf", advice.Current, advice.Gain)
	}
	for rank, n := range advice.Mapping {
		if n == 1 {
			t.Fatalf("evacuation mapping still places rank %d on dead node 1", rank)
		}
	}
}

func TestAdvisorEvacuationInfeasiblePool(t *testing.T) {
	f := newFixture(t)
	// Pool of exactly 4 with one dead: 3 healthy slots for 4 ranks.
	adv := &Advisor{Eval: f.eval, Pool: []int{0, 1, 2, 3}}
	snap := crashSnap(f.topo.NumNodes(), 1)
	if _, err := adv.Evaluate(core.Mapping{0, 1, 2, 3}, 0.5, snap, 1); !errors.Is(err, schedule.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestAdvisorHealthyPathUnchangedByDownElsewhere(t *testing.T) {
	f := newFixture(t)
	adv := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 2}
	// Node 7 is down but the current mapping does not touch it.
	snap := crashSnap(f.topo.NumNodes(), 7)
	advice, err := adv.Evaluate(core.Mapping{0, 1, 2, 3}, 0.5, snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if advice.Remap {
		t.Fatalf("good mapping, fault elsewhere: should stay (gain %v)", advice.Gain)
	}
	if math.IsInf(advice.Current, 1) {
		t.Fatal("Current should be finite when the mapping avoids the dead node")
	}
}
