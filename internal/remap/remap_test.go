package remap

import (
	"testing"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/mpisim"
	"cbes/internal/profile"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

// iterApp is a segmentable iterative application: a ring exchange plus
// compute per iteration, executed on a fresh cluster instance per segment
// with a configurable node-load map (checkpoint/restart semantics).
type iterApp struct {
	topo  *cluster.Topology
	iters int
	load  map[int]float64 // node -> availability during execution
}

func (a *iterApp) Iterations() int { return a.iters }

func (a *iterApp) body(from, to int) func(*mpisim.Rank) {
	return func(r *mpisim.Rank) {
		n := r.Size()
		right := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n
		for i := from; i < to; i++ {
			r.Compute(0.05)
			if r.ID()%2 == 0 {
				r.Send(right, 32<<10)
				r.Recv(left)
			} else {
				r.Recv(left)
				r.Send(right, 32<<10)
			}
		}
	}
}

func (a *iterApp) RunSegment(mapping core.Mapping, from, to int) float64 {
	eng := des.NewEngine()
	vc := vcluster.New(eng, a.topo)
	net := simnet.New(eng, a.topo)
	for node, avail := range a.load {
		node, avail := node, avail
		eng.Schedule(0, func() { vc.SetAvailability(node, avail) })
	}
	res := mpisim.Run(vc, net, mapping, a.body(from, to), mpisim.Options{AppName: "iter"})
	return res.Elapsed.Seconds()
}

// fixture builds an evaluator for the iterApp on the test topology.
type fixture struct {
	topo *cluster.Topology
	eval *core.Evaluator
	app  *iterApp
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	topo := cluster.NewTestTopology()
	model := bench.Calibrate(topo, bench.Options{Reps: 3})
	app := &iterApp{topo: topo, iters: 40, load: map[int]float64{}}

	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, []int{0, 1, 2, 3}, app.body(0, app.iters), mpisim.Options{AppName: "iter"})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	prof, err := profile.FromTrace(res.Trace, topo, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.ComputeLambdas(model); err != nil {
		t.Fatal(err)
	}
	eval, err := core.NewEvaluator(topo, model, prof)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{topo: topo, eval: eval, app: app}
}

func pool8() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7} }

func TestAdvisorStaysOnIdleCluster(t *testing.T) {
	f := newFixture(t)
	adv := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 2}
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	advice, err := adv.Evaluate(core.Mapping{0, 1, 2, 3}, 0.5, snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if advice.Remap {
		t.Fatalf("no load, good mapping: should stay (gain %v)", advice.Gain)
	}
	if !advice.Mapping.Equal(core.Mapping{0, 1, 2, 3}) {
		t.Fatal("stay advice must keep the mapping")
	}
}

func TestAdvisorMovesOffLoadedNodes(t *testing.T) {
	f := newFixture(t)
	adv := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 0.1}
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	snap.AvailCPU[0] = 0.3
	snap.AvailCPU[1] = 0.3
	advice, err := adv.Evaluate(core.Mapping{0, 1, 2, 3}, 0.9, snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !advice.Remap {
		t.Fatalf("heavy load on half the mapping: should remap (cur %v alt %v)",
			advice.Current, advice.Alternative)
	}
	for _, n := range advice.Mapping {
		if n == 0 || n == 1 {
			t.Fatalf("new mapping %v still uses loaded nodes", advice.Mapping)
		}
	}
	if advice.Gain <= 0 {
		t.Fatalf("gain = %v", advice.Gain)
	}
}

func TestAdvisorMigrationCostBlocksMarginalMoves(t *testing.T) {
	f := newFixture(t)
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	snap.AvailCPU[0] = 0.8 // mild load
	cheap := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 0}
	dear := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 1e6}
	a1, err := cheap.Evaluate(core.Mapping{0, 1, 2, 3}, 1.0, snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := dear.Evaluate(core.Mapping{0, 1, 2, 3}, 1.0, snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Remap {
		t.Fatal("astronomic migration cost must block the move")
	}
	_ = a1 // cheap advisor may or may not move on mild load; both valid
}

func TestAdvisorRejectsBadRemaining(t *testing.T) {
	f := newFixture(t)
	adv := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 1}
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	for _, r := range []float64{0, -0.5, 1.5} {
		if _, err := adv.Evaluate(core.Mapping{0, 1, 2, 3}, r, snap, 1); err == nil {
			t.Fatalf("remaining %v should error", r)
		}
	}
}

func TestExecuteWithoutLoadNeverRemaps(t *testing.T) {
	f := newFixture(t)
	adv := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 1}
	snap := func() *monitor.Snapshot { return monitor.IdleSnapshot(f.topo.NumNodes()) }
	logRec, err := Execute(f.app, core.Mapping{0, 1, 2, 3}, adv, 4, snap, 7)
	if err != nil {
		t.Fatal(err)
	}
	if logRec.Remaps != 0 {
		t.Fatalf("remapped %d times on an idle cluster", logRec.Remaps)
	}
	if len(logRec.Segments) != 4 {
		t.Fatalf("segments = %d", len(logRec.Segments))
	}
	covered := 0
	for _, s := range logRec.Segments {
		covered += s.To - s.From
	}
	if covered != f.app.Iterations() {
		t.Fatalf("covered %d of %d iterations", covered, f.app.Iterations())
	}
}

func TestExecuteRemapsUnderLoadAndWins(t *testing.T) {
	f := newFixture(t)
	// Nodes 0 and 1 become heavily loaded (visible to the snapshot and
	// applied to segment execution).
	f.app.load = map[int]float64{0: 0.3, 1: 0.3}
	snap := func() *monitor.Snapshot {
		s := monitor.IdleSnapshot(f.topo.NumNodes())
		s.AvailCPU[0] = 0.3
		s.AvailCPU[1] = 0.3
		return s
	}
	adv := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 0.2}

	withRemap, err := Execute(f.app, core.Mapping{0, 1, 2, 3}, adv, 4, snap, 7)
	if err != nil {
		t.Fatal(err)
	}
	noAdv := &Advisor{Eval: f.eval, Pool: pool8(), MigrationCost: 1e9} // never moves
	stay, err := Execute(f.app, core.Mapping{0, 1, 2, 3}, noAdv, 4, snap, 7)
	if err != nil {
		t.Fatal(err)
	}
	if withRemap.Remaps == 0 {
		t.Fatal("expected at least one remap under load")
	}
	if withRemap.TotalTime >= stay.TotalTime {
		t.Fatalf("remapping (%v) did not beat staying (%v)", withRemap.TotalTime, stay.TotalTime)
	}
	// After the move, no segment runs on the loaded nodes.
	last := withRemap.Segments[len(withRemap.Segments)-1]
	for _, n := range last.Mapping {
		if n == 0 || n == 1 {
			t.Fatalf("final mapping %v still on loaded nodes", last.Mapping)
		}
	}
}
