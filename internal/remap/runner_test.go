package remap

import (
	"math"
	"testing"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/mpisim"
	"cbes/internal/profile"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

func TestIterativeSegmentsComposeToFullRun(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	spec := workloads.SMGIterative(50, 8)
	mapping := core.Mapping(topo.NodesByArch(cluster.ArchAlpha))
	cr := &ClusterRunner{Topo: topo, Spec: spec}

	full := cr.RunSegment(mapping, 0, spec.Iterations)
	half1 := cr.RunSegment(mapping, 0, spec.Iterations/2)
	half2 := cr.RunSegment(mapping, spec.Iterations/2, spec.Iterations)
	if rel := math.Abs(full-(half1+half2)) / full; rel > 0.02 {
		t.Fatalf("segments don't compose: full %.2f vs halves %.2f (%.1f%%)",
			full, half1+half2, rel*100)
	}
}

func TestIterativeProgramMatchesMonolithic(t *testing.T) {
	// The iterative Aztec must behave like the monolithic Aztec model.
	topo := cluster.NewOrangeGrove()
	alphas := topo.NodesByArch(cluster.ArchAlpha)
	runProg := func(p workloads.Program) float64 {
		eng := des.NewEngine()
		vc := vcluster.New(eng, topo)
		net := simnet.New(eng, topo)
		return mpisim.Run(vc, net, alphas, p.Body, p.Options()).Elapsed.Seconds()
	}
	mono := runProg(workloads.Aztec(8))
	iter := runProg(workloads.AztecIterative(8).Program())
	if rel := math.Abs(mono-iter) / mono; rel > 1e-9 {
		t.Fatalf("iterative Aztec diverges from monolithic: %.3f vs %.3f", iter, mono)
	}
}

func TestSegmentValidation(t *testing.T) {
	spec := workloads.AztecIterative(8)
	for _, bad := range [][2]int{{-1, 5}, {5, 5}, {7, 3}, {0, spec.Iterations + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Segment(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			spec.Segment(bad[0], bad[1])
		}()
	}
	// Full-range segment keeps the plain name (profiles match).
	if got := spec.Segment(0, spec.Iterations).Name; got != spec.Name {
		t.Fatalf("full segment name = %q", got)
	}
	if got := spec.Segment(1, 3).Name; got == spec.Name {
		t.Fatal("partial segment should have a derived name")
	}
}

func TestEndToEndRemapWithRealWorkload(t *testing.T) {
	// Full pipeline: profile the iterative smg2000, load half its nodes,
	// and verify the executor migrates and wins versus staying.
	topo := cluster.NewOrangeGrove()
	model := bench.Calibrate(topo, bench.Options{Reps: 3})
	spec := workloads.SMGIterative(50, 8)
	prog := spec.Program()
	alphas := topo.NodesByArch(cluster.ArchAlpha)
	intels := topo.NodesByArch(cluster.ArchIntel)

	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, alphas, prog.Body, prog.Options())
	speeds := bench.MeasureArchSpeeds(topo, prog.ArchEff, 0.3)
	prof, err := profile.FromTrace(res.Trace, topo, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.ComputeLambdas(model); err != nil {
		t.Fatal(err)
	}
	eval, err := core.NewEvaluator(topo, model, prof)
	if err != nil {
		t.Fatal(err)
	}

	load := map[int]float64{alphas[0]: 0.3, alphas[1]: 0.3, alphas[2]: 0.3}
	pool := append(append([]int{}, alphas...), intels...)
	cr := &ClusterRunner{Topo: topo, Spec: spec, Load: load}
	snap := func() *monitor.Snapshot {
		s := monitor.IdleSnapshot(topo.NumNodes())
		for n, a := range load {
			s.AvailCPU[n] = a
		}
		return s
	}
	adv := &Advisor{Eval: eval, Pool: pool, MigrationCost: 2}

	moved, err := Execute(cr, core.Mapping(alphas), adv, 4, snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	stayAdv := &Advisor{Eval: eval, Pool: pool, MigrationCost: 1e12}
	stayed, err := Execute(cr, core.Mapping(alphas), stayAdv, 4, snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Remaps == 0 {
		t.Fatal("executor never migrated off the loaded Alphas")
	}
	if moved.TotalTime >= stayed.TotalTime {
		t.Fatalf("migration (%0.1fs) did not beat staying (%0.1fs)",
			moved.TotalTime, stayed.TotalTime)
	}
	t.Logf("stay %.1fs vs remap %.1fs (%d moves)", stayed.TotalTime, moved.TotalTime, moved.Remaps)
}
