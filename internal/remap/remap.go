// Package remap implements the application-remapping capability the paper
// plans as future work (§2, §8): "if system conditions, with regard to a
// running application, change, there should be the capability of
// generating a new mapping for that application, that may yield an even
// shorter execution time for the remainder of the execution, taking into
// account the task remapping costs."
//
// Two pieces:
//
//   - Advisor: given how much of the application remains and the current
//     resource snapshot, compare "stay on the current mapping" against the
//     best alternative mapping plus the migration cost, and recommend.
//   - Executor: run an iterative application in checkpointed segments,
//     consulting the Advisor between segments and migrating when it pays.
package remap

import (
	"errors"
	"fmt"
	"math"

	"cbes/internal/accuracy"
	"cbes/internal/core"
	"cbes/internal/monitor"
	"cbes/internal/schedule"
)

// Advice is the outcome of a remapping evaluation.
type Advice struct {
	// Remap reports whether migrating is predicted to pay off.
	Remap bool
	// Current is the predicted remaining time on the current mapping.
	Current float64
	// Alternative is the predicted remaining time on the proposed mapping
	// (excluding migration cost).
	Alternative float64
	// Mapping is the proposed mapping (equal to the current one when
	// Remap is false).
	Mapping core.Mapping
	// Gain is Current − (Alternative + MigrationCost), seconds.
	Gain float64
}

// Advisor decides whether a running application should be remapped.
type Advisor struct {
	// Eval is the application's mapping evaluator.
	Eval *core.Evaluator
	// Pool is the node pool available for alternative mappings.
	Pool []int
	// MigrationCost is the fixed checkpoint+restart cost in seconds.
	MigrationCost float64
	// HysteresisPct requires the gain to exceed this fraction of the
	// remaining time before recommending a move (default 2%), so marginal
	// differences do not cause migration churn.
	HysteresisPct float64
	// Effort is the SA search effort for the alternative (default 3000).
	Effort int
}

func (a *Advisor) hysteresis() float64 {
	if a.HysteresisPct > 0 {
		return a.HysteresisPct
	}
	return 2.0
}

// Evaluate compares staying on `current` against the best alternative for
// the remaining fraction of the application (0 < remaining <= 1) under the
// conditions of snap.
//
// If the current mapping straddles a node the snapshot reports down, the
// application cannot make progress where it is: Evaluate switches to
// evacuation mode — "stay" costs +Inf, hysteresis is waived, and any
// feasible alternative (the scheduler filters down nodes from the pool) is
// recommended. Only an infeasible pool (schedule.ErrInfeasible) surfaces
// as an error then.
func (a *Advisor) Evaluate(current core.Mapping, remaining float64, snap *monitor.Snapshot, seed int64) (*Advice, error) {
	if remaining <= 0 || remaining > 1 {
		return nil, fmt.Errorf("remap: remaining fraction %v out of (0,1]", remaining)
	}
	cur := math.Inf(1)
	evacuate := false
	curPred, err := a.Eval.Predict(current, snap)
	switch {
	case err == nil:
		cur = curPred.Seconds * remaining
	case errors.Is(err, core.ErrNodeDown):
		evacuate = true
	default:
		return nil, err
	}

	dec, err := schedule.SimulatedAnnealing(&schedule.Request{
		Eval:   a.Eval,
		Snap:   snap,
		Pool:   a.Pool,
		Seed:   seed,
		Effort: a.Effort,
	})
	if err != nil {
		return nil, err
	}
	alt := dec.Predicted * remaining

	advice := &Advice{Current: cur, Alternative: alt, Mapping: current.Clone()}
	gain := cur - (alt + a.MigrationCost)
	switch {
	case evacuate:
		advice.Remap = true
		advice.Mapping = dec.Mapping
		advice.Gain = gain // +Inf: migrating off a dead node always pays
	case gain > 0 && gain > cur*a.hysteresis()/100 && !dec.Mapping.Equal(current):
		advice.Remap = true
		advice.Mapping = dec.Mapping
		advice.Gain = gain
	}
	return advice, nil
}

// SegmentRunner abstracts an application that can execute a slice of its
// iterations on a mapping and report the simulated seconds it took — the
// "core segment repeated any number of times" structure the paper's §6
// discussion leans on.
type SegmentRunner interface {
	// RunSegment executes iterations [from, to) on the mapping and returns
	// elapsed simulated seconds.
	RunSegment(mapping core.Mapping, from, to int) float64
	// Iterations reports the total iteration count.
	Iterations() int
}

// ExecutionLog records what the executor did.
type ExecutionLog struct {
	Segments   []SegmentRecord
	Remaps     int
	TotalTime  float64 // simulated seconds, including migration costs
	FinalMap   core.Mapping
	InitialMap core.Mapping
}

// SegmentRecord is one executed segment.
type SegmentRecord struct {
	From, To int
	Mapping  core.Mapping
	Seconds  float64
	Remapped bool // a migration preceded this segment
}

// Execute runs the application in `checkpoints` equal segments, consulting
// the advisor before each subsequent segment with the snapshot supplied by
// snapFn (typically SystemMonitor.Snapshot).
func Execute(app SegmentRunner, initial core.Mapping, adv *Advisor, checkpoints int, snapFn func() *monitor.Snapshot, seed int64) (*ExecutionLog, error) {
	if checkpoints < 1 {
		checkpoints = 1
	}
	total := app.Iterations()
	logRec := &ExecutionLog{InitialMap: initial.Clone()}
	mapping := initial.Clone()
	for s := 0; s < checkpoints; s++ {
		from := total * s / checkpoints
		to := total * (s + 1) / checkpoints
		if from >= to {
			continue
		}
		remapped := false
		segPredicted := 0.0
		var segSnap *monitor.Snapshot
		if s > 0 {
			remaining := float64(total-from) / float64(total)
			segSnap = snapFn()
			advice, err := adv.Evaluate(mapping, remaining, segSnap, seed+int64(s))
			if err != nil {
				return nil, err
			}
			if advice.Remap {
				mapping = advice.Mapping
				logRec.Remaps++
				logRec.TotalTime += adv.MigrationCost
				remapped = true
			}
			// The advisor predicted the whole remaining run; this segment is
			// (to-from) of the (total-from) iterations left.
			chosen := advice.Current
			if remapped {
				chosen = advice.Alternative
			}
			segPredicted = chosen * float64(to-from) / float64(total-from)
		}
		secs := app.RunSegment(mapping, from, to)
		logRec.TotalTime += secs
		// Close the loop on the advisor's per-segment estimate so remapping
		// decisions show up in the accuracy ledger.
		if segPredicted > 0 && !math.IsInf(segPredicted, 1) {
			accuracy.Default().ReportPair(accuracy.Prediction{
				App:       adv.Eval.Prof.App,
				Scheduler: "remap",
				AgeBucket: accuracy.AgeBucket(segSnap.MaxAge(mapping)),
				Epoch:     segSnap.Epoch,
				Predicted: segPredicted,
			}, secs)
		}
		logRec.Segments = append(logRec.Segments, SegmentRecord{
			From: from, To: to, Mapping: mapping.Clone(), Seconds: secs, Remapped: remapped,
		})
	}
	logRec.FinalMap = mapping
	return logRec, nil
}
