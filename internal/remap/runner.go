package remap

import (
	"math/rand"

	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

// ClusterRunner executes segments of an iterative workload on fresh
// instances of a topology (checkpoint/restart semantics), with an optional
// static background-load map and OS-noise jitter — the SegmentRunner the
// Execute loop drives.
type ClusterRunner struct {
	Topo *cluster.Topology
	Spec workloads.Iterative
	// Load maps node ID -> availability applied during every segment.
	Load map[int]float64
	// JitterSeed, when non-zero, adds a light OS-noise availability walk
	// to all nodes.
	JitterSeed int64
}

// Iterations reports the workload's total iteration count.
func (cr *ClusterRunner) Iterations() int { return cr.Spec.Iterations }

// RunSegment executes iterations [from, to) on the mapping and returns the
// simulated seconds elapsed.
func (cr *ClusterRunner) RunSegment(mapping core.Mapping, from, to int) float64 {
	eng := des.NewEngine()
	vc := vcluster.New(eng, cr.Topo)
	net := simnet.New(eng, cr.Topo)
	if cr.JitterSeed != 0 {
		rng := rand.New(rand.NewSource(cr.JitterSeed + int64(from)))
		for id := 0; id < cr.Topo.NumNodes(); id++ {
			mean, ok := cr.Load[id]
			if !ok {
				mean = 0.985
			}
			vc.RandomWalkLoad(id, mean, 0.006, 500*des.Millisecond, rng.Int63())
		}
	}
	for node, avail := range cr.Load {
		node, avail := node, avail
		eng.Schedule(0, func() { vc.SetAvailability(node, avail) })
	}
	prog := cr.Spec.Segment(from, to)
	res := mpisim.Run(vc, net, mapping, prog.Body, prog.Options())
	eng.Shutdown()
	return res.Elapsed.Seconds()
}

var _ SegmentRunner = (*ClusterRunner)(nil)
