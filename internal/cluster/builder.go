package cluster

import (
	"fmt"

	"cbes/internal/des"
)

// Builder assembles a Topology incrementally. Build precomputes shortest
// (fewest-hop) routes between all node pairs and freezes the result.
type Builder struct {
	name     string
	nodes    []Node
	switches []Switch
	links    []Link
	archs    map[Arch]ArchInfo
}

// NewBuilder starts an empty topology with the default architecture table.
func NewBuilder(name string) *Builder {
	b := &Builder{name: name, archs: map[Arch]ArchInfo{}}
	for _, a := range []Arch{ArchAlpha, ArchIntel, ArchSPARC, ArchRef} {
		b.archs[a] = DefaultArchInfo(a)
	}
	return b
}

// SetArchInfo overrides the characteristics table entry for an architecture.
// It must be called before adding nodes of that architecture.
func (b *Builder) SetArchInfo(ai ArchInfo) { b.archs[ai.Arch] = ai }

// Switch adds a switch and returns its ID.
func (b *Builder) Switch(name, class string, ports int) int {
	id := len(b.switches)
	b.switches = append(b.switches, Switch{ID: id, Name: name, Ports: ports, Class: class})
	return id
}

// Node adds a node of architecture a attached to switch sw via a link with
// the given bandwidth and per-hop latency, and returns the node's ID.
func (b *Builder) Node(name string, a Arch, sw int, bw float64, lat des.Time) int {
	ai, ok := b.archs[a]
	if !ok {
		ai = DefaultArchInfo(a)
	}
	id := len(b.nodes)
	b.nodes = append(b.nodes, Node{ID: id, Name: name, Arch: a, Switch: sw, Speed: ai.Speed, CPUs: ai.CPUs})
	b.addLink(fmt.Sprintf("%s<->%s", name, b.switchName(sw)),
		Device{DevNode, id}, Device{DevSwitch, sw}, bw, lat)
	return id
}

// Uplink connects two switches with a link of the given bandwidth and
// per-hop latency.
func (b *Builder) Uplink(swA, swB int, bw float64, lat des.Time) {
	b.addLink(fmt.Sprintf("%s<->%s", b.switchName(swA), b.switchName(swB)),
		Device{DevSwitch, swA}, Device{DevSwitch, swB}, bw, lat)
}

func (b *Builder) switchName(sw int) string {
	if sw < 0 || sw >= len(b.switches) {
		return fmt.Sprintf("?sw%d", sw)
	}
	return b.switches[sw].Name
}

func (b *Builder) addLink(name string, a, z Device, bw float64, lat des.Time) {
	if bw <= 0 {
		panic("cluster: link bandwidth must be positive")
	}
	b.links = append(b.links, Link{ID: len(b.links), A: a, B: z, Bandwidth: bw, Latency: lat, Name: name})
}

// Build freezes the topology and computes all-pairs shortest routing.
// Routing is hop-count shortest path via BFS from each node; ties are broken
// deterministically by link insertion order.
func (b *Builder) Build() *Topology {
	t := &Topology{
		Name:     b.name,
		Nodes:    append([]Node(nil), b.nodes...),
		Switches: append([]Switch(nil), b.switches...),
		Links:    append([]Link(nil), b.links...),
		archs:    b.archs,
	}
	t.routes = computeRoutes(t)
	t.internTable()
	t.buildIndexes()
	return t
}

// vertexID flattens Device into a single index space: nodes first, then
// switches.
func vertexID(t *Topology, d Device) int {
	if d.Kind == DevNode {
		return d.Index
	}
	return len(t.Nodes) + d.Index
}

func computeRoutes(t *Topology) [][][]int {
	nv := len(t.Nodes) + len(t.Switches)
	// adjacency: vertex -> (link, neighbour vertex)
	type edge struct{ link, to int }
	adj := make([][]edge, nv)
	for _, l := range t.Links {
		a, z := vertexID(t, l.A), vertexID(t, l.B)
		adj[a] = append(adj[a], edge{l.ID, z})
		adj[z] = append(adj[z], edge{l.ID, a})
	}
	routes := make([][][]int, len(t.Nodes))
	for src := range t.Nodes {
		// BFS from src over the fabric graph.
		prevLink := make([]int, nv)
		prevVert := make([]int, nv)
		for i := range prevLink {
			prevLink[i] = -1
			prevVert[i] = -1
		}
		start := vertexID(t, Device{DevNode, src})
		prevVert[start] = start
		queue := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range adj[v] {
				if prevVert[e.to] >= 0 {
					continue
				}
				prevVert[e.to] = v
				prevLink[e.to] = e.link
				queue = append(queue, e.to)
			}
		}
		routes[src] = make([][]int, len(t.Nodes))
		for dst := range t.Nodes {
			if dst == src {
				routes[src][dst] = []int{}
				continue
			}
			end := vertexID(t, Device{DevNode, dst})
			if prevVert[end] < 0 {
				continue // unreachable; Validate reports it
			}
			var rev []int
			for v := end; v != start; v = prevVert[v] {
				rev = append(rev, prevLink[v])
			}
			path := make([]int, len(rev))
			for i := range rev {
				path[i] = rev[len(rev)-1-i]
			}
			routes[src][dst] = path
		}
	}
	return routes
}
