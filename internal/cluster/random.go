package cluster

import (
	"fmt"
	"math/rand"

	"cbes/internal/des"
)

// RandomSpec bounds the random-topology generator.
type RandomSpec struct {
	// MaxSwitches caps the edge-switch count (minimum 1; default 4).
	MaxSwitches int
	// MaxNodesPerSwitch caps nodes per switch (minimum 1; default 6).
	MaxNodesPerSwitch int
	// Archs to draw from (default: the three paper architectures).
	Archs []Arch
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.MaxSwitches <= 0 {
		s.MaxSwitches = 4
	}
	if s.MaxNodesPerSwitch <= 0 {
		s.MaxNodesPerSwitch = 6
	}
	if len(s.Archs) == 0 {
		s.Archs = []Arch{ArchAlpha, ArchIntel, ArchSPARC}
	}
	return s
}

// NewRandom generates a random connected heterogeneous topology — edge
// switches joined by a random spanning tree plus occasional extra trunks,
// each hosting a random mix of architectures. Deterministic for a fixed
// seed; used by fuzz/property tests to exercise calibration, routing, and
// evaluation on shapes beyond the two paper testbeds.
func NewRandom(seed int64, spec RandomSpec) *Topology {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("random-%d", seed))

	nsw := 1 + rng.Intn(spec.MaxSwitches)
	sws := make([]int, nsw)
	for i := range sws {
		class := "3com-100"
		if rng.Intn(4) == 0 {
			class = "dlink-100"
		}
		sws[i] = b.Switch(fmt.Sprintf("sw%d", i), class, 48)
	}
	// Random spanning tree keeps the fabric connected.
	for i := 1; i < nsw; i++ {
		parent := sws[rng.Intn(i)]
		lat := des.Time(3+rng.Intn(15)) * des.Microsecond
		b.Uplink(sws[i], parent, BandwidthFast100, lat)
	}
	// Occasional extra trunk.
	if nsw > 2 && rng.Intn(2) == 0 {
		a, c := rng.Intn(nsw), rng.Intn(nsw)
		if a != c {
			b.Uplink(sws[a], sws[c], BandwidthGig1200, 2*des.Microsecond)
		}
	}

	id := 0
	for _, sw := range sws {
		n := 1 + rng.Intn(spec.MaxNodesPerSwitch)
		for k := 0; k < n; k++ {
			arch := spec.Archs[rng.Intn(len(spec.Archs))]
			b.Node(fmt.Sprintf("r%02d", id), arch, sw, BandwidthFast100,
				des.Time(3+rng.Intn(6))*des.Microsecond)
			id++
		}
	}
	return b.Build()
}
