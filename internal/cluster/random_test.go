package cluster

import (
	"testing"
	"testing/quick"
)

func TestNewRandomValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := NewRandom(seed, RandomSpec{})
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b := NewRandom(seed, RandomSpec{})
		if a.NumNodes() != b.NumNodes() || len(a.Links) != len(b.Links) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
}

// Property: random topologies are fully routable with well-formed paths
// and coarse path-class structure.
func TestQuickRandomTopologies(t *testing.T) {
	prop := func(seed int64) bool {
		topo := NewRandom(seed, RandomSpec{MaxSwitches: 5, MaxNodesPerSwitch: 5})
		if topo.Validate() != nil {
			return false
		}
		n := topo.NumNodes()
		classes := map[string]bool{}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if len(topo.Path(i, j)) < 2 {
					return false // at least node-sw, sw-node
				}
				classes[topo.PathSignature(i, j)] = true
			}
		}
		// Classes must never exceed pairs (and are usually far fewer).
		return len(classes) <= n*(n-1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
