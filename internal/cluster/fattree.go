package cluster

import (
	"fmt"

	"cbes/internal/des"
)

// Modern bandwidth constants in bytes/second, for the structured
// topologies (the 2005 testbeds keep their Fast Ethernet constants).
const (
	BandwidthGigE    = 1e9 / 8  // 1 Gb/s node NIC
	BandwidthTenGigE = 10e9 / 8 // 10 Gb/s fabric uplink
)

// FatTreeSpec parameterizes a k-ary fat tree (Clos): k pods of k/2 edge
// and k/2 aggregation switches, (k/2)² core switches, and k³/4 nodes.
// k = 16 gives 1024 nodes, k = 28 gives 5488.
type FatTreeSpec struct {
	// K is the switch radix; even and >= 2.
	K int
	// Archs assigns node architectures round-robin by node ID; repeats
	// express mix ratios ({alpha, alpha, intel} = 2:1). Default {ArchRef}.
	Archs []Arch
	// NodeBandwidth/NodeLatency describe the node NIC links
	// (default 1 GigE / 5 µs); UpBandwidth/UpLatency the edge–agg and
	// agg–core fabric links (default 10 GigE / 5 µs).
	NodeBandwidth float64
	UpBandwidth   float64
	NodeLatency   des.Time
	UpLatency     des.Time
}

func (s *FatTreeSpec) defaults() {
	if s.NodeBandwidth <= 0 {
		s.NodeBandwidth = BandwidthGigE
	}
	if s.UpBandwidth <= 0 {
		s.UpBandwidth = BandwidthTenGigE
	}
	if s.NodeLatency <= 0 {
		s.NodeLatency = 5 * des.Microsecond
	}
	if s.UpLatency <= 0 {
		s.UpLatency = 5 * des.Microsecond
	}
}

// fatTreeRouter routes algebraically on the k-ary fat tree. With h = k/2:
//
//	node(p,e,m)  = (p·h+e)·h + m          NIC link ID = node ID
//	edge(p,e)    = p·h+e                  switch IDs: edges, then aggs,
//	agg(p,a)     = k·h + p·h+a            then cores
//	core(a,j)    = 2·k·h + a·h+j          attached to agg index a, port j
//	edge–agg(p,e,a) link = N + (p·h+e)·h + a
//	agg–core(p,a,j) link = N + k·h² + (p·h+a)·h + j
//
// Deterministic up-routing spreads load the way per-destination ECMP
// hashing would: the aggregation index is dst mod h and the core port is
// dst's edge position in its pod, so traffic to distinct destinations on
// one edge switch fans over all h aggs.
type fatTreeRouter struct {
	h      int // k/2
	n      int // node count k³/4
	eaBase int // first edge–agg link ID (== n)
	acBase int // first agg–core link ID
	grid   shapeGrid
}

// Fat-tree route shapes (shape 0 is loopback by shapeGrid convention).
const (
	ftShapeLoop     = 0 // src == dst
	ftShapeSameEdge = 1 // 2 links through the shared edge switch
	ftShapeSamePod  = 2 // 4 links via one aggregation switch
	ftShapeCrossPod = 3 // 6 links via one core switch
	ftShapes        = 4
)

func (r *fatTreeRouter) shape(src, dst int) int {
	switch {
	case src == dst:
		return ftShapeLoop
	case src/r.h == dst/r.h:
		return ftShapeSameEdge
	case src/(r.h*r.h) == dst/(r.h*r.h):
		return ftShapeSamePod
	default:
		return ftShapeCrossPod
	}
}

func (r *fatTreeRouter) appendPath(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	h := r.h
	se, de := src/h, dst/h // global edge-switch indexes
	if se == de {
		return append(buf, src, dst)
	}
	a := dst % h // aggregation index chosen per destination
	eaS := r.eaBase + se*h + a
	eaD := r.eaBase + de*h + a
	sp, dp := se/h, de/h // pods
	if sp == dp {
		return append(buf, src, eaS, eaD, dst)
	}
	j := de % h // core port: dst's edge position within its pod
	acS := r.acBase + (sp*h+a)*h + j
	acD := r.acBase + (dp*h+a)*h + j
	return append(buf, src, eaS, acS, acD, eaD, dst)
}

func (r *fatTreeRouter) hops(src, dst int) int {
	return [ftShapes]int{0, 2, 4, 6}[r.shape(src, dst)]
}

func (r *fatTreeRouter) classID(src, dst int) int {
	return r.grid.id(r.shape(src, dst), src, dst)
}

// NewFatTree builds a k-ary fat tree with algebraic routing: no stored
// route table, O(N) memory at any scale.
func NewFatTree(spec FatTreeSpec) *Topology {
	if spec.K < 2 || spec.K%2 != 0 {
		panic(fmt.Sprintf("cluster: fat-tree K must be even and >= 2, got %d", spec.K))
	}
	spec.defaults()
	k := spec.K
	h := k / 2
	n := k * h * h
	ai := newArchIndexer(spec.Archs)
	r := &fatTreeRouter{h: h, n: n, eaBase: n, acBase: n + k*h*h,
		grid: shapeGrid{ai: ai, shapes: ftShapes}}

	t := &Topology{
		Name:     fmt.Sprintf("fattree-k%d", k),
		Nodes:    make([]Node, 0, n),
		Switches: make([]Switch, 0, 2*k*h+h*h),
		Links:    make([]Link, 0, n+2*k*h*h),
		archs:    defaultArchTable(ai),
		alg:      r,
	}
	// Switches: edges, aggs, cores — IDs match the router arithmetic.
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			t.Switches = append(t.Switches, Switch{ID: len(t.Switches),
				Name: fmt.Sprintf("ft-edge-p%d-e%d", p, e), Ports: k, Class: "ftree-edge"})
		}
	}
	for p := 0; p < k; p++ {
		for a := 0; a < h; a++ {
			t.Switches = append(t.Switches, Switch{ID: len(t.Switches),
				Name: fmt.Sprintf("ft-agg-p%d-a%d", p, a), Ports: k, Class: "ftree-agg"})
		}
	}
	for a := 0; a < h; a++ {
		for j := 0; j < h; j++ {
			t.Switches = append(t.Switches, Switch{ID: len(t.Switches),
				Name: fmt.Sprintf("ft-core-a%d-j%d", a, j), Ports: k, Class: "ftree-core"})
		}
	}
	// Nodes and their NIC links first, so link ID == node ID.
	for id := 0; id < n; id++ {
		sw := id / h // edge(p,e) == global edge index
		info := t.archs[ai.arch(id)]
		t.Nodes = append(t.Nodes, Node{ID: id, Name: fmt.Sprintf("ft-n%04d", id),
			Arch: info.Arch, Switch: sw, Speed: info.Speed, CPUs: info.CPUs})
		t.Links = append(t.Links, Link{ID: id,
			A: Device{DevNode, id}, B: Device{DevSwitch, sw},
			Bandwidth: spec.NodeBandwidth, Latency: spec.NodeLatency,
			Name: fmt.Sprintf("ft-n%04d<->edge%d", id, sw)})
	}
	// Edge–agg links: (p·h+e)·h + a relative to eaBase.
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			for a := 0; a < h; a++ {
				edge, agg := p*h+e, k*h+p*h+a
				t.Links = append(t.Links, Link{ID: len(t.Links),
					A: Device{DevSwitch, edge}, B: Device{DevSwitch, agg},
					Bandwidth: spec.UpBandwidth, Latency: spec.UpLatency,
					Name: fmt.Sprintf("ft-ea-p%d-e%d-a%d", p, e, a)})
			}
		}
	}
	// Agg–core links: (p·h+a)·h + j relative to acBase.
	for p := 0; p < k; p++ {
		for a := 0; a < h; a++ {
			for j := 0; j < h; j++ {
				agg, core := k*h+p*h+a, 2*k*h+a*h+j
				t.Links = append(t.Links, Link{ID: len(t.Links),
					A: Device{DevSwitch, agg}, B: Device{DevSwitch, core},
					Bandwidth: spec.UpBandwidth, Latency: spec.UpLatency,
					Name: fmt.Sprintf("ft-ac-p%d-a%d-j%d", p, a, j)})
			}
		}
	}
	t.classSigs = r.grid.signatures(func(w *sigWriter, shape int) {
		switch shape {
		case ftShapeSameEdge:
			w.hopSwitch(spec.NodeBandwidth, "ftree-edge")
		case ftShapeSamePod:
			w.hopSwitch(spec.NodeBandwidth, "ftree-edge")
			w.hopSwitch(spec.UpBandwidth, "ftree-agg")
			w.hopSwitch(spec.UpBandwidth, "ftree-edge")
		case ftShapeCrossPod:
			w.hopSwitch(spec.NodeBandwidth, "ftree-edge")
			w.hopSwitch(spec.UpBandwidth, "ftree-agg")
			w.hopSwitch(spec.UpBandwidth, "ftree-core")
			w.hopSwitch(spec.UpBandwidth, "ftree-agg")
			w.hopSwitch(spec.UpBandwidth, "ftree-edge")
		}
		w.hopNode(spec.NodeBandwidth)
	})
	t.buildIndexes()
	return t
}
