package cluster

import (
	"fmt"

	"cbes/internal/des"
)

// Per-hop latencies for the fabrics of the two testbeds. The 3Com values
// are chosen so that the spread between the fastest and slowest node-pair
// latency matches the paper: ≈13 % on Centurion (same-switch vs. through
// the gigabit core) and ≈54 % on Orange Grove (same-switch vs. across the
// two-D-Link federation link).
const (
	hop3Com  = 5 * des.Microsecond  // 3Com 24-port store-and-forward hop
	hopCore  = 5 * des.Microsecond  // 3Com 1.2 Gb/s core switch hop
	hopDLink = 10 * des.Microsecond // D-Link 8-port hop (federation path)
)

// NewCenturion builds the experimental Centurion configuration of fig. 3:
// 128 primary nodes — 32 Alpha 533 MHz and 96 dual-PII 400 MHz — spread
// evenly over eight 3Com 24-port 100 Mb/s edge switches (#04–#11), each
// uplinked to a 3Com 1.2 Gb/s core switch (#00). Each edge switch hosts
// 4 Alpha and 12 Intel nodes.
func NewCenturion() *Topology {
	b := NewBuilder("centurion")
	core := b.Switch("3com-giga-00", "3com-1200", 12)
	for s := 0; s < 8; s++ {
		sw := b.Switch(fmt.Sprintf("3com-%02d", s+4), "3com-100", 24)
		b.Uplink(sw, core, BandwidthGig1200, hopCore)
		for i := 0; i < 4; i++ {
			b.Node(fmt.Sprintf("a%02d", s*4+i), ArchAlpha, sw, BandwidthFast100, hop3Com)
		}
		for i := 0; i < 12; i++ {
			b.Node(fmt.Sprintf("i%02d", s*12+i), ArchIntel, sw, BandwidthFast100, hop3Com)
		}
	}
	return b.Build()
}

// NewOrangeGrove builds the rewired Orange Grove cluster of fig. 4: 28
// nodes — 8 single-CPU 533 MHz Alpha, 8 single-CPU 500 MHz SPARC, and 12
// dual-CPU 400 MHz Pentium II — on five 3Com 24-port 100 Mb/s switches
// (two of them stacked and functioning as one 48-port switch) and two
// D-Link 8-port 100 Mb/s switches. The two D-Links in series form the
// limited-capacity link that makes the topology emulate a federation of
// two elementary clusters:
//
//	east: stack(3Com 00+01): 4 Alpha + 6 Intel
//	      3Com 02: 4 Alpha              — reaches the stack through D-Link A
//	west: 3Com 10: 4 SPARC + 3 Intel    — reaches the stack through D-Link B
//	      3Com 11: 4 SPARC + 3 Intel    — behind 3Com 10
//
// The two cheap D-Link switches are the limited-capacity links that make
// the topology emulate a federation of elementary clusters. Every
// architecture group spans a D-Link boundary (the Alphas across D-Link A,
// the Intels across the whole federation path), so even
// architecture-homogeneous node groups expose internode-latency variation
// — the property behind the widths of the fig. 6 execution-time zones and
// the within-group speedups of table 1.
func NewOrangeGrove() *Topology {
	b := NewBuilder("orange-grove")
	stack := b.Switch("3com-stack-00-01", "3com-100", 48)
	east2 := b.Switch("3com-02", "3com-100", 24)
	westS := b.Switch("3com-10", "3com-100", 24)
	westI := b.Switch("3com-11", "3com-100", 24)
	dlA := b.Switch("dlink-a", "dlink-100", 8)
	dlB := b.Switch("dlink-b", "dlink-100", 8)

	b.Uplink(east2, dlA, BandwidthFast100, hopDLink)
	b.Uplink(dlA, stack, BandwidthFast100, hopDLink)
	b.Uplink(stack, dlB, BandwidthFast100, hopDLink)
	b.Uplink(dlB, westS, BandwidthFast100, hopDLink)
	b.Uplink(westI, westS, BandwidthFast100, hop3Com)

	for i := 0; i < 4; i++ {
		b.Node(fmt.Sprintf("a%02d", i), ArchAlpha, stack, BandwidthFast100, hop3Com)
	}
	for i := 0; i < 6; i++ {
		b.Node(fmt.Sprintf("i%02d", i), ArchIntel, stack, BandwidthFast100, hop3Com)
	}
	for i := 4; i < 8; i++ {
		b.Node(fmt.Sprintf("a%02d", i), ArchAlpha, east2, BandwidthFast100, hop3Com)
	}
	for i := 0; i < 4; i++ {
		b.Node(fmt.Sprintf("s%02d", i), ArchSPARC, westS, BandwidthFast100, hop3Com)
	}
	for i := 6; i < 9; i++ {
		b.Node(fmt.Sprintf("i%02d", i), ArchIntel, westS, BandwidthFast100, hop3Com)
	}
	for i := 4; i < 8; i++ {
		b.Node(fmt.Sprintf("s%02d", i), ArchSPARC, westI, BandwidthFast100, hop3Com)
	}
	for i := 9; i < 12; i++ {
		b.Node(fmt.Sprintf("i%02d", i), ArchIntel, westI, BandwidthFast100, hop3Com)
	}
	return b.Build()
}

// NewTestTopology builds a small two-switch, two-architecture cluster used
// throughout unit tests: nodes 0..3 (Alpha) on switch A, nodes 4..7 (Intel)
// on switch B, switches joined directly.
func NewTestTopology() *Topology {
	b := NewBuilder("testnet")
	swA := b.Switch("swA", "3com-100", 24)
	swB := b.Switch("swB", "3com-100", 24)
	b.Uplink(swA, swB, BandwidthFast100, hop3Com)
	for i := 0; i < 4; i++ {
		b.Node(fmt.Sprintf("a%d", i), ArchAlpha, swA, BandwidthFast100, hop3Com)
	}
	for i := 0; i < 4; i++ {
		b.Node(fmt.Sprintf("b%d", i), ArchIntel, swB, BandwidthFast100, hop3Com)
	}
	return b.Build()
}
