package cluster

import (
	"fmt"

	"cbes/internal/des"
)

// TorusSpec parameterizes a 2D (Z == 1) or 3D torus: one node per torus
// switch, wraparound +1 links along each dimension, dimension-order
// routing with shortest-wrap direction.
type TorusSpec struct {
	// X, Y, Z are the dimension sizes (each >= 1; Z == 0 means 1, a 2D
	// torus). 16×16×4 gives 1024 nodes, 16×18×19 gives 5472.
	X, Y, Z int
	// Archs assigns node architectures round-robin by node ID.
	Archs []Arch
	// NodeBandwidth/NodeLatency describe the NIC links (default 1 GigE /
	// 5 µs); LinkBandwidth/LinkLatency the inter-switch torus links
	// (default 10 GigE / 5 µs).
	NodeBandwidth float64
	LinkBandwidth float64
	NodeLatency   des.Time
	LinkLatency   des.Time
}

func (s *TorusSpec) defaults() {
	if s.Z == 0 {
		s.Z = 1
	}
	if s.NodeBandwidth <= 0 {
		s.NodeBandwidth = BandwidthGigE
	}
	if s.LinkBandwidth <= 0 {
		s.LinkBandwidth = BandwidthTenGigE
	}
	if s.NodeLatency <= 0 {
		s.NodeLatency = 5 * des.Microsecond
	}
	if s.LinkLatency <= 0 {
		s.LinkLatency = 5 * des.Microsecond
	}
}

// torusRouter routes by dimension order (X, then Y, then Z), stepping the
// shortest way around each ring (ties go in the + direction). Node and
// switch IDs share the coordinate layout id = (x·Y + y)·Z + z, and the
// NIC link ID equals the node ID. Ring links are laid out per dimension:
// the +1 link leaving coordinate c is indexed by c — except on rings of
// size 2, which have a single link per position pair.
type torusRouter struct {
	x, y, z int
	// ringX is the number of +1 links per X ring (0, 1, or X); likewise
	// Y and Z. xBase/yBase/zBase are the first link IDs of each group.
	ringX, ringY, ringZ int
	xBase, yBase, zBase int
	grid                shapeGrid
}

// ringLinks is the number of distinct +1 links on a ring of size d.
func ringLinks(d int) int {
	switch {
	case d < 2:
		return 0
	case d == 2:
		return 1
	default:
		return d
	}
}

func (r *torusRouter) coords(id int) (x, y, z int) {
	return id / (r.y * r.z), (id / r.z) % r.y, id % r.z
}

// ringSteps reports the signed shortest step count from c to t on a ring
// of size d: positive means + direction (ties break +).
func ringSteps(c, t, d int) int {
	delta := ((t-c)%d + d) % d
	if delta == 0 {
		return 0
	}
	if 2*delta <= d {
		return delta
	}
	return delta - d
}

// xLink/yLink/zLink return the link ID of the ring link between
// coordinate lower and lower+1 (mod size) at the given cross coordinates.
func (r *torusRouter) xLink(lower, y, z int) int {
	if r.x == 2 {
		lower = 0
	}
	return r.xBase + (lower*r.y+y)*r.z + z
}

func (r *torusRouter) yLink(x, lower, z int) int {
	if r.y == 2 {
		lower = 0
	}
	return r.yBase + (lower*r.x+x)*r.z + z
}

func (r *torusRouter) zLink(x, y, lower int) int {
	if r.z == 2 {
		lower = 0
	}
	return r.zBase + (lower*r.x+x)*r.y + y
}

func (r *torusRouter) appendPath(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	buf = append(buf, src) // NIC link onto the fabric
	x, y, z := r.coords(src)
	tx, ty, tz := r.coords(dst)
	for s := ringSteps(x, tx, r.x); s != 0; {
		if s > 0 {
			buf = append(buf, r.xLink(x, y, z))
			x, s = (x+1)%r.x, s-1
		} else {
			x = (x - 1 + r.x) % r.x
			buf = append(buf, r.xLink(x, y, z))
			s++
		}
	}
	for s := ringSteps(y, ty, r.y); s != 0; {
		if s > 0 {
			buf = append(buf, r.yLink(x, y, z))
			y, s = (y+1)%r.y, s-1
		} else {
			y = (y - 1 + r.y) % r.y
			buf = append(buf, r.yLink(x, y, z))
			s++
		}
	}
	for s := ringSteps(z, tz, r.z); s != 0; {
		if s > 0 {
			buf = append(buf, r.zLink(x, y, z))
			z, s = (z+1)%r.z, s-1
		} else {
			z = (z - 1 + r.z) % r.z
			buf = append(buf, r.zLink(x, y, z))
			s++
		}
	}
	return append(buf, dst) // NIC link off the fabric
}

// dist is the torus hop distance between the switches of src and dst.
func (r *torusRouter) dist(src, dst int) int {
	x, y, z := r.coords(src)
	tx, ty, tz := r.coords(dst)
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	return abs(ringSteps(x, tx, r.x)) + abs(ringSteps(y, ty, r.y)) + abs(ringSteps(z, tz, r.z))
}

func (r *torusRouter) hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return r.dist(src, dst) + 2
}

// classID: shape 0 is loopback; shape d >= 1 is "torus distance d" —
// with uniform ring links, the signature depends only on the distance
// and the end architectures.
func (r *torusRouter) classID(src, dst int) int {
	if src == dst {
		return r.grid.id(0, src, dst)
	}
	return r.grid.id(r.dist(src, dst), src, dst)
}

// NewTorus builds a 2D/3D torus with algebraic dimension-order routing.
func NewTorus(spec TorusSpec) *Topology {
	spec.defaults()
	if spec.X < 1 || spec.Y < 1 || spec.Z < 1 {
		panic(fmt.Sprintf("cluster: torus dimensions must be >= 1, got %dx%dx%d", spec.X, spec.Y, spec.Z))
	}
	X, Y, Z := spec.X, spec.Y, spec.Z
	n := X * Y * Z
	maxDist := X/2 + Y/2 + Z/2
	ai := newArchIndexer(spec.Archs)
	r := &torusRouter{x: X, y: Y, z: Z,
		ringX: ringLinks(X), ringY: ringLinks(Y), ringZ: ringLinks(Z),
		grid: shapeGrid{ai: ai, shapes: maxDist + 1}}
	r.xBase = n
	r.yBase = r.xBase + r.ringX*Y*Z
	r.zBase = r.yBase + r.ringY*X*Z

	name := fmt.Sprintf("torus-%dx%d", X, Y)
	if Z > 1 {
		name = fmt.Sprintf("torus-%dx%dx%d", X, Y, Z)
	}
	t := &Topology{
		Name:     name,
		Nodes:    make([]Node, 0, n),
		Switches: make([]Switch, 0, n),
		Links:    make([]Link, 0, n+r.ringX*Y*Z+r.ringY*X*Z+r.ringZ*X*Y),
		archs:    defaultArchTable(ai),
		alg:      r,
	}
	// One switch per node, sharing the node's ID and coordinates.
	for id := 0; id < n; id++ {
		x, y, z := r.coords(id)
		t.Switches = append(t.Switches, Switch{ID: id,
			Name: fmt.Sprintf("tor-sw-%d-%d-%d", x, y, z), Ports: 7, Class: "torus"})
		info := t.archs[ai.arch(id)]
		t.Nodes = append(t.Nodes, Node{ID: id, Name: fmt.Sprintf("tor-n%04d", id),
			Arch: info.Arch, Switch: id, Speed: info.Speed, CPUs: info.CPUs})
		t.Links = append(t.Links, Link{ID: id,
			A: Device{DevNode, id}, B: Device{DevSwitch, id},
			Bandwidth: spec.NodeBandwidth, Latency: spec.NodeLatency,
			Name: fmt.Sprintf("tor-n%04d<->sw", id)})
	}
	ring := func(dim string, count int, at func(i, a, b int) (lo, hi int)) {
		for i := 0; i < count; i++ {
			// a×b iterates the cross-section in the same order the
			// router's link index arithmetic assumes.
			switch dim {
			case "x":
				for yy := 0; yy < Y; yy++ {
					for zz := 0; zz < Z; zz++ {
						lo, hi := at(i, yy, zz)
						t.Links = append(t.Links, Link{ID: len(t.Links),
							A: Device{DevSwitch, lo}, B: Device{DevSwitch, hi},
							Bandwidth: spec.LinkBandwidth, Latency: spec.LinkLatency,
							Name: fmt.Sprintf("tor-x%d-y%d-z%d", i, yy, zz)})
					}
				}
			case "y":
				for xx := 0; xx < X; xx++ {
					for zz := 0; zz < Z; zz++ {
						lo, hi := at(i, xx, zz)
						t.Links = append(t.Links, Link{ID: len(t.Links),
							A: Device{DevSwitch, lo}, B: Device{DevSwitch, hi},
							Bandwidth: spec.LinkBandwidth, Latency: spec.LinkLatency,
							Name: fmt.Sprintf("tor-y%d-x%d-z%d", i, xx, zz)})
					}
				}
			case "z":
				for xx := 0; xx < X; xx++ {
					for yy := 0; yy < Y; yy++ {
						lo, hi := at(i, xx, yy)
						t.Links = append(t.Links, Link{ID: len(t.Links),
							A: Device{DevSwitch, lo}, B: Device{DevSwitch, hi},
							Bandwidth: spec.LinkBandwidth, Latency: spec.LinkLatency,
							Name: fmt.Sprintf("tor-z%d-x%d-y%d", i, xx, yy)})
					}
				}
			}
		}
	}
	sw := func(x, y, z int) int { return (x*Y+y)*Z + z }
	ring("x", r.ringX, func(i, yy, zz int) (int, int) { return sw(i, yy, zz), sw((i+1)%X, yy, zz) })
	ring("y", r.ringY, func(i, xx, zz int) (int, int) { return sw(xx, i, zz), sw(xx, (i+1)%Y, zz) })
	ring("z", r.ringZ, func(i, xx, yy int) (int, int) { return sw(xx, yy, i), sw(xx, yy, (i+1)%Z) })

	t.classSigs = r.grid.signatures(func(w *sigWriter, shape int) {
		// Shape d: src NIC onto the fabric, d ring links, dst NIC off.
		w.hopSwitch(spec.NodeBandwidth, "torus")
		for i := 0; i < shape; i++ {
			w.hopSwitch(spec.LinkBandwidth, "torus")
		}
		w.hopNode(spec.NodeBandwidth)
	})
	t.buildIndexes()
	return t
}
