package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// SpecHelp documents the topology spec grammar accepted by FromSpec, for
// command-line flag usage strings.
const SpecHelp = "grove|centurion|test, or fattree:<k>, torus:<X>x<Y>[x<Z>], " +
	"dragonfly:<P>x<A>x<H>[x<G>]; append @arch[,arch...] (alpha|intel|sparc|ref) " +
	"for a round-robin architecture mix, e.g. fattree:16@alpha,intel"

// FromSpec builds a topology from a command-line spec string: either a
// named 2005 testbed (table-routed, bit-identical to the paper
// reproduction) or a structured algebraic topology sized by parameters.
func FromSpec(spec string) (*Topology, error) {
	name, archPart, hasArchs := strings.Cut(spec, "@")
	var archs []Arch
	if hasArchs {
		var err error
		if archs, err = parseArchList(archPart); err != nil {
			return nil, err
		}
	}
	kind, args, _ := strings.Cut(name, ":")
	switch kind {
	case "grove", "orangegrove", "orange-grove":
		return NewOrangeGrove(), nil
	case "centurion":
		return NewCenturion(), nil
	case "test":
		return NewTestTopology(), nil
	case "fattree":
		k, err := strconv.Atoi(args)
		if err != nil || k < 2 || k%2 != 0 {
			return nil, fmt.Errorf("cluster: fattree spec needs an even radix, e.g. fattree:16 (got %q)", spec)
		}
		return NewFatTree(FatTreeSpec{K: k, Archs: archs}), nil
	case "torus":
		dims, err := parseDims(args, 2, 3)
		if err != nil {
			return nil, fmt.Errorf("cluster: torus spec needs XxY or XxYxZ, e.g. torus:16x16x4 (got %q)", spec)
		}
		ts := TorusSpec{X: dims[0], Y: dims[1], Archs: archs}
		if len(dims) == 3 {
			ts.Z = dims[2]
		}
		return NewTorus(ts), nil
	case "dragonfly":
		dims, err := parseDims(args, 3, 4)
		if err != nil {
			return nil, fmt.Errorf("cluster: dragonfly spec needs PxAxH or PxAxHxG, e.g. dragonfly:4x8x4 (got %q)", spec)
		}
		ds := DragonflySpec{P: dims[0], A: dims[1], H: dims[2], Archs: archs}
		if len(dims) == 4 {
			ds.Groups = dims[3]
		}
		if ds.Groups != 0 && (ds.Groups < 2 || ds.Groups > ds.A*ds.H+1) {
			return nil, fmt.Errorf("cluster: dragonfly groups must be in [2, A*H+1], got %d", ds.Groups)
		}
		return NewDragonfly(ds), nil
	default:
		return nil, fmt.Errorf("cluster: unknown topology spec %q (want %s)", spec, SpecHelp)
	}
}

// parseDims parses "AxBxC"-style dimension lists with an arity range.
func parseDims(s string, min, max int) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) < min || len(parts) > max {
		return nil, fmt.Errorf("cluster: want %d-%d dimensions, got %d", min, max, len(parts))
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("cluster: bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

// parseArchList parses the @-suffix architecture pattern.
func parseArchList(s string) ([]Arch, error) {
	var archs []Arch
	for _, p := range strings.Split(s, ",") {
		switch strings.TrimSpace(p) {
		case "alpha":
			archs = append(archs, ArchAlpha)
		case "intel":
			archs = append(archs, ArchIntel)
		case "sparc":
			archs = append(archs, ArchSPARC)
		case "ref", "refnode":
			archs = append(archs, ArchRef)
		default:
			return nil, fmt.Errorf("cluster: unknown architecture %q (want alpha|intel|sparc|ref)", p)
		}
	}
	return archs, nil
}
