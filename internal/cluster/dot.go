package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the topology as a Graphviz document: switches as boxes
// (D-Link-class devices shaded to flag the limited-capacity federation
// path), nodes as ellipses colored by architecture, and links labeled with
// their bandwidth. Useful for documenting rewired testbeds.
func (t *Topology) ToDOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n", t.Name)
	sb.WriteString("  layout=neato; overlap=false; splines=true;\n")

	for _, sw := range t.Switches {
		style := ""
		if strings.Contains(sw.Class, "dlink") {
			style = ", style=filled, fillcolor=lightgray"
		}
		fmt.Fprintf(&sb, "  sw%d [shape=box, label=%q%s];\n", sw.ID, sw.Name, style)
	}

	colors := map[Arch]string{
		ArchAlpha: "lightblue",
		ArchIntel: "lightyellow",
		ArchSPARC: "lightpink",
		ArchRef:   "white",
	}
	for _, n := range t.Nodes {
		color, ok := colors[n.Arch]
		if !ok {
			color = "white"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, style=filled, fillcolor=%s];\n",
			n.ID, n.Name, color)
	}

	links := append([]Link(nil), t.Links...)
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
	for _, l := range links {
		fmt.Fprintf(&sb, "  %s -- %s [label=\"%.0fMb\"];\n",
			dotID(l.A), dotID(l.B), l.Bandwidth*8/1e6)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func dotID(d Device) string {
	if d.Kind == DevNode {
		return fmt.Sprintf("n%d", d.Index)
	}
	return fmt.Sprintf("sw%d", d.Index)
}
