package cluster

import (
	"fmt"

	"cbes/internal/des"
)

// DragonflySpec parameterizes a dragonfly: groups of A routers, each
// router hosting P nodes and H global links, routers all-to-all connected
// inside a group and group pairs connected by one global link. The
// canonical maximal configuration has G = A·H + 1 groups.
// P=4 A=8 H=4 gives 33 groups × 32 nodes = 1056; P=8 A=8 H=8 gives 4160.
type DragonflySpec struct {
	// P is nodes per router, A routers per group, H global links per
	// router (all >= 1).
	P, A, H int
	// Groups overrides the group count (2..A·H+1; default A·H+1).
	Groups int
	// Archs assigns node architectures round-robin by node ID.
	Archs []Arch
	// Link characteristics: node NIC (default 1 GigE / 5 µs), intra-group
	// local links (default 10 GigE / 5 µs), inter-group global links
	// (default 10 GigE / 50 µs — long optics).
	NodeBandwidth   float64
	LocalBandwidth  float64
	GlobalBandwidth float64
	NodeLatency     des.Time
	LocalLatency    des.Time
	GlobalLatency   des.Time
}

func (s *DragonflySpec) defaults() {
	if s.Groups == 0 {
		s.Groups = s.A*s.H + 1
	}
	if s.NodeBandwidth <= 0 {
		s.NodeBandwidth = BandwidthGigE
	}
	if s.LocalBandwidth <= 0 {
		s.LocalBandwidth = BandwidthTenGigE
	}
	if s.GlobalBandwidth <= 0 {
		s.GlobalBandwidth = BandwidthTenGigE
	}
	if s.NodeLatency <= 0 {
		s.NodeLatency = 5 * des.Microsecond
	}
	if s.LocalLatency <= 0 {
		s.LocalLatency = 5 * des.Microsecond
	}
	if s.GlobalLatency <= 0 {
		s.GlobalLatency = 50 * des.Microsecond
	}
}

// Dragonfly route shapes: minimal routing takes at most one local hop to
// the gateway router, one global hop, and one local hop from the far
// gateway. (Minimal routing is a policy, not graph-shortest-path: rare
// gateway coincidences admit shorter walks through a third group, which
// real dragonfly minimal routing also ignores.)
const (
	dfShapeLoop       = 0 // src == dst
	dfShapeSameRouter = 1 // 2 links through the shared router
	dfShapeSameGroup  = 2 // 3 links: one local hop
	dfShapeCross      = 3 // 3+pre*2+post: cross-group, pre/post local hops
	dfShapes          = 7
)

// dragonflyRouter routes minimally. Layout invariants:
//
//	router(g,r) switch ID = g·A + r
//	node(g,r,m) ID = (g·A+r)·P + m        NIC link ID = node ID
//	local(g,i,j) link = localBase + g·C(A,2) + triIdx(i,j,A)
//	global(gi,gj) link = globalBase + triIdx(gi,gj,G)
//
// The gateway router of group g for target group g2 is t/H with
// t = g2 − [g2 > g], the standard round-robin global-link assignment.
type dragonflyRouter struct {
	p, a, h, g    int
	localBase     int
	globalBase    int
	localPerGroup int // C(A,2)
	grid          shapeGrid
}

// triIdx is the upper-triangle pair index of i < j over n elements.
func triIdx(i, j, n int) int { return i*(2*n-i-1)/2 + (j - i - 1) }

// gateway returns the local router index in group g that holds the
// global link to group g2.
func (r *dragonflyRouter) gateway(g, g2 int) int {
	t := g2
	if g2 > g {
		t = g2 - 1
	}
	return t / r.h
}

func (r *dragonflyRouter) localLink(g, i, j int) int {
	if i > j {
		i, j = j, i
	}
	return r.localBase + g*r.localPerGroup + triIdx(i, j, r.a)
}

func (r *dragonflyRouter) globalLink(gi, gj int) int {
	if gi > gj {
		gi, gj = gj, gi
	}
	return r.globalBase + triIdx(gi, gj, r.g)
}

// route decomposes the pair: shape plus the local hops taken.
func (r *dragonflyRouter) shape(src, dst int) (shape, pre, post int) {
	if src == dst {
		return dfShapeLoop, 0, 0
	}
	r1, r2 := src/r.p, dst/r.p
	if r1 == r2 {
		return dfShapeSameRouter, 0, 0
	}
	g1, g2 := r1/r.a, r2/r.a
	if g1 == g2 {
		return dfShapeSameGroup, 0, 0
	}
	if r1%r.a != r.gateway(g1, g2) {
		pre = 1
	}
	if r2%r.a != r.gateway(g2, g1) {
		post = 1
	}
	return dfShapeCross + pre*2 + post, pre, post
}

func (r *dragonflyRouter) appendPath(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	r1, r2 := src/r.p, dst/r.p
	if r1 == r2 {
		return append(buf, src, dst)
	}
	g1, g2 := r1/r.a, r2/r.a
	l1, l2 := r1%r.a, r2%r.a
	if g1 == g2 {
		return append(buf, src, r.localLink(g1, l1, l2), dst)
	}
	gw1, gw2 := r.gateway(g1, g2), r.gateway(g2, g1)
	buf = append(buf, src)
	if l1 != gw1 {
		buf = append(buf, r.localLink(g1, l1, gw1))
	}
	buf = append(buf, r.globalLink(g1, g2))
	if gw2 != l2 {
		buf = append(buf, r.localLink(g2, gw2, l2))
	}
	return append(buf, dst)
}

func (r *dragonflyRouter) hops(src, dst int) int {
	shape, pre, post := r.shape(src, dst)
	switch shape {
	case dfShapeLoop:
		return 0
	case dfShapeSameRouter:
		return 2
	case dfShapeSameGroup:
		return 3
	default:
		return 3 + pre + post
	}
}

func (r *dragonflyRouter) classID(src, dst int) int {
	shape, _, _ := r.shape(src, dst)
	return r.grid.id(shape, src, dst)
}

// NewDragonfly builds a dragonfly with algebraic minimal routing.
func NewDragonfly(spec DragonflySpec) *Topology {
	if spec.P < 1 || spec.A < 1 || spec.H < 1 {
		panic(fmt.Sprintf("cluster: dragonfly P/A/H must be >= 1, got p%d a%d h%d", spec.P, spec.A, spec.H))
	}
	spec.defaults()
	if spec.Groups < 2 || spec.Groups > spec.A*spec.H+1 {
		panic(fmt.Sprintf("cluster: dragonfly Groups must be in [2, A*H+1], got %d", spec.Groups))
	}
	p, a, h, g := spec.P, spec.A, spec.H, spec.Groups
	n := g * a * p
	ai := newArchIndexer(spec.Archs)
	r := &dragonflyRouter{p: p, a: a, h: h, g: g,
		localPerGroup: a * (a - 1) / 2,
		grid:          shapeGrid{ai: ai, shapes: dfShapes}}
	r.localBase = n
	r.globalBase = n + g*r.localPerGroup

	t := &Topology{
		Name:     fmt.Sprintf("dragonfly-p%da%dh%dg%d", p, a, h, g),
		Nodes:    make([]Node, 0, n),
		Switches: make([]Switch, 0, g*a),
		Links:    make([]Link, 0, n+g*r.localPerGroup+g*(g-1)/2),
		archs:    defaultArchTable(ai),
		alg:      r,
	}
	for gi := 0; gi < g; gi++ {
		for ri := 0; ri < a; ri++ {
			t.Switches = append(t.Switches, Switch{ID: len(t.Switches),
				Name: fmt.Sprintf("df-g%d-r%d", gi, ri), Ports: p + a - 1 + h, Class: "dfly"})
		}
	}
	// Nodes and NIC links first: link ID == node ID.
	for id := 0; id < n; id++ {
		sw := id / p
		info := t.archs[ai.arch(id)]
		t.Nodes = append(t.Nodes, Node{ID: id, Name: fmt.Sprintf("df-n%04d", id),
			Arch: info.Arch, Switch: sw, Speed: info.Speed, CPUs: info.CPUs})
		t.Links = append(t.Links, Link{ID: id,
			A: Device{DevNode, id}, B: Device{DevSwitch, sw},
			Bandwidth: spec.NodeBandwidth, Latency: spec.NodeLatency,
			Name: fmt.Sprintf("df-n%04d<->r%d", id, sw)})
	}
	// Intra-group all-to-all local links in triIdx order.
	for gi := 0; gi < g; gi++ {
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				t.Links = append(t.Links, Link{ID: len(t.Links),
					A: Device{DevSwitch, gi*a + i}, B: Device{DevSwitch, gi*a + j},
					Bandwidth: spec.LocalBandwidth, Latency: spec.LocalLatency,
					Name: fmt.Sprintf("df-local-g%d-%d-%d", gi, i, j)})
			}
		}
	}
	// One global link per group pair, terminating at each side's gateway.
	for gi := 0; gi < g; gi++ {
		for gj := gi + 1; gj < g; gj++ {
			swA := gi*a + r.gateway(gi, gj)
			swB := gj*a + r.gateway(gj, gi)
			t.Links = append(t.Links, Link{ID: len(t.Links),
				A: Device{DevSwitch, swA}, B: Device{DevSwitch, swB},
				Bandwidth: spec.GlobalBandwidth, Latency: spec.GlobalLatency,
				Name: fmt.Sprintf("df-global-g%d-g%d", gi, gj)})
		}
	}
	t.classSigs = r.grid.signatures(func(w *sigWriter, shape int) {
		w.hopSwitch(spec.NodeBandwidth, "dfly")
		switch shape {
		case dfShapeSameGroup:
			w.hopSwitch(spec.LocalBandwidth, "dfly")
		case dfShapeCross, dfShapeCross + 1, dfShapeCross + 2, dfShapeCross + 3:
			pre, post := (shape-dfShapeCross)/2, (shape-dfShapeCross)%2
			for i := 0; i < pre; i++ {
				w.hopSwitch(spec.LocalBandwidth, "dfly")
			}
			w.hopSwitch(spec.GlobalBandwidth, "dfly")
			for i := 0; i < post; i++ {
				w.hopSwitch(spec.LocalBandwidth, "dfly")
			}
		}
		w.hopNode(spec.NodeBandwidth)
	})
	t.buildIndexes()
	return t
}
