package cluster

import (
	"fmt"
	"strings"
)

// Algebraic routing: structured topologies (fat tree, torus, dragonfly)
// compute routes arithmetically from node coordinates instead of storing
// an all-pairs table. A 5k-node fat tree holds O(N) link metadata and a
// few hundred interned class signatures — no O(N²) state of any kind.
//
// Each router must honour the same contracts the table router does:
//
//   - appendPath yields an ordered, device-connected link walk from src's
//     NIC to dst's NIC (empty for src == dst);
//   - classID partitions ordered pairs so that all pairs in a class have
//     byte-identical PathSignature strings (verified by the property
//     tests in algebraic_test.go against the walk-based pathSignature);
//   - IDs are dense in [0, numClasses), small enough to index arrays by.
type algRouter interface {
	// appendPath appends the route's link IDs to buf and returns it.
	appendPath(buf []int, src, dst int) []int
	// hops reports the route length without materializing it.
	hops(src, dst int) int
	// classID returns the interned path-class ID of the ordered pair.
	classID(src, dst int) int
}

// sigWriter builds path-signature strings with the exact grammar of
// Topology.pathSignature, so routers can intern per-class signatures
// without materializing a representative route per class.
type sigWriter struct {
	sb strings.Builder
}

// start begins a signature at a node of architecture a.
func (w *sigWriter) start(a Arch) { w.sb.WriteString(string(a)) }

// hopSwitch records a link whose far end is a switch of the given class.
func (w *sigWriter) hopSwitch(bandwidth float64, class string) {
	fmt.Fprintf(&w.sb, "|%.0fMb", bandwidth*8/1e6)
	w.sb.WriteString("|" + class)
}

// hopNode records a link whose far end is a node.
func (w *sigWriter) hopNode(bandwidth float64) {
	fmt.Fprintf(&w.sb, "|%.0fMb", bandwidth*8/1e6)
}

// end terminates the signature at a node of architecture a.
func (w *sigWriter) end(a Arch) string {
	w.sb.WriteString("|" + string(a))
	return w.sb.String()
}

// loopSignature is the signature of the src == dst class.
func loopSignature(a Arch) string { return "loop|" + string(a) }

// archIndexer assigns each node a dense architecture index so routers can
// compose class IDs as shape×archSrc×archDst without string work. The
// assignment pattern cycles through the (possibly repeating, for mix
// ratios) pattern list by node ID; the index space is the deduplicated
// arch list in pattern order.
type archIndexer struct {
	pattern []Arch  // arch per node ID modulo len(pattern)
	archs   []Arch  // deduplicated, in first-appearance order
	idx     []uint8 // pattern position -> archs position
}

func newArchIndexer(pattern []Arch) *archIndexer {
	if len(pattern) == 0 {
		pattern = []Arch{ArchRef}
	}
	ai := &archIndexer{pattern: pattern, idx: make([]uint8, len(pattern))}
	pos := map[Arch]uint8{}
	for i, a := range pattern {
		p, ok := pos[a]
		if !ok {
			p = uint8(len(ai.archs))
			pos[a] = p
			ai.archs = append(ai.archs, a)
		}
		ai.idx[i] = p
	}
	return ai
}

// arch returns the architecture assigned to node id.
func (ai *archIndexer) arch(id int) Arch { return ai.pattern[id%len(ai.pattern)] }

// index returns the dense architecture index of node id.
func (ai *archIndexer) index(id int) int { return int(ai.idx[id%len(ai.idx)]) }

// count reports the number of distinct architectures.
func (ai *archIndexer) count() int { return len(ai.archs) }

// pairClasses enumerates every ordered (archSrc, archDst) index pair of
// one route shape; shape grids use it to keep class IDs dense and
// arithmetic.
func (ai *archIndexer) pairClasses(fill func(si, di int)) {
	for si := 0; si < len(ai.archs); si++ {
		for di := 0; di < len(ai.archs); di++ {
			fill(si, di)
		}
	}
}

// shapeGrid composes class IDs for routers whose classes factor into
// route shape × source arch × destination arch.
type shapeGrid struct {
	ai     *archIndexer
	shapes int
}

// id composes the class ID for a shape and an ordered node pair.
func (g *shapeGrid) id(shape, src, dst int) int {
	a := g.ai.count()
	return (shape*a+g.ai.index(src))*a + g.ai.index(dst)
}

// numClasses is the dense ID-space size.
func (g *shapeGrid) numClasses() int { return g.shapes * g.ai.count() * g.ai.count() }

// signatures builds the per-class signature table: sig(shape, si, di)
// must append the interior of the signature (everything between the start
// arch and the end arch) to w. Shape 0 is always the loopback class.
func (g *shapeGrid) signatures(sig func(w *sigWriter, shape int)) []string {
	a := g.ai.count()
	sigs := make([]string, g.numClasses())
	for shape := 0; shape < g.shapes; shape++ {
		g.ai.pairClasses(func(si, di int) {
			id := (shape*a+si)*a + di
			if shape == 0 {
				if si == di {
					sigs[id] = loopSignature(g.ai.archs[si])
				}
				// Off-diagonal loop slots cover no pairs; leave them "".
				return
			}
			var w sigWriter
			w.start(g.ai.archs[si])
			sig(&w, shape)
			sigs[id] = w.end(g.ai.archs[di])
		})
	}
	return sigs
}

// defaultArchTable returns the arch info map structured builders install
// (the default table for every architecture in the pattern).
func defaultArchTable(ai *archIndexer) map[Arch]ArchInfo {
	m := map[Arch]ArchInfo{}
	for _, a := range ai.archs {
		m[a] = DefaultArchInfo(a)
	}
	return m
}
