package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cbes/internal/des"
)

func TestCenturionShape(t *testing.T) {
	c := NewCenturion()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.NumNodes(); got != 128 {
		t.Fatalf("Centurion has %d nodes, want 128", got)
	}
	if got := len(c.NodesByArch(ArchAlpha)); got != 32 {
		t.Fatalf("Centurion has %d Alphas, want 32", got)
	}
	if got := len(c.NodesByArch(ArchIntel)); got != 96 {
		t.Fatalf("Centurion has %d Intels, want 96", got)
	}
	if got := len(c.Switches); got != 9 {
		t.Fatalf("Centurion has %d switches, want 9 (8 edge + core)", got)
	}
	// Every edge switch hosts 16 nodes.
	for sw := 1; sw <= 8; sw++ {
		if got := len(c.NodesOnSwitch(sw)); got != 16 {
			t.Fatalf("switch %d hosts %d nodes, want 16", sw, got)
		}
	}
	if got := len(c.NodesOnSwitch(0)); got != 0 {
		t.Fatalf("core switch hosts %d nodes, want 0", got)
	}
}

func TestOrangeGroveShape(t *testing.T) {
	g := NewOrangeGrove()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumNodes(); got != 28 {
		t.Fatalf("Orange Grove has %d nodes, want 28", got)
	}
	for _, tc := range []struct {
		arch Arch
		want int
	}{{ArchAlpha, 8}, {ArchSPARC, 8}, {ArchIntel, 12}} {
		if got := len(g.NodesByArch(tc.arch)); got != tc.want {
			t.Fatalf("Orange Grove has %d %s nodes, want %d", got, tc.arch, tc.want)
		}
	}
	// Intel nodes are dual-CPU, others single.
	for _, n := range g.Nodes {
		wantCPUs := 1
		if n.Arch == ArchIntel {
			wantCPUs = 2
		}
		if n.CPUs != wantCPUs {
			t.Fatalf("node %s (%s) has %d CPUs, want %d", n.Name, n.Arch, n.CPUs, wantCPUs)
		}
	}
}

func TestRoutingHops(t *testing.T) {
	c := NewCenturion()
	alphas := c.NodesByArch(ArchAlpha)
	// Two Alphas on the same edge switch: node-sw, sw-node = 2 hops.
	if h := c.Hops(alphas[0], alphas[1]); h != 2 {
		t.Fatalf("same-switch hops = %d, want 2", h)
	}
	// Alphas on different switches go through the core: 4 hops.
	if h := c.Hops(alphas[0], alphas[4]); h != 4 {
		t.Fatalf("cross-switch hops = %d, want 4", h)
	}

	g := NewOrangeGrove()
	galphas := g.NodesByArch(ArchAlpha)
	s := g.NodesByArch(ArchSPARC)[0]
	// Stack Alpha to west SPARC crosses D-Link B:
	// node-stack, stack-dlB, dlB-westS, westS-node = 4 hops.
	if h := g.Hops(galphas[0], s); h != 4 {
		t.Fatalf("federation hops = %d, want 4", h)
	}
	// 3Com-02 Alpha (behind D-Link A) to a west SPARC: 6 hops.
	if h := g.Hops(galphas[7], s); h != 6 {
		t.Fatalf("far federation hops = %d, want 6", h)
	}
	// The Alpha group itself spans D-Link A: 4 hops between its halves.
	if h := g.Hops(galphas[0], galphas[7]); h != 4 {
		t.Fatalf("alpha-group hops = %d, want 4", h)
	}
}

func TestPathSymmetryAndEndpoints(t *testing.T) {
	g := NewOrangeGrove()
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pij, pji := g.Path(i, j), g.Path(j, i)
			if len(pij) != len(pji) {
				t.Fatalf("asymmetric path length %d<->%d: %d vs %d", i, j, len(pij), len(pji))
			}
			if i == j && len(pij) != 0 {
				t.Fatalf("loopback path %d not empty", i)
			}
		}
	}
}

func TestPathSignatureGroupsPairs(t *testing.T) {
	c := NewCenturion()
	alphas := c.NodesByArch(ArchAlpha)
	// Any two same-switch Alpha pairs share a signature.
	s1 := c.PathSignature(alphas[0], alphas[1])
	s2 := c.PathSignature(alphas[2], alphas[3])
	if s1 != s2 {
		t.Fatalf("same-class pairs have different signatures:\n%s\n%s", s1, s2)
	}
	// A cross-switch pair must differ from a same-switch pair.
	s3 := c.PathSignature(alphas[0], alphas[4])
	if s3 == s1 {
		t.Fatalf("cross-switch signature equals same-switch signature: %s", s3)
	}
	// Signature is direction-sensitive only in the arch endpoints.
	intels := c.NodesByArch(ArchIntel)
	ai := c.PathSignature(alphas[0], intels[0])
	ia := c.PathSignature(intels[0], alphas[0])
	if ai == ia {
		t.Fatalf("alpha->intel and intel->alpha signatures should differ: %s", ai)
	}
}

func TestSignatureClassCountIsSmall(t *testing.T) {
	// The whole point of path classes is an O(N) system profile: the number
	// of distinct classes must be tiny compared to the number of pairs.
	for _, topo := range []*Topology{NewCenturion(), NewOrangeGrove()} {
		classes := map[string]bool{}
		n := topo.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					classes[topo.PathSignature(i, j)] = true
				}
			}
		}
		pairs := n * (n - 1)
		if len(classes) > pairs/10 {
			t.Fatalf("%s: %d signature classes for %d pairs — classes are not coarse enough",
				topo.Name, len(classes), pairs)
		}
		t.Logf("%s: %d classes cover %d ordered pairs", topo.Name, len(classes), pairs)
	}
}

func TestArchInfoDefaults(t *testing.T) {
	ai := DefaultArchInfo(ArchAlpha)
	if ai.Speed != 1.0 {
		t.Fatalf("Alpha speed = %v, want 1.0 (reference)", ai.Speed)
	}
	if DefaultArchInfo(ArchIntel).Speed >= ai.Speed {
		t.Fatal("Intel must be slower than Alpha")
	}
	if DefaultArchInfo(ArchSPARC).Speed >= DefaultArchInfo(ArchIntel).Speed {
		t.Fatal("SPARC must be slower than Intel")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown arch should panic")
		}
	}()
	DefaultArchInfo(Arch("vax"))
}

func TestBuilderCustomTopology(t *testing.T) {
	b := NewBuilder("ring")
	var sws []int
	for i := 0; i < 4; i++ {
		sws = append(sws, b.Switch("sw", "3com-100", 8))
	}
	for i := 0; i < 4; i++ {
		b.Uplink(sws[i], sws[(i+1)%4], BandwidthFast100, des.Microsecond)
	}
	var nodes []int
	for i := 0; i < 4; i++ {
		nodes = append(nodes, b.Node("n", ArchRef, sws[i], BandwidthFast100, des.Microsecond))
	}
	topo := b.Build()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// Opposite corners of the ring: node-sw + 2 ring hops + sw-node = 4.
	if h := topo.Hops(nodes[0], nodes[2]); h != 4 {
		t.Fatalf("ring hops = %d, want 4", h)
	}
	// Adjacent: 3 hops.
	if h := topo.Hops(nodes[0], nodes[1]); h != 3 {
		t.Fatalf("adjacent ring hops = %d, want 3", h)
	}
}

// Property: for random pairs, the path starts at src's edge link and ends at
// dst's edge link, and consecutive links share a device.
func TestQuickPathWellFormed(t *testing.T) {
	g := NewOrangeGrove()
	prop := func(a, b uint8) bool {
		i := int(a) % g.NumNodes()
		j := int(b) % g.NumNodes()
		if i == j {
			return len(g.Path(i, j)) == 0
		}
		path := g.Path(i, j)
		if len(path) == 0 {
			return false
		}
		at := Device{DevNode, i}
		for _, lid := range path {
			l := g.Links[lid]
			switch at {
			case l.A:
				at = l.B
			case l.B:
				at = l.A
			default:
				return false // disconnected step
			}
		}
		return at == (Device{DevNode, j})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: hop counts satisfy the triangle inequality loosely (path through
// an intermediate node is never shorter than the direct path).
func TestQuickHopsTriangle(t *testing.T) {
	c := NewTestTopology()
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 200; k++ {
		i, j, m := rng.Intn(8), rng.Intn(8), rng.Intn(8)
		if i == j || j == m || i == m {
			continue
		}
		if c.Hops(i, j) > c.Hops(i, m)+c.Hops(m, j) {
			t.Fatalf("triangle violated for %d,%d via %d", i, j, m)
		}
	}
}
