package cluster

import (
	"strings"
	"testing"
)

// smallStructured returns the ≤64-node structured instances the property
// tests sweep.
var smallStructured = func() map[string]*Topology {
	mixed := []Arch{ArchAlpha, ArchIntel, ArchSPARC}
	return map[string]*Topology{
		"fattree-k2":    NewFatTree(FatTreeSpec{K: 2, Archs: mixed}),
		"fattree-k4":    NewFatTree(FatTreeSpec{K: 4, Archs: mixed}),
		"fattree-k6":    NewFatTree(FatTreeSpec{K: 6}), // 54 nodes, uniform arch
		"torus-4x4":     NewTorus(TorusSpec{X: 4, Y: 4, Archs: mixed}),
		"torus-5x3":     NewTorus(TorusSpec{X: 5, Y: 3, Archs: mixed}),
		"torus-2x2x2":   NewTorus(TorusSpec{X: 2, Y: 2, Z: 2, Archs: mixed}),
		"torus-3x3x3":   NewTorus(TorusSpec{X: 3, Y: 3, Z: 3, Archs: mixed}),
		"torus-1x4":     NewTorus(TorusSpec{X: 1, Y: 4}),
		"dfly-p2a3h1":   NewDragonfly(DragonflySpec{P: 2, A: 3, H: 1, Archs: mixed}), // 4 groups, 24 nodes
		"dfly-p1a4h1":   NewDragonfly(DragonflySpec{P: 1, A: 4, H: 1}),               // 5 groups, 20 nodes
		"dfly-p2a2h2g3": NewDragonfly(DragonflySpec{P: 2, A: 2, H: 2, Groups: 3, Archs: mixed}),
	}
}()

// bfsDistances computes single-source shortest link counts over the
// node+switch fabric graph — the reference the algebraic routers must
// match (fat tree, torus) or bound (dragonfly minimal routing).
func bfsDistances(t *Topology, src int) []int {
	nv := len(t.Nodes) + len(t.Switches)
	type edge struct{ to int }
	adj := make([][]int, nv)
	for _, l := range t.Links {
		a, z := vertexID(t, l.A), vertexID(t, l.B)
		adj[a] = append(adj[a], z)
		adj[z] = append(adj[z], a)
	}
	dist := make([]int, nv)
	for i := range dist {
		dist[i] = -1
	}
	start := vertexID(t, Device{DevNode, src})
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist[:len(t.Nodes)]
}

// TestAlgebraicPathsWellFormed checks, for every ordered pair of every
// small structured instance, that the algebraic route is a connected
// device walk from src to dst, that Hops agrees with the materialized
// path, and that AppendPath reuses the caller's buffer.
func TestAlgebraicPathsWellFormed(t *testing.T) {
	for name, topo := range smallStructured {
		if !topo.AlgebraicRoutes() {
			t.Fatalf("%s: expected algebraic routing", name)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		buf := make([]int, 0, 16)
		n := topo.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				buf = topo.AppendPath(buf[:0], i, j)
				if err := topo.checkPath(buf, i, j); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got := topo.Hops(i, j); got != len(buf) {
					t.Fatalf("%s: Hops(%d,%d) = %d, path has %d links", name, i, j, got, len(buf))
				}
				if i == j && len(buf) != 0 {
					t.Fatalf("%s: loopback %d has non-empty path", name, i)
				}
			}
		}
	}
}

// TestAlgebraicRoutesMatchBFS pins the acceptance property: on small
// instances, fat-tree and torus algebraic routes are exactly as long as
// BFS shortest paths over the link graph. Dragonfly minimal routing is a
// policy rather than shortest-path, so it is checked as an upper bound
// within one hop of BFS (the slack only materializes on rare gateway
// coincidences).
func TestAlgebraicRoutesMatchBFS(t *testing.T) {
	for name, topo := range smallStructured {
		exact := !strings.HasPrefix(topo.Name, "dragonfly")
		n := topo.NumNodes()
		for i := 0; i < n; i++ {
			dist := bfsDistances(topo, i)
			for j := 0; j < n; j++ {
				if dist[j] < 0 {
					t.Fatalf("%s: node %d unreachable from %d", name, j, i)
				}
				got := topo.Hops(i, j)
				if exact && got != dist[j] {
					t.Fatalf("%s: Hops(%d,%d) = %d, BFS shortest = %d", name, i, j, got, dist[j])
				}
				if !exact && (got < dist[j] || got > dist[j]+1) {
					t.Fatalf("%s: dragonfly Hops(%d,%d) = %d, BFS shortest = %d", name, i, j, got, dist[j])
				}
			}
		}
	}
}

// TestClassSignatureMatchesPathWalk pins the interning equivalence: for
// every pair, the interned ClassSignature(ClassID(i,j)) must be
// byte-identical to the signature computed by walking the route — the
// same function that keyed the model before interning existed.
func TestClassSignatureMatchesPathWalk(t *testing.T) {
	topos := map[string]*Topology{"grove": NewOrangeGrove(), "centurion": NewCenturion(), "test": NewTestTopology()}
	for name, topo := range smallStructured {
		topos[name] = topo
	}
	for name, topo := range topos {
		n := topo.NumNodes()
		nc := topo.NumClasses()
		if nc == 0 {
			t.Fatalf("%s: no interned classes", name)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				id := topo.ClassID(i, j)
				if id < 0 || id >= nc {
					t.Fatalf("%s: ClassID(%d,%d) = %d out of [0,%d)", name, i, j, id, nc)
				}
				want := topo.pathSignature(i, j)
				if got := topo.ClassSignature(id); got != want {
					t.Fatalf("%s: class %d signature %q, path walk says %q", name, id, got, want)
				}
				if got := topo.PathSignature(i, j); got != want {
					t.Fatalf("%s: PathSignature(%d,%d) = %q, want %q", name, i, j, got, want)
				}
			}
		}
	}
}

// TestStructuredClassCountSmall keeps the O(N) calibration claim honest
// at scale: class counts depend on shape and arch mix, never on N.
func TestStructuredClassCountSmall(t *testing.T) {
	for name, topo := range smallStructured {
		seen := map[int]bool{}
		n := topo.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				seen[topo.ClassID(i, j)] = true
			}
		}
		if len(seen) > 64 {
			t.Fatalf("%s: %d used path classes for %d nodes — interning broken?", name, len(seen), n)
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	for _, tc := range []struct{ k, nodes, switches, links int }{
		{4, 16, 20, 48}, // 8 edge + 8 agg + 4 core; 16 NIC + 16 ea + 16 ac
		{16, 1024, 320, 3072},
	} {
		topo := NewFatTree(FatTreeSpec{K: tc.k})
		if err := topo.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := topo.NumNodes(); got != tc.nodes {
			t.Fatalf("k=%d: %d nodes, want %d", tc.k, got, tc.nodes)
		}
		if got := len(topo.Switches); got != tc.switches {
			t.Fatalf("k=%d: %d switches, want %d", tc.k, got, tc.switches)
		}
		if got := len(topo.Links); got != tc.links {
			t.Fatalf("k=%d: %d links, want %d", tc.k, got, tc.links)
		}
		// Same-edge pairs: 2 hops; cross-pod pairs: 6.
		h := tc.k / 2
		if h >= 2 {
			if got := topo.Hops(0, 1); got != 2 {
				t.Fatalf("k=%d: same-edge hops %d, want 2", tc.k, got)
			}
		}
		if got := topo.Hops(0, tc.nodes-1); got != 6 {
			t.Fatalf("k=%d: cross-pod hops %d, want 6", tc.k, got)
		}
	}
}

func TestTorusShape(t *testing.T) {
	topo := NewTorus(TorusSpec{X: 4, Y: 4, Z: 4})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := topo.NumNodes(); got != 64 {
		t.Fatalf("4x4x4 torus has %d nodes, want 64", got)
	}
	// 3 dimensions × 64 ring links + 64 NICs.
	if got := len(topo.Links); got != 64+3*64 {
		t.Fatalf("4x4x4 torus has %d links, want %d", got, 64+3*64)
	}
	// Antipodal pair: 2+2+2 ring hops + 2 NIC hops.
	src := 0
	dst := (2*4+2)*4 + 2 // coords (2,2,2)
	if got := topo.Hops(src, dst); got != 8 {
		t.Fatalf("antipodal hops %d, want 8", got)
	}
}

func TestDragonflyShape(t *testing.T) {
	// Canonical p=2 a=4 h=2: g = 9 groups, 72 nodes, 36 routers.
	topo := NewDragonfly(DragonflySpec{P: 2, A: 4, H: 2})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := topo.NumNodes(); got != 72 {
		t.Fatalf("dragonfly has %d nodes, want 72", got)
	}
	if got := len(topo.Switches); got != 36 {
		t.Fatalf("dragonfly has %d routers, want 36", got)
	}
	// 72 NIC + 9 groups × C(4,2) local + C(9,2) global.
	want := 72 + 9*6 + 36
	if got := len(topo.Links); got != want {
		t.Fatalf("dragonfly has %d links, want %d", got, want)
	}
	// Same router: 2 hops.
	if got := topo.Hops(0, 1); got != 2 {
		t.Fatalf("same-router hops %d, want 2", got)
	}
}

func TestPrecomputedIndexes(t *testing.T) {
	for name, topo := range map[string]*Topology{
		"grove":   NewOrangeGrove(),
		"fattree": NewFatTree(FatTreeSpec{K: 4, Archs: []Arch{ArchAlpha, ArchIntel}}),
	} {
		// NodesByArch covers all nodes exactly once, in ID order.
		total := 0
		for _, a := range topo.Archs() {
			ids := topo.NodesByArch(a)
			total += len(ids)
			for k := 1; k < len(ids); k++ {
				if ids[k] <= ids[k-1] {
					t.Fatalf("%s: NodesByArch(%s) not increasing: %v", name, a, ids)
				}
			}
			for _, id := range ids {
				if topo.Node(id).Arch != a {
					t.Fatalf("%s: node %d in NodesByArch(%s) has arch %s", name, id, a, topo.Node(id).Arch)
				}
			}
			// Returned slices are copies: mutating one must not corrupt
			// the index.
			if len(ids) > 0 {
				ids[0] = -999
				if again := topo.NodesByArch(a); len(again) > 0 && again[0] == -999 {
					t.Fatalf("%s: NodesByArch returns a live index slice", name)
				}
			}
		}
		if total != topo.NumNodes() {
			t.Fatalf("%s: NodesByArch union %d nodes, want %d", name, total, topo.NumNodes())
		}
		// NodesOnSwitch matches the node records.
		for sw := range topo.Switches {
			for _, id := range topo.NodesOnSwitch(sw) {
				if topo.Node(id).Switch != sw {
					t.Fatalf("%s: node %d on switch %d per index, record says %d", name, id, sw, topo.Node(id).Switch)
				}
			}
		}
		// EdgeLink returns the node's NIC.
		for id := 0; id < topo.NumNodes(); id++ {
			lid := topo.EdgeLink(id)
			if lid < 0 {
				t.Fatalf("%s: node %d has no edge link", name, id)
			}
			l := topo.Links[lid]
			dev := Device{DevNode, id}
			if l.A != dev && l.B != dev {
				t.Fatalf("%s: EdgeLink(%d) = %d not incident to the node", name, id, lid)
			}
		}
	}
}

func TestFromSpec(t *testing.T) {
	for spec, wantNodes := range map[string]int{
		"grove":             28,
		"centurion":         128,
		"test":              8,
		"fattree:4":         16,
		"fattree:16@alpha":  1024,
		"torus:4x4":         16,
		"torus:3x3x3":       27,
		"dragonfly:2x3x1":   24,
		"dragonfly:1x4x1x3": 12,
	} {
		topo, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", spec, err)
		}
		if got := topo.NumNodes(); got != wantNodes {
			t.Fatalf("FromSpec(%q): %d nodes, want %d", spec, got, wantNodes)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("FromSpec(%q): %v", spec, err)
		}
	}
	mix, err := FromSpec("fattree:4@alpha,intel,sparc")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(mix.Archs()); got != 3 {
		t.Fatalf("arch mix has %d architectures, want 3", got)
	}
	for _, bad := range []string{"", "fattree", "fattree:3", "torus:4", "torus:0x4", "dragonfly:4", "dragonfly:1x1x1x9", "ring:8", "fattree:4@vax"} {
		if _, err := FromSpec(bad); err == nil {
			t.Fatalf("FromSpec(%q) should fail", bad)
		}
	}
}

// TestAlgebraicTopologyNoRouteTable asserts the structural point of the
// tentpole: algebraic topologies store no per-pair routing state.
func TestAlgebraicTopologyNoRouteTable(t *testing.T) {
	topo := NewFatTree(FatTreeSpec{K: 8})
	if topo.routes != nil {
		t.Fatal("fat tree carries a route table")
	}
	if topo.classIDs != nil {
		t.Fatal("fat tree carries a per-pair class table")
	}
	if topo.ClassIDTable() != nil {
		t.Fatal("ClassIDTable should be nil for algebraic topologies")
	}
	// Table-routed topologies keep both, as before.
	grove := NewOrangeGrove()
	if grove.routes == nil || grove.ClassIDTable() == nil {
		t.Fatal("grove lost its table routing")
	}
	if grove.AlgebraicRoutes() {
		t.Fatal("grove should not be algebraic")
	}
}
