package cluster

import (
	"strings"
	"testing"
)

func TestToDOT(t *testing.T) {
	g := NewOrangeGrove()
	dot := g.ToDOT()
	if !strings.HasPrefix(dot, "graph \"orange-grove\"") {
		t.Fatalf("header: %q", dot[:40])
	}
	// All devices present.
	for _, sw := range g.Switches {
		if !strings.Contains(dot, sw.Name) {
			t.Fatalf("switch %s missing", sw.Name)
		}
	}
	if got := strings.Count(dot, " -- "); got != len(g.Links) {
		t.Fatalf("%d edges, want %d", got, len(g.Links))
	}
	// D-Links flagged as the limited-capacity path.
	if strings.Count(dot, "fillcolor=lightgray") != 2 {
		t.Fatal("D-Link switches not shaded")
	}
	// Architectures colored.
	for _, c := range []string{"lightblue", "lightyellow", "lightpink"} {
		if !strings.Contains(dot, c) {
			t.Fatalf("color %s missing", c)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("unterminated graph")
	}
}
