// Package cluster describes heterogeneous cluster topologies: nodes of
// several hardware architectures attached to a switched network fabric.
//
// It provides faithful descriptions of the two testbeds used in the paper —
// the 128-node Centurion configuration at the University of Virginia
// (fig. 3) and the 28-node rewired Orange Grove cluster at Syracuse
// University (fig. 4) — plus a Builder for constructing arbitrary
// topologies in tests and examples.
//
// A Topology is purely static: the dynamic behaviour (contention, load,
// timesharing) lives in internal/simnet and internal/vcluster.
package cluster

import (
	"fmt"
	"sort"

	"cbes/internal/des"
)

// Arch identifies a node hardware architecture.
type Arch string

// Architectures present in the paper's two clusters.
const (
	ArchAlpha Arch = "alpha"   // 533 MHz Alpha, single CPU
	ArchIntel Arch = "intel"   // 400 MHz dual Pentium II
	ArchSPARC Arch = "sparc"   // 500 MHz SPARC, single CPU
	ArchRef   Arch = "refnode" // synthetic reference architecture (speed 1.0)
)

// ArchInfo carries the static performance characteristics of an
// architecture. Speed is relative to the reference profiling node
// (ArchAlpha = 1.0 in both paper clusters); the per-message software
// overheads model the MPI library and NIC driver path and are the
// CPU-load-sensitive component of end-to-end latency.
type ArchInfo struct {
	Arch         Arch
	Speed        float64  // relative compute speed, reference = 1.0
	CPUs         int      // processors per node
	SendOverhead des.Time // per-message CPU cost on the sender
	RecvOverhead des.Time // per-message CPU cost on the receiver
}

// DefaultArchInfo returns the calibrated characteristics used for the
// paper's architectures. The speed ratios are chosen so that the three
// Orange Grove execution-time zones of fig. 6 (high = Alpha-only,
// medium = Alpha+Intel, low = Alpha+Intel+SPARC) reproduce.
func DefaultArchInfo(a Arch) ArchInfo {
	switch a {
	case ArchAlpha:
		return ArchInfo{Arch: a, Speed: 1.0, CPUs: 1, SendOverhead: 32 * des.Microsecond, RecvOverhead: 36 * des.Microsecond}
	case ArchIntel:
		return ArchInfo{Arch: a, Speed: 0.78, CPUs: 2, SendOverhead: 38 * des.Microsecond, RecvOverhead: 42 * des.Microsecond}
	case ArchSPARC:
		return ArchInfo{Arch: a, Speed: 0.60, CPUs: 1, SendOverhead: 52 * des.Microsecond, RecvOverhead: 58 * des.Microsecond}
	case ArchRef:
		return ArchInfo{Arch: a, Speed: 1.0, CPUs: 1, SendOverhead: 30 * des.Microsecond, RecvOverhead: 34 * des.Microsecond}
	default:
		panic(fmt.Sprintf("cluster: unknown architecture %q", a))
	}
}

// Node is one cluster machine.
type Node struct {
	ID     int     // dense index, 0..N-1
	Name   string  // e.g. "centurion-a07"
	Arch   Arch    // hardware architecture
	Switch int     // edge switch the node's NIC connects to
	Speed  float64 // relative compute speed (copied from ArchInfo, overridable)
	CPUs   int     // processors
}

// Switch is a network switch (or a stack functioning as one).
type Switch struct {
	ID    int
	Name  string
	Ports int
	Class string // e.g. "3com-100", "3com-1200", "dlink-100"; part of path signatures
}

// DeviceKind distinguishes the two vertex types of the fabric graph.
type DeviceKind int

// Device kinds.
const (
	DevNode DeviceKind = iota
	DevSwitch
)

// Device addresses a vertex in the fabric graph.
type Device struct {
	Kind  DeviceKind
	Index int // Node.ID or Switch.ID
}

func (d Device) String() string {
	if d.Kind == DevNode {
		return fmt.Sprintf("node%d", d.Index)
	}
	return fmt.Sprintf("switch%d", d.Index)
}

// Link is an undirected full-duplex cable between two devices.
type Link struct {
	ID        int
	A, B      Device
	Bandwidth float64  // bytes per second per direction
	Latency   des.Time // propagation + store-and-forward latency per traversal
	Name      string
}

// Bandwidth constants in bytes/second.
const (
	BandwidthFast100 = 100e6 / 8  // Fast Ethernet, 100 Mb/s
	BandwidthGig1200 = 1200e6 / 8 // 3Com 1.2 Gb/s core switch uplink
)

// Topology is an immutable cluster description with node-to-node routing.
//
// Routing comes in two flavours. Small irregular topologies (the 2005
// testbeds, Builder-assembled test fabrics) carry a precomputed all-pairs
// route table — O(N²·hops) memory, fine below a few hundred nodes. The
// structured builders (NewFatTree, NewTorus, NewDragonfly) install an
// algebraic router instead: paths are computed on demand from node
// coordinates in O(hops), so a 5k-node fat tree stores no route table at
// all.
//
// Either way, every ordered pair belongs to an interned path class: a
// dense integer ID (ClassID) whose signature string (ClassSignature) is
// the PathSignature the latency model is keyed by. Hot paths carry the
// int; the string exists once per class, not once per pair.
type Topology struct {
	Name     string
	Nodes    []Node
	Switches []Switch
	Links    []Link
	archs    map[Arch]ArchInfo
	// routes[src][dst] is the ordered list of link IDs a message traverses
	// (table-routed topologies only; nil when alg is set).
	routes [][][]int
	// alg computes routes and class IDs arithmetically from coordinates
	// (structured topologies only; nil when routes is set).
	alg algRouter
	// classIDs maps src*N+dst to a path-class ID for table-routed
	// topologies (int32: 4 bytes/pair instead of a route slice per pair).
	classIDs []int32
	// classSigs[id] is the signature string of path class id, for both
	// routing modes.
	classSigs []string
	// Precomputed Build-time indexes (satellite of the 5k scaling work:
	// scheduler pool filtering used to scan all nodes per call).
	byArch   map[Arch][]int
	bySwitch [][]int
	edgeLink []int32 // node -> NIC link ID, -1 if none
}

// NumNodes reports the number of nodes.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// ArchInfo returns the architecture characteristics table entry for a.
func (t *Topology) ArchInfo(a Arch) ArchInfo {
	ai, ok := t.archs[a]
	if !ok {
		return DefaultArchInfo(a)
	}
	return ai
}

// Node returns the node with the given ID.
func (t *Topology) Node(id int) *Node { return &t.Nodes[id] }

// NodeName returns the node's name, or "node<id>" out of range.
func (t *Topology) NodeName(id int) string {
	if id < 0 || id >= len(t.Nodes) {
		return fmt.Sprintf("node%d", id)
	}
	return t.Nodes[id].Name
}

// AlgebraicRoutes reports whether routes are computed on demand from
// coordinates (structured topologies) instead of a stored table.
func (t *Topology) AlgebraicRoutes() bool { return t.alg != nil }

// RouteMemoryMode names the routing storage strategy: "table" for the
// precomputed all-pairs table, "algebraic" for on-demand coordinate
// routing (exported as a /debug/vars gauge by cbesd).
func (t *Topology) RouteMemoryMode() string {
	if t.alg != nil {
		return "algebraic"
	}
	return "table"
}

// Path returns the ordered link IDs a message from src to dst traverses.
// The path for src == dst is empty (loopback). On algebraic topologies
// every call materializes a fresh slice; hot loops should use AppendPath
// with a recycled buffer instead.
func (t *Topology) Path(src, dst int) []int {
	if t.alg != nil {
		return t.alg.appendPath(nil, src, dst)
	}
	return t.routes[src][dst]
}

// AppendPath appends the route's link IDs to buf and returns the extended
// slice — the allocation-free form of Path for algebraic topologies.
func (t *Topology) AppendPath(buf []int, src, dst int) []int {
	if t.alg != nil {
		return t.alg.appendPath(buf, src, dst)
	}
	return append(buf, t.routes[src][dst]...)
}

// Hops reports the number of links between two nodes.
func (t *Topology) Hops(src, dst int) int {
	if t.alg != nil {
		return t.alg.hops(src, dst)
	}
	return len(t.routes[src][dst])
}

// NumClasses reports how many interned path classes the topology has.
// Valid class IDs are 0..NumClasses()-1; some may cover zero pairs on
// algebraic topologies (the ID space is a dense shape×arch² grid).
func (t *Topology) NumClasses() int { return len(t.classSigs) }

// ClassID returns the interned path-class ID of the ordered pair. All
// pairs with the same ID share one PathSignature and hence one latency
// class — this integer is what the netmodel/simnet hot paths key on
// instead of building signature strings.
func (t *Topology) ClassID(src, dst int) int {
	if t.classIDs != nil {
		return int(t.classIDs[src*len(t.Nodes)+dst])
	}
	return t.alg.classID(src, dst)
}

// ClassIDTable exposes the flat src*N+dst → class-ID table of a
// table-routed topology (nil on algebraic topologies). Read-only: hot
// loops may index it directly to skip the ClassID call.
func (t *Topology) ClassIDTable() []int32 { return t.classIDs }

// ClassSignature returns the signature string of an interned path class.
func (t *Topology) ClassSignature(id int) string { return t.classSigs[id] }

// PathSignature returns a string that classifies the route between two
// nodes by the architectures at its ends and the classes of the devices it
// crosses. All node pairs with equal signatures share (to first order) the
// same no-load latency curve; this is the basis of the paper's O(N)
// resource-availability approximation.
func (t *Topology) PathSignature(src, dst int) string {
	if t.classSigs != nil {
		return t.classSigs[t.ClassID(src, dst)]
	}
	return t.pathSignature(src, dst)
}

// pathSignature computes the signature by walking the route; Build interns
// the result per class, the fallback above serves hand-literal topologies.
func (t *Topology) pathSignature(src, dst int) string {
	if src == dst {
		return "loop|" + string(t.Nodes[src].Arch)
	}
	var w sigWriter
	w.start(t.Nodes[src].Arch)
	at := Device{DevNode, src}
	for _, lid := range t.Path(src, dst) {
		l := t.Links[lid]
		far := l.B
		if far == at {
			far = l.A
		}
		if far.Kind == DevSwitch {
			w.hopSwitch(l.Bandwidth, t.Switches[far.Index].Class)
		} else {
			w.hopNode(l.Bandwidth)
		}
		at = far
	}
	return w.end(t.Nodes[dst].Arch)
}

// NodesByArch returns the IDs of all nodes of the given architecture, in
// increasing ID order. Built topologies serve a precomputed index; the
// returned slice is a copy the caller may mutate.
func (t *Topology) NodesByArch(a Arch) []int {
	if t.byArch != nil {
		return append([]int(nil), t.byArch[a]...)
	}
	var ids []int
	for _, n := range t.Nodes {
		if n.Arch == a {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// NodesOnSwitch returns the IDs of all nodes attached to the given edge
// switch, in increasing ID order. Built topologies serve a precomputed
// index; the returned slice is a copy the caller may mutate.
func (t *Topology) NodesOnSwitch(sw int) []int {
	if t.bySwitch != nil {
		if sw < 0 || sw >= len(t.bySwitch) {
			return nil
		}
		return append([]int(nil), t.bySwitch[sw]...)
	}
	var ids []int
	for _, n := range t.Nodes {
		if n.Switch == sw {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// EdgeLink returns the ID of the link connecting node id to its edge
// switch (its NIC cable), or -1 if the node has no link.
func (t *Topology) EdgeLink(node int) int {
	if t.edgeLink != nil {
		return int(t.edgeLink[node])
	}
	dev := Device{DevNode, node}
	for _, l := range t.Links {
		if l.A == dev || l.B == dev {
			return l.ID
		}
	}
	return -1
}

// Archs returns the distinct architectures present, sorted by name.
func (t *Topology) Archs() []Arch {
	seen := map[Arch]bool{}
	for _, n := range t.Nodes {
		seen[n.Arch] = true
	}
	var out []Arch
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural invariants: every node attached to an existing
// switch and reachable from every other node. Table-routed topologies
// check the full O(N²) route table; algebraic topologies — where the
// construction guarantees connectivity — spot-check a bounded sample of
// pairs for route well-formedness so Validate stays O(N) at 5k nodes.
func (t *Topology) Validate() error {
	for _, n := range t.Nodes {
		if n.Switch < 0 || n.Switch >= len(t.Switches) {
			return fmt.Errorf("cluster: node %d references missing switch %d", n.ID, n.Switch)
		}
		if n.CPUs <= 0 || n.Speed <= 0 {
			return fmt.Errorf("cluster: node %d has invalid CPUs/Speed", n.ID)
		}
	}
	if t.alg != nil {
		return t.validateAlgebraic()
	}
	for i := range t.Nodes {
		for j := range t.Nodes {
			if i != j && t.routes[i][j] == nil {
				return fmt.Errorf("cluster: no route between node %d and node %d", i, j)
			}
		}
	}
	return nil
}

// validateAlgebraic spot-checks algebraic routes: for a bounded sample of
// ordered pairs the path must start at src's NIC, end at dst's NIC, and
// chain device-connected links.
func (t *Topology) validateAlgebraic() error {
	n := len(t.Nodes)
	stride := n/64 + 1
	var buf []int
	for i := 0; i < n; i += stride {
		for j := n - 1; j >= 0; j -= stride {
			if i == j {
				continue
			}
			buf = t.alg.appendPath(buf[:0], i, j)
			if err := t.checkPath(buf, i, j); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkPath verifies that links form a connected walk from node src to
// node dst.
func (t *Topology) checkPath(path []int, src, dst int) error {
	at := Device{DevNode, src}
	for _, lid := range path {
		if lid < 0 || lid >= len(t.Links) {
			return fmt.Errorf("cluster: route %d->%d references missing link %d", src, dst, lid)
		}
		l := &t.Links[lid]
		switch at {
		case l.A:
			at = l.B
		case l.B:
			at = l.A
		default:
			return fmt.Errorf("cluster: route %d->%d broken at link %d (%s): not incident to %s", src, dst, lid, l.Name, at)
		}
	}
	if want := (Device{DevNode, dst}); at != want {
		return fmt.Errorf("cluster: route %d->%d ends at %s, not %s", src, dst, at, want)
	}
	return nil
}

// internTable assigns a dense path-class ID to every ordered pair of a
// table-routed topology, interning signature strings in first-encounter
// row-major order (the order bench.Calibrate picks class representatives
// in, so calibration output is unchanged by the interning).
func (t *Topology) internTable() {
	n := len(t.Nodes)
	t.classIDs = make([]int32, n*n)
	bySig := map[string]int32{}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			sig := t.pathSignature(src, dst)
			id, ok := bySig[sig]
			if !ok {
				id = int32(len(t.classSigs))
				bySig[sig] = id
				t.classSigs = append(t.classSigs, sig)
			}
			t.classIDs[src*n+dst] = id
		}
	}
}

// buildIndexes precomputes the Build-time lookup indexes shared by both
// routing modes: nodes per architecture, nodes per edge switch, and each
// node's NIC link.
func (t *Topology) buildIndexes() {
	t.byArch = map[Arch][]int{}
	t.bySwitch = make([][]int, len(t.Switches))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		t.byArch[n.Arch] = append(t.byArch[n.Arch], n.ID)
		if n.Switch >= 0 && n.Switch < len(t.bySwitch) {
			t.bySwitch[n.Switch] = append(t.bySwitch[n.Switch], n.ID)
		}
	}
	t.edgeLink = make([]int32, len(t.Nodes))
	for i := range t.edgeLink {
		t.edgeLink[i] = -1
	}
	for _, l := range t.Links {
		for _, d := range [2]Device{l.A, l.B} {
			if d.Kind == DevNode && t.edgeLink[d.Index] < 0 {
				t.edgeLink[d.Index] = int32(l.ID)
			}
		}
	}
}
