// Package cluster describes heterogeneous cluster topologies: nodes of
// several hardware architectures attached to a switched network fabric.
//
// It provides faithful descriptions of the two testbeds used in the paper —
// the 128-node Centurion configuration at the University of Virginia
// (fig. 3) and the 28-node rewired Orange Grove cluster at Syracuse
// University (fig. 4) — plus a Builder for constructing arbitrary
// topologies in tests and examples.
//
// A Topology is purely static: the dynamic behaviour (contention, load,
// timesharing) lives in internal/simnet and internal/vcluster.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"cbes/internal/des"
)

// Arch identifies a node hardware architecture.
type Arch string

// Architectures present in the paper's two clusters.
const (
	ArchAlpha Arch = "alpha"   // 533 MHz Alpha, single CPU
	ArchIntel Arch = "intel"   // 400 MHz dual Pentium II
	ArchSPARC Arch = "sparc"   // 500 MHz SPARC, single CPU
	ArchRef   Arch = "refnode" // synthetic reference architecture (speed 1.0)
)

// ArchInfo carries the static performance characteristics of an
// architecture. Speed is relative to the reference profiling node
// (ArchAlpha = 1.0 in both paper clusters); the per-message software
// overheads model the MPI library and NIC driver path and are the
// CPU-load-sensitive component of end-to-end latency.
type ArchInfo struct {
	Arch         Arch
	Speed        float64  // relative compute speed, reference = 1.0
	CPUs         int      // processors per node
	SendOverhead des.Time // per-message CPU cost on the sender
	RecvOverhead des.Time // per-message CPU cost on the receiver
}

// DefaultArchInfo returns the calibrated characteristics used for the
// paper's architectures. The speed ratios are chosen so that the three
// Orange Grove execution-time zones of fig. 6 (high = Alpha-only,
// medium = Alpha+Intel, low = Alpha+Intel+SPARC) reproduce.
func DefaultArchInfo(a Arch) ArchInfo {
	switch a {
	case ArchAlpha:
		return ArchInfo{Arch: a, Speed: 1.0, CPUs: 1, SendOverhead: 32 * des.Microsecond, RecvOverhead: 36 * des.Microsecond}
	case ArchIntel:
		return ArchInfo{Arch: a, Speed: 0.78, CPUs: 2, SendOverhead: 38 * des.Microsecond, RecvOverhead: 42 * des.Microsecond}
	case ArchSPARC:
		return ArchInfo{Arch: a, Speed: 0.60, CPUs: 1, SendOverhead: 52 * des.Microsecond, RecvOverhead: 58 * des.Microsecond}
	case ArchRef:
		return ArchInfo{Arch: a, Speed: 1.0, CPUs: 1, SendOverhead: 30 * des.Microsecond, RecvOverhead: 34 * des.Microsecond}
	default:
		panic(fmt.Sprintf("cluster: unknown architecture %q", a))
	}
}

// Node is one cluster machine.
type Node struct {
	ID     int     // dense index, 0..N-1
	Name   string  // e.g. "centurion-a07"
	Arch   Arch    // hardware architecture
	Switch int     // edge switch the node's NIC connects to
	Speed  float64 // relative compute speed (copied from ArchInfo, overridable)
	CPUs   int     // processors
}

// Switch is a network switch (or a stack functioning as one).
type Switch struct {
	ID    int
	Name  string
	Ports int
	Class string // e.g. "3com-100", "3com-1200", "dlink-100"; part of path signatures
}

// DeviceKind distinguishes the two vertex types of the fabric graph.
type DeviceKind int

// Device kinds.
const (
	DevNode DeviceKind = iota
	DevSwitch
)

// Device addresses a vertex in the fabric graph.
type Device struct {
	Kind  DeviceKind
	Index int // Node.ID or Switch.ID
}

func (d Device) String() string {
	if d.Kind == DevNode {
		return fmt.Sprintf("node%d", d.Index)
	}
	return fmt.Sprintf("switch%d", d.Index)
}

// Link is an undirected full-duplex cable between two devices.
type Link struct {
	ID        int
	A, B      Device
	Bandwidth float64  // bytes per second per direction
	Latency   des.Time // propagation + store-and-forward latency per traversal
	Name      string
}

// Bandwidth constants in bytes/second.
const (
	BandwidthFast100 = 100e6 / 8  // Fast Ethernet, 100 Mb/s
	BandwidthGig1200 = 1200e6 / 8 // 3Com 1.2 Gb/s core switch uplink
)

// Topology is an immutable cluster description with precomputed
// node-to-node routing.
type Topology struct {
	Name     string
	Nodes    []Node
	Switches []Switch
	Links    []Link
	archs    map[Arch]ArchInfo
	// routes[src][dst] is the ordered list of link IDs a message traverses.
	routes [][][]int
	// sigs[src][dst] caches PathSignature for built topologies: the latency
	// model looks signatures up once per simulated transfer, so recomputing
	// the string each time dominated netmodel's allocation profile.
	sigs [][]string
}

// NumNodes reports the number of nodes.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// ArchInfo returns the architecture characteristics table entry for a.
func (t *Topology) ArchInfo(a Arch) ArchInfo {
	ai, ok := t.archs[a]
	if !ok {
		return DefaultArchInfo(a)
	}
	return ai
}

// Node returns the node with the given ID.
func (t *Topology) Node(id int) *Node { return &t.Nodes[id] }

// NodeName returns the node's name, or "node<id>" out of range.
func (t *Topology) NodeName(id int) string {
	if id < 0 || id >= len(t.Nodes) {
		return fmt.Sprintf("node%d", id)
	}
	return t.Nodes[id].Name
}

// Path returns the ordered link IDs a message from src to dst traverses.
// The path for src == dst is empty (loopback).
func (t *Topology) Path(src, dst int) []int { return t.routes[src][dst] }

// Hops reports the number of links between two nodes.
func (t *Topology) Hops(src, dst int) int { return len(t.routes[src][dst]) }

// PathSignature returns a string that classifies the route between two
// nodes by the architectures at its ends and the classes of the devices it
// crosses. All node pairs with equal signatures share (to first order) the
// same no-load latency curve; this is the basis of the paper's O(N)
// resource-availability approximation.
func (t *Topology) PathSignature(src, dst int) string {
	if t.sigs != nil {
		return t.sigs[src][dst]
	}
	return t.pathSignature(src, dst)
}

// pathSignature computes the signature from the route; Build caches the
// result for every pair, the fallback above serves hand-literal topologies.
func (t *Topology) pathSignature(src, dst int) string {
	if src == dst {
		return "loop|" + string(t.Nodes[src].Arch)
	}
	var sb strings.Builder
	sb.WriteString(string(t.Nodes[src].Arch))
	at := Device{DevNode, src}
	for _, lid := range t.routes[src][dst] {
		l := t.Links[lid]
		far := l.B
		if far == at {
			far = l.A
		}
		fmt.Fprintf(&sb, "|%.0fMb", l.Bandwidth*8/1e6)
		if far.Kind == DevSwitch {
			sb.WriteString("|" + t.Switches[far.Index].Class)
		}
		at = far
	}
	sb.WriteString("|" + string(t.Nodes[dst].Arch))
	return sb.String()
}

// NodesByArch returns the IDs of all nodes of the given architecture, in
// increasing ID order.
func (t *Topology) NodesByArch(a Arch) []int {
	var ids []int
	for _, n := range t.Nodes {
		if n.Arch == a {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// NodesOnSwitch returns the IDs of all nodes attached to the given edge
// switch, in increasing ID order.
func (t *Topology) NodesOnSwitch(sw int) []int {
	var ids []int
	for _, n := range t.Nodes {
		if n.Switch == sw {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Archs returns the distinct architectures present, sorted by name.
func (t *Topology) Archs() []Arch {
	seen := map[Arch]bool{}
	for _, n := range t.Nodes {
		seen[n.Arch] = true
	}
	var out []Arch
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural invariants: every node attached to an existing
// switch and reachable from every other node.
func (t *Topology) Validate() error {
	for _, n := range t.Nodes {
		if n.Switch < 0 || n.Switch >= len(t.Switches) {
			return fmt.Errorf("cluster: node %d references missing switch %d", n.ID, n.Switch)
		}
		if n.CPUs <= 0 || n.Speed <= 0 {
			return fmt.Errorf("cluster: node %d has invalid CPUs/Speed", n.ID)
		}
	}
	for i := range t.Nodes {
		for j := range t.Nodes {
			if i != j && t.routes[i][j] == nil {
				return fmt.Errorf("cluster: no route between node %d and node %d", i, j)
			}
		}
	}
	return nil
}
