package cluster

import "testing"

// BenchmarkTopologyBuild1k builds a 1024-node fat tree (k = 16) per
// iteration. Runs under -short so bench-quick smokes it.
func BenchmarkTopologyBuild1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := NewFatTree(FatTreeSpec{K: 16, Archs: []Arch{ArchAlpha, ArchIntel}})
		if topo.NumNodes() != 1024 {
			b.Fatal("wrong node count")
		}
	}
}

// BenchmarkTopologyBuild5k builds a 5488-node fat tree (k = 28) per
// iteration. Its bytes/op value is the regression gate asserting no
// O(N²) route table is allocated: a stored table at this size would be
// ≥ 5488² route slices (hundreds of MB), while the algebraic build stays
// linear in nodes + links.
func BenchmarkTopologyBuild5k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := NewFatTree(FatTreeSpec{K: 28, Archs: []Arch{ArchAlpha, ArchIntel, ArchSPARC}})
		if topo.NumNodes() != 5488 {
			b.Fatal("wrong node count")
		}
	}
}

// BenchmarkTopologyBuildTorus5k builds a 16×18×19 torus (5472 nodes).
func BenchmarkTopologyBuildTorus5k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := NewTorus(TorusSpec{X: 16, Y: 18, Z: 19})
		if topo.NumNodes() != 5472 {
			b.Fatal("wrong node count")
		}
	}
}

// TestBuild5kNoRouteTable pins the memory claim directly: a 5k-node
// structured build must not materialize per-pair state.
func TestBuild5kNoRouteTable(t *testing.T) {
	if testing.Short() {
		t.Skip("5k build in -short mode")
	}
	topo := NewFatTree(FatTreeSpec{K: 28})
	if !topo.AlgebraicRoutes() {
		t.Fatal("5k fat tree should route algebraically")
	}
	if topo.routes != nil || topo.classIDs != nil || topo.ClassIDTable() != nil {
		t.Fatal("5k fat tree stored per-pair route state")
	}
	if got := topo.RouteMemoryMode(); got != "algebraic" {
		t.Fatalf("RouteMemoryMode = %q, want algebraic", got)
	}
}
