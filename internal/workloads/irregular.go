package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"cbes/internal/cluster"
	"cbes/internal/mpisim"
)

// Irregular models the "applications with irregular computation and/or
// communication patterns" the paper names as future evaluation targets
// (§8): a seeded random sparse communication graph with per-rank
// imbalanced computation and mixed message sizes. The structure is fixed
// by the seed, so the program is deterministic and profileable, but it has
// none of the regular-grid symmetry the other models share.
func Irregular(ranks int, seed int64) Program {
	rng := rand.New(rand.NewSource(seed))

	// A connected random sparse graph: a ring backbone plus extra chords.
	type edge struct{ a, b int }
	edgeSet := map[edge]bool{}
	for i := 0; i < ranks; i++ {
		j := (i + 1) % ranks
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		if a != b {
			edgeSet[edge{a, b}] = true
		}
	}
	extra := ranks / 2
	for k := 0; k < extra; k++ {
		a, b := rng.Intn(ranks), rng.Intn(ranks)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		edgeSet[edge{a, b}] = true
	}
	edges := make([]edge, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Per-edge message sizes and per-rank compute imbalance.
	sizes := make([]int64, len(edges))
	for i := range sizes {
		sizes[i] = int64(2<<10 + rng.Intn(60<<10))
	}
	imbalance := make([]float64, ranks)
	for i := range imbalance {
		imbalance[i] = 0.6 + rng.Float64()
	}

	// Per-rank adjacency for the body.
	adj := make([][]int, ranks) // edge indices, sorted
	for ei, e := range edges {
		adj[e.a] = append(adj[e.a], ei)
		adj[e.b] = append(adj[e.b], ei)
	}

	const iters = 30
	return Program{
		Name:  fmt.Sprintf("irregular.%d.%d", seed, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.97, cluster.ArchSPARC: 0.93,
		},
		Body: func(r *mpisim.Rank) {
			me := r.ID()
			for it := 0; it < iters; it++ {
				r.Compute(0.04 * imbalance[me] * 8.0 / float64(ranks))
				// Exchange over every incident edge, in global edge order so
				// the pairwise blocking operations cannot deadlock.
				for _, ei := range adj[me] {
					e := edges[ei]
					peer := e.a
					if peer == me {
						peer = e.b
					}
					r.SendRecv(peer, sizes[ei], sizes[ei])
				}
				if it%10 == 9 {
					r.Allreduce(64, 0)
				}
			}
		},
	}
}
