package workloads

import (
	"fmt"

	"cbes/internal/cluster"
	"cbes/internal/mpisim"
)

// hplBlock is the HPL panel width NB.
const hplBlock = 128

// hplFlopRate converts LU-factorization flops to reference-seconds
// (ref-flops per second of the reference architecture): ≈0.2 Gflop/s,
// matching late-90s COTS nodes so HPL(10000) on 8 nodes lands in the
// paper's 435–466 s range.
const hplFlopRate = 0.2e9

// HPL models High Performance Linpack, the dense LU solver of tables 3–4:
// column-cyclic panel factorization, binomial-tree panel broadcast, and a
// trailing-matrix update per step. Problem sizes used in the paper:
// 500 (HPL(1)), 5000 (HPL(2)), 10000 (HPL(3)). Small problem sizes are
// benchmarked over the usual HPL.dat sweep of parameter combinations
// (several factorizations per run); large sizes run once.
func HPL(n int, ranks int) Program {
	steps := n / hplBlock
	if steps < 1 {
		steps = 1
	}
	passes := 1
	if n <= 1000 {
		passes = 16
	}
	return Program{
		Name:  fmt.Sprintf("hpl.%d.%d", n, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 1.06, cluster.ArchSPARC: 0.95,
		},
		Body: func(r *mpisim.Rank) {
			for pass := 0; pass < passes; pass++ {
				hplFactorize(r, n, steps)
			}
			r.Allreduce(64, 0) // residual check
		},
	}
}

// hplFactorize runs one LU factorization. Panel factorization work is
// modeled as distributed across ranks (real HPL's look-ahead hides the
// owner's serial panel work behind updates), followed by the panel
// broadcast, pivot exchanges, and the trailing-matrix update.
func hplFactorize(r *mpisim.Rank, n, steps int) {
	p := float64(r.Size())
	for k := 0; k < steps; k++ {
		rem := float64(n - k*hplBlock)
		if rem <= 0 {
			break
		}
		owner := k % r.Size()
		// Panel factorization: rem × NB² flops, distributed.
		r.Compute(rem * hplBlock * hplBlock / p / hplFlopRate)
		// Panel broadcast: each rank holds a quarter-panel slice (2-D
		// process grids broadcast along rows), so the tree carries
		// rem × NB / 4 matrix entries.
		panelBytes := int64(rem) * hplBlock * 8 / 4
		r.Bcast(owner, panelBytes)
		// Pivot row swaps: small exchanges between the owner and every
		// other rank, handled by the owner in rank order.
		if r.ID() == owner {
			for peer := 0; peer < r.Size(); peer++ {
				if peer != owner {
					r.SendRecv(peer, 2048, 2048)
				}
			}
		} else {
			r.SendRecv(owner, 2048, 2048)
		}
		// Trailing update: 2·rem²·NB flops split across ranks.
		r.Compute(2 * rem * rem * hplBlock / p / hplFlopRate)
	}
}
