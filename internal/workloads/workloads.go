// Package workloads models the parallel applications of the paper's
// evaluation as mpisim programs: the configurable synthetic benchmark of
// the phase-1 validation sweep, the NAS Parallel Benchmarks 2.4 kernels
// (IS, EP, CG, MG, SP, BT, LU) for input classes S/A/B, High Performance
// Linpack, and the ASCI Purple selection (sweep3d, smg2000, SAMRAI,
// Towhee, Aztec).
//
// The models are communication-pattern-faithful rather than numerically
// faithful: each reproduces its program's process topology, message sizes,
// message counts, and computation/communication ratio at the granularity
// the CBES profile captures (same-size message groups per peer and the
// X/O/B state split), which is exactly what the paper's conclusions rest
// on. Absolute times are scaled to land in the ranges tables 1–4 report.
package workloads

import (
	"fmt"

	"cbes/internal/cluster"
	"cbes/internal/mpisim"
)

// Program is a runnable parallel application model.
type Program struct {
	// Name labels profiles and experiment rows, e.g. "lu.B.8".
	Name string
	// Ranks is the number of MPI processes the program requires.
	Ranks int
	// Body is the SPMD program body.
	Body func(*mpisim.Rank)
	// ArchEff holds per-architecture efficiency multipliers (application-
	// specific cache/ILP behavior on top of the architecture base speed).
	ArchEff map[cluster.Arch]float64
}

// Options assembles the mpisim options for this program.
func (p Program) Options() mpisim.Options {
	return mpisim.Options{AppName: p.Name, ArchEff: p.ArchEff}
}

// Class identifies an NPB input class.
type Class string

// NPB input classes used in the paper's figure 5.
const (
	ClassS Class = "S"
	ClassA Class = "A"
	ClassB Class = "B"
)

// classScale returns (computeScale, sizeScale, iterScale) multipliers for
// an NPB class relative to class A.
func classScale(c Class) (comp, size, iter float64) {
	switch c {
	case ClassS:
		return 0.02, 0.15, 0.4
	case ClassB:
		return 4.0, 2.0, 1.0
	default: // ClassA
		return 1.0, 1.0, 1.0
	}
}

// grid2D factors n into the most square px*py = n grid (px <= py).
func grid2D(n int) (px, py int) {
	px = 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			px = f
		}
	}
	return px, n / px
}

// gridCoords returns rank r's coordinates in a px*py grid.
func gridCoords(r, px int) (x, y int) { return r % px, r / px }

// gridRank returns the rank at (x, y) in a px*py grid.
func gridRank(x, y, px int) int { return y*px + x }

// exchange2D performs a parity-ordered halo exchange with the four grid
// neighbors (non-periodic boundaries).
func exchange2D(r *mpisim.Rank, px, py int, size int64) {
	x, y := gridCoords(r.ID(), px)
	// X-direction pairs, then Y-direction pairs; parity inside SendRecv
	// keeps each pairwise exchange deadlock-free, and ordering all X
	// exchanges before Y exchanges keeps rounds aligned.
	if x > 0 {
		r.SendRecv(gridRank(x-1, y, px), size, size)
	}
	if x < px-1 {
		r.SendRecv(gridRank(x+1, y, px), size, size)
	}
	if y > 0 {
		r.SendRecv(gridRank(x, y-1, px), size, size)
	}
	if y < py-1 {
		r.SendRecv(gridRank(x, y+1, px), size, size)
	}
}

// SyntheticConfig parameterizes the phase-1 synthetic benchmark: a ring
// program "configurable in terms of computation and communication overlap,
// communication granularity, and execution duration".
type SyntheticConfig struct {
	Ranks int
	// Iterations controls execution duration.
	Iterations int
	// ComputePerIter is the reference-seconds of computation per iteration
	// per rank.
	ComputePerIter float64
	// MsgSize is the communication granularity in bytes.
	MsgSize int64
	// MsgsPerIter is the number of ring exchanges per iteration.
	MsgsPerIter int
	// Overlap in [0,1] is the fraction of each iteration's computation
	// performed between posting sends and consuming receives, overlapping
	// communication with computation.
	Overlap float64
}

// Synthetic builds the phase-1 benchmark program.
func Synthetic(cfg SyntheticConfig) Program {
	if cfg.Ranks < 2 {
		cfg.Ranks = 2
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10
	}
	if cfg.MsgsPerIter <= 0 {
		cfg.MsgsPerIter = 1
	}
	if cfg.Overlap < 0 {
		cfg.Overlap = 0
	}
	if cfg.Overlap > 1 {
		cfg.Overlap = 1
	}
	return Program{
		Name: fmt.Sprintf("synth.n%d.s%d.o%02d.i%d.m%d",
			cfg.Ranks, cfg.MsgSize, int(cfg.Overlap*100), cfg.Iterations, cfg.MsgsPerIter),
		Ranks: cfg.Ranks,
		Body: func(r *mpisim.Rank) {
			n := r.Size()
			right := (r.ID() + 1) % n
			left := (r.ID() - 1 + n) % n
			pre := cfg.ComputePerIter * (1 - cfg.Overlap)
			mid := cfg.ComputePerIter * cfg.Overlap
			eager := cfg.MsgSize <= mpisim.DefaultEagerThreshold
			for it := 0; it < cfg.Iterations; it++ {
				r.Compute(pre)
				for m := 0; m < cfg.MsgsPerIter; m++ {
					if eager {
						// Everyone injects, computes the overlapped share
						// while the ring messages fly, then consumes: mid
						// compute genuinely hides latency.
						r.Send(right, cfg.MsgSize)
						if m == 0 && mid > 0 {
							r.Compute(mid)
						}
						r.Recv(left)
						continue
					}
					// Rendezvous sizes: blocking semantics force parity
					// ordering; the overlap knob cannot hide the transfer.
					if r.ID()%2 == 0 {
						r.Send(right, cfg.MsgSize)
						if m == 0 && mid > 0 {
							r.Compute(mid)
						}
						r.Recv(left)
					} else {
						r.Recv(left)
						if m == 0 && mid > 0 {
							r.Compute(mid)
						}
						r.Send(right, cfg.MsgSize)
					}
				}
			}
		},
	}
}
