package workloads

import (
	"testing"
	"testing/quick"

	"cbes/internal/cluster"
)

func TestIrregularCompletesManySeeds(t *testing.T) {
	// The global-edge-order exchange discipline must be deadlock-free for
	// arbitrary random graphs.
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	for seed := int64(0); seed < 8; seed++ {
		p := Irregular(8, seed)
		res := run(t, topo, p, alphas)
		if res.Elapsed <= 0 {
			t.Fatalf("seed %d: no progress", seed)
		}
	}
}

func TestIrregularDeterministicPerSeed(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	a := run(t, topo, Irregular(8, 3), alphas).Elapsed
	b := run(t, topo, Irregular(8, 3), alphas).Elapsed
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	c := run(t, topo, Irregular(8, 4), alphas).Elapsed
	if a == c {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestIrregularImbalanced(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	res := run(t, topo, Irregular(8, 1), alphas)
	// Some rank must have clearly more Run time than another (imbalance).
	minRun, maxRun := res.Trace.Segments[0].Procs[0].Run, res.Trace.Segments[0].Procs[0].Run
	for _, p := range res.Trace.Segments[0].Procs {
		if p.Run < minRun {
			minRun = p.Run
		}
		if p.Run > maxRun {
			maxRun = p.Run
		}
	}
	if float64(maxRun) < 1.2*float64(minRun) {
		t.Fatalf("no compute imbalance: min %v max %v", minRun, maxRun)
	}
}

// Property: irregular programs complete for random rank counts and seeds
// (sizes capped to keep the property test fast).
func TestQuickIrregularAlwaysCompletes(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	low := append(append([]int{}, topo.NodesByArch(cluster.ArchAlpha)...),
		topo.NodesByArch(cluster.ArchIntel)...)
	prop := func(n8 uint8, seed int64) bool {
		n := 2 + int(n8)%6
		p := Irregular(n, seed)
		res := run(&testing.T{}, topo, p, low[:n])
		return res.Elapsed > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
