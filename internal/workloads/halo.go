package workloads

import (
	"fmt"

	"cbes/internal/mpisim"
)

// Halo2DConfig parameterizes the structured-topology scale workload: an
// iterative 2D stencil whose ranks exchange fixed-size halos with their
// four grid neighbors each iteration, then compute.
type Halo2DConfig struct {
	Ranks int
	// Iterations is the number of exchange+compute rounds (default 4).
	Iterations int
	// MsgSize is the halo size in bytes (default 8 KiB).
	MsgSize int64
	// ComputePerIter is the reference-seconds of computation per rank per
	// iteration (default 0.005).
	ComputePerIter float64
}

// Halo2D builds the scale-testing stencil program. Unlike the NPB models
// it has no class scaling or architecture efficiencies — it exists to
// drive many-node topologies with a regular nearest-neighbor pattern whose
// cost is dominated by the fabric, which is what the 1k/5k fat-tree
// benchmarks and the toposcale experiment measure.
func Halo2D(cfg Halo2DConfig) Program {
	if cfg.Ranks < 2 {
		cfg.Ranks = 2
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 4
	}
	if cfg.MsgSize <= 0 {
		cfg.MsgSize = 8 << 10
	}
	if cfg.ComputePerIter <= 0 {
		cfg.ComputePerIter = 0.005
	}
	px, py := grid2D(cfg.Ranks)
	return Program{
		Name:  fmt.Sprintf("halo2d.n%d.s%d.i%d", cfg.Ranks, cfg.MsgSize, cfg.Iterations),
		Ranks: cfg.Ranks,
		Body: func(r *mpisim.Rank) {
			for it := 0; it < cfg.Iterations; it++ {
				exchange2D(r, px, py, cfg.MsgSize)
				r.Compute(cfg.ComputePerIter)
			}
		},
	}
}
