package workloads

import (
	"fmt"

	"cbes/internal/mpisim"
)

// Phased builds a ring exchange with one named Phase per iteration, so
// the recorded profile keeps a segment per iteration instead of merging
// the whole run. Prediction cost scales with segments × ranks, which
// makes this the knob for compute-heavy Evaluate/Compare requests: the
// stock registry applications record only a handful of segments, so
// their predictions are transport-dominated sub-millisecond calls, far
// too cheap to saturate the service's compute path. servicebench, the
// overload experiment, and the overload smoke all drive phased programs
// for exactly that reason.
func Phased(phases, ranks int) Program {
	if ranks < 2 {
		ranks = 2
	}
	if phases < 1 {
		phases = 1
	}
	return Program{
		Name:  fmt.Sprintf("phased.%d.%d", phases, ranks),
		Ranks: ranks,
		Body: func(r *mpisim.Rank) {
			n := r.Size()
			right, left := (r.ID()+1)%n, (r.ID()-1+n)%n
			for it := 0; it < phases; it++ {
				r.Phase(fmt.Sprintf("it%d", it))
				r.Compute(0.02)
				r.Send(right, 16<<10)
				r.Recv(left)
			}
		},
	}
}
