package workloads

import (
	"fmt"
	"math"

	"cbes/internal/cluster"
	"cbes/internal/mpisim"
)

// The NPB 2.4 kernel models. Communication patterns follow the published
// benchmark structure; compute and message-size constants are scaled so
// class-A 8–64 rank executions land in the paper's observed ranges.

// IS models the NPB integer-sort kernel: a handful of ranking iterations,
// each dominated by an all-to-all bucket redistribution plus small
// allreduces — the most communication-bound NPB kernel.
func IS(c Class, ranks int) Program {
	comp, size, _ := classScale(c)
	bucketBytes := int64(float64(512<<10) * size * 8.0 / float64(ranks))
	if bucketBytes < 1024 {
		bucketBytes = 1024
	}
	return Program{
		Name:  fmt.Sprintf("is.%s.%d", c, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 1.04, cluster.ArchSPARC: 0.97,
		},
		Body: func(r *mpisim.Rank) {
			for it := 0; it < 10; it++ {
				r.Compute(0.11 * comp) // local key counting
				r.Allreduce(1024, 0.001)
				r.Alltoall(bucketBytes)
				r.Compute(0.05 * comp) // local ranking
			}
			r.Allreduce(64, 0)
		},
	}
}

// EP models the embarrassingly parallel kernel: pure computation with a
// final tiny reduction.
func EP(c Class, ranks int) Program {
	comp, _, _ := classScale(c)
	total := 26.0 * comp * 16.0 / float64(ranks)
	return Program{
		Name:  fmt.Sprintf("ep.%s.%d", c, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 1.02, cluster.ArchSPARC: 1.0,
		},
		Body: func(r *mpisim.Rank) {
			for chunk := 0; chunk < 4; chunk++ {
				r.Compute(total / 4)
			}
			for i := 0; i < 3; i++ {
				r.Allreduce(64, 0)
			}
		},
	}
}

// CG models the conjugate-gradient kernel: 75 iterations of sparse
// matrix-vector products with transpose exchanges and two scalar
// allreduces per iteration — latency-sensitive.
func CG(c Class, ranks int) Program {
	comp, size, iter := classScale(c)
	iters := int(math.Max(5, 75*iter))
	vecBytes := int64(float64(112<<10) * size * 4.0 / float64(ranks))
	if vecBytes < 512 {
		vecBytes = 512
	}
	return Program{
		Name:  fmt.Sprintf("cg.%s.%d", c, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.94, cluster.ArchSPARC: 0.90,
		},
		Body: func(r *mpisim.Rank) {
			n := r.Size()
			partner := r.ID() ^ 1 // transpose exchange partner
			if n == 1 {
				partner = -1
			}
			row := (r.ID() + n/2) % n // second exchange partner
			for it := 0; it < iters; it++ {
				r.Compute(0.38 * comp * 16.0 / float64(ranks))
				if partner >= 0 && partner < n && partner != r.ID() {
					r.SendRecv(partner, vecBytes, vecBytes)
				}
				if row != r.ID() && row != partner {
					r.SendRecv(row, vecBytes/2, vecBytes/2)
				}
				r.Allreduce(8, 0)
				r.Allreduce(8, 0)
			}
		},
	}
}

// MG models the multigrid kernel: V-cycles over a level hierarchy with
// halo exchanges whose sizes halve per level, plus a residual allreduce.
func MG(c Class, ranks int) Program {
	comp, size, iter := classScale(c)
	cycles := int(math.Max(2, 20*iter))
	px, py := grid2D(ranks)
	topBytes := int64(float64(96<<10) * size * math.Sqrt(16.0/float64(ranks)))
	return Program{
		Name:  fmt.Sprintf("mg.%s.%d", c, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.97, cluster.ArchSPARC: 0.93,
		},
		Body: func(r *mpisim.Rank) {
			for cyc := 0; cyc < cycles; cyc++ {
				// Descend and ascend a 5-level hierarchy.
				for lvl := 0; lvl < 5; lvl++ {
					r.Compute(0.22 * comp / float64(int(1)<<uint(lvl)) * 16.0 / float64(ranks))
					sz := topBytes >> uint(lvl)
					if sz < 256 {
						sz = 256
					}
					exchange2D(r, px, py, sz)
				}
				r.Allreduce(8, 0)
			}
		},
	}
}

// FT models the NPB 3-D FFT kernel: a handful of time steps, each
// performing per-pencil FFT computation and a full transpose realized as an
// all-to-all of large payloads — bandwidth-bound collective communication,
// in contrast to IS's smaller, count-heavy exchanges.
func FT(c Class, ranks int) Program {
	comp, size, _ := classScale(c)
	// Per-pair transpose payload: grid volume × 16 B (complex) / P².
	pairBytes := int64(8.4e6 * 16.0 * size / float64(ranks*ranks))
	if pairBytes < 4096 {
		pairBytes = 4096
	}
	steps := 6
	return Program{
		Name:  fmt.Sprintf("ft.%s.%d", c, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.98, cluster.ArchSPARC: 0.94,
		},
		Body: func(r *mpisim.Rank) {
			for it := 0; it < steps; it++ {
				r.Compute(1.9 * comp * 16.0 / float64(ranks)) // pencil FFTs
				r.Alltoall(pairBytes)                         // transpose
				r.Compute(0.9 * comp * 16.0 / float64(ranks))
				if it%2 == 1 {
					r.Allreduce(64, 0) // checksum
				}
			}
		},
	}
}

// SP models the scalar-pentadiagonal simulated CFD application: a square
// process grid sweeping line solves in three directions per iteration with
// moderate-size face exchanges.
func SP(c Class, ranks int) Program {
	return adiSolver("sp", c, ranks, 0.30, 28<<10, 3)
}

// BT models the block-tridiagonal simulated CFD application: the same
// sweep structure as SP with heavier per-step computation and larger
// faces.
func BT(c Class, ranks int) Program {
	return adiSolver("bt", c, ranks, 0.62, 44<<10, 3)
}

// adiSolver is the shared SP/BT skeleton: an alternating-direction solve
// on a (near-)square grid.
func adiSolver(name string, c Class, ranks int, compBase float64, faceBase int64, dirs int) Program {
	comp, size, iter := classScale(c)
	iters := int(math.Max(3, 60*iter))
	px, py := grid2D(ranks)
	face := int64(float64(faceBase) * size * math.Sqrt(16.0/float64(ranks)))
	if face < 512 {
		face = 512
	}
	return Program{
		Name:  fmt.Sprintf("%s.%s.%d", name, c, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.95, cluster.ArchSPARC: 0.91,
		},
		Body: func(r *mpisim.Rank) {
			for it := 0; it < iters; it++ {
				for d := 0; d < dirs; d++ {
					r.Compute(compBase * comp * 16.0 / float64(ranks))
					exchange2D(r, px, py, face)
				}
			}
			r.Allreduce(64, 0)
		},
	}
}

// LU models the NPB LU kernel, the program of the §6.1 scheduling study: a
// simulated CFD application performing SSOR sweeps as 2D pipelined
// wavefronts of many smallish messages — highly sensitive to internode
// latency, with an ≈80/20 computation-to-communication ratio on 8 nodes.
func LU(c Class, ranks int) Program {
	comp, size, _ := classScale(c)
	// Paper-real iteration counts: the per-iteration sweep reversal drains
	// and refills the wavefront pipeline, which is where internode latency
	// differences bite — scaling iterations down would erase the mapping
	// sensitivity the §6.1 study measures.
	iters := 200
	switch c {
	case ClassS:
		iters = 15
	case ClassA:
		iters = 80
	}
	// Thin planes, as in the real benchmark (nz ≈ 102): pipeline fills are
	// then a small fraction of each sweep and the blocked time is
	// latency-dominated, which is what makes the λ correction (eq. 7)
	// transfer across mappings.
	planes := 40
	msg := int64(float64(12<<10) * size)
	px, py := grid2D(ranks)
	return Program{
		Name:  fmt.Sprintf("lu.%s.%d", c, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.95, cluster.ArchSPARC: 0.92,
		},
		Body: func(r *mpisim.Rank) {
			x, y := gridCoords(r.ID(), px)
			compPerPlane := 0.0013 * comp * 16.0 / float64(ranks)
			for it := 0; it < iters; it++ {
				// Lower-triangular sweep: wavefront from (0,0).
				for k := 0; k < planes; k++ {
					if x > 0 {
						r.Recv(gridRank(x-1, y, px))
					}
					if y > 0 {
						r.Recv(gridRank(x, y-1, px))
					}
					r.Compute(compPerPlane)
					if x < px-1 {
						r.Send(gridRank(x+1, y, px), msg)
					}
					if y < py-1 {
						r.Send(gridRank(x, y+1, px), msg)
					}
				}
				// Upper-triangular sweep: wavefront from (px-1,py-1).
				for k := 0; k < planes; k++ {
					if x < px-1 {
						r.Recv(gridRank(x+1, y, px))
					}
					if y < py-1 {
						r.Recv(gridRank(x, y+1, px))
					}
					r.Compute(compPerPlane)
					if x > 0 {
						r.Send(gridRank(x-1, y, px), msg)
					}
					if y > 0 {
						r.Send(gridRank(x, y-1, px), msg)
					}
				}
				if it%5 == 4 {
					r.Allreduce(40, 0.0005)
				}
			}
		},
	}
}
