package workloads

import (
	"fmt"

	"cbes/internal/cluster"
	"cbes/internal/mpisim"
)

// The ASCI Purple benchmark selection of §6 (table 3). Each model follows
// the communication character the paper reports: sweep3d and SAMRAI expose
// near all-to-all patterns (no mapping can win — "uncertain speedup"),
// Towhee is embarrassingly parallel, smg2000 scales with its problem cube,
// and Aztec — the Poisson solver — is the most latency-sensitive, yielding
// the paper's largest observed speedup (10.8 %).

// Sweep3D models the 3-D particle-transport sweeps. Its profile is close
// to all-to-all (octant corner turns couple every pair), so per the
// paper's analysis "it is virtually impossible to find a mapping where the
// benefits are not cancelled by the penalties".
func Sweep3D(ranks int) Program {
	return Program{
		Name:  fmt.Sprintf("sweep3d.%d", ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.97, cluster.ArchSPARC: 0.94,
		},
		Body: func(r *mpisim.Rank) {
			for oct := 0; oct < 8; oct++ {
				r.Compute(0.50 * 16.0 / float64(ranks))
				r.Alltoall(20 << 10) // corner-turn coupling
				r.Allreduce(8, 0)
			}
		},
	}
}

// SMG2000 models the semicoarsening multigrid solver at a given problem
// cube edge (the paper uses 12, 50, and 60): V-cycles of halo exchanges
// over a coarsening hierarchy. Compute scales with the cube volume,
// messages with face area.
func SMG2000(cube int, ranks int) Program {
	vol := float64(cube*cube*cube) / (50.0 * 50.0 * 50.0)
	area := float64(cube*cube) / (50.0 * 50.0)
	px, py := grid2D(ranks)
	face := int64(80_000 * area)
	if face < 2048 {
		face = 2048
	}
	// Small cubes cost little per V-cycle but are run for many more time
	// steps (matching the paper's 16.4 s at 12³ vs 66.7 s at 50³).
	cycles := 40
	if cube <= 16 {
		cycles = 380
	}
	// Per-cycle compute, distributed over the level hierarchy with halving
	// cost per level (Σ 1/2^l ≈ 1.94 over 5 levels).
	perCycleComp := 1.50 * vol * 8.0 / float64(ranks)
	return Program{
		Name:  fmt.Sprintf("smg2000.%d.%d", cube, ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.96, cluster.ArchSPARC: 0.92,
		},
		Body: func(r *mpisim.Rank) {
			for cyc := 0; cyc < cycles; cyc++ {
				for lvl := 0; lvl < 5; lvl++ {
					r.Compute(perCycleComp / 1.94 / float64(int(1)<<uint(lvl)))
					sz := face >> uint(lvl)
					if sz < 2048 {
						sz = 2048
					}
					exchange2D(r, px, py, sz)
				}
				r.Allreduce(8, 0)
			}
		},
	}
}

// SAMRAI models the structured-AMR framework workload: irregular,
// rank-imbalanced computation with all-to-all regridding exchanges —
// another "uncertain speedup" case.
func SAMRAI(ranks int) Program {
	return Program{
		Name:  fmt.Sprintf("samrai.%d", ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.98, cluster.ArchSPARC: 0.95,
		},
		Body: func(r *mpisim.Rank) {
			// Deterministic per-rank imbalance from AMR patch distribution.
			imbalance := 1.0 + 0.25*float64((r.ID()*2654435761)%100)/100.0
			for it := 0; it < 8; it++ {
				r.Compute(0.38 * imbalance * 16.0 / float64(ranks))
				r.Alltoall(12 << 10) // regrid/load-balance exchange
				r.Allreduce(64, 0)
			}
		},
	}
}

// Towhee models the Monte Carlo molecular-simulation code: embarrassingly
// parallel with insignificant inter-process communication.
func Towhee(ranks int) Program {
	return Program{
		Name:  fmt.Sprintf("towhee.%d", ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 1.01, cluster.ArchSPARC: 0.98,
		},
		Body: func(r *mpisim.Rank) {
			total := 46.0 * 8.0 / float64(ranks)
			for chunk := 0; chunk < 4; chunk++ {
				r.Compute(total / 4)
				r.Allreduce(128, 0) // acceptance statistics
			}
		},
	}
}

// Aztec models the massively parallel iterative solver on its Poisson
// test problem: hundreds of sparse-solver iterations, each with sizeable
// halo exchanges and two scalar allreduces — the most
// communication-sensitive program of the paper's selection.
func Aztec(ranks int) Program {
	px, py := grid2D(ranks)
	return Program{
		Name:  fmt.Sprintf("aztec.%d", ranks),
		Ranks: ranks,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.93, cluster.ArchSPARC: 0.90,
		},
		Body: func(r *mpisim.Rank) {
			for it := 0; it < 400; it++ {
				r.Compute(0.157 * 8.0 / float64(ranks))
				exchange2D(r, px, py, 24<<10)
				r.Allreduce(8, 0)
				r.Allreduce(8, 0)
			}
		},
	}
}
