package workloads

import (
	"testing"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/simnet"
	"cbes/internal/trace"
	"cbes/internal/vcluster"
)

// run executes a program on the given topology/mapping and returns the
// result.
func run(t *testing.T, topo *cluster.Topology, prog Program, mapping []int) *mpisim.Result {
	t.Helper()
	if len(mapping) != prog.Ranks {
		t.Fatalf("%s: mapping size %d != ranks %d", prog.Name, len(mapping), prog.Ranks)
	}
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	return mpisim.Run(vc, net, mapping, prog.Body, prog.Options())
}

// commFraction computes B/(X+O+B) for the busiest rank.
func commFraction(tr *trace.Trace) float64 {
	var bestBusy, bestB des.Time
	for _, seg := range tr.Segments {
		for _, p := range seg.Procs {
			if p.Busy() > bestBusy {
				bestBusy = p.Busy()
				bestB = p.Blocked
			}
		}
	}
	if bestBusy == 0 {
		return 0
	}
	return float64(bestB) / float64(bestBusy)
}

// groveAlphas returns the 8 Alpha nodes of Orange Grove.
func groveAlphas(topo *cluster.Topology) []int {
	return topo.NodesByArch(cluster.ArchAlpha)
}

func TestAllProgramsCompleteOnGrove(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	progs := []Program{
		Synthetic(SyntheticConfig{Ranks: 8, Iterations: 5, ComputePerIter: 0.05, MsgSize: 8 << 10, MsgsPerIter: 2, Overlap: 0.5}),
		IS(ClassS, 8), EP(ClassS, 8), CG(ClassS, 8), MG(ClassS, 8),
		SP(ClassS, 8), BT(ClassS, 8), LU(ClassS, 8), FT(ClassS, 8),
		HPL(500, 8),
		Sweep3D(8), SMG2000(12, 8), SAMRAI(8), Towhee(8), Aztec(8),
	}
	for _, p := range progs {
		res := run(t, topo, p, alphas)
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no time elapsed", p.Name)
		}
		// Every rank must have accounted time.
		for _, pt := range res.Trace.Segments[0].Procs {
			if pt.Busy() <= 0 {
				t.Fatalf("%s: rank %d idle", p.Name, pt.Rank)
			}
		}
	}
}

func TestProgramCharacterization(t *testing.T) {
	// The comm-pattern classes that drive the paper's conclusions:
	// EP/Towhee negligible comm, IS comm-dominated, LU/Aztec moderate
	// latency-sensitive, sweep3d/SAMRAI all-to-all.
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)

	ep := run(t, topo, EP(ClassA, 8), alphas)
	if f := commFraction(ep.Trace); f > 0.02 {
		t.Fatalf("EP comm fraction = %.3f, want ~0", f)
	}
	towhee := run(t, topo, Towhee(8), alphas)
	if f := commFraction(towhee.Trace); f > 0.02 {
		t.Fatalf("Towhee comm fraction = %.3f, want ~0", f)
	}
	is := run(t, topo, IS(ClassA, 8), alphas)
	if f := commFraction(is.Trace); f < 0.3 {
		t.Fatalf("IS comm fraction = %.3f, want comm-heavy", f)
	}
	ft := run(t, topo, FT(ClassA, 8), alphas)
	if f := commFraction(ft.Trace); f < 0.15 {
		t.Fatalf("FT comm fraction = %.3f, want transpose-heavy", f)
	}
	lu := run(t, topo, LU(ClassB, 8), alphas)
	if f := commFraction(lu.Trace); f < 0.10 || f > 0.40 {
		t.Fatalf("LU comm fraction = %.3f, want ≈0.2 (80/20 ratio of §6.2)", f)
	}
	az := run(t, topo, Aztec(8), alphas)
	if f := commFraction(az.Trace); f < 0.12 || f > 0.45 {
		t.Fatalf("Aztec comm fraction = %.3f, want ≈0.2-0.3", f)
	}
}

func TestClassScaling(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	s := run(t, topo, LU(ClassS, 8), alphas)
	a := run(t, topo, LU(ClassA, 8), alphas)
	b := run(t, topo, LU(ClassB, 8), alphas)
	if !(s.Elapsed < a.Elapsed && a.Elapsed < b.Elapsed) {
		t.Fatalf("class scaling broken: S=%v A=%v B=%v", s.Elapsed, a.Elapsed, b.Elapsed)
	}
}

func TestSMGSizeScaling(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	t12 := run(t, topo, SMG2000(12, 8), alphas)
	t50 := run(t, topo, SMG2000(50, 8), alphas)
	t60 := run(t, topo, SMG2000(60, 8), alphas)
	if !(t12.Elapsed < t50.Elapsed && t50.Elapsed < t60.Elapsed) {
		t.Fatalf("smg scaling broken: %v %v %v", t12.Elapsed, t50.Elapsed, t60.Elapsed)
	}
}

func TestHPLSizeScaling(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	h1 := run(t, topo, HPL(500, 8), alphas)
	h2 := run(t, topo, HPL(5000, 8), alphas)
	if h1.Elapsed >= h2.Elapsed {
		t.Fatalf("HPL scaling broken: %v vs %v", h1.Elapsed, h2.Elapsed)
	}
}

func TestMappingSensitivity(t *testing.T) {
	// LU must run measurably slower on a cross-federation mapping than on
	// the same-switch Alpha group; Towhee must not care.
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	sparcs := topo.NodesByArch(cluster.ArchSPARC)
	mixed := []int{alphas[0], alphas[1], alphas[2], alphas[3], sparcs[0], sparcs[1], sparcs[2], sparcs[3]}

	luGood := run(t, topo, LU(ClassA, 8), alphas)
	luBad := run(t, topo, LU(ClassA, 8), mixed)
	if float64(luBad.Elapsed) < float64(luGood.Elapsed)*1.15 {
		t.Fatalf("LU mapping insensitivity: good %v vs bad %v", luGood.Elapsed, luBad.Elapsed)
	}
}

func TestGridHelpers(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 8: {2, 4}, 12: {3, 4}, 16: {4, 4}, 7: {1, 7}}
	for n, want := range cases {
		px, py := grid2D(n)
		if px != want[0] || py != want[1] {
			t.Fatalf("grid2D(%d) = %d,%d want %v", n, px, py, want)
		}
		if px*py != n {
			t.Fatalf("grid2D(%d) does not cover", n)
		}
	}
	for r := 0; r < 8; r++ {
		x, y := gridCoords(r, 2)
		if gridRank(x, y, 2) != r {
			t.Fatalf("grid coords roundtrip broken at %d", r)
		}
	}
}

func TestSyntheticOverlapReducesBlocking(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	mk := func(overlap float64) float64 {
		p := Synthetic(SyntheticConfig{Ranks: 4, Iterations: 20, ComputePerIter: 0.02, MsgSize: 32 << 10, MsgsPerIter: 1, Overlap: overlap})
		res := run(t, topo, p, alphas[:4])
		return commFraction(res.Trace)
	}
	if noOverlap, full := mk(0), mk(1); full >= noOverlap {
		t.Fatalf("overlap did not reduce blocked fraction: %.3f vs %.3f", full, noOverlap)
	}
}

// TestReportCharacteristics logs the runtime and comm fraction of every
// §6 program on the Grove high-speed group — the tuning table for matching
// the paper's ranges (run with -v).
func TestReportCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("reporting only")
	}
	topo := cluster.NewOrangeGrove()
	alphas := groveAlphas(topo)
	progs := []Program{
		LU(ClassB, 8),
		HPL(500, 8), HPL(5000, 8), HPL(10000, 8),
		Sweep3D(8), SMG2000(12, 8), SMG2000(50, 8), SMG2000(60, 8),
		SAMRAI(8), Towhee(8), Aztec(8),
	}
	for _, p := range progs {
		res := run(t, topo, p, alphas)
		t.Logf("%-16s elapsed %8.1fs  comm %5.1f%%  msgs/rank %d",
			p.Name, res.Elapsed.Seconds(), commFraction(res.Trace)*100,
			len(res.Trace.Segments[0].Procs[0].Sends))
	}
}
