package workloads

import (
	"strings"
	"testing"
)

func TestLookupRoundTripsNames(t *testing.T) {
	// Every canonical program name must resolve back to a program with the
	// same name and rank count.
	progs := []Program{
		IS(ClassA, 16), EP(ClassB, 8), CG(ClassS, 4), MG(ClassA, 8),
		SP(ClassB, 16), BT(ClassA, 9), LU(ClassB, 8), FT(ClassA, 16),
		HPL(10000, 8), SMG2000(50, 8), Sweep3D(8), SAMRAI(8),
		Towhee(8), Aztec(12), Irregular(8, 42),
	}
	for _, p := range progs {
		got, err := Lookup(p.Name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", p.Name, err)
		}
		if got.Name != p.Name {
			t.Fatalf("Lookup(%q).Name = %q", p.Name, got.Name)
		}
		if got.Ranks != p.Ranks {
			t.Fatalf("Lookup(%q).Ranks = %d, want %d", p.Name, got.Ranks, p.Ranks)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	for _, bad := range []string{
		"", "lu", "lu.B", "lu.X.8", "lu.B.0", "lu.B.x",
		"hpl.abc.8", "smg2000..8", "sweep3d.9.8", "towhee.1.8",
		"unknown.8", "lu.B.8.9",
	} {
		if _, err := Lookup(bad); err == nil {
			t.Fatalf("Lookup(%q) should fail", bad)
		}
	}
}

func TestKindsListed(t *testing.T) {
	kinds := Kinds()
	if len(kinds) < 10 {
		t.Fatalf("kinds = %v", kinds)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"lu", "hpl", "aztec", "irregular"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("kind %q missing from %v", want, kinds)
		}
	}
}
