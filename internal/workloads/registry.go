package workloads

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lookup resolves a program by its canonical name, e.g. "lu.B.8",
// "hpl.10000.16", "smg2000.50.8", "sweep3d.8", "aztec.8",
// "irregular.8.42", "phased.3000.8". The last dotted field is always
// the rank count; NPB kernels take a class letter, HPL a problem size,
// smg2000 a cube edge, irregular a seed, and phased a segment count
// before the rank count.
func Lookup(name string) (Program, error) {
	parts := strings.Split(name, ".")
	if len(parts) < 2 {
		return Program{}, fmt.Errorf("workloads: malformed name %q", name)
	}
	ranks, err := strconv.Atoi(parts[len(parts)-1])
	if err != nil || ranks < 1 {
		return Program{}, fmt.Errorf("workloads: bad rank count in %q", name)
	}
	kind := parts[0]
	arg := ""
	if len(parts) == 3 {
		arg = parts[1]
	}
	if len(parts) > 3 {
		return Program{}, fmt.Errorf("workloads: malformed name %q", name)
	}

	class := func() (Class, error) {
		switch arg {
		case "S", "A", "B":
			return Class(arg), nil
		}
		return "", fmt.Errorf("workloads: %q needs a class S/A/B, got %q", kind, arg)
	}
	num := func() (int, error) {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("workloads: %q needs a numeric parameter, got %q", kind, arg)
		}
		return v, nil
	}

	switch kind {
	case "is", "ep", "cg", "mg", "sp", "bt", "lu", "ft":
		c, err := class()
		if err != nil {
			return Program{}, err
		}
		switch kind {
		case "is":
			return IS(c, ranks), nil
		case "ep":
			return EP(c, ranks), nil
		case "cg":
			return CG(c, ranks), nil
		case "mg":
			return MG(c, ranks), nil
		case "sp":
			return SP(c, ranks), nil
		case "bt":
			return BT(c, ranks), nil
		case "ft":
			return FT(c, ranks), nil
		default:
			return LU(c, ranks), nil
		}
	case "hpl":
		n, err := num()
		if err != nil {
			return Program{}, err
		}
		return HPL(n, ranks), nil
	case "smg2000":
		n, err := num()
		if err != nil {
			return Program{}, err
		}
		return SMG2000(n, ranks), nil
	case "irregular":
		n, err := num()
		if err != nil {
			return Program{}, err
		}
		return Irregular(ranks, int64(n)), nil
	case "phased":
		n, err := num()
		if err != nil {
			return Program{}, err
		}
		return Phased(n, ranks), nil
	case "sweep3d":
		if arg != "" {
			return Program{}, fmt.Errorf("workloads: sweep3d takes no parameter")
		}
		return Sweep3D(ranks), nil
	case "samrai":
		if arg != "" {
			return Program{}, fmt.Errorf("workloads: samrai takes no parameter")
		}
		return SAMRAI(ranks), nil
	case "towhee":
		if arg != "" {
			return Program{}, fmt.Errorf("workloads: towhee takes no parameter")
		}
		return Towhee(ranks), nil
	case "aztec":
		if arg != "" {
			return Program{}, fmt.Errorf("workloads: aztec takes no parameter")
		}
		return Aztec(ranks), nil
	}
	return Program{}, fmt.Errorf("workloads: unknown program kind %q (known: %s)",
		kind, strings.Join(Kinds(), ", "))
}

// Kinds lists the program families Lookup understands.
func Kinds() []string {
	kinds := []string{"is", "ep", "cg", "mg", "sp", "bt", "lu", "ft", "hpl",
		"smg2000", "sweep3d", "samrai", "towhee", "aztec", "irregular", "phased"}
	sort.Strings(kinds)
	return kinds
}
