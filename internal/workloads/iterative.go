package workloads

import (
	"fmt"

	"cbes/internal/cluster"
	"cbes/internal/mpisim"
)

// Iterative describes a program as N repetitions of a core segment — the
// structure §6 of the paper leans on when amortizing scheduler overhead
// ("an application run may consist of a core segment repeated any number
// of times") and the unit of the checkpoint/remap executor
// (internal/remap).
type Iterative struct {
	// Name labels the program; segment programs derive their names from it.
	Name string
	// Ranks is the number of MPI processes.
	Ranks int
	// Iterations is the total repetition count.
	Iterations int
	// ArchEff carries the per-architecture efficiency multipliers.
	ArchEff map[cluster.Arch]float64
	// IterBody executes one iteration on a rank.
	IterBody func(r *mpisim.Rank, iter int)
	// Setup, when non-nil, runs once per (re)start before the first
	// iteration of a segment — e.g. reloading checkpointed state.
	Setup func(r *mpisim.Rank)
}

// Program assembles the full run (all iterations) — the form used for
// profiling and one-shot execution.
func (it Iterative) Program() Program {
	return it.Segment(0, it.Iterations)
}

// Segment assembles a program executing iterations [from, to).
func (it Iterative) Segment(from, to int) Program {
	if from < 0 || to > it.Iterations || from >= to {
		panic(fmt.Sprintf("workloads: bad segment [%d,%d) of %d", from, to, it.Iterations))
	}
	name := it.Name
	if from != 0 || to != it.Iterations {
		name = fmt.Sprintf("%s[%d:%d]", it.Name, from, to)
	}
	return Program{
		Name:    name,
		Ranks:   it.Ranks,
		ArchEff: it.ArchEff,
		Body: func(r *mpisim.Rank) {
			if it.Setup != nil {
				it.Setup(r)
			}
			for i := from; i < to; i++ {
				it.IterBody(r, i)
			}
		},
	}
}

// AztecIterative is the Aztec solver expressed iteratively, for use with
// the remap executor.
func AztecIterative(ranks int) Iterative {
	px, py := grid2D(ranks)
	return Iterative{
		Name:       fmt.Sprintf("aztec.%d", ranks),
		Ranks:      ranks,
		Iterations: 400,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.93, cluster.ArchSPARC: 0.90,
		},
		IterBody: func(r *mpisim.Rank, _ int) {
			r.Compute(0.157 * 8.0 / float64(ranks))
			exchange2D(r, px, py, 24<<10)
			r.Allreduce(8, 0)
			r.Allreduce(8, 0)
		},
	}
}

// SMGIterative is smg2000 expressed iteratively (one V-cycle per
// iteration).
func SMGIterative(cube, ranks int) Iterative {
	vol := float64(cube*cube*cube) / (50.0 * 50.0 * 50.0)
	area := float64(cube*cube) / (50.0 * 50.0)
	px, py := grid2D(ranks)
	face := int64(80_000 * area)
	if face < 2048 {
		face = 2048
	}
	cycles := 40
	if cube <= 16 {
		cycles = 380
	}
	perCycleComp := 1.50 * vol * 8.0 / float64(ranks)
	return Iterative{
		Name:       fmt.Sprintf("smg2000.%d.%d", cube, ranks),
		Ranks:      ranks,
		Iterations: cycles,
		ArchEff: map[cluster.Arch]float64{
			cluster.ArchAlpha: 1.0, cluster.ArchIntel: 0.96, cluster.ArchSPARC: 0.92,
		},
		IterBody: func(r *mpisim.Rank, _ int) {
			for lvl := 0; lvl < 5; lvl++ {
				r.Compute(perCycleComp / 1.94 / float64(int(1)<<uint(lvl)))
				sz := face >> uint(lvl)
				if sz < 2048 {
					sz = 2048
				}
				exchange2D(r, px, py, sz)
			}
			r.Allreduce(8, 0)
		},
	}
}
