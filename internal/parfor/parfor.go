// Package parfor provides the bounded worker pool the experiment lab uses
// to fan independent trials out across cores.
//
// The contract is built for deterministic parallelism: the caller draws any
// random inputs serially (or derives per-trial seeds from the trial index),
// pre-sizes an output slice, and each fn(i) writes only results[i]. Under
// that discipline the output of Do is byte-identical to the serial loop
// regardless of worker count or scheduling order, which is what lets the
// experiment suite run `-jobs=1` and `-jobs=N` interchangeably.
package parfor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Do runs fn(0..n-1) on at most `workers` goroutines and returns when all
// calls have finished. workers <= 0 means one worker per core
// (runtime.GOMAXPROCS); workers == 1 (or n <= 1) runs everything on the
// calling goroutine, which is the reference serial order.
//
// Iterations are claimed from an atomic counter, so the pool load-balances
// uneven trial costs. If any fn panics, the remaining workers stop claiming
// new iterations and the first panic value is re-raised on the calling
// goroutine once every worker has returned.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next    atomic.Int64
		aborted atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicV == nil {
						panicV = r
					}
					mu.Unlock()
					aborted.Store(true)
				}
			}()
			for !aborted.Load() {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}
