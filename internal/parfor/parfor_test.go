package parfor

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		counts := make([]int32, n)
		Do(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoMatchesSerial(t *testing.T) {
	// Derived per-trial seeds + indexed writes must make parallel output
	// identical to serial output.
	compute := func(workers int) []float64 {
		out := make([]float64, 200)
		Do(workers, len(out), func(i int) {
			rng := rand.New(rand.NewSource(42 + int64(i)))
			out[i] = rng.Float64() * float64(i)
		})
		return out
	}
	serial := compute(1)
	for _, workers := range []int{2, 5, 16} {
		if got := compute(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d output differs from serial", workers)
		}
	}
}

func TestDoZeroAndNegativeN(t *testing.T) {
	ran := false
	Do(4, 0, func(int) { ran = true })
	Do(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if r != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Do(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestDoSerialOrderWithOneWorker(t *testing.T) {
	var order []int
	Do(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}
