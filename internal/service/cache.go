package service

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"sync"

	"cbes/internal/admission"
	"cbes/internal/core"
	"cbes/internal/obs"
)

// Prediction-cache observability. Hit rate = hits / (hits + misses); the
// entries gauge tracks live (current plus not-yet-evicted stale) entries.
var (
	cacheHits = obs.Default().Counter(
		"cbes_predcache_hits_total", "Prediction-cache hits on the RPC read path.")
	cacheMisses = obs.Default().Counter(
		"cbes_predcache_misses_total", "Prediction-cache misses (full evaluation performed).")
	cacheEvictions = obs.Default().Counter(
		"cbes_predcache_evictions_total", "Prediction-cache entries evicted by LRU capacity.")
	cacheEntries = obs.Default().Gauge(
		"cbes_predcache_entries", "Prediction-cache entries currently resident.")
)

// DefaultCacheSize bounds the prediction cache when ServeOptions leaves
// CacheSize zero.
const DefaultCacheSize = 4096

// predCache is a bounded LRU cache of *core.Prediction keyed by
// (application, mapping signature, snapshot epoch). The epoch inside the
// key is the invalidation mechanism: any state transition bumps the
// monitor epoch, so stale entries become unreachable instantly — they
// can never be returned for a newer epoch — and are recycled by LRU
// pressure rather than swept. Cached predictions are shared read-only
// across requests; callers must copy anything they intend to modify.
type predCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *cacheEntry
	byK map[string]*list.Element
	// silent suppresses the cache metrics — the brownout cache shares
	// this implementation but must not pollute the epoch cache's
	// hit-rate and occupancy series.
	silent bool
}

type cacheEntry struct {
	key  string
	pred *core.Prediction
}

// newPredCache builds a cache bounded to capacity entries (min 1).
func newPredCache(capacity int) *predCache {
	if capacity < 1 {
		capacity = 1
	}
	return &predCache{cap: capacity, ll: list.New(), byK: map[string]*list.Element{}}
}

// newBrownCache builds a metric-silent cache for brownout predictions
// (keyed with predKey(app, m, 0) — epoch-less, see Server.brown).
func newBrownCache(capacity int) *predCache {
	c := newPredCache(capacity)
	c.silent = true
	return c
}

// get returns the cached prediction for key, refreshing its recency.
func (c *predCache) get(key string) (*core.Prediction, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		if !c.silent {
			cacheMisses.Inc()
		}
		return nil, false
	}
	c.ll.MoveToFront(el)
	if !c.silent {
		cacheHits.Inc()
	}
	return el.Value.(*cacheEntry).pred, true
}

// put inserts (or refreshes) a prediction, evicting the LRU tail past
// capacity.
func (c *predCache) put(key string, pred *core.Prediction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		el.Value.(*cacheEntry).pred = pred
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&cacheEntry{key: key, pred: pred})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byK, tail.Value.(*cacheEntry).key)
		if !c.silent {
			cacheEvictions.Inc()
		}
	}
	if !c.silent {
		cacheEntries.Set(float64(c.ll.Len()))
	}
}

// len reports the resident entry count.
func (c *predCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// predKey builds the cache key for (app, mapping, epoch). The mapping is
// varint-packed rather than formatted: keys are built on every read-path
// request and must stay cheap.
func predKey(app string, mapping []int, epoch uint64) string {
	buf := make([]byte, 0, len(app)+1+10*(len(mapping)+1))
	buf = append(buf, app...)
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, epoch)
	for _, n := range mapping {
		buf = binary.AppendVarint(buf, int64(n))
	}
	return string(buf)
}

// predictCached serves one prediction through the cache: a hit returns
// the shared cached prediction, a miss evaluates and fills; the second
// return value reports which happened (feeding the decision record's
// cache outcome). The caller supplies the view so the epoch in the key
// matches the snapshot being evaluated against, and a context whose
// active span parents the lookup/evaluation spans. With the cache
// disabled (nil) it degenerates to a plain (unspanned) Predict.
func (s *Server) predictCached(ctx context.Context, v *view, app string, eval *core.Evaluator, m core.Mapping) (*core.Prediction, bool, error) {
	if s.cache == nil {
		pred, err := eval.Predict(m, v.snap)
		return pred, false, err
	}
	span, ctx := obs.StartSpan(ctx, "cache.lookup")
	key := predKey(app, m, v.epoch)
	if pred, ok := s.cache.get(key); ok {
		span.Attr("hit", true).End()
		return pred, true, nil
	}
	span.Attr("hit", false)
	pspan, _ := obs.StartSpan(ctx, "core.predict")
	pred, err := eval.Predict(m, v.snap)
	if err != nil {
		pspan.Error(err).End()
		span.Error(err).End()
		return nil, false, err
	}
	pspan.End()
	s.cache.put(key, pred)
	span.End()
	return pred, false, nil
}

// predictAdmitted is predictCached with admission control on the
// compute path (DESIGN.md §15): an epoch-cache hit is served without
// touching the limiter — the cached answer IS the full answer, so the
// cheap class degenerates to free — while a miss must win an
// expensive-class slot before evaluating. shed=true (with no prediction
// and no error) reports that the limiter refused the compute; the
// caller falls back to the brownout path. With no limiter installed it
// degenerates to predictCached exactly.
func (s *Server) predictAdmitted(ctx context.Context, v *view, app string, eval *core.Evaluator, m core.Mapping) (pred *core.Prediction, hit, shed bool, err error) {
	if s.lim == nil {
		pred, hit, err = s.predictCached(ctx, v, app, eval, m)
		return pred, hit, false, err
	}
	span, ctx := obs.StartSpan(ctx, "cache.lookup")
	key := ""
	if s.cache != nil {
		key = predKey(app, m, v.epoch)
		if pred, ok := s.cache.get(key); ok {
			span.Attr("hit", true).End()
			return pred, true, false, nil
		}
	}
	span.Attr("hit", false)
	tk, aerr := s.lim.Acquire(ctx, admission.Expensive)
	if aerr != nil {
		span.Attr("shed", true).End()
		if errors.Is(aerr, admission.ErrShed) {
			return nil, false, true, nil
		}
		return nil, false, false, aerr
	}
	defer s.lim.Release(tk)
	pspan, _ := obs.StartSpan(ctx, "core.predict")
	pred, err = eval.Predict(m, v.snap)
	if err != nil {
		pspan.Error(err).End()
		span.Error(err).End()
		return nil, false, false, err
	}
	pspan.End()
	if s.cache != nil {
		s.cache.put(key, pred)
	}
	span.End()
	return pred, false, false, nil
}

// predictBrownoutCached serves one profile-only brownout prediction
// through the metric-silent brownout cache. The key is epoch-less:
// brownout answers depend only on profile + topology, so repeats are
// free for the process lifetime — that cacheability is what lets a
// saturated server keep answering at all. A cache miss computes under a
// cheap-class admission slot (the serial brownout lane); when even that
// lane is busy the request finally sheds with ErrShed.
func (s *Server) predictBrownoutCached(ctx context.Context, eval *core.Evaluator, app string, m core.Mapping) (*core.Prediction, error) {
	key := predKey(app, m, 0)
	if pred, ok := s.brown.get(key); ok {
		return pred, nil
	}
	tk, aerr := s.lim.Acquire(ctx, admission.Cheap)
	if aerr != nil {
		return nil, aerr
	}
	defer s.lim.Release(tk)
	pred, err := eval.PredictBrownout(m)
	if err != nil {
		return nil, err
	}
	s.brown.put(key, pred)
	return pred, nil
}
