package service

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls that share a key: the first
// caller runs fn, later callers with the same key block until it
// finishes and receive the same result. A minimal stdlib-only
// singleflight (the container bakes in no x/sync), specialized to the
// Schedule path: scheduling is deterministic in (app, algorithm, pool,
// seed, epoch), so N identical concurrent requests would burn N search
// budgets computing one answer.
//
// Unlike a cache, entries live only while a call is in flight — results
// are not retained, so a request arriving after completion recomputes
// (or, for predictions, hits the prediction cache instead).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	val    any
	err    error
	shared int // followers that joined this flight
}

// do runs fn once per concurrent key, returning fn's result and whether
// this caller joined an existing flight rather than leading one. A
// follower whose ctx expires while waiting abandons the flight and
// returns ctx.Err() — the leader keeps running for the callers still
// interested ("shed followers before singleflight leaders": a follower
// costs nothing to abandon, the leader's search is sunk work someone
// still wants). A nil ctx never abandons.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (val any, joined bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		c.shared++
		g.mu.Unlock()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-done:
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
