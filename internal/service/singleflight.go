package service

import "sync"

// flightGroup coalesces concurrent calls that share a key: the first
// caller runs fn, later callers with the same key block until it
// finishes and receive the same result. A minimal stdlib-only
// singleflight (the container bakes in no x/sync), specialized to the
// Schedule path: scheduling is deterministic in (app, algorithm, pool,
// seed, epoch), so N identical concurrent requests would burn N search
// budgets computing one answer.
//
// Unlike a cache, entries live only while a call is in flight — results
// are not retained, so a request arriving after completion recomputes
// (or, for predictions, hits the prediction cache instead).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	val    any
	err    error
	shared int // followers that joined this flight
}

// do runs fn once per concurrent key, returning fn's result and whether
// this caller joined an existing flight rather than leading one.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, joined bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		c.shared++
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
