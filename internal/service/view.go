package service

import (
	"fmt"
	"sort"

	"cbes/internal/core"
	"cbes/internal/monitor"
	"cbes/internal/obs"
)

var gaugeViewEpoch = obs.Default().Gauge(
	"cbes_service_view_epoch",
	"Snapshot epoch of the currently published read-path view.")

// view is the immutable state the lock-free read path runs against: an
// epoch-stamped availability snapshot plus the evaluator for every
// registered application. The writer (Advance, and server start-up)
// assembles a fresh view while holding the engine lock and publishes it
// with one atomic pointer swap; readers load the pointer and never touch
// the engine, the monitor, or the System's lazily-built maps.
//
// Immutability contract: nothing reachable from a published view is ever
// written again — the snapshot is owned by the view, the evaluators are
// safe for concurrent use by design, and the maps/slices are rebuilt
// rather than patched on refresh. Handlers therefore may share slice
// backing arrays from a view in replies, but must never modify them.
type view struct {
	epoch      uint64
	snap       *monitor.Snapshot
	evals      map[string]*core.Evaluator
	evalErr    map[string]error // apps whose evaluator could not be built
	apps       []string         // sorted registered application names
	cluster    string
	nodes      int
	simSeconds float64
}

// evaluator resolves an application's evaluator from the view, producing
// the same errors the locked path used to surface.
func (v *view) evaluator(app string) (*core.Evaluator, error) {
	if e, ok := v.evals[app]; ok {
		return e, nil
	}
	if err, ok := v.evalErr[app]; ok {
		return nil, err
	}
	return nil, fmt.Errorf("cbes: no profile registered for %q", app)
}

// refreshView rebuilds and publishes the read-path view. It must run
// with the engine quiescent and the engine lock held (or before the
// server accepts requests): it reads monitor forecasts and may lazily
// build evaluators inside the System.
func (s *Server) refreshView() {
	snap := s.sys.Snapshot()
	apps := append([]string(nil), s.sys.Apps()...)
	sort.Strings(apps)
	v := &view{
		epoch:      snap.Epoch,
		snap:       snap,
		evals:      make(map[string]*core.Evaluator, len(apps)),
		apps:       apps,
		cluster:    s.sys.Topo.Name,
		nodes:      s.sys.Topo.NumNodes(),
		simSeconds: s.sys.Eng.Now().Seconds(),
	}
	for _, app := range apps {
		e, err := s.sys.Evaluator(app)
		if err != nil {
			if v.evalErr == nil {
				v.evalErr = map[string]error{}
			}
			v.evalErr[app] = err
			continue
		}
		v.evals[app] = e
	}
	s.view.Store(v)
	gaugeViewEpoch.Set(float64(v.epoch))
}
