package service

import (
	"context"
	"errors"
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"cbes/internal/admission"
	"cbes/internal/obs"
)

// The stable "cbes:" error-code convention must survive net/rpc's
// flattening of server errors into bare strings (rpc.ServerError): the
// Is* matchers accept both the local sentinel and the flattened form,
// and no code matches another class's error.
func TestErrorCodesSurviveWireFlatteningRetr(t *testing.T) {
	flatten := func(err error) error { return rpc.ServerError(err.Error()) }

	cases := []struct {
		name  string
		err   error
		match func(error) bool
		other []func(error) bool
	}{
		{"busy", ErrBusy, IsBusy, []func(error) bool{IsShed, IsDeadlineExceeded}},
		{"shed", ErrShed, IsShed, []func(error) bool{IsBusy, IsDeadlineExceeded}},
		{"deadline", ErrDeadlineExceeded, IsDeadlineExceeded, []func(error) bool{IsBusy, IsShed}},
	}
	for _, tc := range cases {
		// Local wrapped form (errors.Is path).
		wrapped := wrap(tc.err)
		if !tc.match(wrapped) {
			t.Errorf("%s: matcher missed local wrapped error %v", tc.name, wrapped)
		}
		// Wire form: net/rpc keeps only the string.
		wire := flatten(wrapped)
		if !tc.match(wire) {
			t.Errorf("%s: matcher missed wire-flattened error %q", tc.name, wire)
		}
		for _, o := range tc.other {
			if o(wire) {
				t.Errorf("%s: cross-matched another class on %q", tc.name, wire)
			}
		}
	}
	if IsBusy(nil) || IsShed(nil) || IsDeadlineExceeded(nil) {
		t.Error("nil error matched a code")
	}
	// Shed must be transient (retry may find a freed slot); deadline must
	// not (the budget that expired covers retries too).
	if !isTransient(flatten(wrap(ErrShed))) {
		t.Error("wire shed error not classified transient")
	}
	if isTransient(flatten(wrap(ErrDeadlineExceeded))) {
		t.Error("wire deadline error classified transient")
	}
}

func wrap(err error) error { return errors.Join(errors.New("service: Evaluate: lost in the mail"), err) }

// tinyLimiter pins the concurrency limit to one slot with no queue, so a
// single held ticket makes admission outcomes deterministic.
func tinyLimiter() *admission.Limiter {
	return admission.New(admission.Config{Initial: 1, Min: 1, Max: 1, MaxQueue: -1})
}

// A shed Evaluate must brown out — answer from the profile-only fast
// path, labeled, without a prediction ID — rather than reject; and when
// even the brownout lane is saturated, it finally sheds with ErrShed.
func TestEvaluateBrownoutUnderShed(t *testing.T) {
	srv, prog, _ := newLocalServer(t)
	lim := tinyLimiter()
	srv.SetAdmission(lim)

	// Occupy the only expensive slot: every cold prediction now sheds.
	tk, err := lim.Acquire(context.Background(), admission.Expensive)
	if err != nil {
		t.Fatal(err)
	}
	defer lim.Release(tk)

	var reply EvaluateReply
	if err := srv.Evaluate(&EvaluateArgs{App: prog.Name, Mapping: []int{4, 5, 6, 7}}, &reply); err != nil {
		t.Fatalf("shed Evaluate should brown out, got error: %v", err)
	}
	if !reply.Brownout {
		t.Fatal("reply not labeled Brownout")
	}
	if reply.Seconds <= 0 {
		t.Fatalf("brownout prediction = %v", reply.Seconds)
	}
	if reply.PredictionID != "" {
		t.Fatalf("brownout reply carries PredictionID %q — its bias would feed calibration", reply.PredictionID)
	}
	recs := srv.rec.Decisions(obs.DecisionQuery{Kind: "evaluate", App: prog.Name, N: 1})
	if len(recs) != 1 || !recs[0].Shed || !recs[0].Brownout {
		t.Fatalf("decision record = %+v, want Shed && Brownout", recs)
	}

	// Saturate the brownout lane too (cheap bar = limit+1): a novel
	// mapping now has nowhere to go and sheds for real.
	tk2, err := lim.Acquire(context.Background(), admission.Cheap)
	if err != nil {
		t.Fatal(err)
	}
	var r2 EvaluateReply
	err = srv.Evaluate(&EvaluateArgs{App: prog.Name, Mapping: []int{0, 2, 4, 6}}, &r2)
	if !IsShed(err) {
		t.Fatalf("err = %v, want shed with both lanes full", err)
	}
	// But the brownout answer already computed stays servable from its
	// epoch-less cache even with every lane full.
	var r3 EvaluateReply
	if err := srv.Evaluate(&EvaluateArgs{App: prog.Name, Mapping: []int{4, 5, 6, 7}}, &r3); err != nil {
		t.Fatalf("cached brownout answer unavailable: %v", err)
	}
	if !r3.Brownout || r3.Seconds != reply.Seconds {
		t.Fatalf("cached brownout = %+v, want repeat of %v", r3, reply.Seconds)
	}
	lim.Release(tk2)
}

// A shed Compare browns out as a batch: every candidate answered from
// the profile-only path, labeled, with no prediction IDs.
func TestCompareBrownoutUnderShed(t *testing.T) {
	srv, prog, _ := newLocalServer(t)
	lim := tinyLimiter()
	srv.SetAdmission(lim)
	tk, err := lim.Acquire(context.Background(), admission.Expensive)
	if err != nil {
		t.Fatal(err)
	}
	defer lim.Release(tk)

	var reply CompareReply
	mappings := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if err := srv.Compare(&CompareArgs{App: prog.Name, Mappings: mappings}, &reply); err != nil {
		t.Fatalf("shed Compare should brown out, got error: %v", err)
	}
	if !reply.Brownout {
		t.Fatal("reply not labeled Brownout")
	}
	if len(reply.Seconds) != 2 || reply.Seconds[0] <= 0 || reply.Seconds[1] <= 0 {
		t.Fatalf("brownout seconds = %v", reply.Seconds)
	}
	// Under nominal conditions the Alpha nodes are the faster half.
	if reply.Best != 0 {
		t.Fatalf("best = %d, want 0 (Alpha mapping)", reply.Best)
	}
	if len(reply.PredictionIDs) != 0 {
		t.Fatalf("brownout compare carries prediction IDs %v", reply.PredictionIDs)
	}
	recs := srv.rec.Decisions(obs.DecisionQuery{Kind: "compare", App: prog.Name, N: 1})
	if len(recs) != 1 || !recs[0].Shed || !recs[0].Brownout {
		t.Fatalf("decision record = %+v, want Shed && Brownout", recs)
	}
}

// Schedule has no brownout — an unsearched mapping is wrong, not
// cheaper — so a shed Schedule returns ErrShed and leaves a Shed
// decision record explaining the refusal.
func TestScheduleShedRecordsDecision(t *testing.T) {
	srv, prog, _ := newLocalServer(t)
	lim := tinyLimiter()
	srv.SetAdmission(lim)
	tk, err := lim.Acquire(context.Background(), admission.Expensive)
	if err != nil {
		t.Fatal(err)
	}
	defer lim.Release(tk)

	var reply ScheduleReply
	err = srv.Schedule(&ScheduleArgs{App: prog.Name, Algorithm: "rs", Pool: []int{0, 1, 2, 3}, Seed: 1}, &reply)
	if !IsShed(err) {
		t.Fatalf("err = %v, want shed", err)
	}
	recs := srv.rec.Decisions(obs.DecisionQuery{Kind: "schedule", App: prog.Name, N: 1})
	if len(recs) != 1 || !recs[0].Shed {
		t.Fatalf("decision record = %+v, want Shed", recs)
	}
	if !strings.Contains(recs[0].Err, "cbes:shed") {
		t.Fatalf("decision error = %q, want the wire shed code", recs[0].Err)
	}
}

// The acceptance-criterion test: a deadline expiring mid-anneal must
// return promptly (abandoning the remaining budget) and leave a
// deadline-exceeded decision record.
func TestScheduleDeadlineExpiresMidAnneal(t *testing.T) {
	srv, prog, _ := newLocalServer(t)
	args := &ScheduleArgs{
		App: prog.Name, Algorithm: "cs", Pool: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Seed: 1, Effort: 50_000_000, // far beyond what 50ms of evaluations can spend
	}
	args.setDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	var reply ScheduleReply
	err := srv.Schedule(args, &reply)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("50M-effort search under a 50ms deadline returned a decision in %v", elapsed)
	}
	if !IsDeadlineExceeded(err) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("search took %v after a 50ms deadline — cancellation not prompt", elapsed)
	}
	recs := srv.rec.Decisions(obs.DecisionQuery{Kind: "schedule", App: prog.Name, N: 1})
	if len(recs) != 1 || recs[0].Err == "" || !strings.Contains(recs[0].Err, "deadline") {
		t.Fatalf("decision record = %+v, want a deadline-exceeded error", recs)
	}
}

// A request whose deadline is already spent fails fast before touching
// the engine lock — even (especially) while the engine is wedged — so a
// stalled Advance cannot pile doomed writers behind it.
func TestAdvanceDeadlineWhileEngineBusy(t *testing.T) {
	srv, _, _ := newLocalServer(t)
	srv.SetRequestTimeout(30 * time.Second) // busy timeout must not win this race
	srv.lock <- struct{}{}                  // wedge the engine (a stuck long request)
	defer func() { <-srv.lock }()

	args := &AdvanceArgs{Seconds: 0.1}
	args.setDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	var reply AdvanceReply
	err := srv.Advance(args, &reply)
	if !IsDeadlineExceeded(err) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Advance blocked %v past its 50ms deadline", elapsed)
	}
}

// ReportOutcome with a spent deadline fails fast too: the ledger feed
// must not wedge behind a stalled engine or burn time on answers nobody
// waits for.
func TestReportOutcomeDeadlineFastFail(t *testing.T) {
	srv, _, _ := newLocalServer(t)
	args := &ReportOutcomeArgs{PredictionID: "p-1", ActualSeconds: 1}
	args.setDeadline(time.Now().Add(-time.Second)) // already expired
	var reply ReportOutcomeReply
	err := srv.ReportOutcome(args, &reply)
	if !IsDeadlineExceeded(err) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// Over a real connection: a client call timeout is stamped as an
// absolute wire deadline, the server's refusal flattens through net/rpc,
// and the client-side matcher still recognizes it. A generous timeout
// must not disturb normal operation.
func TestClientDeadlinePropagatesOverWire(t *testing.T) {
	c, prog, _ := startServer(t)
	c.SetCallTimeout(30 * time.Second)
	if _, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3}); err != nil {
		t.Fatalf("generous deadline broke a healthy call: %v", err)
	}
	c.SetCallTimeout(time.Nanosecond) // expired before it leaves the machine
	_, err := c.Evaluate(prog.Name, []int{4, 5, 6, 7})
	if !IsDeadlineExceeded(err) {
		t.Fatalf("err = %v, want deadline exceeded across the wire", err)
	}
}

// The client breaker fails fast after consecutive failures instead of
// hammering a dead (or drowning) server.
func TestClientBreakerFailsFast(t *testing.T) {
	sys, prog := newSys(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeWith(sys, l, ServeOptions{}) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{Max: -1})
	c.SetBreaker(admission.NewBreaker(3, time.Hour)) // no half-open probe within this test
	if _, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	<-done
	for i := 0; i < 3; i++ {
		if _, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3}); err == nil {
			t.Fatal("call against a dead server succeeded")
		}
	}
	start := time.Now()
	_, err = c.Evaluate(prog.Name, []int{0, 1, 2, 3})
	if !errors.Is(err, admission.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after the breaker tripped", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("open-breaker call took %v — it should not touch the network", elapsed)
	}
}

// Drain under overload: while the limiter sheds, closing the listener
// must let the in-flight singleflight leader finish and return its
// decision, the shed requests must fail fast with ErrShed (not hang on
// the accept semaphore), and ServeWith must return. Run under -race.
func TestDrainUnderOverloadSheds(t *testing.T) {
	sys, prog := newSys(t)
	lim := tinyLimiter()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ServeWith(sys, l, ServeOptions{Limiter: lim, DrainTimeout: 30 * time.Second})
	}()

	// Leader: a long search that holds the only expensive slot. 500k
	// evaluations is ~0.5s unracing — long enough to overlap the drain,
	// short enough to finish well inside the drain budget.
	leaderC, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer leaderC.Close()
	type leadRes struct {
		reply *ScheduleReply
		err   error
	}
	leaderDone := make(chan leadRes, 1)
	go func() {
		r, err := leaderC.ScheduleEffort(prog.Name, "cs", []int{0, 1, 2, 3}, 1, 500_000)
		leaderDone <- leadRes{r, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for lim.Inflight() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never acquired the expensive slot")
		}
		time.Sleep(time.Millisecond)
	}
	// Park a ticket in the brownout lane: even after the leader finishes,
	// every further expensive acquire sheds deterministically.
	tkCheap, err := lim.Acquire(context.Background(), admission.Cheap)
	if err != nil {
		t.Fatal(err)
	}
	defer lim.Release(tkCheap)

	// Followers on distinct keys: each must be refused with ErrShed
	// promptly, not hang on a queue or the accept semaphore.
	shedErrs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(seed int64) {
			c, err := Dial(l.Addr().String())
			if err != nil {
				shedErrs <- err
				return
			}
			defer c.Close()
			c.SetRetryPolicy(RetryPolicy{Max: -1}) // observe the raw shed
			_, err = c.Schedule(prog.Name, "rs", []int{0, 1, 2, 3}, seed)
			shedErrs <- err
		}(int64(i + 100))
	}
	for i := 0; i < 4; i++ {
		select {
		case err := <-shedErrs:
			if !IsShed(err) {
				t.Fatalf("follower err = %v, want shed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("shed follower hung")
		}
	}

	// Begin draining while the leader is (still) mid-search.
	l.Close()
	select {
	case r := <-leaderDone:
		if r.err != nil {
			t.Fatalf("in-flight leader lost to the drain: %v", r.err)
		}
		if len(r.reply.Mapping) == 0 {
			t.Fatalf("leader reply = %+v, want a mapping", r.reply)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("leader never completed under drain")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ServeWith = %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("ServeWith hung in drain")
	}
}
