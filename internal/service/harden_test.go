package service

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/workloads"
)

// newSys builds a calibrated system with one profiled app (no listener).
func newSys(t *testing.T) (*cbes.System, workloads.Program) {
	t.Helper()
	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	sys.Calibrate(bench.Options{Reps: 3})
	prog := workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 4, Iterations: 8, ComputePerIter: 0.04, MsgSize: 8 << 10, MsgsPerIter: 1,
	})
	sys.MustProfile(prog, []int{0, 1, 2, 3})
	t.Cleanup(sys.Close)
	return sys, prog
}

func TestInterceptRecoversPanic(t *testing.T) {
	sys, _ := newSys(t)
	s := NewServer(sys)
	err := s.intercept("Boom", TraceMeta{}, func(context.Context) error { panic("kaboom") })
	if err == nil {
		t.Fatal("panicking handler returned nil")
	}
	if got := err.Error(); !strings.Contains(got, "recovered panic") || !strings.Contains(got, "kaboom") {
		t.Fatalf("panic error = %q", got)
	}
	// The engine lock must have been released: the next request runs.
	if err := s.intercept("After", TraceMeta{}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("request after recovered panic: %v", err)
	}
}

func TestInterceptBusyTimeout(t *testing.T) {
	sys, _ := newSys(t)
	s := NewServer(sys)
	s.SetRequestTimeout(20 * time.Millisecond)
	s.lock <- struct{}{} // wedge the engine lock (a stuck long request)
	err := s.intercept("Evaluate", TraceMeta{}, func(context.Context) error { return nil })
	if !IsBusy(err) {
		t.Fatalf("err = %v, want busy", err)
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("local busy error should unwrap to ErrBusy: %v", err)
	}
	<-s.lock
	if err := s.intercept("Evaluate", TraceMeta{}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("after lock release: %v", err)
	}
}

func TestDialContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("dial under cancelled context should fail")
	}
}

func TestDialTimeoutConnects(t *testing.T) {
	sys, prog := newSys(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeWith(sys, l, ServeOptions{}) //nolint:errcheck
	t.Cleanup(func() { l.Close() })
	c, err := DialTimeout(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

// TestClientRetriesAcrossServerRestart kills the server mid-session and
// restarts it on the same port: the client's next idempotent call must
// ride out the dead connection via reconnect + retry.
func TestClientRetriesAcrossServerRestart(t *testing.T) {
	sys, prog := newSys(t)
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	done1 := make(chan error, 1)
	go func() { done1 <- ServeWith(sys, l1, ServeOptions{DrainTimeout: time.Second}) }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	// Take the server down completely (listener + connections).
	l1.Close()
	if err := <-done1; err != nil {
		t.Fatalf("first server exit: %v", err)
	}
	// Restart on the same port, then call again on the same client.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go ServeWith(sys, l2, ServeOptions{}) //nolint:errcheck
	t.Cleanup(func() { l2.Close() })

	r, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("post-restart call did not recover: %v", err)
	}
	if r.Seconds <= 0 {
		t.Fatalf("post-restart prediction = %v", r.Seconds)
	}
}

func TestAdvanceIsNeverRetried(t *testing.T) {
	sys, _ := newSys(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeWith(sys, l, ServeOptions{}) }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l.Close()
	<-done
	if _, err := c.Advance(1); err == nil {
		t.Fatal("Advance against a dead server should fail, not retry forever")
	}
}

// TestMaxClientsBackpressure serves 6 sequential-ish clients through a
// 2-slot server: everyone must eventually be served (the bound applies
// backpressure, it does not deadlock or reject).
func TestMaxClientsBackpressure(t *testing.T) {
	sys, prog := newSys(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeWith(sys, l, ServeOptions{MaxClients: 2}) //nolint:errcheck
	t.Cleanup(func() { l.Close() })

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close() // frees the slot for the next waiter
			_, err = c.Evaluate(prog.Name, []int{0, 1, 2, 3})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSoakShutdownMidFlight is the robustness soak: a fleet of clients
// hammers Evaluate/Schedule/Metrics while the server shuts down mid-
// traffic. Run under -race, the invariants are: the server drains and
// returns promptly; every request either succeeds or fails with a
// transport/shutdown error; nothing panics, deadlocks, or races.
func TestSoakShutdownMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sys, prog := newSys(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ServeWith(sys, l, ServeOptions{MaxClients: 8, DrainTimeout: 2 * time.Second})
	}()

	const clients = 6
	var ok, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				return // server may already be closing: that's the point
			}
			defer c.Close()
			// No retries: the soak wants to observe raw shutdown errors.
			c.SetRetryPolicy(RetryPolicy{Max: -1})
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch n % 3 {
				case 0:
					_, err = c.Evaluate(prog.Name, []int{0, 1, 2, 3})
				case 1:
					_, err = c.Schedule(prog.Name, "rs", pool, int64(n))
				default:
					_, err = c.Metrics("")
				}
				if err != nil {
					// Mid-shutdown failures must look like transport loss,
					// not corruption: anything else fails the soak.
					if !isTransient(err) {
						t.Errorf("client %d: non-transient error during shutdown: %v", i, err)
					}
					failed.Add(1)
					return
				}
				ok.Add(1)
			}
		}(i)
	}

	time.Sleep(150 * time.Millisecond) // let traffic build up
	l.Close()                          // shutdown mid-flight
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ServeWith returned %v on clean close", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeWith did not drain within budget")
	}
	close(stop)
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("soak produced no successful requests before shutdown")
	}
	t.Logf("soak: %d ok, %d failed-at-shutdown", ok.Load(), failed.Load())
}
