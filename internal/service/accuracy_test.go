package service

import (
	"strings"
	"testing"
)

// TestAccuracyLoopOverRPC drives the full predicted-vs-actual loop through
// the wire: Evaluate hands out a PredictionID, ReportOutcome joins the
// measured runtime, and the Accuracy RPC surfaces the joined pair with
// calibration statistics. The ledger behind the server is the process-wide
// default, so every assertion on counters is a before/after delta.
func TestAccuracyLoopOverRPC(t *testing.T) {
	c, prog, _ := startServer(t)
	mapping := []int{0, 1, 2, 3}

	before, err := c.Accuracy("", "", 0)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}

	ev, err := c.Evaluate(prog.Name, mapping)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.PredictionID == "" {
		t.Fatal("Evaluate reply has no PredictionID")
	}
	if ev.Seconds <= 0 {
		t.Fatalf("Evaluate predicted %v", ev.Seconds)
	}

	// Report a measured runtime 5% above the estimate: signed error
	// (pred-actual)/actual is then about -4.76%.
	actual := ev.Seconds * 1.05
	out, err := c.ReportOutcome(ev.PredictionID, actual)
	if err != nil {
		t.Fatalf("ReportOutcome: %v", err)
	}
	if out.App != prog.Name {
		t.Errorf("outcome app = %q, want %q", out.App, prog.Name)
	}
	if out.Predicted != ev.Seconds || out.Actual != actual {
		t.Errorf("outcome pair = (%v, %v), want (%v, %v)", out.Predicted, out.Actual, ev.Seconds, actual)
	}
	if out.SignedErrPct >= 0 || out.AbsErrPct < 4 || out.AbsErrPct > 6 {
		t.Errorf("outcome err = %+.2f%% / %.2f%%, want about -4.8%% / 4.8%%", out.SignedErrPct, out.AbsErrPct)
	}

	after, err := c.Accuracy(prog.Name, "", 10)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if got := after.Status.Joined - before.Status.Joined; got < 1 {
		t.Errorf("joined delta = %d, want >= 1", got)
	}
	foundSample := false
	for _, s := range after.Samples {
		if s.ID == ev.PredictionID {
			foundSample = true
			if s.Actual != actual {
				t.Errorf("sample actual = %v, want %v", s.Actual, actual)
			}
		}
	}
	if !foundSample {
		t.Errorf("joined sample %s not in Accuracy reply (%d samples)", ev.PredictionID, len(after.Samples))
	}

	// A second report against the same ID must fail: joins are one-shot.
	if _, err := c.ReportOutcome(ev.PredictionID, actual); err == nil {
		t.Error("second ReportOutcome on same ID succeeded, want error")
	} else if !strings.Contains(err.Error(), "unknown") {
		t.Errorf("second ReportOutcome error = %v, want unknown-ID", err)
	}
}

// TestSchedulePredictionIDAndOutcome checks the Schedule path hands out its
// own ledger entry, distinct from Evaluate's.
func TestSchedulePredictionIDAndOutcome(t *testing.T) {
	c, prog, _ := startServer(t)

	sched, err := c.Schedule(prog.Name, "cs", []int{0, 1, 2, 3}, 42)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if sched.PredictionID == "" {
		t.Fatal("Schedule reply has no PredictionID")
	}
	ev, err := c.Evaluate(prog.Name, sched.Mapping)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.PredictionID == sched.PredictionID {
		t.Error("Evaluate and Schedule share a PredictionID; every prediction must get its own")
	}
	out, err := c.ReportOutcome(sched.PredictionID, sched.Predicted*0.97)
	if err != nil {
		t.Fatalf("ReportOutcome: %v", err)
	}
	if out.Scheduler != "cs" {
		t.Errorf("outcome scheduler = %q, want \"cs\"", out.Scheduler)
	}
	if out.SignedErrPct <= 0 {
		t.Errorf("signed err = %+.2f%%, want positive (over-prediction)", out.SignedErrPct)
	}
}

// TestDriftAlarmFlipsAndRecoversOverRPC pushes a run of badly-biased
// outcomes through the wire until the drift detector trips, checks all the
// client-visible surfaces (ReportOutcome reply, Accuracy status), then feeds
// accurate outcomes until the sliding window recovers — leaving the shared
// default ledger calibrated for whatever test runs next.
func TestDriftAlarmFlipsAndRecoversOverRPC(t *testing.T) {
	c, prog, _ := startServer(t)
	mapping := []int{0, 1, 2, 3}

	report := func(factor float64) *ReportOutcomeReply {
		t.Helper()
		ev, err := c.Evaluate(prog.Name, mapping)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		out, err := c.ReportOutcome(ev.PredictionID, ev.Seconds*factor)
		if err != nil {
			t.Fatalf("ReportOutcome: %v", err)
		}
		return out
	}

	// 20 outcomes at half the predicted time: |signed err| = 100%, far
	// beyond the 25% drift floor once the 16-sample minimum is met.
	var out *ReportOutcomeReply
	for i := 0; i < 20; i++ {
		out = report(0.5)
	}
	if out.CalibrationOK {
		t.Fatal("calibration still OK after 20 outcomes at 100% error")
	}
	st, err := c.Accuracy("", "", 0)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if st.Status.CalibrationOK {
		t.Error("Accuracy status reports calibration OK while drifted")
	}
	if st.Status.WindowMAPEPct < 25 {
		t.Errorf("window MAPE = %.1f%%, want >= 25%%", st.Status.WindowMAPEPct)
	}

	// The error band for this bucket is now well-populated and should ride
	// on subsequent Evaluate replies.
	ev, err := c.Evaluate(prog.Name, mapping)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.ErrBandSamples < 8 {
		t.Errorf("ErrBandSamples = %d, want >= 8 after 20 joins", ev.ErrBandSamples)
	}
	if ev.ErrBandHighPct < 50 {
		t.Errorf("ErrBandHighPct = %+.1f%%, want large positive band after +100%% errors", ev.ErrBandHighPct)
	}

	// Recovery: enough near-perfect outcomes to flush the sliding window.
	for i := 0; i < 70; i++ {
		out = report(1.001)
	}
	if !out.CalibrationOK {
		st, _ := c.Accuracy("", "", 0)
		t.Fatalf("calibration did not recover: window MAPE %.1f%% over %d", st.Status.WindowMAPEPct, st.Status.WindowN)
	}
}
