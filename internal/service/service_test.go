package service

import (
	"encoding/json"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/workloads"
)

// startServer brings up a calibrated system with one profiled app on a
// loopback listener and returns a connected client.
func startServer(t *testing.T) (*Client, workloads.Program, *cbes.System) {
	t.Helper()
	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	sys.Calibrate(bench.Options{Reps: 3})
	prog := workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 4, Iterations: 8, ComputePerIter: 0.04, MsgSize: 8 << 10, MsgsPerIter: 1,
	})
	sys.MustProfile(prog, []int{0, 1, 2, 3})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(sys, l) //nolint:errcheck // returns when the listener closes
	t.Cleanup(func() { l.Close(); sys.Close() })

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, prog, sys
}

func TestEvaluateOverRPC(t *testing.T) {
	c, prog, _ := startServer(t)
	good, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if good.Seconds <= 0 {
		t.Fatalf("prediction = %v", good.Seconds)
	}
	slow, err := c.Evaluate(prog.Name, []int{4, 5, 6, 7}) // Intel nodes
	if err != nil {
		t.Fatal(err)
	}
	if slow.Seconds <= good.Seconds {
		t.Fatalf("Intel mapping %v not predicted slower than Alpha %v", slow.Seconds, good.Seconds)
	}
	if _, err := c.Evaluate("ghost", []int{0, 1, 2, 3}); err == nil {
		t.Fatal("unknown app should error over RPC")
	}
}

func TestExplainOverRPC(t *testing.T) {
	c, prog, _ := startServer(t)
	r, err := c.Explain(prog.Name, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= 0 || !strings.Contains(r.Text, "predicted execution time") {
		t.Fatalf("explain reply: %+v", r)
	}
	if !strings.Contains(r.Text, "rank") {
		t.Fatalf("breakdown missing:\n%s", r.Text)
	}
}

func TestConcurrentClients(t *testing.T) {
	c1, prog, sys := startServer(t)
	// Concurrent in-flight RPCs over one connection; net/rpc multiplexes
	// them and the server's mutex serializes access to the engine.
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			if i%2 == 0 {
				_, err := c1.Evaluate(prog.Name, []int{0, 1, 2, 3})
				done <- err
				return
			}
			_, err := c1.Schedule(prog.Name, "rs", sys.Pool(cluster.ArchAlpha, cluster.ArchIntel), int64(i))
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompareOverRPC(t *testing.T) {
	c, prog, _ := startServer(t)
	reply, err := c.Compare(prog.Name, [][]int{
		{4, 5, 6, 7},
		{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Best != 1 {
		t.Fatalf("best = %d, want 1", reply.Best)
	}
	if len(reply.Seconds) != 2 || reply.Seconds[1] >= reply.Seconds[0] {
		t.Fatalf("seconds = %v", reply.Seconds)
	}
	if _, err := c.Compare(prog.Name, nil); err == nil {
		t.Fatal("empty compare should error")
	}
}

func TestScheduleOverRPC(t *testing.T) {
	c, prog, sys := startServer(t)
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel)
	reply, err := c.Schedule(prog.Name, "cs", pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Mapping) != prog.Ranks || reply.Predicted <= 0 {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.Evaluations == 0 {
		t.Fatal("no evaluations reported")
	}
	// The fast path routinely finishes in under a millisecond, which the
	// legacy millisecond field truncates to 0; the microsecond field must
	// carry the real (non-zero) duration and agree with it.
	if reply.SchedulerMicros <= 0 {
		t.Fatalf("SchedulerMicros = %d, want > 0", reply.SchedulerMicros)
	}
	if got, want := reply.SchedulerMicros/1000, reply.SchedulerMillis; got != want {
		t.Fatalf("micros %d inconsistent with millis %d", reply.SchedulerMicros, want)
	}
	if _, err := c.Schedule(prog.Name, "quantum", pool, 3); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

// TestErrorPaths exercises the error returns of every method over a real
// RPC round-trip: unknown applications, empty batches, bad arguments.
func TestErrorPaths(t *testing.T) {
	c, prog, sys := startServer(t)
	pool := sys.Pool(cluster.ArchAlpha)
	if _, err := c.Schedule("ghost", "cs", pool, 1); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("schedule of unknown app: err = %v", err)
	}
	if _, err := c.Compare("ghost", [][]int{{0, 1, 2, 3}}); err == nil {
		t.Fatal("compare of unknown app should error")
	}
	if _, err := c.Compare(prog.Name, nil); err == nil || !strings.Contains(err.Error(), "no mappings") {
		t.Fatalf("empty compare: err = %v", err)
	}
	if _, err := c.Explain("ghost", []int{0, 1, 2, 3}); err == nil {
		t.Fatal("explain of unknown app should error")
	}
	if _, err := c.Advance(-0.5); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative advance: err = %v", err)
	}
	if _, err := c.Evaluate(prog.Name, []int{0, 1}); err == nil {
		t.Fatal("wrong-arity mapping should error")
	}
	if _, err := c.Metrics("xml"); err == nil || !strings.Contains(err.Error(), "unknown metrics format") {
		t.Fatalf("bad metrics format: err = %v", err)
	}
}

// TestMetricsOverRPC drives traffic through the service and then checks
// the Metrics RPC reports it in both exposition formats.
func TestMetricsOverRPC(t *testing.T) {
	c, prog, sys := startServer(t)
	if _, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule(prog.Name, "cs", sys.Pool(cluster.ArchAlpha, cluster.ArchIntel), 1); err != nil {
		t.Fatal(err)
	}
	r, err := c.Metrics("")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cbes_rpc_requests_total{method="Evaluate"}`,
		`cbes_rpc_seconds_bucket{method="Schedule",le="+Inf"}`,
		"cbes_core_energy_evals_total",
		"cbes_core_delta_evals_total",
		"cbes_sa_acceptance_rate",
		"cbes_monitor_snapshot_age_seconds",
		"cbes_schedule_requests_total",
	} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("prometheus exposition missing %q", want)
		}
	}
	j, err := c.Metrics("json")
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal([]byte(j.Text), &tree); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	rpcByMethod, ok := tree["cbes_rpc_requests_total"].(map[string]any)
	if !ok || rpcByMethod["Evaluate"].(float64) < 1 {
		t.Fatalf("JSON metrics missing per-method RPC counts: %v", tree["cbes_rpc_requests_total"])
	}
	if tree["cbes_core_delta_evals_total"].(float64) == 0 {
		t.Fatal("delta evaluations not counted")
	}
}

// TestConcurrentMetricsScrape hammers Metrics from several goroutines
// while scheduling runs — the -race guard for the scrape path.
func TestConcurrentMetricsScrape(t *testing.T) {
	c, prog, sys := startServer(t)
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, err := c.Schedule(prog.Name, "cs", pool, seed)
			errs <- err
		}(int64(i))
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			format := ""
			if i%2 == 1 {
				format = "json"
			}
			r, err := c.Metrics(format)
			if err == nil && r.Text == "" {
				err = errEmptyScrape
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var errEmptyScrape = errEmpty{}

type errEmpty struct{}

func (errEmpty) Error() string { return "empty metrics scrape" }

// TestServeCleanClose asserts the shutdown-path contract: closing the
// listener makes Serve return nil, not the accept error.
func TestServeCleanClose(t *testing.T) {
	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	t.Cleanup(sys.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(sys, l) }()
	time.Sleep(10 * time.Millisecond) // let Serve reach Accept
	l.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on deliberate close, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

func TestStatusAndAdvance(t *testing.T) {
	c, prog, _ := startServer(t)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster != "testnet" || st.Nodes != 8 {
		t.Fatalf("status = %+v", st)
	}
	found := false
	for _, a := range st.Apps {
		if a == prog.Name {
			found = true
		}
	}
	if !found {
		t.Fatalf("app %q not in %v", prog.Name, st.Apps)
	}
	adv, err := c.Advance(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adv.SimSeconds-st.SimSeconds-5) > 1e-9 {
		t.Fatalf("advance: %v -> %v", st.SimSeconds, adv.SimSeconds)
	}
	if _, err := c.Advance(-1); err == nil {
		t.Fatal("negative advance should error")
	}
}
