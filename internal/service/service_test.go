package service

import (
	"math"
	"net"
	"strings"
	"testing"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/workloads"
)

// startServer brings up a calibrated system with one profiled app on a
// loopback listener and returns a connected client.
func startServer(t *testing.T) (*Client, workloads.Program, *cbes.System) {
	t.Helper()
	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	sys.Calibrate(bench.Options{Reps: 3})
	prog := workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 4, Iterations: 8, ComputePerIter: 0.04, MsgSize: 8 << 10, MsgsPerIter: 1,
	})
	sys.MustProfile(prog, []int{0, 1, 2, 3})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(sys, l) //nolint:errcheck // returns when the listener closes
	t.Cleanup(func() { l.Close(); sys.Close() })

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, prog, sys
}

func TestEvaluateOverRPC(t *testing.T) {
	c, prog, _ := startServer(t)
	good, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if good.Seconds <= 0 {
		t.Fatalf("prediction = %v", good.Seconds)
	}
	slow, err := c.Evaluate(prog.Name, []int{4, 5, 6, 7}) // Intel nodes
	if err != nil {
		t.Fatal(err)
	}
	if slow.Seconds <= good.Seconds {
		t.Fatalf("Intel mapping %v not predicted slower than Alpha %v", slow.Seconds, good.Seconds)
	}
	if _, err := c.Evaluate("ghost", []int{0, 1, 2, 3}); err == nil {
		t.Fatal("unknown app should error over RPC")
	}
}

func TestExplainOverRPC(t *testing.T) {
	c, prog, _ := startServer(t)
	r, err := c.Explain(prog.Name, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= 0 || !strings.Contains(r.Text, "predicted execution time") {
		t.Fatalf("explain reply: %+v", r)
	}
	if !strings.Contains(r.Text, "rank") {
		t.Fatalf("breakdown missing:\n%s", r.Text)
	}
}

func TestConcurrentClients(t *testing.T) {
	c1, prog, sys := startServer(t)
	// Concurrent in-flight RPCs over one connection; net/rpc multiplexes
	// them and the server's mutex serializes access to the engine.
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			if i%2 == 0 {
				_, err := c1.Evaluate(prog.Name, []int{0, 1, 2, 3})
				done <- err
				return
			}
			_, err := c1.Schedule(prog.Name, "rs", sys.Pool(cluster.ArchAlpha, cluster.ArchIntel), int64(i))
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompareOverRPC(t *testing.T) {
	c, prog, _ := startServer(t)
	reply, err := c.Compare(prog.Name, [][]int{
		{4, 5, 6, 7},
		{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Best != 1 {
		t.Fatalf("best = %d, want 1", reply.Best)
	}
	if len(reply.Seconds) != 2 || reply.Seconds[1] >= reply.Seconds[0] {
		t.Fatalf("seconds = %v", reply.Seconds)
	}
	if _, err := c.Compare(prog.Name, nil); err == nil {
		t.Fatal("empty compare should error")
	}
}

func TestScheduleOverRPC(t *testing.T) {
	c, prog, sys := startServer(t)
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel)
	reply, err := c.Schedule(prog.Name, "cs", pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Mapping) != prog.Ranks || reply.Predicted <= 0 {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.Evaluations == 0 {
		t.Fatal("no evaluations reported")
	}
	if _, err := c.Schedule(prog.Name, "quantum", pool, 3); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestStatusAndAdvance(t *testing.T) {
	c, prog, _ := startServer(t)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster != "testnet" || st.Nodes != 8 {
		t.Fatalf("status = %+v", st)
	}
	found := false
	for _, a := range st.Apps {
		if a == prog.Name {
			found = true
		}
	}
	if !found {
		t.Fatalf("app %q not in %v", prog.Name, st.Apps)
	}
	adv, err := c.Advance(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adv.SimSeconds-st.SimSeconds-5) > 1e-9 {
		t.Fatalf("advance: %v -> %v", st.SimSeconds, adv.SimSeconds)
	}
	if _, err := c.Advance(-1); err == nil {
		t.Fatal("negative advance should error")
	}
}
