// Package service exposes CBES as a network service: external clients
// (such as schedulers or workload managers) submit mapping-comparison and
// scheduling requests over TCP using Go's net/rpc, matching the paper's
// design of a core module that "accepts mapping comparison requests from
// external clients".
package service

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"cbes"
	"cbes/internal/core"
	"cbes/internal/des"
)

// RPCName is the registered net/rpc service name.
const RPCName = "CBES"

// EvaluateArgs asks for an execution-time prediction of one mapping.
type EvaluateArgs struct {
	App     string
	Mapping []int
}

// EvaluateReply carries the prediction.
type EvaluateReply struct {
	Seconds  float64
	Critical int // rank attaining the per-segment max in the first segment
}

// ExplainArgs asks for a human-readable prediction breakdown.
type ExplainArgs struct {
	App     string
	Mapping []int
}

// ExplainReply carries the rendered breakdown.
type ExplainReply struct {
	Seconds float64
	Text    string
}

// CompareArgs asks for predictions of several candidate mappings.
type CompareArgs struct {
	App      string
	Mappings [][]int
}

// CompareReply carries per-candidate predictions and the fastest index.
type CompareReply struct {
	Seconds []float64
	Best    int
}

// ScheduleArgs asks the service to find a mapping.
type ScheduleArgs struct {
	App       string
	Algorithm string // "cs", "ncs", "rs", "ga"
	Pool      []int
	Seed      int64
}

// ScheduleReply carries the chosen mapping.
type ScheduleReply struct {
	Mapping         []int
	Predicted       float64
	Evaluations     int
	SchedulerMillis int64
}

// StatusArgs requests service status.
type StatusArgs struct{}

// StatusReply describes the service state.
type StatusReply struct {
	Cluster    string
	Nodes      int
	Apps       []string
	SimSeconds float64
	AvailCPU   []float64
	NICUtil    []float64
}

// AdvanceArgs moves simulated time forward (demo control).
type AdvanceArgs struct {
	Seconds float64
}

// AdvanceReply reports the new simulated time.
type AdvanceReply struct {
	SimSeconds float64
}

// Server serves CBES requests for one System. All requests are serialized:
// the simulation engine is single-threaded by design.
type Server struct {
	mu  sync.Mutex
	sys *cbes.System
}

// NewServer wraps a System.
func NewServer(sys *cbes.System) *Server { return &Server{sys: sys} }

// Evaluate predicts the execution time of one mapping.
func (s *Server) Evaluate(args *EvaluateArgs, reply *EvaluateReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pred, err := s.sys.Predict(args.App, core.Mapping(args.Mapping))
	if err != nil {
		return err
	}
	reply.Seconds = pred.Seconds
	if len(pred.Segments) > 0 {
		reply.Critical = pred.Segments[0].Critical
	}
	return nil
}

// Explain predicts one mapping and returns the per-process breakdown.
func (s *Server) Explain(args *ExplainArgs, reply *ExplainReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pred, err := s.sys.Predict(args.App, core.Mapping(args.Mapping))
	if err != nil {
		return err
	}
	reply.Seconds = pred.Seconds
	reply.Text = pred.Explain(s.sys.Topo)
	return nil
}

// Compare predicts several mappings and selects the fastest.
func (s *Server) Compare(args *CompareArgs, reply *CompareReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(args.Mappings) == 0 {
		return fmt.Errorf("service: no mappings")
	}
	eval, err := s.sys.Evaluator(args.App)
	if err != nil {
		return err
	}
	ms := make([]core.Mapping, len(args.Mappings))
	for i, m := range args.Mappings {
		ms[i] = core.Mapping(m)
	}
	preds, best, err := eval.Compare(ms, s.sys.Snapshot())
	if err != nil {
		return err
	}
	reply.Seconds = make([]float64, len(preds))
	for i, p := range preds {
		reply.Seconds[i] = p.Seconds
	}
	reply.Best = best
	return nil
}

// Schedule finds a mapping with the requested algorithm.
func (s *Server) Schedule(args *ScheduleArgs, reply *ScheduleReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dec, err := s.sys.Schedule(args.App, cbes.Algorithm(args.Algorithm), args.Pool, args.Seed)
	if err != nil {
		return err
	}
	reply.Mapping = []int(dec.Mapping)
	reply.Predicted = dec.Predicted
	reply.Evaluations = dec.Evaluations
	reply.SchedulerMillis = dec.SchedulerTime.Milliseconds()
	return nil
}

// Status reports the service and cluster state.
func (s *Server) Status(_ *StatusArgs, reply *StatusReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.sys.Snapshot()
	reply.Cluster = s.sys.Topo.Name
	reply.Nodes = s.sys.Topo.NumNodes()
	reply.Apps = s.sys.Apps()
	reply.SimSeconds = s.sys.Eng.Now().Seconds()
	reply.AvailCPU = snap.AvailCPU
	reply.NICUtil = snap.NICUtil
	return nil
}

// Advance moves simulated time forward so monitors resample.
func (s *Server) Advance(args *AdvanceArgs, reply *AdvanceReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.Seconds < 0 {
		return fmt.Errorf("service: negative advance")
	}
	s.sys.Advance(des.FromSeconds(args.Seconds))
	reply.SimSeconds = s.sys.Eng.Now().Seconds()
	return nil
}

// Serve accepts connections on l until the listener closes. It blocks.
func Serve(sys *cbes.System, l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(RPCName, NewServer(sys)); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Client is a typed CBES RPC client.
type Client struct {
	rc *rpc.Client
}

// Dial connects to a CBES server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	return &Client{rc: rpc.NewClient(conn)}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.rc.Close() }

// Evaluate predicts one mapping's execution time.
func (c *Client) Evaluate(app string, mapping []int) (*EvaluateReply, error) {
	var reply EvaluateReply
	err := c.rc.Call(RPCName+".Evaluate", &EvaluateArgs{App: app, Mapping: mapping}, &reply)
	return &reply, err
}

// Explain fetches the per-process breakdown of one mapping's prediction.
func (c *Client) Explain(app string, mapping []int) (*ExplainReply, error) {
	var reply ExplainReply
	err := c.rc.Call(RPCName+".Explain", &ExplainArgs{App: app, Mapping: mapping}, &reply)
	return &reply, err
}

// Compare predicts several mappings.
func (c *Client) Compare(app string, mappings [][]int) (*CompareReply, error) {
	var reply CompareReply
	err := c.rc.Call(RPCName+".Compare", &CompareArgs{App: app, Mappings: mappings}, &reply)
	return &reply, err
}

// Schedule requests a mapping from the named algorithm.
func (c *Client) Schedule(app, algorithm string, pool []int, seed int64) (*ScheduleReply, error) {
	var reply ScheduleReply
	err := c.rc.Call(RPCName+".Schedule", &ScheduleArgs{App: app, Algorithm: algorithm, Pool: pool, Seed: seed}, &reply)
	return &reply, err
}

// Status fetches service status.
func (c *Client) Status() (*StatusReply, error) {
	var reply StatusReply
	err := c.rc.Call(RPCName+".Status", &StatusArgs{}, &reply)
	return &reply, err
}

// Advance moves simulated time forward on the server.
func (c *Client) Advance(seconds float64) (*AdvanceReply, error) {
	var reply AdvanceReply
	err := c.rc.Call(RPCName+".Advance", &AdvanceArgs{Seconds: seconds}, &reply)
	return &reply, err
}
