// Package service exposes CBES as a network service: external clients
// (such as schedulers or workload managers) submit mapping-comparison and
// scheduling requests over TCP using Go's net/rpc, matching the paper's
// design of a core module that "accepts mapping comparison requests from
// external clients".
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"cbes"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/obs"
)

// RPC observability: every exported method runs through intercept, which
// maintains per-method request/error counters and latency histograms
// plus a cluster-wide in-flight gauge. Method names are a fixed set, so
// label cardinality is bounded.
var (
	rpcRequests = obs.Default().CounterVec(
		"cbes_rpc_requests_total", "RPC requests served, by method.", "method")
	rpcErrors = obs.Default().CounterVec(
		"cbes_rpc_errors_total", "RPC requests that returned an error, by method.", "method")
	rpcSeconds = obs.Default().HistogramVec(
		"cbes_rpc_seconds", "RPC handler latency, by method.", nil, "method")
	rpcInflight = obs.Default().Gauge(
		"cbes_rpc_inflight", "RPC requests currently being handled (or waiting on the engine lock).")
	rpcConnections = obs.Default().Counter(
		"cbes_rpc_connections_total", "Client connections accepted.")
	rpcActiveConns = obs.Default().Gauge(
		"cbes_rpc_active_connections", "Client connections currently open.")
	rpcPanics = obs.Default().Counter(
		"cbes_rpc_panics_recovered_total", "Handler panics recovered and returned as errors.")
	rpcBusy = obs.Default().Counter(
		"cbes_rpc_busy_total", "Requests rejected because the engine lock was not acquired in time.")
	clientRetries = obs.Default().Counter(
		"cbes_client_retries_total", "Client-side retries of transient RPC failures.")
)

// ErrBusy is returned (wrapped) when a request could not acquire the
// engine serialization lock within the server's request timeout — e.g. a
// long-running Schedule is hogging the engine. The condition is transient;
// the retrying client backs off and retries it. Note that net/rpc flattens
// server errors to strings, so remote callers must match with IsBusy
// rather than errors.Is.
var ErrBusy = errors.New("service: server busy (engine lock timeout)")

// IsBusy reports whether err is ErrBusy, either locally (errors.Is) or
// flattened to a string by net/rpc transport.
func IsBusy(err error) bool {
	return err != nil &&
		(errors.Is(err, ErrBusy) || strings.Contains(err.Error(), "server busy (engine lock timeout)"))
}

// intercept wraps one RPC method body with instrumentation, panic
// recovery, and the engine serialization lock (the simulation engine is
// single-threaded by design, so every handler runs under the lock). Lock
// acquisition is deadline-bounded: a request that cannot start within the
// server's request timeout — e.g. queued behind a long Schedule — fails
// fast with ErrBusy instead of piling up. Once a handler runs it is not
// preempted (Go offers no safe preemption), so the timeout bounds queueing
// time, not execution time. The in-flight gauge counts requests from
// arrival, i.e. including time spent queued on the lock.
func (s *Server) intercept(method string, fn func() error) error {
	rpcInflight.Add(1)
	s.inflight.Add(1)
	defer rpcInflight.Add(-1)
	defer s.inflight.Done()
	start := time.Now()
	timer := time.NewTimer(s.timeout)
	defer timer.Stop()
	select {
	case s.lock <- struct{}{}:
	case <-timer.C:
		rpcBusy.Inc()
		rpcRequests.With(method).Inc()
		rpcErrors.With(method).Inc()
		return fmt.Errorf("service: %s queued %v on the engine lock: %w", method, s.timeout, ErrBusy)
	}
	err := s.invoke(method, fn)
	rpcRequests.With(method).Inc()
	rpcSeconds.With(method).Observe(time.Since(start).Seconds())
	if err != nil {
		rpcErrors.With(method).Inc()
	}
	return err
}

// invoke runs the handler body holding the engine lock, converting a panic
// into an error so one poisoned request cannot kill the daemon (net/rpc
// would otherwise crash the whole process) — and, crucially, so the engine
// lock is still released for subsequent requests.
func (s *Server) invoke(method string, fn func() error) (err error) {
	defer func() { <-s.lock }()
	defer func() {
		if p := recover(); p != nil {
			rpcPanics.Inc()
			err = fmt.Errorf("service: %s: internal error (recovered panic): %v", method, p)
		}
	}()
	return fn()
}

// RPCName is the registered net/rpc service name.
const RPCName = "CBES"

// EvaluateArgs asks for an execution-time prediction of one mapping.
type EvaluateArgs struct {
	App     string
	Mapping []int
}

// EvaluateReply carries the prediction.
type EvaluateReply struct {
	Seconds  float64
	Critical int // rank attaining the per-segment max in the first segment
}

// ExplainArgs asks for a human-readable prediction breakdown.
type ExplainArgs struct {
	App     string
	Mapping []int
}

// ExplainReply carries the rendered breakdown.
type ExplainReply struct {
	Seconds float64
	Text    string
}

// CompareArgs asks for predictions of several candidate mappings.
type CompareArgs struct {
	App      string
	Mappings [][]int
}

// CompareReply carries per-candidate predictions and the fastest index.
type CompareReply struct {
	Seconds []float64
	Best    int
}

// ScheduleArgs asks the service to find a mapping.
type ScheduleArgs struct {
	App       string
	Algorithm string // "cs", "ncs", "rs", "ga"
	Pool      []int
	Seed      int64
}

// ScheduleReply carries the chosen mapping.
type ScheduleReply struct {
	Mapping     []int
	Predicted   float64
	Evaluations int
	// SchedulerMillis is the search wall time in milliseconds. Kept for
	// compatibility with older clients, but it truncates fast-path runs
	// (often sub-millisecond) to 0 — prefer SchedulerMicros.
	SchedulerMillis int64
	// SchedulerMicros is the search wall time in microseconds.
	SchedulerMicros int64
}

// Metrics formats accepted by the Metrics RPC.
const (
	FormatPrometheus = "prom" // Prometheus text exposition (the default)
	FormatJSON       = "json" // expvar-style JSON snapshot
)

// MetricsArgs selects the exposition format.
type MetricsArgs struct {
	Format string // FormatPrometheus (default) or FormatJSON
}

// MetricsReply carries the rendered metrics.
type MetricsReply struct {
	Text string
}

// StatusArgs requests service status.
type StatusArgs struct{}

// StatusReply describes the service state.
type StatusReply struct {
	Cluster    string
	Nodes      int
	Apps       []string
	SimSeconds float64
	AvailCPU   []float64
	NICUtil    []float64
}

// AdvanceArgs moves simulated time forward (demo control).
type AdvanceArgs struct {
	Seconds float64
}

// AdvanceReply reports the new simulated time.
type AdvanceReply struct {
	SimSeconds float64
}

// DefaultRequestTimeout bounds how long a request may queue on the engine
// lock before failing fast with ErrBusy.
const DefaultRequestTimeout = 30 * time.Second

// Server serves CBES requests for one System. All requests are serialized
// through intercept — the simulation engine is single-threaded by design —
// except Metrics, which only reads atomics and must not block behind a
// long-running Schedule.
type Server struct {
	sys *cbes.System
	// lock is the engine serialization lock. A 1-slot channel rather than
	// a sync.Mutex so acquisition can race a deadline (see intercept).
	lock    chan struct{}
	timeout time.Duration
	// inflight tracks requests (not connections) for shutdown draining.
	inflight sync.WaitGroup
}

// NewServer wraps a System with the default request timeout.
func NewServer(sys *cbes.System) *Server {
	return &Server{sys: sys, lock: make(chan struct{}, 1), timeout: DefaultRequestTimeout}
}

// SetRequestTimeout overrides the engine-lock queueing bound. Must be
// called before the server starts handling requests.
func (s *Server) SetRequestTimeout(d time.Duration) {
	if d > 0 {
		s.timeout = d
	}
}

// Evaluate predicts the execution time of one mapping.
func (s *Server) Evaluate(args *EvaluateArgs, reply *EvaluateReply) error {
	return s.intercept("Evaluate", func() error {
		pred, err := s.sys.Predict(args.App, core.Mapping(args.Mapping))
		if err != nil {
			return err
		}
		reply.Seconds = pred.Seconds
		if len(pred.Segments) > 0 {
			reply.Critical = pred.Segments[0].Critical
		}
		return nil
	})
}

// Explain predicts one mapping and returns the per-process breakdown.
func (s *Server) Explain(args *ExplainArgs, reply *ExplainReply) error {
	return s.intercept("Explain", func() error {
		pred, err := s.sys.Predict(args.App, core.Mapping(args.Mapping))
		if err != nil {
			return err
		}
		reply.Seconds = pred.Seconds
		reply.Text = pred.Explain(s.sys.Topo)
		return nil
	})
}

// Compare predicts several mappings and selects the fastest.
func (s *Server) Compare(args *CompareArgs, reply *CompareReply) error {
	return s.intercept("Compare", func() error {
		if len(args.Mappings) == 0 {
			return fmt.Errorf("service: no mappings")
		}
		eval, err := s.sys.Evaluator(args.App)
		if err != nil {
			return err
		}
		ms := make([]core.Mapping, len(args.Mappings))
		for i, m := range args.Mappings {
			ms[i] = core.Mapping(m)
		}
		preds, best, err := eval.Compare(ms, s.sys.Snapshot())
		if err != nil {
			return err
		}
		reply.Seconds = make([]float64, len(preds))
		for i, p := range preds {
			reply.Seconds[i] = p.Seconds
		}
		reply.Best = best
		return nil
	})
}

// Schedule finds a mapping with the requested algorithm.
func (s *Server) Schedule(args *ScheduleArgs, reply *ScheduleReply) error {
	return s.intercept("Schedule", func() error {
		dec, err := s.sys.Schedule(args.App, cbes.Algorithm(args.Algorithm), args.Pool, args.Seed)
		if err != nil {
			return err
		}
		reply.Mapping = []int(dec.Mapping)
		reply.Predicted = dec.Predicted
		reply.Evaluations = dec.Evaluations
		reply.SchedulerMillis = dec.SchedulerTime.Milliseconds()
		reply.SchedulerMicros = dec.SchedulerTime.Microseconds()
		return nil
	})
}

// Status reports the service and cluster state.
func (s *Server) Status(_ *StatusArgs, reply *StatusReply) error {
	return s.intercept("Status", func() error {
		snap := s.sys.Snapshot()
		reply.Cluster = s.sys.Topo.Name
		reply.Nodes = s.sys.Topo.NumNodes()
		reply.Apps = s.sys.Apps()
		reply.SimSeconds = s.sys.Eng.Now().Seconds()
		reply.AvailCPU = snap.AvailCPU
		reply.NICUtil = snap.NICUtil
		return nil
	})
}

// Advance moves simulated time forward so monitors resample.
func (s *Server) Advance(args *AdvanceArgs, reply *AdvanceReply) error {
	return s.intercept("Advance", func() error {
		if args.Seconds < 0 {
			return fmt.Errorf("service: negative advance")
		}
		s.sys.Advance(des.FromSeconds(args.Seconds))
		reply.SimSeconds = s.sys.Eng.Now().Seconds()
		return nil
	})
}

// Metrics renders the process metrics registry. Unlike every other
// method it does not take the engine lock: the registry is atomic, and a
// scrape must not queue behind a long-running Schedule.
func (s *Server) Metrics(args *MetricsArgs, reply *MetricsReply) error {
	rpcInflight.Add(1)
	s.inflight.Add(1)
	defer rpcInflight.Add(-1)
	defer s.inflight.Done()
	start := time.Now()
	defer func() {
		rpcRequests.With("Metrics").Inc()
		rpcSeconds.With("Metrics").Observe(time.Since(start).Seconds())
	}()
	switch args.Format {
	case "", FormatPrometheus:
		var buf bytes.Buffer
		obs.Default().WritePrometheus(&buf)
		reply.Text = buf.String()
	case FormatJSON:
		raw, err := json.MarshalIndent(obs.Default().Snapshot(), "", "  ")
		if err != nil {
			rpcErrors.With("Metrics").Inc()
			return err
		}
		reply.Text = string(raw)
	default:
		rpcErrors.With("Metrics").Inc()
		return fmt.Errorf("service: unknown metrics format %q (want %q or %q)",
			args.Format, FormatPrometheus, FormatJSON)
	}
	return nil
}

// ServeOptions tunes ServeWith. The zero value selects sane defaults.
type ServeOptions struct {
	// MaxClients bounds concurrently served connections; further accepts
	// wait (TCP backlog backpressure) until a slot frees. Default 64.
	MaxClients int
	// DrainTimeout bounds how long shutdown waits for in-flight requests
	// to finish before force-closing connections. Default 5s.
	DrainTimeout time.Duration
	// RequestTimeout bounds engine-lock queueing per request (ErrBusy on
	// expiry). Default DefaultRequestTimeout.
	RequestTimeout time.Duration
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.MaxClients <= 0 {
		o.MaxClients = 64
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	return o
}

// Serve accepts connections on l until the listener closes. It blocks.
// A deliberate close of the listener (the daemon's shutdown path) is a
// clean exit and returns nil; any other accept failure is returned.
// Equivalent to ServeWith with default options.
func Serve(sys *cbes.System, l net.Listener) error {
	return ServeWith(sys, l, ServeOptions{})
}

// ServeWith is Serve with explicit limits. Unlike the naive accept loop it
// (a) bounds the number of concurrently served connections, (b) tracks
// every open connection, and (c) drains on shutdown: once the listener
// closes, it waits up to DrainTimeout for in-flight requests to complete,
// lets replies flush, then force-closes whatever connections remain (idle
// keep-alive clients would otherwise pin their handler goroutines, and the
// old code leaked them outright). It returns only after every connection
// goroutine has exited or the drain budget is exhausted.
func ServeWith(sys *cbes.System, l net.Listener, opts ServeOptions) error {
	opts = opts.withDefaults()
	impl := NewServer(sys)
	impl.SetRequestTimeout(opts.RequestTimeout)
	srv := rpc.NewServer()
	if err := srv.RegisterName(RPCName, impl); err != nil {
		return err
	}

	var (
		sem    = make(chan struct{}, opts.MaxClients)
		connMu sync.Mutex
		conns  = map[net.Conn]struct{}{}
		wg     sync.WaitGroup
	)
	var acceptErr error
	for {
		conn, err := l.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		sem <- struct{}{} // client-concurrency bound: backpressure on accept
		rpcConnections.Inc()
		rpcActiveConns.Add(1)
		connMu.Lock()
		conns[conn] = struct{}{}
		connMu.Unlock()
		wg.Add(1)
		go func(c net.Conn) {
			defer func() {
				connMu.Lock()
				delete(conns, c)
				connMu.Unlock()
				c.Close()
				rpcActiveConns.Add(-1)
				<-sem
				wg.Done()
			}()
			srv.ServeConn(c)
		}(conn)
	}

	// Drain: in-flight requests get DrainTimeout to finish...
	done := make(chan struct{})
	go func() { impl.inflight.Wait(); close(done) }()
	select {
	case <-done:
		// ...and their replies a moment to flush before we cut the wire. A
		// reply racing the close is retried by the client (methods retried
		// are idempotent), so this grace is a latency nicety, not a
		// correctness requirement.
		time.Sleep(20 * time.Millisecond)
	case <-time.After(opts.DrainTimeout):
	}
	connMu.Lock()
	for c := range conns {
		c.Close() // unblocks ServeConn's read; handler goroutine exits
	}
	connMu.Unlock()
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(opts.DrainTimeout):
		// A handler is stuck mid-request past every budget; give up rather
		// than hang shutdown. The goroutine dies with the process.
	}
	return acceptErr
}

// DefaultDialTimeout is the connection timeout of Dial.
const DefaultDialTimeout = 5 * time.Second

// RetryPolicy configures the client's handling of transient failures on
// idempotent methods: up to Max retries with exponential backoff from
// BaseDelay (capped at MaxDelay) plus jitter.
type RetryPolicy struct {
	Max       int           // retries after the first attempt (default 3)
	BaseDelay time.Duration // first backoff step (default 25ms)
	MaxDelay  time.Duration // backoff cap (default 1s)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max < 0 {
		p.Max = 0
	} else if p.Max == 0 {
		p.Max = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// delay computes the backoff before retry attempt (0-based) with full
// jitter: a uniform draw from (0, cappedExponential], so synchronized
// clients spread out instead of thundering back together.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return time.Duration(1 + rand.Int63n(int64(d)))
}

// Client is a typed CBES RPC client. Idempotent methods (everything except
// Advance, which mutates simulated time) transparently retry transient
// failures — connection loss, server shutdown mid-flight, ErrBusy — with
// exponential backoff plus jitter, redialing as needed. A Client is safe
// for concurrent use.
type Client struct {
	addr        string
	dialTimeout time.Duration
	retry       RetryPolicy

	mu sync.Mutex // guards rc across reconnects
	rc *rpc.Client
}

// Dial connects to a CBES server with the default timeout.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, DefaultDialTimeout) }

// DialTimeout connects to a CBES server, waiting at most timeout for the
// connection to establish.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// DialContext connects to a CBES server under the given context (deadline
// and cancellation apply to connection establishment only, not to calls).
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	timeout := DefaultDialTimeout
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			timeout = remain
		}
	}
	return &Client{
		addr:        addr,
		dialTimeout: timeout,
		retry:       RetryPolicy{}.withDefaults(),
		rc:          rpc.NewClient(conn),
	}, nil
}

// SetRetryPolicy overrides the transient-failure retry behaviour.
// RetryPolicy{Max: -1} disables retries entirely.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p.withDefaults() }

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rc.Close()
}

func (c *Client) conn() *rpc.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rc
}

// reconnect replaces a broken connection, best-effort: on dial failure the
// old (dead) client stays, and the next call surfaces its error.
func (c *Client) reconnect(old *rpc.Client) {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return
	}
	c.mu.Lock()
	if c.rc == old { // lost a race with another caller's reconnect: keep theirs
		c.rc.Close()
		c.rc = rpc.NewClient(conn)
		conn = nil
	}
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// isTransient classifies errors worth retrying: the connection died (the
// request outcome is unknown — safe to resend only idempotent methods), or
// the server reported ErrBusy (definitely not executed).
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return true
	}
	if _, ok := err.(rpc.ServerError); ok {
		return IsBusy(err)
	}
	return IsBusy(err) || errors.Is(err, net.ErrClosed)
}

// connError reports whether err indicates the underlying connection is
// unusable (vs. a server-side transient like ErrBusy).
func connError(err error) bool {
	if _, ok := err.(rpc.ServerError); ok {
		return false
	}
	return true
}

// call performs one RPC, retrying transient failures when idempotent is
// true. Non-idempotent methods (Advance) never retry: a lost reply leaves
// the outcome unknown and a resend would double-apply it.
func (c *Client) call(method string, args, reply any, idempotent bool) error {
	var err error
	for attempt := 0; ; attempt++ {
		rc := c.conn()
		err = rc.Call(RPCName+"."+method, args, reply)
		if err == nil || !idempotent || attempt >= c.retry.Max || !isTransient(err) {
			return err
		}
		clientRetries.Inc()
		if connError(err) {
			c.reconnect(rc)
		}
		time.Sleep(c.retry.delay(attempt))
	}
}

// Evaluate predicts one mapping's execution time.
func (c *Client) Evaluate(app string, mapping []int) (*EvaluateReply, error) {
	var reply EvaluateReply
	err := c.call("Evaluate", &EvaluateArgs{App: app, Mapping: mapping}, &reply, true)
	return &reply, err
}

// Explain fetches the per-process breakdown of one mapping's prediction.
func (c *Client) Explain(app string, mapping []int) (*ExplainReply, error) {
	var reply ExplainReply
	err := c.call("Explain", &ExplainArgs{App: app, Mapping: mapping}, &reply, true)
	return &reply, err
}

// Compare predicts several mappings.
func (c *Client) Compare(app string, mappings [][]int) (*CompareReply, error) {
	var reply CompareReply
	err := c.call("Compare", &CompareArgs{App: app, Mappings: mappings}, &reply, true)
	return &reply, err
}

// Schedule requests a mapping from the named algorithm. Retried on
// transient failure: scheduling is deterministic in (app, algorithm, pool,
// seed) and mutates nothing, so a resend is safe.
func (c *Client) Schedule(app, algorithm string, pool []int, seed int64) (*ScheduleReply, error) {
	var reply ScheduleReply
	err := c.call("Schedule", &ScheduleArgs{App: app, Algorithm: algorithm, Pool: pool, Seed: seed}, &reply, true)
	return &reply, err
}

// Status fetches service status.
func (c *Client) Status() (*StatusReply, error) {
	var reply StatusReply
	err := c.call("Status", &StatusArgs{}, &reply, true)
	return &reply, err
}

// Advance moves simulated time forward on the server. Never retried: the
// call is not idempotent, and resending after a lost reply would advance
// the clock twice.
func (c *Client) Advance(seconds float64) (*AdvanceReply, error) {
	var reply AdvanceReply
	err := c.call("Advance", &AdvanceArgs{Seconds: seconds}, &reply, false)
	return &reply, err
}

// Metrics fetches the server's metrics in the given format ("" or
// FormatPrometheus for text exposition, FormatJSON for JSON).
func (c *Client) Metrics(format string) (*MetricsReply, error) {
	var reply MetricsReply
	err := c.call("Metrics", &MetricsArgs{Format: format}, &reply, true)
	return &reply, err
}
