// Package service exposes CBES as a network service: external clients
// (such as schedulers or workload managers) submit mapping-comparison and
// scheduling requests over TCP using Go's net/rpc, matching the paper's
// design of a core module that "accepts mapping comparison requests from
// external clients".
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbes"
	"cbes/internal/accuracy"
	"cbes/internal/admission"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/obs"
)

// RPC observability: every exported method runs through intercept, which
// maintains per-method request/error counters and latency histograms
// plus a cluster-wide in-flight gauge. Method names are a fixed set, so
// label cardinality is bounded.
var (
	rpcRequests = obs.Default().CounterVec(
		"cbes_rpc_requests_total", "RPC requests served, by method.", "method")
	rpcErrors = obs.Default().CounterVec(
		"cbes_rpc_errors_total", "RPC requests that returned an error, by method.", "method")
	rpcSeconds = obs.Default().HistogramVec(
		"cbes_rpc_seconds", "RPC handler latency, by method.", nil, "method")
	rpcInflight = obs.Default().Gauge(
		"cbes_rpc_inflight", "RPC requests currently being handled (or waiting on the engine lock).")
	rpcConnections = obs.Default().Counter(
		"cbes_rpc_connections_total", "Client connections accepted.")
	rpcActiveConns = obs.Default().Gauge(
		"cbes_rpc_active_connections", "Client connections currently open.")
	rpcPanics = obs.Default().Counter(
		"cbes_rpc_panics_recovered_total", "Handler panics recovered and returned as errors.")
	rpcBusy = obs.Default().Counter(
		"cbes_rpc_busy_total", "Requests rejected because the engine lock was not acquired in time.")
	// rpcBusySeconds records how long rejected requests queued before the
	// ErrBusy cutoff. Busy rejections are ALSO observed in cbes_rpc_seconds
	// (they are part of the latency a client experienced); this series
	// isolates them so saturation is visible on its own.
	rpcBusySeconds = obs.Default().Histogram(
		"cbes_rpc_busy_seconds", "Queue time of requests rejected with the busy error.", nil)
	clientRetries = obs.Default().Counter(
		"cbes_client_retries_total", "Client-side retries of transient RPC failures.")
	scheduleCoalesced = obs.Default().Counter(
		"cbes_schedule_coalesced_total",
		"Schedule requests served by joining an identical in-flight request instead of searching again.")
	rpcDeadlineExceeded = obs.Default().Counter(
		"cbes_rpc_deadline_exceeded_total",
		"Requests abandoned because the caller's propagated deadline expired server-side.")
	brownoutServed = obs.Default().Counter(
		"cbes_brownout_served_total",
		"Shed requests answered from the profile-only brownout fast path instead of being rejected.")
	clientBreakerOpen = obs.Default().Counter(
		"cbes_client_breaker_open_total",
		"Client calls refused locally because the circuit breaker was open.")
	clientBudgetExhausted = obs.Default().Counter(
		"cbes_client_retry_budget_exhausted_total",
		"Client retries suppressed because the retry budget was empty.")
)

// Stable error codes (DESIGN.md §15). net/rpc flattens server errors to
// bare strings, so remote callers cannot errors.Is against the sentinel
// values — instead every overload-class error carries a "cbes:" code
// prefix in its message, and the Is* helpers match either the sentinel
// (local callers) or the code substring (flattened rpc.ServerError).
// The codes are wire contract: never change them.
const (
	codeBusy     = "cbes:busy"
	codeShed     = "cbes:shed"
	codeDeadline = "cbes:deadline"
)

// ErrBusy is returned (wrapped) when a request could not acquire the
// engine serialization lock within the server's request timeout — e.g. a
// long-running Advance is hogging the engine. The condition is transient;
// the retrying client backs off and retries it.
var ErrBusy = errors.New(codeBusy + ": server busy (engine lock timeout)")

// ErrShed is returned when the admission limiter refused the request and
// no brownout answer was possible. Transient but load-driven: clients
// retry only within their retry budget. Aliased from internal/admission
// so both packages flatten to the same wire code.
var ErrShed = admission.ErrShed

// ErrDeadlineExceeded is returned (wrapped) when the caller's propagated
// deadline expired before or while the server worked on the request.
// Retrying is pointless — the caller is out of time by definition.
var ErrDeadlineExceeded = errors.New(codeDeadline + ": request deadline exceeded")

// hasCode matches err against a sentinel (local callers) or its stable
// wire code (errors flattened to strings by net/rpc).
func hasCode(err, sentinel error, code string) bool {
	return err != nil && (errors.Is(err, sentinel) || strings.Contains(err.Error(), code))
}

// IsBusy reports whether err is ErrBusy, either locally (errors.Is) or
// flattened to a string by net/rpc transport.
func IsBusy(err error) bool { return hasCode(err, ErrBusy, codeBusy) }

// IsShed reports whether err is ErrShed across the same two spellings.
func IsShed(err error) bool { return hasCode(err, ErrShed, codeShed) }

// IsDeadlineExceeded reports whether err is ErrDeadlineExceeded (wire or
// local) or a raw context.DeadlineExceeded that escaped unwrapped.
func IsDeadlineExceeded(err error) bool {
	return hasCode(err, ErrDeadlineExceeded, codeDeadline) || errors.Is(err, context.DeadlineExceeded)
}

// TraceMeta carries the caller's span context across the net/rpc wire.
// Embedded in every args struct so gob moves it transparently — older
// clients simply send the zero value, and the server mints a fresh
// trace instead of adopting one. The typed Client stamps it from its
// own rpc.client.* span, so one trace tree covers client retry loop →
// server interceptor → cache → search.
type TraceMeta struct {
	TraceID uint64
	SpanID  uint64
	// DeadlineUnixNano is the caller's absolute deadline (UnixNano), or 0
	// for none. Absolute rather than a duration so time spent queued —
	// client-side, on the wire, on the accept backlog — counts against
	// the budget; it assumes loosely synchronized clocks (DESIGN.md §15).
	// Gob moves added fields compatibly in both directions: older peers
	// simply see (or send) zero.
	DeadlineUnixNano int64
}

func (m *TraceMeta) setTrace(sc obs.SpanContext) { m.TraceID, m.SpanID = sc.TraceID, sc.SpanID }

func (m TraceMeta) spanContext() obs.SpanContext {
	return obs.SpanContext{TraceID: m.TraceID, SpanID: m.SpanID}
}

func (m *TraceMeta) setDeadline(t time.Time) { m.DeadlineUnixNano = t.UnixNano() }

// deadline decodes the wire deadline, reporting whether one was set.
func (m TraceMeta) deadline() (time.Time, bool) {
	if m.DeadlineUnixNano == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, m.DeadlineUnixNano), true
}

// traceCarrier is what Client.call stamps: any args struct embedding
// TraceMeta implements it via the promoted pointer method.
type traceCarrier interface{ setTrace(sc obs.SpanContext) }

// deadlineCarrier is the deadline-stamping counterpart of traceCarrier.
type deadlineCarrier interface{ setDeadline(t time.Time) }

// startRPCSpan opens the server-side span of one RPC, adopting the
// caller's wire-carried trace when present and minting a fresh one
// otherwise, and returns a context carrying it for the handler body —
// bounded by the caller's propagated deadline when the meta carries one.
// The returned cancel must run when the handler finishes (it releases
// the deadline timer).
func startRPCSpan(method string, meta TraceMeta) (*obs.ActiveSpan, context.Context, context.CancelFunc) {
	span := obs.DefaultTracer().StartRemote("rpc."+method, meta.spanContext())
	ctx := obs.ContextWithSpan(context.Background(), span)
	if dl, ok := meta.deadline(); ok {
		span.Attr("deadline_ms", time.Until(dl).Milliseconds())
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		return span, ctx, cancel
	}
	return span, ctx, func() {}
}

// intercept wraps one writer RPC method body with instrumentation, panic
// recovery, and the engine serialization lock (mutations drive the
// single-threaded simulation engine, so every writer runs under the
// lock). Lock acquisition is deadline-bounded: a request that cannot
// start within the server's request timeout — e.g. queued behind a long
// Advance — fails fast with ErrBusy instead of piling up. Once a handler
// runs it is not preempted (Go offers no safe preemption), so the
// timeout bounds queueing time, not execution time. The in-flight gauge
// counts requests from arrival, i.e. including time spent queued on the
// lock. Busy rejections are observed in the latency histogram too —
// skipping them made p99 under saturation look better than reality.
func (s *Server) intercept(method string, meta TraceMeta, fn func(ctx context.Context) error) error {
	rpcInflight.Add(1)
	s.inflight.Add(1)
	defer rpcInflight.Add(-1)
	defer s.inflight.Done()
	start := time.Now()
	span, ctx, cancel := startRPCSpan(method, meta)
	defer cancel()
	// A request arriving with its deadline already spent never gets to
	// touch the engine lock — the writer queue is precious.
	if ctx.Err() != nil {
		return failObserved(method, span, start, deadlineError(method, ctx.Err()))
	}
	timer := time.NewTimer(s.timeout)
	defer timer.Stop()
	select {
	case s.lock <- struct{}{}:
	case <-ctx.Done():
		// The caller's deadline expired while we queued behind another
		// writer (the stalled-engine case): give up its queue slot so a
		// wedged Advance cannot pile up doomed ReportOutcome/Advance
		// requests behind it.
		return failObserved(method, span, start, deadlineError(method, ctx.Err()))
	case <-timer.C:
		queued := time.Since(start).Seconds()
		rpcBusy.Inc()
		rpcBusySeconds.Observe(queued)
		rpcRequests.With(method).Inc()
		rpcSeconds.With(method).Observe(queued)
		rpcErrors.With(method).Inc()
		err := fmt.Errorf("service: %s queued %v on the engine lock: %w", method, s.timeout, ErrBusy)
		span.Error(err).End()
		return err
	}
	err := wireDeadline(s.invoke(method, ctx, fn))
	rpcRequests.With(method).Inc()
	rpcSeconds.With(method).Observe(time.Since(start).Seconds())
	if err != nil {
		rpcErrors.With(method).Inc()
	}
	span.Error(err).End()
	return err
}

// failObserved books one request that failed before (or instead of)
// running its handler into the standard per-method metrics and closes
// its span.
func failObserved(method string, span *obs.ActiveSpan, start time.Time, err error) error {
	rpcRequests.With(method).Inc()
	rpcSeconds.With(method).Observe(time.Since(start).Seconds())
	rpcErrors.With(method).Inc()
	span.Error(err).End()
	return err
}

// deadlineError wraps a context expiry into the stable wire-coded
// deadline error.
func deadlineError(method string, cause error) error {
	rpcDeadlineExceeded.Inc()
	return fmt.Errorf("service: %s: %v: %w", method, cause, ErrDeadlineExceeded)
}

// wireDeadline rewrites raw context errors escaping a handler into the
// stable wire-coded ErrDeadlineExceeded so remote callers can match them
// after net/rpc flattening. Other errors pass through untouched.
func wireDeadline(err error) error {
	if err == nil || hasCode(err, ErrDeadlineExceeded, codeDeadline) {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		rpcDeadlineExceeded.Inc()
		return fmt.Errorf("service: %v: %w", err, ErrDeadlineExceeded)
	}
	return err
}

// interceptRead wraps one read-only RPC method body: same
// instrumentation and panic recovery as intercept, but no engine lock
// and no queueing — the body runs against the immutable published view,
// so any number of readers proceed concurrently with each other and
// with a writer assembling the next view. Under SingleLock (the legacy
// benchmark baseline) reads fall back to the serialized writer path.
func (s *Server) interceptRead(method string, meta TraceMeta, fn func(ctx context.Context) error) error {
	if s.singleLock {
		return s.intercept(method, meta, fn)
	}
	rpcInflight.Add(1)
	s.inflight.Add(1)
	defer rpcInflight.Add(-1)
	defer s.inflight.Done()
	start := time.Now()
	span, ctx, cancel := startRPCSpan(method, meta)
	defer cancel()
	if ctx.Err() != nil {
		// The propagated deadline is already spent: fail fast instead of
		// computing an answer nobody will read.
		return failObserved(method, span, start, deadlineError(method, ctx.Err()))
	}
	err := wireDeadline(s.run(method, ctx, fn))
	rpcRequests.With(method).Inc()
	rpcSeconds.With(method).Observe(time.Since(start).Seconds())
	if err != nil {
		rpcErrors.With(method).Inc()
	}
	span.Error(err).End()
	return err
}

// invoke runs the handler body holding the engine lock, releasing it on
// every exit path.
func (s *Server) invoke(method string, ctx context.Context, fn func(ctx context.Context) error) (err error) {
	defer func() { <-s.lock }()
	return s.run(method, ctx, fn)
}

// run executes a handler body, converting a panic into an error so one
// poisoned request cannot kill the daemon (net/rpc would otherwise crash
// the whole process) — and, for writers, so the engine lock is still
// released for subsequent requests.
func (s *Server) run(method string, ctx context.Context, fn func(ctx context.Context) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			rpcPanics.Inc()
			err = fmt.Errorf("service: %s: internal error (recovered panic): %v", method, p)
		}
	}()
	return fn(ctx)
}

// RPCName is the registered net/rpc service name.
const RPCName = "CBES"

// EvaluateArgs asks for an execution-time prediction of one mapping.
type EvaluateArgs struct {
	TraceMeta
	App     string
	Mapping []int
}

// EvaluateReply carries the prediction. Degraded and StaleNodes mirror
// core.Prediction: they used to be computed server-side and silently
// dropped at the RPC boundary, leaving clients unable to tell a
// profile-only fallback prediction from a fully monitored one.
type EvaluateReply struct {
	// TraceID echoes the server-side trace of this request (hex), so the
	// caller can pull /debug/trace?id=... or filter decision records.
	TraceID  string
	Seconds  float64
	Critical int // rank attaining the per-segment max in the first segment
	// Degraded reports that at least one mapped node's monitoring data was
	// stale, so the prediction used profile-only fallback values.
	Degraded bool
	// StaleNodes lists the mapped nodes that triggered the fallback.
	StaleNodes []int
	// Brownout reports that the server was shedding load and answered
	// from the profile-only fast path (nominal resource conditions,
	// monitoring ignored) instead of rejecting — a cheaper, explicitly
	// labeled answer (DESIGN.md §15). Brownout replies carry no
	// PredictionID: their systematic bias must not feed calibration.
	Brownout bool
	// PredictionID keys this prediction in the accuracy ledger; reporting
	// the measured runtime back via ReportOutcome joins the pair and feeds
	// the calibration statistics (DESIGN.md §12).
	PredictionID string
	// ErrBand* annotate the prediction with the empirical signed
	// relative-error band (percent, roughly p10..p90) of its calibration
	// bucket — (app, scheduler, degraded, snapshot-age) — measured from
	// previously joined outcomes. ErrBandSamples == 0 means no band yet.
	ErrBandLowPct  float64
	ErrBandHighPct float64
	ErrBandSamples int
}

// ExplainArgs asks for a human-readable prediction breakdown.
type ExplainArgs struct {
	TraceMeta
	App     string
	Mapping []int
}

// ExplainReply carries the rendered breakdown.
type ExplainReply struct {
	TraceID string // hex server-side trace ID (see EvaluateReply)
	Seconds float64
	Text    string
}

// CompareArgs asks for predictions of several candidate mappings.
type CompareArgs struct {
	TraceMeta
	App      string
	Mappings [][]int
}

// CompareReply carries per-candidate predictions and the fastest index.
// Degraded and StaleNodes are per-mapping, aligned with Seconds.
type CompareReply struct {
	TraceID string // hex server-side trace ID (see EvaluateReply)
	Seconds []float64
	Best    int
	// Degraded[i] reports whether mapping i's prediction fell back to
	// profile-only values for stale nodes.
	Degraded []bool
	// StaleNodes[i] lists mapping i's stale nodes (nil when none).
	StaleNodes [][]int
	// Brownout reports that the whole batch was answered from the
	// profile-only fast path because the server was shedding load
	// (see EvaluateReply.Brownout); PredictionIDs stay empty.
	Brownout bool
	// PredictionIDs[i] is mapping i's accuracy-ledger key, aligned with
	// Seconds — report whichever candidate actually ran.
	PredictionIDs []string
	// ErrBand* describe the winning candidate's calibration bucket (see
	// EvaluateReply).
	ErrBandLowPct  float64
	ErrBandHighPct float64
	ErrBandSamples int
}

// ScheduleArgs asks the service to find a mapping.
type ScheduleArgs struct {
	TraceMeta
	App       string
	Algorithm string // "cs", "ncs", "rs", "ga"
	Pool      []int
	Seed      int64
	// Effort caps the search's energy evaluations; 0 selects the server
	// default. The cost/benefit knob: a caller in a hurry (or paying for
	// estimating service by the evaluation) bounds the search it buys.
	// Older clients send 0 via gob and keep the default.
	Effort int
}

// ScheduleReply carries the chosen mapping.
type ScheduleReply struct {
	// TraceID is the hex trace ID of the server-side causal tree for THIS
	// request. A coalesced follower reports its own trace here; the trace
	// that ran the shared search is in its decision record's LeaderTraceID.
	TraceID     string
	Mapping     []int
	Predicted   float64
	Evaluations int
	// SchedulerMillis is the search wall time in milliseconds. Kept for
	// compatibility with older clients, but it truncates fast-path runs
	// (often sub-millisecond) to 0 — prefer SchedulerMicros.
	SchedulerMillis int64
	// SchedulerMicros is the search wall time in microseconds.
	SchedulerMicros int64
	// Degraded reports that the chosen mapping's prediction rests on
	// profile-only fallback values for the listed StaleNodes — the client
	// may want a second opinion once monitoring recovers.
	Degraded   bool
	StaleNodes []int
	// PredictionID and the ErrBand* fields mirror EvaluateReply: the
	// ledger key to report the measured runtime against, and the bucket's
	// empirical signed-error band.
	PredictionID   string
	ErrBandLowPct  float64
	ErrBandHighPct float64
	ErrBandSamples int
}

// DecisionsArgs queries the decision flight recorder (DESIGN.md §11).
// Zero-valued filters match everything; N bounds the result to the N
// most recent matches.
type DecisionsArgs struct {
	TraceMeta
	N       int
	Kind    string // "schedule", "evaluate", "explain", "compare"
	App     string
	TraceID string // hex, as echoed in replies
}

// DecisionsReply carries matching records (newest first) and the
// recorder's lifetime total (so a caller can tell "no matches" from
// "recorder empty").
type DecisionsReply struct {
	Decisions []obs.Decision
	Total     uint64
}

// ReportOutcomeArgs joins a measured runtime back to a served prediction
// by its PredictionID, closing the predicted-vs-actual feedback loop
// (DESIGN.md §12). The join is one-shot: a second report for the same ID
// fails.
type ReportOutcomeArgs struct {
	TraceMeta
	PredictionID  string
	ActualSeconds float64
}

// ReportOutcomeReply echoes the joined pair and the resulting error.
type ReportOutcomeReply struct {
	App          string
	Scheduler    string
	Predicted    float64
	Actual       float64
	SignedErrPct float64 // (predicted−actual)/actual×100; positive = over-prediction
	AbsErrPct    float64
	// CalibrationOK is the drift detector's verdict after folding this
	// outcome in.
	CalibrationOK bool
}

// AccuracyArgs queries the accuracy ledger. Empty filters match every
// calibration bucket; Samples bounds the joined-pair list (<= 0 returns
// all resident pairs).
type AccuracyArgs struct {
	TraceMeta
	App       string
	Scheduler string
	Samples   int
}

// AccuracyReply carries the ledger status, the per-bucket calibration
// statistics, and recent joined predicted-vs-actual pairs.
type AccuracyReply struct {
	Status  accuracy.Status
	Buckets []accuracy.BucketStats
	Samples []accuracy.Sample
}

// Metrics formats accepted by the Metrics RPC.
const (
	FormatPrometheus = "prom" // Prometheus text exposition (the default)
	FormatJSON       = "json" // expvar-style JSON snapshot
)

// MetricsArgs selects the exposition format.
type MetricsArgs struct {
	Format string // FormatPrometheus (default) or FormatJSON
}

// MetricsReply carries the rendered metrics.
type MetricsReply struct {
	Text string
}

// StatusArgs requests service status.
type StatusArgs struct{ TraceMeta }

// StatusReply describes the service state.
type StatusReply struct {
	Cluster    string
	Nodes      int
	Apps       []string
	SimSeconds float64
	AvailCPU   []float64
	NICUtil    []float64
	// Epoch is the snapshot epoch of the published read-path view; it
	// advances whenever the monitored state changes (DESIGN.md §10).
	Epoch uint64
}

// AdvanceArgs moves simulated time forward (demo control).
type AdvanceArgs struct {
	TraceMeta
	Seconds float64
}

// AdvanceReply reports the new simulated time and the snapshot epoch of
// the view republished by the advance.
type AdvanceReply struct {
	SimSeconds float64
	Epoch      uint64
}

// DefaultRequestTimeout bounds how long a request may queue on the engine
// lock before failing fast with ErrBusy.
const DefaultRequestTimeout = 30 * time.Second

// Server serves CBES requests for one System under a single-writer /
// many-reader regime (DESIGN.md §10). Reads — Evaluate, Explain,
// Compare, Schedule, Status — run lock-free against the immutable
// published view; only Advance (and view republication) holds the
// engine lock, because only it drives the single-threaded simulation
// engine. Metrics reads atomics and bypasses both paths.
type Server struct {
	sys *cbes.System
	// lock is the engine serialization lock (writers only). A 1-slot
	// channel rather than a sync.Mutex so acquisition can race a deadline
	// (see intercept).
	lock    chan struct{}
	timeout time.Duration
	// inflight tracks requests (not connections) for shutdown draining.
	inflight sync.WaitGroup
	// view is the epoch-stamped immutable state the read path runs
	// against; the writer republishes it after every mutation.
	view atomic.Pointer[view]
	// cache memoizes predictions by (app, mapping, epoch); nil disables.
	cache *predCache
	// flights coalesces concurrent identical Schedule requests.
	flights flightGroup
	// singleLock routes reads through the writer lock and disables the
	// cache — the pre-sharding behaviour, kept for A/B benchmarking.
	singleLock bool
	// rec is the decision flight recorder (DESIGN.md §11).
	rec *obs.Recorder
	// led is the prediction-accuracy ledger every served prediction
	// registers with (DESIGN.md §12).
	led *accuracy.Ledger
	// lim is the adaptive admission limiter (DESIGN.md §15); nil disables
	// admission control and brownout entirely.
	lim *admission.Limiter
	// brown caches profile-only brownout predictions keyed without an
	// epoch (they depend only on profile + topology, so they stay valid
	// for the process lifetime). Metric-silent: its hits and misses must
	// not pollute the epoch cache's hit-rate series.
	brown *predCache
}

// NewServer wraps a System with the default request timeout and cache
// size, and publishes the initial read-path view. The System's profiles
// must be registered before NewServer (RPC cannot add apps, so the view
// never needs to learn new evaluators).
func NewServer(sys *cbes.System) *Server {
	s := &Server{
		sys:     sys,
		lock:    make(chan struct{}, 1),
		timeout: DefaultRequestTimeout,
		cache:   newPredCache(DefaultCacheSize),
		rec:     obs.DefaultRecorder(),
		led:     accuracy.Default(),
		brown:   newBrownCache(DefaultCacheSize),
	}
	s.refreshView()
	return s
}

// SetAdmission installs the adaptive admission limiter; nil (the
// NewServer default) disables admission control and brownout — every
// request is admitted for full service. Must be called before the
// server starts handling requests.
func (s *Server) SetAdmission(l *admission.Limiter) { s.lim = l }

// SetRequestTimeout overrides the engine-lock queueing bound. Must be
// called before the server starts handling requests.
func (s *Server) SetRequestTimeout(d time.Duration) {
	if d > 0 {
		s.timeout = d
	}
}

// SetCacheCapacity resizes the prediction cache (dropping its contents);
// n <= 0 disables caching. Must be called before the server starts
// handling requests.
func (s *Server) SetCacheCapacity(n int) {
	if n <= 0 {
		s.cache = nil
		return
	}
	s.cache = newPredCache(n)
}

// SetSingleLock selects the legacy single-lock path: every request,
// reads included, serializes through the engine lock, and the prediction
// cache and Schedule coalescing are disabled. Exists so the service
// benchmark can measure the sharded read path against its predecessor;
// production callers should never enable it. Must be called before the
// server starts handling requests.
func (s *Server) SetSingleLock(on bool) {
	s.singleLock = on
	if on {
		s.cache = nil
	}
}

// fillDegraded copies a prediction's degraded-mode markers into reply
// fields. The StaleNodes copy matters: cached predictions are shared
// read-only across requests and net/rpc encodes replies concurrently.
func fillDegraded(pred *core.Prediction, degraded *bool, stale *[]int) {
	*degraded = pred.Degraded
	if len(pred.StaleNodes) > 0 {
		*stale = append([]int(nil), pred.StaleNodes...)
	}
}

// beginPrediction registers one served prediction with the accuracy
// ledger and returns its ID plus its calibration-bucket key (for the
// reply's error-band annotation). Invalid predictions (non-positive
// seconds) are not registered. Cheap enough for the hot path: one short
// ledger mutex section, comparable to a prediction-cache probe.
func (s *Server) beginPrediction(ctx context.Context, v *view, app, scheduler string, mapping []int, predicted float64, degraded bool) (string, accuracy.Key) {
	k := accuracy.Key{
		App:       app,
		Scheduler: scheduler,
		Degraded:  degraded,
		AgeBucket: accuracy.AgeBucket(v.snap.MaxAge(mapping)),
	}
	if !(predicted > 0) {
		return "", k
	}
	id := s.led.Begin(accuracy.Prediction{
		App: app, Scheduler: scheduler, Degraded: degraded,
		AgeBucket: k.AgeBucket, Epoch: v.epoch, Predicted: predicted,
		TraceID: obs.FormatID(obs.TraceIDFromContext(ctx)),
	})
	obs.SpanFromContext(ctx).Attr("prediction_id", id)
	return id, k
}

// fillBand copies a calibration band onto reply fields.
func fillBand(b accuracy.Band, lo, hi *float64, n *int) {
	*lo, *hi, *n = b.LowPct, b.HighPct, b.Samples
}

// Evaluate predicts the execution time of one mapping. Lock-free: served
// from the published view through the prediction cache.
func (s *Server) Evaluate(args *EvaluateArgs, reply *EvaluateReply) error {
	return s.interceptRead("Evaluate", args.TraceMeta, func(ctx context.Context) (err error) {
		v := s.view.Load()
		d := obs.Decision{
			TraceID: obs.FormatID(obs.TraceIDFromContext(ctx)),
			Kind:    "evaluate", App: args.App, Epoch: v.epoch,
		}
		defer func() { s.record(&d, err) }()
		eval, err := v.evaluator(args.App)
		if err != nil {
			return err
		}
		pred, hit, shed, err := s.predictAdmitted(ctx, v, args.App, eval, core.Mapping(args.Mapping))
		d.CacheLookups = 1
		if hit {
			d.CacheHits = 1
		}
		if err != nil {
			return err
		}
		if shed {
			// Brownout: the limiter refused the full-service compute, so
			// answer from the profile-only fast path — a labeled cheaper
			// answer instead of a rejection (DESIGN.md §15).
			d.Shed = true
			pred, err = s.predictBrownoutCached(ctx, eval, args.App, core.Mapping(args.Mapping))
			if err != nil {
				return err
			}
			d.Brownout = true
			brownoutServed.Inc()
			reply.TraceID = d.TraceID
			reply.Seconds = pred.Seconds
			if len(pred.Segments) > 0 {
				reply.Critical = pred.Segments[0].Critical
			}
			reply.Brownout = true
			d.Mapping = args.Mapping
			d.Predicted = pred.Seconds
			return nil
		}
		reply.TraceID = d.TraceID
		reply.Seconds = pred.Seconds
		if len(pred.Segments) > 0 {
			reply.Critical = pred.Segments[0].Critical
		}
		fillDegraded(pred, &reply.Degraded, &reply.StaleNodes)
		id, k := s.beginPrediction(ctx, v, args.App, "", args.Mapping, pred.Seconds, pred.Degraded)
		reply.PredictionID = id
		fillBand(s.led.BandFor(k), &reply.ErrBandLowPct, &reply.ErrBandHighPct, &reply.ErrBandSamples)
		d.Mapping = args.Mapping
		d.Predicted = pred.Seconds
		d.PredictionID = id
		d.Degraded, d.StaleNodes = reply.Degraded, reply.StaleNodes
		return nil
	})
}

// record finalizes one decision record: stamps the error (forensics
// wants the denials too) and hands it to the flight recorder.
func (s *Server) record(d *obs.Decision, err error) {
	if err != nil {
		d.Err = err.Error()
	}
	s.rec.Record(*d)
}

// Explain predicts one mapping and returns the per-process breakdown.
func (s *Server) Explain(args *ExplainArgs, reply *ExplainReply) error {
	return s.interceptRead("Explain", args.TraceMeta, func(ctx context.Context) (err error) {
		v := s.view.Load()
		d := obs.Decision{
			TraceID: obs.FormatID(obs.TraceIDFromContext(ctx)),
			Kind:    "explain", App: args.App, Epoch: v.epoch,
		}
		defer func() { s.record(&d, err) }()
		eval, err := v.evaluator(args.App)
		if err != nil {
			return err
		}
		pred, hit, err := s.predictCached(ctx, v, args.App, eval, core.Mapping(args.Mapping))
		d.CacheLookups = 1
		if hit {
			d.CacheHits = 1
		}
		if err != nil {
			return err
		}
		reply.TraceID = d.TraceID
		reply.Seconds = pred.Seconds
		reply.Text = pred.Explain(s.sys.Topo)
		d.Mapping = args.Mapping
		d.Predicted = pred.Seconds
		d.Degraded, d.StaleNodes = pred.Degraded, pred.StaleNodes
		return nil
	})
}

// Compare predicts several mappings and selects the fastest. Each
// candidate is served through the prediction cache individually, so a
// batch repeated across clients costs one evaluation per novel mapping
// per epoch.
func (s *Server) Compare(args *CompareArgs, reply *CompareReply) error {
	return s.interceptRead("Compare", args.TraceMeta, func(ctx context.Context) (err error) {
		v := s.view.Load()
		d := obs.Decision{
			TraceID: obs.FormatID(obs.TraceIDFromContext(ctx)),
			Kind:    "compare", App: args.App, Epoch: v.epoch,
		}
		defer func() { s.record(&d, err) }()
		if len(args.Mappings) == 0 {
			return fmt.Errorf("service: no mappings")
		}
		eval, err := v.evaluator(args.App)
		if err != nil {
			return err
		}
		if s.lim != nil {
			// One expensive-class slot covers the whole batch (per-candidate
			// slots would let a wide Compare starve everyone else). Shed →
			// the brownout path answers the batch from the profile-only
			// fast path instead.
			tk, aerr := s.lim.Acquire(ctx, admission.Expensive)
			if aerr != nil {
				if errors.Is(aerr, admission.ErrShed) {
					return s.brownoutCompare(ctx, &d, eval, args, reply)
				}
				return aerr
			}
			defer s.lim.Release(tk)
		}
		reply.Seconds = make([]float64, len(args.Mappings))
		reply.Degraded = make([]bool, len(args.Mappings))
		reply.StaleNodes = make([][]int, len(args.Mappings))
		reply.PredictionIDs = make([]string, len(args.Mappings))
		keys := make([]accuracy.Key, len(args.Mappings))
		// NaN-aware best selection, mirroring core.Evaluator.Compare: a NaN
		// prediction (corrupt profile or model) must never win by making
		// every comparison false.
		best := -1
		for i, m := range args.Mappings {
			pred, hit, err := s.predictCached(ctx, v, args.App, eval, core.Mapping(m))
			d.CacheLookups++
			if hit {
				d.CacheHits++
			}
			if err != nil {
				return err
			}
			reply.Seconds[i] = pred.Seconds
			fillDegraded(pred, &reply.Degraded[i], &reply.StaleNodes[i])
			reply.PredictionIDs[i], keys[i] = s.beginPrediction(ctx, v, args.App, "", m, pred.Seconds, pred.Degraded)
			if math.IsNaN(pred.Seconds) {
				continue
			}
			if best < 0 || pred.Seconds < reply.Seconds[best] {
				best = i
			}
		}
		if best < 0 {
			best = 0 // every candidate NaN: keep the legacy fallback
		}
		reply.TraceID = d.TraceID
		reply.Best = best
		fillBand(s.led.BandFor(keys[best]), &reply.ErrBandLowPct, &reply.ErrBandHighPct, &reply.ErrBandSamples)
		d.Mapping = args.Mappings[best]
		d.Predicted = reply.Seconds[best]
		d.PredictionID = reply.PredictionIDs[best]
		d.Degraded, d.StaleNodes = reply.Degraded[best], reply.StaleNodes[best]
		return nil
	})
}

// brownoutCompare answers a shed Compare batch from the profile-only
// fast path: every candidate is predicted against nominal conditions
// (cache-assisted, computed under the cheap admission lane) and the
// whole reply is labeled Brownout. The ranking is still useful — the
// profile-only cost function is exactly the one degraded predictions
// use — but no candidate registers with the accuracy ledger.
func (s *Server) brownoutCompare(ctx context.Context, d *obs.Decision, eval *core.Evaluator, args *CompareArgs, reply *CompareReply) error {
	d.Shed = true
	reply.Seconds = make([]float64, len(args.Mappings))
	reply.Degraded = make([]bool, len(args.Mappings))
	reply.StaleNodes = make([][]int, len(args.Mappings))
	reply.PredictionIDs = nil // no ledger registration under brownout
	best := -1
	for i, m := range args.Mappings {
		pred, err := s.predictBrownoutCached(ctx, eval, args.App, core.Mapping(m))
		if err != nil {
			return err
		}
		reply.Seconds[i] = pred.Seconds
		if math.IsNaN(pred.Seconds) {
			continue
		}
		if best < 0 || pred.Seconds < reply.Seconds[best] {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	d.Brownout = true
	brownoutServed.Inc()
	reply.TraceID = d.TraceID
	reply.Best = best
	reply.Brownout = true
	d.Mapping = args.Mappings[best]
	d.Predicted = reply.Seconds[best]
	return nil
}

// Schedule finds a mapping with the requested algorithm. Lock-free, and
// coalesced: concurrent requests with identical (app, algorithm, pool,
// seed) against the same epoch share one search — scheduling is
// deterministic in those inputs, so every follower receives the leader's
// decision, verbatim.
func (s *Server) Schedule(args *ScheduleArgs, reply *ScheduleReply) error {
	return s.interceptRead("Schedule", args.TraceMeta, func(ctx context.Context) error {
		v := s.view.Load()
		if s.singleLock {
			return s.scheduleOn(ctx, v, args, reply)
		}
		val, joined, err := s.flights.do(ctx, scheduleKey(v.epoch, args), func() (any, error) {
			// Admission inside the flight: followers ride the leader's
			// slot for free (a joined search costs nothing extra), and a
			// shed leader propagates ErrShed to every waiting follower.
			if s.lim != nil {
				tk, aerr := s.lim.Acquire(ctx, admission.Expensive)
				if aerr != nil {
					return nil, aerr
				}
				defer s.lim.Release(tk)
			}
			var r ScheduleReply
			if err := s.scheduleOn(ctx, v, args, &r); err != nil {
				return nil, err
			}
			return &r, nil
		})
		if joined {
			scheduleCoalesced.Inc()
		}
		if err != nil {
			if IsShed(err) {
				// The limiter refused the search before scheduleOn could
				// record anything; log the refusal so `cbesctl decisions`
				// shows why this request got no mapping. Schedule has no
				// brownout: a mapping nobody searched for is not a cheaper
				// answer, it is a wrong one.
				s.rec.Record(obs.Decision{
					TraceID: obs.FormatID(obs.TraceIDFromContext(ctx)),
					Kind:    "schedule", App: args.App,
					Algorithm: args.Algorithm, Seed: args.Seed, Epoch: v.epoch,
					Coalesced: joined, Shed: true, Err: err.Error(),
				})
			}
			return err
		}
		*reply = *val.(*ScheduleReply) // shared backing arrays, read-only
		if joined {
			// The follower's causal story is its own: its trace shows a
			// coalesced join, and its decision record names the leader's
			// trace — the one the shared search actually ran under. The
			// prediction ID is its own too: a ledger join is one-shot, and
			// each follower may independently run (and report) the mapping.
			leader := reply.TraceID
			reply.TraceID = obs.FormatID(obs.TraceIDFromContext(ctx))
			obs.SpanFromContext(ctx).
				Attr("coalesced", true).
				Attr("leader_trace", leader)
			id, k := s.beginPrediction(ctx, v, args.App, args.Algorithm, reply.Mapping, reply.Predicted, reply.Degraded)
			reply.PredictionID = id
			fillBand(s.led.BandFor(k), &reply.ErrBandLowPct, &reply.ErrBandHighPct, &reply.ErrBandSamples)
			s.rec.Record(obs.Decision{
				TraceID: reply.TraceID, Kind: "schedule", App: args.App,
				Algorithm: args.Algorithm, Seed: args.Seed, Epoch: v.epoch,
				Coalesced: true, LeaderTraceID: leader,
				Degraded: reply.Degraded, StaleNodes: reply.StaleNodes,
				Mapping: reply.Mapping, Predicted: reply.Predicted,
				Evaluations: reply.Evaluations, SchedulerMicros: reply.SchedulerMicros,
				PredictionID: id,
			})
		}
		return nil
	})
}

// scheduleKey builds the Schedule coalescing key. The epoch is part of
// it: two identical requests straddling a state transition must not
// share a decision.
func scheduleKey(epoch uint64, args *ScheduleArgs) string {
	var sb strings.Builder
	sb.Grow(len(args.App) + len(args.Algorithm) + 12*len(args.Pool) + 24)
	sb.WriteString(args.App)
	sb.WriteByte(0)
	sb.WriteString(args.Algorithm)
	fmt.Fprintf(&sb, "\x00%d\x00%d\x00%d\x00", args.Seed, epoch, args.Effort)
	for _, n := range args.Pool {
		fmt.Fprintf(&sb, "%d,", n)
	}
	return sb.String()
}

// scheduleOn runs one scheduling search against a view and fills the
// reply, including the degraded-prediction markers for the chosen
// mapping (a cache hit in the common case — the search just evaluated
// it).
func (s *Server) scheduleOn(ctx context.Context, v *view, args *ScheduleArgs, reply *ScheduleReply) (err error) {
	d := obs.Decision{
		TraceID: obs.FormatID(obs.TraceIDFromContext(ctx)),
		Kind:    "schedule", App: args.App,
		Algorithm: args.Algorithm, Seed: args.Seed, Epoch: v.epoch,
	}
	defer func() { s.record(&d, err) }()
	eval, err := v.evaluator(args.App)
	if err != nil {
		return err
	}
	dec, err := cbes.ScheduleOnCtxEffort(ctx, eval, v.snap, cbes.Algorithm(args.Algorithm), args.Pool, args.Seed, args.Effort)
	if err != nil {
		return err
	}
	reply.TraceID = d.TraceID
	reply.Mapping = []int(dec.Mapping)
	reply.Predicted = dec.Predicted
	reply.Evaluations = dec.Evaluations
	reply.SchedulerMillis = dec.SchedulerTime.Milliseconds()
	reply.SchedulerMicros = dec.SchedulerTime.Microseconds()
	if pred, hit, err := s.predictCached(ctx, v, args.App, eval, dec.Mapping); err == nil {
		fillDegraded(pred, &reply.Degraded, &reply.StaleNodes)
		d.CacheLookups = 1
		if hit {
			d.CacheHits = 1
		}
	}
	id, k := s.beginPrediction(ctx, v, args.App, args.Algorithm, reply.Mapping, reply.Predicted, reply.Degraded)
	reply.PredictionID = id
	fillBand(s.led.BandFor(k), &reply.ErrBandLowPct, &reply.ErrBandHighPct, &reply.ErrBandSamples)
	d.Mapping = reply.Mapping
	d.Predicted = reply.Predicted
	d.Evaluations = reply.Evaluations
	d.SchedulerMicros = reply.SchedulerMicros
	d.PredictionID = id
	d.Degraded, d.StaleNodes = reply.Degraded, reply.StaleNodes
	return nil
}

// Status reports the service and cluster state from the published view.
func (s *Server) Status(args *StatusArgs, reply *StatusReply) error {
	return s.interceptRead("Status", args.TraceMeta, func(_ context.Context) error {
		v := s.view.Load()
		reply.Cluster = v.cluster
		reply.Nodes = v.nodes
		reply.Apps = v.apps
		reply.SimSeconds = v.simSeconds
		reply.AvailCPU = v.snap.AvailCPU
		reply.NICUtil = v.snap.NICUtil
		reply.Epoch = v.epoch
		return nil
	})
}

// Advance moves simulated time forward so monitors resample. The only
// writer: it holds the engine lock for the simulation run and
// republishes the read-path view (snapshot, epoch, sim time) before
// releasing it, so a read issued after an Advance returns always sees
// the post-advance state.
func (s *Server) Advance(args *AdvanceArgs, reply *AdvanceReply) error {
	return s.intercept("Advance", args.TraceMeta, func(_ context.Context) error {
		if args.Seconds < 0 {
			return fmt.Errorf("service: negative advance")
		}
		s.sys.Advance(des.FromSeconds(args.Seconds))
		s.refreshView()
		v := s.view.Load()
		reply.SimSeconds = v.simSeconds
		reply.Epoch = v.epoch
		return nil
	})
}

// Decisions queries the decision flight recorder: the most recent
// matching records, newest first (DESIGN.md §11). Lock-free like the
// other reads — the recorder has its own short-held mutex.
func (s *Server) Decisions(args *DecisionsArgs, reply *DecisionsReply) error {
	return s.interceptRead("Decisions", args.TraceMeta, func(_ context.Context) error {
		reply.Decisions = s.rec.Decisions(obs.DecisionQuery{
			N: args.N, Kind: args.Kind, App: args.App, TraceID: args.TraceID,
		})
		reply.Total = s.rec.Total()
		return nil
	})
}

// ReportOutcome joins a measured runtime back to a served prediction,
// folding the error into the calibration statistics (DESIGN.md §12).
// Lock-free: the ledger has its own short-held mutex. The join is
// recorded in the decision flight recorder as kind "outcome", so the
// forensic trail covers both halves of the predicted-vs-actual pair.
func (s *Server) ReportOutcome(args *ReportOutcomeArgs, reply *ReportOutcomeReply) error {
	return s.interceptRead("ReportOutcome", args.TraceMeta, func(ctx context.Context) (err error) {
		span, _ := obs.StartSpan(ctx, "accuracy.join")
		defer func() { span.Error(err).End() }()
		span.Attr("prediction_id", args.PredictionID)
		d := obs.Decision{
			TraceID:      obs.FormatID(obs.TraceIDFromContext(ctx)),
			Kind:         "outcome",
			PredictionID: args.PredictionID, Actual: args.ActualSeconds,
		}
		defer func() { s.record(&d, err) }()
		sample, err := s.led.Report(args.PredictionID, args.ActualSeconds)
		if err != nil {
			return err
		}
		d.App = sample.App
		d.Predicted = sample.Predicted
		span.Attr("abs_err_pct", sample.AbsErrPct)
		reply.App = sample.App
		reply.Scheduler = sample.Scheduler
		reply.Predicted = sample.Predicted
		reply.Actual = sample.Actual
		reply.SignedErrPct = sample.SignedErrPct
		reply.AbsErrPct = sample.AbsErrPct
		reply.CalibrationOK = s.led.CalibrationOK()
		return nil
	})
}

// Accuracy reports the ledger's calibration statistics: overall status
// (counters + drift state), per-bucket stats, and recent joined pairs.
func (s *Server) Accuracy(args *AccuracyArgs, reply *AccuracyReply) error {
	return s.interceptRead("Accuracy", args.TraceMeta, func(_ context.Context) error {
		reply.Status = s.led.Status()
		reply.Buckets = s.led.Stats(accuracy.StatsQuery{App: args.App, Scheduler: args.Scheduler})
		reply.Samples = s.led.Samples(args.Samples)
		return nil
	})
}

// Metrics renders the process metrics registry. Unlike every other
// method it does not take the engine lock: the registry is atomic, and a
// scrape must not queue behind a long-running Schedule.
func (s *Server) Metrics(args *MetricsArgs, reply *MetricsReply) error {
	rpcInflight.Add(1)
	s.inflight.Add(1)
	defer rpcInflight.Add(-1)
	defer s.inflight.Done()
	start := time.Now()
	defer func() {
		rpcRequests.With("Metrics").Inc()
		rpcSeconds.With("Metrics").Observe(time.Since(start).Seconds())
	}()
	switch args.Format {
	case "", FormatPrometheus:
		var buf bytes.Buffer
		obs.Default().WritePrometheus(&buf)
		reply.Text = buf.String()
	case FormatJSON:
		raw, err := json.MarshalIndent(obs.Default().Snapshot(), "", "  ")
		if err != nil {
			rpcErrors.With("Metrics").Inc()
			return err
		}
		reply.Text = string(raw)
	default:
		rpcErrors.With("Metrics").Inc()
		return fmt.Errorf("service: unknown metrics format %q (want %q or %q)",
			args.Format, FormatPrometheus, FormatJSON)
	}
	return nil
}

// ServeOptions tunes ServeWith. The zero value selects sane defaults.
type ServeOptions struct {
	// MaxClients bounds concurrently served connections; further accepts
	// wait (TCP backlog backpressure) until a slot frees. Default 64.
	MaxClients int
	// DrainTimeout bounds how long shutdown waits for in-flight requests
	// to finish before force-closing connections. Default 5s.
	DrainTimeout time.Duration
	// RequestTimeout bounds engine-lock queueing per request (ErrBusy on
	// expiry). Default DefaultRequestTimeout.
	RequestTimeout time.Duration
	// CacheSize bounds the prediction cache: 0 selects DefaultCacheSize,
	// negative disables caching.
	CacheSize int
	// SingleLock serializes every request through the engine lock and
	// disables the prediction cache and Schedule coalescing — the
	// pre-sharding behaviour, kept for A/B benchmarking only.
	SingleLock bool
	// MaxInflight pins the admission limiter's concurrency limit: > 0
	// fixes both the initial and maximum limit (AIMD may still shrink it
	// under latency pressure), 0 selects the adaptive defaults, and a
	// negative value disables admission control entirely (equivalent to
	// DisableAdmission).
	MaxInflight int
	// AdmissionTarget is the p99 latency the limiter steers toward
	// (default 500ms).
	AdmissionTarget time.Duration
	// DisableAdmission turns off the limiter and brownout mode — every
	// request is admitted for full service. The unprotected control for
	// overload experiments.
	DisableAdmission bool
	// Limiter, when non-nil, is installed instead of constructing one
	// from MaxInflight/AdmissionTarget — so a daemon can keep the handle
	// for readiness reporting (cbesd's /readyz shed-rate warning).
	Limiter *admission.Limiter
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.MaxClients <= 0 {
		o.MaxClients = 64
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	return o
}

// Serve accepts connections on l until the listener closes. It blocks.
// A deliberate close of the listener (the daemon's shutdown path) is a
// clean exit and returns nil; any other accept failure is returned.
// Equivalent to ServeWith with default options.
func Serve(sys *cbes.System, l net.Listener) error {
	return ServeWith(sys, l, ServeOptions{})
}

// ServeWith is Serve with explicit limits. Unlike the naive accept loop it
// (a) bounds the number of concurrently served connections, (b) tracks
// every open connection, and (c) drains on shutdown: once the listener
// closes, it waits up to DrainTimeout for in-flight requests to complete,
// lets replies flush, then force-closes whatever connections remain (idle
// keep-alive clients would otherwise pin their handler goroutines, and the
// old code leaked them outright). It returns only after every connection
// goroutine has exited or the drain budget is exhausted.
func ServeWith(sys *cbes.System, l net.Listener, opts ServeOptions) error {
	opts = opts.withDefaults()
	impl := NewServer(sys)
	impl.SetRequestTimeout(opts.RequestTimeout)
	if opts.CacheSize != 0 {
		impl.SetCacheCapacity(opts.CacheSize)
	}
	if opts.SingleLock {
		impl.SetSingleLock(true)
	}
	if !opts.DisableAdmission && opts.MaxInflight >= 0 {
		lim := opts.Limiter
		if lim == nil {
			lim = admission.New(admission.Config{
				Initial:   opts.MaxInflight,
				Max:       opts.MaxInflight,
				TargetP99: opts.AdmissionTarget,
			})
		}
		impl.SetAdmission(lim)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(RPCName, impl); err != nil {
		return err
	}

	var (
		sem    = make(chan struct{}, opts.MaxClients)
		connMu sync.Mutex
		conns  = map[net.Conn]struct{}{}
		wg     sync.WaitGroup
	)
	var acceptErr error
	for {
		conn, err := l.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		sem <- struct{}{} // client-concurrency bound: backpressure on accept
		rpcConnections.Inc()
		rpcActiveConns.Add(1)
		connMu.Lock()
		conns[conn] = struct{}{}
		connMu.Unlock()
		wg.Add(1)
		go func(c net.Conn) {
			defer func() {
				connMu.Lock()
				delete(conns, c)
				connMu.Unlock()
				c.Close()
				rpcActiveConns.Add(-1)
				<-sem
				wg.Done()
			}()
			srv.ServeConn(c)
		}(conn)
	}

	// Drain: in-flight requests get DrainTimeout to finish...
	done := make(chan struct{})
	go func() { impl.inflight.Wait(); close(done) }()
	select {
	case <-done:
		// ...and their replies a moment to flush before we cut the wire. A
		// reply racing the close is retried by the client (methods retried
		// are idempotent), so this grace is a latency nicety, not a
		// correctness requirement.
		time.Sleep(20 * time.Millisecond)
	case <-time.After(opts.DrainTimeout):
	}
	connMu.Lock()
	for c := range conns {
		c.Close() // unblocks ServeConn's read; handler goroutine exits
	}
	connMu.Unlock()
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(opts.DrainTimeout):
		// A handler is stuck mid-request past every budget; give up rather
		// than hang shutdown. The goroutine dies with the process.
	}
	return acceptErr
}

// DefaultDialTimeout is the connection timeout of Dial.
const DefaultDialTimeout = 5 * time.Second

// RetryPolicy configures the client's handling of transient failures on
// idempotent methods: up to Max retries with exponential backoff from
// BaseDelay (capped at MaxDelay) plus jitter.
type RetryPolicy struct {
	Max       int           // retries after the first attempt (default 3)
	BaseDelay time.Duration // first backoff step (default 25ms)
	MaxDelay  time.Duration // backoff cap (default 1s)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max < 0 {
		p.Max = 0
	} else if p.Max == 0 {
		p.Max = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// delay computes the backoff before retry attempt (0-based) with full
// jitter: a uniform draw from (0, cappedExponential], so synchronized
// clients spread out instead of thundering back together.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return time.Duration(1 + rand.Int63n(int64(d)))
}

// Client is a typed CBES RPC client. Idempotent methods (everything except
// Advance, which mutates simulated time) transparently retry transient
// failures — connection loss, server shutdown mid-flight, ErrBusy — with
// exponential backoff plus jitter, redialing as needed. A Client is safe
// for concurrent use.
type Client struct {
	addr        string
	dialTimeout time.Duration

	mu    sync.Mutex // guards rc across reconnects, and the knobs below
	rc    *rpc.Client
	retry RetryPolicy
	// callTimeout, when > 0, stamps every call with an absolute deadline
	// (now + callTimeout) propagated in TraceMeta; the whole retry loop
	// shares one budget. Zero (the default) propagates no deadline.
	callTimeout time.Duration
	// budget, when non-nil, bounds retry amplification (see
	// admission.RetryBudget). Nil (the default) leaves retries bounded
	// only by RetryPolicy.Max.
	budget *admission.RetryBudget
	// breaker, when non-nil, fails calls fast after consecutive
	// failures (see admission.Breaker). Nil (the default) disables it.
	breaker *admission.Breaker
}

// Dial connects to a CBES server with the default timeout.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, DefaultDialTimeout) }

// DialTimeout connects to a CBES server, waiting at most timeout for the
// connection to establish.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// DialContext connects to a CBES server under the given context (deadline
// and cancellation apply to connection establishment only, not to calls).
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	timeout := DefaultDialTimeout
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			timeout = remain
		}
	}
	return &Client{
		addr:        addr,
		dialTimeout: timeout,
		retry:       RetryPolicy{}.withDefaults(),
		rc:          rpc.NewClient(conn),
	}, nil
}

// SetRetryPolicy overrides the transient-failure retry behaviour.
// RetryPolicy{Max: -1} disables retries entirely. Safe to call
// concurrently with in-flight calls; those already started keep the
// policy they read at entry.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p.withDefaults()
}

// retryPolicy snapshots the current retry policy.
func (c *Client) retryPolicy() RetryPolicy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retry
}

// SetCallTimeout sets the per-call deadline budget: every subsequent
// call stamps now+d as an absolute deadline into its TraceMeta (the
// server abandons work past it) and the client's own retry loop stops
// at the same instant. Zero disables deadline propagation (the
// default).
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.callTimeout = d
}

// SetRetryBudget installs a retry budget shared by all calls through
// this client: retries spend tokens, successes earn fractional tokens
// back, so under persistent overload the retry rate decays to the earn
// ratio instead of multiplying offered load. Nil removes the budget.
func (c *Client) SetRetryBudget(b *admission.RetryBudget) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = b
}

// SetBreaker installs a circuit breaker: after a run of consecutive
// failures the client fails fast with ErrCircuitOpen (no wire traffic)
// until a half-open probe succeeds, keeping a struggling server's
// recovery window free of this client's traffic. Nil removes it.
func (c *Client) SetBreaker(b *admission.Breaker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.breaker = b
}

// resilience snapshots the overload-protection knobs for one call.
func (c *Client) resilience() (time.Duration, *admission.RetryBudget, *admission.Breaker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.callTimeout, c.budget, c.breaker
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rc.Close()
}

func (c *Client) conn() *rpc.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rc
}

// reconnect replaces a broken connection, best-effort: on dial failure the
// old (dead) client stays, and the next call surfaces its error.
func (c *Client) reconnect(old *rpc.Client) {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return
	}
	c.mu.Lock()
	if c.rc == old { // still the broken client we saw fail: swap in the fresh one
		c.rc.Close()
		c.rc = rpc.NewClient(conn)
		conn = nil
	}
	c.mu.Unlock()
	if conn != nil {
		// Lost a race with another caller's reconnect: keep theirs, drop ours.
		conn.Close()
	}
}

// isTransient classifies errors worth retrying: the connection died (the
// request outcome is unknown — safe to resend only idempotent methods), or
// the server reported ErrBusy/ErrShed (definitely not executed). Deadline
// errors are NOT transient: the budget that expired covers retries too.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return true
	}
	if _, ok := err.(rpc.ServerError); ok {
		return IsBusy(err) || IsShed(err)
	}
	return IsBusy(err) || IsShed(err) || errors.Is(err, net.ErrClosed)
}

// connError reports whether err indicates the underlying connection is
// unusable (vs. a server-side transient like ErrBusy).
func connError(err error) bool {
	if _, ok := err.(rpc.ServerError); ok {
		return false
	}
	return true
}

// call performs one RPC, retrying transient failures when idempotent is
// true. Non-idempotent methods (Advance, ReportOutcome) never retry: a
// lost reply leaves the outcome unknown and a resend would double-apply
// it. When a call timeout is set the absolute deadline is stamped ONCE
// and shared by every retry — queue time and earlier attempts count
// against it, so retries cannot stretch a caller's latency budget. The
// breaker is consulted before any wire traffic and told the outcome of
// every allowed call; the retry budget gates each resend.
func (c *Client) call(method string, args, reply any, idempotent bool) (err error) {
	callTimeout, budget, breaker := c.resilience()
	if berr := breaker.Allow(); berr != nil {
		clientBreakerOpen.Inc()
		return berr
	}
	// One client-side span covers the whole retry loop; its context rides
	// the wire in the args' TraceMeta, so the server-side rpc.* span (and
	// everything under it — cache, search, anneal restarts) joins THIS
	// trace. Every retry re-sends the same trace: attempts of one logical
	// call are one causal story.
	span := obs.DefaultTracer().Start("rpc.client." + method)
	if tc, ok := args.(traceCarrier); ok {
		tc.setTrace(span.Context())
	}
	var deadline time.Time
	if callTimeout > 0 {
		deadline = time.Now().Add(callTimeout)
		if dc, ok := args.(deadlineCarrier); ok {
			dc.setDeadline(deadline)
		}
	}
	attempts := 0
	defer func() {
		span.Attr("attempts", attempts).Error(err).End()
		// The breaker counts overload signals (busy/shed/deadline) and dead
		// connections alike: both mean "stop hammering this server".
		breaker.Report(err != nil && (isTransient(err) || IsDeadlineExceeded(err)))
		if err == nil {
			budget.Earn()
		}
	}()
	retry := c.retryPolicy() // one coherent policy for the whole call
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		rc := c.conn()
		err = rc.Call(RPCName+"."+method, args, reply)
		if err == nil || !idempotent || attempt >= retry.Max || !isTransient(err) {
			return err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return err // budget exhausted: surface the last real error
		}
		if !budget.Allow() {
			clientBudgetExhausted.Inc()
			return err
		}
		clientRetries.Inc()
		if connError(err) {
			c.reconnect(rc)
		}
		sleep := retry.delay(attempt)
		if !deadline.IsZero() {
			if until := time.Until(deadline); until < sleep {
				sleep = until
			}
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
	}
}

// Evaluate predicts one mapping's execution time.
func (c *Client) Evaluate(app string, mapping []int) (*EvaluateReply, error) {
	var reply EvaluateReply
	err := c.call("Evaluate", &EvaluateArgs{App: app, Mapping: mapping}, &reply, true)
	return &reply, err
}

// Explain fetches the per-process breakdown of one mapping's prediction.
func (c *Client) Explain(app string, mapping []int) (*ExplainReply, error) {
	var reply ExplainReply
	err := c.call("Explain", &ExplainArgs{App: app, Mapping: mapping}, &reply, true)
	return &reply, err
}

// Compare predicts several mappings.
func (c *Client) Compare(app string, mappings [][]int) (*CompareReply, error) {
	var reply CompareReply
	err := c.call("Compare", &CompareArgs{App: app, Mappings: mappings}, &reply, true)
	return &reply, err
}

// Schedule requests a mapping from the named algorithm. Retried on
// transient failure: scheduling is deterministic in (app, algorithm, pool,
// seed) and mutates nothing, so a resend is safe.
func (c *Client) Schedule(app, algorithm string, pool []int, seed int64) (*ScheduleReply, error) {
	return c.ScheduleEffort(app, algorithm, pool, seed, 0)
}

// ScheduleEffort is Schedule with an explicit search-effort cap (energy
// evaluations; 0 selects the server default).
func (c *Client) ScheduleEffort(app, algorithm string, pool []int, seed int64, effort int) (*ScheduleReply, error) {
	var reply ScheduleReply
	err := c.call("Schedule", &ScheduleArgs{App: app, Algorithm: algorithm, Pool: pool, Seed: seed, Effort: effort}, &reply, true)
	return &reply, err
}

// Status fetches service status.
func (c *Client) Status() (*StatusReply, error) {
	var reply StatusReply
	err := c.call("Status", &StatusArgs{}, &reply, true)
	return &reply, err
}

// Advance moves simulated time forward on the server. Never retried: the
// call is not idempotent, and resending after a lost reply would advance
// the clock twice.
func (c *Client) Advance(seconds float64) (*AdvanceReply, error) {
	var reply AdvanceReply
	err := c.call("Advance", &AdvanceArgs{Seconds: seconds}, &reply, false)
	return &reply, err
}

// Decisions queries the server's decision flight recorder: up to n most
// recent records (n <= 0 for all resident), optionally filtered by
// decision kind, application, and hex trace ID.
func (c *Client) Decisions(n int, kind, app, traceID string) (*DecisionsReply, error) {
	var reply DecisionsReply
	err := c.call("Decisions", &DecisionsArgs{N: n, Kind: kind, App: app, TraceID: traceID}, &reply, true)
	return &reply, err
}

// ReportOutcome joins a measured runtime (seconds) back to the served
// prediction identified by predictionID. Never retried: the join is
// one-shot on the server, so a resend after a lost reply would surface a
// misleading unknown-ID error for a join that actually landed.
func (c *Client) ReportOutcome(predictionID string, actualSeconds float64) (*ReportOutcomeReply, error) {
	var reply ReportOutcomeReply
	err := c.call("ReportOutcome", &ReportOutcomeArgs{PredictionID: predictionID, ActualSeconds: actualSeconds}, &reply, false)
	return &reply, err
}

// Accuracy fetches the server's prediction-accuracy ledger: status,
// per-bucket calibration stats (optionally filtered by app and
// scheduler), and up to samples recent joined pairs (<= 0 for all).
func (c *Client) Accuracy(app, scheduler string, samples int) (*AccuracyReply, error) {
	var reply AccuracyReply
	err := c.call("Accuracy", &AccuracyArgs{App: app, Scheduler: scheduler, Samples: samples}, &reply, true)
	return &reply, err
}

// Metrics fetches the server's metrics in the given format ("" or
// FormatPrometheus for text exposition, FormatJSON for JSON).
func (c *Client) Metrics(format string) (*MetricsReply, error) {
	var reply MetricsReply
	err := c.call("Metrics", &MetricsArgs{Format: format}, &reply, true)
	return &reply, err
}
