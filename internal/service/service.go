// Package service exposes CBES as a network service: external clients
// (such as schedulers or workload managers) submit mapping-comparison and
// scheduling requests over TCP using Go's net/rpc, matching the paper's
// design of a core module that "accepts mapping comparison requests from
// external clients".
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"cbes"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/obs"
)

// RPC observability: every exported method runs through intercept, which
// maintains per-method request/error counters and latency histograms
// plus a cluster-wide in-flight gauge. Method names are a fixed set, so
// label cardinality is bounded.
var (
	rpcRequests = obs.Default().CounterVec(
		"cbes_rpc_requests_total", "RPC requests served, by method.", "method")
	rpcErrors = obs.Default().CounterVec(
		"cbes_rpc_errors_total", "RPC requests that returned an error, by method.", "method")
	rpcSeconds = obs.Default().HistogramVec(
		"cbes_rpc_seconds", "RPC handler latency, by method.", nil, "method")
	rpcInflight = obs.Default().Gauge(
		"cbes_rpc_inflight", "RPC requests currently being handled (or waiting on the engine lock).")
	rpcConnections = obs.Default().Counter(
		"cbes_rpc_connections_total", "Client connections accepted.")
)

// intercept wraps one RPC method body with instrumentation and the
// engine serialization lock (the simulation engine is single-threaded by
// design, so every handler runs under s.mu). The in-flight gauge counts
// requests from arrival, i.e. including time spent queued on the lock.
func (s *Server) intercept(method string, fn func() error) error {
	rpcInflight.Add(1)
	defer rpcInflight.Add(-1)
	start := time.Now()
	s.mu.Lock()
	err := fn()
	s.mu.Unlock()
	rpcRequests.With(method).Inc()
	rpcSeconds.With(method).Observe(time.Since(start).Seconds())
	if err != nil {
		rpcErrors.With(method).Inc()
	}
	return err
}

// RPCName is the registered net/rpc service name.
const RPCName = "CBES"

// EvaluateArgs asks for an execution-time prediction of one mapping.
type EvaluateArgs struct {
	App     string
	Mapping []int
}

// EvaluateReply carries the prediction.
type EvaluateReply struct {
	Seconds  float64
	Critical int // rank attaining the per-segment max in the first segment
}

// ExplainArgs asks for a human-readable prediction breakdown.
type ExplainArgs struct {
	App     string
	Mapping []int
}

// ExplainReply carries the rendered breakdown.
type ExplainReply struct {
	Seconds float64
	Text    string
}

// CompareArgs asks for predictions of several candidate mappings.
type CompareArgs struct {
	App      string
	Mappings [][]int
}

// CompareReply carries per-candidate predictions and the fastest index.
type CompareReply struct {
	Seconds []float64
	Best    int
}

// ScheduleArgs asks the service to find a mapping.
type ScheduleArgs struct {
	App       string
	Algorithm string // "cs", "ncs", "rs", "ga"
	Pool      []int
	Seed      int64
}

// ScheduleReply carries the chosen mapping.
type ScheduleReply struct {
	Mapping     []int
	Predicted   float64
	Evaluations int
	// SchedulerMillis is the search wall time in milliseconds. Kept for
	// compatibility with older clients, but it truncates fast-path runs
	// (often sub-millisecond) to 0 — prefer SchedulerMicros.
	SchedulerMillis int64
	// SchedulerMicros is the search wall time in microseconds.
	SchedulerMicros int64
}

// Metrics formats accepted by the Metrics RPC.
const (
	FormatPrometheus = "prom" // Prometheus text exposition (the default)
	FormatJSON       = "json" // expvar-style JSON snapshot
)

// MetricsArgs selects the exposition format.
type MetricsArgs struct {
	Format string // FormatPrometheus (default) or FormatJSON
}

// MetricsReply carries the rendered metrics.
type MetricsReply struct {
	Text string
}

// StatusArgs requests service status.
type StatusArgs struct{}

// StatusReply describes the service state.
type StatusReply struct {
	Cluster    string
	Nodes      int
	Apps       []string
	SimSeconds float64
	AvailCPU   []float64
	NICUtil    []float64
}

// AdvanceArgs moves simulated time forward (demo control).
type AdvanceArgs struct {
	Seconds float64
}

// AdvanceReply reports the new simulated time.
type AdvanceReply struct {
	SimSeconds float64
}

// Server serves CBES requests for one System. All requests are serialized
// through intercept — the simulation engine is single-threaded by design —
// except Metrics, which only reads atomics and must not block behind a
// long-running Schedule.
type Server struct {
	mu  sync.Mutex
	sys *cbes.System
}

// NewServer wraps a System.
func NewServer(sys *cbes.System) *Server { return &Server{sys: sys} }

// Evaluate predicts the execution time of one mapping.
func (s *Server) Evaluate(args *EvaluateArgs, reply *EvaluateReply) error {
	return s.intercept("Evaluate", func() error {
		pred, err := s.sys.Predict(args.App, core.Mapping(args.Mapping))
		if err != nil {
			return err
		}
		reply.Seconds = pred.Seconds
		if len(pred.Segments) > 0 {
			reply.Critical = pred.Segments[0].Critical
		}
		return nil
	})
}

// Explain predicts one mapping and returns the per-process breakdown.
func (s *Server) Explain(args *ExplainArgs, reply *ExplainReply) error {
	return s.intercept("Explain", func() error {
		pred, err := s.sys.Predict(args.App, core.Mapping(args.Mapping))
		if err != nil {
			return err
		}
		reply.Seconds = pred.Seconds
		reply.Text = pred.Explain(s.sys.Topo)
		return nil
	})
}

// Compare predicts several mappings and selects the fastest.
func (s *Server) Compare(args *CompareArgs, reply *CompareReply) error {
	return s.intercept("Compare", func() error {
		if len(args.Mappings) == 0 {
			return fmt.Errorf("service: no mappings")
		}
		eval, err := s.sys.Evaluator(args.App)
		if err != nil {
			return err
		}
		ms := make([]core.Mapping, len(args.Mappings))
		for i, m := range args.Mappings {
			ms[i] = core.Mapping(m)
		}
		preds, best, err := eval.Compare(ms, s.sys.Snapshot())
		if err != nil {
			return err
		}
		reply.Seconds = make([]float64, len(preds))
		for i, p := range preds {
			reply.Seconds[i] = p.Seconds
		}
		reply.Best = best
		return nil
	})
}

// Schedule finds a mapping with the requested algorithm.
func (s *Server) Schedule(args *ScheduleArgs, reply *ScheduleReply) error {
	return s.intercept("Schedule", func() error {
		dec, err := s.sys.Schedule(args.App, cbes.Algorithm(args.Algorithm), args.Pool, args.Seed)
		if err != nil {
			return err
		}
		reply.Mapping = []int(dec.Mapping)
		reply.Predicted = dec.Predicted
		reply.Evaluations = dec.Evaluations
		reply.SchedulerMillis = dec.SchedulerTime.Milliseconds()
		reply.SchedulerMicros = dec.SchedulerTime.Microseconds()
		return nil
	})
}

// Status reports the service and cluster state.
func (s *Server) Status(_ *StatusArgs, reply *StatusReply) error {
	return s.intercept("Status", func() error {
		snap := s.sys.Snapshot()
		reply.Cluster = s.sys.Topo.Name
		reply.Nodes = s.sys.Topo.NumNodes()
		reply.Apps = s.sys.Apps()
		reply.SimSeconds = s.sys.Eng.Now().Seconds()
		reply.AvailCPU = snap.AvailCPU
		reply.NICUtil = snap.NICUtil
		return nil
	})
}

// Advance moves simulated time forward so monitors resample.
func (s *Server) Advance(args *AdvanceArgs, reply *AdvanceReply) error {
	return s.intercept("Advance", func() error {
		if args.Seconds < 0 {
			return fmt.Errorf("service: negative advance")
		}
		s.sys.Advance(des.FromSeconds(args.Seconds))
		reply.SimSeconds = s.sys.Eng.Now().Seconds()
		return nil
	})
}

// Metrics renders the process metrics registry. Unlike every other
// method it does not take the engine lock: the registry is atomic, and a
// scrape must not queue behind a long-running Schedule.
func (s *Server) Metrics(args *MetricsArgs, reply *MetricsReply) error {
	rpcInflight.Add(1)
	defer rpcInflight.Add(-1)
	start := time.Now()
	defer func() {
		rpcRequests.With("Metrics").Inc()
		rpcSeconds.With("Metrics").Observe(time.Since(start).Seconds())
	}()
	switch args.Format {
	case "", FormatPrometheus:
		var buf bytes.Buffer
		obs.Default().WritePrometheus(&buf)
		reply.Text = buf.String()
	case FormatJSON:
		raw, err := json.MarshalIndent(obs.Default().Snapshot(), "", "  ")
		if err != nil {
			rpcErrors.With("Metrics").Inc()
			return err
		}
		reply.Text = string(raw)
	default:
		rpcErrors.With("Metrics").Inc()
		return fmt.Errorf("service: unknown metrics format %q (want %q or %q)",
			args.Format, FormatPrometheus, FormatJSON)
	}
	return nil
}

// Serve accepts connections on l until the listener closes. It blocks.
// A deliberate close of the listener (the daemon's shutdown path) is a
// clean exit and returns nil; any other accept failure is returned.
func Serve(sys *cbes.System, l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(RPCName, NewServer(sys)); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		rpcConnections.Inc()
		go srv.ServeConn(conn)
	}
}

// Client is a typed CBES RPC client.
type Client struct {
	rc *rpc.Client
}

// Dial connects to a CBES server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	return &Client{rc: rpc.NewClient(conn)}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.rc.Close() }

// Evaluate predicts one mapping's execution time.
func (c *Client) Evaluate(app string, mapping []int) (*EvaluateReply, error) {
	var reply EvaluateReply
	err := c.rc.Call(RPCName+".Evaluate", &EvaluateArgs{App: app, Mapping: mapping}, &reply)
	return &reply, err
}

// Explain fetches the per-process breakdown of one mapping's prediction.
func (c *Client) Explain(app string, mapping []int) (*ExplainReply, error) {
	var reply ExplainReply
	err := c.rc.Call(RPCName+".Explain", &ExplainArgs{App: app, Mapping: mapping}, &reply)
	return &reply, err
}

// Compare predicts several mappings.
func (c *Client) Compare(app string, mappings [][]int) (*CompareReply, error) {
	var reply CompareReply
	err := c.rc.Call(RPCName+".Compare", &CompareArgs{App: app, Mappings: mappings}, &reply)
	return &reply, err
}

// Schedule requests a mapping from the named algorithm.
func (c *Client) Schedule(app, algorithm string, pool []int, seed int64) (*ScheduleReply, error) {
	var reply ScheduleReply
	err := c.rc.Call(RPCName+".Schedule", &ScheduleArgs{App: app, Algorithm: algorithm, Pool: pool, Seed: seed}, &reply)
	return &reply, err
}

// Status fetches service status.
func (c *Client) Status() (*StatusReply, error) {
	var reply StatusReply
	err := c.rc.Call(RPCName+".Status", &StatusArgs{}, &reply)
	return &reply, err
}

// Advance moves simulated time forward on the server.
func (c *Client) Advance(seconds float64) (*AdvanceReply, error) {
	var reply AdvanceReply
	err := c.rc.Call(RPCName+".Advance", &AdvanceArgs{Seconds: seconds}, &reply)
	return &reply, err
}

// Metrics fetches the server's metrics in the given format ("" or
// FormatPrometheus for text exposition, FormatJSON for JSON).
func (c *Client) Metrics(format string) (*MetricsReply, error) {
	var reply MetricsReply
	err := c.rc.Call(RPCName+".Metrics", &MetricsArgs{Format: format}, &reply)
	return &reply, err
}
