package service

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/faults"
	"cbes/internal/obs"
	"cbes/internal/workloads"
)

// newLocalServer builds a calibrated system with one profiled app and
// wraps it in a Server, without the RPC transport — for tests that
// exercise handler concurrency directly.
func newLocalServer(t *testing.T) (*Server, workloads.Program, *cbes.System) {
	t.Helper()
	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	sys.Calibrate(bench.Options{Reps: 3})
	prog := workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 4, Iterations: 8, ComputePerIter: 0.04, MsgSize: 8 << 10, MsgsPerIter: 1,
	})
	sys.MustProfile(prog, []int{0, 1, 2, 3})
	t.Cleanup(sys.Close)
	return NewServer(sys), prog, sys
}

// Readers must run lock-free against the published view while a writer
// advances the simulation and republishes it. Run under -race this pins
// the single-writer/many-reader contract: no reader ever touches engine
// state, and every reader sees either the old or the new view, never a
// torn one.
func TestConcurrentReadsWithRacingAdvance(t *testing.T) {
	c, prog, _ := startServer(t)

	mappings := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 2, 4, 6}, {1, 3, 5, 7}}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if i%2 == 0 {
					if _, err := c.Evaluate(prog.Name, mappings[(r+i)%len(mappings)]); err != nil {
						errc <- fmt.Errorf("reader %d evaluate: %w", r, err)
						return
					}
				} else {
					if _, err := c.Compare(prog.Name, mappings); err != nil {
						errc <- fmt.Errorf("reader %d compare: %w", r, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := c.Advance(0.3); err != nil {
				errc <- fmt.Errorf("advance: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// An epoch bump must make cached predictions unreachable: after an
// Advance that crosses a sampling round, the same request re-evaluates
// against the new snapshot instead of returning the stale entry.
func TestCacheInvalidationOnEpochBump(t *testing.T) {
	s, prog, sys := newLocalServer(t)
	mapping := []int{0, 1, 2, 3}

	var st0 StatusReply
	if err := s.Status(&StatusArgs{}, &st0); err != nil {
		t.Fatal(err)
	}
	var e0 EvaluateReply
	if err := s.Evaluate(&EvaluateArgs{App: prog.Name, Mapping: mapping}, &e0); err != nil {
		t.Fatal(err)
	}
	if got := s.cache.len(); got != 1 {
		t.Fatalf("cache entries after first evaluate = %d, want 1", got)
	}

	// Cross two sampling rounds so the monitor resamples and bumps.
	var adv AdvanceReply
	if err := s.Advance(&AdvanceArgs{Seconds: 2.5}, &adv); err != nil {
		t.Fatal(err)
	}
	if adv.Epoch <= st0.Epoch {
		t.Fatalf("epoch after resampling advance = %d, want > %d", adv.Epoch, st0.Epoch)
	}

	var e1 EvaluateReply
	if err := s.Evaluate(&EvaluateArgs{App: prog.Name, Mapping: mapping}, &e1); err != nil {
		t.Fatal(err)
	}
	// The re-evaluation keyed under the new epoch joins the old entry in
	// the LRU rather than replacing it.
	if got := s.cache.len(); got != 2 {
		t.Fatalf("cache entries after epoch bump = %d, want 2", got)
	}
	// And its value matches a fresh computation against the live
	// snapshot — deterministic, so any divergence means a stale entry
	// leaked through.
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := eval.Predict(mapping, sys.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if e1.Seconds != fresh.Seconds {
		t.Fatalf("post-bump evaluate = %v, fresh prediction = %v", e1.Seconds, fresh.Seconds)
	}
}

// An advance too small to cross a sampling round (and triggering no
// fault or health transition) leaves the snapshot content — and so the
// epoch and the cache — untouched: the repeated request is a hit.
func TestNoOpAdvanceKeepsCacheWarm(t *testing.T) {
	s, prog, _ := newLocalServer(t)
	mapping := []int{0, 1, 2, 3}
	hits := obs.Default().Counter("cbes_predcache_hits_total", "")

	var e0 EvaluateReply
	if err := s.Evaluate(&EvaluateArgs{App: prog.Name, Mapping: mapping}, &e0); err != nil {
		t.Fatal(err)
	}
	var st0 StatusReply
	if err := s.Status(&StatusArgs{}, &st0); err != nil {
		t.Fatal(err)
	}

	var adv AdvanceReply
	if err := s.Advance(&AdvanceArgs{Seconds: 0.01}, &adv); err != nil {
		t.Fatal(err)
	}
	if adv.Epoch != st0.Epoch {
		t.Fatalf("no-op advance moved the epoch %d -> %d", st0.Epoch, adv.Epoch)
	}

	before := hits.Value()
	var e1 EvaluateReply
	if err := s.Evaluate(&EvaluateArgs{App: prog.Name, Mapping: mapping}, &e1); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != before+1 {
		t.Fatalf("evaluate after no-op advance was not a cache hit (hits %d -> %d)", before, hits.Value())
	}
	if e1.Seconds != e0.Seconds {
		t.Fatalf("cached prediction changed: %v -> %v", e0.Seconds, e1.Seconds)
	}
}

// flightGroup: followers arriving while a call is in flight must block
// and share the leader's result; the key is released once it completes.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	type res struct {
		val    any
		joined bool
	}
	results := make(chan res, 5)
	go func() {
		val, joined, _ := g.do(nil, "k", func() (any, error) {
			close(leaderIn)
			<-release
			return 42, nil
		})
		results <- res{val, joined}
	}()
	<-leaderIn
	for i := 0; i < 4; i++ {
		go func() {
			val, joined, _ := g.do(nil, "k", func() (any, error) { return -1, nil })
			results <- res{val, joined}
		}()
	}
	// Wait for all four followers to register on the flight before
	// releasing the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		n := 0
		if c, ok := g.m["k"]; ok {
			n = c.shared
		}
		g.mu.Unlock()
		if n == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers joined = %d, want 4", n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	joins := 0
	for i := 0; i < 5; i++ {
		r := <-results
		if r.val != 42 {
			t.Fatalf("result = %v, want the leader's 42", r.val)
		}
		if r.joined {
			joins++
		}
	}
	if joins != 4 {
		t.Fatalf("joined count = %d, want 4", joins)
	}
	// The key must be free again: a fresh call runs its own fn.
	val, joined, _ := g.do(nil, "k", func() (any, error) { return 7, nil })
	if joined || val != 7 {
		t.Fatalf("post-flight call: val=%v joined=%v, want fresh 7", val, joined)
	}
}

// Identical concurrent Schedule requests must coalesce into one search
// and all receive the same decision — scheduling is deterministic in
// (app, algorithm, pool, seed, epoch), so sharing is sound.
func TestScheduleCoalescing(t *testing.T) {
	s, prog, _ := newLocalServer(t)
	coalesced := obs.Default().Counter("cbes_schedule_coalesced_total", "")
	before := coalesced.Value()

	const n = 6
	args := ScheduleArgs{App: prog.Name, Algorithm: "cs", Pool: []int{0, 1, 2, 3, 4, 5, 6, 7}, Seed: 42}
	replies := make([]ScheduleReply, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			a := args // per-goroutine copy
			errs[i] = s.Schedule(&a, &replies[i])
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(replies[i].Mapping, replies[0].Mapping) || replies[i].Predicted != replies[0].Predicted {
			t.Fatalf("decision %d diverged: %v (%.6f) vs %v (%.6f)",
				i, replies[i].Mapping, replies[i].Predicted, replies[0].Mapping, replies[0].Predicted)
		}
	}
	if coalesced.Value() == before {
		t.Fatal("no Schedule request coalesced despite simultaneous identical requests")
	}
	// Every coalesced follower must leave a flight-recorder record that
	// owns its trace but names the leader's — the forensic link between
	// "what this client was told" and "which search actually ran".
	joins := int(coalesced.Value() - before)
	var followers int
	for _, d := range obs.DefaultRecorder().Decisions(obs.DecisionQuery{Kind: "schedule", App: prog.Name}) {
		if !d.Coalesced || d.Seed != 42 {
			continue
		}
		followers++
		if d.LeaderTraceID == "" || d.LeaderTraceID == d.TraceID {
			t.Fatalf("coalesced record does not name a distinct leader trace: %+v", d)
		}
		if !reflect.DeepEqual(d.Mapping, replies[0].Mapping) {
			t.Fatalf("coalesced record mapping %v diverged from decision %v", d.Mapping, replies[0].Mapping)
		}
	}
	if followers < joins {
		t.Fatalf("flight recorder has %d coalesced records, counter says %d joins", followers, joins)
	}
}

// SetRetryPolicy must be safe against concurrent in-flight calls (it
// used to write c.retry unsynchronized while call read it — a data race
// flagged under -race).
func TestSetRetryPolicyConcurrent(t *testing.T) {
	c, _, _ := startServer(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.SetRetryPolicy(RetryPolicy{Max: 1 + i%3})
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := c.Status(); err != nil {
					t.Errorf("status: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// A busy rejection must be observed in both the method latency histogram
// and the dedicated busy-queue-time histogram (it used to skip latency
// recording entirely, making p99 under saturation look better than
// reality).
func TestBusyRejectionObservesLatency(t *testing.T) {
	s, _, _ := newLocalServer(t)
	s.SetRequestTimeout(20 * time.Millisecond)

	busySeconds := obs.Default().Histogram("cbes_rpc_busy_seconds", "", nil)
	advSeconds := obs.Default().HistogramVec("cbes_rpc_seconds", "", nil, "method").With("Advance")
	busyBefore, advBefore := busySeconds.Count(), advSeconds.Count()

	s.lock <- struct{}{} // wedge the writer lock
	defer func() { <-s.lock }()

	var reply AdvanceReply
	err := s.Advance(&AdvanceArgs{Seconds: 1}, &reply)
	if !IsBusy(err) {
		t.Fatalf("error = %v, want busy", err)
	}
	if got := busySeconds.Count(); got != busyBefore+1 {
		t.Fatalf("cbes_rpc_busy_seconds count %d -> %d, want +1", busyBefore, got)
	}
	if got := advSeconds.Count(); got != advBefore+1 {
		t.Fatalf("cbes_rpc_seconds{Advance} count %d -> %d, want +1 (busy rejection skipped)", advBefore, got)
	}
}

// End to end over RPC: a stalled monitor ages every node past the
// staleness TTL, and the client must see Degraded=true with the mapped
// nodes listed — the fields the old reply types silently dropped.
func TestDegradedPredictionRoundTrip(t *testing.T) {
	c, prog, sys := startServer(t)

	// Wedge the monitoring daemon at t=1s for 60s: samples freeze, data
	// ages past the 3s staleness TTL, every node flips to suspect.
	if err := sys.Faults().Install(faults.Schedule{
		{At: des.Second, Kind: faults.MonitorStall, Duration: 60 * des.Second},
	}); err != nil {
		t.Fatal(err)
	}
	st0, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Advance(10); err != nil {
		t.Fatal(err)
	}
	st1, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Epoch <= st0.Epoch {
		t.Fatalf("epoch did not advance across the health flip: %d -> %d", st0.Epoch, st1.Epoch)
	}

	mapping := []int{0, 1, 2, 3}
	ev, err := c.Evaluate(prog.Name, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Degraded {
		t.Fatal("Evaluate over RPC lost Degraded=true")
	}
	if !reflect.DeepEqual(ev.StaleNodes, mapping) {
		t.Fatalf("StaleNodes = %v, want %v", ev.StaleNodes, mapping)
	}

	cmp, err := c.Compare(prog.Name, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cmp.Seconds {
		if !cmp.Degraded[i] {
			t.Fatalf("Compare mapping %d lost Degraded=true", i)
		}
		if len(cmp.StaleNodes[i]) == 0 {
			t.Fatalf("Compare mapping %d lost StaleNodes", i)
		}
	}

	sched, err := c.Schedule(prog.Name, "rs", []int{0, 1, 2, 3, 4, 5, 6, 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Degraded || len(sched.StaleNodes) == 0 {
		t.Fatalf("Schedule over RPC lost degraded markers: degraded=%v stale=%v",
			sched.Degraded, sched.StaleNodes)
	}
}
