package service

import (
	"strings"
	"testing"

	"cbes/internal/obs"
)

// Client and server share this test process's default tracer, so one
// round trip over real TCP must leave both halves of the trace — the
// client's rpc.client.* span and the server's rpc.* span — linked by
// the wire-carried TraceMeta: same trace ID, server parented under the
// client span, and the reply echoing the ID.
func TestTraceIDCrossesWire(t *testing.T) {
	c, prog, _ := startServer(t)
	r, err := c.Evaluate(prog.Name, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.TraceID == "" {
		t.Fatal("reply did not echo a trace ID")
	}
	id, err := obs.ParseID(r.TraceID)
	if err != nil {
		t.Fatalf("reply trace ID %q unparseable: %v", r.TraceID, err)
	}

	var clientSpan, serverSpan *obs.Span
	for _, sp := range obs.DefaultTracer().TraceSpans(id) {
		sp := sp
		switch sp.Name {
		case "rpc.client.Evaluate":
			clientSpan = &sp
		case "rpc.Evaluate":
			serverSpan = &sp
		}
	}
	if clientSpan == nil || serverSpan == nil {
		t.Fatalf("trace %s missing client (%v) or server (%v) span", r.TraceID, clientSpan, serverSpan)
	}
	if clientSpan.Parent != "" {
		t.Fatalf("client span should be the root, has parent %q", clientSpan.Parent)
	}
	if serverSpan.Parent != clientSpan.ID {
		t.Fatalf("server span parent = %q, want client span %q", serverSpan.Parent, clientSpan.ID)
	}
}

// A Schedule round trip must produce the full causal tree — client →
// server interceptor → scheduling decision → anneal restarts → cache
// lookup — all under the reply's trace ID, plus a matching flight-
// recorder record.
func TestScheduleTraceTreeAndDecisionRecord(t *testing.T) {
	c, prog, _ := startServer(t)
	r, err := c.Schedule(prog.Name, "cs", []int{0, 1, 2, 3, 4, 5, 6, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	id, err := obs.ParseID(r.TraceID)
	if err != nil {
		t.Fatalf("schedule reply trace ID %q: %v", r.TraceID, err)
	}

	counts := map[string]int{}
	for _, sp := range obs.DefaultTracer().TraceSpans(id) {
		counts[sp.Name]++
	}
	for _, want := range []string{"rpc.client.Schedule", "rpc.Schedule", "schedule.decision", "anneal.run", "cache.lookup"} {
		if counts[want] == 0 {
			t.Fatalf("trace %s missing %q span; have %v", r.TraceID, want, counts)
		}
	}
	if counts["anneal.run"] < 2 {
		t.Fatalf("expected parallel restarts to contribute multiple anneal.run spans, got %d", counts["anneal.run"])
	}

	recs := obs.DefaultRecorder().Decisions(obs.DecisionQuery{TraceID: r.TraceID})
	if len(recs) != 1 {
		t.Fatalf("flight recorder has %d records for trace %s, want 1", len(recs), r.TraceID)
	}
	d := recs[0]
	if d.Kind != "schedule" || d.App != prog.Name || d.Algorithm != "cs" || d.Seed != 3 {
		t.Fatalf("decision record mismatch: %+v", d)
	}
	if len(d.Mapping) != len(r.Mapping) || d.Predicted != r.Predicted || d.Evaluations != r.Evaluations {
		t.Fatalf("decision record does not match reply: %+v vs %+v", d, r)
	}

	// The Decisions RPC must surface the same record.
	dr, err := c.Decisions(0, "", "", r.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Decisions) != 1 || dr.Decisions[0].TraceID != r.TraceID {
		t.Fatalf("Decisions RPC returned %+v, want the schedule record of trace %s", dr.Decisions, r.TraceID)
	}
	if dr.Total == 0 {
		t.Fatal("Decisions RPC reported zero lifetime total")
	}
}

// Decision records capture failures too (forensics wants the denials),
// and the Decisions RPC filters by kind and app.
func TestDecisionRecordsFailures(t *testing.T) {
	c, _, _ := startServer(t)
	if _, err := c.Evaluate("no-such-app", []int{0}); err == nil {
		t.Fatal("unknown app should error")
	}
	dr, err := c.Decisions(1, "evaluate", "no-such-app", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Decisions) != 1 {
		t.Fatalf("no decision record for the failed evaluate: %+v", dr)
	}
	if !strings.Contains(dr.Decisions[0].Err, "no-such-app") {
		t.Fatalf("record error = %q, want the unknown-app complaint", dr.Decisions[0].Err)
	}
}

// An old-style client that never stamps TraceMeta (the zero value on
// the wire) must still get a server-minted trace echoed back.
func TestServerMintsWhenClientSilent(t *testing.T) {
	s, prog, _ := newLocalServer(t)
	var reply EvaluateReply
	if err := s.Evaluate(&EvaluateArgs{App: prog.Name, Mapping: []int{0, 1, 2, 3}}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.TraceID == "" {
		t.Fatal("server did not mint a trace for an unstamped request")
	}
	id, err := obs.ParseID(reply.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	spans := obs.DefaultTracer().TraceSpans(id)
	if len(spans) == 0 {
		t.Fatal("minted trace has no recorded spans")
	}
	for _, sp := range spans {
		if sp.Name == "rpc.Evaluate" && sp.Parent != "" {
			t.Fatalf("minted rpc span should be a root, has parent %q", sp.Parent)
		}
	}
}
