package bench

import (
	"math"
	"testing"
	"testing/quick"

	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/mpisim"
	"cbes/internal/profile"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

// Property: calibration on arbitrary random topologies covers every node
// pair and produces positive, size-monotone latency curves.
func TestQuickCalibrateRandomTopologies(t *testing.T) {
	prop := func(seed int64) bool {
		topo := cluster.NewRandom(seed, cluster.RandomSpec{MaxSwitches: 3, MaxNodesPerSwitch: 3})
		m := Calibrate(topo, Options{Reps: 2, Sizes: []int64{64, 8 << 10}, SkipLoadFit: true})
		n := topo.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if _, err := m.ClassFor(i, j); err != nil {
					return false
				}
				lSmall := m.NoLoad(i, j, 64)
				lBig := m.NoLoad(i, j, 8<<10)
				if lSmall <= 0 || lBig < lSmall {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: the full pipeline — calibrate, run, profile, predict — holds on
// random topologies: the same-mapping idle prediction lands close to the
// simulated truth.
func TestQuickPipelineRandomTopologies(t *testing.T) {
	prop := func(seed int64) bool {
		topo := cluster.NewRandom(seed, cluster.RandomSpec{MaxSwitches: 3, MaxNodesPerSwitch: 4})
		if topo.NumNodes() < 2 {
			return true
		}
		return pipelineHoldsOn(topo)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// pipelineHoldsOn exercises calibrate → run → profile → predict on topo and
// checks the same-mapping idle prediction against the simulation.
func pipelineHoldsOn(topo *cluster.Topology) bool {
	model := Calibrate(topo, Options{Reps: 3, Sizes: []int64{64, 8 << 10, 64 << 10}, SkipLoadFit: true})
	mapping := []int{0, 1}
	body := func(r *mpisim.Rank) {
		for i := 0; i < 15; i++ {
			r.Compute(0.02)
			if r.ID() == 0 {
				r.Send(1, 8<<10)
				r.Recv(1)
			} else {
				r.Recv(0)
				r.Send(0, 8<<10)
			}
		}
	}
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, mapping, body, mpisim.Options{AppName: "fuzzapp"})

	speeds := MeasureArchSpeeds(topo, nil, 0.2)
	prof, err := profile.FromTrace(res.Trace, topo, speeds)
	if err != nil {
		return false
	}
	if err := prof.ComputeLambdas(model); err != nil {
		return false
	}
	eval, err := core.NewEvaluator(topo, model, prof)
	if err != nil {
		return false
	}
	pred, err := eval.Predict(core.Mapping(mapping), monitor.IdleSnapshot(topo.NumNodes()))
	if err != nil {
		return false
	}
	actual := res.Elapsed.Seconds()
	return math.Abs(pred.Seconds-actual)/actual < 0.10
}
