// Package bench implements the off-line calibration phase of CBES (§2):
// MPI-style ping-pong benchmarks that measure end-to-end internode latency
// over a range of message sizes, fit the per-path-class no-load latency
// curves and load coefficients of the network model, and measure
// application compute-speed ratios across architectures.
//
// Calibration "must take place on a computation- and communication-free
// system"; serial calibration therefore uses a fresh idle virtual cluster
// per measurement. The clique-parallel mode reproduces the paper's trick
// for cutting the O(N²) initialization time: benchmarks whose routes share
// no link (and no node) run concurrently without invalidating each other.
package bench

import (
	"fmt"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/netmodel"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

// DefaultSizes are the calibration message sizes.
var DefaultSizes = []int64{64, 1 << 10, 8 << 10, 64 << 10, 256 << 10}

// Options tunes calibration.
type Options struct {
	// Sizes are the message sizes to calibrate at (DefaultSizes if nil).
	Sizes []int64
	// Reps is the number of ping-pong round trips per measurement
	// (default 10).
	Reps int
	// AllPairs measures every ordered pair instead of one representative
	// pair per path class. O(N²) instead of O(classes); used to validate
	// the class approximation.
	AllPairs bool
	// LoadLevel is the controlled CPU availability used when fitting the
	// load coefficients (default 0.5). Set SkipLoadFit to skip that phase.
	LoadLevel   float64
	SkipLoadFit bool
}

func (o Options) sizes() []int64 {
	if len(o.Sizes) > 0 {
		return o.Sizes
	}
	return DefaultSizes
}

func (o Options) reps() int {
	if o.Reps > 0 {
		return o.Reps
	}
	return 10
}

func (o Options) loadLevel() float64 {
	if o.LoadLevel > 0 && o.LoadLevel < 1 {
		return o.LoadLevel
	}
	return 0.5
}

// Pair is an ordered benchmark endpoint pair (Src == Dst measures the
// loopback/co-location path).
type Pair struct{ Src, Dst int }

// pingPongBody returns the 2-rank benchmark program. Receives are
// effectively pre-posted (the paper notes calibration benchmarks minimize
// overhead): the protocol alternates strictly.
func pingPongBody(size int64, reps int) func(*mpisim.Rank) {
	return func(r *mpisim.Rank) {
		for k := 0; k < reps; k++ {
			if r.ID() == 0 {
				r.Send(1, size)
				r.Recv(1)
			} else {
				r.Recv(0)
				r.Send(0, size)
			}
		}
	}
}

// MeasurePairLatency runs a ping-pong between src and dst on a fresh, idle
// instance of topo and returns the mean one-way latency in seconds. With
// loadAvail < 1 the src node is held at that CPU availability (used for
// coefficient fitting).
func MeasurePairLatency(topo *cluster.Topology, src, dst int, size int64, reps int, loadAvail float64) float64 {
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	if loadAvail > 0 && loadAvail < 1 {
		eng.Schedule(0, func() { vc.SetAvailability(src, loadAvail) })
	}
	var mapping []int
	if src == dst {
		mapping = []int{src, src}
	} else {
		mapping = []int{src, dst}
	}
	res := mpisim.Run(vc, net, mapping, pingPongBody(size, reps), mpisim.Options{AppName: "pingpong"})
	return res.Elapsed.Seconds() / float64(2*reps)
}

// classRepresentatives returns one ordered pair per path-signature class,
// plus the pair count per class. When the topology interns its classes the
// sweep resolves integer IDs instead of building N² signature strings;
// representative choice is first encounter in row-major pair order either
// way, so calibration picks identical pairs on the 2005 testbeds.
func classRepresentatives(topo *cluster.Topology) (map[string]Pair, map[string]int) {
	n := topo.NumNodes()
	if nc := topo.NumClasses(); nc > 0 {
		repID := make([]Pair, nc)
		seen := make([]bool, nc)
		cnt := make([]int, nc)
		var order []int
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				id := topo.ClassID(i, j)
				cnt[id]++
				if !seen[id] {
					seen[id] = true
					repID[id] = Pair{i, j}
					order = append(order, id)
				}
			}
		}
		rep := make(map[string]Pair, len(order))
		count := make(map[string]int, len(order))
		// Distinct class IDs can share one signature string in principle;
		// first scan encounter wins the representative slot, matching the
		// legacy row-major behavior.
		for _, id := range order {
			sig := topo.ClassSignature(id)
			if _, ok := rep[sig]; !ok {
				rep[sig] = repID[id]
			}
			count[sig] += cnt[id]
		}
		return rep, count
	}
	rep := map[string]Pair{}
	count := map[string]int{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sig := topo.PathSignature(i, j)
			count[sig]++
			if _, ok := rep[sig]; !ok {
				rep[sig] = Pair{i, j}
			}
		}
	}
	return rep, count
}

// Calibrate builds the network latency model for topo by serial
// measurement (each benchmark on its own idle cluster instance).
func Calibrate(topo *cluster.Topology, opts Options) *netmodel.Model {
	model := netmodel.New(topo)
	sizes := opts.sizes()
	reps := opts.reps()

	reps95 := func(src, dst int) netmodel.Curve {
		curve := netmodel.Curve{Sizes: append([]int64(nil), sizes...)}
		for _, s := range sizes {
			curve.Lat = append(curve.Lat, MeasurePairLatency(topo, src, dst, s, reps, 1.0))
		}
		return curve
	}

	if opts.AllPairs {
		// Full O(N²) calibration: per-pair curves aggregated per class by
		// averaging (the class still keys the lookup).
		_, counts := classRepresentatives(topo)
		type agg struct {
			lat []float64
			n   int
		}
		aggs := map[string]*agg{}
		n := topo.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sig := topo.PathSignature(i, j)
				a, ok := aggs[sig]
				if !ok {
					a = &agg{lat: make([]float64, len(sizes))}
					aggs[sig] = a
				}
				c := reps95(i, j)
				for k := range sizes {
					a.lat[k] += c.Lat[k]
				}
				a.n++
			}
		}
		for sig, a := range aggs {
			curve := netmodel.Curve{Sizes: append([]int64(nil), sizes...), Lat: make([]float64, len(sizes))}
			for k := range sizes {
				curve.Lat[k] = a.lat[k] / float64(a.n)
			}
			model.SetClass(sig, netmodel.Class{Curve: curve, Pairs: counts[sig]})
		}
	} else {
		representatives, counts := classRepresentatives(topo)
		for sig, p := range representatives {
			model.SetClass(sig, netmodel.Class{Curve: reps95(p.Src, p.Dst), Pairs: counts[sig]})
		}
	}

	if !opts.SkipLoadFit {
		fitLoadCoefficients(topo, model, opts)
	}
	return model
}

// fitLoadCoefficients measures, per class, the latency inflation when one
// endpoint runs at reduced CPU availability, and stores the linear
// coefficients CSend/CRecv.
func fitLoadCoefficients(topo *cluster.Topology, model *netmodel.Model, opts Options) {
	repPairs, _ := classRepresentatives(topo)
	a := opts.loadLevel()
	x := 1/a - 1
	size := opts.sizes()[0] // small messages: the CPU-bound regime
	reps := opts.reps()
	for sig, p := range repPairs {
		cl := model.Classes[sig]
		idle := cl.Curve.At(size)
		loadedSrc := MeasurePairLatency(topo, p.Src, p.Dst, size, reps, a)
		c := (loadedSrc - idle) / x
		if c < 0 {
			c = 0
		}
		// Ping-pong symmetry folds send and receive costs together; use the
		// same coefficient for both ends (see package doc).
		cl.CSend = c
		cl.CRecv = c
		model.SetClass(sig, cl)
	}
}

// MeasureArchSpeeds runs a single-rank compute probe of probeRef reference
// seconds on one node of each architecture and returns the measured speed
// ratios relative to the reference (the "experimentally measured speed
// ratios for all cluster node architectures" the application profile
// carries). archEff supplies the application's per-architecture efficiency
// multipliers (nil for a neutral probe).
func MeasureArchSpeeds(topo *cluster.Topology, archEff map[cluster.Arch]float64, probeRef float64) map[cluster.Arch]float64 {
	if probeRef <= 0 {
		probeRef = 0.5
	}
	out := map[cluster.Arch]float64{}
	for _, a := range topo.Archs() {
		nodes := topo.NodesByArch(a)
		if len(nodes) == 0 {
			continue
		}
		eng := des.NewEngine()
		vc := vcluster.New(eng, topo)
		net := simnet.New(eng, topo)
		res := mpisim.Run(vc, net, []int{nodes[0]}, func(r *mpisim.Rank) {
			r.Compute(probeRef)
		}, mpisim.Options{AppName: "speedprobe", ArchEff: archEff})
		out[a] = probeRef / res.Elapsed.Seconds()
	}
	return out
}

// PlanRounds greedily packs ordered pairs into rounds whose benchmarks are
// mutually non-interfering at measurement accuracy: within a round no two
// pairs share a node (which also keeps edge links exclusive). Shared trunk
// links may carry several concurrent small-message benchmarks — the same
// compromise real clique-controlled calibrations make, since every
// cross-switch path crosses the core. This is the clique control that cuts
// the O(N²) serial calibration time to O(N)-ish wall-clock.
func PlanRounds(topo *cluster.Topology, pairs []Pair) [][]Pair {
	return planRounds(topo, pairs, false)
}

// PlanRoundsStrict packs pairs into rounds with fully link-disjoint routes:
// zero interference even for bandwidth-saturating sizes, at the cost of
// more rounds (paths through a shared trunk serialize).
func PlanRoundsStrict(topo *cluster.Topology, pairs []Pair) [][]Pair {
	return planRounds(topo, pairs, true)
}

func planRounds(topo *cluster.Topology, pairs []Pair, strict bool) [][]Pair {
	remaining := append([]Pair(nil), pairs...)
	var rounds [][]Pair
	for len(remaining) > 0 {
		usedLink := map[int]bool{}
		usedNode := map[int]bool{}
		var round, next []Pair
		for _, p := range remaining {
			ok := !usedNode[p.Src] && !usedNode[p.Dst]
			if ok && strict {
				for _, l := range topo.Path(p.Src, p.Dst) {
					if usedLink[l] {
						ok = false
						break
					}
				}
			}
			if !ok {
				next = append(next, p)
				continue
			}
			usedNode[p.Src] = true
			usedNode[p.Dst] = true
			if strict {
				for _, l := range topo.Path(p.Src, p.Dst) {
					usedLink[l] = true
				}
			}
			round = append(round, p)
		}
		rounds = append(rounds, round)
		remaining = next
	}
	return rounds
}

// ParallelMeasurement is one pair's measured latency from a clique round.
type ParallelMeasurement struct {
	Pair    Pair
	Size    int64
	Latency float64 // one-way seconds
}

// MeasureRoundsParallel executes the planned rounds on a single engine,
// running all benchmarks of a round concurrently, and returns every
// measurement plus the total simulated wall-clock the calibration took.
func MeasureRoundsParallel(topo *cluster.Topology, rounds [][]Pair, size int64, reps int) ([]ParallelMeasurement, des.Time) {
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	var out []ParallelMeasurement
	start := eng.Now()
	for _, round := range rounds {
		worlds := make([]*mpisim.World, len(round))
		for i, p := range round {
			mapping := []int{p.Src, p.Dst}
			if p.Src == p.Dst {
				mapping = []int{p.Src, p.Src}
			}
			worlds[i] = mpisim.Launch(vc, net, mapping, pingPongBody(size, reps), mpisim.Options{AppName: fmt.Sprintf("pp-%d-%d", p.Src, p.Dst)})
		}
		for i, w := range worlds {
			res := w.Wait()
			out = append(out, ParallelMeasurement{
				Pair:    round[i],
				Size:    size,
				Latency: res.Elapsed.Seconds() / float64(2*reps),
			})
		}
	}
	return out, eng.Now() - start
}
