package bench

import (
	"math"
	"testing"

	"cbes/internal/cluster"
)

func TestMeasurePairLatencyBasics(t *testing.T) {
	topo := cluster.NewTestTopology()
	same := MeasurePairLatency(topo, 0, 1, 1024, 5, 1.0)
	cross := MeasurePairLatency(topo, 0, 4, 1024, 5, 1.0)
	if same <= 0 {
		t.Fatalf("latency %v must be positive", same)
	}
	if cross <= same {
		t.Fatalf("cross-switch %v must exceed same-switch %v", cross, same)
	}
	// Latency grows with size.
	big := MeasurePairLatency(topo, 0, 1, 256<<10, 5, 1.0)
	if big <= same {
		t.Fatalf("large-message latency %v must exceed small %v", big, same)
	}
	// Load inflates latency.
	loaded := MeasurePairLatency(topo, 0, 1, 1024, 5, 0.5)
	if loaded <= same {
		t.Fatalf("loaded latency %v must exceed idle %v", loaded, same)
	}
}

func TestLoopbackMeasurement(t *testing.T) {
	topo := cluster.NewTestTopology()
	loop := MeasurePairLatency(topo, 4, 4, 1024, 5, 1.0) // dual-CPU node
	net := MeasurePairLatency(topo, 4, 5, 1024, 5, 1.0)
	if loop <= 0 || loop >= net {
		t.Fatalf("loopback %v should be positive and below network %v", loop, net)
	}
}

func TestCalibrateBuildsAllClasses(t *testing.T) {
	topo := cluster.NewTestTopology()
	m := Calibrate(topo, Options{Reps: 3, Sizes: []int64{64, 8 << 10}})
	n := topo.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if _, err := m.ClassFor(i, j); err != nil {
				t.Fatalf("pair (%d,%d) uncovered: %v", i, j, err)
			}
		}
	}
	// Load coefficients must be positive after fitting.
	c, _ := m.ClassFor(0, 1)
	if c.CSend <= 0 || c.CRecv <= 0 {
		t.Fatalf("load coefficients not fitted: %+v", c)
	}
	// And in the right ballpark: tens of microseconds (arch overheads).
	if c.CSend < 5e-6 || c.CSend > 500e-6 {
		t.Fatalf("CSend = %v out of plausible range", c.CSend)
	}
}

func TestCalibrationPredictsMeasurement(t *testing.T) {
	// The calibrated class curve must reproduce a direct measurement of
	// another pair in the same class within a small tolerance.
	topo := cluster.NewTestTopology()
	m := Calibrate(topo, Options{Reps: 5, SkipLoadFit: true})
	direct := MeasurePairLatency(topo, 2, 3, 8<<10, 5, 1.0)
	modeled := m.NoLoad(2, 3, 8<<10)
	if rel := math.Abs(modeled-direct) / direct; rel > 0.05 {
		t.Fatalf("class model off by %.1f%% (direct %v, model %v)", rel*100, direct, modeled)
	}
}

func TestAllPairsMatchesClassCalibration(t *testing.T) {
	topo := cluster.NewTestTopology()
	byClass := Calibrate(topo, Options{Reps: 3, Sizes: []int64{64, 8 << 10}, SkipLoadFit: true})
	allPairs := Calibrate(topo, Options{Reps: 3, Sizes: []int64{64, 8 << 10}, SkipLoadFit: true, AllPairs: true})
	for _, size := range []int64{64, 8 << 10} {
		a := byClass.NoLoad(0, 5, size)
		b := allPairs.NoLoad(0, 5, size)
		if rel := math.Abs(a-b) / b; rel > 0.02 {
			t.Fatalf("class vs all-pairs disagree by %.1f%% at %d bytes", rel*100, size)
		}
	}
}

func TestMeasureArchSpeeds(t *testing.T) {
	topo := cluster.NewTestTopology()
	speeds := MeasureArchSpeeds(topo, nil, 0.5)
	if math.Abs(speeds[cluster.ArchAlpha]-1.0) > 1e-6 {
		t.Fatalf("alpha speed = %v, want 1.0", speeds[cluster.ArchAlpha])
	}
	if math.Abs(speeds[cluster.ArchIntel]-0.78) > 1e-6 {
		t.Fatalf("intel speed = %v, want 0.78", speeds[cluster.ArchIntel])
	}
	// App-specific efficiency shifts the measured ratio.
	eff := map[cluster.Arch]float64{cluster.ArchIntel: 0.9}
	speeds2 := MeasureArchSpeeds(topo, eff, 0.5)
	if math.Abs(speeds2[cluster.ArchIntel]-0.78*0.9) > 1e-6 {
		t.Fatalf("intel speed with eff = %v, want %v", speeds2[cluster.ArchIntel], 0.78*0.9)
	}
}

func TestPlanRoundsDisjointAndComplete(t *testing.T) {
	topo := cluster.NewOrangeGrove()
	var pairs []Pair
	n := topo.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, Pair{i, j})
			}
		}
	}
	rounds := PlanRounds(topo, pairs)
	scheduled := 0
	for _, round := range rounds {
		usedNode := map[int]bool{}
		for _, p := range round {
			if usedNode[p.Src] || usedNode[p.Dst] {
				t.Fatal("round shares a node")
			}
			usedNode[p.Src], usedNode[p.Dst] = true, true
			scheduled++
		}
	}
	if scheduled != len(pairs) {
		t.Fatalf("scheduled %d of %d pairs", scheduled, len(pairs))
	}
	// The whole point: far fewer rounds than pairs.
	if len(rounds) >= len(pairs)/4 {
		t.Fatalf("%d rounds for %d pairs — no parallelism gained", len(rounds), len(pairs))
	}
	t.Logf("orange grove: %d ordered pairs in %d clique rounds", len(pairs), len(rounds))

	// Strict planning keeps rounds link-disjoint.
	strict := PlanRoundsStrict(topo, pairs[:60])
	for _, round := range strict {
		usedLink := map[int]bool{}
		for _, p := range round {
			for _, l := range topo.Path(p.Src, p.Dst) {
				if usedLink[l] {
					t.Fatal("strict round shares a link")
				}
				usedLink[l] = true
			}
		}
	}
}

func TestParallelMeasurementMatchesSerial(t *testing.T) {
	// Clique-parallel measurements must agree with serial (isolated)
	// measurements: that is the non-interference guarantee.
	topo := cluster.NewTestTopology()
	pairs := []Pair{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	rounds := PlanRounds(topo, pairs)
	if len(rounds) != 1 {
		t.Fatalf("disjoint same-switch pairs should fit one round, got %d", len(rounds))
	}
	ms, elapsed := MeasureRoundsParallel(topo, rounds, 1024, 5)
	if elapsed <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	for _, meas := range ms {
		serial := MeasurePairLatency(topo, meas.Pair.Src, meas.Pair.Dst, 1024, 5, 1.0)
		if rel := math.Abs(meas.Latency-serial) / serial; rel > 0.02 {
			t.Fatalf("pair %v: parallel %v vs serial %v (%.1f%% off)",
				meas.Pair, meas.Latency, serial, rel*100)
		}
	}
}

func BenchmarkCalibrateTestTopo(b *testing.B) {
	topo := cluster.NewTestTopology()
	for i := 0; i < b.N; i++ {
		Calibrate(topo, Options{Reps: 3, Sizes: []int64{64, 8 << 10}, SkipLoadFit: true})
	}
}
