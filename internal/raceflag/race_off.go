//go:build !race

// Package raceflag reports whether the binary was built with the race
// detector. Timing-sensitive tests use it to skip throughput assertions
// that the detector's instrumentation distorts (it penalizes code paths
// unevenly, so ratios measured under -race are meaningless).
package raceflag

// Enabled is true when the race detector is compiled in.
const Enabled = false
