// Package monitor implements the CBES system-monitoring infrastructure:
// per-node CPU-availability and NIC-utilization sensors feeding
// forecasters, and on-demand cluster snapshots for the mapping-evaluation
// core.
//
// Two forecasting styles mirror the paper's two prototypes: the Orange
// Grove prototype "considers the latest measured load values as valid for
// the next time period" (LastValue), while the Centurion prototype uses a
// modified NWS, approximated here by an adaptive forecaster that tracks
// several simple predictors and reports the one with the lowest running
// error — the essential NWS mechanism.
package monitor

import (
	"fmt"
	"math"
	"sort"
)

// Forecaster predicts the next value of a univariate series.
type Forecaster interface {
	// Update feeds one measurement.
	Update(v float64)
	// Forecast predicts the next measurement. Before any update it returns
	// the forecaster's prior (1.0 — an idle resource).
	Forecast() float64
	// Name identifies the forecaster for diagnostics.
	Name() string
}

// LastValue forecasts the most recent measurement (Orange Grove prototype).
type LastValue struct {
	v   float64
	has bool
}

// NewLastValue returns a last-value forecaster.
func NewLastValue() *LastValue { return &LastValue{} }

// Update records the measurement.
func (l *LastValue) Update(v float64) { l.v, l.has = v, true }

// Forecast returns the last measurement.
func (l *LastValue) Forecast() float64 {
	if !l.has {
		return 1.0
	}
	return l.v
}

// Name identifies the forecaster.
func (l *LastValue) Name() string { return "last" }

// SlidingMean forecasts the mean of the last W measurements.
type SlidingMean struct {
	win  []float64
	next int
	n    int
	sum  float64
}

// NewSlidingMean returns a sliding-mean forecaster over a window of w.
func NewSlidingMean(w int) *SlidingMean {
	if w <= 0 {
		panic("monitor: window must be positive")
	}
	return &SlidingMean{win: make([]float64, w)}
}

// Update records the measurement.
func (s *SlidingMean) Update(v float64) {
	if s.n == len(s.win) {
		s.sum -= s.win[s.next]
	} else {
		s.n++
	}
	s.win[s.next] = v
	s.sum += v
	s.next = (s.next + 1) % len(s.win)
}

// Forecast returns the window mean.
func (s *SlidingMean) Forecast() float64 {
	if s.n == 0 {
		return 1.0
	}
	return s.sum / float64(s.n)
}

// Name identifies the forecaster.
func (s *SlidingMean) Name() string { return fmt.Sprintf("mean%d", len(s.win)) }

// SlidingMedian forecasts the median of the last W measurements — NWS's
// robust predictor for spiky series.
type SlidingMedian struct {
	win  []float64
	next int
	n    int
}

// NewSlidingMedian returns a sliding-median forecaster over a window of w.
func NewSlidingMedian(w int) *SlidingMedian {
	if w <= 0 {
		panic("monitor: window must be positive")
	}
	return &SlidingMedian{win: make([]float64, w)}
}

// Update records the measurement.
func (s *SlidingMedian) Update(v float64) {
	s.win[s.next] = v
	s.next = (s.next + 1) % len(s.win)
	if s.n < len(s.win) {
		s.n++
	}
}

// Forecast returns the window median.
func (s *SlidingMedian) Forecast() float64 {
	if s.n == 0 {
		return 1.0
	}
	tmp := append([]float64(nil), s.win[:s.n]...)
	sort.Float64s(tmp)
	m := s.n / 2
	if s.n%2 == 1 {
		return tmp[m]
	}
	return (tmp[m-1] + tmp[m]) / 2
}

// Name identifies the forecaster.
func (s *SlidingMedian) Name() string { return fmt.Sprintf("median%d", len(s.win)) }

// EWMA forecasts with exponential smoothing.
type EWMA struct {
	alpha float64
	v     float64
	has   bool
}

// NewEWMA returns an exponentially-weighted forecaster with smoothing
// factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("monitor: alpha out of (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Update records the measurement.
func (e *EWMA) Update(v float64) {
	if !e.has {
		e.v, e.has = v, true
		return
	}
	e.v = e.alpha*v + (1-e.alpha)*e.v
}

// Forecast returns the smoothed value.
func (e *EWMA) Forecast() float64 {
	if !e.has {
		return 1.0
	}
	return e.v
}

// Name identifies the forecaster.
func (e *EWMA) Name() string { return fmt.Sprintf("ewma%.2f", e.alpha) }

// Adaptive runs a family of candidate forecasters and reports the forecast
// of whichever has accumulated the lowest mean squared one-step error so
// far — the core idea of the Network Weather Service.
type Adaptive struct {
	cands []Forecaster
	sqErr []float64
	n     int
}

// NewAdaptive builds an adaptive forecaster over the given candidates; with
// no arguments it uses the NWS-like default family.
func NewAdaptive(cands ...Forecaster) *Adaptive {
	if len(cands) == 0 {
		cands = []Forecaster{
			NewLastValue(),
			NewSlidingMean(5),
			NewSlidingMean(20),
			NewSlidingMedian(5),
			NewSlidingMedian(20),
			NewEWMA(0.25),
			NewEWMA(0.5),
		}
	}
	return &Adaptive{cands: cands, sqErr: make([]float64, len(cands))}
}

// Update scores every candidate against the arriving measurement, then
// feeds it to all of them.
func (a *Adaptive) Update(v float64) {
	for i, c := range a.cands {
		d := c.Forecast() - v
		a.sqErr[i] += d * d
	}
	for _, c := range a.cands {
		c.Update(v)
	}
	a.n++
}

// Forecast returns the current best candidate's forecast.
func (a *Adaptive) Forecast() float64 { return a.cands[a.best()].Forecast() }

// Name reports which candidate is currently winning.
func (a *Adaptive) Name() string { return "adaptive(" + a.cands[a.best()].Name() + ")" }

func (a *Adaptive) best() int {
	bi, be := 0, math.Inf(1)
	for i, e := range a.sqErr {
		if e < be {
			bi, be = i, e
		}
	}
	return bi
}
