package monitor

import (
	"testing"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

// newEpochMonitor builds a quiet monitored test cluster.
func newEpochMonitor(t *testing.T, cfg Config) (*des.Engine, *SystemMonitor) {
	t.Helper()
	eng := des.NewEngine()
	t.Cleanup(eng.Shutdown)
	topo := cluster.NewTestTopology()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	return eng, NewSystemMonitor(vc, net, cfg)
}

// TestEpochBumpsOnSample pins the core epoch contract: every completed
// sampling round advances the epoch, and the snapshot is stamped with it.
func TestEpochBumpsOnSample(t *testing.T) {
	eng, m := newEpochMonitor(t, Config{Noise: NoNoise})
	e0 := m.Epoch()
	if e0 == 0 {
		t.Fatal("constructor's immediate first sample did not bump the epoch")
	}
	if got := m.Snapshot().Epoch; got != m.Epoch() {
		t.Fatalf("snapshot epoch %d != monitor epoch %d", got, m.Epoch())
	}
	eng.RunUntil(eng.Now() + 3*des.Second) // three sampling rounds
	if e1 := m.Epoch(); e1 < e0+3 {
		t.Fatalf("epoch %d after 3 sampling rounds, want >= %d", e1, e0+3)
	}
}

// TestEpochStableWithoutStateChange: advancing simulated time by less
// than a sampling interval changes nothing observable, so the epoch must
// hold — this is what makes epoch-keyed caching worthwhile.
func TestEpochStableWithoutStateChange(t *testing.T) {
	eng, m := newEpochMonitor(t, Config{Noise: NoNoise})
	s1 := m.Snapshot()
	eng.RunUntil(eng.Now() + des.Second/4) // no sampling round fires
	s2 := m.Snapshot()
	if s1.Epoch != s2.Epoch {
		t.Fatalf("epoch moved %d -> %d with no sample and no fault", s1.Epoch, s2.Epoch)
	}
}

// TestEpochBumpsOnSensorTransitions covers the monitor-owned fault hooks.
func TestEpochBumpsOnSensorTransitions(t *testing.T) {
	_, m := newEpochMonitor(t, Config{Noise: NoNoise})
	e := m.Epoch()
	m.DropSensor(1)
	if m.Epoch() <= e {
		t.Fatal("DropSensor did not bump the epoch")
	}
	e = m.Epoch()
	m.RestoreSensor(1)
	if m.Epoch() <= e {
		t.Fatal("RestoreSensor did not bump the epoch")
	}
	e = m.Epoch()
	m.StallFor(10 * des.Second)
	if m.Epoch() <= e {
		t.Fatal("StallFor did not bump the epoch")
	}
}

// TestEpochBumpsOnAgingHealthFlip: during a stall no sampling round runs,
// but nodes still age past the TTL and flip to suspect. The flip is only
// visible at Snapshot time, and the epoch must move with it — a cached
// healthy prediction must not survive into the degraded view.
func TestEpochBumpsOnAgingHealthFlip(t *testing.T) {
	eng, m := newEpochMonitor(t, Config{Noise: NoNoise})
	m.StallFor(100 * des.Second) // wedge sampling for the whole test
	s1 := m.Snapshot()
	if ok, suspect, _ := s1.HealthCounts(); suspect != 0 || ok == 0 {
		t.Fatalf("cluster not healthy at start: %+v", s1.Health)
	}
	// Age everyone past the default TTL (3 intervals) with zero samples.
	eng.RunUntil(eng.Now() + 10*des.Second)
	s2 := m.Snapshot()
	if _, suspect, _ := s2.HealthCounts(); suspect == 0 {
		t.Fatal("nodes did not go suspect past the TTL")
	}
	if s2.Epoch <= s1.Epoch {
		t.Fatalf("epoch did not advance across the OK->suspect flip (%d -> %d)", s1.Epoch, s2.Epoch)
	}
	// Identical state again: a further snapshot holds the epoch.
	if s3 := m.Snapshot(); s3.Epoch != s2.Epoch {
		t.Fatalf("epoch moved %d -> %d with unchanged health", s2.Epoch, s3.Epoch)
	}
}

// TestSnapshotCloneCarriesEpoch keeps Clone in sync with the struct.
func TestSnapshotCloneCarriesEpoch(t *testing.T) {
	s := &Snapshot{Epoch: 42, AvailCPU: []float64{1}, NICUtil: []float64{0}}
	if c := s.Clone(); c.Epoch != 42 {
		t.Fatalf("Clone dropped the epoch: %d", c.Epoch)
	}
}
