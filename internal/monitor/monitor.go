package monitor

import (
	"math/rand"

	"cbes/internal/des"
	"cbes/internal/obs"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

// Monitoring observability. Ages are in simulated seconds — the clock
// the sensors themselves run on; a growing snapshot age means the
// scheduler is deciding on stale forecasts.
var (
	metricSamples = obs.Default().Counter(
		"cbes_monitor_samples_total", "Completed cluster-wide sensor sampling rounds.")
	metricRefreshes = obs.Default().Counter(
		"cbes_monitor_forecast_refreshes_total", "Per-node forecaster updates (CPU + NIC).")
	metricSnapshots = obs.Default().Counter(
		"cbes_monitor_snapshots_total", "Resource-availability snapshots assembled.")
	gaugeSnapshotAge = obs.Default().Gauge(
		"cbes_monitor_snapshot_age_seconds",
		"Simulated age of the sensor data behind the most recent snapshot.")
)

// Snapshot is an on-demand picture of cluster resource availability — the
// input the CBES core combines with profiles and mapping definitions. One
// entry per node.
type Snapshot struct {
	At       des.Time
	AvailCPU []float64 // forecast CPU availability a new task would see (ACPU_j)
	NICUtil  []float64 // forecast utilization of the node's edge link [0,1)
}

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	return &Snapshot{
		At:       s.At,
		AvailCPU: append([]float64(nil), s.AvailCPU...),
		NICUtil:  append([]float64(nil), s.NICUtil...),
	}
}

// IdleSnapshot returns the snapshot of a perfectly idle n-node cluster.
func IdleSnapshot(n int) *Snapshot {
	s := &Snapshot{AvailCPU: make([]float64, n), NICUtil: make([]float64, n)}
	for i := range s.AvailCPU {
		s.AvailCPU[i] = 1.0
	}
	return s
}

// Style selects the forecasting style of a SystemMonitor.
type Style int

// Forecasting styles of the two prototypes.
const (
	// StyleLastValue is the Orange Grove prototype: the latest measured
	// value is taken as valid for the next period.
	StyleLastValue Style = iota
	// StyleNWS is the Centurion prototype: adaptive multi-predictor
	// forecasting in the manner of the Network Weather Service.
	StyleNWS
)

// Config tunes a SystemMonitor.
type Config struct {
	Style    Style
	Interval des.Time // sampling period (default 1 s)
	// Noise is the relative standard deviation of sensor measurement error
	// (default 0.01). Sensors on real systems never read ground truth
	// exactly.
	Noise float64
	// Seed drives the sensor noise generator.
	Seed int64
}

func (c Config) interval() des.Time {
	if c.Interval > 0 {
		return c.Interval
	}
	return des.Second
}

func (c Config) noise() float64 {
	if c.Noise > 0 {
		return c.Noise
	}
	return 0.01
}

// SystemMonitor owns the per-node sensors and daemons. It is the
// system-dedicated half of the CBES infrastructure (§2).
type SystemMonitor struct {
	vc   *vcluster.Cluster
	net  *simnet.Network
	cfg  Config
	cpuF []Forecaster
	nicF []Forecaster
	// lastBusy remembers per-node edge-link busy time at the previous
	// sample, to compute utilization over the sampling window.
	lastBusy []des.Time
	edge     []int
	daemon   *des.Proc
	samples  uint64
	// lastSample is the simulated time of the most recent sampling round;
	// Snapshot reports the forecast age relative to it.
	lastSample des.Time
}

// NewSystemMonitor attaches sensors to every node of the virtual cluster
// and starts the sampling daemon. Call Stop (or eng.Shutdown) to reap it.
func NewSystemMonitor(vc *vcluster.Cluster, net *simnet.Network, cfg Config) *SystemMonitor {
	n := vc.Topo.NumNodes()
	m := &SystemMonitor{
		vc:       vc,
		net:      net,
		cfg:      cfg,
		cpuF:     make([]Forecaster, n),
		nicF:     make([]Forecaster, n),
		lastBusy: make([]des.Time, n),
		edge:     make([]int, n),
	}
	for i := 0; i < n; i++ {
		m.edge[i] = net.EdgeLink(i)
		switch cfg.Style {
		case StyleNWS:
			m.cpuF[i] = NewAdaptive()
			m.nicF[i] = NewAdaptive()
		default:
			m.cpuF[i] = NewLastValue()
			m.nicF[i] = NewLastValue()
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	// Take an immediate first sample so snapshots never rest on forecaster
	// priors (a fresh LastValue would otherwise report 100 % NIC
	// utilization for an idle link).
	m.sample(rng)
	m.daemon = vc.Eng.Spawn("sysmon", func(p *des.Proc) {
		for {
			p.Sleep(m.cfg.interval())
			m.sample(rng)
		}
	})
	return m
}

// sample reads every node's sensors once.
func (m *SystemMonitor) sample(rng *rand.Rand) {
	window := m.cfg.interval().Seconds()
	for i := range m.cpuF {
		// CPU sensor: what share would a new process get right now.
		truth := m.vc.CPU(i).AvailableToNewTask()
		v := truth * (1 + m.cfg.noise()*rng.NormFloat64())
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		m.cpuF[i].Update(v)

		// NIC sensor: edge-link utilization over the last window (both
		// directions, normalized to 2x window for full duplex).
		busy := m.net.LinkBusy(m.edge[i])
		du := (busy - m.lastBusy[i]).Seconds() / (2 * window)
		m.lastBusy[i] = busy
		if du < 0 {
			du = 0
		}
		if du > 1 {
			du = 1
		}
		m.nicF[i].Update(du)
	}
	m.samples++
	m.lastSample = m.vc.Eng.Now()
	metricSamples.Inc()
	metricRefreshes.Add(uint64(2 * len(m.cpuF)))
}

// Samples reports how many sampling rounds have completed.
func (m *SystemMonitor) Samples() uint64 { return m.samples }

// Stop kills the sampling daemon. Must be called from outside engine
// context only after the engine has stopped, or from engine context.
func (m *SystemMonitor) Stop() { m.daemon.Kill() }

// Snapshot assembles the current cluster-wide forecast. The cost is O(N)
// in the number of nodes: this, combined with the path-class latency model
// (internal/netmodel), is the paper's O(N) approximation of cluster
// resource availability.
func (m *SystemMonitor) Snapshot() *Snapshot {
	n := len(m.cpuF)
	s := &Snapshot{At: m.vc.Eng.Now(), AvailCPU: make([]float64, n), NICUtil: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.AvailCPU[i] = m.cpuF[i].Forecast()
		s.NICUtil[i] = m.nicF[i].Forecast()
	}
	metricSnapshots.Inc()
	gaugeSnapshotAge.Set((s.At - m.lastSample).Seconds())
	return s
}
