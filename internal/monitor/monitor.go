package monitor

import (
	"math/rand"
	"sync/atomic"

	"cbes/internal/des"
	"cbes/internal/obs"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

// Monitoring observability. Ages are in simulated seconds — the clock
// the sensors themselves run on; a growing snapshot age means the
// scheduler is deciding on stale forecasts.
var (
	metricSamples = obs.Default().Counter(
		"cbes_monitor_samples_total", "Completed cluster-wide sensor sampling rounds.")
	metricRefreshes = obs.Default().Counter(
		"cbes_monitor_forecast_refreshes_total", "Per-node forecaster updates (CPU + NIC).")
	metricSnapshots = obs.Default().Counter(
		"cbes_monitor_snapshots_total", "Resource-availability snapshots assembled.")
	gaugeSnapshotAge = obs.Default().Gauge(
		"cbes_monitor_snapshot_age_seconds",
		"Simulated age of the sensor data behind the most recent snapshot.")
	gaugeNodesDown = obs.Default().Gauge(
		"cbes_monitor_nodes_down",
		"Nodes marked down (crashed or dead sensor) in the most recent snapshot.")
	gaugeNodesSuspect = obs.Default().Gauge(
		"cbes_monitor_nodes_suspect",
		"Nodes marked suspect (stale sensor data) in the most recent snapshot.")
	gaugeEpoch = obs.Default().Gauge(
		"cbes_monitor_snapshot_epoch",
		"Monotonic version of the monitor's observable state; snapshots sharing an epoch are identical.")
)

// Health classifies a node's monitoring state in a snapshot.
type Health int8

// Node health states, ordered by severity.
const (
	// HealthOK: fresh sensor data, node reachable.
	HealthOK Health = iota
	// HealthSuspect: the node answered once, but its last successful sample
	// is older than the staleness TTL (stalled daemon, missed rounds). Its
	// forecasts are not trustworthy; consumers fall back to profile-only
	// estimates and flag the result degraded.
	HealthSuspect
	// HealthDown: the sensor is dead or its last sample found the node
	// unreachable (crashed). The node must not receive work.
	HealthDown
)

func (h Health) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	}
	return "unknown"
}

// Snapshot is an on-demand picture of cluster resource availability — the
// input the CBES core combines with profiles and mapping definitions. One
// entry per node.
type Snapshot struct {
	At des.Time
	// Epoch is the monitor's state version at assembly time (see
	// SystemMonitor.Epoch). Two snapshots of the same monitor with equal
	// epochs carry identical forecasts and health; a consumer may therefore
	// cache anything derived from a snapshot under its epoch and invalidate
	// by epoch comparison alone. Hand-built snapshots leave it 0.
	Epoch    uint64
	AvailCPU []float64 // forecast CPU availability a new task would see (ACPU_j)
	NICUtil  []float64 // forecast utilization of the node's edge link [0,1)
	// Health classifies each node's monitoring state. A nil slice (older
	// callers, synthetic snapshots) means every node is healthy — use
	// HealthOf rather than indexing directly.
	Health []Health
	// SampleAge is the simulated seconds since each node's last successful
	// sensor sample. Nil means fresh everywhere; use AgeOf.
	SampleAge []float64
}

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	return &Snapshot{
		At:        s.At,
		Epoch:     s.Epoch,
		AvailCPU:  append([]float64(nil), s.AvailCPU...),
		NICUtil:   append([]float64(nil), s.NICUtil...),
		Health:    append([]Health(nil), s.Health...),
		SampleAge: append([]float64(nil), s.SampleAge...),
	}
}

// HealthOf reports node i's health, treating missing health data (synthetic
// or pre-health snapshots) as healthy.
func (s *Snapshot) HealthOf(i int) Health {
	if i < 0 || i >= len(s.Health) {
		return HealthOK
	}
	return s.Health[i]
}

// AgeOf reports the sample age of node i in simulated seconds (0 when the
// snapshot carries no staleness data).
func (s *Snapshot) AgeOf(i int) float64 {
	if i < 0 || i >= len(s.SampleAge) {
		return 0
	}
	return s.SampleAge[i]
}

// MaxAge reports the worst (largest) sample age across the given nodes in
// simulated seconds — the staleness of the most out-of-date sensor a
// prediction over those nodes depended on. Accuracy calibration buckets
// predictions by this value: estimates from stale data should err more,
// and bucketing makes that measurable. Duplicate or out-of-range node
// indices are tolerated (out-of-range ages are 0, matching AgeOf).
func (s *Snapshot) MaxAge(nodes []int) float64 {
	max := 0.0
	for _, n := range nodes {
		if a := s.AgeOf(n); a > max {
			max = a
		}
	}
	return max
}

// HealthCounts tallies the snapshot's node health states.
func (s *Snapshot) HealthCounts() (ok, suspect, down int) {
	ok = len(s.AvailCPU)
	for _, h := range s.Health {
		switch h {
		case HealthSuspect:
			suspect++
			ok--
		case HealthDown:
			down++
			ok--
		}
	}
	return ok, suspect, down
}

// IdleSnapshot returns the snapshot of a perfectly idle, healthy n-node
// cluster.
func IdleSnapshot(n int) *Snapshot {
	s := &Snapshot{AvailCPU: make([]float64, n), NICUtil: make([]float64, n)}
	for i := range s.AvailCPU {
		s.AvailCPU[i] = 1.0
	}
	return s
}

// Style selects the forecasting style of a SystemMonitor.
type Style int

// Forecasting styles of the two prototypes.
const (
	// StyleLastValue is the Orange Grove prototype: the latest measured
	// value is taken as valid for the next period.
	StyleLastValue Style = iota
	// StyleNWS is the Centurion prototype: adaptive multi-predictor
	// forecasting in the manner of the Network Weather Service.
	StyleNWS
)

// NoNoise requests exactly noiseless sensors. The zero Config value keeps
// the 0.01 default, so "no noise at all" needs an explicit sentinel (any
// negative Noise works; this constant is the documented spelling).
const NoNoise = -1.0

// Config tunes a SystemMonitor.
type Config struct {
	Style    Style
	Interval des.Time // sampling period (default 1 s)
	// Noise is the relative standard deviation of sensor measurement error
	// (default 0.01). Sensors on real systems never read ground truth
	// exactly. Set NoNoise (or any negative value) for noiseless sensors.
	Noise float64
	// Seed drives the sensor noise generator.
	Seed int64
	// StaleTTL is how old a node's last successful sample may grow before
	// the node is marked HealthSuspect (default 3 sampling intervals).
	StaleTTL des.Time
}

func (c Config) interval() des.Time {
	if c.Interval > 0 {
		return c.Interval
	}
	return des.Second
}

func (c Config) noise() float64 {
	if c.Noise < 0 { // NoNoise sentinel: truly noiseless sensors
		return 0
	}
	if c.Noise > 0 {
		return c.Noise
	}
	return 0.01
}

func (c Config) staleTTL() des.Time {
	if c.StaleTTL > 0 {
		return c.StaleTTL
	}
	return 3 * c.interval()
}

// SystemMonitor owns the per-node sensors and daemons. It is the
// system-dedicated half of the CBES infrastructure (§2).
type SystemMonitor struct {
	vc   *vcluster.Cluster
	net  *simnet.Network
	cfg  Config
	cpuF []Forecaster
	nicF []Forecaster
	// lastBusy remembers per-node edge-link busy time at the previous
	// sample, to compute utilization over the sampling window.
	lastBusy []des.Time
	edge     []int
	daemon   *des.Proc
	samples  uint64
	// lastSample is the simulated time of the most recent sampling round;
	// Snapshot reports the forecast age relative to it.
	lastSample des.Time
	// lastUpdate is the per-node time of the last successful sensor sample
	// (skipped by dead sensors, stalls, and unreachable nodes); Snapshot
	// derives staleness from it.
	lastUpdate []des.Time
	// sensorDown marks nodes whose sensor daemon has died (fault
	// injection): no readings at all until restored.
	sensorDown []bool
	// unreachable marks nodes whose last sample attempt found them crashed.
	unreachable []bool
	// stalledUntil pauses the whole monitoring daemon (a wedged collector):
	// sampling rounds before this time are skipped entirely.
	stalledUntil des.Time
	// epoch versions the monitor's observable state (forecasts + health).
	// Atomic so readers outside engine context can poll it lock-free.
	epoch atomic.Uint64
	// lastHealth remembers the health vector of the previous Snapshot, so
	// purely time-driven transitions (data aging past the TTL with no
	// sampling round, e.g. during a stall) still bump the epoch.
	lastHealth []Health
}

// NewSystemMonitor attaches sensors to every node of the virtual cluster
// and starts the sampling daemon. Call Stop (or eng.Shutdown) to reap it.
func NewSystemMonitor(vc *vcluster.Cluster, net *simnet.Network, cfg Config) *SystemMonitor {
	n := vc.Topo.NumNodes()
	m := &SystemMonitor{
		vc:          vc,
		net:         net,
		cfg:         cfg,
		cpuF:        make([]Forecaster, n),
		nicF:        make([]Forecaster, n),
		lastBusy:    make([]des.Time, n),
		edge:        make([]int, n),
		lastUpdate:  make([]des.Time, n),
		sensorDown:  make([]bool, n),
		unreachable: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		m.edge[i] = net.EdgeLink(i)
		switch cfg.Style {
		case StyleNWS:
			m.cpuF[i] = NewAdaptive()
			m.nicF[i] = NewAdaptive()
		default:
			m.cpuF[i] = NewLastValue()
			m.nicF[i] = NewLastValue()
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	// Take an immediate first sample so snapshots never rest on forecaster
	// priors (a fresh LastValue would otherwise report 100 % NIC
	// utilization for an idle link).
	m.sample(rng)
	m.daemon = vc.Eng.Spawn("sysmon", func(p *des.Proc) {
		for {
			p.Sleep(m.cfg.interval())
			m.sample(rng)
		}
	})
	return m
}

// sample reads every node's sensors once. Dead sensors are skipped
// (their nodes' data ages until restored), a stalled daemon skips the
// whole round, and a crashed node is recorded as unreachable instead of
// producing a reading.
func (m *SystemMonitor) sample(rng *rand.Rand) {
	now := m.vc.Eng.Now()
	if now < m.stalledUntil {
		return // wedged collector: no sensor reads this round
	}
	window := m.cfg.interval().Seconds()
	refreshed := 0
	for i := range m.cpuF {
		if m.sensorDown[i] {
			continue // dead sensor daemon: no reading, lastUpdate frozen
		}
		if m.vc.CPU(i).Down() {
			// The sensor answered but found the node crashed: record
			// unreachability rather than feeding a zero into the forecaster
			// (the pre-crash history stays intact for the recovery).
			m.unreachable[i] = true
			continue
		}
		m.unreachable[i] = false

		// CPU sensor: what share would a new process get right now.
		truth := m.vc.CPU(i).AvailableToNewTask()
		v := truth * (1 + m.cfg.noise()*rng.NormFloat64())
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		m.cpuF[i].Update(v)

		// NIC sensor: edge-link utilization over the last window (both
		// directions, normalized to 2x window for full duplex).
		busy := m.net.LinkBusy(m.edge[i])
		du := (busy - m.lastBusy[i]).Seconds() / (2 * window)
		m.lastBusy[i] = busy
		if du < 0 {
			du = 0
		}
		if du > 1 {
			du = 1
		}
		m.nicF[i].Update(du)
		m.lastUpdate[i] = now
		refreshed++
	}
	m.samples++
	m.lastSample = now
	metricSamples.Inc()
	metricRefreshes.Add(uint64(2 * refreshed))
	m.BumpEpoch()
}

// Samples reports how many sampling rounds have completed.
func (m *SystemMonitor) Samples() uint64 { return m.samples }

// Epoch reports the monitor's current state version. It increases
// monotonically on every event that can change what a Snapshot would
// contain: a completed sampling round, a sensor dropping or reviving, a
// monitor stall, an externally signalled fault transition (BumpEpoch),
// and a health flip detected at Snapshot-assembly time (data aging past
// the TTL). Between equal Epoch reads, snapshots are identical — the
// invalidation contract the service's prediction cache is keyed on.
// Safe to read from any goroutine.
func (m *SystemMonitor) Epoch() uint64 { return m.epoch.Load() }

// BumpEpoch advances the state version. The monitor calls it internally;
// external mutators of the cluster the monitor watches (fault injection
// crashing nodes or degrading links behind the sensors' back) call it so
// epoch-keyed caches cannot outlive the transition.
func (m *SystemMonitor) BumpEpoch() {
	gaugeEpoch.Set(float64(m.epoch.Add(1)))
}

// Stop kills the sampling daemon. Must be called from outside engine
// context only after the engine has stopped, or from engine context.
func (m *SystemMonitor) Stop() { m.daemon.Kill() }

// DropSensor kills node i's sensor daemon (fault injection): the node
// produces no further readings and its snapshot health becomes
// HealthDown until RestoreSensor. Must be called from engine context.
func (m *SystemMonitor) DropSensor(i int) {
	m.sensorDown[i] = true
	m.BumpEpoch()
}

// RestoreSensor revives node i's sensor daemon; the next sampling round
// refreshes its data. Must be called from engine context.
func (m *SystemMonitor) RestoreSensor(i int) {
	m.sensorDown[i] = false
	m.BumpEpoch()
}

// StallFor wedges the whole monitoring daemon for d of simulated time:
// sampling rounds in the window are skipped, so every node's data ages
// (and, past the TTL, goes HealthSuspect). Must be called from engine
// context.
func (m *SystemMonitor) StallFor(d des.Time) {
	until := m.vc.Eng.Now() + d
	if until > m.stalledUntil {
		m.stalledUntil = until
	}
	m.BumpEpoch()
}

// Snapshot assembles the current cluster-wide forecast. The cost is O(N)
// in the number of nodes: this, combined with the path-class latency model
// (internal/netmodel), is the paper's O(N) approximation of cluster
// resource availability.
//
// Snapshot must not race itself or the sampling daemon (call it with the
// engine quiescent, as every existing caller does): it compares the
// derived health vector against the previous call's to catch purely
// time-driven transitions — a node whose data aged past the TTL since
// the last snapshot flips to suspect without any sampling round, and the
// epoch must advance with it or an epoch-keyed cache would keep serving
// the node as healthy.
func (m *SystemMonitor) Snapshot() *Snapshot {
	n := len(m.cpuF)
	s := &Snapshot{
		At:        m.vc.Eng.Now(),
		AvailCPU:  make([]float64, n),
		NICUtil:   make([]float64, n),
		Health:    make([]Health, n),
		SampleAge: make([]float64, n),
	}
	ttl := m.cfg.staleTTL()
	suspect, down := 0, 0
	for i := 0; i < n; i++ {
		s.AvailCPU[i] = m.cpuF[i].Forecast()
		s.NICUtil[i] = m.nicF[i].Forecast()
		age := s.At - m.lastUpdate[i]
		s.SampleAge[i] = age.Seconds()
		switch {
		case m.sensorDown[i] || m.unreachable[i]:
			// Dead sensor or crashed node: the node must not receive work.
			// Zero availability keeps even health-blind consumers away.
			s.Health[i] = HealthDown
			s.AvailCPU[i] = 0
			down++
		case age > ttl:
			s.Health[i] = HealthSuspect
			suspect++
		}
	}
	if m.lastHealth != nil && !healthEqual(m.lastHealth, s.Health) {
		m.BumpEpoch()
	}
	m.lastHealth = append(m.lastHealth[:0], s.Health...)
	s.Epoch = m.Epoch()
	metricSnapshots.Inc()
	gaugeSnapshotAge.Set((s.At - m.lastSample).Seconds())
	gaugeNodesDown.Set(float64(down))
	gaugeNodesSuspect.Set(float64(suspect))
	return s
}

// healthEqual reports whether two health vectors are identical.
func healthEqual(a, b []Health) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LastHealthGauges reports the down/suspect node counts published by the
// most recent Snapshot of any monitor in the process — an atomic,
// engine-lock-free read for readiness probes. The values refresh whenever
// a snapshot is taken (every RPC that reads cluster state takes one).
func LastHealthGauges() (down, suspect int) {
	return int(gaugeNodesDown.Value()), int(gaugeNodesSuspect.Value())
}
