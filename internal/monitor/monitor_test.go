package monitor

import (
	"math"
	"testing"
	"testing/quick"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

func TestLastValue(t *testing.T) {
	f := NewLastValue()
	if f.Forecast() != 1.0 {
		t.Fatal("prior should be 1.0")
	}
	f.Update(0.4)
	f.Update(0.7)
	if f.Forecast() != 0.7 {
		t.Fatalf("forecast = %v", f.Forecast())
	}
	if f.Name() != "last" {
		t.Fatal("name")
	}
}

func TestSlidingMean(t *testing.T) {
	f := NewSlidingMean(3)
	for _, v := range []float64{1, 2, 3, 4} { // window keeps 2,3,4
		f.Update(v)
	}
	if got := f.Forecast(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("forecast = %v, want 3", got)
	}
}

func TestSlidingMedian(t *testing.T) {
	f := NewSlidingMedian(5)
	for _, v := range []float64{1, 100, 2, 3, 2.5} {
		f.Update(v)
	}
	if got := f.Forecast(); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	f2 := NewSlidingMedian(4)
	f2.Update(1)
	f2.Update(3)
	if got := f2.Forecast(); got != 2 {
		t.Fatalf("even median = %v, want 2", got)
	}
}

func TestEWMA(t *testing.T) {
	f := NewEWMA(0.5)
	f.Update(1.0)
	f.Update(0.0)
	if got := f.Forecast(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ewma = %v, want 0.5", got)
	}
}

func TestForecasterConstructorsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSlidingMean(0) },
		func() { NewSlidingMedian(-1) },
		func() { NewEWMA(0) },
		func() { NewEWMA(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAdaptivePicksGoodPredictor(t *testing.T) {
	// A constant series: every candidate converges, forecast must match.
	a := NewAdaptive()
	for i := 0; i < 50; i++ {
		a.Update(0.6)
	}
	if got := a.Forecast(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("adaptive on constant series = %v", got)
	}
	// An alternating series: the mean-family must beat last-value.
	b := NewAdaptive()
	for i := 0; i < 100; i++ {
		v := 0.2
		if i%2 == 0 {
			v = 0.8
		}
		b.Update(v)
	}
	if got := b.Forecast(); math.Abs(got-0.5) > 0.15 {
		t.Fatalf("adaptive on alternating series = %v, want ≈0.5 (%s)", got, b.Name())
	}
}

// Property: forecasts of availability series stay within the convex hull of
// observations (for these predictor families).
func TestQuickForecastWithinHull(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		lo, hi := 2.0, -1.0
		fs := []Forecaster{NewLastValue(), NewSlidingMean(7), NewSlidingMedian(7), NewEWMA(0.3), NewAdaptive()}
		for _, r := range raw {
			v := float64(r) / 255
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			for _, f := range fs {
				f.Update(v)
			}
		}
		for _, f := range fs {
			got := f.Forecast()
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func newMonEnv(cfg Config) (*des.Engine, *vcluster.Cluster, *simnet.Network, *SystemMonitor) {
	eng := des.NewEngine()
	topo := cluster.NewTestTopology()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	return eng, vc, net, NewSystemMonitor(vc, net, cfg)
}

func TestSystemMonitorTracksCPULoad(t *testing.T) {
	eng, vc, _, mon := newMonEnv(Config{Style: StyleLastValue, Noise: 1e-9})
	vc.ApplyLoadScript(3, []vcluster.LoadStep{{At: 5 * des.Second, Avail: 0.4}})
	eng.RunUntil(20 * des.Second)
	snap := mon.Snapshot()
	eng.Shutdown()
	if math.Abs(snap.AvailCPU[3]-0.4) > 0.01 {
		t.Fatalf("monitored avail = %v, want ≈0.4", snap.AvailCPU[3])
	}
	if math.Abs(snap.AvailCPU[0]-1.0) > 0.01 {
		t.Fatalf("idle node avail = %v, want ≈1", snap.AvailCPU[0])
	}
	if snap.At != 20*des.Second {
		t.Fatalf("snapshot at %v", snap.At)
	}
	if mon.Samples() < 19 {
		t.Fatalf("samples = %d", mon.Samples())
	}
}

func TestSystemMonitorTracksNICUtil(t *testing.T) {
	eng, _, net, mon := newMonEnv(Config{Style: StyleLastValue, Noise: 1e-9})
	// Saturate node 0's edge link with periodic traffic.
	eng.Spawn("traffic", func(p *des.Proc) {
		for {
			net.Deliver(0, 1, 1<<20, func() {})
			p.Sleep(200 * des.Millisecond)
		}
	})
	eng.RunUntil(10 * des.Second)
	snap := mon.Snapshot()
	eng.Shutdown()
	if snap.NICUtil[0] < 0.1 {
		t.Fatalf("NIC utilization %v too low for saturating traffic", snap.NICUtil[0])
	}
	if snap.NICUtil[3] > 0.01 {
		t.Fatalf("idle node NIC utilization = %v", snap.NICUtil[3])
	}
}

func TestSnapshotCloneIndependent(t *testing.T) {
	s := IdleSnapshot(4)
	c := s.Clone()
	c.AvailCPU[0] = 0.1
	if s.AvailCPU[0] != 1.0 {
		t.Fatal("clone aliases parent")
	}
}

func TestNWSStyleSmoothsNoise(t *testing.T) {
	// With noisy sensors on a constant load, the NWS forecast should be
	// closer to truth than a single noisy reading.
	engA, vcA, _, monA := newMonEnv(Config{Style: StyleNWS, Noise: 0.2, Seed: 1})
	vcA.ApplyLoadScript(0, []vcluster.LoadStep{{At: 0, Avail: 0.5}})
	engA.RunUntil(60 * des.Second)
	snap := monA.Snapshot()
	engA.Shutdown()
	if math.Abs(snap.AvailCPU[0]-0.5) > 0.1 {
		t.Fatalf("NWS forecast = %v, want ≈0.5 despite 20%% sensor noise", snap.AvailCPU[0])
	}
}
