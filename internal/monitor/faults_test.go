package monitor

import (
	"math"
	"testing"

	"cbes/internal/des"
	"cbes/internal/vcluster"
)

// TestNoNoiseIsExactlyNoiseless pins the NoNoise sentinel: the zero Config
// defaults Noise to 0.01, so "exactly zero noise" needs Noise: NoNoise.
func TestNoNoiseIsExactlyNoiseless(t *testing.T) {
	if got := (Config{Noise: NoNoise}).noise(); got != 0 {
		t.Fatalf("NoNoise noise() = %v, want exactly 0", got)
	}
	if got := (Config{}).noise(); got != 0.01 {
		t.Fatalf("default noise() = %v, want 0.01", got)
	}
	if got := (Config{Noise: 0.05}).noise(); got != 0.05 {
		t.Fatalf("explicit noise() = %v, want 0.05", got)
	}

	eng, vc, _, mon := newMonEnv(Config{Noise: NoNoise})
	defer eng.Shutdown()
	vc.ApplyLoadScript(1, []vcluster.LoadStep{{At: 2 * des.Second, Avail: 0.37}})
	eng.RunUntil(10 * des.Second)
	snap := mon.Snapshot()
	// Noiseless LastValue sensors read ground truth bit-for-bit.
	if snap.AvailCPU[1] != 0.37 {
		t.Fatalf("noiseless forecast = %v, want exactly 0.37", snap.AvailCPU[1])
	}
	if snap.AvailCPU[0] != 1.0 {
		t.Fatalf("noiseless idle forecast = %v, want exactly 1", snap.AvailCPU[0])
	}
}

func TestSensorDropMarksNodeDown(t *testing.T) {
	eng, _, _, mon := newMonEnv(Config{Noise: NoNoise})
	defer eng.Shutdown()
	eng.ScheduleAt(3*des.Second, func() { mon.DropSensor(2) })
	eng.RunUntil(6 * des.Second)
	snap := mon.Snapshot()
	if snap.HealthOf(2) != HealthDown {
		t.Fatalf("health = %v, want down", snap.HealthOf(2))
	}
	if snap.AvailCPU[2] != 0 {
		t.Fatalf("down node AvailCPU = %v, want 0", snap.AvailCPU[2])
	}
	if snap.HealthOf(1) != HealthOK {
		t.Fatalf("unaffected node health = %v", snap.HealthOf(1))
	}
	ok, suspect, down := snap.HealthCounts()
	if ok != 7 || suspect != 0 || down != 1 {
		t.Fatalf("counts = %d/%d/%d, want 7/0/1", ok, suspect, down)
	}
	if d, s := LastHealthGauges(); d != 1 || s != 0 {
		t.Fatalf("gauges = %d down/%d suspect, want 1/0", d, s)
	}

	eng.ScheduleAt(7*des.Second, func() { mon.RestoreSensor(2) })
	eng.RunUntil(10 * des.Second)
	snap = mon.Snapshot()
	if snap.HealthOf(2) != HealthOK {
		t.Fatalf("health after restore = %v, want ok", snap.HealthOf(2))
	}
	if snap.AvailCPU[2] != 1.0 {
		t.Fatalf("restored AvailCPU = %v, want 1", snap.AvailCPU[2])
	}
}

func TestCrashedNodeDetectedAtNextSample(t *testing.T) {
	eng, vc, _, mon := newMonEnv(Config{Noise: NoNoise})
	defer eng.Shutdown()
	eng.ScheduleAt(5*des.Second+des.Millisecond, func() { vc.Crash(4) })
	// Crash happens just after the t=5s sample: the monitor cannot know yet.
	eng.RunUntil(5*des.Second + 2*des.Millisecond)
	if h := mon.Snapshot().HealthOf(4); h != HealthOK {
		t.Fatalf("health before next sample = %v, want ok (detection delay)", h)
	}
	// By the next sampling round the unreachable node is marked down.
	eng.RunUntil(7 * des.Second)
	snap := mon.Snapshot()
	if h := snap.HealthOf(4); h != HealthDown {
		t.Fatalf("health after sample = %v, want down", h)
	}
	if snap.AvailCPU[4] != 0 {
		t.Fatalf("crashed node AvailCPU = %v, want 0", snap.AvailCPU[4])
	}

	eng.ScheduleAt(8*des.Second+des.Millisecond, func() { vc.Recover(4) })
	eng.RunUntil(11 * des.Second)
	if h := mon.Snapshot().HealthOf(4); h != HealthOK {
		t.Fatalf("health after recovery = %v, want ok", h)
	}
}

func TestStalenessMarksSuspect(t *testing.T) {
	// StaleTTL defaults to 3 intervals; a 5-interval stall must trip it.
	eng, _, _, mon := newMonEnv(Config{Noise: NoNoise})
	defer eng.Shutdown()
	eng.ScheduleAt(4*des.Second, func() { mon.StallFor(5 * des.Second) })
	eng.RunUntil(8 * des.Second)
	snap := mon.Snapshot()
	for i := range snap.AvailCPU {
		if snap.HealthOf(i) != HealthSuspect {
			t.Fatalf("node %d health = %v during stall, want suspect", i, snap.HealthOf(i))
		}
	}
	if age := snap.AgeOf(0); math.Abs(age-5.0) > 0.5 {
		t.Fatalf("sample age = %v, want ≈5s (last sample at t=3s)", age)
	}
	if _, s := LastHealthGauges(); s != len(snap.AvailCPU) {
		t.Fatalf("suspect gauge = %d, want all %d nodes", s, len(snap.AvailCPU))
	}
	// Suspect data is still served (degraded prediction uses fallbacks),
	// availability forecasts are not zeroed.
	if snap.AvailCPU[0] != 1.0 {
		t.Fatalf("suspect node AvailCPU = %v, want last forecast 1.0", snap.AvailCPU[0])
	}
	eng.RunUntil(12 * des.Second)
	if h := mon.Snapshot().HealthOf(0); h != HealthOK {
		t.Fatalf("health after stall = %v, want ok", h)
	}
}

func TestCustomStaleTTL(t *testing.T) {
	eng, _, _, mon := newMonEnv(Config{Noise: NoNoise, StaleTTL: 10 * des.Second})
	defer eng.Shutdown()
	eng.ScheduleAt(3*des.Second, func() { mon.StallFor(5 * des.Second) })
	eng.RunUntil(6 * des.Second)
	// Age ≈4s < TTL 10s: still healthy with the longer budget.
	if h := mon.Snapshot().HealthOf(0); h != HealthOK {
		t.Fatalf("health = %v, want ok under 10s TTL", h)
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{
		HealthOK: "ok", HealthSuspect: "suspect", HealthDown: "down", Health(9): "unknown",
	} {
		if got := h.String(); got != want {
			t.Fatalf("Health(%d).String() = %q, want %q", h, got, want)
		}
	}
}
