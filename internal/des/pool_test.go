package des

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestEventRecycling pins the free-list behavior: a fired event's storage is
// handed out again by a later Schedule call instead of being allocated.
func TestEventRecycling(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(Second, func() {})
	e.Run()
	if e.FreeEvents() != 1 {
		t.Fatalf("FreeEvents = %d after one fired event, want 1", e.FreeEvents())
	}
	second := e.Schedule(Second, func() {})
	if second != first {
		t.Fatal("Schedule did not reuse the fired event's storage")
	}
	if e.ReusedEvents() != 1 {
		t.Fatalf("ReusedEvents = %d, want 1", e.ReusedEvents())
	}
	e.Run()
}

// TestCancelRecyclesEvent pins Remove-then-reschedule: a cancelled event goes
// back to the pool and the recycled handle schedules and fires normally.
func TestCancelRecyclesEvent(t *testing.T) {
	e := NewEngine()
	cancelled := e.Schedule(Second, func() { t.Fatal("cancelled event fired") })
	e.Cancel(cancelled)
	if e.FreeEvents() != 1 {
		t.Fatalf("FreeEvents = %d after cancel, want 1", e.FreeEvents())
	}
	fired := false
	ev := e.Schedule(2*Second, func() { fired = true })
	if ev != cancelled {
		t.Fatal("Schedule did not reuse the cancelled event's storage")
	}
	if !ev.Scheduled() {
		t.Fatal("recycled event not scheduled")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	if e.Now() != 2*Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
}

// TestScheduleArg checks the allocation-lean callback form fires with its
// argument at the right time and recycles like fn events.
func TestScheduleArg(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(a any) { got = append(got, a.(int)) }
	e.ScheduleArg(2*Second, record, 2)
	e.ScheduleArg(Second, record, 1)
	e.ScheduleArgAt(3*Second, record, 3)
	e.Run()
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	if e.FreeEvents() != 3 {
		t.Fatalf("FreeEvents = %d, want 3", e.FreeEvents())
	}
}

// miniSim runs a small randomized event cascade on e and returns the
// (label, time) firing sequence.
func miniSim(e *Engine, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var log []string
	var spawn func(depth, id int)
	spawn = func(depth, id int) {
		delay := Time(rng.Intn(1000)) * Millisecond
		ev := e.Schedule(delay, func() {
			log = append(log, fmt.Sprintf("%d.%d@%v", depth, id, e.Now()))
			if depth < 3 {
				for c := 0; c < 2; c++ {
					spawn(depth+1, 10*id+c)
				}
			}
		})
		if rng.Intn(5) == 0 {
			e.Cancel(ev)
		}
	}
	for i := 0; i < 8; i++ {
		spawn(0, i)
	}
	e.Run()
	return log
}

// TestResetDeterminism runs the same seeded cascade on a fresh engine and on
// a reused (Reset) one with a warm free list: the event orderings must be
// identical, i.e. pooling is invisible to simulation results.
func TestResetDeterminism(t *testing.T) {
	fresh := miniSim(NewEngine(), 42)

	e := NewEngine()
	miniSim(e, 7) // populate the free list with a different run
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("Reset left state: now=%v pending=%d processed=%d",
			e.Now(), e.Pending(), e.Processed())
	}
	if e.FreeEvents() == 0 {
		t.Fatal("Reset discarded the free list")
	}
	reused := miniSim(e, 42)

	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("pooled engine diverged from fresh engine:\nfresh:  %v\nreused: %v", fresh, reused)
	}
}

// TestResetRecyclesPending ensures events still queued at Reset time return
// to the free list.
func TestResetRecyclesPending(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i)*Second, func() {})
	}
	e.Reset()
	if e.FreeEvents() != 5 {
		t.Fatalf("FreeEvents = %d after Reset, want 5", e.FreeEvents())
	}
}
