package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*Second, func() { got = append(got, 3) })
	e.Schedule(1*Second, func() { got = append(got, 1) })
	e.Schedule(2*Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events fired out of order: %v", got[:i+1])
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Second, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event not scheduled")
	}
	e.Cancel(ev)
	if ev.Scheduled() {
		t.Fatal("event still scheduled after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel(ev) // double cancel is a no-op
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{Second, 2 * Second, 3 * Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2*Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
	e.RunUntil(10 * Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 10*Second {
		t.Fatalf("Now = %v, want 10s", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 50 {
			e.Schedule(Millisecond, schedule)
		}
	}
	e.Schedule(0, schedule)
	e.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if e.Now() != 49*Millisecond {
		t.Fatalf("Now = %v, want 49ms", e.Now())
	}
}

func TestSleepAndInterleave(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1 * Second)
		log = append(log, "a1")
		p.Sleep(2 * Second)
		log = append(log, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * Second)
		log = append(log, "b2")
		p.Sleep(2 * Second)
		log = append(log, "b4")
	})
	e.Run()
	want := []string{"a1", "b2", "a3", "b4"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d after Run", e.Live())
	}
}

func TestSignalWakeOrder(t *testing.T) {
	e := NewEngine()
	var sig Signal
	var log []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(Time(i) * Millisecond) // deterministic arrival order
			sig.Wait(p)
			log = append(log, i)
		})
	}
	e.Schedule(Second, func() { sig.Broadcast() })
	e.Run()
	for i := range log {
		if log[i] != i {
			t.Fatalf("wake order = %v, want FIFO", log)
		}
	}
}

func TestSignalWakeOne(t *testing.T) {
	e := NewEngine()
	var sig Signal
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	e.Schedule(Second, func() {
		if !sig.Wake() {
			t.Error("Wake found no waiter")
		}
	})
	e.RunUntil(2 * Second)
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	if sig.Waiting() != 2 {
		t.Fatalf("Waiting = %d, want 2", sig.Waiting())
	}
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown", e.Live())
	}
}

func TestKillRunsDefers(t *testing.T) {
	e := NewEngine()
	cleaned := false
	p := e.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		for {
			p.Sleep(Second)
		}
	})
	e.RunUntil(10 * Second)
	if p.Done() {
		t.Fatal("proc finished prematurely")
	}
	e.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Kill")
	}
	if !p.Done() {
		t.Fatal("proc not done after Kill")
	}
	// Stale wake-up event for the killed proc must be harmless.
	e.RunUntil(20 * Second)
}

func TestSpawnDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var log []int
		for i := 0; i < 20; i++ {
			i := i
			d := Time(rng.Intn(1000)) * Millisecond
			e.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				log = append(log, i)
			})
		}
		e.Run()
		return log
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// insertion order of their delays.
func TestQuickEventOrdering(t *testing.T) {
	prop := func(delays []uint32) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			dd := Time(d % 1e6)
			e.Schedule(dd*Microsecond, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FromSeconds and Seconds round-trip within float tolerance.
func TestQuickTimeRoundTrip(t *testing.T) {
	prop := func(ms uint32) bool {
		s := float64(ms) / 1000.0
		got := FromSeconds(s).Seconds()
		diff := got - s
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9*(1+s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromSecondsClamps(t *testing.T) {
	if FromSeconds(-5) != 0 {
		t.Fatal("negative seconds must clamp to 0")
	}
	if FromSeconds(1e30) != MaxTime {
		t.Fatal("huge seconds must clamp to MaxTime")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j)*Microsecond, func() {})
		}
		e.Run()
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}
