// Package des implements a deterministic discrete-event simulation engine
// with coroutine-style simulated processes.
//
// The engine is the foundation of the virtual-cluster substrate that stands
// in for the paper's physical Centurion and Orange Grove clusters: network
// transfers, CPU bursts, monitoring daemons, and background-load changes are
// all events on a single totally-ordered timeline.
//
// Determinism: events at equal timestamps fire in scheduling order (a strict
// FIFO tie-break), and at most one simulated process executes at any moment,
// so a run with a fixed seed is exactly reproducible.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulated timestamp.
const MaxTime Time = math.MaxInt64

// Seconds converts a simulated timestamp to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts a simulated timestamp to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromSeconds converts floating-point seconds to a simulated duration,
// saturating at MaxTime. Negative inputs are clamped to zero.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	f := s * float64(Second)
	if f >= float64(math.MaxInt64) {
		return MaxTime
	}
	return Time(f)
}

// String formats the timestamp as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a scheduled callback. The zero value is invalid; obtain events
// through Engine.Schedule or Engine.ScheduleAt.
//
// Fired and cancelled events are recycled through the engine's free list,
// so a retained *Event handle is only meaningful while the caller knows the
// event has not yet fired: once it fires (or is cancelled) the same Event
// may be handed out again by a later Schedule call. Every in-tree caller
// that retains a handle (e.g. vcluster's CPU completion event) clears it
// before or at fire time, which is the pattern new callers must follow.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index; -1 when not queued
	fn    func()
	// afn/arg is the allocation-lean callback form: a package-level (or
	// otherwise pre-existing) function plus one argument, avoiding the
	// closure allocation of fn on hot paths.
	afn func(any)
	arg any
}

// At reports the simulated time at which the event will fire.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is still pending in the queue.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel. It is not safe for
// concurrent use from multiple goroutines; simulated processes appear
// concurrent but are interleaved one at a time by the engine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool
	procs   int // live simulated processes (diagnostics)
	live    map[*Proc]struct{}
	events  uint64
	// free is the event free list: fired and cancelled events are recycled
	// here instead of being released to the garbage collector. The list is
	// bounded by the maximum number of simultaneously pending events, and
	// Reset keeps it warm across runs.
	free   []*Event
	reused uint64
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Processed reports the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// FreeEvents reports the current size of the event free list (diagnostics
// and pooling tests).
func (e *Engine) FreeEvents() int { return len(e.free) }

// ReusedEvents reports how many Schedule calls were satisfied from the
// free list instead of allocating.
func (e *Engine) ReusedEvents() uint64 { return e.reused }

// alloc hands out an event, recycled when possible.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.reused++
		return ev
	}
	return &Event{}
}

// recycle clears an event that will never fire again and returns it to the
// free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// Reset returns the engine to its initial state — time zero, empty queue,
// zero sequence counter — while keeping the event free list warm, so one
// engine can be reused across independent simulation runs without
// re-allocating its event population. All simulated processes must have
// finished (call Shutdown first); pending events are discarded without
// firing. A reset engine behaves identically to a freshly constructed one.
func (e *Engine) Reset() {
	if e.running {
		panic("des: Reset of a running engine")
	}
	if e.procs > 0 {
		panic("des: Reset with live processes; call Shutdown first")
	}
	for _, ev := range e.queue {
		e.recycle(ev)
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.events = 0
}

// Schedule queues fn to run after the given delay (clamped to >= 0) and
// returns a handle that can be cancelled.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at the absolute simulated time at. Times in
// the past are clamped to the current time.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if fn == nil {
		panic("des: ScheduleAt with nil callback")
	}
	ev := e.alloc()
	ev.fn = fn
	e.push(ev, at)
	return ev
}

// ScheduleArg queues fn(arg) to run after the given delay. It is the
// allocation-lean form of Schedule: when fn is a package-level function the
// call allocates nothing beyond the (recycled) event, where a closure
// capturing the same state would allocate on every call.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleArgAt(e.now+delay, fn, arg)
}

// ScheduleArgAt queues fn(arg) to run at the absolute simulated time at.
func (e *Engine) ScheduleArgAt(at Time, fn func(any), arg any) *Event {
	if fn == nil {
		panic("des: ScheduleArgAt with nil callback")
	}
	ev := e.alloc()
	ev.afn = fn
	ev.arg = arg
	e.push(ev, at)
	return ev
}

// push stamps the event's time and sequence number and inserts it.
func (e *Engine) push(ev *Event, at Time) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	ev.index = -1
	heap.Push(&e.queue, ev)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	e.recycle(ev)
}

// Step executes the earliest pending event if its timestamp is <= limit.
// It reports false when the queue is empty or the next event lies beyond
// limit. It allows callers to run the simulation until an external
// condition (e.g. "all application ranks finished") becomes true while
// daemon processes keep the queue non-empty.
func (e *Engine) Step(limit Time) bool { return e.step(limit) }

// step executes the earliest pending event. It reports false when the queue
// is empty or the next event lies beyond limit.
func (e *Engine) step(limit Time) bool {
	if len(e.queue) == 0 {
		return false
	}
	next := e.queue[0]
	if next.at > limit {
		return false
	}
	heap.Pop(&e.queue)
	if next.at > e.now {
		e.now = next.at
	}
	// Capture the callback, then recycle the event *before* invoking it so
	// any events the callback schedules can reuse this one immediately.
	fn, afn, arg := next.fn, next.afn, next.arg
	e.recycle(next)
	e.events++
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() { e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= limit and then advances the
// clock to limit (if the clock has not already passed it).
func (e *Engine) RunUntil(limit Time) {
	if e.running {
		panic("des: Engine.Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.step(limit) {
	}
	if limit < MaxTime && e.now < limit {
		e.now = limit
	}
}
