package des

import "fmt"

// procKilled is the sentinel panic value used to unwind a killed process.
type procKilled struct{}

// Proc is a simulated process: a goroutine whose execution is interleaved
// deterministically with the event loop. At most one Proc (or event
// callback) runs at a time; a Proc gives up control only inside blocking
// primitives such as Sleep, Park, or Signal.Wait.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan struct{} // engine -> proc
	yield   chan bool     // proc -> engine; true means the proc exited
	done    bool
	parked  bool
	killed  bool
	started bool
}

// Name reports the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Done reports whether the process body has returned or been killed.
func (p *Proc) Done() bool { return p.done }

// Spawn creates a simulated process and schedules its body to start at the
// current simulated time. The body runs in its own goroutine but is strictly
// interleaved with the event loop, so no locking is needed between processes.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan bool),
	}
	e.procs++
	if e.live == nil {
		e.live = make(map[*Proc]struct{})
	}
	e.live[p] = struct{}{}
	e.Schedule(0, func() {
		if p.done {
			return // killed by Shutdown before it ever started
		}
		p.started = true
		go func() {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(procKilled); !ok {
						panic(r)
					}
				}
				p.done = true
				p.eng.procs--
				delete(p.eng.live, p)
				p.yield <- true
			}()
			body(p)
		}()
		p.dispatch()
	})
	return p
}

// dispatch transfers control from the engine to the process and blocks until
// the process parks again or exits. It must only be called from engine
// context (an event callback).
func (p *Proc) dispatch() {
	if p.done {
		panic(fmt.Sprintf("des: dispatch to finished proc %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.yield
}

// Park blocks the process until another event calls Unpark. It is the
// low-level primitive beneath Sleep and Signal.
func (p *Proc) Park() {
	p.parked = true
	p.yield <- false
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Unpark makes a parked process runnable and runs it immediately (still
// within the current simulated instant). It must be called from engine
// context — an event callback or another process that is about to park.
// Unparking a process that is not parked panics: it indicates a lost-wakeup
// bug in the caller.
func (p *Proc) Unpark() {
	if p.done {
		return // killed while an unpark event was already queued
	}
	if !p.parked {
		panic(fmt.Sprintf("des: Unpark of non-parked proc %q", p.name))
	}
	p.parked = false
	p.dispatch()
}

// UnparkLater schedules an Unpark after delay without running it inline.
func (p *Proc) UnparkLater(delay Time) *Event {
	return p.eng.Schedule(delay, p.Unpark)
}

// Sleep suspends the process for the given simulated duration (clamped to a
// minimum of zero; a zero-length sleep still yields to equal-time events).
func (p *Proc) Sleep(d Time) {
	p.UnparkLater(d)
	p.Park()
}

// Kill terminates a parked process: its stack unwinds (running deferred
// functions) and it never runs again. Killing a finished process is a no-op.
// Kill must be called from engine context and only on parked processes.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if !p.parked {
		panic(fmt.Sprintf("des: Kill of running proc %q", p.name))
	}
	p.parked = false
	p.dispatch()
}

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Shutdown kills every live parked process. Call it after RunUntil when a
// simulation ends with daemons still sleeping, so their goroutines do not
// leak. Processes currently holding pending wake-up events are killed too;
// their stale events become no-ops.
func (e *Engine) Shutdown() {
	for len(e.live) > 0 {
		var victim *Proc
		for p := range e.live {
			if p.parked || !p.started {
				victim = p
				break
			}
		}
		if victim == nil {
			panic("des: Shutdown with live unparked processes")
		}
		if !victim.started {
			// Its start event never fired: nothing to unwind.
			victim.done = true
			e.procs--
			delete(e.live, victim)
			continue
		}
		victim.Kill()
	}
}

// Live reports the number of processes that have been spawned and not yet
// finished.
func (e *Engine) Live() int { return e.procs }

// Signal is a waiting place for simulated processes: a condition-variable
// analogue. The zero value is ready to use.
type Signal struct {
	waiters []*Proc
}

// Wait parks the calling process until Wake or Broadcast releases it.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.Park()
}

// Waiting reports how many processes are parked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Wake releases the longest-waiting live process, if any, and reports
// whether a process was released. Processes killed while waiting are
// discarded silently.
func (s *Signal) Wake() bool {
	for len(s.waiters) > 0 {
		p := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		if p.done {
			continue
		}
		p.Unpark()
		return true
	}
	return false
}

// Broadcast releases all waiting processes in FIFO order.
func (s *Signal) Broadcast() {
	for s.Wake() {
	}
}
