package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/mpisim"
	"cbes/internal/netmodel"
	"cbes/internal/profile"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

// fixture builds a calibrated evaluator for a small communicating app on
// the test topology, profiled on profMapping.
type fixture struct {
	topo  *cluster.Topology
	model *netmodel.Model
	prof  *profile.Profile
	eval  *Evaluator
	body  func(*mpisim.Rank)
}

func appBody(r *mpisim.Rank) {
	for i := 0; i < 20; i++ {
		r.Compute(0.05)
		if r.ID() == 0 {
			r.Send(1, 16<<10)
			r.Recv(1)
		} else {
			r.Recv(0)
			r.Send(0, 16<<10)
		}
	}
}

func simulate(topo *cluster.Topology, mapping []int, body func(*mpisim.Rank), load map[int]float64) float64 {
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	for node, a := range load {
		node, a := node, a
		eng.Schedule(0, func() { vc.SetAvailability(node, a) })
	}
	res := mpisim.Run(vc, net, mapping, body, mpisim.Options{AppName: "app"})
	return res.Elapsed.Seconds()
}

func newFixture(t *testing.T, profMapping []int) *fixture {
	return newFixtureOn(t, cluster.NewTestTopology(), profMapping)
}

// twoSwitchAlphas builds a homogeneous 2-switch topology (2 Alphas per
// switch) so connectivity effects can be isolated from architecture
// effects.
func twoSwitchAlphas() *cluster.Topology {
	b := cluster.NewBuilder("twoswitch")
	swA := b.Switch("swA", "3com-100", 24)
	swB := b.Switch("swB", "3com-100", 24)
	b.Uplink(swA, swB, cluster.BandwidthFast100, 5*des.Microsecond)
	for i := 0; i < 2; i++ {
		b.Node("a", cluster.ArchAlpha, swA, cluster.BandwidthFast100, 5*des.Microsecond)
	}
	for i := 0; i < 2; i++ {
		b.Node("b", cluster.ArchAlpha, swB, cluster.BandwidthFast100, 5*des.Microsecond)
	}
	return b.Build()
}

func newFixtureOn(t *testing.T, topo *cluster.Topology, profMapping []int) *fixture {
	t.Helper()
	model := bench.Calibrate(topo, bench.Options{Reps: 5})

	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, profMapping, appBody, mpisim.Options{AppName: "app"})

	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	prof, err := profile.FromTrace(res.Trace, topo, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.ComputeLambdas(model); err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(topo, model, prof)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{topo: topo, model: model, prof: prof, eval: eval, body: appBody}
}

func TestPredictSameMappingIdle(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	pred, err := f.eval.Predict(Mapping{0, 1}, snap)
	if err != nil {
		t.Fatal(err)
	}
	actual := simulate(f.topo, []int{0, 1}, f.body, nil)
	errPct := math.Abs(pred.Seconds-actual) / actual * 100
	if errPct > 2.0 {
		t.Fatalf("same-mapping prediction error %.2f%% (pred %v, actual %v)", errPct, pred.Seconds, actual)
	}
}

func TestPredictCrossSwitchMapping(t *testing.T) {
	// Same architecture everywhere: isolates the connectivity effect.
	f := newFixtureOn(t, twoSwitchAlphas(), []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	pred, err := f.eval.Predict(Mapping{0, 2}, snap)
	if err != nil {
		t.Fatal(err)
	}
	actual := simulate(f.topo, []int{0, 2}, f.body, nil)
	errPct := math.Abs(pred.Seconds-actual) / actual * 100
	if errPct > 5.0 {
		t.Fatalf("cross-switch prediction error %.2f%% (pred %v, actual %v)", errPct, pred.Seconds, actual)
	}
	// And the prediction must rank cross-switch slower than same-switch.
	same, _ := f.eval.Predict(Mapping{0, 1}, snap)
	if pred.Seconds <= same.Seconds {
		t.Fatalf("cross-switch predicted %v <= same-switch %v", pred.Seconds, same.Seconds)
	}
}

func TestPredictCrossArchRemapLooser(t *testing.T) {
	// Remapping one rank from Alpha to Intel restructures the
	// compute/communication overlap, which the constant-λ correction cannot
	// fully track (§3.1). The error grows but must stay moderate.
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	pred, err := f.eval.Predict(Mapping{0, 4}, snap)
	if err != nil {
		t.Fatal(err)
	}
	actual := simulate(f.topo, []int{0, 4}, f.body, nil)
	errPct := math.Abs(pred.Seconds-actual) / actual * 100
	if errPct > 15.0 {
		t.Fatalf("cross-arch prediction error %.2f%% (pred %v, actual %v)", errPct, pred.Seconds, actual)
	}
	// The ranking must still be correct: Alpha+Intel slower than two Alphas.
	same, _ := f.eval.Predict(Mapping{0, 1}, snap)
	if pred.Seconds <= same.Seconds {
		t.Fatal("mixed-arch mapping should be predicted slower")
	}
}

func TestPredictSlowArchMapping(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	// Nodes 4,5 are Intel (speed 0.78): prediction and simulation must both
	// slow down accordingly.
	pred, err := f.eval.Predict(Mapping{4, 5}, snap)
	if err != nil {
		t.Fatal(err)
	}
	actual := simulate(f.topo, []int{4, 5}, f.body, nil)
	errPct := math.Abs(pred.Seconds-actual) / actual * 100
	if errPct > 5.0 {
		t.Fatalf("cross-arch prediction error %.2f%% (pred %v, actual %v)", errPct, pred.Seconds, actual)
	}
}

func TestPredictUnderLoad(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	// Node 1 at 50% availability, known to the snapshot.
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	snap.AvailCPU[1] = 0.5
	pred, err := f.eval.Predict(Mapping{0, 1}, snap)
	if err != nil {
		t.Fatal(err)
	}
	actual := simulate(f.topo, []int{0, 1}, f.body, map[int]float64{1: 0.5})
	errPct := math.Abs(pred.Seconds-actual) / actual * 100
	if errPct > 8.0 {
		t.Fatalf("loaded prediction error %.2f%% (pred %v, actual %v)", errPct, pred.Seconds, actual)
	}
	// Load must slow the prediction versus idle.
	idle, _ := f.eval.Predict(Mapping{0, 1}, monitor.IdleSnapshot(f.topo.NumNodes()))
	if pred.Seconds <= idle.Seconds {
		t.Fatal("load did not slow the prediction")
	}
}

func TestStaleSnapshotMispredicts(t *testing.T) {
	// The paper's phase-3 finding: a prediction made with a stale snapshot
	// (load appeared after the snapshot) underestimates badly.
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes()) // stale: believes idle
	pred, _ := f.eval.Predict(Mapping{0, 1}, snap)
	actual := simulate(f.topo, []int{0, 1}, f.body, map[int]float64{1: 0.6})
	errPct := math.Abs(pred.Seconds-actual) / actual * 100
	if errPct < 5.0 {
		t.Fatalf("stale snapshot should mispredict, got only %.2f%%", errPct)
	}
}

func TestNCSIgnoresCommunication(t *testing.T) {
	// On a homogeneous topology NCS cannot distinguish same-switch from
	// cross-switch mappings — exactly why it loses to CS in §6.
	f := newFixtureOn(t, twoSwitchAlphas(), []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	ncs := &Evaluator{Topo: f.topo, Model: f.model, Prof: f.prof, IgnoreComm: true}
	same, _ := ncs.Predict(Mapping{0, 1}, snap)
	cross, _ := ncs.Predict(Mapping{0, 2}, snap)
	if math.Abs(same.Seconds-cross.Seconds) > 1e-9 {
		t.Fatalf("NCS distinguished mappings: %v vs %v", same.Seconds, cross.Seconds)
	}
	full, _ := f.eval.Predict(Mapping{0, 1}, snap)
	if same.Seconds >= full.Seconds {
		t.Fatal("NCS score should be below the full prediction (no C term)")
	}
}

func TestCoLocationPenalty(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	// Two ranks on one single-CPU node: timesharing halves ACPU.
	co, err := f.eval.Predict(Mapping{0, 0}, snap)
	if err != nil {
		t.Fatal(err)
	}
	apart, _ := f.eval.Predict(Mapping{0, 1}, snap)
	if co.Seconds <= apart.Seconds {
		t.Fatalf("co-location on single CPU not penalized: %v <= %v", co.Seconds, apart.Seconds)
	}
	actual := simulate(f.topo, []int{0, 0}, f.body, nil)
	errPct := math.Abs(co.Seconds-actual) / actual * 100
	if errPct > 20 {
		t.Fatalf("co-located prediction error %.1f%% (pred %v, actual %v)", errPct, co.Seconds, actual)
	}
	// On a dual-CPU node co-location is fine: multiplicity 2 <= CPUs.
	dual, err := f.eval.Predict(Mapping{4, 4}, snap)
	if err != nil {
		t.Fatal(err)
	}
	dualApart, _ := f.eval.Predict(Mapping{4, 5}, snap)
	// Communication moves to loopback, so co-located can even be faster;
	// at minimum it must not pay a timesharing penalty.
	if dual.Seconds > dualApart.Seconds*1.05 {
		t.Fatalf("dual-CPU co-location penalized: %v vs %v", dual.Seconds, dualApart.Seconds)
	}
}

func TestPredictValidation(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	if _, err := f.eval.Predict(Mapping{0}, snap); err == nil {
		t.Fatal("rank-count mismatch should error")
	}
	if _, err := f.eval.Predict(Mapping{0, 99}, snap); err == nil {
		t.Fatal("invalid node should error")
	}
	if err := (Mapping{}).Validate(f.topo); err == nil {
		t.Fatal("empty mapping should error")
	}
}

func TestNewEvaluatorChecks(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	bad := *f.prof
	bad.Cluster = "elsewhere"
	if _, err := NewEvaluator(f.topo, f.model, &bad); err == nil {
		t.Fatal("cluster mismatch should error")
	}
	bad2 := *f.prof
	bad2.LambdasReady = false
	if _, err := NewEvaluator(f.topo, f.model, &bad2); err == nil {
		t.Fatal("missing lambdas should error")
	}
}

func TestCompare(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	ms := []Mapping{{0, 4}, {0, 1}, {4, 5}}
	preds, best, err := f.eval.Compare(ms, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatal("wrong prediction count")
	}
	if best != 1 {
		t.Fatalf("best = %d (%v), want 1 (same-switch Alphas)", best, preds[best].Seconds)
	}
	if _, _, err := f.eval.Compare(nil, snap); err == nil {
		t.Fatal("empty compare should error")
	}
}

func TestExplain(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	pred, err := f.eval.Predict(Mapping{0, 4}, snap)
	if err != nil {
		t.Fatal(err)
	}
	out := pred.Explain(f.topo)
	if !strings.Contains(out, "predicted execution time") {
		t.Fatalf("explain:\n%s", out)
	}
	// The critical rank is marked and the node names resolve.
	if !strings.Contains(out, "*") {
		t.Fatal("critical rank not marked")
	}
	if !strings.Contains(out, f.topo.NodeName(0)) || !strings.Contains(out, f.topo.NodeName(4)) {
		t.Fatalf("node names missing:\n%s", out)
	}
	// Nil topo falls back to numeric names.
	if !strings.Contains(pred.Explain(nil), "node0") {
		t.Fatal("nil-topo fallback broken")
	}
}

func TestMappingHelpers(t *testing.T) {
	m := Mapping{3, 1, 3}
	c := m.Clone()
	c[0] = 9
	if m[0] != 3 {
		t.Fatal("clone aliases")
	}
	if !m.Equal(Mapping{3, 1, 3}) || m.Equal(Mapping{3, 1}) || m.Equal(Mapping{3, 1, 4}) {
		t.Fatal("Equal broken")
	}
	mult := m.Multiplicity()
	if mult[3] != 2 || mult[1] != 1 {
		t.Fatalf("multiplicity: %v", mult)
	}
}

// Property: prediction is monotone in snapshot availability — degrading any
// node's CPU availability never speeds up the prediction.
func TestQuickPredictionMonotoneInLoad(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	prop := func(a1, a2 uint8) bool {
		s1 := monitor.IdleSnapshot(f.topo.NumNodes())
		s2 := monitor.IdleSnapshot(f.topo.NumNodes())
		av1 := 0.05 + 0.95*float64(a1)/255
		av2 := 0.05 + 0.95*float64(a2)/255
		s1.AvailCPU[0] = av1
		s2.AvailCPU[0] = av2
		p1, err1 := f.eval.Predict(Mapping{0, 1}, s1)
		p2, err2 := f.eval.Predict(Mapping{0, 1}, s2)
		if err1 != nil || err2 != nil {
			return false
		}
		if av1 <= av2 {
			return p1.Seconds >= p2.Seconds-1e-12
		}
		return p2.Seconds >= p1.Seconds-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: S_M equals the max over per-process totals in every segment.
func TestQuickMaxConsistency(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	prop := func(n1, n2 uint8) bool {
		m := Mapping{int(n1) % 8, int(n2) % 8}
		pred, err := f.eval.Predict(m, snap)
		if err != nil {
			return false
		}
		total := 0.0
		for _, seg := range pred.Segments {
			max := 0.0
			for _, pe := range seg.Procs {
				if pe.Total() > max {
					max = pe.Total()
				}
			}
			if math.Abs(max-seg.Seconds) > 1e-12 {
				return false
			}
			total += seg.Seconds
		}
		return math.Abs(total-pred.Seconds) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredict(b *testing.B) {
	topo := cluster.NewTestTopology()
	model := bench.Calibrate(topo, bench.Options{Reps: 3})
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, []int{0, 1}, appBody, mpisim.Options{AppName: "app"})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	prof, _ := profile.FromTrace(res.Trace, topo, speeds)
	prof.ComputeLambdas(model)
	eval, _ := NewEvaluator(topo, model, prof)
	snap := monitor.IdleSnapshot(topo.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Predict(Mapping{i % 8, (i + 3) % 8}, snap); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompareSkipsNaNPredictions(t *testing.T) {
	// Regression: best-mapping selection used "candidate < best", which a
	// NaN prediction (e.g. a corrupt availability reading) never satisfies,
	// so a NaN candidate in slot 0 won the whole comparison.
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	snap.AvailCPU[2] = math.NaN()
	ms := []Mapping{{2, 3}, {0, 1}, {2, 1}}
	preds, best, err := f.eval.Compare(ms, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(preds[0].Seconds) || !math.IsNaN(preds[2].Seconds) {
		t.Fatalf("expected NaN predictions for node-2 mappings: %v, %v",
			preds[0].Seconds, preds[2].Seconds)
	}
	if best != 1 {
		t.Fatalf("best = %d (%.6g), want the only finite candidate 1", best, preds[best].Seconds)
	}
}

func TestCompareParallelMatchesSequential(t *testing.T) {
	// Large batches fan out to a worker pool; result order and best index
	// must match the sequential path.
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	var ms []Mapping
	for a := 0; a < f.topo.NumNodes(); a++ {
		for b := 0; b < f.topo.NumNodes(); b++ {
			if a != b {
				ms = append(ms, Mapping{a, b})
			}
		}
	}
	preds, best, err := f.eval.Compare(ms, snap)
	if err != nil {
		t.Fatal(err)
	}
	wantBest := -1
	for i, m := range ms {
		p, err := f.eval.Predict(m, snap)
		if err != nil {
			t.Fatal(err)
		}
		if p.Seconds != preds[i].Seconds {
			t.Fatalf("mapping %v: parallel %v != sequential %v", m, preds[i].Seconds, p.Seconds)
		}
		if wantBest < 0 || p.Seconds < preds[wantBest].Seconds {
			wantBest = i
		}
	}
	if best != wantBest {
		t.Fatalf("best = %d, want %d", best, wantBest)
	}
}

func TestPredictBrownoutSketch(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	m := Mapping{2, 3}
	sketch, err := f.eval.PredictBrownout(m)
	if err != nil {
		t.Fatal(err)
	}
	if !sketch.Brownout {
		t.Fatal("brownout prediction not labeled")
	}
	if len(sketch.Segments) != 0 {
		t.Fatalf("brownout sketch carries %d segments, want none (coarse by design)", len(sketch.Segments))
	}
	if sketch.Seconds <= 0 {
		t.Fatalf("brownout sketch predicted %v seconds", sketch.Seconds)
	}
	// The sketch assumes one critical rank for the whole run, so it can
	// never exceed the full nominal-conditions prediction (sum of
	// per-segment maxima ≥ max of per-rank sums) — but it should stay in
	// its ballpark.
	full, err := f.eval.Predict(m, monitor.IdleSnapshot(f.topo.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	if sketch.Seconds > full.Seconds*1.0001 {
		t.Fatalf("sketch %v exceeds full nominal prediction %v", sketch.Seconds, full.Seconds)
	}
	if sketch.Seconds < full.Seconds/4 {
		t.Fatalf("sketch %v implausibly far below full prediction %v", sketch.Seconds, full.Seconds)
	}
}

func TestPredictBrownoutValidates(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	if _, err := f.eval.PredictBrownout(Mapping{0}); err == nil {
		t.Fatal("wrong-arity mapping accepted")
	}
	if _, err := f.eval.PredictBrownout(Mapping{0, 99}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}
