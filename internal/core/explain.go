package core

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the prediction as a human-readable breakdown: per
// segment, the per-process computation (R) and communication (C)
// contributions of eq. 4, with the critical process marked — the view an
// operator needs to understand *why* CBES prefers one mapping.
func (p *Prediction) Explain(topo interface{ NodeName(int) string }) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "predicted execution time: %.3fs over %d segment(s)\n",
		p.Seconds, len(p.Segments))
	for _, seg := range p.Segments {
		fmt.Fprintf(&sb, "segment %q: %.3fs (critical rank %d)\n",
			seg.Name, seg.Seconds, seg.Critical)
		procs := append([]ProcEstimate(nil), seg.Procs...)
		sort.Slice(procs, func(i, j int) bool { return procs[i].Total() > procs[j].Total() })
		for _, pe := range procs {
			mark := " "
			if pe.Rank == seg.Critical {
				mark = "*"
			}
			node := p.Mapping[pe.Rank]
			name := fmt.Sprintf("node%d", node)
			if topo != nil {
				name = topo.NodeName(node)
			}
			fmt.Fprintf(&sb, " %s rank %2d on %-12s R=%8.3fs  C=%8.3fs  total=%8.3fs\n",
				mark, pe.Rank, name, pe.R, pe.C, pe.Total())
		}
	}
	return sb.String()
}
