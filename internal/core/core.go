// Package core implements the heart of CBES: the mapping evaluation
// operation of §3, which predicts the execution time an application would
// achieve under a candidate mapping, given the system profile (network
// latency model), the application profile, and a snapshot of current
// resource availability.
//
// For a mapping M (eq. 3) the prediction is
//
//	S_M = max_i (R_i + C_i)                                  (eq. 4)
//	R_i = (X_i + O_i) · Speed_profile_i/Speed_j · 1/ACPU_j   (eq. 5)
//	Θ_i = Σ message groups mc · Lc(·,·,ms)                   (eq. 6)
//	λ_i = B_i / Θ_i^profile                                  (eq. 7)
//	C_i = Θ_i · λ_i                                          (eq. 8)
//
// summed over the profile's segments. ACPU_j generalizes the paper's
// per-node availability to co-located ranks: k ranks sharing a node with
// c processors see their share scaled by min(1, c/k).
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cbes/internal/cluster"
	"cbes/internal/monitor"
	"cbes/internal/netmodel"
	"cbes/internal/profile"
)

// ErrNodeDown reports a mapping that places a rank on a node whose
// snapshot health is HealthDown. Callers match it with errors.Is; the
// wrapped message names the rank and node.
var ErrNodeDown = errors.New("node down")

// checkNodesUp returns a wrapped ErrNodeDown if any rank of m sits on a
// down node of snap, and whether any mapped node's data is stale
// (HealthSuspect) — the degraded-prediction trigger.
func checkNodesUp(m Mapping, snap *monitor.Snapshot) (anyStale bool, err error) {
	if snap.Health == nil {
		return false, nil
	}
	for r, n := range m {
		switch snap.HealthOf(n) {
		case monitor.HealthDown:
			metricNodeDownErrors.Inc()
			return false, fmt.Errorf("core: rank %d mapped to node %d: %w", r, n, ErrNodeDown)
		case monitor.HealthSuspect:
			anyStale = true
		}
	}
	return anyStale, nil
}

// degradedSnapshot substitutes profile-only fallback values for every
// stale (HealthSuspect) node of snap: nominal CPU availability and an idle
// NIC, i.e. the prediction degrades to what the profile alone supports
// rather than trusting forecasts past their TTL. The input is not
// modified.
func degradedSnapshot(snap *monitor.Snapshot) *monitor.Snapshot {
	c := snap.Clone()
	for i, h := range c.Health {
		if h == monitor.HealthSuspect {
			c.AvailCPU[i] = 1.0
			c.NICUtil[i] = 0.0
		}
	}
	return c
}

// Mapping assigns each application rank (index) to a cluster node (value) —
// the set of (task, node) pairs of eq. 3.
type Mapping []int

// Clone copies the mapping.
func (m Mapping) Clone() Mapping { return append(Mapping(nil), m...) }

// Validate checks that every rank is assigned to an existing node.
func (m Mapping) Validate(topo *cluster.Topology) error {
	if len(m) == 0 {
		return fmt.Errorf("core: empty mapping")
	}
	for r, n := range m {
		if n < 0 || n >= topo.NumNodes() {
			return fmt.Errorf("core: rank %d mapped to invalid node %d", r, n)
		}
	}
	return nil
}

// Multiplicity returns how many ranks the mapping assigns to each node.
func (m Mapping) Multiplicity() map[int]int {
	mult := map[int]int{}
	for _, n := range m {
		mult[n]++
	}
	return mult
}

// Equal reports whether two mappings are identical.
func (m Mapping) Equal(o Mapping) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// ProcEstimate is the per-process breakdown of a prediction.
type ProcEstimate struct {
	Rank int
	R    float64 // computation contribution (eq. 5), seconds
	C    float64 // communication contribution (eq. 8), seconds
}

// Total is R + C.
func (p ProcEstimate) Total() float64 { return p.R + p.C }

// SegmentEstimate is the prediction for one profile segment.
type SegmentEstimate struct {
	Name     string
	Seconds  float64 // max_i (R_i + C_i)
	Critical int     // i_M: the rank attaining the max
	Procs    []ProcEstimate
}

// Prediction is a complete execution-time prediction for one mapping.
type Prediction struct {
	Mapping  Mapping
	Seconds  float64 // Σ over segments of S_M
	Segments []SegmentEstimate
	// Degraded reports that at least one mapped node's monitoring data was
	// stale, so its terms used profile-only fallback values (nominal CPU
	// availability, idle NIC) instead of forecasts.
	Degraded bool
	// StaleNodes lists the mapped nodes that triggered the fallback, in
	// ascending node order.
	StaleNodes []int
	// Brownout reports that the prediction was served from the profile-only
	// fast path (nominal resource conditions for every node) because the
	// service was shedding load — a cheaper, explicitly-labeled answer in
	// the spirit of Degraded, but triggered by overload rather than stale
	// monitoring data.
	Brownout bool
}

// Evaluator predicts execution times for mappings of one profiled
// application on one calibrated cluster. It is the core CBES module that
// serves mapping-comparison requests.
//
// An Evaluator is safe for concurrent use: Predict, Energy, and Compare may
// be called from multiple goroutines, and each Scorer drawn from it carries
// its own scratch state. Do not copy an Evaluator after first use (derive
// the NCS variant with CommBlind instead).
type Evaluator struct {
	Topo  *cluster.Topology
	Model *netmodel.Model
	Prof  *profile.Profile
	// IgnoreComm drops the communication term C_i entirely. This is the
	// cost function of the NCS baseline scheduler of §6: it can rank
	// mappings by computation speed but its scores are not execution-time
	// predictions.
	IgnoreComm bool

	mu     sync.Mutex // guards lazy fastIx construction
	fastIx *fastIndex
	pool   sync.Pool // *Scorer arena for Energy

	nominalOnce sync.Once
	nominal     *monitor.Snapshot // lazily-built brownout view (see PredictBrownout)
	brownAgg    []brownoutAgg     // lazily-built per-rank profile aggregate
}

// brownoutAgg collapses one rank's profile across every segment — the
// precomputation behind the O(ranks) brownout sketch. work is
// Σ(X+O)·ProfSpeed (the speed-independent numerator of eq. 5's R term);
// sends/recvs merge the rank's message groups λ-weighted, so one
// latency lookup per (peer, size) replaces one per segment.
type brownoutAgg struct {
	work  float64
	sends []aggMsg
	recvs []aggMsg
}

// aggMsg is a λ-weighted message-group aggregate: wcount · lat(size)
// approximates Σ_segments λ·Count·lat(size) for one peer.
type aggMsg struct {
	peer   int
	size   int64
	wcount float64
}

// addWeighted merges λ·Count for one message group into the aggregate.
func addWeighted(groups []aggMsg, peer int, size int64, w float64) []aggMsg {
	for i := range groups {
		if groups[i].peer == peer && groups[i].size == size {
			groups[i].wcount += w
			return groups
		}
	}
	return append(groups, aggMsg{peer: peer, size: size, wcount: w})
}

// NewEvaluator builds an evaluator after sanity-checking its inputs. The
// fast-path lookup tables are precomputed here, so the evaluator can be
// shared across scheduler workers without further synchronization.
func NewEvaluator(topo *cluster.Topology, model *netmodel.Model, prof *profile.Profile) (*Evaluator, error) {
	if prof.Cluster != topo.Name {
		return nil, fmt.Errorf("core: profile from cluster %q, topology is %q", prof.Cluster, topo.Name)
	}
	if !prof.LambdasReady {
		return nil, fmt.Errorf("core: profile lambdas not computed; call Profile.ComputeLambdas first")
	}
	e := &Evaluator{Topo: topo, Model: model, Prof: prof}
	e.fast()
	return e, nil
}

// Predict evaluates mapping m under the resource conditions of snap and
// returns the execution-time prediction.
func (e *Evaluator) Predict(m Mapping, snap *monitor.Snapshot) (*Prediction, error) {
	start := time.Now()
	defer func() {
		metricPredicts.Inc()
		metricPredictSeconds.Observe(time.Since(start).Seconds())
	}()
	if len(m) != e.Prof.Ranks {
		return nil, fmt.Errorf("core: mapping has %d ranks, profile has %d", len(m), e.Prof.Ranks)
	}
	if err := m.Validate(e.Topo); err != nil {
		return nil, err
	}
	anyStale, err := checkNodesUp(m, snap)
	if err != nil {
		return nil, err
	}
	mult := m.Multiplicity()
	pred := &Prediction{Mapping: m.Clone()}
	if anyStale {
		// Degraded mode: evaluate against the profile-only fallback view.
		snap = degradedSnapshot(snap)
		pred.Degraded = true
		seen := map[int]bool{}
		for _, n := range m {
			if !seen[n] && snap.HealthOf(n) == monitor.HealthSuspect {
				seen[n] = true
				pred.StaleNodes = append(pred.StaleNodes, n)
			}
		}
		sort.Ints(pred.StaleNodes)
		metricDegradedPredicts.Inc()
	}
	for _, seg := range e.Prof.Segments {
		se := SegmentEstimate{Name: seg.Name, Critical: -1}
		for i := range seg.Procs {
			pp := &seg.Procs[i]
			node := m[pp.Rank]
			est := ProcEstimate{Rank: pp.Rank}
			est.R = e.computeTerm(pp, node, mult[node], snap)
			if !e.IgnoreComm {
				est.C = e.commTerm(pp, m, snap)
			}
			se.Procs = append(se.Procs, est)
			if t := est.Total(); se.Critical < 0 || t > se.Seconds {
				se.Seconds = t
				se.Critical = pp.Rank
			}
		}
		pred.Seconds += se.Seconds
		pred.Segments = append(pred.Segments, se)
	}
	return pred, nil
}

// PredictBrownout estimates mapping m against nominal resource
// conditions — full CPU availability and idle NICs, ignoring monitoring
// data entirely — from a per-rank aggregate of the profile rather than
// a segment-by-segment walk. It is the brownout fast path the service
// uses while shedding load, so it MUST be cheap: O(ranks) instead of
// Predict's O(segments × ranks), or the degraded path would consume the
// very capacity whose exhaustion triggered it. The answer depends only
// on the profile and the topology (valid for the process lifetime,
// cacheable without an epoch), is coarser than Predict — the critical
// rank is assumed constant across the run, so barrier effects inside
// segments are lost and no per-segment breakdown is produced — and is
// explicitly labeled via Prediction.Brownout.
func (e *Evaluator) PredictBrownout(m Mapping) (*Prediction, error) {
	if len(m) != e.Prof.Ranks {
		return nil, fmt.Errorf("core: mapping has %d ranks, profile has %d", len(m), e.Prof.Ranks)
	}
	if err := m.Validate(e.Topo); err != nil {
		return nil, err
	}
	e.nominalOnce.Do(func() {
		n := e.Topo.NumNodes()
		e.nominal = &monitor.Snapshot{
			AvailCPU: make([]float64, n),
			NICUtil:  make([]float64, n),
		}
		for i := range e.nominal.AvailCPU {
			e.nominal.AvailCPU[i] = 1.0
		}
		aggs := make([]brownoutAgg, e.Prof.Ranks)
		for si := range e.Prof.Segments {
			for pi := range e.Prof.Segments[si].Procs {
				pp := &e.Prof.Segments[si].Procs[pi]
				a := &aggs[pp.Rank]
				a.work += (pp.X + pp.O) * pp.ProfSpeed
				if pp.Lambda == 0 {
					continue
				}
				for _, g := range pp.Sends {
					a.sends = addWeighted(a.sends, g.Peer, g.Size, pp.Lambda*float64(g.Count))
				}
				for _, g := range pp.Recvs {
					a.recvs = addWeighted(a.recvs, g.Peer, g.Size, pp.Lambda*float64(g.Count))
				}
			}
		}
		e.brownAgg = aggs
	})
	mult := m.Multiplicity()
	pred := &Prediction{Mapping: m.Clone(), Brownout: true}
	for r := range e.brownAgg {
		a := &e.brownAgg[r]
		node := m[r]
		n := e.Topo.Node(node)
		speed, ok := e.Prof.ArchSpeed[n.Arch]
		if !ok || speed <= 0 {
			speed = n.Speed
		}
		acpu := 1.0
		if co := mult[node]; co > 1 {
			if share := float64(n.CPUs) / float64(co); share < 1 {
				acpu = share
			}
		}
		total := a.work / speed / acpu
		if !e.IgnoreComm {
			for _, g := range a.sends {
				total += g.wcount * e.Model.Latency(node, m[g.peer], g.size, e.nominal)
			}
			for _, g := range a.recvs {
				total += g.wcount * e.Model.Latency(m[g.peer], node, g.size, e.nominal)
			}
		}
		if total > pred.Seconds {
			pred.Seconds = total
		}
	}
	metricBrownoutPredicts.Inc()
	return pred, nil
}

// computeTerm is R_i of eq. 5.
func (e *Evaluator) computeTerm(pp *profile.ProcProfile, node, coLocated int, snap *monitor.Snapshot) float64 {
	n := e.Topo.Node(node)
	speed, ok := e.Prof.ArchSpeed[n.Arch]
	if !ok || speed <= 0 {
		// Fall back to the architecture's nominal speed when the profile
		// lacks a measurement (should not happen with bench-built profiles).
		speed = n.Speed
	}
	acpu := snap.AvailCPU[node]
	if coLocated > 1 {
		share := float64(n.CPUs) / float64(coLocated)
		if share < 1 {
			acpu *= share
		}
	}
	if acpu < 0.01 {
		acpu = 0.01
	}
	return (pp.X + pp.O) * (pp.ProfSpeed / speed) * (1 / acpu)
}

// commTerm is C_i = λ_i · Θ_i (eqs. 6 and 8), with Lc the load-adjusted
// latency estimate of the network model.
func (e *Evaluator) commTerm(pp *profile.ProcProfile, m Mapping, snap *monitor.Snapshot) float64 {
	if pp.Lambda == 0 {
		return 0
	}
	theta := profile.Theta(pp, m, func(src, dst int, size int64) float64 {
		return e.Model.Latency(src, dst, size, snap)
	})
	return theta * pp.Lambda
}

// compareParallelThreshold is the batch size above which Compare fans out
// to a worker pool; smaller batches are not worth the goroutine overhead.
const compareParallelThreshold = 4

// Compare evaluates a batch of candidate mappings (a mapping-comparison
// request from an external client such as a scheduler) and returns the
// predictions in the same order plus the index of the fastest. Large
// batches are evaluated concurrently by a bounded worker pool; the result
// is identical to the sequential evaluation.
func (e *Evaluator) Compare(ms []Mapping, snap *monitor.Snapshot) ([]*Prediction, int, error) {
	if len(ms) == 0 {
		return nil, -1, fmt.Errorf("core: no mappings to compare")
	}
	metricCompares.Inc()
	metricCompareMappings.Add(uint64(len(ms)))
	preds := make([]*Prediction, len(ms))
	if workers := boundedWorkers(len(ms)); workers > 1 && len(ms) >= compareParallelThreshold {
		errs := make([]error, len(ms))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(ms) {
						return
					}
					preds[i], errs[i] = e.Predict(ms[i], snap)
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, -1, err
			}
		}
	} else {
		for i, m := range ms {
			p, err := e.Predict(m, snap)
			if err != nil {
				return nil, -1, err
			}
			preds[i] = p
		}
	}
	// NaN-aware best selection: a NaN prediction (corrupt profile or model)
	// must never win by making every comparison false.
	best := -1
	for i, p := range preds {
		if math.IsNaN(p.Seconds) {
			continue
		}
		if best < 0 || p.Seconds < preds[best].Seconds {
			best = i
		}
	}
	if best < 0 {
		best = 0 // every candidate NaN: keep the legacy fallback
	}
	return preds, best, nil
}

// boundedWorkers sizes a worker pool for n independent evaluations.
func boundedWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
