// Observability for the mapping-evaluation core. Every metric here is a
// pre-resolved atomic from internal/obs, so the instrumentation cost on
// the fast path is one uncontended atomic add per event (~single-digit
// ns, guarded by TestCounterCostBudget in internal/obs) against delta
// evaluations that cost hundreds of ns to µs each.
package core

import "cbes/internal/obs"

var (
	// Full prediction path (Predict — allocation-heavy, RPC-facing).
	metricPredicts = obs.Default().Counter(
		"cbes_core_predict_total", "Full Predict evaluations (eq. 4 with breakdown).")
	metricPredictSeconds = obs.Default().Histogram(
		"cbes_core_predict_seconds", "Latency of full Predict evaluations.", nil)

	// Scorer fast path (Energy/Apply/Undo — the scheduler hot loop).
	metricEnergyFull = obs.Default().Counter(
		"cbes_core_energy_evals_total", "Full allocation-free Scorer.Energy evaluations.")
	metricEnergyDelta = obs.Default().Counter(
		"cbes_core_delta_evals_total", "Incremental Scorer.Apply delta evaluations.")
	metricUndos = obs.Default().Counter(
		"cbes_core_undo_total", "Scorer.Undo reversions (rejected proposals).")
	metricDeltaTouched = obs.Default().Counter(
		"cbes_core_delta_terms_rescored_total", "Per-(segment,proc) terms rescored by Apply.")

	// Batch comparison requests (the paper's mapping-comparison operation).
	metricCompares = obs.Default().Counter(
		"cbes_core_compare_total", "Compare batch requests.")
	metricCompareMappings = obs.Default().Counter(
		"cbes_core_compare_mappings_total", "Candidate mappings evaluated by Compare batches.")

	// Evaluator construction (index precomputation).
	metricEvaluators = obs.Default().Counter(
		"cbes_core_evaluators_built_total", "Evaluator fast-path indexes built.")

	// Degraded-mode prediction (fault handling).
	metricDegradedPredicts = obs.Default().Counter(
		"cbes_core_predict_degraded_total",
		"Predictions that fell back to profile-only values for stale nodes.")
	metricNodeDownErrors = obs.Default().Counter(
		"cbes_core_node_down_errors_total",
		"Evaluations rejected because the mapping placed a rank on a down node.")

	// Brownout fast path (overload handling).
	metricBrownoutPredicts = obs.Default().Counter(
		"cbes_core_predict_brownout_total",
		"Predictions served from the profile-only brownout fast path under load shedding.")
)
