// Fast-path mapping evaluation: an allocation-free scoring routine
// (Scorer.Energy, identical to Predict(...).Seconds) plus incremental
// delta-evaluation of typed moves (Scorer.Apply/Undo), the throughput
// engine behind the CS/NCS/GA schedulers.
//
// The evaluator precomputes, once per (topology, model, profile) triple:
//
//   - network-model classes indexed by interned path-class ID (plus the
//     topology's flat pair→ID table when it stores one), so the hot loop
//     never rebuilds path signatures or hashes map keys — and never
//     allocates O(nodes²) state on structured topologies;
//   - per-node resolved compute speeds and CPU counts (no ArchSpeed map
//     lookups);
//   - per-rank communication dependents: the profile entries whose Θ term
//     (eq. 6) reads that rank's node, derived from the send/recv groups.
//
// A Scorer then carries the mutable scratch state for one mapping: flat
// per-(segment,proc) R and C terms, per-node multiplicities, per-segment
// maxima, and an undo journal. Applying a Move re-scores only the entries
// whose inputs changed — the moved rank(s), their communication peers, and
// (for capacity-changing moves) the ranks co-located on the two affected
// nodes — and rebuilds the total from per-segment maxima, so the running
// energy is always bit-identical to a fresh full evaluation.
//
// Invariants (checked by TestFastPathEquivalence and FuzzEnergyDelta):
//
//	Scorer.Energy(m, snap)      == Predict(m, snap).Seconds   (exactly)
//	Scorer.Apply(mv); EnergyNow == Energy(moved m, snap)      (exactly)
//	Scorer.Undo() restores the pre-Apply state                (exactly)
package core

import (
	"fmt"

	"cbes/internal/cluster"
	"cbes/internal/monitor"
	"cbes/internal/netmodel"
	"cbes/internal/profile"
)

// Move is a typed mapping perturbation for the delta fast path. A zero
// Move is "move rank 0 to node 0".
type Move struct {
	// Swap selects the perturbation kind: false moves Rank to node To,
	// true exchanges the nodes of ranks A and B.
	Swap bool
	Rank int // rank to move (Swap == false)
	To   int // destination node (Swap == false)
	A, B int // ranks to exchange (Swap == true)
}

// fastIndex holds the immutable precomputed lookup tables shared by every
// Scorer of one evaluator (and its CommBlind sibling).
type fastIndex struct {
	nodes int
	// classes is indexed by interned path-class ID (O(classes), not
	// O(nodes²)); nil entry = uncalibrated. classTbl is the topology's flat
	// src·n+dst → class-ID table when it stores one (the 2005 testbeds);
	// structured topologies leave it nil and resolve IDs algebraically.
	classes  []*netmodel.Class
	classTbl []int32
	topo     *cluster.Topology
	speed    []float64 // per node: profile speed with nominal fallback
	cpus     []int     // per node: CPU count
	// flat is every segment's ProcProfile in Predict iteration order;
	// segOff[s] is the first flat index of segment s (len = segments+1).
	flat   []*profile.ProcProfile
	segOff []int
	// own[r] lists the flat entries belonging to rank r (one per segment
	// the rank appears in). commDeps[r] lists every flat entry whose C
	// term reads m[r]: r's own entries plus entries of ranks whose
	// send/recv groups name r as peer. Both are sorted and deduplicated.
	own      [][]int32
	commDeps [][]int32
}

func buildFastIndex(e *Evaluator) *fastIndex {
	n := e.Topo.NumNodes()
	ix := &fastIndex{
		nodes:    n,
		classes:  e.Model.ClassesByID(),
		classTbl: e.Topo.ClassIDTable(),
		topo:     e.Topo,
		speed:    make([]float64, n),
		cpus:     make([]int, n),
	}
	for node := 0; node < n; node++ {
		nd := e.Topo.Node(node)
		speed, ok := e.Prof.ArchSpeed[nd.Arch]
		if !ok || speed <= 0 {
			speed = nd.Speed
		}
		ix.speed[node] = speed
		ix.cpus[node] = nd.CPUs
	}
	ranks := e.Prof.Ranks
	ix.own = make([][]int32, ranks)
	ix.commDeps = make([][]int32, ranks)
	depSet := make([]map[int32]struct{}, ranks)
	for r := range depSet {
		depSet[r] = map[int32]struct{}{}
	}
	ix.segOff = append(ix.segOff, 0)
	for si := range e.Prof.Segments {
		seg := &e.Prof.Segments[si]
		for pi := range seg.Procs {
			pp := &seg.Procs[pi]
			f := int32(len(ix.flat))
			ix.flat = append(ix.flat, pp)
			if pp.Rank >= 0 && pp.Rank < ranks {
				ix.own[pp.Rank] = append(ix.own[pp.Rank], f)
				depSet[pp.Rank][f] = struct{}{}
			}
			for _, g := range pp.Recvs {
				if g.Peer >= 0 && g.Peer < ranks {
					depSet[g.Peer][f] = struct{}{}
				}
			}
			for _, g := range pp.Sends {
				if g.Peer >= 0 && g.Peer < ranks {
					depSet[g.Peer][f] = struct{}{}
				}
			}
		}
		ix.segOff = append(ix.segOff, len(ix.flat))
	}
	for r := 0; r < ranks; r++ {
		deps := make([]int32, 0, len(depSet[r]))
		for f := range depSet[r] {
			deps = append(deps, f)
		}
		// Sort for deterministic iteration (map order is random).
		for i := 1; i < len(deps); i++ {
			for j := i; j > 0 && deps[j] < deps[j-1]; j-- {
				deps[j], deps[j-1] = deps[j-1], deps[j]
			}
		}
		ix.commDeps[r] = deps
	}
	metricEvaluators.Inc()
	return ix
}

// fast returns the evaluator's precomputed index, building it on first use.
// NewEvaluator builds the index eagerly, so the lazy path only serves
// literal-constructed evaluators (tests); it is guarded for concurrent use.
func (e *Evaluator) fast() *fastIndex {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fastIx == nil {
		e.fastIx = buildFastIndex(e)
	}
	return e.fastIx
}

// CommBlind returns an evaluator over the same profile, model, and
// precomputed index with the communication term disabled — the NCS cost
// function. The receiver is unaffected.
func (e *Evaluator) CommBlind() *Evaluator {
	return &Evaluator{Topo: e.Topo, Model: e.Model, Prof: e.Prof, IgnoreComm: true, fastIx: e.fast()}
}

// savedTerm is one undo-journal record: the pre-move R and C of one entry.
type savedTerm struct {
	f    int32
	r, c float64
}

// frame is the undo record of one applied Move.
type frame struct {
	mv     Move
	from   int // origin node(s) needed to invert the move
	fromB  int
	noop   bool
	terms  []savedTerm
	segMax []float64
	total  float64
}

// Scorer evaluates mappings of one evaluator without allocating, and
// supports incremental delta-evaluation of typed moves with multi-level
// undo. A Scorer is NOT safe for concurrent use; create one per goroutine
// (the Evaluator itself is shareable).
type Scorer struct {
	e    *Evaluator
	ix   *fastIndex
	snap *monitor.Snapshot
	// avail/nic are the effective per-node resource views: the snapshot's
	// forecasts with profile-only fallback values substituted for stale
	// (HealthSuspect) nodes — the same degraded-mode rule Predict applies,
	// so the fast path stays bit-identical to the full evaluation.
	avail []float64
	nic   []float64

	m      Mapping   // current mapping (owned)
	mult   []int     // ranks per node
	r, c   []float64 // per flat entry
	segMax []float64
	total  float64
	primed bool

	frames []frame
	depth  int

	// epoch-stamped scratch for deduplicating touched entries/segments.
	seenEntry []uint32
	seenSeg   []uint32
	epoch     uint32
	touched   []int32
}

// Scorer returns a fresh scorer for this evaluator. The scorer reuses its
// internal arena across Energy/Apply calls, so steady-state evaluation does
// not allocate.
func (e *Evaluator) Scorer() *Scorer {
	ix := e.fast()
	return &Scorer{
		e:         e,
		ix:        ix,
		m:         make(Mapping, e.Prof.Ranks),
		mult:      make([]int, ix.nodes),
		avail:     make([]float64, ix.nodes),
		nic:       make([]float64, ix.nodes),
		r:         make([]float64, len(ix.flat)),
		c:         make([]float64, len(ix.flat)),
		segMax:    make([]float64, len(ix.segOff)-1),
		seenEntry: make([]uint32, len(ix.flat)),
		seenSeg:   make([]uint32, len(ix.segOff)-1),
	}
}

// loadSnapshot fills the scorer's effective resource views from snap,
// applying the degraded-mode substitution for stale nodes (cf.
// degradedSnapshot). O(nodes), allocation-free.
func (s *Scorer) loadSnapshot(snap *monitor.Snapshot) {
	s.snap = snap
	copy(s.avail, snap.AvailCPU)
	copy(s.nic, snap.NICUtil)
	for i, h := range snap.Health {
		if h == monitor.HealthSuspect {
			s.avail[i] = 1.0
			s.nic[i] = 0.0
		}
	}
}

// Energy fully evaluates mapping m under snap, primes the scorer's
// incremental state with it, and returns the predicted execution time. The
// result equals Predict(m, snap).Seconds exactly. Any pending undo history
// is discarded.
func (s *Scorer) Energy(m Mapping, snap *monitor.Snapshot) (float64, error) {
	if len(m) != s.e.Prof.Ranks {
		return 0, fmt.Errorf("core: mapping has %d ranks, profile has %d", len(m), s.e.Prof.Ranks)
	}
	if err := m.Validate(s.e.Topo); err != nil {
		return 0, err
	}
	if _, err := checkNodesUp(m, snap); err != nil {
		return 0, err
	}
	s.loadSnapshot(snap)
	copy(s.m, m)
	for i := range s.mult {
		s.mult[i] = 0
	}
	for _, n := range s.m {
		s.mult[n]++
	}
	for f := range s.ix.flat {
		s.r[f] = s.computeR(int32(f))
		s.c[f] = s.computeC(int32(f))
	}
	for seg := range s.segMax {
		s.segMax[seg] = s.segmentMax(seg)
	}
	s.total = s.sumSegments()
	s.depth = 0
	s.primed = true
	metricEnergyFull.Inc()
	return s.total, nil
}

// EnergyNow returns the energy of the scorer's current state.
func (s *Scorer) EnergyNow() float64 { return s.total }

// Current exposes the scorer's current mapping as a read-only view: the
// caller must not modify or retain it across Apply/Undo/Energy calls.
func (s *Scorer) Current() Mapping { return s.m }

// NodeLoad reports how many ranks the current mapping places on a node —
// the capacity check move proposers need.
func (s *Scorer) NodeLoad(node int) int { return s.mult[node] }

// Apply applies the move to the current state, re-scores only the affected
// entries, and returns the new total energy; Undo reverts it. Apply panics
// if the scorer was never primed with Energy or if the move references an
// invalid rank or node.
func (s *Scorer) Apply(mv Move) float64 {
	if !s.primed {
		panic("core: Scorer.Apply before Energy")
	}
	metricEnergyDelta.Inc()
	fr := s.pushFrame(mv)
	if mv.Swap {
		if mv.A == mv.B || s.m[mv.A] == s.m[mv.B] {
			fr.noop = true
			return s.total
		}
		fr.from, fr.fromB = s.m[mv.A], s.m[mv.B]
		s.m[mv.A], s.m[mv.B] = s.m[mv.B], s.m[mv.A]
		// A swap preserves per-node multiplicities: only the two ranks'
		// own terms and their communication dependents change.
		s.beginTouch()
		s.touchList(s.ix.commDeps[mv.A])
		s.touchList(s.ix.commDeps[mv.B])
		s.touchList(s.ix.own[mv.A])
		s.touchList(s.ix.own[mv.B])
	} else {
		from := s.m[mv.Rank]
		if from == mv.To {
			fr.noop = true
			return s.total
		}
		if mv.To < 0 || mv.To >= s.ix.nodes {
			panic(fmt.Sprintf("core: Move to invalid node %d", mv.To))
		}
		fr.from = from
		s.m[mv.Rank] = mv.To
		s.mult[from]--
		s.mult[mv.To]++
		s.beginTouch()
		s.touchList(s.ix.commDeps[mv.Rank])
		// Multiplicity changed on both nodes: every rank now (or formerly)
		// co-located there sees a different ACPU share in eq. 5.
		for rank, node := range s.m {
			if node == from || node == mv.To {
				s.touchList(s.ix.own[rank])
			}
		}
	}
	s.rescoreTouched(fr)
	return s.total
}

// EnergyDelta is Apply under the name the scheduling layers use when they
// care about the resulting energy rather than the state mutation; the move
// stays applied until Undo.
func (s *Scorer) EnergyDelta(mv Move) float64 { return s.Apply(mv) }

// Undo reverts the most recent un-undone Apply. Applies form a stack, so
// recursive searches (the exhaustive walk) can unwind arbitrarily deep.
func (s *Scorer) Undo() {
	if s.depth == 0 {
		panic("core: Scorer.Undo with empty journal")
	}
	metricUndos.Inc()
	s.depth--
	fr := &s.frames[s.depth]
	if fr.noop {
		return
	}
	if fr.mv.Swap {
		s.m[fr.mv.A], s.m[fr.mv.B] = fr.from, fr.fromB
	} else {
		s.mult[fr.mv.To]--
		s.mult[fr.from]++
		s.m[fr.mv.Rank] = fr.from
	}
	for _, st := range fr.terms {
		s.r[st.f] = st.r
		s.c[st.f] = st.c
	}
	copy(s.segMax, fr.segMax)
	s.total = fr.total
}

// Commit discards the undo record of the most recent Apply, keeping its
// state change. Accepting annealers call it after each accepted move so the
// journal stays one frame deep instead of growing with every acceptance.
func (s *Scorer) Commit() {
	if s.depth == 0 {
		panic("core: Scorer.Commit with empty journal")
	}
	s.depth--
}

// Depth reports how many applied moves are undoable.
func (s *Scorer) Depth() int { return s.depth }

func (s *Scorer) pushFrame(mv Move) *frame {
	if s.depth == len(s.frames) {
		s.frames = append(s.frames, frame{})
	}
	fr := &s.frames[s.depth]
	s.depth++
	fr.mv = mv
	fr.noop = false
	fr.terms = fr.terms[:0]
	fr.segMax = append(fr.segMax[:0], s.segMax...)
	fr.total = s.total
	return fr
}

func (s *Scorer) beginTouch() {
	s.epoch++
	if s.epoch == 0 { // wrapped: reset stamps
		for i := range s.seenEntry {
			s.seenEntry[i] = 0
		}
		for i := range s.seenSeg {
			s.seenSeg[i] = 0
		}
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

func (s *Scorer) touchList(fs []int32) {
	for _, f := range fs {
		if s.seenEntry[f] != s.epoch {
			s.seenEntry[f] = s.epoch
			s.touched = append(s.touched, f)
		}
	}
}

// rescoreTouched recomputes R and C for every touched entry (recording the
// old values in the undo frame), refreshes the maxima of the segments they
// belong to, and rebuilds the total as the fresh segment sum — the same
// summation order as Predict, keeping the running energy bit-identical.
func (s *Scorer) rescoreTouched(fr *frame) {
	metricDeltaTouched.Add(uint64(len(s.touched)))
	for _, f := range s.touched {
		fr.terms = append(fr.terms, savedTerm{f: f, r: s.r[f], c: s.c[f]})
		s.r[f] = s.computeR(f)
		s.c[f] = s.computeC(f)
		seg := s.segmentOf(f)
		s.seenSeg[seg] = s.epoch
	}
	for seg := range s.segMax {
		if s.seenSeg[seg] == s.epoch {
			s.segMax[seg] = s.segmentMax(seg)
		}
	}
	s.total = s.sumSegments()
}

// segmentOf locates the segment containing flat entry f by binary search
// over the offset table.
func (s *Scorer) segmentOf(f int32) int {
	lo, hi := 0, len(s.ix.segOff)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if int32(s.ix.segOff[mid]) <= f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// segmentMax scans one segment's totals in entry order, replicating the
// strictly-greater selection Predict uses (first entry wins ties).
func (s *Scorer) segmentMax(seg int) float64 {
	lo, hi := s.ix.segOff[seg], s.ix.segOff[seg+1]
	if lo == hi {
		return 0
	}
	max := s.r[lo] + s.c[lo]
	for f := lo + 1; f < hi; f++ {
		if t := s.r[f] + s.c[f]; t > max {
			max = t
		}
	}
	return max
}

func (s *Scorer) sumSegments() float64 {
	total := 0.0
	for _, sm := range s.segMax {
		total += sm
	}
	return total
}

// computeR is eq. 5 on precomputed tables — the same arithmetic as
// Evaluator.computeTerm.
func (s *Scorer) computeR(f int32) float64 {
	pp := s.ix.flat[f]
	node := s.m[pp.Rank]
	speed := s.ix.speed[node]
	acpu := s.avail[node]
	if co := s.mult[node]; co > 1 {
		share := float64(s.ix.cpus[node]) / float64(co)
		if share < 1 {
			acpu *= share
		}
	}
	if acpu < 0.01 {
		acpu = 0.01
	}
	return (pp.X + pp.O) * (pp.ProfSpeed / speed) * (1 / acpu)
}

// computeC is eqs. 6 and 8 on the dense class table — the same arithmetic
// and accumulation order as Evaluator.commTerm/profile.Theta.
func (s *Scorer) computeC(f int32) float64 {
	if s.e.IgnoreComm {
		return 0
	}
	pp := s.ix.flat[f]
	if pp.Lambda == 0 {
		return 0
	}
	my := s.m[pp.Rank]
	theta := 0.0
	for _, g := range pp.Recvs {
		theta += float64(g.Count) * s.latency(s.m[g.Peer], my, g.Size)
	}
	for _, g := range pp.Sends {
		theta += float64(g.Count) * s.latency(my, s.m[g.Peer], g.Size)
	}
	return theta * pp.Lambda
}

func (s *Scorer) latency(src, dst int, size int64) float64 {
	var id int
	if tbl := s.ix.classTbl; tbl != nil {
		id = int(tbl[src*s.ix.nodes+dst])
	} else {
		id = s.ix.topo.ClassID(src, dst)
	}
	c := s.ix.classes[id]
	if c == nil {
		// Same failure mode as Model.Latency on an uncalibrated pair.
		panic(fmt.Sprintf("netmodel: no calibration for pair (%d,%d)", src, dst))
	}
	return c.Latency(size, s.avail[src], s.avail[dst], s.nic[src], s.nic[dst])
}

// Energy is the allocation-free counterpart of Predict(m, snap).Seconds:
// it scores the mapping through a pooled scratch arena and returns only
// the total. The evaluator stays shareable — concurrent callers draw
// distinct scorers from the pool.
func (e *Evaluator) Energy(m Mapping, snap *monitor.Snapshot) (float64, error) {
	s, _ := e.pool.Get().(*Scorer)
	if s == nil {
		s = e.Scorer()
	}
	en, err := s.Energy(m, snap)
	e.pool.Put(s)
	return en, err
}
