package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/monitor"
	"cbes/internal/profile"
	"cbes/internal/trace"
)

// syntheticEvaluator builds an evaluator over a random topology with a
// hand-made profile (random segments, compute terms, and message groups),
// so the fast path is exercised on shapes far beyond the paper testbeds.
func syntheticEvaluator(t testing.TB, seed int64) (*Evaluator, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo := cluster.NewRandom(seed, cluster.RandomSpec{MaxSwitches: 3, MaxNodesPerSwitch: 4})
	model := bench.Calibrate(topo, bench.Options{Reps: 2, Sizes: []int64{64, 4 << 10}, SkipLoadFit: rng.Intn(2) == 0})

	n := topo.NumNodes()
	ranks := 2 + rng.Intn(6)
	if ranks > n {
		ranks = n
	}
	profMap := make([]int, ranks)
	for r := range profMap {
		profMap[r] = rng.Intn(n)
	}
	prof := &profile.Profile{
		App:       fmt.Sprintf("syn-%d", seed),
		Cluster:   topo.Name,
		Ranks:     ranks,
		Mapping:   profMap,
		ArchSpeed: map[cluster.Arch]float64{},
	}
	for i := 0; i < n; i++ {
		a := topo.Node(i).Arch
		if _, ok := prof.ArchSpeed[a]; !ok {
			prof.ArchSpeed[a] = 0.5 + rng.Float64()
		}
	}
	segs := 1 + rng.Intn(3)
	for s := 0; s < segs; s++ {
		sp := profile.SegmentProfile{Name: fmt.Sprintf("seg%d", s)}
		for r := 0; r < ranks; r++ {
			pp := profile.ProcProfile{
				Rank:      r,
				X:         rng.Float64() * 2,
				O:         rng.Float64() * 0.2,
				B:         rng.Float64() * 0.5,
				ProfNode:  profMap[r],
				ProfSpeed: prof.ArchSpeed[topo.Node(profMap[r]).Arch],
			}
			for g := rng.Intn(3); g > 0; g-- {
				pp.Sends = append(pp.Sends, trace.MsgGroup{
					Peer: rng.Intn(ranks), Size: 64 << rng.Intn(7), Count: 1 + rng.Intn(20),
				})
			}
			for g := rng.Intn(3); g > 0; g-- {
				pp.Recvs = append(pp.Recvs, trace.MsgGroup{
					Peer: rng.Intn(ranks), Size: 64 << rng.Intn(7), Count: 1 + rng.Intn(20),
				})
			}
			sp.Procs = append(sp.Procs, pp)
		}
		prof.Segments = append(prof.Segments, sp)
	}
	if err := prof.ComputeLambdas(model); err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(topo, model, prof)
	if err != nil {
		t.Fatal(err)
	}
	return eval, rng
}

func randomSnapshot(n int, rng *rand.Rand) *monitor.Snapshot {
	s := monitor.IdleSnapshot(n)
	for i := 0; i < n; i++ {
		s.AvailCPU[i] = 0.05 + 0.95*rng.Float64()
		s.NICUtil[i] = 0.95 * rng.Float64()
	}
	return s
}

func randomValidMapping(ranks, nodes int, rng *rand.Rand) Mapping {
	m := make(Mapping, ranks)
	for r := range m {
		m[r] = rng.Intn(nodes)
	}
	return m
}

func assertClose(t *testing.T, got, want float64, what string) {
	t.Helper()
	tol := 1e-12 * math.Max(1, math.Abs(want))
	if diff := math.Abs(got - want); diff > tol || math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s: fast %v != predict %v (diff %g)", what, got, want, diff)
	}
}

// TestFastPathEquivalence: Energy ≡ Predict(...).Seconds over randomized
// topologies, profiles, snapshots, and mappings — the acceptance-criteria
// cross-check (run under -race in CI).
func TestFastPathEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		eval, rng := syntheticEvaluator(t, seed)
		n := eval.Topo.NumNodes()
		snap := randomSnapshot(n, rng)
		sc := eval.Scorer()
		for trial := 0; trial < 25; trial++ {
			m := randomValidMapping(eval.Prof.Ranks, n, rng)
			pred, err := eval.Predict(m, snap)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.Energy(m, snap)
			if err != nil {
				t.Fatal(err)
			}
			assertClose(t, got, pred.Seconds, fmt.Sprintf("seed %d trial %d", seed, trial))
			// The pooled Evaluator.Energy front-end agrees too.
			got2, err := eval.Energy(m, snap)
			if err != nil {
				t.Fatal(err)
			}
			assertClose(t, got2, pred.Seconds, "pooled Energy")
		}
	}
}

// TestEnergyDeltaNoDrift walks long random move/swap sequences (the classic
// incremental-evaluator failure mode) and checks after every Apply that the
// running energy matches a fresh full prediction, that Undo restores the
// previous energy exactly, and that unwinding the whole journal returns to
// the initial state.
func TestEnergyDeltaNoDrift(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		eval, rng := syntheticEvaluator(t, 100+seed)
		n := eval.Topo.NumNodes()
		ranks := eval.Prof.Ranks
		snap := randomSnapshot(n, rng)
		sc := eval.Scorer()
		m := randomValidMapping(ranks, n, rng)
		e0, err := sc.Energy(m, snap)
		if err != nil {
			t.Fatal(err)
		}
		var applied int
		for step := 0; step < 120; step++ {
			var mv Move
			if rng.Intn(2) == 0 && ranks >= 2 {
				mv = Move{Swap: true, A: rng.Intn(ranks), B: rng.Intn(ranks)}
			} else {
				mv = Move{Rank: rng.Intn(ranks), To: rng.Intn(n)}
			}
			before := sc.EnergyNow()
			got := sc.Apply(mv)
			applied++
			pred, err := eval.Predict(sc.Current(), snap)
			if err != nil {
				t.Fatal(err)
			}
			assertClose(t, got, pred.Seconds, fmt.Sprintf("seed %d step %d apply", seed, step))
			if got != sc.EnergyNow() {
				t.Fatal("Apply return disagrees with EnergyNow")
			}
			// Occasionally reject the move, like the annealer does.
			if rng.Intn(3) == 0 {
				sc.Undo()
				applied--
				assertClose(t, sc.EnergyNow(), before, fmt.Sprintf("seed %d step %d undo", seed, step))
			}
		}
		for ; applied > 0; applied-- {
			sc.Undo()
		}
		assertClose(t, sc.EnergyNow(), e0, fmt.Sprintf("seed %d full unwind", seed))
		if !sc.Current().Equal(m) {
			t.Fatalf("seed %d: unwound mapping %v != initial %v", seed, sc.Current(), m)
		}
	}
}

// TestCommBlindFastPath: the NCS evaluator derived with CommBlind matches
// its own Predict, stays below the full prediction, and shares the index.
func TestCommBlindFastPath(t *testing.T) {
	eval, rng := syntheticEvaluator(t, 7)
	blind := eval.CommBlind()
	if !blind.IgnoreComm || eval.IgnoreComm {
		t.Fatal("CommBlind flags wrong")
	}
	n := eval.Topo.NumNodes()
	snap := randomSnapshot(n, rng)
	sc := blind.Scorer()
	for trial := 0; trial < 20; trial++ {
		m := randomValidMapping(eval.Prof.Ranks, n, rng)
		pred, err := blind.Predict(m, snap)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.Energy(m, snap)
		if err != nil {
			t.Fatal(err)
		}
		assertClose(t, got, pred.Seconds, "comm-blind energy")
		full, err := eval.Energy(m, snap)
		if err != nil {
			t.Fatal(err)
		}
		if got > full {
			t.Fatalf("comm-blind energy %v above full %v", got, full)
		}
	}
}

// TestScorerRejectsInvalid mirrors Predict's validation.
func TestScorerRejectsInvalid(t *testing.T) {
	eval, rng := syntheticEvaluator(t, 3)
	_ = rng
	sc := eval.Scorer()
	snap := monitor.IdleSnapshot(eval.Topo.NumNodes())
	if _, err := sc.Energy(make(Mapping, eval.Prof.Ranks+1), snap); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	bad := make(Mapping, eval.Prof.Ranks)
	bad[0] = 9999
	if _, err := sc.Energy(bad, snap); err == nil {
		t.Fatal("invalid node accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Apply before Energy did not panic")
		}
	}()
	eval.Scorer().Apply(Move{})
}

// TestEvaluatorConcurrentUse hammers a shared evaluator from several
// goroutines mixing Predict, pooled Energy, and per-goroutine scorers — the
// shareability contract the parallel schedulers rely on (meaningful under
// -race).
func TestEvaluatorConcurrentUse(t *testing.T) {
	eval, rng := syntheticEvaluator(t, 11)
	n := eval.Topo.NumNodes()
	snap := randomSnapshot(n, rng)
	ms := make([]Mapping, 64)
	want := make([]float64, len(ms))
	for i := range ms {
		ms[i] = randomValidMapping(eval.Prof.Ranks, n, rng)
		p, err := eval.Predict(ms[i], snap)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p.Seconds
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := eval.Scorer()
			for i, m := range ms {
				var got float64
				var err error
				switch (i + w) % 3 {
				case 0:
					var p *Prediction
					p, err = eval.Predict(m, snap)
					if p != nil {
						got = p.Seconds
					}
				case 1:
					got, err = eval.Energy(m, snap)
				default:
					got, err = sc.Energy(m, snap)
				}
				if err != nil || got != want[i] {
					t.Errorf("worker %d mapping %d: got %v err %v, want %v", w, i, got, err, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Parallel Compare agrees with the precomputed minimum.
	preds, best, err := eval.Compare(ms, snap)
	if err != nil {
		t.Fatal(err)
	}
	wantBest := 0
	for i := range want {
		if want[i] < want[wantBest] {
			wantBest = i
		}
	}
	if best != wantBest || preds[best].Seconds != want[wantBest] {
		t.Fatalf("Compare best %d (%v), want %d (%v)", best, preds[best].Seconds, wantBest, want[wantBest])
	}
}

// FuzzEnergyDelta drives the incremental evaluator with fuzz-derived move
// sequences on a fixed synthetic fixture, cross-checking every step against
// a fresh Predict.
func FuzzEnergyDelta(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(2), []byte{0xff, 0x80, 0x01, 0x40, 0x7f})
	f.Add(int64(3), []byte{})
	eval, rng := syntheticEvaluator(f, 42)
	n := eval.Topo.NumNodes()
	ranks := eval.Prof.Ranks
	snap := randomSnapshot(n, rng)
	f.Fuzz(func(t *testing.T, mapSeed int64, moves []byte) {
		sc := eval.Scorer()
		m := randomValidMapping(ranks, n, rand.New(rand.NewSource(mapSeed)))
		if _, err := sc.Energy(m, snap); err != nil {
			t.Fatal(err)
		}
		if len(moves) > 64 {
			moves = moves[:64]
		}
		for i := 0; i+1 < len(moves); i += 2 {
			a, b := int(moves[i]), int(moves[i+1])
			var mv Move
			if a&1 == 0 {
				mv = Move{Swap: true, A: (a >> 1) % ranks, B: b % ranks}
			} else {
				mv = Move{Rank: (a >> 1) % ranks, To: b % n}
			}
			got := sc.Apply(mv)
			pred, err := eval.Predict(sc.Current(), snap)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(got - pred.Seconds); diff > 1e-12*math.Max(1, math.Abs(pred.Seconds)) {
				t.Fatalf("move %d: fast %v != predict %v", i/2, got, pred.Seconds)
			}
		}
	})
}
