package core

import (
	"errors"
	"math"
	"testing"

	"cbes/internal/monitor"
)

// healthSnap builds an idle snapshot with explicit per-node health.
func healthSnap(n int, health map[int]monitor.Health) *monitor.Snapshot {
	s := monitor.IdleSnapshot(n)
	s.Health = make([]monitor.Health, n)
	for i, h := range health {
		s.Health[i] = h
		if h == monitor.HealthDown {
			s.AvailCPU[i] = 0
		}
	}
	return s
}

func TestPredictRejectsDownNode(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := healthSnap(f.topo.NumNodes(), map[int]monitor.Health{1: monitor.HealthDown})
	_, err := f.eval.Predict(Mapping{0, 1}, snap)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Predict onto down node: err = %v, want ErrNodeDown", err)
	}
	// A mapping avoiding the down node succeeds and is not degraded.
	pred, err := f.eval.Predict(Mapping{0, 2}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Degraded || pred.StaleNodes != nil {
		t.Fatalf("prediction avoiding faults flagged degraded: %+v", pred)
	}
}

func TestScorerRejectsDownNode(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := healthSnap(f.topo.NumNodes(), map[int]monitor.Health{0: monitor.HealthDown})
	if _, err := f.eval.Scorer().Energy(Mapping{0, 1}, snap); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Energy onto down node: err = %v, want ErrNodeDown", err)
	}
}

func TestPredictDegradesOnStaleNode(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	// Node 1 is suspect with a pessimistic (stale) forecast; degraded mode
	// must ignore the forecast and use the profile-only fallback.
	snap := healthSnap(f.topo.NumNodes(), map[int]monitor.Health{1: monitor.HealthSuspect})
	snap.AvailCPU[1] = 0.2
	snap.NICUtil[1] = 0.9

	pred, err := f.eval.Predict(Mapping{0, 1}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Degraded {
		t.Fatal("prediction on stale node not flagged degraded")
	}
	if len(pred.StaleNodes) != 1 || pred.StaleNodes[0] != 1 {
		t.Fatalf("StaleNodes = %v, want [1]", pred.StaleNodes)
	}

	// The degraded prediction equals the prediction against a fresh idle
	// snapshot: the stale forecast was discarded entirely.
	fresh, err := f.eval.Predict(Mapping{0, 1}, monitor.IdleSnapshot(f.topo.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.Seconds-fresh.Seconds) > 1e-12 {
		t.Fatalf("degraded %v != profile-only %v", pred.Seconds, fresh.Seconds)
	}

	// A mapping not touching the suspect node is served normally.
	clean, err := f.eval.Predict(Mapping{0, 2}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded {
		t.Fatal("mapping avoiding stale node flagged degraded")
	}
}

// TestScorerMatchesPredictUnderFaults extends the fast-path equivalence
// invariant to degraded snapshots: Energy must equal Predict.Seconds
// exactly even when some nodes are suspect.
func TestScorerMatchesPredictUnderFaults(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := healthSnap(f.topo.NumNodes(), map[int]monitor.Health{
		1: monitor.HealthSuspect,
		5: monitor.HealthDown,
		6: monitor.HealthSuspect,
	})
	snap.AvailCPU[1] = 0.3
	snap.NICUtil[1] = 0.7
	snap.AvailCPU[6] = 0.1

	sc := f.eval.Scorer()
	for _, m := range []Mapping{{0, 1}, {1, 6}, {2, 3}, {6, 6}, {0, 7}} {
		pred, err := f.eval.Predict(m, snap)
		if err != nil {
			t.Fatalf("Predict(%v): %v", m, err)
		}
		got, err := sc.Energy(m, snap)
		if err != nil {
			t.Fatalf("Energy(%v): %v", m, err)
		}
		if got != pred.Seconds {
			t.Fatalf("Energy(%v) = %v, Predict = %v (must be bit-identical)", m, got, pred.Seconds)
		}
	}
}

func TestCompareSurfacesNodeDown(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := healthSnap(f.topo.NumNodes(), map[int]monitor.Health{3: monitor.HealthDown})
	_, _, err := f.eval.Compare([]Mapping{{0, 1}, {2, 3}}, snap)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Compare with a down-node candidate: err = %v, want ErrNodeDown", err)
	}
}

func TestNilHealthMeansHealthy(t *testing.T) {
	f := newFixture(t, []int{0, 1})
	snap := monitor.IdleSnapshot(f.topo.NumNodes()) // Health == nil
	pred, err := f.eval.Predict(Mapping{0, 1}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Degraded {
		t.Fatal("nil-health snapshot produced a degraded prediction")
	}
}
