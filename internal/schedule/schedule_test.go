package schedule

import (
	"math"
	"runtime"
	"testing"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/mpisim"
	"cbes/internal/profile"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

// ringApp is a 4-rank ring exchange with some compute: communication
// matters, so mapping quality matters.
func ringApp(r *mpisim.Rank) {
	n := r.Size()
	for i := 0; i < 15; i++ {
		r.Compute(0.02)
		right := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n
		if r.ID()%2 == 0 {
			r.Send(right, 32<<10)
			r.Recv(left)
		} else {
			r.Recv(left)
			r.Send(right, 32<<10)
		}
	}
}

type fixture struct {
	topo *cluster.Topology
	eval *core.Evaluator
	snap *monitor.Snapshot
}

func newFixture(t *testing.T) *fixture {
	return newFixtureOn(t, cluster.NewTestTopology())
}

// homogeneousTwoSwitch builds 8 Alpha nodes split over two switches: all
// nodes are computationally equivalent, so only communication
// (same-switch vs. cross-switch placement) separates mappings. This is the
// setting where NCS degenerates to random selection (§6).
func homogeneousTwoSwitch(t *testing.T) *cluster.Topology {
	t.Helper()
	b := cluster.NewBuilder("homo2sw")
	swA := b.Switch("swA", "3com-100", 24)
	swB := b.Switch("swB", "3com-100", 24)
	b.Uplink(swA, swB, cluster.BandwidthFast100, 5*des.Microsecond)
	for i := 0; i < 4; i++ {
		b.Node("a", cluster.ArchAlpha, swA, cluster.BandwidthFast100, 5*des.Microsecond)
	}
	for i := 0; i < 4; i++ {
		b.Node("b", cluster.ArchAlpha, swB, cluster.BandwidthFast100, 5*des.Microsecond)
	}
	return b.Build()
}

func newFixtureOn(t *testing.T, topo *cluster.Topology) *fixture {
	t.Helper()
	model := bench.Calibrate(topo, bench.Options{Reps: 4})
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, []int{0, 1, 2, 3}, ringApp, mpisim.Options{AppName: "ring"})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	prof, err := profile.FromTrace(res.Trace, topo, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.ComputeLambdas(model); err != nil {
		t.Fatal(err)
	}
	eval, err := core.NewEvaluator(topo, model, prof)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{topo: topo, eval: eval, snap: monitor.IdleSnapshot(topo.NumNodes())}
}

func (f *fixture) request(pool []int, seed int64) *Request {
	return &Request{Eval: f.eval, Snap: f.snap, Pool: pool, Seed: seed}
}

func allNodes(f *fixture) []int {
	var pool []int
	for i := 0; i < f.topo.NumNodes(); i++ {
		pool = append(pool, i)
	}
	return pool
}

func TestRandomValidMapping(t *testing.T) {
	f := newFixture(t)
	d, err := Random(f.request(allNodes(f), 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Mapping.Validate(f.topo); err != nil {
		t.Fatal(err)
	}
	// One rank per node by default.
	for _, c := range d.Mapping.Multiplicity() {
		if c > 1 {
			t.Fatalf("default slots violated: %v", d.Mapping)
		}
	}
	if d.Predicted <= 0 {
		t.Fatal("RS decision must still carry a full prediction")
	}
	if !math.IsNaN(d.Score) {
		t.Fatal("RS has no cost function score")
	}
}

func TestCSBeatsRandomOnAverage(t *testing.T) {
	f := newFixture(t)
	pool := allNodes(f)
	var csSum, rsSum float64
	const n = 10
	for s := int64(0); s < n; s++ {
		cs, err := SimulatedAnnealing(f.request(pool, s))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Random(f.request(pool, s+100))
		if err != nil {
			t.Fatal(err)
		}
		csSum += cs.Predicted
		rsSum += rs.Predicted
	}
	if csSum >= rsSum {
		t.Fatalf("CS average %v not better than RS average %v", csSum/n, rsSum/n)
	}
}

func TestCSFindsKnownOptimum(t *testing.T) {
	// Pool restricted to the four Alphas: the optimum keeps all ranks on
	// one switch; every Alpha permutation is equivalent, so CS must land at
	// the exhaustive optimum value.
	f := newFixture(t)
	pool := []int{0, 1, 2, 3}
	ex, err := Exhaustive(f.request(pool, 1))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := SimulatedAnnealing(f.request(pool, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rel := (cs.Predicted - ex.Predicted) / ex.Predicted; rel > 1e-9 {
		t.Fatalf("CS %v vs exhaustive optimum %v", cs.Predicted, ex.Predicted)
	}
}

func TestNCSBlindToCommunication(t *testing.T) {
	// Mixed pool: NCS should find Alpha nodes (fast) but cannot prefer
	// same-switch placements among equal-speed nodes; CS can. Over several
	// seeds CS must never be worse and typically better.
	f := newFixtureOn(t, homogeneousTwoSwitch(t))
	pool := allNodes(f)
	csBetter := 0
	var csSum, ncsSum float64
	for s := int64(0); s < 8; s++ {
		cs, err := SimulatedAnnealing(f.request(pool, s))
		if err != nil {
			t.Fatal(err)
		}
		ncs, err := SimulatedAnnealingNoComm(f.request(pool, s))
		if err != nil {
			t.Fatal(err)
		}
		csSum += cs.Predicted
		ncsSum += ncs.Predicted
		if cs.Predicted < ncs.Predicted*0.999 {
			csBetter++
		}
		// A single anneal can get trapped (the paper's CS hits ~90%), but
		// CS must never be drastically worse than NCS.
		if cs.Predicted > ncs.Predicted*1.25 {
			t.Fatalf("seed %d: CS %v far worse than NCS %v", s, cs.Predicted, ncs.Predicted)
		}
		// NCS score must ignore communication: it is below the full
		// prediction of its own mapping.
		if ncs.Score >= ncs.Predicted {
			t.Fatalf("NCS score %v not communication-blind (full %v)", ncs.Score, ncs.Predicted)
		}
	}
	if csBetter == 0 {
		t.Fatal("CS never beat NCS — communication term had no effect")
	}
	if csSum >= ncsSum {
		t.Fatalf("CS average %v not better than NCS average %v", csSum/8, ncsSum/8)
	}
}

func TestMaximizeFindsWorseMappingThanMinimize(t *testing.T) {
	f := newFixture(t)
	pool := allNodes(f)
	best, err := SimulatedAnnealing(f.request(pool, 3))
	if err != nil {
		t.Fatal(err)
	}
	reqW := f.request(pool, 3)
	reqW.Maximize = true
	worst, err := SimulatedAnnealing(reqW)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Predicted <= best.Predicted {
		t.Fatalf("worst %v <= best %v", worst.Predicted, best.Predicted)
	}
}

func TestGeneticSchedulerWorks(t *testing.T) {
	f := newFixture(t)
	pool := allNodes(f)
	ga, err := Genetic(f.request(pool, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := ga.Mapping.Validate(f.topo); err != nil {
		t.Fatal(err)
	}
	rs, _ := Random(f.request(pool, 6))
	if ga.Predicted > rs.Predicted*1.2 {
		t.Fatalf("GA (%v) much worse than random (%v)", ga.Predicted, rs.Predicted)
	}
	for _, c := range ga.Mapping.Multiplicity() {
		if c > 1 {
			t.Fatalf("GA violated slot capacity: %v", ga.Mapping)
		}
	}
}

func TestSlotsPerNodeCoScheduling(t *testing.T) {
	f := newFixture(t)
	// Only two dual-CPU nodes for four ranks: needs 2 slots per node.
	req := f.request([]int{4, 5}, 1)
	if _, err := SimulatedAnnealing(req); err == nil {
		t.Fatal("expected capacity error with 1 slot per node")
	}
	req.SlotsPerNode = 2
	d, err := SimulatedAnnealing(req)
	if err != nil {
		t.Fatal(err)
	}
	mult := d.Mapping.Multiplicity()
	if mult[4] != 2 || mult[5] != 2 {
		t.Fatalf("mapping = %v", d.Mapping)
	}
}

func TestExhaustiveMatchesBruteForceDirection(t *testing.T) {
	f := newFixture(t)
	pool := []int{0, 1, 4, 5}
	min, err := Exhaustive(f.request(pool, 1))
	if err != nil {
		t.Fatal(err)
	}
	reqMax := f.request(pool, 1)
	reqMax.Maximize = true
	max, err := Exhaustive(reqMax)
	if err != nil {
		t.Fatal(err)
	}
	if !(min.Predicted < max.Predicted) {
		t.Fatalf("exhaustive min %v !< max %v", min.Predicted, max.Predicted)
	}
	if min.Evaluations != max.Evaluations || min.Evaluations != 24 {
		// 4 nodes, 4 ranks, 1 slot each: 4! = 24 mappings.
		t.Fatalf("evaluations = %d, want 24", min.Evaluations)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	f := newFixture(t)
	pool := allNodes(f)
	a, _ := SimulatedAnnealing(f.request(pool, 42))
	b, _ := SimulatedAnnealing(f.request(pool, 42))
	if !a.Mapping.Equal(b.Mapping) || a.Predicted != b.Predicted {
		t.Fatal("CS nondeterministic for fixed seed")
	}
}

func TestSAEvaluationsWithinEffort(t *testing.T) {
	// Regression: the old budget split (Effort/restarts clamped to ≥100)
	// could overrun small budgets and silently drop remainders of large
	// ones. The budget must now be a hard cap for any Effort/Restarts combo.
	f := newFixture(t)
	pool := allNodes(f)
	for _, tc := range []struct{ effort, restarts int }{
		{50, 4}, {101, 4}, {4000, 4}, {7, 3}, {3, 8}, {1, 1}, {250, 7},
	} {
		req := f.request(pool, 11)
		req.Effort = tc.effort
		req.Restarts = tc.restarts
		d, err := SimulatedAnnealing(req)
		if err != nil {
			t.Fatalf("effort=%d restarts=%d: %v", tc.effort, tc.restarts, err)
		}
		if d.Evaluations > tc.effort {
			t.Fatalf("effort=%d restarts=%d: used %d evaluations",
				tc.effort, tc.restarts, d.Evaluations)
		}
		if d.Evaluations == 0 {
			t.Fatalf("effort=%d restarts=%d: no evaluations at all", tc.effort, tc.restarts)
		}
	}
}

func TestConstraintSatisfiedHasNoPenalty(t *testing.T) {
	// A satisfiable constraint must steer the search without leaking the
	// 1e9 penalty into Decision.Predicted.
	f := newFixture(t)
	pool := allNodes(f)
	req := f.request(pool, 9)
	req.Constraint = func(m core.Mapping) bool {
		for _, n := range m {
			if n == 4 || n == 5 { // must use a SPARC node
				return true
			}
		}
		return false
	}
	d, err := SimulatedAnnealing(req)
	if err != nil {
		t.Fatal(err)
	}
	if !req.Constraint(d.Mapping) {
		t.Fatalf("constraint not satisfied: %v", d.Mapping)
	}
	if d.Predicted >= constraintPenalty/2 {
		t.Fatalf("penalty leaked into prediction: %v", d.Predicted)
	}
	want, err := f.eval.Predict(d.Mapping, f.snap)
	if err != nil {
		t.Fatal(err)
	}
	if d.Predicted != want.Seconds {
		t.Fatalf("Predicted %v != full prediction %v", d.Predicted, want.Seconds)
	}
}

func TestConstraintUnsatisfiableReturnsError(t *testing.T) {
	// Regression: CS used to return a Decision whose Predicted contained
	// the constraint penalty; it must return an explicit error like RS.
	f := newFixture(t)
	pool := allNodes(f)
	never := func(core.Mapping) bool { return false }
	for name, run := range map[string]func(*Request) (*Decision, error){
		"CS":  SimulatedAnnealing,
		"NCS": SimulatedAnnealingNoComm,
		"GA":  Genetic,
		"RS":  Random,
	} {
		req := f.request(pool, 13)
		req.Effort = 400
		req.Constraint = never
		d, err := run(req)
		if err == nil {
			t.Fatalf("%s: unsatisfiable constraint returned %+v instead of error", name, d)
		}
	}
	// Exhaustive reports infeasibility too.
	reqEx := f.request([]int{0, 1, 2, 3}, 13)
	reqEx.Constraint = never
	if d, err := Exhaustive(reqEx); err == nil {
		t.Fatalf("Exhaustive: unsatisfiable constraint returned %+v instead of error", d)
	}
}

func TestSADeterministicAcrossParallelism(t *testing.T) {
	// Restarts run concurrently; the outcome must not depend on worker
	// scheduling. Compare a parallel run against a serialized one.
	f := newFixture(t)
	pool := allNodes(f)
	req := f.request(pool, 21)
	req.Restarts = 6
	a, err := SimulatedAnnealing(req)
	if err != nil {
		t.Fatal(err)
	}
	req2 := f.request(pool, 21)
	req2.Restarts = 6
	prev := runtime.GOMAXPROCS(1)
	b, err := SimulatedAnnealing(req2)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mapping.Equal(b.Mapping) || a.Predicted != b.Predicted {
		t.Fatalf("parallel %v (%v) != serial %v (%v)",
			a.Mapping, a.Predicted, b.Mapping, b.Predicted)
	}
}

func TestSAPredictedMatchesFullEvaluation(t *testing.T) {
	// The incremental fast path must hand back exactly the energy a full
	// evaluation of the chosen mapping produces.
	f := newFixture(t)
	for s := int64(0); s < 4; s++ {
		d, err := SimulatedAnnealing(f.request(allNodes(f), s))
		if err != nil {
			t.Fatal(err)
		}
		p, err := f.eval.Predict(d.Mapping, f.snap)
		if err != nil {
			t.Fatal(err)
		}
		if d.Predicted != p.Seconds {
			t.Fatalf("seed %d: Predicted %v != Predict %v", s, d.Predicted, p.Seconds)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := Random(&Request{Eval: f.eval, Snap: f.snap}); err == nil {
		t.Fatal("empty pool should error")
	}
	if _, err := Random(&Request{Snap: f.snap, Pool: []int{0}}); err == nil {
		t.Fatal("missing eval should error")
	}
	if _, err := Random(f.request([]int{0, 1}, 1)); err == nil {
		t.Fatal("insufficient capacity should error")
	}
}

func BenchmarkCS(b *testing.B) {
	f := newFixture(&testing.T{})
	pool := allNodes(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulatedAnnealing(f.request(pool, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
