// Package schedule implements the CBES-supported schedulers of §6:
//
//   - CS  — the default CBES scheduler: simulated annealing with the full
//     mapping-evaluation operation (eq. 4) as energy function;
//   - NCS — the same simulated annealing but with a cost function that
//     ignores the communication term (eq. 8): it scores mappings by
//     computation speed and CPU load only and cannot predict times;
//   - RS  — a simple random scheduler that picks any valid mapping from a
//     pool of nodes considered equivalent;
//   - GA  — a genetic-algorithm scheduler (the paper's future work);
//   - Exhaustive — full enumeration for small pools, used to establish
//     ground-truth best/worst mappings in the evaluation.
//
// All schedulers respect an administrative node pool and a per-node slot
// capacity, and are deterministic for a fixed seed.
//
// The search-based schedulers run on the core fast path: SA proposes typed
// moves scored by incremental delta-evaluation (core.Scorer), independent
// SA restarts run on a bounded worker pool, GA fitness uses the
// allocation-free full evaluation, and the exhaustive walk re-scores only
// the rank it reassigns at each level of its recursion.
package schedule

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"cbes/internal/anneal"
	"cbes/internal/core"
	"cbes/internal/genetic"
	"cbes/internal/monitor"
	"cbes/internal/obs"
)

// Scheduler observability, split by algorithm name ("cs", "ncs", "rs",
// "ga", "exhaustive" — fixed cardinality). Children are resolved lazily
// per decision, which is far off the hot loop (the hot loop is the
// energy evaluation, instrumented in core).
var (
	metricRequests = obs.Default().CounterVec(
		"cbes_schedule_requests_total", "Scheduling decisions requested.", "alg")
	metricErrors = obs.Default().CounterVec(
		"cbes_schedule_errors_total", "Scheduling requests that returned an error.", "alg")
	metricEvals = obs.Default().CounterVec(
		"cbes_schedule_evals_total", "Cost-function evaluations spent by finished decisions.", "alg")
	metricSeconds = obs.Default().HistogramVec(
		"cbes_schedule_seconds", "Wall time of scheduling decisions.", nil, "alg")
	metricConstraintFailures = obs.Default().Counter(
		"cbes_schedule_constraint_failures_total",
		"Searches that found no constraint-satisfying mapping within their effort.")
	metricNodesFiltered = obs.Default().Counter(
		"cbes_schedule_unhealthy_nodes_filtered_total",
		"Down nodes removed from requested pools before searching.")
	metricInfeasible = obs.Default().Counter(
		"cbes_schedule_infeasible_total",
		"Requests rejected because the healthy pool cannot hold the application.")
	metricCancelled = obs.Default().Counter(
		"cbes_schedule_cancelled_total",
		"Searches abandoned because the request's deadline expired mid-search.")
)

// ErrInfeasible reports a request whose pool — after removing down nodes —
// cannot hold the application's ranks, or whose search space contains no
// valid mapping. Callers match it with errors.Is; the wrapped message
// carries the specifics.
var ErrInfeasible = errors.New("infeasible")

// begin opens one scheduling decision's span — eagerly, unlike the
// metrics (deferred in observe), because the search's anneal/GA child
// spans must parent under it while it is still active. The span joins
// the request's trace when Request.Ctx carries one (the service RPC
// path) and roots a fresh trace otherwise (experiments, direct calls).
func begin(ctx context.Context, alg string, req *Request) (*obs.ActiveSpan, context.Context) {
	span, ctx := obs.StartSpan(ctx, "schedule.decision")
	span.Attr("alg", alg)
	if span != nil && req.Eval != nil && req.Eval.Prof != nil {
		span.Attr("app", req.Eval.Prof.App).
			Attr("pool", len(req.Pool)).
			Attr("seed", req.Seed)
	}
	return span, ctx
}

// observe records one finished scheduling decision (deferred by every
// scheduler entry point; start is captured when the defer is declared).
func observe(alg string, start time.Time, span *obs.ActiveSpan, d **Decision, err *error) {
	secs := time.Since(start).Seconds()
	metricRequests.With(alg).Inc()
	metricSeconds.With(alg).Observe(secs)
	if *err != nil {
		metricErrors.With(alg).Inc()
		span.Error(*err).End()
		return
	}
	dec := *d
	metricEvals.With(alg).Add(uint64(dec.Evaluations))
	span.Attr("evals", dec.Evaluations).
		Attr("predicted_seconds", dec.Predicted).
		Attr("scheduler_seconds", secs).
		End()
}

// Request describes one scheduling problem.
type Request struct {
	// Eval is the full CBES evaluator for the application (CS). NCS derives
	// its communication-blind evaluator from it internally.
	Eval *core.Evaluator
	// Snap is the resource snapshot to schedule against.
	Snap *monitor.Snapshot
	// Pool lists candidate node IDs (administrative policy). Must be
	// non-empty.
	Pool []int
	// SlotsPerNode caps ranks per node. 0 means one rank per node (the
	// paper's usage); set to the node CPU count to allow co-scheduling.
	SlotsPerNode int
	// Seed drives scheduler randomness.
	Seed int64
	// Effort caps search effort: total energy evaluations
	// (default 4000 for SA and GA). SA distributes it exactly across
	// restarts and never exceeds it.
	Effort int
	// Restarts splits the SA effort across independent anneals from
	// different random initial mappings, keeping the best (default 4).
	// Deep local optima — e.g. a fast-architecture island behind a slow
	// uplink — trap single anneals occasionally; restarts recover most of
	// them, mirroring the ~90% hit rate of the paper's CS. Restarts run
	// concurrently on a bounded worker pool; the outcome is independent of
	// scheduling order.
	Restarts int
	// Maximize searches for the worst mapping instead of the best — used
	// by the worst-vs-best evaluation scenarios.
	Maximize bool
	// Ctx, when non-nil, carries the caller's active trace span
	// (obs.StartSpan): the decision span and its per-restart anneal child
	// spans join that trace, so one RPC's causal tree reaches from the
	// interceptor down to individual restarts. Nil roots a fresh trace.
	Ctx context.Context
	// Constraint, when non-nil, restricts the search to mappings for which
	// it returns true (e.g. "must include a SPARC node" to stay
	// representative of a node group). Unsatisfying mappings receive a
	// large energy penalty during the search; a scheduler whose final
	// answer still violates the constraint returns an error rather than a
	// penalty-polluted prediction. The function must be safe for
	// concurrent calls (SA restarts evaluate it from worker goroutines).
	Constraint func(core.Mapping) bool
}

// constraintPenalty dominates any realistic execution-time energy.
const constraintPenalty = 1e9

func (r *Request) effort() int {
	if r.Effort > 0 {
		return r.Effort
	}
	return 4000
}

func (r *Request) slots() int {
	if r.SlotsPerNode > 0 {
		return r.SlotsPerNode
	}
	return 1
}

func (r *Request) ranks() int { return r.Eval.Prof.Ranks }

func (r *Request) validate() error {
	if r.Eval == nil || r.Snap == nil {
		return fmt.Errorf("schedule: request needs Eval and Snap")
	}
	if len(r.Pool) == 0 {
		return fmt.Errorf("schedule: empty node pool")
	}
	if len(r.Pool)*r.slots() < r.ranks() {
		return fmt.Errorf("schedule: pool capacity %d < %d ranks: %w",
			len(r.Pool)*r.slots(), r.ranks(), ErrInfeasible)
	}
	return nil
}

// prepare validates the request and removes down nodes from the pool (a
// scheduler must never place work on a crashed node, and the energy
// function rejects such mappings anyway). It returns the request to
// search with — a shallow copy when filtering changed the pool — or a
// wrapped ErrInfeasible when the healthy pool cannot hold the ranks.
func (r *Request) prepare() (*Request, error) {
	if err := r.validate(); err != nil {
		if errors.Is(err, ErrInfeasible) {
			metricInfeasible.Inc()
		}
		return nil, err
	}
	if r.Snap.Health == nil {
		return r, nil
	}
	healthy := r.Pool // copy-on-write: allocate only if something is down
	filtered := 0
	for i, n := range r.Pool {
		if r.Snap.HealthOf(n) == monitor.HealthDown {
			if filtered == 0 {
				healthy = append([]int(nil), r.Pool[:i]...)
			}
			filtered++
		} else if filtered > 0 {
			healthy = append(healthy, n)
		}
	}
	if filtered == 0 {
		return r, nil
	}
	metricNodesFiltered.Add(uint64(filtered))
	if len(healthy)*r.slots() < r.ranks() {
		metricInfeasible.Inc()
		return nil, fmt.Errorf("schedule: healthy pool capacity %d < %d ranks (%d down nodes filtered): %w",
			len(healthy)*r.slots(), r.ranks(), filtered, ErrInfeasible)
	}
	rr := *r
	rr.Pool = healthy
	return &rr, nil
}

// Decision is a scheduler's answer.
type Decision struct {
	Mapping core.Mapping
	// Predicted is the full CBES execution-time prediction for the chosen
	// mapping (computed with the full evaluator even for NCS and RS, as the
	// paper does to normalize comparisons).
	Predicted float64
	// Score is the value of the scheduler's own cost function (equals
	// Predicted for CS; communication-blind for NCS; NaN for RS).
	Score float64
	// Evaluations counts cost-function calls. For SA it never exceeds the
	// requested Effort.
	Evaluations int
	// SchedulerTime is the real (host) time the search took — the
	// scheduling overhead column of tables 1 and 3.
	SchedulerTime time.Duration
}

// randomMapping draws a uniformly random valid mapping.
func randomMapping(req *Request, rng *rand.Rand) core.Mapping {
	slots := req.slots()
	m := make(core.Mapping, req.ranks())
	used := map[int]int{}
	for i := range m {
		for {
			n := req.Pool[rng.Intn(len(req.Pool))]
			if used[n] < slots {
				m[i] = n
				used[n]++
				break
			}
		}
	}
	return m
}

// neighbor proposes a small random modification of a mapping: either move
// one rank to a node with free capacity, or swap the nodes of two ranks.
// It is the mapping-copying mutation operator of the GA scheduler; SA
// proposes the equivalent typed moves through proposeMove instead.
func neighbor(req *Request, m core.Mapping, rng *rand.Rand) core.Mapping {
	slots := req.slots()
	nm := m.Clone()
	if rng.Intn(2) == 0 && len(m) >= 2 {
		// Swap two ranks — retrying past degenerate pairs (same rank or
		// same node) that would produce an identical mapping and waste an
		// energy evaluation.
		for attempt := 0; attempt < 8; attempt++ {
			i, j := rng.Intn(len(nm)), rng.Intn(len(nm))
			if i == j || nm[i] == nm[j] {
				continue
			}
			nm[i], nm[j] = nm[j], nm[i]
			return nm
		}
		// Every sampled swap was degenerate (e.g. all ranks co-located):
		// fall through to a move.
	}
	// Move one rank to a node with spare capacity.
	used := nm.Multiplicity()
	i := rng.Intn(len(nm))
	for attempts := 0; attempts < 8*len(req.Pool); attempts++ {
		n := req.Pool[rng.Intn(len(req.Pool))]
		if n != nm[i] && used[n] < slots {
			nm[i] = n
			return nm
		}
	}
	return nm // saturated pool: fall back to unchanged (swap next time)
}

// proposeMove draws a typed move for the incremental SA fast path: the
// same proposal distribution as neighbor, but expressed as a core.Move
// against the scorer's current state instead of a fresh mapping copy.
// ok=false means no non-degenerate move was found (saturated pool).
func proposeMove(req *Request, sc *core.Scorer, rng *rand.Rand) (core.Move, bool) {
	m := sc.Current()
	slots := req.slots()
	if rng.Intn(2) == 0 && len(m) >= 2 {
		for attempt := 0; attempt < 8; attempt++ {
			i, j := rng.Intn(len(m)), rng.Intn(len(m))
			if i != j && m[i] != m[j] {
				return core.Move{Swap: true, A: i, B: j}, true
			}
		}
	}
	i := rng.Intn(len(m))
	for attempts := 0; attempts < 8*len(req.Pool); attempts++ {
		n := req.Pool[rng.Intn(len(req.Pool))]
		if n != m[i] && sc.NodeLoad(n) < slots {
			return core.Move{Rank: i, To: n}, true
		}
	}
	return core.Move{}, false
}

// predictFull evaluates a mapping with the full CBES operation.
func predictFull(req *Request, m core.Mapping) float64 {
	p, err := req.Eval.Predict(m, req.Snap)
	if err != nil {
		panic(fmt.Sprintf("schedule: predict: %v", err))
	}
	return p.Seconds
}

// Random is the RS scheduler: an arbitrary valid mapping, no evaluation.
func Random(req *Request) (d *Decision, err error) {
	span, _ := begin(req.Ctx, "rs", req)
	defer observe("rs", time.Now(), span, &d, &err)
	req, err = req.prepare()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(req.Seed))
	m := randomMapping(req, rng)
	for attempts := 0; req.Constraint != nil && !req.Constraint(m); attempts++ {
		if attempts > 10000 {
			metricConstraintFailures.Inc()
			return nil, fmt.Errorf("schedule: constraint unsatisfiable by random sampling")
		}
		m = randomMapping(req, rng)
	}
	d = &Decision{
		Mapping:       m,
		Predicted:     predictFull(req, m),
		Score:         math.NaN(),
		SchedulerTime: time.Since(start),
	}
	return d, nil
}

// saRestartCap approximates the evaluations one anneal can usefully
// spend before the geometric cooling schedule freezes it (~83
// temperature steps × 60 proposals at the defaults).
const saRestartCap = 5000

// saResult is the outcome of one independent SA restart.
type saResult struct {
	m     core.Mapping
	e     float64 // penalized, sign-adjusted energy of m
	evals int
	err   error
}

// saRestart runs one anneal from a random initial mapping on the
// incremental fast path, spending at most budget energy evaluations.
// ctx carries the decision span so the restart's anneal.run span lands
// in the same trace (restarts run on worker goroutines; the span parent
// is immutable, so concurrent child creation is safe).
func saRestart(ctx context.Context, req *Request, sign float64, seed int64, budget int) saResult {
	rng := rand.New(rand.NewSource(seed))
	initial := randomMapping(req, rng)
	sc := req.Eval.Scorer()
	raw, err := sc.Energy(initial, req.Snap)
	if err != nil {
		return saResult{err: err}
	}
	penalize := func(e float64) float64 {
		if req.Constraint != nil && !req.Constraint(sc.Current()) {
			return e + constraintPenalty
		}
		return e
	}
	best := initial.Clone()
	bestE, st := anneal.MinimizeIncremental(anneal.Config{
		MaxEvaluations: budget,
		Seed:           seed + 1,
		Ctx:            ctx,
	}, anneal.IncrementalProblem[core.Move]{
		InitialEnergy: penalize(sign * raw),
		Propose: func(rr *rand.Rand) (core.Move, bool) {
			return proposeMove(req, sc, rr)
		},
		Apply: func(mv core.Move) float64 {
			return penalize(sign * sc.Apply(mv))
		},
		Undo:   sc.Undo,
		Commit: sc.Commit,
		OnBest: func() { copy(best, sc.Current()) },
	})
	return saResult{m: best, e: bestE, evals: st.Evaluations}
}

// saSchedule runs simulated annealing over mappings, distributing the
// effort budget exactly across independent restarts that execute
// concurrently on a bounded worker pool, and keeping the best result
// (ties broken by restart index, so the outcome is deterministic).
func saSchedule(ctx context.Context, req *Request) (core.Mapping, float64, int, error) {
	effort := req.effort()
	restarts := req.Restarts
	if restarts <= 0 {
		restarts = 4
		// One anneal freezes after ~saRestartCap evaluations (the cooling
		// schedule, not the budget, ends the walk): effort beyond
		// restarts×cap would be silently stranded, so a big budget widens
		// the restart fan instead — more independent walks, same per-walk
		// schedule. An explicit Restarts always wins.
		if wide := effort / saRestartCap; wide > restarts {
			restarts = wide
		}
	}
	if restarts > effort {
		restarts = effort
	}
	sign := 1.0
	if req.Maximize {
		sign = -1.0
	}
	// Distribute the budget exactly: the first effort%restarts anneals get
	// one extra evaluation, so Σ budgets == effort.
	base, rem := effort/restarts, effort%restarts

	results := make([]saResult, restarts)
	workers := runtime.GOMAXPROCS(0)
	if workers > restarts {
		workers = restarts
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for r := 0; r < restarts; r++ {
		budget := base
		if r < rem {
			budget++
		}
		wg.Add(1)
		go func(r, budget int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx != nil && ctx.Err() != nil {
				// The deadline expired while this restart queued behind the
				// worker pool: don't pay its init cost (a wide fan can hold
				// thousands of not-yet-started walks at cancellation time).
				results[r] = saResult{err: ctx.Err()}
				return
			}
			results[r] = saRestart(ctx, req, sign, req.Seed+int64(1000*r), budget)
		}(r, budget)
	}
	wg.Wait()

	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			// Deadline propagation: every restart already abandoned its walk
			// via the annealer's per-temperature cancellation check. The
			// partial bests are not comparable to a finished search, so
			// surface the cancellation (with the effort sunk) instead of a
			// mapping nobody asked to act on.
			spent := 0
			for r := range results {
				if results[r].err == nil {
					spent += results[r].evals
				}
			}
			metricCancelled.Inc()
			return nil, 0, 0, fmt.Errorf("schedule: search abandoned after %d evaluations: %w", spent, cerr)
		}
	}

	var best core.Mapping
	bestE := 0.0
	evals := 0
	for r := range results {
		res := &results[r]
		if res.err != nil {
			return nil, 0, 0, res.err
		}
		evals += res.evals
		if best == nil || res.e < bestE {
			best, bestE = res.m, res.e
		}
	}
	if req.Constraint != nil && !req.Constraint(best) {
		// No restart found a satisfying mapping: bestE still carries the
		// constraint penalty and is not an execution-time prediction —
		// surface that as an error instead of a nonsense Decision.
		metricConstraintFailures.Inc()
		return nil, 0, 0, fmt.Errorf("schedule: no constraint-satisfying mapping found within effort %d", effort)
	}
	return best, sign * bestE, evals, nil
}

// SimulatedAnnealing is the CS scheduler: SA with the full CBES
// mapping-evaluation operation as energy function, served by the
// incremental fast path (Scorer delta-evaluation per proposed move).
func SimulatedAnnealing(req *Request) (d *Decision, err error) {
	span, ctx := begin(req.Ctx, "cs", req)
	defer observe("cs", time.Now(), span, &d, &err)
	req, err = req.prepare()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	best, bestE, evals, err := saSchedule(ctx, req)
	if err != nil {
		return nil, err
	}
	return &Decision{
		Mapping:       best,
		Predicted:     bestE,
		Score:         bestE,
		Evaluations:   evals,
		SchedulerTime: time.Since(start),
	}, nil
}

// SimulatedAnnealingNoComm is the NCS scheduler: the same SA but its cost
// function drops the communication term, so its score is not a time
// prediction. The returned Decision's Predicted field is nevertheless
// computed with the full evaluation, mirroring the paper's normalization
// of NCS results.
func SimulatedAnnealingNoComm(req *Request) (d *Decision, err error) {
	span, ctx := begin(req.Ctx, "ncs", req)
	defer observe("ncs", time.Now(), span, &d, &err)
	req, err = req.prepare()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	blindReq := *req
	blindReq.Eval = req.Eval.CommBlind()
	best, bestE, evals, err := saSchedule(ctx, &blindReq)
	if err != nil {
		return nil, err
	}
	return &Decision{
		Mapping:       best,
		Predicted:     predictFull(req, best),
		Score:         bestE,
		Evaluations:   evals,
		SchedulerTime: time.Since(start),
	}, nil
}

// Genetic is the GA scheduler (future-work algorithm): evolves mappings
// with uniform crossover repaired to respect slot capacities. Fitness runs
// on the allocation-free full evaluation of the fast path.
func Genetic(req *Request) (d *Decision, err error) {
	span, ctx := begin(req.Ctx, "ga", req)
	defer observe("ga", time.Now(), span, &d, &err)
	req, err = req.prepare()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	sign := 1.0
	if req.Maximize {
		sign = -1.0
	}
	slots := req.slots()
	repair := func(m core.Mapping, rng *rand.Rand) core.Mapping {
		used := map[int]int{}
		for i, n := range m {
			if used[n] >= slots {
				for {
					c := req.Pool[rng.Intn(len(req.Pool))]
					if used[c] < slots {
						m[i] = c
						n = c
						break
					}
				}
			}
			used[n]++
		}
		return m
	}
	sc := req.Eval.Scorer()
	fitness := func(m core.Mapping) float64 {
		e, err := sc.Energy(m, req.Snap)
		if err != nil {
			panic(fmt.Sprintf("schedule: energy: %v", err))
		}
		f := sign * e
		if req.Constraint != nil && !req.Constraint(m) {
			f += constraintPenalty
		}
		return f
	}
	best, bestF, st := genetic.Minimize(genetic.Config{
		Seed:           req.Seed,
		MaxEvaluations: req.effort(),
		Ctx:            ctx,
	}, genetic.Ops[core.Mapping]{
		NewIndividual: func(rng *rand.Rand) core.Mapping { return randomMapping(req, rng) },
		Fitness:       fitness,
		Crossover: func(a, b core.Mapping, rng *rand.Rand) core.Mapping {
			child := a.Clone()
			for i := range child {
				if rng.Intn(2) == 0 {
					child[i] = b[i]
				}
			}
			return repair(child, rng)
		},
		Mutate: func(m core.Mapping, rng *rand.Rand) core.Mapping {
			return neighbor(req, m, rng)
		},
	})
	if st.Cancelled {
		metricCancelled.Inc()
		return nil, fmt.Errorf("schedule: search abandoned after %d evaluations: %w", st.Evaluations, ctx.Err())
	}
	if req.Constraint != nil && !req.Constraint(best) {
		metricConstraintFailures.Inc()
		return nil, fmt.Errorf("schedule: no constraint-satisfying mapping found within effort %d", req.effort())
	}
	return &Decision{
		Mapping:       best,
		Predicted:     sign * bestF,
		Score:         sign * bestF,
		Evaluations:   st.Evaluations,
		SchedulerTime: time.Since(start),
	}, nil
}

// Exhaustive enumerates every valid mapping (ranks placed on pool nodes,
// respecting slots) and returns the true optimum. Use only for small
// pools: the space is |Pool|^ranks before capacity pruning. The walk runs
// on the incremental fast path: entering a recursion level applies a
// single-rank move to the scorer and leaving it undoes the move, so each
// enumerated mapping costs one delta evaluation instead of a full one.
func Exhaustive(req *Request) (d *Decision, err error) {
	span, ctx := begin(req.Ctx, "exhaustive", req)
	defer observe("exhaustive", time.Now(), span, &d, &err)
	req, err = req.prepare()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	slots := req.slots()
	sc := req.Eval.Scorer()
	m := make(core.Mapping, req.ranks())
	for i := range m {
		m[i] = req.Pool[0]
	}
	if _, err := sc.Energy(m, req.Snap); err != nil {
		return nil, err
	}
	best := core.Mapping(nil)
	bestE := math.Inf(1)
	if req.Maximize {
		bestE = math.Inf(-1)
	}
	evals := 0
	used := make(map[int]int)
	done := ctx.Done()
	cancelled := false
	visits := 0
	var walk func(rank int)
	walk = func(rank int) {
		if cancelled {
			return
		}
		// Deadline propagation: poll the context every 1024 tree nodes so
		// a huge enumeration stays responsive without paying a select per
		// delta evaluation.
		if visits++; visits&1023 == 0 && done != nil {
			select {
			case <-done:
				cancelled = true
				return
			default:
			}
		}
		if rank == len(m) {
			if req.Constraint != nil && !req.Constraint(sc.Current()) {
				return
			}
			e := sc.EnergyNow()
			evals++
			better := e < bestE
			if req.Maximize {
				better = e > bestE
			}
			if better {
				bestE = e
				best = sc.Current().Clone()
			}
			return
		}
		for _, n := range req.Pool {
			if used[n] >= slots {
				continue
			}
			used[n]++
			sc.Apply(core.Move{Rank: rank, To: n})
			walk(rank + 1)
			sc.Undo()
			used[n]--
		}
	}
	walk(0)
	if cancelled {
		metricCancelled.Inc()
		return nil, fmt.Errorf("schedule: exhaustive walk abandoned after %d evaluations: %w", evals, ctx.Err())
	}
	if best == nil {
		metricInfeasible.Inc()
		return nil, fmt.Errorf("schedule: no feasible mapping: %w", ErrInfeasible)
	}
	return &Decision{
		Mapping:       best,
		Predicted:     bestE,
		Score:         bestE,
		Evaluations:   evals,
		SchedulerTime: time.Since(start),
	}, nil
}
