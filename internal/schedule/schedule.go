// Package schedule implements the CBES-supported schedulers of §6:
//
//   - CS  — the default CBES scheduler: simulated annealing with the full
//     mapping-evaluation operation (eq. 4) as energy function;
//   - NCS — the same simulated annealing but with a cost function that
//     ignores the communication term (eq. 8): it scores mappings by
//     computation speed and CPU load only and cannot predict times;
//   - RS  — a simple random scheduler that picks any valid mapping from a
//     pool of nodes considered equivalent;
//   - GA  — a genetic-algorithm scheduler (the paper's future work);
//   - Exhaustive — full enumeration for small pools, used to establish
//     ground-truth best/worst mappings in the evaluation.
//
// All schedulers respect an administrative node pool and a per-node slot
// capacity, and are deterministic for a fixed seed.
package schedule

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"cbes/internal/anneal"
	"cbes/internal/core"
	"cbes/internal/genetic"
	"cbes/internal/monitor"
)

// Request describes one scheduling problem.
type Request struct {
	// Eval is the full CBES evaluator for the application (CS). NCS derives
	// its communication-blind evaluator from it internally.
	Eval *core.Evaluator
	// Snap is the resource snapshot to schedule against.
	Snap *monitor.Snapshot
	// Pool lists candidate node IDs (administrative policy). Must be
	// non-empty.
	Pool []int
	// SlotsPerNode caps ranks per node. 0 means one rank per node (the
	// paper's usage); set to the node CPU count to allow co-scheduling.
	SlotsPerNode int
	// Seed drives scheduler randomness.
	Seed int64
	// Effort scales search effort: total energy evaluations
	// (default 4000 for SA and GA).
	Effort int
	// Restarts splits the SA effort across independent anneals from
	// different random initial mappings, keeping the best (default 4).
	// Deep local optima — e.g. a fast-architecture island behind a slow
	// uplink — trap single anneals occasionally; restarts recover most of
	// them, mirroring the ~90% hit rate of the paper's CS.
	Restarts int
	// Maximize searches for the worst mapping instead of the best — used
	// by the worst-vs-best evaluation scenarios.
	Maximize bool
	// Constraint, when non-nil, restricts the search to mappings for which
	// it returns true (e.g. "must include a SPARC node" to stay
	// representative of a node group). Unsatisfying mappings receive a
	// large energy penalty; Random resamples until satisfied.
	Constraint func(core.Mapping) bool
}

// constraintPenalty dominates any realistic execution-time energy.
const constraintPenalty = 1e9

func (r *Request) effort() int {
	if r.Effort > 0 {
		return r.Effort
	}
	return 4000
}

func (r *Request) slots() int {
	if r.SlotsPerNode > 0 {
		return r.SlotsPerNode
	}
	return 1
}

func (r *Request) ranks() int { return r.Eval.Prof.Ranks }

func (r *Request) validate() error {
	if r.Eval == nil || r.Snap == nil {
		return fmt.Errorf("schedule: request needs Eval and Snap")
	}
	if len(r.Pool) == 0 {
		return fmt.Errorf("schedule: empty node pool")
	}
	if len(r.Pool)*r.slots() < r.ranks() {
		return fmt.Errorf("schedule: pool capacity %d < %d ranks",
			len(r.Pool)*r.slots(), r.ranks())
	}
	return nil
}

// Decision is a scheduler's answer.
type Decision struct {
	Mapping core.Mapping
	// Predicted is the full CBES execution-time prediction for the chosen
	// mapping (computed with the full evaluator even for NCS and RS, as the
	// paper does to normalize comparisons).
	Predicted float64
	// Score is the value of the scheduler's own cost function (equals
	// Predicted for CS; communication-blind for NCS; NaN for RS).
	Score float64
	// Evaluations counts cost-function calls.
	Evaluations int
	// SchedulerTime is the real (host) time the search took — the
	// scheduling overhead column of tables 1 and 3.
	SchedulerTime time.Duration
}

// randomMapping draws a uniformly random valid mapping.
func randomMapping(req *Request, rng *rand.Rand) core.Mapping {
	slots := req.slots()
	m := make(core.Mapping, req.ranks())
	used := map[int]int{}
	for i := range m {
		for {
			n := req.Pool[rng.Intn(len(req.Pool))]
			if used[n] < slots {
				m[i] = n
				used[n]++
				break
			}
		}
	}
	return m
}

// neighbor proposes a small random modification: either move one rank to a
// node with free capacity, or swap the nodes of two ranks.
func neighbor(req *Request, m core.Mapping, rng *rand.Rand) core.Mapping {
	slots := req.slots()
	nm := m.Clone()
	if rng.Intn(2) == 0 && len(m) >= 2 {
		// Swap two ranks.
		i, j := rng.Intn(len(nm)), rng.Intn(len(nm))
		for j == i {
			j = rng.Intn(len(nm))
		}
		nm[i], nm[j] = nm[j], nm[i]
		return nm
	}
	// Move one rank to a node with spare capacity.
	used := nm.Multiplicity()
	i := rng.Intn(len(nm))
	for attempts := 0; attempts < 8*len(req.Pool); attempts++ {
		n := req.Pool[rng.Intn(len(req.Pool))]
		if n != nm[i] && used[n] < slots {
			nm[i] = n
			return nm
		}
	}
	return nm // saturated pool: fall back to unchanged (swap next time)
}

// predictFull evaluates a mapping with the full CBES operation.
func predictFull(req *Request, m core.Mapping) float64 {
	p, err := req.Eval.Predict(m, req.Snap)
	if err != nil {
		panic(fmt.Sprintf("schedule: predict: %v", err))
	}
	return p.Seconds
}

// Random is the RS scheduler: an arbitrary valid mapping, no evaluation.
func Random(req *Request) (*Decision, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(req.Seed))
	m := randomMapping(req, rng)
	for attempts := 0; req.Constraint != nil && !req.Constraint(m); attempts++ {
		if attempts > 10000 {
			return nil, fmt.Errorf("schedule: constraint unsatisfiable by random sampling")
		}
		m = randomMapping(req, rng)
	}
	d := &Decision{
		Mapping:       m,
		Predicted:     predictFull(req, m),
		Score:         math.NaN(),
		SchedulerTime: time.Since(start),
	}
	return d, nil
}

// saSchedule runs simulated annealing over mappings with the given energy,
// restarting from independent random initials and keeping the best.
func saSchedule(req *Request, energy func(core.Mapping) float64) (core.Mapping, float64, int) {
	restarts := req.Restarts
	if restarts <= 0 {
		restarts = 4
	}
	sign := 1.0
	if req.Maximize {
		sign = -1.0
	}
	perRun := req.effort() / restarts
	if perRun < 100 {
		perRun = 100
	}
	var best core.Mapping
	bestE := 0.0
	evals := 0
	penalized := func(m core.Mapping) float64 {
		e := sign * energy(m)
		if req.Constraint != nil && !req.Constraint(m) {
			e += constraintPenalty
		}
		return e
	}
	for r := 0; r < restarts; r++ {
		rng := rand.New(rand.NewSource(req.Seed + int64(1000*r)))
		initial := randomMapping(req, rng)
		m, e, st := anneal.Minimize(anneal.Config{
			MaxEvaluations: perRun,
			Seed:           req.Seed + int64(1000*r) + 1,
		}, initial, penalized,
			func(m core.Mapping, rr *rand.Rand) core.Mapping { return neighbor(req, m, rr) },
		)
		evals += st.Evaluations
		if best == nil || e < bestE {
			best, bestE = m, e
		}
	}
	return best, sign * bestE, evals
}

// SimulatedAnnealing is the CS scheduler: SA with the full CBES
// mapping-evaluation operation as energy function.
func SimulatedAnnealing(req *Request) (*Decision, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	best, bestE, evals := saSchedule(req, func(m core.Mapping) float64 { return predictFull(req, m) })
	return &Decision{
		Mapping:       best,
		Predicted:     bestE,
		Score:         bestE,
		Evaluations:   evals,
		SchedulerTime: time.Since(start),
	}, nil
}

// SimulatedAnnealingNoComm is the NCS scheduler: the same SA but its cost
// function drops the communication term, so its score is not a time
// prediction. The returned Decision's Predicted field is nevertheless
// computed with the full evaluation, mirroring the paper's normalization
// of NCS results.
func SimulatedAnnealingNoComm(req *Request) (*Decision, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	blind := *req.Eval
	blind.IgnoreComm = true
	blindReq := *req
	blindReq.Eval = &blind
	best, bestE, evals := saSchedule(&blindReq, func(m core.Mapping) float64 {
		p, err := blind.Predict(m, req.Snap)
		if err != nil {
			panic(err)
		}
		return p.Seconds
	})
	return &Decision{
		Mapping:       best,
		Predicted:     predictFull(req, best),
		Score:         bestE,
		Evaluations:   evals,
		SchedulerTime: time.Since(start),
	}, nil
}

// Genetic is the GA scheduler (future-work algorithm): evolves mappings
// with uniform crossover repaired to respect slot capacities.
func Genetic(req *Request) (*Decision, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	sign := 1.0
	if req.Maximize {
		sign = -1.0
	}
	slots := req.slots()
	repair := func(m core.Mapping, rng *rand.Rand) core.Mapping {
		used := map[int]int{}
		for i, n := range m {
			if used[n] >= slots {
				for {
					c := req.Pool[rng.Intn(len(req.Pool))]
					if used[c] < slots {
						m[i] = c
						n = c
						break
					}
				}
			}
			used[n]++
		}
		return m
	}
	fitness := func(m core.Mapping) float64 {
		f := sign * predictFull(req, m)
		if req.Constraint != nil && !req.Constraint(m) {
			f += constraintPenalty
		}
		return f
	}
	best, bestF, st := genetic.Minimize(genetic.Config{
		Seed:           req.Seed,
		MaxEvaluations: req.effort(),
	}, genetic.Ops[core.Mapping]{
		NewIndividual: func(rng *rand.Rand) core.Mapping { return randomMapping(req, rng) },
		Fitness:       fitness,
		Crossover: func(a, b core.Mapping, rng *rand.Rand) core.Mapping {
			child := a.Clone()
			for i := range child {
				if rng.Intn(2) == 0 {
					child[i] = b[i]
				}
			}
			return repair(child, rng)
		},
		Mutate: func(m core.Mapping, rng *rand.Rand) core.Mapping {
			return neighbor(req, m, rng)
		},
	})
	return &Decision{
		Mapping:       best,
		Predicted:     sign * bestF,
		Score:         sign * bestF,
		Evaluations:   st.Evaluations,
		SchedulerTime: time.Since(start),
	}, nil
}

// Exhaustive enumerates every valid mapping (ranks placed on pool nodes,
// respecting slots) and returns the true optimum. Use only for small
// pools: the space is |Pool|^ranks before capacity pruning.
func Exhaustive(req *Request) (*Decision, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	slots := req.slots()
	best := core.Mapping(nil)
	bestE := math.Inf(1)
	if req.Maximize {
		bestE = math.Inf(-1)
	}
	evals := 0
	m := make(core.Mapping, req.ranks())
	used := make(map[int]int)
	var walk func(rank int)
	walk = func(rank int) {
		if rank == len(m) {
			if req.Constraint != nil && !req.Constraint(m) {
				return
			}
			e := predictFull(req, m)
			evals++
			better := e < bestE
			if req.Maximize {
				better = e > bestE
			}
			if better {
				bestE = e
				best = m.Clone()
			}
			return
		}
		for _, n := range req.Pool {
			if used[n] >= slots {
				continue
			}
			used[n]++
			m[rank] = n
			walk(rank + 1)
			used[n]--
		}
	}
	walk(0)
	if best == nil {
		return nil, fmt.Errorf("schedule: no feasible mapping")
	}
	return &Decision{
		Mapping:       best,
		Predicted:     bestE,
		Score:         bestE,
		Evaluations:   evals,
		SchedulerTime: time.Since(start),
	}, nil
}
