package schedule

import (
	"errors"
	"reflect"
	"testing"

	"cbes/internal/monitor"
)

// downSnap marks the given nodes HealthDown in an otherwise idle snapshot.
func downSnap(n int, down ...int) *monitor.Snapshot {
	s := monitor.IdleSnapshot(n)
	s.Health = make([]monitor.Health, n)
	for _, i := range down {
		s.Health[i] = monitor.HealthDown
		s.AvailCPU[i] = 0
	}
	return s
}

// TestSchedulersNeverMapToDownNodes is the acceptance pin: with down nodes
// in the pool, no algorithm's decision may place a rank on one of them.
func TestSchedulersNeverMapToDownNodes(t *testing.T) {
	f := newFixture(t)
	down := map[int]bool{1: true, 5: true}
	snap := downSnap(f.topo.NumNodes(), 1, 5)

	algos := map[string]func(*Request) (*Decision, error){
		"rs":         Random,
		"cs":         SimulatedAnnealing,
		"ncs":        SimulatedAnnealingNoComm,
		"ga":         Genetic,
		"exhaustive": Exhaustive,
	}
	for name, run := range algos {
		for seed := int64(0); seed < 3; seed++ {
			req := f.request(allNodes(f), seed)
			req.Snap = snap
			dec, err := run(req)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			for rank, node := range dec.Mapping {
				if down[node] {
					t.Fatalf("%s seed %d mapped rank %d to down node %d", name, seed, rank, node)
				}
			}
		}
	}
}

func TestInfeasibleWhenHealthyPoolTooSmall(t *testing.T) {
	f := newFixture(t)
	// 4 ranks, pool of 4 with 2 down: capacity 2 < 4.
	snap := downSnap(f.topo.NumNodes(), 0, 2)
	for name, run := range map[string]func(*Request) (*Decision, error){
		"rs": Random, "cs": SimulatedAnnealing, "ga": Genetic,
	} {
		req := f.request([]int{0, 1, 2, 3}, 1)
		req.Snap = snap
		if _, err := run(req); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%s: err = %v, want ErrInfeasible", name, err)
		}
	}
}

func TestCapacityErrorIsInfeasible(t *testing.T) {
	// The pre-existing capacity check (no faults involved) now carries the
	// typed sentinel too.
	f := newFixture(t)
	req := f.request([]int{0, 1}, 1) // 2 slots for 4 ranks
	if _, err := Random(req); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPrepareLeavesCallerPoolIntact(t *testing.T) {
	f := newFixture(t)
	pool := []int{0, 1, 2, 3, 4, 5}
	orig := append([]int(nil), pool...)
	req := f.request(pool, 1)
	req.Snap = downSnap(f.topo.NumNodes(), 2)
	dec, err := Random(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pool, orig) {
		t.Fatalf("caller pool mutated: %v", pool)
	}
	if !reflect.DeepEqual(req.Pool, orig) {
		t.Fatalf("request pool mutated: %v", req.Pool)
	}
	for _, node := range dec.Mapping {
		if node == 2 {
			t.Fatal("mapped to filtered node")
		}
	}
}

func TestDegradedSnapshotStillSchedulable(t *testing.T) {
	// Suspect (stale) nodes stay in the pool — they are served with
	// profile-only fallbacks by the evaluator, not excluded.
	f := newFixture(t)
	snap := monitor.IdleSnapshot(f.topo.NumNodes())
	snap.Health = make([]monitor.Health, f.topo.NumNodes())
	for i := range snap.Health {
		snap.Health[i] = monitor.HealthSuspect
	}
	req := f.request([]int{0, 1, 2, 3}, 1)
	req.Snap = snap
	dec, err := SimulatedAnnealing(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Mapping) != 4 {
		t.Fatalf("mapping = %v", dec.Mapping)
	}
	pred, err := f.eval.Predict(dec.Mapping, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Degraded {
		t.Fatal("prediction on all-suspect snapshot should be degraded")
	}
}
