package schedule

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A request whose context is already expired must abandon the search
// deterministically: every algorithm returns a wrapped ctx error instead
// of burning its full effort budget.
func TestCancelledContextAbandonsSearch(t *testing.T) {
	f := newFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	algs := []struct {
		name string
		run  func(*Request) (*Decision, error)
	}{
		{"cs", SimulatedAnnealing},
		{"ncs", SimulatedAnnealingNoComm},
		{"ga", Genetic},
		{"exhaustive", Exhaustive},
	}
	for _, alg := range algs {
		req := f.request(allNodes(f), 42)
		req.Ctx = ctx
		req.Effort = 100000
		d, err := alg.run(req)
		if err == nil {
			t.Fatalf("%s: expected cancellation error, got decision %+v", alg.name, d)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want wrapped context.Canceled", alg.name, err)
		}
	}
}

// Mid-search expiry: a short deadline must stop SA well before the effort
// budget would finish on its own.
func TestDeadlineExpiresMidAnneal(t *testing.T) {
	f := newFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()

	req := f.request(allNodes(f), 7)
	req.Ctx = ctx
	req.Effort = 50_000_000 // far more than 5ms of delta evaluations
	start := time.Now()
	_, err := SimulatedAnnealing(req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected cancellation error from deadline expiry")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	// Generous bound: the annealer polls once per temperature step (≤60
	// evals, µs each), so returning should take milliseconds, not the
	// seconds the full budget would need.
	if elapsed > 2*time.Second {
		t.Fatalf("search took %v after a 5ms deadline — cancellation not prompt", elapsed)
	}
}

// Cancellation must not fire for requests without a context (the
// pre-deadline behaviour): the full effort is spent.
func TestNoContextRunsFullEffort(t *testing.T) {
	f := newFixture(t)
	req := f.request(allNodes(f), 3)
	req.Effort = 400
	d, err := SimulatedAnnealing(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Evaluations < req.Effort/2 {
		t.Fatalf("evaluations = %d, want most of effort %d", d.Evaluations, req.Effort)
	}
}
