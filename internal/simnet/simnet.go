// Package simnet simulates message transport over a cluster.Topology:
// store-and-forward traversal of each link on the route with FIFO
// serialization per link direction.
//
// A message of s bytes crossing links l1..lk experiences, at each link, a
// queueing wait (the link transmits one frame train at a time per
// direction), a transmission time s/bandwidth, and the link's propagation/
// forwarding latency. This reproduces the paper's observation that
// internode latency varies with topology, message size, and load: shared
// uplinks and the Orange Grove federation path congest under concurrent
// traffic.
//
// CPU-side software overheads (the MPI library path) are NOT charged here;
// internal/mpisim charges them to the sender's and receiver's CPUs, which
// is how CPU load inflates end-to-end latency in this system, mirroring
// the latency model of the paper's companion dissertation [12].
package simnet

import (
	"cbes/internal/cluster"
	"cbes/internal/des"
)

// direction disambiguates full-duplex link occupancy.
type direction int

const (
	dirAtoB direction = iota
	dirBtoA
)

// linkState tracks FIFO occupancy and utilization accounting for one link.
type linkState struct {
	spec cluster.Link
	// freeAt[d] is when the link can begin transmitting the next message in
	// direction d.
	freeAt [2]des.Time
	// busy[d] accumulates transmission time for utilization metrics.
	busy [2]des.Time
}

// Network simulates the fabric of a topology on a DES engine.
type Network struct {
	eng   *des.Engine
	topo  *cluster.Topology
	links []linkState
	// stats
	messages uint64
	bytes    uint64
}

// New creates a network simulator for topo.
func New(eng *des.Engine, topo *cluster.Topology) *Network {
	n := &Network{eng: eng, topo: topo}
	n.links = make([]linkState, len(topo.Links))
	for i, l := range topo.Links {
		n.links[i].spec = l
	}
	return n
}

// Topology returns the static topology.
func (n *Network) Topology() *cluster.Topology { return n.topo }

// Messages reports the number of messages fully delivered so far.
func (n *Network) Messages() uint64 { return n.messages }

// Bytes reports the total payload bytes delivered so far.
func (n *Network) Bytes() uint64 { return n.bytes }

// txTime is the serialization delay of size bytes on a link.
func txTime(size int64, bandwidth float64) des.Time {
	if size <= 0 {
		return 0
	}
	return des.FromSeconds(float64(size) / bandwidth)
}

// linkDirection determines the traversal direction given the device we
// depart from.
func (n *Network) linkDirection(l *linkState, from cluster.Device) (direction, cluster.Device) {
	if l.spec.A == from {
		return dirAtoB, l.spec.B
	}
	return dirBtoA, l.spec.A
}

// Deliver injects a message of size bytes from node src to node dst and
// calls delivered when the last byte arrives at dst. Loopback (src == dst)
// delivers after a fixed small memcpy-like delay. Must be called from
// engine context.
func (n *Network) Deliver(src, dst int, size int64, delivered func()) {
	if src == dst {
		n.eng.Schedule(loopbackLatency(size), func() {
			n.messages++
			n.bytes += uint64(size)
			delivered()
		})
		return
	}
	path := n.topo.Path(src, dst)
	n.hop(cluster.Device{Kind: cluster.DevNode, Index: src}, path, 0, size, func() {
		n.messages++
		n.bytes += uint64(size)
		delivered()
	})
}

// loopbackLatency models same-node (shared-memory) delivery.
func loopbackLatency(size int64) des.Time {
	// ~5 µs constant plus a 400 MB/s memcpy.
	return 5*des.Microsecond + des.FromSeconds(float64(size)/400e6)
}

// hop advances the message across path[idx..].
func (n *Network) hop(from cluster.Device, path []int, idx int, size int64, done func()) {
	if idx >= len(path) {
		done()
		return
	}
	l := &n.links[path[idx]]
	dir, next := n.linkDirection(l, from)
	now := n.eng.Now()
	start := now
	if l.freeAt[dir] > start {
		start = l.freeAt[dir]
	}
	tx := txTime(size, l.spec.Bandwidth)
	l.freeAt[dir] = start + tx
	l.busy[dir] += tx
	arrive := start + tx + l.spec.Latency
	n.eng.ScheduleAt(arrive, func() {
		n.hop(next, path, idx+1, size, done)
	})
}

// EstimateNoLoad computes, without simulating, the no-contention traversal
// time of a message along the route — the "wire" component that the CBES
// latency model fits during calibration.
func (n *Network) EstimateNoLoad(src, dst int, size int64) des.Time {
	if src == dst {
		return loopbackLatency(size)
	}
	var t des.Time
	for _, lid := range n.topo.Path(src, dst) {
		l := n.topo.Links[lid]
		t += txTime(size, l.Bandwidth) + l.Latency
	}
	return t
}

// LinkBusy reports the accumulated transmission time of link id in both
// directions (used by NIC/bandwidth sensors).
func (n *Network) LinkBusy(id int) des.Time {
	return n.links[id].busy[dirAtoB] + n.links[id].busy[dirBtoA]
}

// EdgeLink returns the ID of the link that connects node id to its edge
// switch (its NIC cable).
func (n *Network) EdgeLink(node int) int {
	dev := cluster.Device{Kind: cluster.DevNode, Index: node}
	for _, l := range n.topo.Links {
		if l.A == dev || l.B == dev {
			return l.ID
		}
	}
	return -1
}
