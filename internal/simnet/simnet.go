// Package simnet simulates message transport over a cluster.Topology:
// store-and-forward traversal of each link on the route with FIFO
// serialization per link direction.
//
// A message of s bytes crossing links l1..lk experiences, at each link, a
// queueing wait (the link transmits one frame train at a time per
// direction), a transmission time s/bandwidth, and the link's propagation/
// forwarding latency. This reproduces the paper's observation that
// internode latency varies with topology, message size, and load: shared
// uplinks and the Orange Grove federation path congest under concurrent
// traffic.
//
// CPU-side software overheads (the MPI library path) are NOT charged here;
// internal/mpisim charges them to the sender's and receiver's CPUs, which
// is how CPU load inflates end-to-end latency in this system, mirroring
// the latency model of the paper's companion dissertation [12].
package simnet

import (
	"cbes/internal/cluster"
	"cbes/internal/des"
)

// direction disambiguates full-duplex link occupancy.
type direction int

const (
	dirAtoB direction = iota
	dirBtoA
)

// linkState tracks FIFO occupancy and utilization accounting for one link.
type linkState struct {
	spec cluster.Link
	// scale multiplies the link's nominal bandwidth: 1 is healthy, smaller
	// values model a degraded cable/switch port (fault injection).
	scale float64
	// freeAt[d] is when the link can begin transmitting the next message in
	// direction d.
	freeAt [2]des.Time
	// busy[d] accumulates transmission time for utilization metrics.
	busy [2]des.Time
}

// Network simulates the fabric of a topology on a DES engine.
type Network struct {
	eng   *des.Engine
	topo  *cluster.Topology
	links []linkState
	// free recycles transfer records so a multi-hop message costs no
	// allocations beyond its first traversal of the network.
	free []*transfer
	// stats
	messages uint64
	bytes    uint64
}

// transfer is one in-flight message traversing its route. Recycled via
// Network.free once the final hop delivers.
type transfer struct {
	net  *Network
	from cluster.Device
	path []int
	idx  int
	size int64
	done func()
	// afn/arg is the allocation-lean completion form used by DeliverArg.
	afn func(any)
	arg any
}

// stepTransfer is the package-level hop callback used with des.ScheduleArg,
// replacing the closure the engine would otherwise allocate per hop.
func stepTransfer(a any) {
	t := a.(*transfer)
	t.net.hop(t)
}

// New creates a network simulator for topo.
func New(eng *des.Engine, topo *cluster.Topology) *Network {
	n := &Network{eng: eng, topo: topo}
	n.links = make([]linkState, len(topo.Links))
	for i, l := range topo.Links {
		n.links[i].spec = l
		n.links[i].scale = 1
	}
	return n
}

// minLinkScale bounds degradation so transmission times stay finite: a
// "partitioned" link crawls at 1% of nominal bandwidth rather than
// stalling the simulation forever.
const minLinkScale = 0.01

// DegradeLink scales link id's bandwidth by factor (clamped to
// [minLinkScale, 1]) — the fault-injection hook for flaky cables and
// congested switch ports. In-flight transmissions keep their already
// computed times; subsequent messages see the degraded rate.
func (n *Network) DegradeLink(id int, factor float64) {
	if factor > 1 {
		factor = 1
	}
	if factor < minLinkScale {
		factor = minLinkScale
	}
	n.links[id].scale = factor
}

// RestoreLink returns link id to nominal bandwidth.
func (n *Network) RestoreLink(id int) { n.links[id].scale = 1 }

// LinkScale reports link id's current bandwidth scale (1 = healthy).
func (n *Network) LinkScale(id int) float64 { return n.links[id].scale }

// Topology returns the static topology.
func (n *Network) Topology() *cluster.Topology { return n.topo }

// Messages reports the number of messages fully delivered so far.
func (n *Network) Messages() uint64 { return n.messages }

// Bytes reports the total payload bytes delivered so far.
func (n *Network) Bytes() uint64 { return n.bytes }

// txTime is the serialization delay of size bytes on a link.
func txTime(size int64, bandwidth float64) des.Time {
	if size <= 0 {
		return 0
	}
	return des.FromSeconds(float64(size) / bandwidth)
}

// linkDirection determines the traversal direction given the device we
// depart from.
func (n *Network) linkDirection(l *linkState, from cluster.Device) (direction, cluster.Device) {
	if l.spec.A == from {
		return dirAtoB, l.spec.B
	}
	return dirBtoA, l.spec.A
}

// Deliver injects a message of size bytes from node src to node dst and
// calls delivered when the last byte arrives at dst. Loopback (src == dst)
// delivers after a fixed small memcpy-like delay. Must be called from
// engine context.
func (n *Network) Deliver(src, dst int, size int64, delivered func()) {
	t := n.allocTransfer()
	t.done = delivered
	n.launch(t, src, dst, size)
}

// DeliverArg is Deliver with the completion callback split into a
// (pre-existing) function plus one argument, so hot senders avoid a closure
// allocation per message.
func (n *Network) DeliverArg(src, dst int, size int64, fn func(any), arg any) {
	t := n.allocTransfer()
	t.afn, t.arg = fn, arg
	n.launch(t, src, dst, size)
}

func (n *Network) allocTransfer() *transfer {
	if k := len(n.free); k > 0 {
		t := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return t
	}
	return &transfer{}
}

func (n *Network) launch(t *transfer, src, dst int, size int64) {
	t.net, t.size, t.idx = n, size, 0
	if src == dst {
		t.path = nil
		n.eng.ScheduleArg(loopbackLatency(size), stepTransfer, t)
		return
	}
	t.from = cluster.Device{Kind: cluster.DevNode, Index: src}
	t.path = n.topo.Path(src, dst)
	n.hop(t)
}

// loopbackLatency models same-node (shared-memory) delivery.
func loopbackLatency(size int64) des.Time {
	// ~5 µs constant plus a 400 MB/s memcpy.
	return 5*des.Microsecond + des.FromSeconds(float64(size)/400e6)
}

// hop advances the transfer across its next link; when the route is
// exhausted it counts the delivery, recycles the record, and invokes the
// caller's callback.
func (n *Network) hop(t *transfer) {
	if t.idx >= len(t.path) {
		n.messages++
		n.bytes += uint64(t.size)
		done, afn, arg := t.done, t.afn, t.arg
		t.done, t.afn, t.arg = nil, nil, nil
		t.net = nil
		t.path = nil
		n.free = append(n.free, t)
		if done != nil {
			done()
		} else {
			afn(arg)
		}
		return
	}
	l := &n.links[t.path[t.idx]]
	dir, next := n.linkDirection(l, t.from)
	start := n.eng.Now()
	if l.freeAt[dir] > start {
		start = l.freeAt[dir]
	}
	tx := txTime(t.size, l.spec.Bandwidth*l.scale)
	l.freeAt[dir] = start + tx
	l.busy[dir] += tx
	arrive := start + tx + l.spec.Latency
	t.from = next
	t.idx++
	n.eng.ScheduleArgAt(arrive, stepTransfer, t)
}

// EstimateNoLoad computes, without simulating, the no-contention traversal
// time of a message along the route — the "wire" component that the CBES
// latency model fits during calibration.
func (n *Network) EstimateNoLoad(src, dst int, size int64) des.Time {
	if src == dst {
		return loopbackLatency(size)
	}
	var t des.Time
	for _, lid := range n.topo.Path(src, dst) {
		l := n.topo.Links[lid]
		t += txTime(size, l.Bandwidth) + l.Latency
	}
	return t
}

// LinkBusy reports the accumulated transmission time of link id in both
// directions (used by NIC/bandwidth sensors).
func (n *Network) LinkBusy(id int) des.Time {
	return n.links[id].busy[dirAtoB] + n.links[id].busy[dirBtoA]
}

// EdgeLink returns the ID of the link that connects node id to its edge
// switch (its NIC cable).
func (n *Network) EdgeLink(node int) int {
	dev := cluster.Device{Kind: cluster.DevNode, Index: node}
	for _, l := range n.topo.Links {
		if l.A == dev || l.B == dev {
			return l.ID
		}
	}
	return -1
}
