// Package simnet simulates message transport over a cluster.Topology:
// store-and-forward traversal of each link on the route with FIFO
// serialization per link direction.
//
// A message of s bytes crossing links l1..lk experiences, at each link, a
// queueing wait (the link transmits one frame train at a time per
// direction), a transmission time s/bandwidth, and the link's propagation/
// forwarding latency. This reproduces the paper's observation that
// internode latency varies with topology, message size, and load: shared
// uplinks and the Orange Grove federation path congest under concurrent
// traffic.
//
// CPU-side software overheads (the MPI library path) are NOT charged here;
// internal/mpisim charges them to the sender's and receiver's CPUs, which
// is how CPU load inflates end-to-end latency in this system, mirroring
// the latency model of the paper's companion dissertation [12].
//
// The per-link dynamic state (bandwidth scale, FIFO horizon, utilization
// accounting) is held in struct-of-arrays form indexed by link ID and
// direction, so a 5k-node topology costs three flat slices instead of an
// array of per-link structs interleaving hot and cold fields.
package simnet

import (
	"cbes/internal/cluster"
	"cbes/internal/des"
)

// direction disambiguates full-duplex link occupancy.
type direction int

const (
	dirAtoB direction = iota
	dirBtoA
)

// Network simulates the fabric of a topology on a DES engine.
//
// Link state is struct-of-arrays: scale[id] multiplies link id's nominal
// bandwidth (1 healthy, less = fault-injected degradation); freeAt and
// busy are indexed 2·id+dir and hold the FIFO release time and the
// accumulated transmission time per direction. Static link specs are read
// from the topology, not copied.
type Network struct {
	eng       *des.Engine
	topo      *cluster.Topology
	algebraic bool
	scale     []float64
	freeAt    []des.Time
	busy      []des.Time
	// free recycles transfer records so a multi-hop message costs no
	// allocations beyond its first traversal of the network.
	free []*transfer
	// stats
	messages uint64
	bytes    uint64
}

// transfer is one in-flight message traversing its route. Recycled via
// Network.free once the final hop delivers. buf is the transfer's own
// route storage, reused across messages when routes are computed
// algebraically (stored tables hand out shared slices instead).
type transfer struct {
	net  *Network
	from cluster.Device
	path []int
	buf  []int
	idx  int
	size int64
	done func()
	// afn/arg is the allocation-lean completion form used by DeliverArg.
	afn func(any)
	arg any
}

// stepTransfer is the package-level hop callback used with des.ScheduleArg,
// replacing the closure the engine would otherwise allocate per hop.
func stepTransfer(a any) {
	t := a.(*transfer)
	t.net.hop(t)
}

// New creates a network simulator for topo.
func New(eng *des.Engine, topo *cluster.Topology) *Network {
	nl := len(topo.Links)
	n := &Network{
		eng:       eng,
		topo:      topo,
		algebraic: topo.AlgebraicRoutes(),
		scale:     make([]float64, nl),
		freeAt:    make([]des.Time, 2*nl),
		busy:      make([]des.Time, 2*nl),
	}
	for i := range n.scale {
		n.scale[i] = 1
	}
	return n
}

// minLinkScale bounds degradation so transmission times stay finite: a
// "partitioned" link crawls at 1% of nominal bandwidth rather than
// stalling the simulation forever.
const minLinkScale = 0.01

// DegradeLink scales link id's bandwidth by factor (clamped to
// [minLinkScale, 1]) — the fault-injection hook for flaky cables and
// congested switch ports. In-flight transmissions keep their already
// computed times; subsequent messages see the degraded rate.
func (n *Network) DegradeLink(id int, factor float64) {
	if factor > 1 {
		factor = 1
	}
	if factor < minLinkScale {
		factor = minLinkScale
	}
	n.scale[id] = factor
}

// RestoreLink returns link id to nominal bandwidth.
func (n *Network) RestoreLink(id int) { n.scale[id] = 1 }

// LinkScale reports link id's current bandwidth scale (1 = healthy).
func (n *Network) LinkScale(id int) float64 { return n.scale[id] }

// Topology returns the static topology.
func (n *Network) Topology() *cluster.Topology { return n.topo }

// Messages reports the number of messages fully delivered so far.
func (n *Network) Messages() uint64 { return n.messages }

// Bytes reports the total payload bytes delivered so far.
func (n *Network) Bytes() uint64 { return n.bytes }

// txTime is the serialization delay of size bytes on a link.
func txTime(size int64, bandwidth float64) des.Time {
	if size <= 0 {
		return 0
	}
	return des.FromSeconds(float64(size) / bandwidth)
}

// linkDirection determines the traversal direction given the device we
// depart from.
func linkDirection(l *cluster.Link, from cluster.Device) (direction, cluster.Device) {
	if l.A == from {
		return dirAtoB, l.B
	}
	return dirBtoA, l.A
}

// Deliver injects a message of size bytes from node src to node dst and
// calls delivered when the last byte arrives at dst. Loopback (src == dst)
// delivers after a fixed small memcpy-like delay. Must be called from
// engine context.
func (n *Network) Deliver(src, dst int, size int64, delivered func()) {
	t := n.allocTransfer()
	t.done = delivered
	n.launch(t, src, dst, size)
}

// DeliverArg is Deliver with the completion callback split into a
// (pre-existing) function plus one argument, so hot senders avoid a closure
// allocation per message.
func (n *Network) DeliverArg(src, dst int, size int64, fn func(any), arg any) {
	t := n.allocTransfer()
	t.afn, t.arg = fn, arg
	n.launch(t, src, dst, size)
}

func (n *Network) allocTransfer() *transfer {
	if k := len(n.free); k > 0 {
		t := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return t
	}
	return &transfer{}
}

func (n *Network) launch(t *transfer, src, dst int, size int64) {
	t.net, t.size, t.idx = n, size, 0
	if src == dst {
		t.path = nil
		n.eng.ScheduleArg(loopbackLatency(size), stepTransfer, t)
		return
	}
	t.from = cluster.Device{Kind: cluster.DevNode, Index: src}
	if n.algebraic {
		// Compute the route into the transfer's recycled buffer: O(hops)
		// work, amortized zero allocations.
		t.buf = n.topo.AppendPath(t.buf[:0], src, dst)
		t.path = t.buf
	} else {
		t.path = n.topo.Path(src, dst)
	}
	n.hop(t)
}

// loopbackLatency models same-node (shared-memory) delivery.
func loopbackLatency(size int64) des.Time {
	// ~5 µs constant plus a 400 MB/s memcpy.
	return 5*des.Microsecond + des.FromSeconds(float64(size)/400e6)
}

// hop advances the transfer across its next link; when the route is
// exhausted it counts the delivery, recycles the record, and invokes the
// caller's callback.
func (n *Network) hop(t *transfer) {
	if t.idx >= len(t.path) {
		n.messages++
		n.bytes += uint64(t.size)
		done, afn, arg := t.done, t.afn, t.arg
		t.done, t.afn, t.arg = nil, nil, nil
		t.net = nil
		t.path = nil
		n.free = append(n.free, t)
		if done != nil {
			done()
		} else {
			afn(arg)
		}
		return
	}
	lid := t.path[t.idx]
	l := &n.topo.Links[lid]
	dir, next := linkDirection(l, t.from)
	di := 2*lid + int(dir)
	start := n.eng.Now()
	if n.freeAt[di] > start {
		start = n.freeAt[di]
	}
	tx := txTime(t.size, l.Bandwidth*n.scale[lid])
	n.freeAt[di] = start + tx
	n.busy[di] += tx
	arrive := start + tx + l.Latency
	t.from = next
	t.idx++
	n.eng.ScheduleArgAt(arrive, stepTransfer, t)
}

// EstimateNoLoad computes, without simulating, the no-contention traversal
// time of a message along the route — the "wire" component that the CBES
// latency model fits during calibration.
func (n *Network) EstimateNoLoad(src, dst int, size int64) des.Time {
	if src == dst {
		return loopbackLatency(size)
	}
	var buf [16]int
	var t des.Time
	for _, lid := range n.topo.AppendPath(buf[:0], src, dst) {
		l := &n.topo.Links[lid]
		t += txTime(size, l.Bandwidth) + l.Latency
	}
	return t
}

// LinkBusy reports the accumulated transmission time of link id in both
// directions (used by NIC/bandwidth sensors).
func (n *Network) LinkBusy(id int) des.Time {
	return n.busy[2*id] + n.busy[2*id+1]
}

// EdgeLink returns the ID of the link that connects node id to its edge
// switch (its NIC cable).
func (n *Network) EdgeLink(node int) int {
	return n.topo.EdgeLink(node)
}
