package simnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cbes/internal/cluster"
	"cbes/internal/des"
)

func newNet() (*des.Engine, *Network) {
	eng := des.NewEngine()
	return eng, New(eng, cluster.NewTestTopology())
}

func TestDeliverSameSwitch(t *testing.T) {
	eng, net := newNet()
	var at des.Time
	eng.Schedule(0, func() {
		net.Deliver(0, 1, 1000, func() { at = eng.Now() })
	})
	eng.Run()
	want := net.EstimateNoLoad(0, 1, 1000)
	if at != want {
		t.Fatalf("delivery at %v, want %v (no contention => estimate exact)", at, want)
	}
	// 2 hops of (1000B / 12.5MB/s + 5 µs) = 2*(80+5) µs = 170 µs.
	if got := at.Seconds(); math.Abs(got-170e-6) > 1e-9 {
		t.Fatalf("same-switch latency = %v, want 170µs", got)
	}
}

func TestDeliverCrossSwitchSlower(t *testing.T) {
	_, net := newNet()
	same := net.EstimateNoLoad(0, 1, 1000)
	cross := net.EstimateNoLoad(0, 4, 1000)
	if cross <= same {
		t.Fatalf("cross-switch (%v) should exceed same-switch (%v)", cross, same)
	}
}

func TestLoopback(t *testing.T) {
	eng, net := newNet()
	var at des.Time
	eng.Schedule(0, func() { net.Deliver(3, 3, 1<<20, func() { at = eng.Now() }) })
	eng.Run()
	if at <= 0 || at > des.Millisecond*10 {
		t.Fatalf("loopback delivery at %v", at)
	}
	cross := net.EstimateNoLoad(3, 4, 1<<20)
	if at >= cross {
		t.Fatalf("loopback (%v) should beat the network (%v)", at, cross)
	}
}

func TestFIFOContentionSerializes(t *testing.T) {
	// Two messages from the same node back-to-back share its edge link:
	// the second must queue behind the first.
	eng, net := newNet()
	var t1, t2 des.Time
	eng.Schedule(0, func() {
		net.Deliver(0, 1, 100000, func() { t1 = eng.Now() })
		net.Deliver(0, 2, 100000, func() { t2 = eng.Now() })
	})
	eng.Run()
	solo := net.EstimateNoLoad(0, 2, 100000)
	if t2 <= solo {
		t.Fatalf("contended delivery %v not delayed past solo %v", t2, solo)
	}
	if t1 == 0 || t2 <= t1 {
		t.Fatalf("deliveries out of order: %v then %v", t1, t2)
	}
	// The extra delay is one transmission time of the shared first hop.
	tx := des.FromSeconds(100000 / cluster.BandwidthFast100)
	want := solo + tx
	if d := (t2 - want).Seconds(); math.Abs(d) > 1e-9 {
		t.Fatalf("contended delivery = %v, want %v", t2, want)
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	// Full duplex: A->B and B->A simultaneously both arrive at solo time.
	eng, net := newNet()
	var t1, t2 des.Time
	eng.Schedule(0, func() {
		net.Deliver(0, 1, 100000, func() { t1 = eng.Now() })
		net.Deliver(1, 0, 100000, func() { t2 = eng.Now() })
	})
	eng.Run()
	solo := net.EstimateNoLoad(0, 1, 100000)
	if t1 != solo || t2 != solo {
		t.Fatalf("duplex deliveries %v, %v, want both %v", t1, t2, solo)
	}
}

func TestSharedUplinkContention(t *testing.T) {
	// Messages 0->4 and 1->5 share the swA-swB uplink.
	eng, net := newNet()
	var t2 des.Time
	eng.Schedule(0, func() {
		net.Deliver(0, 4, 200000, func() {})
		net.Deliver(1, 5, 200000, func() { t2 = eng.Now() })
	})
	eng.Run()
	solo := net.EstimateNoLoad(1, 5, 200000)
	if t2 <= solo {
		t.Fatalf("uplink contention not observed: %v <= %v", t2, solo)
	}
}

func TestCountersAccumulate(t *testing.T) {
	eng, net := newNet()
	eng.Schedule(0, func() {
		net.Deliver(0, 1, 500, func() {})
		net.Deliver(2, 3, 700, func() {})
	})
	eng.Run()
	if net.Messages() != 2 {
		t.Fatalf("messages = %d, want 2", net.Messages())
	}
	if net.Bytes() != 1200 {
		t.Fatalf("bytes = %d, want 1200", net.Bytes())
	}
	if net.LinkBusy(net.EdgeLink(0)) <= 0 {
		t.Fatal("edge link of node 0 shows no busy time")
	}
}

func TestEdgeLink(t *testing.T) {
	_, net := newNet()
	for id := 0; id < net.Topology().NumNodes(); id++ {
		lid := net.EdgeLink(id)
		if lid < 0 {
			t.Fatalf("node %d has no edge link", id)
		}
		l := net.Topology().Links[lid]
		dev := cluster.Device{Kind: cluster.DevNode, Index: id}
		if l.A != dev && l.B != dev {
			t.Fatalf("edge link %d does not touch node %d", lid, id)
		}
	}
}

// Property: no-load estimate is monotonically nondecreasing in message size
// and positive for distinct nodes.
func TestQuickEstimateMonotonic(t *testing.T) {
	_, net := newNet()
	prop := func(a, b uint8, s1, s2 uint32) bool {
		i, j := int(a)%8, int(b)%8
		if i == j {
			return true
		}
		lo, hi := int64(s1%1e6), int64(s2%1e6)
		if lo > hi {
			lo, hi = hi, lo
		}
		el, eh := net.EstimateNoLoad(i, j, lo), net.EstimateNoLoad(i, j, hi)
		return el > 0 && el <= eh
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulated delivery time is never earlier than the no-load
// estimate (contention only adds delay), for any burst of messages.
func TestQuickDeliveryLowerBound(t *testing.T) {
	prop := func(seed int64) bool {
		eng, net := newNet()
		type rec struct {
			src, dst int
			size     int64
			estimate des.Time
			arrived  des.Time
		}
		rng := rand.New(rand.NewSource(seed))
		var recs []*rec
		eng.Schedule(0, func() {
			for k := 0; k < 10; k++ {
				r := &rec{src: rng.Intn(8), dst: rng.Intn(8), size: int64(rng.Intn(100000))}
				r.estimate = net.EstimateNoLoad(r.src, r.dst, r.size)
				recs = append(recs, r)
				rr := r
				net.Deliver(r.src, r.dst, r.size, func() { rr.arrived = eng.Now() })
			}
		})
		eng.Run()
		for _, r := range recs {
			if r.arrived < r.estimate {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeliver(b *testing.B) {
	eng, net := newNet()
	done := 0
	eng.Schedule(0, func() {
		for i := 0; i < b.N; i++ {
			net.Deliver(i%8, (i+3)%8, 1024, func() { done++ })
		}
	})
	eng.Run()
	if done != b.N {
		b.Fatal("lost deliveries")
	}
}
