package simnet

import (
	"testing"

	"cbes/internal/des"
)

// deliverAt measures when a single message from src to dst completes,
// starting from an otherwise idle network.
func deliverAt(net *Network, eng *des.Engine, src, dst int, size int64) des.Time {
	var at des.Time
	start := eng.Now()
	eng.Schedule(0, func() { net.Deliver(src, dst, size, func() { at = eng.Now() }) })
	eng.Run()
	return at - start
}

func TestDegradeLinkSlowsDelivery(t *testing.T) {
	eng, net := newNet()
	base := deliverAt(net, eng, 0, 4, 1<<20) // cross-switch: uses several links

	eng2, net2 := newNet()
	for id := range net2.topo.Links {
		net2.DegradeLink(id, 0.5)
	}
	slow := deliverAt(net2, eng2, 0, 4, 1<<20)
	if slow <= base {
		t.Fatalf("degraded delivery %v not slower than nominal %v", slow, base)
	}
	// Halving bandwidth on every hop should roughly double the serialization
	// component; the total must stay within 2x + per-hop latencies.
	if slow >= 3*base {
		t.Fatalf("degraded delivery %v implausibly slow vs nominal %v", slow, base)
	}

	for id := range net2.topo.Links {
		net2.RestoreLink(id)
	}
	restored := deliverAt(net2, eng2, 0, 4, 1<<20)
	if restored != base {
		t.Fatalf("restored delivery %v, want nominal %v", restored, base)
	}
	eng.Shutdown()
	eng2.Shutdown()
}

func TestDegradeLinkClamps(t *testing.T) {
	_, net := newNet()
	net.DegradeLink(0, 0) // zero bandwidth would hang the sim forever
	if got := net.LinkScale(0); got != minLinkScale {
		t.Fatalf("scale after Degrade(0) = %v, want floor %v", got, minLinkScale)
	}
	net.DegradeLink(0, 7.5) // "degrading" above nominal is a restore
	if got := net.LinkScale(0); got != 1 {
		t.Fatalf("scale after Degrade(7.5) = %v, want 1", got)
	}
	net.DegradeLink(0, 0.3)
	if got := net.LinkScale(0); got != 0.3 {
		t.Fatalf("scale = %v, want 0.3", got)
	}
	net.RestoreLink(0)
	if got := net.LinkScale(0); got != 1 {
		t.Fatalf("restored scale = %v, want 1", got)
	}
}
