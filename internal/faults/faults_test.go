package faults

import (
	"reflect"
	"testing"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

type env struct {
	eng *des.Engine
	vc  *vcluster.Cluster
	net *simnet.Network
	mon *monitor.SystemMonitor
	in  *Injector
}

func newEnv(t *testing.T) *env {
	t.Helper()
	eng := des.NewEngine()
	t.Cleanup(eng.Shutdown)
	topo := cluster.NewTestTopology()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	mon := monitor.NewSystemMonitor(vc, net, monitor.Config{Noise: monitor.NoNoise})
	return &env{eng: eng, vc: vc, net: net, mon: mon, in: NewInjector(vc, net, mon)}
}

func TestInjectorAppliesEveryKind(t *testing.T) {
	e := newEnv(t)
	sched := Schedule{
		{At: 2 * des.Second, Kind: NodeCrash, Node: 1},
		{At: 3 * des.Second, Kind: LinkDegrade, Link: 0, Factor: 0.25},
		{At: 4 * des.Second, Kind: SensorDrop, Node: 2},
		{At: 5 * des.Second, Kind: MonitorStall, Duration: 3 * des.Second},
		{At: 20 * des.Second, Kind: NodeRecover, Node: 1},
		{At: 20 * des.Second, Kind: LinkRestore, Link: 0},
		{At: 20 * des.Second, Kind: SensorRestore, Node: 2},
	}
	if err := e.in.Install(sched); err != nil {
		t.Fatal(err)
	}

	e.eng.RunUntil(10 * des.Second)
	if !e.vc.Down(1) {
		t.Fatal("node 1 should be down after NodeCrash")
	}
	if got := e.net.LinkScale(0); got != 0.25 {
		t.Fatalf("link 0 scale = %v, want 0.25", got)
	}
	snap := e.mon.Snapshot()
	if snap.HealthOf(1) != monitor.HealthDown {
		t.Fatalf("crashed node health = %v, want down", snap.HealthOf(1))
	}
	if snap.HealthOf(2) != monitor.HealthDown {
		t.Fatalf("sensor-dropped node health = %v, want down", snap.HealthOf(2))
	}
	if e.in.Injected() != 4 {
		t.Fatalf("injected = %d, want 4 by t=10s", e.in.Injected())
	}

	e.eng.RunUntil(30 * des.Second)
	if e.vc.Down(1) {
		t.Fatal("node 1 should have recovered")
	}
	if got := e.net.LinkScale(0); got != 1 {
		t.Fatalf("restored link scale = %v, want 1", got)
	}
	snap = e.mon.Snapshot()
	for i := 0; i < 8; i++ {
		if snap.HealthOf(i) != monitor.HealthOK {
			t.Fatalf("node %d health = %v after full recovery", i, snap.HealthOf(i))
		}
	}
	counts := e.in.Counts()
	for _, k := range []Kind{NodeCrash, NodeRecover, LinkDegrade, LinkRestore, SensorDrop, SensorRestore, MonitorStall} {
		if counts[k] != 1 {
			t.Fatalf("counts[%v] = %d, want 1", k, counts[k])
		}
	}
}

func TestMonitorStallFreezesSampling(t *testing.T) {
	e := newEnv(t)
	if err := e.in.Install(Schedule{{At: 5 * des.Second, Kind: MonitorStall, Duration: 10 * des.Second}}); err != nil {
		t.Fatal(err)
	}
	e.eng.RunUntil(5 * des.Second)
	before := e.mon.Samples()
	e.eng.RunUntil(14 * des.Second)
	if got := e.mon.Samples(); got != before {
		t.Fatalf("samples advanced during stall: %d -> %d", before, got)
	}
	// Stale data must surface as suspect health once past the TTL.
	if snap := e.mon.Snapshot(); snap.HealthOf(0) != monitor.HealthSuspect {
		t.Fatalf("health during stall = %v, want suspect", snap.HealthOf(0))
	}
	e.eng.RunUntil(20 * des.Second)
	if got := e.mon.Samples(); got <= before {
		t.Fatal("sampling did not resume after stall")
	}
	if snap := e.mon.Snapshot(); snap.HealthOf(0) != monitor.HealthOK {
		t.Fatal("health did not recover after stall ended")
	}
}

func TestInstallRejectsBadFaults(t *testing.T) {
	e := newEnv(t)
	bad := []Fault{
		{Kind: NodeCrash, Node: -1},
		{Kind: NodeRecover, Node: 99},
		{Kind: LinkDegrade, Link: -1},
		{Kind: LinkRestore, Link: 10_000},
		{Kind: MonitorStall, Duration: 0},
		{Kind: Kind(42)},
	}
	for _, f := range bad {
		if err := e.in.Install(Schedule{f}); err == nil {
			t.Fatalf("Install accepted invalid fault %+v", f)
		}
	}
	// Sensor faults and stalls need a monitor.
	nomon := NewInjector(e.vc, e.net, nil)
	if err := nomon.Install(Schedule{{At: des.Second, Kind: SensorDrop, Node: 0}}); err == nil {
		t.Fatal("SensorDrop without monitor should fail")
	}
	if err := nomon.Install(Schedule{{At: des.Second, Kind: MonitorStall, Duration: des.Second}}); err == nil {
		t.Fatal("MonitorStall without monitor should fail")
	}
}

func TestCancelDisarmsPendingFaults(t *testing.T) {
	e := newEnv(t)
	if err := e.in.Install(Schedule{{At: 5 * des.Second, Kind: NodeCrash, Node: 0}}); err != nil {
		t.Fatal(err)
	}
	e.in.Cancel()
	e.eng.RunUntil(10 * des.Second)
	if e.vc.Down(0) {
		t.Fatal("cancelled fault still fired")
	}
	if e.in.Injected() != 0 {
		t.Fatalf("injected = %d after cancel", e.in.Injected())
	}
}

func TestRandomScheduleReproducible(t *testing.T) {
	topo := cluster.NewTestTopology()
	cfg := RandomConfig{Seed: 7, Horizon: 120 * des.Second, Crashes: 2, Degrades: 2, SensorDrops: 1, Stalls: 1}
	a := RandomSchedule(topo, cfg)
	b := RandomSchedule(topo, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 2*2+2*2+2*1+1 {
		t.Fatalf("schedule has %d faults, want 11", len(a))
	}
	for i, f := range a {
		if f.At <= 0 || f.At > cfg.Horizon {
			t.Fatalf("fault %d at %v outside (0, horizon]", i, f.At)
		}
		if i > 0 && a[i-1].At > f.At {
			t.Fatalf("schedule not sorted at %d", i)
		}
	}
	if c := RandomSchedule(topo, RandomConfig{Seed: 8, Horizon: 120 * des.Second, Crashes: 2}); reflect.DeepEqual(a[:4], c[:4]) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestInjectorDeterminism pins the subsystem's core contract: the same
// topology, config, and seeded schedule replayed on two independent systems
// yield byte-identical monitor snapshots at every observation point.
func TestInjectorDeterminism(t *testing.T) {
	run := func() []*monitor.Snapshot {
		eng := des.NewEngine()
		defer eng.Shutdown()
		topo := cluster.NewTestTopology()
		vc := vcluster.New(eng, topo)
		net := simnet.New(eng, topo)
		mon := monitor.NewSystemMonitor(vc, net, monitor.Config{Noise: monitor.NoNoise})
		in := NewInjector(vc, net, mon)
		sched := RandomSchedule(topo, RandomConfig{
			Seed: 42, Horizon: 60 * des.Second,
			Crashes: 2, Degrades: 1, SensorDrops: 1, Stalls: 1,
		})
		if err := in.Install(sched); err != nil {
			t.Fatal(err)
		}
		var snaps []*monitor.Snapshot
		for ts := 10 * des.Second; ts <= 70*des.Second; ts += 10 * des.Second {
			eng.RunUntil(ts)
			snaps = append(snaps, mon.Snapshot())
		}
		return snaps
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical fault schedules produced divergent snapshots")
	}
	// The schedule must actually have disturbed the system: at least one
	// observation point saw a non-OK node.
	disturbed := false
	for _, s := range a {
		if ok, suspect, down := s.HealthCounts(); suspect > 0 || down > 0 || ok < len(s.AvailCPU) {
			disturbed = true
		}
	}
	if !disturbed {
		t.Fatal("fault schedule left no observable trace")
	}
}
