// Package faults injects deterministic, seeded fault schedules into the
// simulated cluster. A Schedule is a time-ordered list of fault events —
// node crashes and recoveries, link degradations, sensor dropouts,
// monitor-daemon stalls — that an Injector replays through the DES engine,
// so every layer above (monitor health, core degraded predictions,
// scheduler pool filtering, daemon readiness) can be exercised and tested
// against exactly reproducible failure scenarios.
//
// Determinism contract: the same topology, seed, and schedule produce the
// same sequence of simulator mutations at the same simulated times, hence
// identical snapshots and predictions (pinned by TestInjectorDeterminism).
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/monitor"
	"cbes/internal/obs"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

var metricInjected = obs.Default().CounterVec(
	"cbes_faults_injected_total",
	"Fault events injected into the simulated cluster, by kind.",
	"kind")

// Kind enumerates the fault event types the injector can replay.
type Kind int

// The fault kinds, one per hook exposed by the simulation layers.
const (
	NodeCrash     Kind = iota // vcluster: node goes down, tasks freeze
	NodeRecover               // vcluster: node comes back, tasks resume
	LinkDegrade               // simnet: bandwidth scaled by Factor
	LinkRestore               // simnet: bandwidth back to nominal
	SensorDrop                // monitor: node's sensor daemon dies
	SensorRestore             // monitor: sensor daemon revived
	MonitorStall              // monitor: whole daemon wedged for Duration
)

var kindNames = [...]string{
	NodeCrash:     "node_crash",
	NodeRecover:   "node_recover",
	LinkDegrade:   "link_degrade",
	LinkRestore:   "link_restore",
	SensorDrop:    "sensor_drop",
	SensorRestore: "sensor_restore",
	MonitorStall:  "monitor_stall",
}

// String names the kind for metrics labels and logs.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Fault is one scheduled fault event.
type Fault struct {
	At   des.Time // absolute simulated time of injection
	Kind Kind
	// Node is the target node for NodeCrash/NodeRecover/SensorDrop/
	// SensorRestore; ignored otherwise.
	Node int
	// Link is the target topology link for LinkDegrade/LinkRestore.
	Link int
	// Factor is the bandwidth scale for LinkDegrade (clamped by simnet).
	Factor float64
	// Duration is the stall length for MonitorStall.
	Duration des.Time
}

// Schedule is a list of fault events. Install sorts it by time, so callers
// may build it in any order.
type Schedule []Fault

// Injector replays a fault schedule into the simulation layers of one
// system. Create with NewInjector, arm with Install; injection then happens
// as the engine advances past each fault's timestamp.
type Injector struct {
	vc  *vcluster.Cluster
	net *simnet.Network
	mon *monitor.SystemMonitor

	injected int
	counts   map[Kind]int
	events   []*des.Event
}

// NewInjector wires an injector to the simulation layers it mutates. mon
// may be nil if the schedule contains no sensor or stall faults.
func NewInjector(vc *vcluster.Cluster, net *simnet.Network, mon *monitor.SystemMonitor) *Injector {
	return &Injector{vc: vc, net: net, mon: mon, counts: map[Kind]int{}}
}

// validate rejects faults that reference nonexistent targets, so a bad
// schedule fails loudly at Install time instead of panicking mid-sim.
func (in *Injector) validate(f Fault) error {
	topo := in.vc.Topo
	switch f.Kind {
	case NodeCrash, NodeRecover:
		if f.Node < 0 || f.Node >= topo.NumNodes() {
			return fmt.Errorf("faults: %s targets invalid node %d", f.Kind, f.Node)
		}
	case SensorDrop, SensorRestore:
		if f.Node < 0 || f.Node >= topo.NumNodes() {
			return fmt.Errorf("faults: %s targets invalid node %d", f.Kind, f.Node)
		}
		if in.mon == nil {
			return fmt.Errorf("faults: %s requires a monitor", f.Kind)
		}
	case LinkDegrade, LinkRestore:
		if f.Link < 0 || f.Link >= len(topo.Links) {
			return fmt.Errorf("faults: %s targets invalid link %d", f.Kind, f.Link)
		}
	case MonitorStall:
		if in.mon == nil {
			return fmt.Errorf("faults: %s requires a monitor", f.Kind)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("faults: %s needs a positive duration", f.Kind)
		}
	default:
		return fmt.Errorf("faults: unknown kind %d", int(f.Kind))
	}
	return nil
}

// Install validates the schedule and arms one DES event per fault. Faults
// whose time has already passed fire at the current simulated time (the
// engine clamps). Install may be called more than once to layer schedules.
func (in *Injector) Install(sched Schedule) error {
	for _, f := range sched {
		if err := in.validate(f); err != nil {
			return err
		}
	}
	ordered := append(Schedule(nil), sched...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	for _, f := range ordered {
		f := f
		ev := in.vc.Eng.ScheduleAt(f.At, func() { in.apply(f) })
		in.events = append(in.events, ev)
	}
	return nil
}

// Cancel removes all not-yet-fired faults from the engine queue.
func (in *Injector) Cancel() {
	for _, ev := range in.events {
		in.vc.Eng.Cancel(ev)
	}
	in.events = in.events[:0]
}

// apply performs one fault mutation. Runs in engine context. Kinds that
// mutate the cluster behind the monitor's sensors (crashes, link
// degradations) explicitly bump the monitor's snapshot epoch so
// epoch-keyed prediction caches cannot serve pre-fault answers; the
// monitor kinds bump it themselves.
func (in *Injector) apply(f Fault) {
	switch f.Kind {
	case NodeCrash:
		in.vc.Crash(f.Node)
		in.bumpMonitor()
	case NodeRecover:
		in.vc.Recover(f.Node)
		in.bumpMonitor()
	case LinkDegrade:
		in.net.DegradeLink(f.Link, f.Factor)
		in.bumpMonitor()
	case LinkRestore:
		in.net.RestoreLink(f.Link)
		in.bumpMonitor()
	case SensorDrop:
		in.mon.DropSensor(f.Node)
	case SensorRestore:
		in.mon.RestoreSensor(f.Node)
	case MonitorStall:
		in.mon.StallFor(f.Duration)
	}
	in.injected++
	in.counts[f.Kind]++
	metricInjected.With(f.Kind.String()).Inc()
}

// bumpMonitor advances the snapshot epoch when a monitor is attached.
func (in *Injector) bumpMonitor() {
	if in.mon != nil {
		in.mon.BumpEpoch()
	}
}

// Injected reports how many faults have fired so far.
func (in *Injector) Injected() int { return in.injected }

// Counts returns a copy of the per-kind fired-fault counts.
func (in *Injector) Counts() map[Kind]int {
	out := make(map[Kind]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// RandomConfig tunes RandomSchedule.
type RandomConfig struct {
	Seed    int64
	Horizon des.Time // faults land in (0, Horizon]; required
	// Crashes is the number of crash/recover pairs (recovery always
	// follows its crash within the horizon).
	Crashes int
	// Degrades is the number of link degrade/restore pairs.
	Degrades int
	// SensorDrops is the number of sensor drop/restore pairs.
	SensorDrops int
	// Stalls is the number of monitor stalls; each lasts up to MaxStall.
	Stalls   int
	MaxStall des.Time
}

// RandomSchedule generates a reproducible schedule of paired faults over
// the topology: each disruptive event is followed by its matching recovery
// before the horizon, so the cluster ends the run converging back to
// healthy. The same topology and config always yield the same schedule.
func RandomSchedule(topo *cluster.Topology, cfg RandomConfig) Schedule {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Horizon <= 0 {
		return nil
	}
	if cfg.MaxStall <= 0 {
		cfg.MaxStall = cfg.Horizon / 10
	}
	var sched Schedule
	// pairTimes draws a start in the first 2/3 of the horizon and an end
	// strictly after it, so every outage both happens and heals on-screen.
	pairTimes := func() (des.Time, des.Time) {
		start := 1 + des.Time(rng.Int63n(int64(cfg.Horizon)*2/3))
		end := start + 1 + des.Time(rng.Int63n(int64(cfg.Horizon-start)))
		return start, end
	}
	for i := 0; i < cfg.Crashes; i++ {
		node := rng.Intn(topo.NumNodes())
		at, until := pairTimes()
		sched = append(sched,
			Fault{At: at, Kind: NodeCrash, Node: node},
			Fault{At: until, Kind: NodeRecover, Node: node})
	}
	for i := 0; i < cfg.Degrades && len(topo.Links) > 0; i++ {
		link := rng.Intn(len(topo.Links))
		factor := 0.05 + 0.45*rng.Float64() // 5%..50% of nominal bandwidth
		at, until := pairTimes()
		sched = append(sched,
			Fault{At: at, Kind: LinkDegrade, Link: link, Factor: factor},
			Fault{At: until, Kind: LinkRestore, Link: link})
	}
	for i := 0; i < cfg.SensorDrops; i++ {
		node := rng.Intn(topo.NumNodes())
		at, until := pairTimes()
		sched = append(sched,
			Fault{At: at, Kind: SensorDrop, Node: node},
			Fault{At: until, Kind: SensorRestore, Node: node})
	}
	for i := 0; i < cfg.Stalls; i++ {
		at := 1 + des.Time(rng.Int63n(int64(cfg.Horizon)))
		d := 1 + des.Time(rng.Int63n(int64(cfg.MaxStall)))
		sched = append(sched, Fault{At: at, Kind: MonitorStall, Duration: d})
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched
}
