package anneal

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic: minimize (x-7)^2 over integers via +-1 moves.
func TestMinimizeQuadratic(t *testing.T) {
	energy := func(x int) float64 { d := float64(x - 7); return d * d }
	neighbor := func(x int, r *rand.Rand) int {
		if r.Intn(2) == 0 {
			return x + 1
		}
		return x - 1
	}
	best, e, st := Minimize(Config{Seed: 1}, 100, energy, neighbor)
	if best != 7 || e != 0 {
		t.Fatalf("best = %d (e=%v), want 7", best, e)
	}
	if st.Evaluations == 0 || st.Accepted == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// A rugged 1-D landscape with a deep global minimum at 42 among many local
// minima: SA must escape local traps that greedy descent cannot.
func TestMinimizeRugged(t *testing.T) {
	energy := func(x int) float64 {
		fx := float64(x)
		return 0.05*math.Abs(fx-42) + 2*math.Pow(math.Sin(fx/3), 2)
	}
	neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(13) - 6 }
	best, _, _ := Minimize(Config{Seed: 3, MaxEvaluations: 60000}, 120, energy, neighbor)
	if math.Abs(float64(best-42)) > 8 {
		t.Fatalf("best = %d, want near 42", best)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	energy := func(x int) float64 { d := float64(x - 13); return d*d + math.Sin(float64(x)) }
	neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(9) - 4 }
	run := func() (int, float64) {
		b, e, _ := Minimize(Config{Seed: 9}, 500, energy, neighbor)
		return b, e
	}
	b1, e1 := run()
	b2, e2 := run()
	if b1 != b2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", b1, e1, b2, e2)
	}
}

func TestRespectsEvaluationCap(t *testing.T) {
	calls := 0
	energy := func(x int) float64 { calls++; return float64(x * x) }
	neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(3) - 1 }
	_, _, st := Minimize(Config{Seed: 1, MaxEvaluations: 100}, 50, energy, neighbor)
	if st.Evaluations > 100 {
		t.Fatalf("evaluations = %d > cap", st.Evaluations)
	}
	if calls != st.Evaluations {
		t.Fatalf("calls %d != reported %d", calls, st.Evaluations)
	}
}

func TestBestNeverWorseThanInitial(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		energy := func(x int) float64 { return math.Abs(float64(x)) }
		neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(21) - 10 }
		init := 1000
		_, e, _ := Minimize(Config{Seed: seed, MaxEvaluations: 500}, init, energy, neighbor)
		if e > energy(init) {
			t.Fatalf("seed %d: best %v worse than initial %v", seed, e, energy(init))
		}
	}
}

func TestConstantEnergyNoCrash(t *testing.T) {
	energy := func(x int) float64 { return 5 }
	neighbor := func(x int, r *rand.Rand) int { return x + 1 }
	_, e, _ := Minimize(Config{Seed: 1, MaxEvaluations: 200}, 0, energy, neighbor)
	if e != 5 {
		t.Fatalf("e = %v", e)
	}
}

func BenchmarkAnnealQuadratic(b *testing.B) {
	energy := func(x int) float64 { d := float64(x - 7); return d * d }
	neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(3) - 1 }
	for i := 0; i < b.N; i++ {
		Minimize(Config{Seed: int64(i), MaxEvaluations: 2000}, 100, energy, neighbor)
	}
}
