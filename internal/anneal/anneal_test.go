package anneal

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic: minimize (x-7)^2 over integers via +-1 moves.
func TestMinimizeQuadratic(t *testing.T) {
	energy := func(x int) float64 { d := float64(x - 7); return d * d }
	neighbor := func(x int, r *rand.Rand) int {
		if r.Intn(2) == 0 {
			return x + 1
		}
		return x - 1
	}
	best, e, st := Minimize(Config{Seed: 1}, 100, energy, neighbor)
	if best != 7 || e != 0 {
		t.Fatalf("best = %d (e=%v), want 7", best, e)
	}
	if st.Evaluations == 0 || st.Accepted == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// A rugged 1-D landscape with a deep global minimum at 42 among many local
// minima: SA must escape local traps that greedy descent cannot.
func TestMinimizeRugged(t *testing.T) {
	energy := func(x int) float64 {
		fx := float64(x)
		return 0.05*math.Abs(fx-42) + 2*math.Pow(math.Sin(fx/3), 2)
	}
	neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(13) - 6 }
	best, _, _ := Minimize(Config{Seed: 3, MaxEvaluations: 60000}, 120, energy, neighbor)
	if math.Abs(float64(best-42)) > 8 {
		t.Fatalf("best = %d, want near 42", best)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	energy := func(x int) float64 { d := float64(x - 13); return d*d + math.Sin(float64(x)) }
	neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(9) - 4 }
	run := func() (int, float64) {
		b, e, _ := Minimize(Config{Seed: 9}, 500, energy, neighbor)
		return b, e
	}
	b1, e1 := run()
	b2, e2 := run()
	if b1 != b2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", b1, e1, b2, e2)
	}
}

func TestRespectsEvaluationCap(t *testing.T) {
	calls := 0
	energy := func(x int) float64 { calls++; return float64(x * x) }
	neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(3) - 1 }
	_, _, st := Minimize(Config{Seed: 1, MaxEvaluations: 100}, 50, energy, neighbor)
	if st.Evaluations > 100 {
		t.Fatalf("evaluations = %d > cap", st.Evaluations)
	}
	if calls != st.Evaluations {
		t.Fatalf("calls %d != reported %d", calls, st.Evaluations)
	}
}

func TestBestNeverWorseThanInitial(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		energy := func(x int) float64 { return math.Abs(float64(x)) }
		neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(21) - 10 }
		init := 1000
		_, e, _ := Minimize(Config{Seed: seed, MaxEvaluations: 500}, init, energy, neighbor)
		if e > energy(init) {
			t.Fatalf("seed %d: best %v worse than initial %v", seed, e, energy(init))
		}
	}
}

func TestConstantEnergyNoCrash(t *testing.T) {
	energy := func(x int) float64 { return 5 }
	neighbor := func(x int, r *rand.Rand) int { return x + 1 }
	_, e, _ := Minimize(Config{Seed: 1, MaxEvaluations: 200}, 0, energy, neighbor)
	if e != 5 {
		t.Fatalf("e = %v", e)
	}
}

func BenchmarkAnnealQuadratic(b *testing.B) {
	energy := func(x int) float64 { d := float64(x - 7); return d * d }
	neighbor := func(x int, r *rand.Rand) int { return x + r.Intn(3) - 1 }
	for i := 0; i < b.N; i++ {
		Minimize(Config{Seed: int64(i), MaxEvaluations: 2000}, 100, energy, neighbor)
	}
}

// incProblem adapts a 1-D integer walk to the incremental interface for
// testing: state is a single int, moves are ±1 steps.
type incProblem struct {
	x, prev int
	best    int
	energy  func(int) float64
	applies int
}

func (p *incProblem) problem() IncrementalProblem[int] {
	return IncrementalProblem[int]{
		InitialEnergy: p.energy(p.x),
		Propose: func(r *rand.Rand) (int, bool) {
			return r.Intn(3) - 1, true
		},
		Apply: func(mv int) float64 {
			p.prev = p.x
			p.x += mv
			p.applies++
			return p.energy(p.x)
		},
		Undo:   func() { p.x = p.prev },
		OnBest: func() { p.best = p.x },
	}
}

func TestIncrementalFindsMinimum(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := &incProblem{x: 60, energy: func(x int) float64 { d := float64(x - 7); return d * d }}
		e, st := MinimizeIncremental(Config{Seed: seed, MaxEvaluations: 4000}, p.problem())
		if e > 4 {
			t.Fatalf("seed %d: best energy %v (x=%d), expected near 0", seed, e, p.best)
		}
		if st.Evaluations > 4000 {
			t.Fatalf("seed %d: evaluations %d exceed cap", seed, st.Evaluations)
		}
	}
}

func TestIncrementalBudgetExact(t *testing.T) {
	// Every budget — including ones smaller than the auto-temperature
	// walk — is a hard cap, and Apply calls are evaluations minus the
	// initial one.
	for _, budget := range []int{1, 2, 5, 24, 25, 100, 1000} {
		p := &incProblem{x: 50, energy: func(x int) float64 { return float64(x * x) }}
		_, st := MinimizeIncremental(Config{Seed: 3, MaxEvaluations: budget}, p.problem())
		if st.Evaluations > budget {
			t.Fatalf("budget %d: used %d", budget, st.Evaluations)
		}
		if p.applies != st.Evaluations-1 {
			t.Fatalf("budget %d: %d applies vs %d reported evaluations",
				budget, p.applies, st.Evaluations)
		}
	}
}

func TestIncrementalBestNeverWorseThanInitial(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := &incProblem{x: 1000, energy: func(x int) float64 { return math.Abs(float64(x)) }}
		e, _ := MinimizeIncremental(Config{Seed: seed, MaxEvaluations: 500}, p.problem())
		if e > 1000 {
			t.Fatalf("seed %d: best %v worse than initial 1000", seed, e)
		}
	}
}

func TestIncrementalNoProposalsTerminates(t *testing.T) {
	p := IncrementalProblem[int]{
		InitialEnergy: 5,
		Propose:       func(*rand.Rand) (int, bool) { return 0, false },
		Apply:         func(int) float64 { panic("apply without proposal") },
		Undo:          func() {},
	}
	e, st := MinimizeIncremental(Config{Seed: 1, MaxEvaluations: 100}, p)
	if e != 5 || st.Evaluations != 1 {
		t.Fatalf("e=%v evals=%d", e, st.Evaluations)
	}
}
