// Package anneal provides a generic simulated-annealing minimizer in the
// style of Metropolis et al. [19] and Numerical Recipes [20], the
// algorithm behind the default CBES scheduler (§6): the CBES mapping
// evaluation plays the role of the energy function, and the minimal-energy
// configuration corresponds to the estimated fastest mapping.
package anneal

import (
	"math"
	"math/rand"
)

// Config tunes the annealing schedule.
type Config struct {
	// InitialTemp is the starting temperature. Zero means "auto": the
	// standard deviation of energies over a short random walk.
	InitialTemp float64
	// Cooling is the geometric cooling factor per temperature step
	// (default 0.92).
	Cooling float64
	// StepsPerTemp is the number of proposals per temperature (default 60).
	StepsPerTemp int
	// MinTemp stops the schedule when temperature falls below
	// MinTemp × InitialTemp (default 1e-3).
	MinTemp float64
	// MaxEvaluations caps total energy evaluations (default 20000).
	MaxEvaluations int
	// Seed drives the proposal and acceptance randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = 0.92
	}
	if c.StepsPerTemp <= 0 {
		c.StepsPerTemp = 60
	}
	if c.MinTemp <= 0 {
		c.MinTemp = 1e-3
	}
	if c.MaxEvaluations <= 0 {
		c.MaxEvaluations = 20000
	}
	return c
}

// Stats reports what the annealer did.
type Stats struct {
	Evaluations int
	Accepted    int
	Improved    int
	FinalTemp   float64
}

// Minimize anneals from the initial state, proposing neighbors and
// accepting by the Metropolis criterion, and returns the best state seen
// with its energy and run statistics.
//
// The state type S must be treated as immutable by the caller: neighbor
// must return a fresh state (or a modified copy).
func Minimize[S any](cfg Config, initial S, energy func(S) float64, neighbor func(S, *rand.Rand) S) (S, float64, Stats) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	cur := initial
	curE := energy(cur)
	best, bestE := cur, curE
	st := Stats{Evaluations: 1}

	temp := cfg.InitialTemp
	if temp <= 0 {
		temp = autoTemperature(cur, curE, energy, neighbor, rng, &st)
	}
	minTemp := temp * cfg.MinTemp

	for temp > minTemp && st.Evaluations < cfg.MaxEvaluations {
		for i := 0; i < cfg.StepsPerTemp && st.Evaluations < cfg.MaxEvaluations; i++ {
			cand := neighbor(cur, rng)
			candE := energy(cand)
			st.Evaluations++
			d := candE - curE
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				cur, curE = cand, candE
				st.Accepted++
				if curE < bestE {
					best, bestE = cur, curE
					st.Improved++
				}
			}
		}
		temp *= cfg.Cooling
	}
	st.FinalTemp = temp
	return best, bestE, st
}

// autoTemperature estimates a starting temperature as the standard
// deviation of energy over a short random walk, so that early uphill moves
// are accepted with reasonable probability.
func autoTemperature[S any](cur S, curE float64, energy func(S) float64, neighbor func(S, *rand.Rand) S, rng *rand.Rand, st *Stats) float64 {
	const probes = 24
	mean, m2 := 0.0, 0.0
	n := 0.0
	s := cur
	e := curE
	for i := 0; i < probes; i++ {
		s = neighbor(s, rng)
		e = energy(s)
		st.Evaluations++
		n++
		d := e - mean
		mean += d / n
		m2 += d * (e - mean)
	}
	sd := math.Sqrt(m2 / math.Max(1, n-1))
	if sd <= 0 || math.IsNaN(sd) {
		sd = math.Abs(curE)*0.1 + 1e-12
	}
	return sd
}
