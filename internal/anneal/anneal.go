// Package anneal provides a generic simulated-annealing minimizer in the
// style of Metropolis et al. [19] and Numerical Recipes [20], the
// algorithm behind the default CBES scheduler (§6): the CBES mapping
// evaluation plays the role of the energy function, and the minimal-energy
// configuration corresponds to the estimated fastest mapping.
package anneal

import (
	"context"
	"math"
	"math/rand"

	"cbes/internal/obs"
)

// Annealing observability: counters aggregate across every run (and
// every concurrent restart); the gauges hold the most recently finished
// run's summary — with parallel restarts that is "last writer wins",
// which is the useful live view ("what is SA doing right now") without
// unbounded label cardinality. Each run also records one span with its
// temperature trajectory endpoints.
var (
	metricRuns = obs.Default().Counter(
		"cbes_sa_runs_total", "Completed annealing runs (one per restart).")
	metricEvals = obs.Default().Counter(
		"cbes_sa_evals_total", "Energy evaluations across all annealing runs.")
	metricAccepted = obs.Default().Counter(
		"cbes_sa_accepted_total", "Accepted Metropolis moves across all runs.")
	metricImproved = obs.Default().Counter(
		"cbes_sa_improved_total", "Moves that improved the best energy so far.")
	gaugeAcceptance = obs.Default().Gauge(
		"cbes_sa_acceptance_rate", "Accepted/evaluated ratio of the last finished run.")
	gaugeBestEnergy = obs.Default().Gauge(
		"cbes_sa_best_energy", "Best (lowest) energy of the last finished run.")
	gaugeInitialTemp = obs.Default().Gauge(
		"cbes_sa_initial_temp", "Starting temperature of the last finished run.")
	gaugeFinalTemp = obs.Default().Gauge(
		"cbes_sa_final_temp", "Final temperature of the last finished run.")
)

// convergence collects (evaluations, best-energy) samples while a run
// improves, bounded so a span attribute stays small. Only allocated
// when the run's span is recorded (tracer enabled), so the fast path
// never pays for it.
type convergence struct {
	samples [][2]float64
}

// convergenceCap bounds samples per run; improvements past the cap keep
// overwriting the last slot so the final best is always present.
const convergenceCap = 64

func (c *convergence) observe(evals int, bestE float64) {
	if c == nil {
		return
	}
	s := [2]float64{float64(evals), bestE}
	if len(c.samples) >= convergenceCap {
		c.samples[len(c.samples)-1] = s
		return
	}
	c.samples = append(c.samples, s)
}

func (c *convergence) attach(span *obs.ActiveSpan) {
	if c != nil && len(c.samples) > 0 {
		span.Attr("convergence", c.samples)
	}
}

// newConvergence returns a collector only when the span will record it.
func newConvergence(span *obs.ActiveSpan) *convergence {
	if span == nil {
		return nil
	}
	return &convergence{}
}

// observeRun publishes one finished run's statistics and span.
func observeRun(kind string, initialTemp, bestE float64, st Stats, span *obs.ActiveSpan) {
	metricRuns.Inc()
	metricEvals.Add(uint64(st.Evaluations))
	metricAccepted.Add(uint64(st.Accepted))
	metricImproved.Add(uint64(st.Improved))
	rate := 0.0
	if st.Evaluations > 0 {
		rate = float64(st.Accepted) / float64(st.Evaluations)
	}
	gaugeAcceptance.Set(rate)
	gaugeBestEnergy.Set(bestE)
	gaugeInitialTemp.Set(initialTemp)
	gaugeFinalTemp.Set(st.FinalTemp)
	span.Attr("kind", kind).
		Attr("evals", st.Evaluations).
		Attr("accepted", st.Accepted).
		Attr("improved", st.Improved).
		Attr("acceptance_rate", rate).
		Attr("initial_temp", initialTemp).
		Attr("final_temp", st.FinalTemp).
		Attr("best_energy", bestE).
		End()
}

// Config tunes the annealing schedule.
type Config struct {
	// InitialTemp is the starting temperature. Zero means "auto": the
	// standard deviation of energies over a short random walk.
	InitialTemp float64
	// Cooling is the geometric cooling factor per temperature step
	// (default 0.92).
	Cooling float64
	// StepsPerTemp is the number of proposals per temperature (default 60).
	StepsPerTemp int
	// MinTemp stops the schedule when temperature falls below
	// MinTemp × InitialTemp (default 1e-3).
	MinTemp float64
	// MaxEvaluations caps total energy evaluations (default 20000).
	MaxEvaluations int
	// Seed drives the proposal and acceptance randomness.
	Seed int64
	// Ctx, when non-nil, parents this run's trace span under the
	// context's active span (obs.StartSpan), so a scheduling decision's
	// restarts appear as children of its schedule.decision span, and
	// doubles as the run's cancellation signal: the walk checks
	// Ctx.Done() once per temperature step and abandons the run (setting
	// Stats.Cancelled, returning the best state seen so far) when the
	// context expires. Nil records the run as a root span and never
	// cancels, the pre-causal behaviour.
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = 0.92
	}
	if c.StepsPerTemp <= 0 {
		c.StepsPerTemp = 60
	}
	if c.MinTemp <= 0 {
		c.MinTemp = 1e-3
	}
	if c.MaxEvaluations <= 0 {
		c.MaxEvaluations = 20000
	}
	return c
}

// Stats reports what the annealer did.
type Stats struct {
	Evaluations int
	Accepted    int
	Improved    int
	FinalTemp   float64
	// Cancelled reports that the run was abandoned early because
	// Config.Ctx expired; the returned best state covers only the
	// evaluations spent before the cancellation.
	Cancelled bool
}

// doneChan extracts the cancellation channel of a possibly-nil context.
// A nil channel never receives, so `case <-done` in a select with a
// default arm costs nothing when cancellation is disabled.
func doneChan(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// Minimize anneals from the initial state, proposing neighbors and
// accepting by the Metropolis criterion, and returns the best state seen
// with its energy and run statistics.
//
// The state type S must be treated as immutable by the caller: neighbor
// must return a fresh state (or a modified copy).
func Minimize[S any](cfg Config, initial S, energy func(S) float64, neighbor func(S, *rand.Rand) S) (S, float64, Stats) {
	cfg = cfg.withDefaults()
	span, _ := obs.StartSpan(cfg.Ctx, "anneal.run")
	conv := newConvergence(span)
	rng := rand.New(rand.NewSource(cfg.Seed))

	cur := initial
	curE := energy(cur)
	best, bestE := cur, curE
	st := Stats{Evaluations: 1}
	conv.observe(st.Evaluations, bestE)

	temp := cfg.InitialTemp
	if temp <= 0 {
		temp = autoTemperature(cur, curE, energy, neighbor, rng, &st, cfg.MaxEvaluations)
	}
	minTemp := temp * cfg.MinTemp

	done := doneChan(cfg.Ctx)
	for temp > minTemp && st.Evaluations < cfg.MaxEvaluations {
		select {
		case <-done:
			// Deadline propagation: the caller's context expired, so nobody
			// will read the answer — abandon the walk, keeping the best
			// state found so far for the cancellation error path.
			st.Cancelled = true
			st.FinalTemp = temp
			conv.attach(span)
			observeRun("full", minTemp/cfg.MinTemp, bestE, st, span)
			return best, bestE, st
		default:
		}
		for i := 0; i < cfg.StepsPerTemp && st.Evaluations < cfg.MaxEvaluations; i++ {
			cand := neighbor(cur, rng)
			candE := energy(cand)
			st.Evaluations++
			d := candE - curE
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				cur, curE = cand, candE
				st.Accepted++
				if curE < bestE {
					best, bestE = cur, curE
					st.Improved++
					conv.observe(st.Evaluations, bestE)
				}
			}
		}
		temp *= cfg.Cooling
	}
	st.FinalTemp = temp
	conv.attach(span)
	observeRun("full", minTemp/cfg.MinTemp, bestE, st, span)
	return best, bestE, st
}

// autoTemperature estimates a starting temperature as the standard
// deviation of energy over a short random walk, so that early uphill moves
// are accepted with reasonable probability. The walk never exceeds the
// remaining evaluation budget.
func autoTemperature[S any](cur S, curE float64, energy func(S) float64, neighbor func(S, *rand.Rand) S, rng *rand.Rand, st *Stats, maxEvals int) float64 {
	probes := autoTempProbes
	if remaining := maxEvals - st.Evaluations; probes > remaining {
		probes = remaining
	}
	mean, m2 := 0.0, 0.0
	n := 0.0
	s := cur
	e := curE
	for i := 0; i < probes; i++ {
		s = neighbor(s, rng)
		e = energy(s)
		st.Evaluations++
		n++
		d := e - mean
		mean += d / n
		m2 += d * (e - mean)
	}
	return tempFromSpread(mean, m2, n, curE)
}

// autoTempProbes is the length of the auto-temperature sampling walk.
const autoTempProbes = 24

// tempFromSpread turns Welford accumulators into a starting temperature,
// falling back to a fraction of the initial energy for degenerate samples.
func tempFromSpread(mean, m2, n, curE float64) float64 {
	sd := math.Sqrt(m2 / math.Max(1, n-1))
	if sd <= 0 || math.IsNaN(sd) {
		sd = math.Abs(curE)*0.1 + 1e-12
	}
	return sd
}

// IncrementalProblem describes an annealing problem whose state lives
// outside the annealer and is perturbed by typed moves with delta
// evaluation — the core.Scorer fast path. The annealer never sees the
// state itself: it proposes, applies (receiving the new energy), and either
// keeps the move or undoes it.
type IncrementalProblem[M any] struct {
	// InitialEnergy is the energy of the current (initial) state. Its
	// computation is counted as the first evaluation.
	InitialEnergy float64
	// Propose draws a candidate move; ok=false means no move was available
	// (e.g. a saturated pool) and nothing was evaluated.
	Propose func(rng *rand.Rand) (mv M, ok bool)
	// Apply applies the move to the state and returns the new energy.
	Apply func(mv M) float64
	// Undo reverts the most recent Apply.
	Undo func()
	// Commit, when non-nil, is called after a move is accepted: the state
	// will never be undone past this point, so the problem may discard the
	// undo record (keeps the scorer's journal depth at one).
	Commit func()
	// OnBest is called whenever the current state is the best seen so far
	// (including once for the initial state); the callback should snapshot
	// whatever it needs — the annealer itself keeps no state copy.
	OnBest func()
}

// MinimizeIncremental anneals an incremental problem under the Metropolis
// criterion. It is the fast-path twin of Minimize: rejected proposals cost
// one delta evaluation and an undo instead of a full re-evaluation, and the
// evaluation budget (Config.MaxEvaluations) is respected exactly — the
// initial evaluation, the auto-temperature walk, and every proposal all
// count against it, and the total never exceeds it.
func MinimizeIncremental[M any](cfg Config, p IncrementalProblem[M]) (float64, Stats) {
	cfg = cfg.withDefaults()
	span, _ := obs.StartSpan(cfg.Ctx, "anneal.run")
	conv := newConvergence(span)
	rng := rand.New(rand.NewSource(cfg.Seed))

	curE := p.InitialEnergy
	bestE := curE
	st := Stats{Evaluations: 1}
	conv.observe(st.Evaluations, bestE)
	if p.OnBest != nil {
		p.OnBest()
	}

	// proposalPatience bounds consecutive failed proposals so a problem
	// with no legal moves terminates.
	const proposalPatience = 64

	temp := cfg.InitialTemp
	if temp <= 0 {
		// Auto temperature: a short accepted walk from the initial state,
		// capped by the remaining budget. Improvements found during the
		// walk are kept as best like any other visit.
		probes := autoTempProbes
		if remaining := cfg.MaxEvaluations - st.Evaluations; probes > remaining {
			probes = remaining
		}
		mean, m2 := 0.0, 0.0
		n := 0.0
		for i, misses := 0, 0; i < probes && misses < proposalPatience; {
			mv, ok := p.Propose(rng)
			if !ok {
				misses++
				continue
			}
			misses = 0
			curE = p.Apply(mv)
			if p.Commit != nil {
				p.Commit()
			}
			st.Evaluations++
			i++
			n++
			d := curE - mean
			mean += d / n
			m2 += d * (curE - mean)
			if curE < bestE {
				bestE = curE
				st.Improved++
				conv.observe(st.Evaluations, bestE)
				if p.OnBest != nil {
					p.OnBest()
				}
			}
		}
		temp = tempFromSpread(mean, m2, n, p.InitialEnergy)
	}
	minTemp := temp * cfg.MinTemp

	done := doneChan(cfg.Ctx)
	misses := 0
	for temp > minTemp && st.Evaluations < cfg.MaxEvaluations && misses < proposalPatience {
		select {
		case <-done:
			// Caller's deadline expired: stop annealing. The problem state
			// already holds the best committed mapping (OnBest fired for it),
			// so the caller can still report the partial result.
			st.Cancelled = true
			st.FinalTemp = temp
			conv.attach(span)
			observeRun("incremental", minTemp/cfg.MinTemp, bestE, st, span)
			return bestE, st
		default:
		}
		for i := 0; i < cfg.StepsPerTemp && st.Evaluations < cfg.MaxEvaluations; i++ {
			mv, ok := p.Propose(rng)
			if !ok {
				if misses++; misses >= proposalPatience {
					break
				}
				continue
			}
			misses = 0
			candE := p.Apply(mv)
			st.Evaluations++
			d := candE - curE
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				curE = candE
				st.Accepted++
				if p.Commit != nil {
					p.Commit()
				}
				if curE < bestE {
					bestE = curE
					st.Improved++
					conv.observe(st.Evaluations, bestE)
					if p.OnBest != nil {
						p.OnBest()
					}
				}
			} else {
				p.Undo()
			}
		}
		temp *= cfg.Cooling
	}
	st.FinalTemp = temp
	conv.attach(span)
	observeRun("incremental", minTemp/cfg.MinTemp, bestE, st, span)
	return bestE, st
}
