package anneal

import (
	"context"
	"math/rand"
	"testing"

	"cbes/internal/obs"
)

// A run handed a traced context must record its anneal.run span as a
// child of the caller's span, carrying convergence samples that start
// at the initial evaluation and end at the final best energy.
func TestRunSpanJoinsCallerTrace(t *testing.T) {
	parent := obs.DefaultTracer().Start("test.parent")
	ctx := obs.ContextWithSpan(context.Background(), parent)

	energy := func(x int) float64 { d := float64(x - 7); return d * d }
	neighbor := func(x int, r *rand.Rand) int {
		if r.Intn(2) == 0 {
			return x + 1
		}
		return x - 1
	}
	_, bestE, _ := Minimize(Config{Seed: 1, Ctx: ctx}, 100, energy, neighbor)
	parent.End()

	var run *obs.Span
	for _, sp := range obs.DefaultTracer().TraceSpans(parent.TraceID()) {
		if sp.Name == "anneal.run" {
			sp := sp
			run = &sp
		}
	}
	if run == nil {
		t.Fatal("no anneal.run span recorded in the caller's trace")
	}
	if run.Parent == "" {
		t.Fatal("anneal.run span is not parented under the caller's span")
	}
	var conv [][2]float64
	for _, a := range run.Attrs {
		if a.Key == "convergence" {
			conv, _ = a.Val.([][2]float64)
		}
	}
	if len(conv) == 0 {
		t.Fatalf("anneal.run span has no convergence samples: %+v", run.Attrs)
	}
	if conv[0][0] != 1 {
		t.Fatalf("first sample at eval %v, want the initial evaluation", conv[0][0])
	}
	last := conv[len(conv)-1]
	if last[1] != bestE {
		t.Fatalf("last sample energy %v != final best %v", last[1], bestE)
	}
	for i := 1; i < len(conv); i++ {
		if conv[i][1] > conv[i-1][1] || conv[i][0] < conv[i-1][0] {
			t.Fatalf("convergence not monotone: %v", conv)
		}
	}
}

// Without a traced context the run roots its own trace (pre-causal
// behaviour) — and with sampling discarding it, costs nothing visible.
func TestRunSpanRootsWithoutContext(t *testing.T) {
	energy := func(x int) float64 { return float64(x * x) }
	neighbor := func(x int, r *rand.Rand) int { return x + 1 - 2*r.Intn(2) }
	before := len(obs.DefaultTracer().Spans())
	Minimize(Config{Seed: 2, MaxEvaluations: 50}, 5, energy, neighbor)
	spans := obs.DefaultTracer().Spans()
	if len(spans) <= before {
		t.Fatal("no span recorded for an untraced run")
	}
	last := spans[len(spans)-1]
	if last.Name != "anneal.run" || last.Parent != "" || last.Trace == "" {
		t.Fatalf("untraced run span = %+v, want a rooted anneal.run", last)
	}
}
