// Package trace defines execution traces for MPI-like applications, in the
// spirit of the LAM/MPI + XMPI traces the paper's profiling subsystem
// consumes: per-process accounting of the three state classes (running own
// code, executing message-passing library code, blocked on communication)
// and per-peer same-size message groups, organised into named segments
// delimited by the application's phase markers.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cbes/internal/des"
)

// State classifies what a process is doing at an instant.
type State int

// The three state classes of an application process (§2 of the paper):
// Run accumulates into X_i, Overhead into O_i, Blocked into B_i.
const (
	StateRun State = iota
	StateOverhead
	StateBlocked
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateRun:
		return "run"
	case StateOverhead:
		return "overhead"
	case StateBlocked:
		return "blocked"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MsgGroup aggregates same-size messages exchanged with one peer — the
// mgS/mgR sets of eq. 6.
type MsgGroup struct {
	Peer  int   `json:"peer"`  // the other process's rank
	Size  int64 `json:"size"`  // bytes per message
	Count int   `json:"count"` // number of messages
}

// ProcTrace is the per-process summary within one segment.
type ProcTrace struct {
	Rank     int      `json:"rank"`
	Node     int      `json:"node"` // node the process ran on
	Run      des.Time `json:"run"`
	Overhead des.Time `json:"overhead"`
	Blocked  des.Time `json:"blocked"`
	// Sends[k] groups messages sent to peer k; Recvs likewise, sorted by
	// (Peer, Size).
	Sends []MsgGroup `json:"sends"`
	Recvs []MsgGroup `json:"recvs"`
}

// Busy returns total accounted time (Run + Overhead + Blocked).
func (p *ProcTrace) Busy() des.Time { return p.Run + p.Overhead + p.Blocked }

// Segment is the trace of one application phase (delimited by the LAM-style
// phase markers).
type Segment struct {
	Name  string      `json:"name"`
	Start des.Time    `json:"start"`
	End   des.Time    `json:"end"`
	Procs []ProcTrace `json:"procs"`
}

// Duration is the segment's wall-clock length.
func (s *Segment) Duration() des.Time { return s.End - s.Start }

// Trace is a complete application execution record.
type Trace struct {
	App      string    `json:"app"`
	Cluster  string    `json:"cluster"`
	Ranks    int       `json:"ranks"`
	Mapping  []int     `json:"mapping"` // rank -> node
	Start    des.Time  `json:"start"`
	End      des.Time  `json:"end"`
	Segments []Segment `json:"segments"`
	// Intervals holds the per-rank state timeline when the recorder had
	// interval retention enabled (Recorder.EnableIntervals); nil otherwise.
	Intervals [][]Interval `json:"intervals,omitempty"`
}

// Duration is the application's wall-clock execution time.
func (t *Trace) Duration() des.Time { return t.End - t.Start }

// Encode writes the trace as JSON.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Decode reads a JSON trace.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// Recorder accumulates a Trace while an application executes. It is driven
// by internal/mpisim; all methods must be called from engine context with
// monotonically nondecreasing timestamps.
type Recorder struct {
	app     string
	cluster string
	mapping []int
	start   des.Time
	now     func() des.Time

	segments []Segment
	segOpen  bool
	segName  string
	segStart des.Time

	state     []State
	stateFrom []des.Time
	acc       [][3]des.Time // per rank, per state, within current segment
	sends     []map[msgKey]int
	recvs     []map[msgKey]int
	intervals [][]Interval // non-nil only after EnableIntervals
}

type msgKey struct {
	peer int
	size int64
}

// NewRecorder starts recording an execution of app on the given mapping.
// The now function supplies the current simulated time.
func NewRecorder(app, clusterName string, mapping []int, now func() des.Time) *Recorder {
	n := len(mapping)
	r := &Recorder{
		app:     app,
		cluster: clusterName,
		mapping: append([]int(nil), mapping...),
		start:   now(),
		now:     now,
	}
	r.state = make([]State, n)
	r.stateFrom = make([]des.Time, n)
	r.resetSegmentAccumulators()
	r.BeginSegment("main")
	return r
}

func (r *Recorder) resetSegmentAccumulators() {
	n := len(r.mapping)
	r.acc = make([][3]des.Time, n)
	r.sends = make([]map[msgKey]int, n)
	r.recvs = make([]map[msgKey]int, n)
	for i := 0; i < n; i++ {
		r.sends[i] = map[msgKey]int{}
		r.recvs[i] = map[msgKey]int{}
	}
}

// BeginSegment closes any open segment and opens a new one. Application
// phase markers map to calls of this method.
func (r *Recorder) BeginSegment(name string) {
	if r.segOpen {
		r.closeSegment()
	}
	now := r.now()
	r.segOpen = true
	r.segName = name
	r.segStart = now
	for i := range r.stateFrom {
		r.stateFrom[i] = now
	}
}

func (r *Recorder) closeSegment() {
	now := r.now()
	seg := Segment{Name: r.segName, Start: r.segStart, End: now}
	for rank := range r.mapping {
		// Flush the in-progress state interval.
		r.flush(rank, now)
		pt := ProcTrace{
			Rank:     rank,
			Node:     r.mapping[rank],
			Run:      r.acc[rank][StateRun],
			Overhead: r.acc[rank][StateOverhead],
			Blocked:  r.acc[rank][StateBlocked],
			Sends:    groupsOf(r.sends[rank]),
			Recvs:    groupsOf(r.recvs[rank]),
		}
		seg.Procs = append(seg.Procs, pt)
	}
	r.segments = append(r.segments, seg)
	r.segOpen = false
	r.resetSegmentAccumulators()
}

func groupsOf(m map[msgKey]int) []MsgGroup {
	out := make([]MsgGroup, 0, len(m))
	for k, c := range m {
		out = append(out, MsgGroup{Peer: k.peer, Size: k.size, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Size < out[j].Size
	})
	return out
}

func (r *Recorder) flush(rank int, now des.Time) {
	d := now - r.stateFrom[rank]
	if d > 0 {
		r.acc[rank][r.state[rank]] += d
		r.appendInterval(rank, r.state[rank], r.stateFrom[rank], now)
	}
	r.stateFrom[rank] = now
}

// SetState marks a state transition for rank at the current time.
func (r *Recorder) SetState(rank int, s State) {
	r.flush(rank, r.now())
	r.state[rank] = s
}

// RecordSend adds one message of the given size from rank to peer.
func (r *Recorder) RecordSend(rank, peer int, size int64) {
	r.sends[rank][msgKey{peer, size}]++
}

// RecordRecv adds one received message of the given size from peer to rank.
func (r *Recorder) RecordRecv(rank, peer int, size int64) {
	r.recvs[rank][msgKey{peer, size}]++
}

// Finish closes the open segment and returns the completed trace.
func (r *Recorder) Finish() *Trace {
	if r.segOpen {
		r.closeSegment()
	}
	return &Trace{
		App:       r.app,
		Cluster:   r.cluster,
		Ranks:     len(r.mapping),
		Mapping:   r.mapping,
		Start:     r.start,
		End:       r.now(),
		Segments:  r.segments,
		Intervals: r.intervals,
	}
}
