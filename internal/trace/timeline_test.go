package trace

import (
	"bytes"
	"strings"
	"testing"

	"cbes/internal/des"
)

func recorderWithIntervals() (*Recorder, *des.Time) {
	var now des.Time
	r := NewRecorder("app", "c", []int{0, 1}, func() des.Time { return now })
	r.EnableIntervals()
	return r, &now
}

func TestIntervalsRecorded(t *testing.T) {
	r, now := recorderWithIntervals()
	*now = 0
	r.SetState(0, StateRun)
	*now = des.Second
	r.SetState(0, StateBlocked)
	*now = 3 * des.Second
	r.SetState(0, StateRun)
	*now = 4 * des.Second
	tr := r.Finish()

	ivs := tr.Intervals[0]
	if len(ivs) != 3 {
		t.Fatalf("intervals = %v", ivs)
	}
	want := []Interval{
		{StateRun, 0, des.Second},
		{StateBlocked, des.Second, 3 * des.Second},
		{StateRun, 3 * des.Second, 4 * des.Second},
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("interval %d = %+v, want %+v", i, ivs[i], want[i])
		}
	}
	if ivs[1].Duration() != 2*des.Second {
		t.Fatalf("duration = %v", ivs[1].Duration())
	}
}

func TestIntervalsMergeContiguousSameState(t *testing.T) {
	r, now := recorderWithIntervals()
	r.SetState(0, StateRun)
	*now = des.Second
	r.SetState(0, StateRun) // same state: should merge, not split
	*now = 2 * des.Second
	tr := r.Finish()
	if n := len(tr.Intervals[0]); n != 1 {
		t.Fatalf("contiguous same-state intervals not merged: %v", tr.Intervals[0])
	}
	if tr.Intervals[0][0].To != 2*des.Second {
		t.Fatalf("merged interval = %+v", tr.Intervals[0][0])
	}
}

func TestIntervalsDisabledByDefault(t *testing.T) {
	var now des.Time
	r := NewRecorder("app", "c", []int{0}, func() des.Time { return now })
	r.SetState(0, StateRun)
	now = des.Second
	tr := r.Finish()
	if tr.Intervals != nil {
		t.Fatal("intervals retained without EnableIntervals")
	}
	if tr.RenderTimeline(40) != "" {
		t.Fatal("timeline should be empty without intervals")
	}
}

func TestRenderTimeline(t *testing.T) {
	r, now := recorderWithIntervals()
	// rank 0: first half run, second half blocked; rank 1 all run.
	r.SetState(0, StateRun)
	r.SetState(1, StateRun)
	*now = des.Second
	r.SetState(0, StateBlocked)
	*now = 2 * des.Second
	tr := r.Finish()

	out := tr.RenderTimeline(20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 ranks
		t.Fatalf("timeline:\n%s", out)
	}
	row0 := lines[1]
	if !strings.Contains(row0, "#") || !strings.Contains(row0, ".") {
		t.Fatalf("rank 0 row should mix run and blocked: %q", row0)
	}
	// Roughly half the cells blocked.
	dots := strings.Count(row0, ".")
	if dots < 6 || dots > 14 {
		t.Fatalf("rank 0 blocked cells = %d of 20", dots)
	}
	if strings.Contains(lines[2], ".") {
		t.Fatalf("rank 1 should be all-run: %q", lines[2])
	}
}

func TestSummaryOutput(t *testing.T) {
	r, now := recorderWithIntervals()
	r.SetState(0, StateRun)
	r.RecordSend(0, 1, 2048)
	r.RecordSend(0, 1, 2048)
	*now = des.Second
	tr := r.Finish()
	s := tr.Summary()
	if !strings.Contains(s, "app on c") || !strings.Contains(s, "rank") {
		t.Fatalf("summary:\n%s", s)
	}
	// rank 0 sent 2 messages.
	if !strings.Contains(s, "2\n") {
		t.Fatalf("summary should show 2 outgoing messages:\n%s", s)
	}
}

func TestIntervalsSurviveEncode(t *testing.T) {
	r, now := recorderWithIntervals()
	r.SetState(0, StateRun)
	*now = des.Second
	tr := r.Finish()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Intervals) != 2 || len(got.Intervals[0]) != 1 {
		t.Fatalf("intervals lost: %+v", got.Intervals)
	}
}
