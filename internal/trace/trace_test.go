package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"cbes/internal/des"
)

func TestRecorderStateAccounting(t *testing.T) {
	var now des.Time
	clock := func() des.Time { return now }
	r := NewRecorder("app", "testnet", []int{10, 11}, clock)

	// rank 0: 2s run, 1s overhead, 3s blocked.
	now = 0
	r.SetState(0, StateRun)
	now = 2 * des.Second
	r.SetState(0, StateOverhead)
	now = 3 * des.Second
	r.SetState(0, StateBlocked)
	now = 6 * des.Second
	r.SetState(0, StateRun)
	tr := r.Finish()

	p := tr.Segments[0].Procs[0]
	if p.Run != 2*des.Second || p.Overhead != des.Second || p.Blocked != 3*des.Second {
		t.Fatalf("accounting = run %v, ovh %v, blk %v", p.Run, p.Overhead, p.Blocked)
	}
	if p.Node != 10 {
		t.Fatalf("node = %d, want 10", p.Node)
	}
	if tr.Duration() != 6*des.Second {
		t.Fatalf("duration = %v", tr.Duration())
	}
}

func TestMessageGrouping(t *testing.T) {
	var now des.Time
	r := NewRecorder("app", "testnet", []int{0, 1, 2}, func() des.Time { return now })
	for i := 0; i < 5; i++ {
		r.RecordSend(0, 1, 1024)
	}
	r.RecordSend(0, 1, 2048)
	r.RecordSend(0, 2, 1024)
	r.RecordRecv(1, 0, 1024)
	tr := r.Finish()

	sends := tr.Segments[0].Procs[0].Sends
	if len(sends) != 3 {
		t.Fatalf("send groups = %v, want 3 groups", sends)
	}
	// Sorted by (peer, size): (1,1024,5), (1,2048,1), (2,1024,1).
	if sends[0] != (MsgGroup{Peer: 1, Size: 1024, Count: 5}) {
		t.Fatalf("group[0] = %+v", sends[0])
	}
	if sends[1] != (MsgGroup{Peer: 1, Size: 2048, Count: 1}) {
		t.Fatalf("group[1] = %+v", sends[1])
	}
	if sends[2] != (MsgGroup{Peer: 2, Size: 1024, Count: 1}) {
		t.Fatalf("group[2] = %+v", sends[2])
	}
	recvs := tr.Segments[0].Procs[1].Recvs
	if len(recvs) != 1 || recvs[0].Count != 1 {
		t.Fatalf("recvs = %v", recvs)
	}
}

func TestSegments(t *testing.T) {
	var now des.Time
	r := NewRecorder("app", "testnet", []int{0}, func() des.Time { return now })
	r.SetState(0, StateRun)
	now = des.Second
	r.BeginSegment("solve")
	r.RecordSend(0, 0, 64)
	now = 3 * des.Second
	tr := r.Finish()

	if len(tr.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(tr.Segments))
	}
	if tr.Segments[0].Name != "main" || tr.Segments[1].Name != "solve" {
		t.Fatalf("segment names = %q, %q", tr.Segments[0].Name, tr.Segments[1].Name)
	}
	if tr.Segments[0].Duration() != des.Second || tr.Segments[1].Duration() != 2*des.Second {
		t.Fatalf("durations = %v, %v", tr.Segments[0].Duration(), tr.Segments[1].Duration())
	}
	// The run state carries across the segment boundary: 1s in seg0, 2s in seg1.
	if tr.Segments[0].Procs[0].Run != des.Second {
		t.Fatalf("seg0 run = %v", tr.Segments[0].Procs[0].Run)
	}
	if tr.Segments[1].Procs[0].Run != 2*des.Second {
		t.Fatalf("seg1 run = %v", tr.Segments[1].Procs[0].Run)
	}
	// Message recorded in segment 1 only.
	if len(tr.Segments[0].Procs[0].Sends) != 0 || len(tr.Segments[1].Procs[0].Sends) != 1 {
		t.Fatal("message attributed to wrong segment")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var now des.Time
	r := NewRecorder("lu.A.8", "orange-grove", []int{3, 1, 4, 1}, func() des.Time { return now })
	r.SetState(0, StateRun)
	now = 5 * des.Second
	r.RecordSend(0, 1, 40960)
	r.RecordRecv(1, 0, 40960)
	tr := r.Finish()

	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Ranks != tr.Ranks || got.Duration() != tr.Duration() {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Segments[0].Procs[0].Sends[0] != tr.Segments[0].Procs[0].Sends[0] {
		t.Fatal("message groups lost in round trip")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
}

// Property: for any sequence of state transitions, total accounted time per
// rank equals the trace duration.
func TestQuickAccountingConserved(t *testing.T) {
	prop := func(steps []uint8) bool {
		var now des.Time
		r := NewRecorder("app", "c", []int{0}, func() des.Time { return now })
		for _, s := range steps {
			now += des.Time(s%100) * des.Millisecond
			r.SetState(0, State(int(s)%3))
		}
		now += des.Second
		tr := r.Finish()
		p := tr.Segments[0].Procs[0]
		return p.Busy() == tr.Duration()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{StateRun: "run", StateOverhead: "overhead", StateBlocked: "blocked", State(9): "state(9)"} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
