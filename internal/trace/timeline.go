package trace

import (
	"fmt"
	"strings"

	"cbes/internal/des"
)

// Interval is one contiguous span a process spent in a single state —
// the raw material of an XMPI-style timeline view.
type Interval struct {
	State State    `json:"state"`
	From  des.Time `json:"from"`
	To    des.Time `json:"to"`
}

// Duration is the interval's length.
func (iv Interval) Duration() des.Time { return iv.To - iv.From }

// EnableIntervals switches the recorder to also retain the full per-rank
// interval sequence (off by default: aggregates suffice for profiles, and
// long runs generate many intervals).
func (r *Recorder) EnableIntervals() {
	if r.intervals == nil {
		r.intervals = make([][]Interval, len(r.mapping))
	}
}

// appendInterval retains a flushed interval when interval recording is on.
func (r *Recorder) appendInterval(rank int, s State, from, to des.Time) {
	if r.intervals == nil || to <= from {
		return
	}
	ivs := r.intervals[rank]
	// Merge with the previous interval when the state continues.
	if n := len(ivs); n > 0 && ivs[n-1].State == s && ivs[n-1].To == from {
		r.intervals[rank][n-1].To = to
		return
	}
	r.intervals[rank] = append(r.intervals[rank], Interval{State: s, From: from, To: to})
}

// stateGlyphs maps states to timeline characters: computation dense,
// overhead medium, blocked light.
var stateGlyphs = map[State]byte{
	StateRun:      '#',
	StateOverhead: 'o',
	StateBlocked:  '.',
}

// RenderTimeline draws the trace's per-rank state timelines as ASCII rows
// of width columns ('#' running, 'o' library overhead, '.' blocked),
// choosing each cell's glyph by the state that dominates its time slice —
// the spirit of the XMPI execution view the paper's profiling subsystem
// builds on. Returns an empty string when the trace carries no intervals.
func (t *Trace) RenderTimeline(width int) string {
	if len(t.Intervals) == 0 || width <= 0 {
		return ""
	}
	span := t.End - t.Start
	if span <= 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %s on %s, %s  (#=run o=overhead .=blocked)\n",
		t.App, t.Cluster, span)
	cell := float64(span) / float64(width)
	for rank, ivs := range t.Intervals {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		// Accumulate time per state per cell.
		acc := make([][3]float64, width)
		for _, iv := range ivs {
			from := float64(iv.From - t.Start)
			to := float64(iv.To - t.Start)
			c0 := int(from / cell)
			c1 := int(to / cell)
			if c1 >= width {
				c1 = width - 1
			}
			for c := c0; c <= c1; c++ {
				lo := float64(c) * cell
				hi := lo + cell
				ov := minF(hi, to) - maxF(lo, from)
				if ov > 0 {
					acc[c][iv.State] += ov
				}
			}
		}
		for c := range acc {
			best, bestV := -1, 0.0
			for s := 0; s < 3; s++ {
				if acc[c][s] > bestV {
					best, bestV = s, acc[c][s]
				}
			}
			if best >= 0 {
				row[c] = stateGlyphs[State(best)]
			}
		}
		fmt.Fprintf(&sb, "r%02d |%s|\n", rank, string(row))
	}
	return sb.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Summary returns a compact per-rank accounting table for the whole trace.
func (t *Trace) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s: %d ranks, %d segment(s), %s\n",
		t.App, t.Cluster, t.Ranks, len(t.Segments), t.Duration())
	sb.WriteString("rank  node       X          O          B      msgs-out\n")
	for rank := 0; rank < t.Ranks; rank++ {
		var x, o, b des.Time
		msgs := 0
		node := -1
		for _, seg := range t.Segments {
			p := seg.Procs[rank]
			x += p.Run
			o += p.Overhead
			b += p.Blocked
			node = p.Node
			for _, g := range p.Sends {
				msgs += g.Count
			}
		}
		fmt.Fprintf(&sb, "%4d  %4d %10s %10s %10s %9d\n", rank, node, x, o, b, msgs)
	}
	return sb.String()
}
