package genetic

import (
	"math"
	"math/rand"
	"testing"
)

// bitOps builds operators for minimizing the number of 1-bits differing
// from a target pattern (onemax-style).
func bitOps(target uint32) Ops[uint32] {
	return Ops[uint32]{
		NewIndividual: func(r *rand.Rand) uint32 { return r.Uint32() },
		Fitness: func(g uint32) float64 {
			return float64(popcount(g ^ target))
		},
		Crossover: func(a, b uint32, r *rand.Rand) uint32 {
			mask := r.Uint32()
			return (a & mask) | (b &^ mask)
		},
		Mutate: func(g uint32, r *rand.Rand) uint32 {
			return g ^ (1 << uint(r.Intn(32)))
		},
	}
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestMinimizeBits(t *testing.T) {
	best, f, st := Minimize(Config{Seed: 5, Generations: 200, MaxEvaluations: 15000}, bitOps(0xDEADBEEF))
	if f > 2 {
		t.Fatalf("fitness = %v (best %x), want <= 2", f, best)
	}
	if st.Evaluations == 0 || st.Generations == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint32, float64) {
		b, f, _ := Minimize(Config{Seed: 11}, bitOps(0x12345678))
		return b, f
	}
	b1, f1 := run()
	b2, f2 := run()
	if b1 != b2 || f1 != f2 {
		t.Fatal("nondeterministic for fixed seed")
	}
}

func TestEvaluationCap(t *testing.T) {
	calls := 0
	ops := bitOps(0)
	inner := ops.Fitness
	ops.Fitness = func(g uint32) float64 { calls++; return inner(g) }
	_, _, st := Minimize(Config{Seed: 1, MaxEvaluations: 300, Generations: 1000}, ops)
	if calls > 300 || st.Evaluations != calls {
		t.Fatalf("calls = %d, reported %d", calls, st.Evaluations)
	}
}

func TestEliteNeverRegresses(t *testing.T) {
	// Track the best fitness across generations via a wrapper: with elitism
	// the final best must be <= any earlier best.
	bestSeen := math.Inf(1)
	ops := bitOps(0xFFFFFFFF)
	inner := ops.Fitness
	ops.Fitness = func(g uint32) float64 {
		f := inner(g)
		if f < bestSeen {
			bestSeen = f
		}
		return f
	}
	_, f, _ := Minimize(Config{Seed: 2, Generations: 50}, ops)
	if f != bestSeen {
		t.Fatalf("final best %v != best ever seen %v (elitism lost it)", f, bestSeen)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Population <= 1 || cfg.Generations <= 0 || cfg.Tournament <= 0 {
		t.Fatalf("defaults: %+v", cfg)
	}
}
