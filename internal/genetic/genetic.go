// Package genetic provides a generic genetic-algorithm minimizer — the
// alternative scheduling algorithm the paper names as future work (§8) and
// that TITAN [35] employs. It is used by the GA variant of the CBES
// scheduler and by the scheduler-comparison ablation.
package genetic

import (
	"context"
	"math/rand"
	"sort"

	"cbes/internal/obs"
)

// GA observability: run/generation/evaluation counters plus the last
// finished run's best fitness.
var (
	metricRuns = obs.Default().Counter(
		"cbes_ga_runs_total", "Completed GA runs.")
	metricGenerations = obs.Default().Counter(
		"cbes_ga_generations_total", "Generations evolved across all GA runs.")
	metricEvals = obs.Default().Counter(
		"cbes_ga_evals_total", "Fitness evaluations across all GA runs.")
	gaugeBestFitness = obs.Default().Gauge(
		"cbes_ga_best_fitness", "Best fitness of the last finished GA run.")
)

// Config tunes the GA.
type Config struct {
	// Population size (default 40).
	Population int
	// Generations to evolve (default 60).
	Generations int
	// Elite individuals copied unchanged each generation (default 2).
	Elite int
	// MutationRate is the probability an offspring is mutated (default 0.3).
	MutationRate float64
	// Tournament is the selection tournament size (default 3).
	Tournament int
	// MaxEvaluations caps total fitness evaluations (default 20000).
	MaxEvaluations int
	// Seed drives all randomness.
	Seed int64
	// Ctx, when non-nil, parents this run's trace span under the
	// context's active span (nil records a root span).
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.Population <= 1 {
		c.Population = 40
	}
	if c.Generations <= 0 {
		c.Generations = 60
	}
	if c.Elite < 0 || c.Elite >= c.Population {
		c.Elite = 2
	}
	if c.MutationRate <= 0 || c.MutationRate > 1 {
		c.MutationRate = 0.3
	}
	if c.Tournament <= 0 {
		c.Tournament = 3
	}
	if c.MaxEvaluations <= 0 {
		c.MaxEvaluations = 20000
	}
	return c
}

// Stats reports what the GA did.
type Stats struct {
	Evaluations int
	Generations int
	// Cancelled reports that evolution stopped early because Config.Ctx
	// expired; the returned best covers only the generations completed.
	Cancelled bool
}

// Ops supplies the problem-specific genetic operators over genome G.
type Ops[G any] struct {
	// NewIndividual creates a random valid genome.
	NewIndividual func(*rand.Rand) G
	// Fitness scores a genome; lower is better.
	Fitness func(G) float64
	// Crossover combines two parents into a child (must not alias parents).
	Crossover func(a, b G, rng *rand.Rand) G
	// Mutate perturbs a genome in place or returns a modified copy.
	Mutate func(G, *rand.Rand) G
}

type scored[G any] struct {
	g G
	f float64
}

// Minimize evolves a population and returns the best genome found, its
// fitness, and statistics.
func Minimize[G any](cfg Config, ops Ops[G]) (G, float64, Stats) {
	cfg = cfg.withDefaults()
	span, _ := obs.StartSpan(cfg.Ctx, "ga.run")
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := Stats{}

	// The initial population also counts against the evaluation budget: at
	// least one individual is always scored, but a budget smaller than the
	// population size truncates it rather than overrunning.
	pop := make([]scored[G], 0, cfg.Population)
	for i := 0; i < cfg.Population; i++ {
		if i > 0 && st.Evaluations >= cfg.MaxEvaluations {
			break
		}
		g := ops.NewIndividual(rng)
		pop = append(pop, scored[G]{g, ops.Fitness(g)})
		st.Evaluations++
	}
	sortPop(pop)
	if cfg.Elite >= len(pop) {
		cfg.Elite = len(pop) - 1
	}

	var done <-chan struct{}
	if cfg.Ctx != nil {
		done = cfg.Ctx.Done()
	}
generations:
	for gen := 0; gen < cfg.Generations && st.Evaluations < cfg.MaxEvaluations; gen++ {
		select {
		case <-done:
			// Deadline propagation: stop evolving; pop[0] is still the best
			// individual of the last completed generation.
			st.Cancelled = true
			break generations
		default:
		}
		next := make([]scored[G], 0, cfg.Population)
		next = append(next, pop[:cfg.Elite]...)
		for len(next) < cfg.Population && st.Evaluations < cfg.MaxEvaluations {
			a := tournament(pop, cfg.Tournament, rng)
			b := tournament(pop, cfg.Tournament, rng)
			child := ops.Crossover(a.g, b.g, rng)
			if rng.Float64() < cfg.MutationRate {
				child = ops.Mutate(child, rng)
			}
			next = append(next, scored[G]{child, ops.Fitness(child)})
			st.Evaluations++
		}
		pop = next
		sortPop(pop)
		st.Generations++
	}
	metricRuns.Inc()
	metricGenerations.Add(uint64(st.Generations))
	metricEvals.Add(uint64(st.Evaluations))
	gaugeBestFitness.Set(pop[0].f)
	span.Attr("generations", st.Generations).
		Attr("evals", st.Evaluations).
		Attr("best_fitness", pop[0].f).
		End()
	return pop[0].g, pop[0].f, st
}

func sortPop[G any](pop []scored[G]) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].f < pop[j].f })
}

func tournament[G any](pop []scored[G], k int, rng *rand.Rand) scored[G] {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.f < best.f {
			best = c
		}
	}
	return best
}
