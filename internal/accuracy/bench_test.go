package accuracy

import "testing"

// BenchmarkLedgerIngest measures the full Begin→Report cycle — the cost
// one served prediction plus its outcome add to the hot path. Gated via
// BENCH_cbes.json / benchjson -diff.
func BenchmarkLedgerIngest(b *testing.B) {
	l := New(Config{})
	p := Prediction{App: "lu.B.8", Scheduler: "cs", AgeBucket: "<1s", Predicted: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := l.Begin(p)
		if _, err := l.Report(id, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerBegin isolates the hot-path half: what Evaluate/Schedule
// pay per served prediction when outcomes never arrive (worst case for
// the eviction ring).
func BenchmarkLedgerBegin(b *testing.B) {
	l := New(Config{})
	p := Prediction{App: "lu.B.8", Scheduler: "cs", AgeBucket: "<1s", Predicted: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Begin(p)
	}
}
