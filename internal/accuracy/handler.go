// HTTP exposure of the accuracy ledger: /debug/accuracy serves the
// calibration summary as JSON and the joined predicted-vs-actual pairs
// as scatter-ready CSV.
package accuracy

import (
	"encoding/csv"
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the ledger. Default: a JSON document with the Status,
// per-bucket calibration stats (?app=, ?scheduler= filter), and the ?n=
// most recent joined samples (default 20). ?format=csv instead streams
// the resident joined pairs as CSV — one row per pair with predicted and
// actual seconds side by side, ready for a scatter plot.
func Handler(l *Ledger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		qv := req.URL.Query()
		n, nSet := 20, false
		if ns := qv.Get("n"); ns != "" {
			v, err := strconv.Atoi(ns)
			if err != nil || v < 0 {
				http.Error(w, "accuracy: bad n "+strconv.Quote(ns), http.StatusBadRequest)
				return
			}
			n, nSet = v, true
		}
		if qv.Get("format") == "csv" {
			if !nSet {
				n = 0 // CSV defaults to every resident pair
			}
			writeCSV(w, l.Samples(n))
			return
		}
		doc := struct {
			Status  Status        `json:"status"`
			Buckets []BucketStats `json:"buckets"`
			Samples []Sample      `json:"samples"`
		}{
			Status:  l.Status(),
			Buckets: l.Stats(StatsQuery{App: qv.Get("app"), Scheduler: qv.Get("scheduler")}),
			Samples: l.Samples(n),
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck // best-effort debug endpoint
	})
}

func writeCSV(w http.ResponseWriter, samples []Sample) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	cw := csv.NewWriter(w)
	cw.Write([]string{ //nolint:errcheck // best-effort debug endpoint
		"prediction_id", "app", "scheduler", "degraded", "age_bucket",
		"predicted_s", "actual_s", "signed_err_pct", "abs_err_pct",
	})
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range samples {
		cw.Write([]string{ //nolint:errcheck
			s.ID, s.App, s.Scheduler, strconv.FormatBool(s.Degraded), s.AgeBucket,
			f(s.Predicted), f(s.Actual), f(s.SignedErrPct), f(s.AbsErrPct),
		})
	}
	cw.Flush()
}
