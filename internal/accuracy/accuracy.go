// Package accuracy closes the predicted-vs-actual feedback loop: every
// prediction the service serves can be registered here under a stable
// PredictionID, and every measured runtime — reported over the
// ReportOutcome RPC or directly by the in-process executors (batch,
// remap, experiments) — is joined back to its prediction in a bounded
// ledger. From the joined pairs the ledger maintains online calibration
// statistics (signed bias, MAPE, error quantiles over log-bucket
// histograms) keyed by (app, scheduler, degraded flag, snapshot-age
// bucket), plus a drift detector that compares a sliding window of
// recent errors against the long-run baseline. Consumers: the Accuracy
// RPC / `cbesctl accuracy` / `/debug/accuracy`, the cbes_calibration_ok
// gauge and /readyz warning, and the empirical error band annotated onto
// Prediction replies. ROADMAP item 2 (ENB / loss probability) reads its
// measured error distribution from here instead of assuming one.
//
// The paper's premise is that the service's estimates are trustworthy;
// this package is where that premise is checked against ground truth.
package accuracy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbes/internal/obs"
)

// Prediction is one served estimate awaiting its measured outcome.
type Prediction struct {
	// ID is the stable join key carried on the RPC reply and in the
	// decision record. Begin assigns one when empty.
	ID string
	// App names the profiled application the estimate was for.
	App string
	// Scheduler is the decision context: a scheduling algorithm name
	// ("cs", "sa", ...), "batch/<policy>", "remap", an experiment tag, or
	// "" for plain evaluations.
	Scheduler string
	// Degraded marks profile-only fallback predictions — they get their
	// own calibration bucket, quantifying what degraded mode costs.
	Degraded bool
	// AgeBucket coarsely bins the age of the monitor snapshot the
	// prediction was computed from (see AgeBucket).
	AgeBucket string
	// Epoch is the snapshot epoch the prediction ran against.
	Epoch uint64
	// Predicted is the estimated execution time in seconds.
	Predicted float64
	// TraceID links back to the request's trace tree (hex spelling).
	TraceID string
	// At is when the prediction was served (Begin stamps time.Now if
	// zero).
	At time.Time
}

// Sample is one joined predicted-vs-actual pair. SignedErrPct is
// (predicted−actual)/actual×100: positive means the service
// over-predicted (conservative), negative under-predicted.
type Sample struct {
	Prediction
	Actual       float64
	SignedErrPct float64
	AbsErrPct    float64
	JoinedAt     time.Time
}

// Key identifies one calibration bucket.
type Key struct {
	App       string
	Scheduler string
	Degraded  bool
	AgeBucket string
}

func (k Key) String() string {
	deg := "ok"
	if k.Degraded {
		deg = "degraded"
	}
	sched := k.Scheduler
	if sched == "" {
		sched = "-"
	}
	return fmt.Sprintf("%s/%s/%s/%s", k.App, sched, deg, k.AgeBucket)
}

// BucketStats is the exported calibration summary of one Key.
type BucketStats struct {
	Key
	// Count is the number of joined samples in the bucket.
	Count int
	// BiasPct is the mean signed relative error (percent); MAPEPct the
	// mean absolute relative error.
	BiasPct float64
	MAPEPct float64
	// P50/P90/P99 are absolute-relative-error quantiles (percent),
	// estimated from the bucket's log-scale histogram.
	P50Pct float64
	P90Pct float64
	P99Pct float64
	// Band is the empirical signed-error band [low, high] (percent):
	// roughly the p10..p90 range of signed errors, the interval annotated
	// onto Prediction replies.
	BandLowPct  float64
	BandHighPct float64
}

// Band is the empirical error band attached to served predictions once a
// calibration bucket has enough joined outcomes. Samples == 0 means "no
// band yet".
type Band struct {
	LowPct  float64
	HighPct float64
	Samples int
}

// Status is a snapshot of the ledger and its drift detector.
type Status struct {
	Predictions uint64
	Outcomes    uint64
	Joined      uint64
	Unmatched   uint64
	Expired     uint64
	Pending     int
	// Overall calibration across every bucket.
	BiasPct float64
	MAPEPct float64
	// Drift detector state: the sliding recent-error window vs the
	// long-run baseline (all joined samples before the window).
	WindowN         int
	WindowMAPEPct   float64
	BaselineN       uint64
	BaselineMAPEPct float64
	CalibrationOK   bool
}

// Config sizes the ledger; zero fields take the defaults.
type Config struct {
	// PendingCap bounds predictions awaiting an outcome; the oldest is
	// expired (counted, dropped) when a new one would exceed it.
	// Default 4096.
	PendingCap int
	// SampleCap bounds the joined-sample ring kept for the CSV export.
	// Default 1024.
	SampleCap int
	// DriftWindow is the sliding-window length of the drift detector
	// (default 64); DriftMinSamples gates alarming until the window holds
	// at least that many errors (default 16).
	DriftWindow     int
	DriftMinSamples int
	// The window is drifted when its MAPE exceeds DriftFloorPct (default
	// 25), or exceeds DriftFactor× the baseline MAPE (default 2.0) once a
	// baseline of DriftMinSamples exists. The absolute floor catches
	// ledgers that were biased from the very first join, where a
	// ratio-only test can never fire because window and baseline drift
	// together.
	DriftFactor   float64
	DriftFloorPct float64
	// MinBandSamples is how many joined outcomes a bucket needs before
	// its error band annotates replies. Default 8.
	MinBandSamples int
}

func (c Config) withDefaults() Config {
	if c.PendingCap <= 0 {
		c.PendingCap = 4096
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 1024
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 64
	}
	if c.DriftMinSamples <= 0 {
		c.DriftMinSamples = 16
	}
	if c.DriftFactor <= 0 {
		c.DriftFactor = 2.0
	}
	if c.DriftFloorPct <= 0 {
		c.DriftFloorPct = 25
	}
	if c.MinBandSamples <= 0 {
		c.MinBandSamples = 8
	}
	return c
}

// ErrBuckets is the relative-error histogram bucket series: |err| as a
// ratio from 0.01% up to 1000%.
var ErrBuckets = obs.LogBuckets(1e-4, 10)

// driftNoiseFloorPct keeps the ratio test from alarming on sub-percent
// jitter: a window MAPE below this never trips the factor rule.
const driftNoiseFloorPct = 1.0

// bucket accumulates one Key's calibration state.
type bucket struct {
	n         int
	sumSigned float64 // Σ signed relative error (ratio)
	sumAbs    float64 // Σ |relative error|
	absH      *obs.Histogram
	overH     *obs.Histogram // signed ≥ 0 magnitudes (over-prediction)
	underH    *obs.Histogram // signed < 0 magnitudes (under-prediction)
	overN     int
	underN    int
}

// band computes the bucket's signed-error band: the p10 of
// under-prediction magnitudes (negated) to the p90 of over-prediction
// magnitudes, weighted by which side the mass actually sits on. With all
// samples on one side the band collapses onto that side.
func (b *bucket) band() (loPct, hiPct float64) {
	// Quantiles of signed error: under-predictions are the negative tail.
	// Take roughly the 10th and 90th percentile of the signed
	// distribution by splitting the rank across the two magnitude
	// histograms (under sorted descending-negative, over ascending).
	total := b.overN + b.underN
	if total == 0 {
		return 0, 0
	}
	// Low edge: 10th percentile of signed errors. If ≥10% of mass is
	// under-predicted, it lies in the under histogram at magnitude
	// quantile 1 - 0.1*total/underN; otherwise in the over side.
	lo := signedQuantile(0.10, b)
	hi := signedQuantile(0.90, b)
	return lo * 100, hi * 100
}

// signedQuantile estimates the q-quantile of the signed relative-error
// distribution from the two magnitude histograms.
func signedQuantile(q float64, b *bucket) float64 {
	total := float64(b.overN + b.underN)
	if total == 0 {
		return 0
	}
	rank := q * total // 0..total, ascending over signed values
	if float64(b.underN) >= rank && b.underN > 0 {
		// Inside the negative tail. Ascending signed order visits under
		// magnitudes from largest to smallest, so the signed q-quantile is
		// the (1 - rank/underN) magnitude quantile, negated.
		mq := 1 - rank/float64(b.underN)
		return -b.underH.Quantile(clamp01(mq))
	}
	if b.overN == 0 {
		return 0
	}
	mq := (rank - float64(b.underN)) / float64(b.overN)
	return b.overH.Quantile(clamp01(mq))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Ledger joins predictions with outcomes and maintains the calibration
// statistics. All methods are safe for concurrent use; the critical
// sections are small (map ops plus a handful of float updates) so Begin
// on the service hot path costs about as much as a prediction-cache
// probe.
type Ledger struct {
	cfg Config
	seq atomic.Uint64

	mu       sync.Mutex
	pending  map[string]Prediction
	fifo     []string // pending IDs in admission order (eviction ring)
	fifoNext int

	samples  []Sample // joined-pair ring for the CSV export
	sampNext int
	sampN    int

	buckets map[Key]*bucket

	// Drift detector: sliding window of recent |relative errors| vs the
	// cumulative baseline of everything before the window.
	window  []float64
	winNext int
	winN    int
	winSum  float64

	totalAbs    float64 // Σ |relative error| over all joined samples
	totalSigned float64 // Σ signed relative error over all joined samples

	predictions uint64
	outcomes    uint64
	joined      uint64
	unmatched   uint64
	expired     uint64
	ok          bool
}

// New builds a ledger. The zero Config takes the documented defaults.
func New(cfg Config) *Ledger {
	cfg = cfg.withDefaults()
	return &Ledger{
		cfg:     cfg,
		pending: make(map[string]Prediction, cfg.PendingCap),
		fifo:    make([]string, cfg.PendingCap),
		samples: make([]Sample, cfg.SampleCap),
		buckets: map[Key]*bucket{},
		window:  make([]float64, cfg.DriftWindow),
		ok:      true,
	}
}

// Default-ledger Prometheus metrics. Per-bucket stats stay in the ledger
// (app names are unbounded, and the obs convention forbids them as
// labels); the registry carries only the global aggregates.
var (
	mPredictions = obs.Default().Counter(
		"cbes_accuracy_predictions_total", "Predictions registered with the accuracy ledger.")
	mOutcomes = obs.Default().Counter(
		"cbes_accuracy_outcomes_total", "Measured outcomes reported to the accuracy ledger.")
	mJoined = obs.Default().Counter(
		"cbes_accuracy_joined_total", "Outcome reports successfully joined to a pending prediction.")
	mUnmatched = obs.Default().Counter(
		"cbes_accuracy_unmatched_total", "Outcome reports with no matching pending prediction (unknown, expired, or invalid).")
	mExpired = obs.Default().Counter(
		"cbes_accuracy_expired_total", "Pending predictions evicted before any outcome arrived.")
	mPending = obs.Default().Gauge(
		"cbes_accuracy_pending", "Predictions currently awaiting a reported outcome.")
	mAbsErr = obs.Default().Histogram(
		"cbes_accuracy_abs_err_ratio", "Absolute relative error |pred-actual|/actual of joined predictions.", ErrBuckets)
	mCalibrationOK = obs.Default().Gauge(
		"cbes_calibration_ok", "1 while recent prediction error is consistent with the long-run baseline, 0 under drift.")
)

var defaultLedger = func() *Ledger {
	l := New(Config{})
	mCalibrationOK.Set(1)
	return l
}()

// Default returns the process-wide ledger the service, batch runner,
// remap executor, and experiments all feed.
func Default() *Ledger { return defaultLedger }

func (l *Ledger) nextID() string {
	return "p" + strconv.FormatUint(l.seq.Add(1), 16)
}

// Begin registers a served prediction and returns its ID (assigning one
// if p.ID is empty). The prediction waits in the bounded pending store
// until an outcome is reported for it or it is evicted by newer entries.
func (l *Ledger) Begin(p Prediction) string {
	if p.At.IsZero() {
		p.At = time.Now()
	}
	if p.ID == "" {
		p.ID = l.nextID()
	}
	l.mu.Lock()
	if old := l.fifo[l.fifoNext]; old != "" {
		if _, live := l.pending[old]; live {
			delete(l.pending, old)
			l.expired++
			if l == defaultLedger {
				mExpired.Inc()
			}
		}
	}
	l.fifo[l.fifoNext] = p.ID
	l.fifoNext = (l.fifoNext + 1) % len(l.fifo)
	l.pending[p.ID] = p
	l.predictions++
	pendingN := len(l.pending)
	l.mu.Unlock()
	if l == defaultLedger {
		mPredictions.Inc()
		mPending.Set(float64(pendingN))
	}
	return p.ID
}

// ErrUnknownID reports an outcome that matched no pending prediction —
// the ID was never issued, was already joined, or was evicted.
var ErrUnknownID = errors.New("accuracy: unknown or expired prediction id")

// Report joins a measured runtime (seconds) to the pending prediction
// with the given ID and folds the error into the calibration statistics.
func (l *Ledger) Report(id string, actualSeconds float64) (Sample, error) {
	if !(actualSeconds > 0) || math.IsInf(actualSeconds, 0) {
		l.mu.Lock()
		l.outcomes++
		l.unmatched++
		l.mu.Unlock()
		if l == defaultLedger {
			mOutcomes.Inc()
			mUnmatched.Inc()
		}
		return Sample{}, fmt.Errorf("accuracy: actual seconds must be positive and finite, got %v", actualSeconds)
	}
	l.mu.Lock()
	p, live := l.pending[id]
	if !live {
		l.outcomes++
		l.unmatched++
		l.mu.Unlock()
		if l == defaultLedger {
			mOutcomes.Inc()
			mUnmatched.Inc()
		}
		return Sample{}, fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	delete(l.pending, id)
	l.outcomes++
	s := l.joinLocked(p, actualSeconds)
	pendingN := len(l.pending)
	okNow := l.ok
	l.mu.Unlock()
	if l == defaultLedger {
		mOutcomes.Inc()
		mJoined.Inc()
		mPending.Set(float64(pendingN))
		mAbsErr.Observe(s.AbsErrPct / 100)
		setCalibrationGauge(okNow)
	}
	return s, nil
}

// ReportPair registers a prediction and its outcome in one call — the
// in-process hook for executors (batch, remap, experiments) that hold
// both sides already. Invalid inputs (non-positive predicted or actual)
// are dropped with a zero Sample.
func (l *Ledger) ReportPair(p Prediction, actualSeconds float64) Sample {
	if !(actualSeconds > 0) || !(p.Predicted > 0) ||
		math.IsInf(actualSeconds, 0) || math.IsInf(p.Predicted, 0) {
		return Sample{}
	}
	if p.At.IsZero() {
		p.At = time.Now()
	}
	if p.ID == "" {
		p.ID = l.nextID()
	}
	l.mu.Lock()
	l.predictions++
	l.outcomes++
	s := l.joinLocked(p, actualSeconds)
	okNow := l.ok
	l.mu.Unlock()
	if l == defaultLedger {
		mPredictions.Inc()
		mOutcomes.Inc()
		mJoined.Inc()
		mAbsErr.Observe(s.AbsErrPct / 100)
		setCalibrationGauge(okNow)
	}
	return s
}

func setCalibrationGauge(ok bool) {
	if ok {
		mCalibrationOK.Set(1)
	} else {
		mCalibrationOK.Set(0)
	}
}

// joinLocked folds one joined pair into the per-bucket statistics and
// the drift detector. Caller holds l.mu.
func (l *Ledger) joinLocked(p Prediction, actual float64) Sample {
	signed := (p.Predicted - actual) / actual
	abs := math.Abs(signed)
	s := Sample{
		Prediction:   p,
		Actual:       actual,
		SignedErrPct: signed * 100,
		AbsErrPct:    abs * 100,
		JoinedAt:     time.Now(),
	}

	// Sample ring (CSV export), overwrite-oldest.
	l.samples[l.sampNext] = s
	l.sampNext = (l.sampNext + 1) % len(l.samples)
	if l.sampN < len(l.samples) {
		l.sampN++
	}

	// Per-bucket calibration stats.
	k := Key{App: p.App, Scheduler: p.Scheduler, Degraded: p.Degraded, AgeBucket: p.AgeBucket}
	b := l.buckets[k]
	if b == nil {
		b = &bucket{
			absH:   obs.NewHistogram(ErrBuckets),
			overH:  obs.NewHistogram(ErrBuckets),
			underH: obs.NewHistogram(ErrBuckets),
		}
		l.buckets[k] = b
	}
	b.n++
	b.sumSigned += signed
	b.sumAbs += abs
	b.absH.Observe(abs)
	if signed >= 0 {
		b.overH.Observe(abs)
		b.overN++
	} else {
		b.underH.Observe(abs)
		b.underN++
	}

	// Drift detector: slide the window, keep the cumulative baseline.
	if l.winN == len(l.window) {
		l.winSum -= l.window[l.winNext]
	}
	l.window[l.winNext] = abs
	l.winNext = (l.winNext + 1) % len(l.window)
	if l.winN < len(l.window) {
		l.winN++
	}
	l.winSum += abs
	l.totalAbs += abs
	l.totalSigned += signed
	l.joined++
	l.ok = !l.driftedLocked()
	return s
}

// driftedLocked evaluates the drift rule. Caller holds l.mu.
func (l *Ledger) driftedLocked() bool {
	if l.winN < l.cfg.DriftMinSamples {
		return false
	}
	winMAPE := l.winSum / float64(l.winN) * 100
	if winMAPE >= l.cfg.DriftFloorPct {
		return true
	}
	baseN := l.joined - uint64(l.winN)
	if baseN < uint64(l.cfg.DriftMinSamples) || winMAPE < driftNoiseFloorPct {
		return false
	}
	baseMAPE := (l.totalAbs - l.winSum) / float64(baseN) * 100
	return baseMAPE > 0 && winMAPE >= baseMAPE*l.cfg.DriftFactor
}

// CalibrationOK reports whether the drift detector currently considers
// recent prediction error consistent with the baseline.
func (l *Ledger) CalibrationOK() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ok
}

// Status snapshots the ledger counters and drift state.
func (l *Ledger) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		Predictions:   l.predictions,
		Outcomes:      l.outcomes,
		Joined:        l.joined,
		Unmatched:     l.unmatched,
		Expired:       l.expired,
		Pending:       len(l.pending),
		WindowN:       l.winN,
		CalibrationOK: l.ok,
	}
	if l.joined > 0 {
		st.BiasPct = l.totalSigned / float64(l.joined) * 100
		st.MAPEPct = l.totalAbs / float64(l.joined) * 100
	}
	if l.winN > 0 {
		st.WindowMAPEPct = l.winSum / float64(l.winN) * 100
	}
	if base := l.joined - uint64(l.winN); base > 0 {
		st.BaselineN = base
		st.BaselineMAPEPct = (l.totalAbs - l.winSum) / float64(base) * 100
	}
	return st
}

// StatsQuery filters a Stats read; empty fields match everything.
type StatsQuery struct {
	App       string
	Scheduler string
}

// Stats returns the per-bucket calibration summaries matching q, in
// deterministic key order.
func (l *Ledger) Stats(q StatsQuery) []BucketStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]BucketStats, 0, len(l.buckets))
	for k, b := range l.buckets {
		if q.App != "" && k.App != q.App {
			continue
		}
		if q.Scheduler != "" && k.Scheduler != q.Scheduler {
			continue
		}
		bs := BucketStats{
			Key:     k,
			Count:   b.n,
			BiasPct: b.sumSigned / float64(b.n) * 100,
			MAPEPct: b.sumAbs / float64(b.n) * 100,
			P50Pct:  b.absH.Quantile(0.50) * 100,
			P90Pct:  b.absH.Quantile(0.90) * 100,
			P99Pct:  b.absH.Quantile(0.99) * 100,
		}
		bs.BandLowPct, bs.BandHighPct = b.band()
		out = append(out, bs)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Scheduler != b.Scheduler {
			return a.Scheduler < b.Scheduler
		}
		if a.Degraded != b.Degraded {
			return !a.Degraded
		}
		return a.AgeBucket < b.AgeBucket
	})
	return out
}

// BandFor returns the empirical signed-error band for a calibration
// bucket, or a zero Band (Samples == 0) while the bucket has fewer than
// MinBandSamples joined outcomes. This is the hot-path reply annotation:
// one mutex acquisition plus two histogram quantile scans.
func (l *Ledger) BandFor(k Key) Band {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[k]
	if b == nil || b.n < l.cfg.MinBandSamples {
		return Band{}
	}
	lo, hi := b.band()
	return Band{LowPct: lo, HighPct: hi, Samples: b.n}
}

// Samples returns up to n joined pairs, newest first (n <= 0 returns all
// resident pairs).
func (l *Ledger) Samples(n int) []Sample {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.sampN {
		n = l.sampN
	}
	out := make([]Sample, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.samples[(l.sampNext-i+len(l.samples))%len(l.samples)])
	}
	return out
}

// AgeBucket coarsely bins a snapshot age (seconds) for calibration
// keying: fresh data should predict better than stale data, and the
// bucketed key makes that measurable without unbounded cardinality.
func AgeBucket(ageSeconds float64) string {
	switch {
	case ageSeconds < 1:
		return "<1s"
	case ageSeconds < 5:
		return "1-5s"
	case ageSeconds < 30:
		return "5-30s"
	default:
		return "30s+"
	}
}
