package accuracy

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestBeginReportJoins(t *testing.T) {
	l := New(Config{})
	id := l.Begin(Prediction{App: "lu", Scheduler: "cs", Predicted: 100, AgeBucket: "<1s"})
	if id == "" {
		t.Fatal("Begin returned empty id")
	}
	s, err := l.Report(id, 80) // predicted 100, actual 80 → over-prediction
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.SignedErrPct-25) > 1e-9 {
		t.Fatalf("signed err = %v, want +25 (over-prediction positive)", s.SignedErrPct)
	}
	if math.Abs(s.AbsErrPct-25) > 1e-9 {
		t.Fatalf("abs err = %v, want 25", s.AbsErrPct)
	}
	st := l.Status()
	if st.Joined != 1 || st.Pending != 0 || st.Predictions != 1 || st.Outcomes != 1 {
		t.Fatalf("status after join: %+v", st)
	}
	// A second report for the same ID must fail: the join is one-shot.
	if _, err := l.Report(id, 80); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double report err = %v, want ErrUnknownID", err)
	}
}

func TestReportUnknownAndInvalid(t *testing.T) {
	l := New(Config{})
	if _, err := l.Report("nope", 5); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown id err = %v", err)
	}
	id := l.Begin(Prediction{App: "lu", Predicted: 10})
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := l.Report(id, bad); err == nil {
			t.Fatalf("actual=%v accepted", bad)
		}
	}
	// The invalid outcomes must not have consumed the pending entry.
	if _, err := l.Report(id, 10); err != nil {
		t.Fatalf("valid report after invalid ones: %v", err)
	}
	st := l.Status()
	if st.Unmatched != 5 {
		t.Fatalf("unmatched = %d, want 5 (1 unknown + 4 invalid)", st.Unmatched)
	}
}

func TestPendingEviction(t *testing.T) {
	l := New(Config{PendingCap: 4})
	ids := make([]string, 6)
	for i := range ids {
		ids[i] = l.Begin(Prediction{App: "lu", Predicted: 10})
	}
	// The two oldest must have been evicted and counted.
	for _, id := range ids[:2] {
		if _, err := l.Report(id, 10); !errors.Is(err, ErrUnknownID) {
			t.Fatalf("evicted id %s still joinable (err=%v)", id, err)
		}
	}
	for _, id := range ids[2:] {
		if _, err := l.Report(id, 10); err != nil {
			t.Fatalf("resident id %s: %v", id, err)
		}
	}
	if st := l.Status(); st.Expired != 2 || st.Joined != 4 {
		t.Fatalf("expired=%d joined=%d, want 2/4", st.Expired, st.Joined)
	}
}

func TestBucketStatsAndBand(t *testing.T) {
	l := New(Config{MinBandSamples: 4})
	k := Key{App: "lu", Scheduler: "cs", AgeBucket: "<1s"}
	// 10 over-predictions at +20%, 10 under at -10%.
	for i := 0; i < 10; i++ {
		l.ReportPair(Prediction{App: k.App, Scheduler: k.Scheduler, AgeBucket: k.AgeBucket, Predicted: 120}, 100)
		l.ReportPair(Prediction{App: k.App, Scheduler: k.Scheduler, AgeBucket: k.AgeBucket, Predicted: 90}, 100)
	}
	stats := l.Stats(StatsQuery{App: "lu"})
	if len(stats) != 1 {
		t.Fatalf("stats buckets = %d, want 1", len(stats))
	}
	bs := stats[0]
	if bs.Count != 20 {
		t.Fatalf("count = %d", bs.Count)
	}
	if math.Abs(bs.BiasPct-5) > 1e-9 { // mean of +20 and -10
		t.Fatalf("bias = %v, want +5", bs.BiasPct)
	}
	if math.Abs(bs.MAPEPct-15) > 1e-9 {
		t.Fatalf("MAPE = %v, want 15", bs.MAPEPct)
	}
	band := l.BandFor(k)
	if band.Samples != 20 {
		t.Fatalf("band samples = %d", band.Samples)
	}
	// The band must straddle zero and bracket the two error modes within
	// log-bucket resolution.
	if band.LowPct >= 0 || band.HighPct <= 0 {
		t.Fatalf("band [%v, %v] does not straddle 0", band.LowPct, band.HighPct)
	}
	if band.LowPct < -25 || band.HighPct > 50 {
		t.Fatalf("band [%v, %v] implausibly wide for ±20%% errors", band.LowPct, band.HighPct)
	}
	// An unseen or under-sampled bucket yields no band.
	if b := l.BandFor(Key{App: "ghost"}); b.Samples != 0 {
		t.Fatalf("ghost band = %+v", b)
	}
}

func TestDriftFlipsAndRecovers(t *testing.T) {
	l := New(Config{DriftWindow: 8, DriftMinSamples: 4, DriftFloorPct: 25, DriftFactor: 2})
	good := func() { l.ReportPair(Prediction{App: "lu", Predicted: 101}, 100) } // 1% err
	bad := func() { l.ReportPair(Prediction{App: "lu", Predicted: 180}, 100) }  // 80% err
	for i := 0; i < 16; i++ {
		good()
	}
	if !l.CalibrationOK() {
		t.Fatal("calibration not OK on 1% errors")
	}
	for i := 0; i < 8; i++ {
		bad()
	}
	st := l.Status()
	if st.CalibrationOK {
		t.Fatalf("drift did not trip: %+v", st)
	}
	if st.WindowMAPEPct < 25 {
		t.Fatalf("window MAPE = %v, expected ≥ floor", st.WindowMAPEPct)
	}
	// Good outcomes flush the window and the alarm clears.
	for i := 0; i < 8; i++ {
		good()
	}
	if !l.CalibrationOK() {
		t.Fatalf("calibration did not recover: %+v", l.Status())
	}
}

func TestDriftFloorTripsWithoutBaseline(t *testing.T) {
	// Biased from the very first join: the ratio rule can never fire
	// (window == baseline), so the absolute floor must.
	l := New(Config{DriftWindow: 16, DriftMinSamples: 8, DriftFloorPct: 25})
	for i := 0; i < 8; i++ {
		l.ReportPair(Prediction{App: "lu", Predicted: 150}, 100) // 50% err
	}
	if l.CalibrationOK() {
		t.Fatalf("floor rule did not trip: %+v", l.Status())
	}
}

func TestSamplesNewestFirst(t *testing.T) {
	l := New(Config{SampleCap: 4})
	for i := 1; i <= 6; i++ {
		l.ReportPair(Prediction{App: fmt.Sprintf("a%d", i), Predicted: 10}, 10)
	}
	got := l.Samples(0)
	if len(got) != 4 {
		t.Fatalf("resident samples = %d, want 4", len(got))
	}
	for i, want := range []string{"a6", "a5", "a4", "a3"} {
		if got[i].App != want {
			t.Fatalf("samples[%d].App = %s, want %s", i, got[i].App, want)
		}
	}
	if got2 := l.Samples(2); len(got2) != 2 || got2[0].App != "a6" {
		t.Fatalf("Samples(2) = %+v", got2)
	}
}

func TestAgeBucket(t *testing.T) {
	cases := map[float64]string{
		-1: "<1s", 0: "<1s", 0.9: "<1s", 1: "1-5s", 4.9: "1-5s",
		5: "5-30s", 29: "5-30s", 30: "30s+", 300: "30s+",
	}
	for age, want := range cases {
		if got := AgeBucket(age); got != want {
			t.Fatalf("AgeBucket(%v) = %s, want %s", age, got, want)
		}
	}
}

func TestConcurrentBeginReport(t *testing.T) {
	l := New(Config{PendingCap: 64, SampleCap: 64})
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := fmt.Sprintf("app%d", g)
			for i := 0; i < perG; i++ {
				id := l.Begin(Prediction{App: app, Predicted: 100})
				// Evictions under the small pending cap are expected; both
				// outcomes must keep the counters consistent.
				l.Report(id, 90+float64(i%20)) //nolint:errcheck
				l.BandFor(Key{App: app})
				if i%32 == 0 {
					l.Status()
					l.Stats(StatsQuery{App: app})
					l.Samples(8)
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.Status()
	const total = goroutines * perG
	if st.Predictions != total || st.Outcomes != total {
		t.Fatalf("predictions=%d outcomes=%d, want %d", st.Predictions, st.Outcomes, total)
	}
	if st.Joined+st.Unmatched != total {
		t.Fatalf("joined=%d unmatched=%d don't partition %d outcomes", st.Joined, st.Unmatched, total)
	}
	if st.Unmatched != st.Expired {
		t.Fatalf("unmatched=%d != expired=%d: every miss must come from eviction", st.Unmatched, st.Expired)
	}
}

func TestHandlerJSONAndCSV(t *testing.T) {
	l := New(Config{})
	id := l.Begin(Prediction{App: "lu", Scheduler: "cs", Predicted: 100, AgeBucket: "<1s"})
	if _, err := l.Report(id, 80); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	Handler(l).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/accuracy", nil))
	if rr.Code != 200 {
		t.Fatalf("JSON status %d", rr.Code)
	}
	var doc struct {
		Status  Status
		Buckets []BucketStats
		Samples []Sample
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status.Joined != 1 || len(doc.Buckets) != 1 || len(doc.Samples) != 1 {
		t.Fatalf("JSON doc: %+v", doc)
	}

	rr = httptest.NewRecorder()
	Handler(l).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/accuracy?format=csv", nil))
	rows, err := csv.NewReader(rr.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "prediction_id" {
		t.Fatalf("CSV rows: %v", rows)
	}
	if rows[1][0] != id || rows[1][5] != "100" || rows[1][6] != "80" {
		t.Fatalf("CSV pair row: %v", rows[1])
	}

	rr = httptest.NewRecorder()
	Handler(l).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/accuracy?n=zap", nil))
	if rr.Code != 400 || !strings.Contains(rr.Body.String(), "bad n") {
		t.Fatalf("bad n: %d %q", rr.Code, rr.Body.String())
	}
}
