// Package netmodel holds the cluster network end-to-end latency model that
// CBES builds during its off-line calibration phase and consults at
// mapping-evaluation time.
//
// The model is keyed by path class (cluster.Topology.PathSignature): all
// node pairs whose routes cross the same device classes between the same
// architectures share one latency curve, which is what makes an O(N)
// system profile possible on an N-node cluster. Each class stores
//
//   - a no-load latency curve L0(s): piecewise-linear in message size,
//     fitted from ping-pong measurements at calibration sizes, and
//   - load coefficients CSend/CRecv: the additional one-way latency per
//     unit of (1/ACPU − 1) at the sending/receiving end, fitted from
//     calibration runs under controlled CPU load,
//
// so that the on-demand latency estimate (the Lc of eq. 6) is
//
//	Lc(src,dst,s) = L0(s) + CSend·(1/a_src − 1) + CRecv·(1/a_dst − 1)
//	              + (L0(s) − L0(s_min)) · (q(u_src) + q(u_dst))
//
// with a the CPU availability forecast, u the NIC utilization forecast,
// and q(u) = u/(1−u) the queueing inflation of the bandwidth-dependent
// part (capped at u = 0.9).
package netmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"cbes/internal/cluster"
	"cbes/internal/monitor"
)

// maxNICUtil caps the NIC utilization used in the queueing term.
const maxNICUtil = 0.9

// Curve is a piecewise-linear latency curve over message size: Lat[i] is
// the one-way latency in seconds at Sizes[i]. Sizes must be strictly
// increasing. Beyond the last point the curve extrapolates with the final
// slope; below the first point it clamps.
type Curve struct {
	Sizes []int64   `json:"sizes"`
	Lat   []float64 `json:"lat"`
}

// At evaluates the curve at the given message size.
func (c *Curve) At(size int64) float64 {
	n := len(c.Sizes)
	if n == 0 {
		return 0
	}
	if n == 1 || size <= c.Sizes[0] {
		return c.Lat[0]
	}
	i := sort.Search(n, func(k int) bool { return c.Sizes[k] >= size })
	if i == n {
		// Extrapolate with the last segment's slope.
		i = n - 1
	}
	lo, hi := i-1, i
	ds := float64(c.Sizes[hi] - c.Sizes[lo])
	dl := c.Lat[hi] - c.Lat[lo]
	return c.Lat[lo] + dl*(float64(size-c.Sizes[lo]))/ds
}

// Base returns the latency at the smallest calibrated size — the
// bandwidth-independent floor used to isolate the wire component.
func (c *Curve) Base() float64 {
	if len(c.Lat) == 0 {
		return 0
	}
	return c.Lat[0]
}

// Class is the calibrated model of one path class.
type Class struct {
	Curve Curve   `json:"curve"`
	CSend float64 `json:"csend"` // s per unit (1/a_src − 1)
	CRecv float64 `json:"crecv"` // s per unit (1/a_dst − 1)
	// Pairs counts how many ordered node pairs this class covers
	// (diagnostics for the O(N) claim).
	Pairs int `json:"pairs"`
}

// Model is the complete calibrated network model of one cluster.
type Model struct {
	ClusterName string           `json:"cluster"`
	Classes     map[string]Class `json:"classes"`

	topo *cluster.Topology

	// byID caches Classes resolved by interned path-class ID
	// (cluster.Topology.ClassID); rebuilt lazily, invalidated by SetClass
	// and Attach. Entries for uncalibrated classes are nil.
	byID   atomic.Pointer[[]*Class]
	buildM sync.Mutex
}

// New creates an empty model for the topology.
func New(topo *cluster.Topology) *Model {
	return &Model{ClusterName: topo.Name, Classes: map[string]Class{}, topo: topo}
}

// Attach re-binds a deserialized model to its topology (needed to resolve
// pair signatures). It errors if the topology name does not match.
func (m *Model) Attach(topo *cluster.Topology) error {
	if topo.Name != m.ClusterName {
		return fmt.Errorf("netmodel: model calibrated for %q, not %q", m.ClusterName, topo.Name)
	}
	m.topo = topo
	m.byID.Store(nil)
	return nil
}

// SetClass installs or replaces a class.
func (m *Model) SetClass(sig string, c Class) {
	m.Classes[sig] = c
	m.byID.Store(nil)
}

// ClassFor returns the class covering the ordered pair, or an error if the
// calibration never covered its signature.
func (m *Model) ClassFor(src, dst int) (Class, error) {
	if t := m.topo; t != nil && t.NumClasses() > 0 {
		id := t.ClassID(src, dst)
		if c := m.ClassesByID()[id]; c != nil {
			return *c, nil
		}
		return Class{}, fmt.Errorf("netmodel: no calibration for class %q", t.ClassSignature(id))
	}
	sig := m.topo.PathSignature(src, dst)
	c, ok := m.Classes[sig]
	if !ok {
		return Class{}, fmt.Errorf("netmodel: no calibration for class %q", sig)
	}
	return c, nil
}

// NoLoad returns the no-load one-way latency estimate in seconds.
func (m *Model) NoLoad(src, dst int, size int64) float64 {
	c, err := m.ClassFor(src, dst)
	if err != nil {
		panic(err)
	}
	return c.Curve.At(size)
}

// LatencyCond returns the load-adjusted latency estimate Lc given explicit
// conditions: CPU availability at each end and NIC utilization at each end.
func (m *Model) LatencyCond(src, dst int, size int64, aSrc, aDst, uSrc, uDst float64) float64 {
	c, err := m.ClassFor(src, dst)
	if err != nil {
		panic(err)
	}
	return c.Latency(size, aSrc, aDst, uSrc, uDst)
}

// Latency evaluates the load-adjusted latency estimate Lc on a prefetched
// class. It performs exactly the arithmetic of Model.LatencyCond, so callers
// holding a class from ClassesByID get bit-identical results to the
// signature-lookup path — the invariant the core fast path relies on.
func (c *Class) Latency(size int64, aSrc, aDst, uSrc, uDst float64) float64 {
	l := c.Curve.At(size)
	if aSrc > 0 && aSrc < 1 {
		l += c.CSend * (1/aSrc - 1)
	}
	if aDst > 0 && aDst < 1 {
		l += c.CRecv * (1/aDst - 1)
	}
	wire := c.Curve.At(size) - c.Curve.Base()
	if wire > 0 {
		l += wire * (queueFactor(uSrc) + queueFactor(uDst))
	}
	return l
}

// ClassesByID resolves the calibrated classes into a slice indexed by the
// topology's interned path-class ID (length Topology.NumClasses);
// uncalibrated classes map to nil. The slice replaces the old n×n dense
// pair table: it is O(classes), not O(N²), which is what lets the fast
// path index a 5k-node topology. Entries are copies snapshotted at build
// time; SetClass invalidates the cache so the next call rebuilds.
func (m *Model) ClassesByID() []*Class {
	if p := m.byID.Load(); p != nil {
		return *p
	}
	m.buildM.Lock()
	defer m.buildM.Unlock()
	if p := m.byID.Load(); p != nil {
		return *p
	}
	nc := m.topo.NumClasses()
	t := make([]*Class, nc)
	for id := 0; id < nc; id++ {
		if c, ok := m.Classes[m.topo.ClassSignature(id)]; ok {
			cc := c
			t[id] = &cc
		}
	}
	m.byID.Store(&t)
	return t
}

func queueFactor(u float64) float64 {
	if u <= 0 {
		return 0
	}
	if u > maxNICUtil {
		u = maxNICUtil
	}
	return u / (1 - u)
}

// Latency returns Lc for the pair under the monitored snapshot — the form
// eq. 6 consumes.
func (m *Model) Latency(src, dst int, size int64, snap *monitor.Snapshot) float64 {
	return m.LatencyCond(src, dst, size,
		snap.AvailCPU[src], snap.AvailCPU[dst], snap.NICUtil[src], snap.NICUtil[dst])
}

// Spread reports the relative spread (max−min)/min of no-load small-message
// latency across all distinct node pairs — the quantity the paper reports
// as ≈13 % for Centurion and ≈54 % for Orange Grove.
func (m *Model) Spread(size int64) float64 {
	lo, hi := 0.0, 0.0
	first := true
	n := m.topo.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			l := m.NoLoad(i, j, size)
			if first {
				lo, hi = l, l
				first = false
				continue
			}
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
	}
	if lo == 0 {
		return 0
	}
	return (hi - lo) / lo
}

// Encode writes the model as JSON (the "database" of the system profile).
func (m *Model) Encode(w io.Writer) error { return json.NewEncoder(w).Encode(m) }

// Decode reads a model written by Encode; call Attach before use.
func Decode(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("netmodel: decode: %w", err)
	}
	if m.Classes == nil {
		m.Classes = map[string]Class{}
	}
	return &m, nil
}
