package netmodel

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"cbes/internal/cluster"
	"cbes/internal/monitor"
)

func TestCurveInterpolation(t *testing.T) {
	c := Curve{Sizes: []int64{0, 100, 200}, Lat: []float64{1, 2, 4}}
	cases := map[int64]float64{
		0: 1, 50: 1.5, 100: 2, 150: 3, 200: 4,
		300: 6, // extrapolate last slope
		-5:  1, // clamp below
	}
	for s, want := range cases {
		if got := c.At(s); math.Abs(got-want) > 1e-12 {
			t.Fatalf("At(%d) = %v, want %v", s, got, want)
		}
	}
	if c.Base() != 1 {
		t.Fatalf("Base = %v", c.Base())
	}
	var empty Curve
	if empty.At(10) != 0 || empty.Base() != 0 {
		t.Fatal("empty curve should be 0")
	}
	single := Curve{Sizes: []int64{64}, Lat: []float64{7}}
	if single.At(1) != 7 || single.At(1e6) != 7 {
		t.Fatal("single-point curve should be constant")
	}
}

func testModel(t *testing.T) (*Model, *cluster.Topology) {
	t.Helper()
	topo := cluster.NewTestTopology()
	m := New(topo)
	// Install synthetic classes for every signature present.
	n := topo.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sig := topo.PathSignature(i, j)
			if _, ok := m.Classes[sig]; ok {
				continue
			}
			base := 100e-6 + 20e-6*float64(topo.Hops(i, j))
			m.SetClass(sig, Class{
				Curve: Curve{
					Sizes: []int64{64, 1 << 10, 64 << 10},
					Lat:   []float64{base, base + 80e-6, base + 5e-3},
				},
				CSend: 35e-6,
				CRecv: 38e-6,
				Pairs: 1,
			})
		}
	}
	return m, topo
}

func TestNoLoadAndMissingClass(t *testing.T) {
	m, _ := testModel(t)
	if l := m.NoLoad(0, 1, 1<<10); math.Abs(l-(140e-6+80e-6)) > 1e-12 {
		t.Fatalf("NoLoad = %v", l)
	}
	if _, err := m.ClassFor(0, 1); err != nil {
		t.Fatal(err)
	}
	m2 := New(cluster.NewTestTopology())
	if _, err := m2.ClassFor(0, 1); err == nil {
		t.Fatal("expected missing-class error")
	}
}

func TestLoadAdjustment(t *testing.T) {
	m, _ := testModel(t)
	idle := m.LatencyCond(0, 1, 64, 1, 1, 0, 0)
	if math.Abs(idle-m.NoLoad(0, 1, 64)) > 1e-15 {
		t.Fatal("idle conditions must reproduce the no-load latency")
	}
	// CPU load at the source adds CSend*(1/a-1).
	half := m.LatencyCond(0, 1, 64, 0.5, 1, 0, 0)
	if math.Abs(half-idle-35e-6) > 1e-12 {
		t.Fatalf("src load adjustment = %v", half-idle)
	}
	// CPU load at the destination adds CRecv*(1/a-1).
	dhalf := m.LatencyCond(0, 1, 64, 1, 0.25, 0, 0)
	if math.Abs(dhalf-idle-3*38e-6) > 1e-12 {
		t.Fatalf("dst load adjustment = %v", dhalf-idle)
	}
	// NIC utilization inflates only the size-dependent part: at the base
	// size there is none.
	nic := m.LatencyCond(0, 1, 64, 1, 1, 0.5, 0)
	if math.Abs(nic-idle) > 1e-15 {
		t.Fatalf("NIC term at base size should vanish, got +%v", nic-idle)
	}
	big := m.LatencyCond(0, 1, 64<<10, 1, 1, 0.5, 0)
	bigIdle := m.NoLoad(0, 1, 64<<10)
	wire := bigIdle - m.NoLoad(0, 1, 64)
	if math.Abs(big-bigIdle-wire*1.0) > 1e-12 { // q(0.5)=1
		t.Fatalf("NIC inflation = %v, want %v", big-bigIdle, wire)
	}
	// Utilization is capped: q(0.99) == q(0.9) == 9.
	capped := m.LatencyCond(0, 1, 64<<10, 1, 1, 0.99, 0)
	if math.Abs(capped-bigIdle-wire*9) > 1e-9 {
		t.Fatalf("cap failed: %v", capped-bigIdle)
	}
}

func TestLatencyWithSnapshot(t *testing.T) {
	m, topo := testModel(t)
	snap := monitor.IdleSnapshot(topo.NumNodes())
	snap.AvailCPU[0] = 0.5
	got := m.Latency(0, 1, 64, snap)
	want := m.LatencyCond(0, 1, 64, 0.5, 1, 0, 0)
	if got != want {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}

func TestSpread(t *testing.T) {
	m, _ := testModel(t)
	s := m.Spread(64)
	// Same-switch 2 hops vs cross-switch 3 hops: (160-140)/140.
	want := 20.0 / 140.0
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("Spread = %v, want %v", s, want)
	}
}

func TestEncodeDecodeAttach(t *testing.T) {
	m, topo := testModel(t)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Attach(topo); err != nil {
		t.Fatal(err)
	}
	if got, want := m2.NoLoad(0, 1, 64), m.NoLoad(0, 1, 64); got != want {
		t.Fatalf("round trip NoLoad = %v, want %v", got, want)
	}
	if err := m2.Attach(cluster.NewOrangeGrove()); err == nil {
		t.Fatal("attach to wrong topology should fail")
	}
	if _, err := Decode(bytes.NewBufferString("{")); err == nil {
		t.Fatal("expected decode error")
	}
}

// Property: latency is monotone in size and never below no-load under any
// load conditions.
func TestQuickLatencyInvariants(t *testing.T) {
	m, _ := testModel(t)
	prop := func(s1, s2 uint32, a1, a2, u1, u2 uint8) bool {
		lo, hi := int64(s1%1e6), int64(s2%1e6)
		if lo > hi {
			lo, hi = hi, lo
		}
		aS := 0.05 + 0.95*float64(a1)/255
		aD := 0.05 + 0.95*float64(a2)/255
		uS := float64(u1) / 255
		uD := float64(u2) / 255
		l1 := m.LatencyCond(0, 5, lo, aS, aD, uS, uD)
		l2 := m.LatencyCond(0, 5, hi, aS, aD, uS, uD)
		if l2 < l1-1e-12 {
			return false
		}
		return l1 >= m.NoLoad(0, 5, lo)-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
