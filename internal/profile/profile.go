// Package profile implements the application-dedicated half of the CBES
// infrastructure: application profiles extracted from execution traces.
//
// An application profile is "a summary of an application's behavior" (§2):
// for every process it records the accumulated own-code time X, the
// message-passing overhead time O, the blocked time B, the sets of
// same-size message groups exchanged with every peer, and — once the
// network model is available — the communication correction factor λ of
// eq. 7. For heterogeneous clusters it also carries the experimentally
// measured per-architecture compute-speed ratios.
package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"cbes/internal/cluster"
	"cbes/internal/netmodel"
	"cbes/internal/trace"
)

// ProcProfile summarises one process within one segment.
type ProcProfile struct {
	Rank int     `json:"rank"`
	X    float64 `json:"x"` // s executing own code
	O    float64 `json:"o"` // s executing message-passing library code
	B    float64 `json:"b"` // s blocked on communication
	// Sends and Recvs are the same-size message groups (mgS/mgR of eq. 6).
	Sends []trace.MsgGroup `json:"sends"`
	Recvs []trace.MsgGroup `json:"recvs"`
	// Lambda is the correction factor λ_i = B_i / Θ_i^profile (eq. 7),
	// filled in by ComputeLambdas. Zero when the process does not
	// communicate.
	Lambda float64 `json:"lambda"`
	// ProfNode is the node the process was profiled on; ProfSpeed the
	// application's measured speed there (Speed_profile of eq. 5).
	ProfNode  int     `json:"prof_node"`
	ProfSpeed float64 `json:"prof_speed"`
}

// SegmentProfile is the profile of one application phase.
type SegmentProfile struct {
	Name  string        `json:"name"`
	Procs []ProcProfile `json:"procs"`
}

// Profile is a complete application profile.
type Profile struct {
	App     string `json:"app"`
	Cluster string `json:"cluster"`
	Ranks   int    `json:"ranks"`
	// Mapping is the rank->node assignment used while profiling.
	Mapping []int `json:"mapping"`
	// ArchSpeed holds the application's measured compute speed on each
	// architecture, relative to the reference (bench.MeasureArchSpeeds).
	ArchSpeed map[cluster.Arch]float64 `json:"arch_speed"`
	Segments  []SegmentProfile         `json:"segments"`
	// LambdasReady records whether ComputeLambdas ran.
	LambdasReady bool `json:"lambdas_ready"`
}

// FromTrace analyses an execution trace into a profile. archSpeed carries
// the measured per-architecture speeds of this application; the profiling
// node's speed is looked up there.
func FromTrace(tr *trace.Trace, topo *cluster.Topology, archSpeed map[cluster.Arch]float64) (*Profile, error) {
	if tr.Cluster != topo.Name {
		return nil, fmt.Errorf("profile: trace from cluster %q, topology is %q", tr.Cluster, topo.Name)
	}
	p := &Profile{
		App:       tr.App,
		Cluster:   tr.Cluster,
		Ranks:     tr.Ranks,
		Mapping:   append([]int(nil), tr.Mapping...),
		ArchSpeed: map[cluster.Arch]float64{},
	}
	for a, s := range archSpeed {
		p.ArchSpeed[a] = s
	}
	for _, seg := range tr.Segments {
		sp := SegmentProfile{Name: seg.Name}
		for _, pt := range seg.Procs {
			arch := topo.Node(pt.Node).Arch
			speed, ok := p.ArchSpeed[arch]
			if !ok {
				return nil, fmt.Errorf("profile: no measured speed for architecture %q", arch)
			}
			sp.Procs = append(sp.Procs, ProcProfile{
				Rank:      pt.Rank,
				X:         pt.Run.Seconds(),
				O:         pt.Overhead.Seconds(),
				B:         pt.Blocked.Seconds(),
				Sends:     append([]trace.MsgGroup(nil), pt.Sends...),
				Recvs:     append([]trace.MsgGroup(nil), pt.Recvs...),
				ProfNode:  pt.Node,
				ProfSpeed: speed,
			})
		}
		p.Segments = append(p.Segments, sp)
	}
	return p, nil
}

// Theta computes the theoretical communication time Θ_i of eq. 6 for one
// process under an arbitrary mapping (rank -> node), using the supplied
// latency function (no-load or load-adjusted).
func Theta(pp *ProcProfile, mapping []int, lat func(srcNode, dstNode int, size int64) float64) float64 {
	my := mapping[pp.Rank]
	theta := 0.0
	for _, g := range pp.Recvs {
		theta += float64(g.Count) * lat(mapping[g.Peer], my, g.Size)
	}
	for _, g := range pp.Sends {
		theta += float64(g.Count) * lat(my, mapping[g.Peer], g.Size)
	}
	return theta
}

// ComputeLambdas fills in λ_i for every process and segment using the
// profiling mapping and the no-load latency model — the conditions the
// paper's Θ^profile is defined under (eq. 7). The set Λ is constant and
// characteristic for the profile.
func (p *Profile) ComputeLambdas(model *netmodel.Model) error {
	for si := range p.Segments {
		for pi := range p.Segments[si].Procs {
			pp := &p.Segments[si].Procs[pi]
			theta := Theta(pp, p.Mapping, model.NoLoad)
			if theta <= 0 {
				pp.Lambda = 0
				continue
			}
			pp.Lambda = pp.B / theta
		}
	}
	p.LambdasReady = true
	return nil
}

// CommFraction reports the fraction of the profiled execution spent on
// communication (B against X+O+B), aggregated over segments for the
// critical (slowest) process — the computation-to-communication ratio the
// paper uses when discussing CBES suitability (§6.2).
func (p *Profile) CommFraction() float64 {
	totalBusy, totalB := 0.0, 0.0
	for _, seg := range p.Segments {
		// Use the process with the largest busy time as representative.
		bi, best := -1, 0.0
		for i, pp := range seg.Procs {
			busy := pp.X + pp.O + pp.B
			if busy > best {
				best, bi = busy, i
			}
		}
		if bi >= 0 {
			pp := seg.Procs[bi]
			totalBusy += pp.X + pp.O + pp.B
			totalB += pp.B
		}
	}
	if totalBusy == 0 {
		return 0
	}
	return totalB / totalBusy
}

// Encode writes the profile as JSON.
func (p *Profile) Encode(w io.Writer) error { return json.NewEncoder(w).Encode(p) }

// Decode reads a profile written by Encode.
func Decode(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	return &p, nil
}
