package profile

import (
	"bytes"
	"math"
	"testing"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/simnet"
	"cbes/internal/trace"
	"cbes/internal/vcluster"
)

// runTestApp executes a small two-phase app and returns its trace.
func runTestApp(t *testing.T, topo *cluster.Topology, mapping []int) *trace.Trace {
	t.Helper()
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, mapping, func(r *mpisim.Rank) {
		r.Compute(0.2)
		for i := 0; i < 10; i++ {
			if r.ID() == 0 {
				r.Send(1, 4096)
				r.Recv(1)
			} else {
				r.Recv(0)
				r.Send(0, 4096)
			}
			r.Compute(0.01)
		}
	}, mpisim.Options{AppName: "profiled"})
	return res.Trace
}

func TestFromTraceBasics(t *testing.T) {
	topo := cluster.NewTestTopology()
	tr := runTestApp(t, topo, []int{0, 1})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	p, err := FromTrace(tr, topo, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if p.App != "profiled" || p.Ranks != 2 {
		t.Fatalf("header: %+v", p)
	}
	pp := p.Segments[0].Procs[0]
	// 0.2 + 10*0.01 = 0.3 ref-seconds on an Alpha (speed 1) at idle.
	if math.Abs(pp.X-0.3) > 1e-3 {
		t.Fatalf("X = %v, want ≈0.3", pp.X)
	}
	if pp.O <= 0 || pp.B <= 0 {
		t.Fatalf("O = %v, B = %v must be positive", pp.O, pp.B)
	}
	if len(pp.Sends) != 1 || pp.Sends[0].Count != 10 || pp.Sends[0].Size != 4096 {
		t.Fatalf("send groups: %+v", pp.Sends)
	}
	if pp.ProfNode != 0 || math.Abs(pp.ProfSpeed-1.0) > 1e-6 {
		t.Fatalf("prof node/speed: %+v", pp)
	}
}

func TestFromTraceRejectsWrongCluster(t *testing.T) {
	topo := cluster.NewTestTopology()
	tr := runTestApp(t, topo, []int{0, 1})
	if _, err := FromTrace(tr, cluster.NewOrangeGrove(), map[cluster.Arch]float64{}); err == nil {
		t.Fatal("expected cluster mismatch error")
	}
	// Missing arch speed must error too.
	if _, err := FromTrace(tr, topo, map[cluster.Arch]float64{}); err == nil {
		t.Fatal("expected missing arch speed error")
	}
}

func TestComputeLambdas(t *testing.T) {
	topo := cluster.NewTestTopology()
	model := bench.Calibrate(topo, bench.Options{Reps: 5, SkipLoadFit: true})
	tr := runTestApp(t, topo, []int{0, 1})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	p, err := FromTrace(tr, topo, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ComputeLambdas(model); err != nil {
		t.Fatal(err)
	}
	if !p.LambdasReady {
		t.Fatal("LambdasReady not set")
	}
	for _, pp := range p.Segments[0].Procs {
		if pp.Lambda <= 0 {
			t.Fatalf("rank %d lambda = %v, want > 0 for a communicating app", pp.Rank, pp.Lambda)
		}
		// Strict alternation: blocking dominates, so λ should be around 1
		// (receives wait for the full latency; some overlap with overhead).
		if pp.Lambda < 0.3 || pp.Lambda > 3 {
			t.Fatalf("rank %d lambda = %v, implausible for ping-pong", pp.Rank, pp.Lambda)
		}
	}
}

func TestLambdaZeroForNoComm(t *testing.T) {
	topo := cluster.NewTestTopology()
	model := bench.Calibrate(topo, bench.Options{Reps: 3, Sizes: []int64{64}, SkipLoadFit: true})
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	res := mpisim.Run(vc, net, []int{0, 1}, func(r *mpisim.Rank) { r.Compute(0.1) }, mpisim.Options{})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.1)
	p, err := FromTrace(res.Trace, topo, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ComputeLambdas(model); err != nil {
		t.Fatal(err)
	}
	for _, pp := range p.Segments[0].Procs {
		if pp.Lambda != 0 {
			t.Fatalf("lambda = %v for non-communicating process", pp.Lambda)
		}
	}
	if p.CommFraction() != 0 {
		t.Fatalf("comm fraction = %v", p.CommFraction())
	}
}

func TestThetaMappingSensitivity(t *testing.T) {
	topo := cluster.NewTestTopology()
	model := bench.Calibrate(topo, bench.Options{Reps: 5, SkipLoadFit: true})
	tr := runTestApp(t, topo, []int{0, 1})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	p, _ := FromTrace(tr, topo, speeds)
	pp := &p.Segments[0].Procs[0]
	sameSwitch := Theta(pp, []int{0, 1}, model.NoLoad)
	crossSwitch := Theta(pp, []int{0, 4}, model.NoLoad)
	if crossSwitch <= sameSwitch {
		t.Fatalf("Θ cross-switch (%v) must exceed same-switch (%v)", crossSwitch, sameSwitch)
	}
}

func TestCommFraction(t *testing.T) {
	topo := cluster.NewTestTopology()
	tr := runTestApp(t, topo, []int{0, 1})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	p, _ := FromTrace(tr, topo, speeds)
	f := p.CommFraction()
	if f <= 0 || f >= 1 {
		t.Fatalf("comm fraction = %v, want in (0,1)", f)
	}
}

func TestEncodeDecode(t *testing.T) {
	topo := cluster.NewTestTopology()
	tr := runTestApp(t, topo, []int{0, 1})
	speeds := bench.MeasureArchSpeeds(topo, nil, 0.2)
	p, _ := FromTrace(tr, topo, speeds)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.App != p.App || len(q.Segments) != len(p.Segments) {
		t.Fatalf("round trip: %+v", q)
	}
	if q.ArchSpeed[cluster.ArchAlpha] != p.ArchSpeed[cluster.ArchAlpha] {
		t.Fatal("arch speeds lost")
	}
	if _, err := Decode(bytes.NewBufferString("]")); err == nil {
		t.Fatal("expected decode error")
	}
}
