package vcluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cbes/internal/cluster"
	"cbes/internal/des"
)

func newTestCluster() (*des.Engine, *Cluster) {
	eng := des.NewEngine()
	return eng, New(eng, cluster.NewTestTopology())
}

func TestComputeSingleTask(t *testing.T) {
	eng, vc := newTestCluster()
	var elapsed des.Time
	eng.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		vc.CPU(0).Compute(p, 2.0, 1.0) // 2 ref-seconds at rate 1
		elapsed = p.Now() - start
	})
	eng.Run()
	if got := elapsed.Seconds(); math.Abs(got-2.0) > 1e-6 {
		t.Fatalf("elapsed = %v, want 2s", got)
	}
}

func TestComputeRateScaling(t *testing.T) {
	eng, vc := newTestCluster()
	var elapsed des.Time
	eng.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		vc.CPU(0).Compute(p, 1.0, 0.5) // half-speed node: 2s wall
		elapsed = p.Now() - start
	})
	eng.Run()
	if got := elapsed.Seconds(); math.Abs(got-2.0) > 1e-6 {
		t.Fatalf("elapsed = %v, want 2s", got)
	}
}

func TestProcessorSharingSingleCore(t *testing.T) {
	// Two equal tasks on a single-core node take twice as long each.
	eng, vc := newTestCluster()
	var e1, e2 des.Time
	eng.Spawn("w1", func(p *des.Proc) {
		start := p.Now()
		vc.CPU(0).Compute(p, 1.0, 1.0)
		e1 = p.Now() - start
	})
	eng.Spawn("w2", func(p *des.Proc) {
		start := p.Now()
		vc.CPU(0).Compute(p, 1.0, 1.0)
		e2 = p.Now() - start
	})
	eng.Run()
	for _, e := range []des.Time{e1, e2} {
		if got := e.Seconds(); math.Abs(got-2.0) > 1e-6 {
			t.Fatalf("shared elapsed = %v, want 2s", got)
		}
	}
}

func TestDualCoreNoSharingPenalty(t *testing.T) {
	// Node 4 of the test topology is Intel (2 CPUs): two tasks fit without
	// slowdown.
	eng, vc := newTestCluster()
	if vc.Topo.Node(4).CPUs != 2 {
		t.Skip("test topology changed")
	}
	var e1 des.Time
	eng.Spawn("w1", func(p *des.Proc) {
		start := p.Now()
		vc.CPU(4).Compute(p, 1.0, 1.0)
		e1 = p.Now() - start
	})
	eng.Spawn("w2", func(p *des.Proc) { vc.CPU(4).Compute(p, 1.0, 1.0) })
	eng.Run()
	if got := e1.Seconds(); math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("dual-core elapsed = %v, want 1s", got)
	}
}

func TestUnequalTasksFinishInOrder(t *testing.T) {
	eng, vc := newTestCluster()
	var order []string
	eng.Spawn("short", func(p *des.Proc) {
		vc.CPU(0).Compute(p, 0.5, 1.0)
		order = append(order, "short")
	})
	eng.Spawn("long", func(p *des.Proc) {
		vc.CPU(0).Compute(p, 2.0, 1.0)
		order = append(order, "long")
	})
	eng.Run()
	if len(order) != 2 || order[0] != "short" || order[1] != "long" {
		t.Fatalf("order = %v", order)
	}
	// short: both share until short has done 0.5 at rate 1/2 -> t=1s.
	// long: 0.5 done at t=1, then full speed: +1.5s -> t=2.5s.
	if got := eng.Now().Seconds(); math.Abs(got-2.5) > 1e-6 {
		t.Fatalf("makespan = %v, want 2.5s", got)
	}
}

func TestBackgroundLoadSlowsCompute(t *testing.T) {
	eng, vc := newTestCluster()
	vc.Eng.Schedule(0, func() { vc.SetAvailability(0, 0.5) })
	var elapsed des.Time
	eng.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		vc.CPU(0).Compute(p, 1.0, 1.0)
		elapsed = p.Now() - start
	})
	eng.Run()
	if got := elapsed.Seconds(); math.Abs(got-2.0) > 1e-6 {
		t.Fatalf("elapsed = %v, want 2s at 50%% availability", got)
	}
}

func TestLoadChangeMidCompute(t *testing.T) {
	eng, vc := newTestCluster()
	// 2 ref-seconds; availability drops to 0.5 at t=1s.
	eng.Schedule(des.Second, func() { vc.SetAvailability(0, 0.5) })
	var elapsed des.Time
	eng.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		vc.CPU(0).Compute(p, 2.0, 1.0)
		elapsed = p.Now() - start
	})
	eng.Run()
	// 1s at full speed does 1.0; remaining 1.0 at half speed takes 2s: 3s.
	if got := elapsed.Seconds(); math.Abs(got-3.0) > 1e-6 {
		t.Fatalf("elapsed = %v, want 3s", got)
	}
}

func TestAvailabilityClamping(t *testing.T) {
	eng, vc := newTestCluster()
	eng.Schedule(0, func() {
		vc.SetAvailability(0, -3)
		if a := vc.Availability(0); a != minAvailability {
			t.Errorf("availability = %v, want clamp to %v", a, minAvailability)
		}
		vc.SetAvailability(0, 17)
		if a := vc.Availability(0); a != 1.0 {
			t.Errorf("availability = %v, want clamp to 1", a)
		}
	})
	eng.Run()
}

func TestAvailableToNewTask(t *testing.T) {
	eng, vc := newTestCluster()
	eng.Spawn("w", func(p *des.Proc) {
		cpu := vc.CPU(0) // single core
		if got := cpu.AvailableToNewTask(); math.Abs(got-1.0) > 1e-9 {
			t.Errorf("idle AvailableToNewTask = %v, want 1", got)
		}
	})
	eng.Spawn("bg", func(p *des.Proc) { vc.CPU(0).Compute(p, 5, 1) })
	eng.Spawn("probe", func(p *des.Proc) {
		p.Sleep(des.Second)
		// One task running on one core: a new task would get 1/2.
		if got := vc.CPU(0).AvailableToNewTask(); math.Abs(got-0.5) > 1e-9 {
			t.Errorf("AvailableToNewTask = %v, want 0.5", got)
		}
	})
	eng.Run()
}

func TestApplyLoadScript(t *testing.T) {
	eng, vc := newTestCluster()
	vc.ApplyLoadScript(0, []LoadStep{
		{At: des.Second, Avail: 0.7},
		{At: 2 * des.Second, Avail: 0.3},
	})
	var at1, at2 float64
	eng.Schedule(des.Second+des.Millisecond, func() { at1 = vc.Availability(0) })
	eng.Schedule(2*des.Second+des.Millisecond, func() { at2 = vc.Availability(0) })
	eng.Run()
	if at1 != 0.7 || at2 != 0.3 {
		t.Fatalf("script: got %v, %v; want 0.7, 0.3", at1, at2)
	}
}

func TestRandomWalkLoadBoundsAndDeterminism(t *testing.T) {
	sample := func() []float64 {
		eng, vc := newTestCluster()
		vc.RandomWalkLoad(0, 0.8, 0.1, des.Second, 99)
		var samples []float64
		eng.Spawn("probe", func(p *des.Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(des.Second)
				samples = append(samples, vc.Availability(0))
			}
		})
		eng.RunUntil(60 * des.Second)
		eng.Shutdown()
		return samples
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] < minAvailability || a[i] > 1 {
			t.Fatalf("walk escaped bounds: %v", a[i])
		}
		if a[i] != b[i] {
			t.Fatalf("walk not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: work conservation. Whatever the task mix, total busy
// reference-seconds equals the total work submitted once everything
// completes.
func TestQuickWorkConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng, vc := newTestCluster()
		total := 0.0
		n := 1 + rng.Intn(6)
		node := rng.Intn(8)
		for i := 0; i < n; i++ {
			w := 0.1 + rng.Float64()*3
			total += w
			start := des.Time(rng.Intn(3)) * des.Second
			eng.Spawn("w", func(p *des.Proc) {
				p.Sleep(start)
				vc.CPU(node).Compute(p, w, 1.0)
			})
		}
		eng.Run()
		return math.Abs(vc.CPU(node).BusyRefSeconds()-total) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: elapsed time for a lone task is never shorter than work/rate
// (availability can only slow it down).
func TestQuickElapsedLowerBound(t *testing.T) {
	prop := func(w8, r8, a8 uint8) bool {
		w := 0.1 + float64(w8%50)/10
		r := 0.2 + float64(r8%20)/10
		a := 0.1 + 0.9*float64(a8%10)/10
		eng, vc := newTestCluster()
		eng.Schedule(0, func() { vc.SetAvailability(0, a) })
		var elapsed float64
		eng.Spawn("w", func(p *des.Proc) {
			start := p.Now()
			vc.CPU(0).Compute(p, w, r)
			elapsed = (p.Now() - start).Seconds()
		})
		eng.Run()
		return elapsed >= w/r-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProcessorSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, vc := newTestCluster()
		for j := 0; j < 16; j++ {
			eng.Spawn("w", func(p *des.Proc) {
				for k := 0; k < 10; k++ {
					vc.CPU(0).Compute(p, 0.01, 1.0)
				}
			})
		}
		eng.Run()
	}
}
