package vcluster

import (
	"math/rand"

	"cbes/internal/cluster"
	"cbes/internal/des"
)

// Cluster is a topology animated with per-node CPUs. Network transport is
// provided separately by internal/simnet; higher layers (internal/mpisim)
// combine the two.
type Cluster struct {
	Eng  *des.Engine
	Topo *cluster.Topology
	// cpus is one contiguous slice — per-node state lives in a single
	// allocation laid out by dense node ID, not one heap object per node.
	cpus []CPU
}

// New animates topo on the given engine with all nodes idle.
func New(eng *des.Engine, topo *cluster.Topology) *Cluster {
	c := &Cluster{Eng: eng, Topo: topo}
	c.cpus = make([]CPU, topo.NumNodes())
	for i := range c.cpus {
		c.cpus[i].init(eng, topo.Node(i))
	}
	return c
}

// CPU returns the CPU of node id. The pointer stays valid for the life of
// the cluster (the backing slice is never reallocated).
func (c *Cluster) CPU(id int) *CPU { return &c.cpus[id] }

// Availability reports node id's background availability (ground truth).
func (c *Cluster) Availability(id int) float64 { return c.cpus[id].Availability() }

// SetAvailability sets node id's background availability. Must be called
// from engine context.
func (c *Cluster) SetAvailability(id int, a float64) { c.cpus[id].SetAvailability(a) }

// Crash takes node id down (see CPU.Crash). Must be called from engine
// context.
func (c *Cluster) Crash(id int) { c.cpus[id].Crash() }

// Recover brings node id back up (see CPU.Recover). Must be called from
// engine context.
func (c *Cluster) Recover(id int) { c.cpus[id].Recover() }

// Down reports whether node id is crashed.
func (c *Cluster) Down(id int) bool { return c.cpus[id].Down() }

// LoadStep is one step of a piecewise-constant background-load script.
type LoadStep struct {
	At    des.Time // absolute simulated time
	Avail float64  // availability from At onwards
}

// ApplyLoadScript schedules the given availability steps for node id.
func (c *Cluster) ApplyLoadScript(id int, steps []LoadStep) {
	for _, s := range steps {
		s := s
		c.Eng.ScheduleAt(s.At, func() { c.cpus[id].SetAvailability(s.Avail) })
	}
}

// RandomWalkLoad drives node id's availability with a mean-reverting random
// walk sampled every interval: avail' = avail + pull·(mean−avail) + noise.
// It models the "routine operating-system processes" background of §5 when
// volatility is small, or a shared multi-user node when large. The walk is
// seeded, hence reproducible. It runs until the engine stops; call
// eng.Shutdown to reap the daemon.
func (c *Cluster) RandomWalkLoad(id int, mean, volatility float64, interval des.Time, seed int64) *des.Proc {
	rng := rand.New(rand.NewSource(seed))
	return c.Eng.Spawn("loadwalk", func(p *des.Proc) {
		avail := mean
		for {
			p.Sleep(interval)
			avail += 0.3*(mean-avail) + volatility*rng.NormFloat64()
			if avail > 1 {
				avail = 1
			}
			if avail < minAvailability {
				avail = minAvailability
			}
			c.cpus[id].SetAvailability(avail)
		}
	})
}
