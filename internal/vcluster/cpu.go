// Package vcluster animates a static cluster.Topology into a virtual
// cluster: per-node processor-sharing CPUs with background load, the
// substrate on which MPI-like applications execute and against which the
// CBES monitoring infrastructure takes measurements.
//
// This package (together with internal/simnet) is the substitution for the
// paper's physical Centurion and Orange Grove machines: it is deliberately
// richer than the CBES analytic model (timesharing, multi-core sharing,
// time-varying background load), so that CBES predictions carry genuine
// error, as they do against real hardware.
package vcluster

import (
	"fmt"
	"math"

	"cbes/internal/cluster"
	"cbes/internal/des"
)

// minAvailability is the floor on CPU availability: even a thrashing node
// makes some progress, and the CBES formula divides by ACPU.
const minAvailability = 0.02

// workEpsilon is the residual work below which a task counts as finished
// (guards against floating-point dust when several tasks end together).
const workEpsilon = 1e-9

// cpuTask is one process burst executing on a CPU. Finished tasks are
// recycled through the CPU's free list, so a *cpuTask is only valid while it
// sits in CPU.tasks.
type cpuTask struct {
	remaining float64 // reference-seconds of work left
	rate      float64 // reference-seconds executed per dedicated-core second
	proc      *des.Proc
	cpu       *CPU   // owner, for the pooled completion callback
	seq       uint64 // admission order; deterministic tie-break
}

// completeTask is the package-level completion callback: together with
// des.ScheduleArg it replaces the per-reschedule closure allocation.
func completeTask(a any) {
	t := a.(*cpuTask)
	t.cpu.complete(t)
}

// CPU models one node's processors as an egalitarian processor-sharing
// queue: n concurrent tasks on c cores each progress at
// rate · availability · min(1, c/n).
//
// Background (non-application) load is expressed as reduced availability:
// availability a means every core has only fraction a left for application
// tasks, exactly the quantity the paper's ACPU monitoring reports.
type CPU struct {
	eng   *des.Engine
	node  *cluster.Node
	avail float64
	// down marks a crashed node: tasks freeze (no progress, no completion
	// events) and sensors read zero availability until Recover.
	down bool
	// tasks is kept in admission order: a slice (not a map) so that
	// advance()'s floating-point accumulation visits tasks in a
	// deterministic order and per-burst bookkeeping stays allocation-free.
	tasks      []*cpuTask
	freeTasks  []*cpuTask // recycled bursts
	taskSeq    uint64
	completion *des.Event
	lastTouch  des.Time
	// busyRefSeconds accumulates executed work for utilization metrics.
	busyRefSeconds float64
}

// NewCPU creates an idle CPU for the given node at full availability.
func NewCPU(eng *des.Engine, node *cluster.Node) *CPU {
	c := &CPU{}
	c.init(eng, node)
	return c
}

// init makes c an idle CPU for the given node at full availability —
// the in-place form Cluster.New uses to lay CPUs out contiguously.
func (c *CPU) init(eng *des.Engine, node *cluster.Node) {
	c.eng, c.node, c.avail, c.lastTouch = eng, node, 1.0, eng.Now()
}

// Node returns the static description of the node this CPU belongs to.
func (c *CPU) Node() *cluster.Node { return c.node }

// Availability reports the fraction of each core not consumed by background
// load (the ground truth the monitoring sensors sample). A crashed node
// reports zero.
func (c *CPU) Availability() float64 {
	if c.down {
		return 0
	}
	return c.avail
}

// Down reports whether the node is crashed.
func (c *CPU) Down() bool { return c.down }

// Crash takes the node down: running tasks freeze in place (they resume
// from their residual work on Recover, modelling processes hung on a dead
// node rather than killed), and no new completions fire. Must be called
// from engine context.
func (c *CPU) Crash() {
	if c.down {
		return
	}
	c.advance()
	c.down = true
	c.reschedule()
}

// Recover brings a crashed node back at its configured availability;
// frozen tasks resume. Must be called from engine context.
func (c *CPU) Recover() {
	if !c.down {
		return
	}
	c.advance() // zero progress accrues while down; stamps lastTouch
	c.down = false
	c.reschedule()
}

// AvailableToNewTask reports the CPU share a newly arriving task would
// receive, accounting for both background load and tasks already running —
// the quantity an NWS-style CPU sensor measures and the ACPU_j term of
// eq. 5.
func (c *CPU) AvailableToNewTask() float64 {
	if c.down {
		return 0
	}
	n := len(c.tasks) + 1
	return c.avail * math.Min(1, float64(c.node.CPUs)/float64(n))
}

// Running reports the number of tasks currently executing.
func (c *CPU) Running() int { return len(c.tasks) }

// BusyRefSeconds reports the cumulative reference-seconds of application
// work this CPU has executed.
func (c *CPU) BusyRefSeconds() float64 {
	c.advance()
	return c.busyRefSeconds
}

// SetAvailability changes the background-load level. It must be called from
// engine context (an event callback or a simulated process).
func (c *CPU) SetAvailability(a float64) {
	if a < minAvailability {
		a = minAvailability
	}
	if a > 1 {
		a = 1
	}
	c.advance()
	c.avail = a
	c.reschedule()
}

// share is the per-task fraction of a dedicated core. Zero while the node
// is down: tasks make no progress and reschedule() arms no completion.
func (c *CPU) share() float64 {
	n := len(c.tasks)
	if n == 0 || c.down {
		return 0
	}
	return c.avail * math.Min(1, float64(c.node.CPUs)/float64(n))
}

// advance applies progress accrued since the last state change.
func (c *CPU) advance() {
	now := c.eng.Now()
	dt := (now - c.lastTouch).Seconds()
	c.lastTouch = now
	if dt <= 0 || len(c.tasks) == 0 {
		return
	}
	sh := c.share()
	for _, t := range c.tasks {
		done := t.rate * sh * dt
		if done > t.remaining {
			done = t.remaining
		}
		t.remaining -= done
		c.busyRefSeconds += done
	}
}

// reschedule recomputes the earliest task completion and (re)schedules the
// completion event.
func (c *CPU) reschedule() {
	if c.completion != nil {
		c.eng.Cancel(c.completion)
		c.completion = nil
	}
	if len(c.tasks) == 0 {
		return
	}
	sh := c.share()
	if sh == 0 {
		// Down node: tasks are frozen, no completion to arm until Recover.
		return
	}
	var next *cpuTask
	eta := math.Inf(1)
	for _, t := range c.tasks {
		e := t.remaining / (t.rate * sh)
		if e < eta || (e == eta && (next == nil || t.seq < next.seq)) {
			eta = e
			next = t
		}
	}
	// Round the wake-up up by one tick: FromSeconds truncates, and an event
	// that fires a hair early would make no progress and reschedule itself
	// forever. advance() clamps the 1 ns overshoot to the remaining work.
	c.completion = c.eng.ScheduleArg(des.FromSeconds(eta)+1, completeTask, next)
}

func (c *CPU) complete(t *cpuTask) {
	c.completion = nil
	c.advance()
	if t.remaining > workEpsilon {
		// Rounding left a sliver (or state changed at the same instant);
		// keep executing.
		c.reschedule()
		return
	}
	for i, x := range c.tasks {
		if x == t {
			copy(c.tasks[i:], c.tasks[i+1:])
			c.tasks[len(c.tasks)-1] = nil
			c.tasks = c.tasks[:len(c.tasks)-1]
			break
		}
	}
	c.reschedule()
	p := t.proc
	t.proc = nil
	t.cpu = nil
	c.freeTasks = append(c.freeTasks, t)
	p.Unpark()
}

// Compute blocks the calling process while it executes `work`
// reference-seconds at the given rate (reference-seconds of work retired
// per second of dedicated core). The elapsed simulated time depends on
// sharing and availability; the caller measures it with proc timestamps.
func (c *CPU) Compute(p *des.Proc, work, rate float64) {
	if work <= 0 {
		return
	}
	if rate <= 0 {
		panic(fmt.Sprintf("vcluster: Compute with rate %v on %s", rate, c.node.Name))
	}
	c.advance()
	c.taskSeq++
	var t *cpuTask
	if n := len(c.freeTasks); n > 0 {
		t = c.freeTasks[n-1]
		c.freeTasks[n-1] = nil
		c.freeTasks = c.freeTasks[:n-1]
	} else {
		t = &cpuTask{}
	}
	t.remaining, t.rate, t.proc, t.cpu, t.seq = work, rate, p, c, c.taskSeq
	c.tasks = append(c.tasks, t)
	c.reschedule()
	p.Park()
}

// ComputeDuration estimates, without simulating, how long `work`
// reference-seconds at `rate` would take on an otherwise-idle node at the
// current availability — used by calibration utilities and tests.
func (c *CPU) ComputeDuration(work, rate float64) des.Time {
	return des.FromSeconds(work / (rate * c.avail))
}
