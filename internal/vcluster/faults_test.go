package vcluster

import (
	"math"
	"testing"

	"cbes/internal/des"
)

func TestCrashFreezesRunningTask(t *testing.T) {
	// 4 ref-seconds of work; node crashes at t=1s and recovers at t=3s.
	// The task loses exactly the 2s outage: it finishes at t=6s.
	eng, vc := newTestCluster()
	var elapsed des.Time
	eng.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		vc.CPU(0).Compute(p, 4.0, 1.0)
		elapsed = p.Now() - start
	})
	eng.ScheduleAt(1*des.Second, func() { vc.Crash(0) })
	eng.ScheduleAt(3*des.Second, func() { vc.Recover(0) })
	eng.Run()
	if got := elapsed.Seconds(); math.Abs(got-6.0) > 1e-6 {
		t.Fatalf("elapsed = %v, want 6s (4s work + 2s outage)", got)
	}
}

func TestCrashZeroesAvailability(t *testing.T) {
	eng, vc := newTestCluster()
	eng.ScheduleAt(des.Second, func() { vc.Crash(2) })
	eng.RunUntil(2 * des.Second)
	if !vc.Down(2) {
		t.Fatal("node should report down")
	}
	if got := vc.Availability(2); got != 0 {
		t.Fatalf("down availability = %v, want 0", got)
	}
	if got := vc.CPU(2).AvailableToNewTask(); got != 0 {
		t.Fatalf("down AvailableToNewTask = %v, want 0", got)
	}
	eng.ScheduleAt(3*des.Second, func() { vc.Recover(2) })
	eng.RunUntil(4 * des.Second)
	if vc.Down(2) {
		t.Fatal("node should be back up")
	}
	if got := vc.Availability(2); got != 1 {
		t.Fatalf("recovered availability = %v, want 1", got)
	}
}

func TestCrashWithoutRecoverNeverCompletes(t *testing.T) {
	eng, vc := newTestCluster()
	done := false
	eng.Spawn("w", func(p *des.Proc) {
		vc.CPU(0).Compute(p, 1.0, 1.0)
		done = true
	})
	eng.ScheduleAt(des.Second/2, func() { vc.Crash(0) })
	eng.RunUntil(1000 * des.Second)
	if done {
		t.Fatal("task completed on a crashed node")
	}
	eng.Shutdown()
}

func TestRecoverIdempotent(t *testing.T) {
	eng, vc := newTestCluster()
	eng.ScheduleAt(des.Second, func() {
		vc.Recover(0) // recover while up: no-op
		vc.Crash(0)
		vc.Crash(0) // double crash: no-op
		vc.Recover(0)
	})
	eng.RunUntil(2 * des.Second)
	if vc.Down(0) {
		t.Fatal("node should be up after crash+recover")
	}
	if got := vc.Availability(0); got != 1 {
		t.Fatalf("availability = %v, want 1", got)
	}
}
