package batch

import (
	"testing"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/des"
	"cbes/internal/netmodel"
)

// BenchmarkBatchQueueCBES measures a 6-job stream placed by the CBES
// policy on the live cluster — the workload-manager integration path.
func BenchmarkBatchQueueCBES(b *testing.B) {
	prog := testJobProg()
	var model *netmodel.Model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := cbes.NewSystem(slowFirstTopo(), cbes.Config{})
		if model == nil {
			model = sys.Calibrate(bench.Options{Reps: 3})
		} else if err := sys.UseModel(model); err != nil {
			b.Fatal(err)
		}
		sys.MustProfile(prog, []int{4, 5, 6, 7})
		js := jobs(prog, 6, des.Second)
		b.StartTimer()
		if _, err := Run(sys, CBESPolicy{}, js, int64(i)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		sys.Close()
		b.StartTimer()
	}
}
