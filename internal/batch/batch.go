// Package batch is a workload-manager harness over the CBES service: a
// stream of parallel jobs arrives at a shared cluster and a placement
// policy assigns each job's ranks to free nodes. It reproduces the paper's
// introductory positioning — parallel runtime systems "select nodes
// round-robin from the same node list they use for system booting,
// regardless of resource availability", workload managers maximize
// throughput rather than application performance, while CBES schedules
// each application for its own maximum benefit.
//
// Jobs space-share the cluster (a node runs at most one job at a time, the
// usual batch-queue discipline); queued jobs start FIFO as nodes free up.
// Everything runs on the live simulated cluster, so placements contend for
// links and background load realistically.
package batch

import (
	"fmt"
	"sort"

	"cbes"
	"cbes/internal/accuracy"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/schedule"
	"cbes/internal/workloads"
)

// Job is one submission.
type Job struct {
	// ID is assigned by the runner in submission order.
	ID int
	// Prog must be profiled in the System before Run (policy "cbes").
	Prog workloads.Program
	// Submit is the arrival time.
	Submit des.Time
}

// JobResult records one job's life cycle.
type JobResult struct {
	ID      int
	Name    string
	Submit  des.Time
	Start   des.Time
	End     des.Time
	Mapping core.Mapping
	// Predicted is the CBES estimate for the placed mapping at start time
	// (0 when no prediction was possible); PredictionID keys the pair in
	// the accuracy ledger, where the measured runtime is joined back on
	// completion. Every policy is audited, including the prediction-blind
	// ones — that contrast is the point.
	Predicted    float64
	PredictionID string
}

// Wait is the queueing delay before the job started.
func (r JobResult) Wait() des.Time { return r.Start - r.Submit }

// Turnaround is submission-to-completion.
func (r JobResult) Turnaround() des.Time { return r.End - r.Submit }

// Policy selects nodes for a job from the currently free set.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Place returns a mapping using only nodes from free (each at most
	// once). It must return an error if it cannot place the job.
	Place(sys *cbes.System, job *Job, free []int, seed int64) (core.Mapping, error)
}

// RoundRobin is the naive PVM/MPI-style placement: the first free nodes in
// boot-list (ID) order, regardless of architecture or topology.
type RoundRobin struct{}

// Name identifies the policy.
func (RoundRobin) Name() string { return "round-robin" }

// Place takes the lowest-ID free nodes.
func (RoundRobin) Place(_ *cbes.System, job *Job, free []int, _ int64) (core.Mapping, error) {
	if len(free) < job.Prog.Ranks {
		return nil, fmt.Errorf("batch: %d free nodes < %d ranks", len(free), job.Prog.Ranks)
	}
	sorted := append([]int(nil), free...)
	sort.Ints(sorted)
	return core.Mapping(sorted[:job.Prog.Ranks]), nil
}

// FastestNodes picks the computationally fastest free nodes (a
// throughput-style heuristic: speed-aware but communication-blind, like
// NCS).
type FastestNodes struct{}

// Name identifies the policy.
func (FastestNodes) Name() string { return "fastest-nodes" }

// Place sorts free nodes by descending speed (ID as tie-break).
func (FastestNodes) Place(sys *cbes.System, job *Job, free []int, _ int64) (core.Mapping, error) {
	if len(free) < job.Prog.Ranks {
		return nil, fmt.Errorf("batch: %d free nodes < %d ranks", len(free), job.Prog.Ranks)
	}
	sorted := append([]int(nil), free...)
	sort.Slice(sorted, func(i, j int) bool {
		si, sj := sys.Topo.Node(sorted[i]).Speed, sys.Topo.Node(sorted[j]).Speed
		if si != sj {
			return si > sj
		}
		return sorted[i] < sorted[j]
	})
	return core.Mapping(sorted[:job.Prog.Ranks]), nil
}

// CBESPolicy runs the CS scheduler over the free pool under current
// monitored conditions.
type CBESPolicy struct {
	// Effort is the SA evaluation budget (default 8000).
	Effort int
	// Restarts spreads the budget over independent anneals (default 8 —
	// placement decisions are rare and worth the robustness against
	// basin capture).
	Restarts int
}

// Name identifies the policy.
func (CBESPolicy) Name() string { return "cbes-cs" }

// Place schedules with simulated annealing on the free pool.
func (p CBESPolicy) Place(sys *cbes.System, job *Job, free []int, seed int64) (core.Mapping, error) {
	if len(free) < job.Prog.Ranks {
		return nil, fmt.Errorf("batch: %d free nodes < %d ranks", len(free), job.Prog.Ranks)
	}
	eval, err := sys.Evaluator(job.Prog.Name)
	if err != nil {
		return nil, err
	}
	effort := p.Effort
	if effort <= 0 {
		effort = 8000
	}
	restarts := p.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	dec, err := schedule.SimulatedAnnealing(&schedule.Request{
		Eval:     eval,
		Snap:     sys.Snapshot(),
		Pool:     free,
		Seed:     seed,
		Effort:   effort,
		Restarts: restarts,
	})
	if err != nil {
		return nil, err
	}
	return dec.Mapping, nil
}

// Report summarises a completed batch run.
type Report struct {
	Policy string
	Jobs   []JobResult
	// Makespan is first-submit to last-completion.
	Makespan des.Time
	// MeanTurnaround and MeanWait are averages over jobs.
	MeanTurnaround des.Time
	MeanWait       des.Time
}

// Run submits the jobs to the system under the policy and drives the
// simulation until every job completes. Jobs must fit the cluster
// (Ranks <= nodes). The System must already be calibrated with every
// program profiled.
func Run(sys *cbes.System, policy Policy, jobs []Job, seed int64) (*Report, error) {
	n := sys.Topo.NumNodes()
	if len(jobs) == 0 {
		return nil, fmt.Errorf("batch: no jobs")
	}
	for i := range jobs {
		if jobs[i].Prog.Ranks > n {
			return nil, fmt.Errorf("batch: job %q needs %d ranks, cluster has %d nodes",
				jobs[i].Prog.Name, jobs[i].Prog.Ranks, n)
		}
	}
	busy := make([]bool, n)
	var queue []*Job
	results := make([]JobResult, len(jobs))
	remaining := len(jobs)

	freeNodes := func() []int {
		var free []int
		for i := 0; i < n; i++ {
			if !busy[i] {
				free = append(free, i)
			}
		}
		return free
	}

	var placeErr error
	// tryStart launches every queued job that fits, FIFO. Called from
	// engine context.
	var tryStart func()
	tryStart = func() {
		for len(queue) > 0 && placeErr == nil {
			job := queue[0]
			free := freeNodes()
			if len(free) < job.Prog.Ranks {
				return // head-of-line blocking, standard FIFO
			}
			mapping, err := policy.Place(sys, job, free, seed+int64(job.ID))
			if err != nil {
				placeErr = err
				return
			}
			queue = queue[1:]
			for _, node := range mapping {
				if busy[node] {
					placeErr = fmt.Errorf("batch: policy %s reused busy node %d", policy.Name(), node)
					return
				}
				busy[node] = true
			}
			results[job.ID].Start = sys.Eng.Now()
			results[job.ID].Mapping = mapping.Clone()
			// Close the predicted-vs-actual loop: register the estimate for
			// the placed mapping now, join the measured runtime on
			// completion. Predict and Snapshot are engine-context-safe here
			// (Place may already call Snapshot on this path).
			if eval, err := sys.Evaluator(job.Prog.Name); err == nil {
				snap := sys.Snapshot()
				if pred, err := eval.Predict(mapping, snap); err == nil && pred.Seconds > 0 {
					results[job.ID].Predicted = pred.Seconds
					results[job.ID].PredictionID = accuracy.Default().Begin(accuracy.Prediction{
						App:       job.Prog.Name,
						Scheduler: "batch/" + policy.Name(),
						Degraded:  pred.Degraded,
						AgeBucket: accuracy.AgeBucket(snap.MaxAge(mapping)),
						Epoch:     snap.Epoch,
						Predicted: pred.Seconds,
					})
				}
			}
			w := sys.Launch(job.Prog, mapping)
			sys.Eng.Spawn(fmt.Sprintf("reaper-%d", job.ID), func(p *des.Proc) {
				w.WaitIn(p)
				results[job.ID].End = sys.Eng.Now()
				if id := results[job.ID].PredictionID; id != "" {
					ran := (results[job.ID].End - results[job.ID].Start).Seconds()
					accuracy.Default().Report(id, ran) //nolint:errcheck // eviction under load is fine
				}
				for _, node := range results[job.ID].Mapping {
					busy[node] = false
				}
				remaining--
				tryStart()
			})
		}
	}

	for i := range jobs {
		jobs[i].ID = i
		j := &jobs[i]
		results[i] = JobResult{ID: i, Name: j.Prog.Name, Submit: j.Submit}
		sys.Eng.ScheduleAt(j.Submit, func() {
			queue = append(queue, j)
			tryStart()
		})
	}

	for remaining > 0 && placeErr == nil {
		if !sys.Eng.Step(des.MaxTime) {
			return nil, fmt.Errorf("batch: deadlock with %d jobs unfinished", remaining)
		}
	}
	if placeErr != nil {
		return nil, placeErr
	}

	rep := &Report{Policy: policy.Name(), Jobs: results}
	var first, last des.Time = des.MaxTime, 0
	var sumT, sumW des.Time
	for _, r := range results {
		if r.Submit < first {
			first = r.Submit
		}
		if r.End > last {
			last = r.End
		}
		sumT += r.Turnaround()
		sumW += r.Wait()
	}
	rep.Makespan = last - first
	rep.MeanTurnaround = sumT / des.Time(len(results))
	rep.MeanWait = sumW / des.Time(len(results))
	return rep, nil
}

// Render formats the report.
func (r *Report) Render() string {
	out := fmt.Sprintf("policy %-14s makespan %9s  mean turnaround %9s  mean wait %9s\n",
		r.Policy, r.Makespan, r.MeanTurnaround, r.MeanWait)
	return out
}
