package batch

import (
	"testing"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/workloads"
)

// slowFirstTopo puts the slow Intel nodes at the low IDs, so a naive
// boot-list round-robin lands jobs on the worst hardware.
func slowFirstTopo() *cluster.Topology {
	b := cluster.NewBuilder("slowfirst")
	swA := b.Switch("swA", "3com-100", 24)
	swB := b.Switch("swB", "3com-100", 24)
	b.Uplink(swA, swB, cluster.BandwidthFast100, 5*des.Microsecond)
	for i := 0; i < 4; i++ {
		b.Node("i", cluster.ArchIntel, swA, cluster.BandwidthFast100, 5*des.Microsecond)
	}
	for i := 0; i < 4; i++ {
		b.Node("a", cluster.ArchAlpha, swB, cluster.BandwidthFast100, 5*des.Microsecond)
	}
	return b.Build()
}

func testJobProg() workloads.Program {
	return workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 4, Iterations: 12, ComputePerIter: 0.05, MsgSize: 16 << 10, MsgsPerIter: 1,
	})
}

// newBatchSystem calibrates and profiles on a fresh system.
func newBatchSystem(t *testing.T) (*cbes.System, workloads.Program) {
	t.Helper()
	sys := cbes.NewSystem(slowFirstTopo(), cbes.Config{})
	sys.Calibrate(bench.Options{Reps: 3})
	prog := testJobProg()
	sys.MustProfile(prog, []int{4, 5, 6, 7})
	return sys, prog
}

func jobs(prog workloads.Program, n int, gap des.Time) []Job {
	out := make([]Job, n)
	for i := range out {
		out[i] = Job{Prog: prog, Submit: des.Time(i) * gap}
	}
	return out
}

func TestRoundRobinCompletesAll(t *testing.T) {
	sys, prog := newBatchSystem(t)
	defer sys.Close()
	rep, err := Run(sys, RoundRobin{}, jobs(prog, 4, des.Second), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(rep.Jobs))
	}
	for _, r := range rep.Jobs {
		if r.End <= r.Start || r.Start < r.Submit {
			t.Fatalf("job %d times inconsistent: %+v", r.ID, r)
		}
	}
	if rep.Makespan <= 0 || rep.MeanTurnaround <= 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestSpaceSharingNeverOverlapsNodes(t *testing.T) {
	sys, prog := newBatchSystem(t)
	defer sys.Close()
	rep, err := Run(sys, RoundRobin{}, jobs(prog, 5, des.Millisecond), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Any two jobs overlapping in time must use disjoint nodes.
	for i, a := range rep.Jobs {
		for _, b := range rep.Jobs[i+1:] {
			if a.Start < b.End && b.Start < a.End {
				used := map[int]bool{}
				for _, n := range a.Mapping {
					used[n] = true
				}
				for _, n := range b.Mapping {
					if used[n] {
						t.Fatalf("jobs %d and %d share node %d while overlapping", a.ID, b.ID, n)
					}
				}
			}
		}
	}
}

func TestFIFOQueueing(t *testing.T) {
	sys, prog := newBatchSystem(t)
	defer sys.Close()
	// 8 nodes, 4 ranks per job: at most 2 concurrent; 4 jobs submitted at
	// once must queue and start in order.
	rep, err := Run(sys, RoundRobin{}, jobs(prog, 4, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	queued := 0
	for i := 1; i < len(rep.Jobs); i++ {
		if rep.Jobs[i].Start < rep.Jobs[i-1].Start {
			t.Fatalf("FIFO violated: job %d started before job %d", i, i-1)
		}
	}
	for _, r := range rep.Jobs {
		if r.Wait() > 0 {
			queued++
		}
	}
	if queued == 0 {
		t.Fatal("no job ever queued despite oversubscription")
	}
}

func TestCBESBeatsNaivePolicies(t *testing.T) {
	prog := testJobProg()
	run := func(p Policy) *Report {
		sys := cbes.NewSystem(slowFirstTopo(), cbes.Config{})
		defer sys.Close()
		sys.Calibrate(bench.Options{Reps: 3})
		sys.MustProfile(prog, []int{4, 5, 6, 7})
		rep, err := Run(sys, p, jobs(prog, 3, 30*des.Second), 1)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rr := run(RoundRobin{})
	fn := run(FastestNodes{})
	cb := run(CBESPolicy{})
	// Round-robin lands on the slow low-ID Intels; CBES must beat it
	// clearly, and must be at least as good as the speed-aware heuristic.
	if float64(cb.MeanTurnaround) > float64(rr.MeanTurnaround)*0.92 {
		t.Fatalf("CBES %v not clearly better than round-robin %v",
			cb.MeanTurnaround, rr.MeanTurnaround)
	}
	if float64(cb.MeanTurnaround) > float64(fn.MeanTurnaround)*1.02 {
		t.Fatalf("CBES %v worse than fastest-nodes %v", cb.MeanTurnaround, fn.MeanTurnaround)
	}
}

func TestPlacementErrors(t *testing.T) {
	sys, prog := newBatchSystem(t)
	defer sys.Close()
	big := workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 9, Iterations: 2, ComputePerIter: 0.01, MsgSize: 1024, MsgsPerIter: 1,
	})
	if _, err := Run(sys, RoundRobin{}, []Job{{Prog: big}}, 1); err == nil {
		t.Fatal("job larger than the cluster should fail")
	}
	// CBES policy on an unprofiled program must error.
	other := workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 2, Iterations: 2, ComputePerIter: 0.01, MsgSize: 1 << 20, MsgsPerIter: 1,
	})
	if _, err := Run(sys, CBESPolicy{}, []Job{{Prog: other}}, 1); err == nil {
		t.Fatal("unprofiled program should fail under the CBES policy")
	}
	_ = prog
}
