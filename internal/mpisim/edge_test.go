package mpisim

import (
	"testing"

	"cbes/internal/des"
)

// expectPanic runs fn and fails unless it panics.
func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s should panic", what)
		}
	}()
	fn()
}

func TestSendToSelfPanics(t *testing.T) {
	// Misuse panics fire inside the rank's own goroutine, so they must be
	// recovered there.
	vc, net := newWorldEnv()
	panicked := false
	Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			func() {
				defer func() { panicked = recover() != nil }()
				r.Send(0, 100)
			}()
		}
	}, Options{})
	if !panicked {
		t.Fatal("send to self should panic")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	vc, net := newWorldEnv()
	panicked := false
	Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			func() {
				defer func() { panicked = recover() != nil }()
				r.Send(1, -5)
			}()
			r.Send(1, 64) // unblock the peer
		} else {
			r.Recv(0)
		}
	}, Options{})
	if !panicked {
		t.Fatal("negative size should panic")
	}
}

func TestInvalidMappingPanics(t *testing.T) {
	vc, net := newWorldEnv()
	expectPanic(t, "invalid node", func() {
		Launch(vc, net, []int{0, 99}, func(r *Rank) {}, Options{})
	})
	expectPanic(t, "empty mapping", func() {
		Launch(vc, net, nil, func(r *Rank) {}, Options{})
	})
}

func TestDeadlockDetection(t *testing.T) {
	vc, net := newWorldEnv()
	w := Launch(vc, net, []int{0, 1}, func(r *Rank) {
		r.Recv(1 - r.ID()) // both wait forever: nobody sends
	}, Options{})
	expectPanic(t, "deadlocked world", func() { w.Wait() })
}

func TestZeroByteMessage(t *testing.T) {
	vc, net := newWorldEnv()
	res := Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0)
		} else {
			if got := r.Recv(0); got != 0 {
				t.Errorf("recv size = %d", got)
			}
		}
	}, Options{})
	if res.Elapsed <= 0 {
		t.Fatal("zero-byte message should still take overhead time")
	}
}

func TestSingleRankCollectivesNoOp(t *testing.T) {
	vc, net := newWorldEnv()
	res := Run(vc, net, []int{0}, func(r *Rank) {
		r.Barrier()
		r.Bcast(0, 1024)
		r.Reduce(0, 1024, 0.001)
		r.Allreduce(1024, 0.001)
		r.Allgather(1024)
		r.Alltoall(1024)
		r.Gather(0, 1024)
		r.Scatter(0, 1024)
	}, Options{})
	// No communication: only trivial time passes.
	if res.Elapsed > des.Millisecond {
		t.Fatalf("single-rank collectives took %v", res.Elapsed)
	}
}

func TestRankAccessors(t *testing.T) {
	vc, net := newWorldEnv()
	Run(vc, net, []int{3, 4}, func(r *Rank) {
		if r.Size() != 2 {
			t.Errorf("Size = %d", r.Size())
		}
		want := 3
		if r.ID() == 1 {
			want = 4
		}
		if r.NodeID() != want {
			t.Errorf("NodeID = %d, want %d", r.NodeID(), want)
		}
		if r.Arch() == "" {
			t.Error("empty arch")
		}
		if r.Now() < 0 {
			t.Error("negative time")
		}
	}, Options{})
}

func TestWorldResultAfterWaitIn(t *testing.T) {
	vc, net := newWorldEnv()
	w := Launch(vc, net, []int{0}, func(r *Rank) { r.Compute(0.5) }, Options{})
	var got *Result
	vc.Eng.Spawn("watcher", func(p *des.Proc) {
		w.WaitIn(p)
		got = w.Result()
	})
	vc.Eng.Run()
	if got == nil || got.Elapsed <= 0 {
		t.Fatalf("result = %+v", got)
	}
	// Result of an unfinished world panics.
	w2 := Launch(vc, net, []int{0}, func(r *Rank) { r.Compute(0.1) }, Options{})
	expectPanic(t, "unfinished Result", func() { w2.Result() })
	w2.Wait()
}
