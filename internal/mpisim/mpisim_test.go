package mpisim

import (
	"math"
	"testing"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
)

func newWorldEnv() (*vcluster.Cluster, *simnet.Network) {
	eng := des.NewEngine()
	topo := cluster.NewTestTopology()
	return vcluster.New(eng, topo), simnet.New(eng, topo)
}

func TestComputeOnly(t *testing.T) {
	vc, net := newWorldEnv()
	res := Run(vc, net, []int{0}, func(r *Rank) {
		r.Compute(3.0)
	}, Options{AppName: "solo"})
	if got := res.Elapsed.Seconds(); math.Abs(got-3.0) > 1e-6 {
		t.Fatalf("elapsed = %v, want 3s", got)
	}
	p := res.Trace.Segments[0].Procs[0]
	if got := p.Run.Seconds(); math.Abs(got-3.0) > 1e-6 {
		t.Fatalf("X = %v, want 3s", got)
	}
	if p.Overhead != 0 || p.Blocked != 0 {
		t.Fatalf("unexpected O=%v B=%v", p.Overhead, p.Blocked)
	}
}

func TestComputeSlowerOnIntel(t *testing.T) {
	vc, net := newWorldEnv()
	// Node 4 is Intel with speed 0.78: 1 ref-second takes 1/0.78 s.
	res := Run(vc, net, []int{4}, func(r *Rank) { r.Compute(1.0) }, Options{})
	want := 1.0 / 0.78
	if got := res.Elapsed.Seconds(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

func TestArchEfficiencyMultiplier(t *testing.T) {
	vc, net := newWorldEnv()
	opts := Options{ArchEff: map[cluster.Arch]float64{cluster.ArchAlpha: 0.5}}
	res := Run(vc, net, []int{0}, func(r *Rank) { r.Compute(1.0) }, opts)
	if got := res.Elapsed.Seconds(); math.Abs(got-2.0) > 1e-6 {
		t.Fatalf("elapsed = %v, want 2s with 0.5 efficiency", got)
	}
}

func TestEagerSendRecv(t *testing.T) {
	vc, net := newWorldEnv()
	var recvd int64
	res := Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1024)
		} else {
			recvd = r.Recv(0)
		}
	}, Options{})
	if recvd != 1024 {
		t.Fatalf("received %d bytes, want 1024", recvd)
	}
	// Receiver blocked some of the time, then paid overhead.
	p1 := res.Trace.Segments[0].Procs[1]
	if p1.Blocked <= 0 {
		t.Fatal("receiver never blocked")
	}
	if p1.Overhead <= 0 {
		t.Fatal("receiver paid no overhead")
	}
	// Sender's eager send does not block.
	p0 := res.Trace.Segments[0].Procs[0]
	if p0.Blocked != 0 {
		t.Fatalf("eager sender blocked %v", p0.Blocked)
	}
}

func TestRendezvousBlocksSender(t *testing.T) {
	vc, net := newWorldEnv()
	size := int64(1 << 20) // over the eager threshold
	res := Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, size)
		} else {
			r.Compute(0.5) // receiver is late: sender must wait
			r.Recv(0)
		}
	}, Options{})
	p0 := res.Trace.Segments[0].Procs[0]
	if p0.Blocked.Seconds() < 0.4 {
		t.Fatalf("rendezvous sender blocked only %v, want ~0.5s+transfer", p0.Blocked)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	vc, net := newWorldEnv()
	var sizes []int64
	Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			for i := 1; i <= 5; i++ {
				r.Send(1, int64(i*100))
			}
		} else {
			for i := 0; i < 5; i++ {
				sizes = append(sizes, r.Recv(0))
			}
		}
	}, Options{})
	for i, s := range sizes {
		if s != int64((i+1)*100) {
			t.Fatalf("out-of-order receive: %v", sizes)
		}
	}
}

func TestRecvBeforeSend(t *testing.T) {
	vc, net := newWorldEnv()
	res := Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1)
		} else {
			r.Compute(1.0)
			r.Send(0, 4096)
		}
	}, Options{})
	p0 := res.Trace.Segments[0].Procs[0]
	if p0.Blocked.Seconds() < 0.9 {
		t.Fatalf("early receiver blocked only %v", p0.Blocked)
	}
}

func TestPingPongLatencySameVsCrossSwitch(t *testing.T) {
	elapsed := func(mapping []int) float64 {
		vc, net := newWorldEnv()
		res := Run(vc, net, mapping, func(r *Rank) {
			for i := 0; i < 100; i++ {
				if r.ID() == 0 {
					r.Send(1, 1024)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, 1024)
				}
			}
		}, Options{})
		return res.Elapsed.Seconds()
	}
	same := elapsed([]int{0, 1})  // both on switch A
	cross := elapsed([]int{0, 4}) // across the uplink
	if cross <= same {
		t.Fatalf("cross-switch ping-pong (%v) not slower than same-switch (%v)", cross, same)
	}
}

func TestLoadInflatesLatency(t *testing.T) {
	run := func(avail float64) float64 {
		vc, net := newWorldEnv()
		vc.Eng.Schedule(0, func() { vc.SetAvailability(1, avail) })
		res := Run(vc, net, []int{0, 1}, func(r *Rank) {
			for i := 0; i < 50; i++ {
				if r.ID() == 0 {
					r.Send(1, 1024)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, 1024)
				}
			}
		}, Options{})
		return res.Elapsed.Seconds()
	}
	idle, loaded := run(1.0), run(0.5)
	if loaded <= idle {
		t.Fatalf("CPU load on peer did not inflate latency: idle %v, loaded %v", idle, loaded)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	vc, net := newWorldEnv()
	var after []float64
	Run(vc, net, []int{0, 1, 2, 3}, func(r *Rank) {
		r.Compute(float64(r.ID()) * 0.3) // staggered arrivals
		r.Barrier()
		after = append(after, r.Now().Seconds())
	}, Options{})
	// Everyone leaves the barrier at (nearly) the same time, after the
	// slowest arrival (0.9s).
	for _, a := range after {
		if a < 0.9 {
			t.Fatalf("rank left barrier at %v, before slowest arrival", a)
		}
	}
	min, max := after[0], after[0]
	for _, a := range after {
		min = math.Min(min, a)
		max = math.Max(max, a)
	}
	if max-min > 0.01 {
		t.Fatalf("barrier exit spread %v too large", max-min)
	}
}

func TestBcastReachesAll(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		vc, net := newWorldEnv()
		mapping := make([]int, n)
		for i := range mapping {
			mapping[i] = i % 8
		}
		counts := make([]int, n)
		Run(vc, net, mapping, func(r *Rank) {
			r.Bcast(0, 10000)
			counts[r.ID()]++
		}, Options{})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: rank %d finished %d times", n, i, c)
			}
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	vc, net := newWorldEnv()
	Run(vc, net, []int{0, 1, 2, 3, 4}, func(r *Rank) {
		r.Bcast(3, 5000)
	}, Options{})
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		vc, net := newWorldEnv()
		mapping := make([]int, n)
		for i := range mapping {
			mapping[i] = i % 8
		}
		Run(vc, net, mapping, func(r *Rank) {
			r.Reduce(0, 8192, 0.001)
			r.Allreduce(8192, 0.001)
		}, Options{})
	}
}

func TestAllgatherAndAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		vc, net := newWorldEnv()
		mapping := make([]int, n)
		for i := range mapping {
			mapping[i] = i % 8
		}
		res := Run(vc, net, mapping, func(r *Rank) {
			r.Allgather(4096)
			r.Alltoall(4096)
		}, Options{})
		// Alltoall: every ordered pair exchanged >= 1 message of 4096.
		for _, p := range res.Trace.Segments[0].Procs {
			peers := map[int]bool{}
			for _, g := range p.Sends {
				if g.Size == 4096 {
					peers[g.Peer] = true
				}
			}
			if len(peers) != n-1 {
				t.Fatalf("n=%d: rank %d alltoall+allgather sent 4096B to %d peers, want %d",
					n, p.Rank, len(peers), n-1)
			}
		}
	}
}

func TestGatherScatter(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		vc, net := newWorldEnv()
		mapping := make([]int, n)
		for i := range mapping {
			mapping[i] = i % 8
		}
		Run(vc, net, mapping, func(r *Rank) {
			r.Scatter(0, 2048)
			r.Gather(0, 2048)
			r.Scatter(2%n, 2048)
			r.Gather(2%n, 2048)
		}, Options{})
	}
}

func TestTournamentPairing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 9, 16} {
		met := map[[2]int]int{}
		for round := 0; round < tournamentRounds(n); round++ {
			for id := 0; id < n; id++ {
				peer := tournamentPeer(n, round, id)
				if peer == -1 {
					continue
				}
				if peer == id {
					t.Fatalf("n=%d round=%d: %d paired with itself", n, round, id)
				}
				if back := tournamentPeer(n, round, peer); back != id {
					t.Fatalf("n=%d round=%d: pairing not symmetric: %d->%d->%d", n, round, id, peer, back)
				}
				a, b := id, peer
				if a > b {
					a, b = b, a
				}
				met[[2]int{a, b}]++
			}
		}
		want := n * (n - 1) / 2
		if len(met) != want {
			t.Fatalf("n=%d: %d distinct pairs met, want %d", n, len(met), want)
		}
		for pair, c := range met {
			if c != 2 { // counted once from each side
				t.Fatalf("n=%d: pair %v met %d times (counted twice per meeting)", n, pair, c)
			}
		}
	}
}

func TestPhaseSegments(t *testing.T) {
	vc, net := newWorldEnv()
	res := Run(vc, net, []int{0, 1}, func(r *Rank) {
		r.Compute(0.1)
		r.Phase("solve")
		r.Compute(0.2)
		if r.ID() == 0 {
			r.Send(1, 512)
		} else {
			r.Recv(0)
		}
	}, Options{})
	if len(res.Trace.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(res.Trace.Segments))
	}
	if res.Trace.Segments[1].Name != "solve" {
		t.Fatalf("segment name = %q", res.Trace.Segments[1].Name)
	}
	// The 512-byte payload must land in the solve segment (alongside any
	// barrier tokens from the phase marker itself).
	found := false
	for _, g := range res.Trace.Segments[1].Procs[0].Sends {
		if g.Size == 512 && g.Peer == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("send not attributed to the solve segment")
	}
	for _, g := range res.Trace.Segments[0].Procs[0].Sends {
		if g.Size == 512 {
			t.Fatal("payload leaked into the pre-phase segment")
		}
	}
}

func TestDualCPUCoLocation(t *testing.T) {
	// Two ranks on one dual-CPU Intel node run at full per-core speed;
	// on a single-CPU Alpha they timeshare.
	run := func(node int) float64 {
		vc, net := newWorldEnv()
		res := Run(vc, net, []int{node, node}, func(r *Rank) { r.Compute(1.0) }, Options{})
		return res.Elapsed.Seconds()
	}
	intel := run(4) // dual CPU, speed 0.78 -> ~1.28s
	alpha := run(0) // single CPU, shared -> ~2s
	if !(intel < alpha) {
		t.Fatalf("dual-CPU co-location (%v) should beat single-CPU (%v)", intel, alpha)
	}
	if math.Abs(alpha-2.0) > 1e-3 {
		t.Fatalf("single-CPU co-located elapsed = %v, want ~2s", alpha)
	}
}

func TestTraceAccountingConservation(t *testing.T) {
	vc, net := newWorldEnv()
	res := Run(vc, net, []int{0, 1, 4, 5}, func(r *Rank) {
		r.Compute(0.05)
		r.Alltoall(50000)
		r.Barrier()
		r.Compute(0.05)
	}, Options{})
	for _, p := range res.Trace.Segments[0].Procs {
		total := p.Busy()
		if d := (total - res.Elapsed).Seconds(); math.Abs(d) > 1e-6 {
			t.Fatalf("rank %d accounting %v != elapsed %v", p.Rank, total, res.Elapsed)
		}
	}
}

func TestWorldReuseEngine(t *testing.T) {
	// Two sequential app runs on the same virtual cluster must work and not
	// interfere.
	vc, net := newWorldEnv()
	r1 := Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 128)
		} else {
			r.Recv(0)
		}
	}, Options{AppName: "first"})
	r2 := Run(vc, net, []int{2, 3}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 128)
		} else {
			r.Recv(0)
		}
	}, Options{AppName: "second"})
	if r2.Start < r1.End {
		t.Fatalf("second run started at %v before first ended at %v", r2.Start, r1.End)
	}
	if r1.Trace.App != "first" || r2.Trace.App != "second" {
		t.Fatal("trace labels mixed up")
	}
}

func TestConcurrentWorldsContend(t *testing.T) {
	// Two apps running simultaneously on the same nodes slow each other
	// down versus running alone.
	solo := func() float64 {
		vc, net := newWorldEnv()
		res := Run(vc, net, []int{0, 1}, pingPong50k, Options{})
		return res.Elapsed.Seconds()
	}()
	vc, net := newWorldEnv()
	w1 := Launch(vc, net, []int{0, 1}, pingPong50k, Options{AppName: "w1"})
	w2 := Launch(vc, net, []int{0, 1}, pingPong50k, Options{AppName: "w2"})
	res1 := w1.Wait()
	res2 := w2.Wait()
	if res1.Elapsed.Seconds() <= solo || res2.Elapsed.Seconds() <= solo {
		t.Fatalf("concurrent worlds not contending: solo %v, w1 %v, w2 %v",
			solo, res1.Elapsed.Seconds(), res2.Elapsed.Seconds())
	}
}

func pingPong50k(r *Rank) {
	for i := 0; i < 20; i++ {
		r.Compute(0.01)
		if r.ID() == 0 {
			r.Send(1, 50000)
			r.Recv(1)
		} else {
			r.Recv(0)
			r.Send(0, 50000)
		}
	}
}

func BenchmarkPingPong(b *testing.B) {
	vc, net := newWorldEnv()
	for i := 0; i < b.N; i++ {
		Run(vc, net, []int{0, 4}, func(r *Rank) {
			for k := 0; k < 10; k++ {
				if r.ID() == 0 {
					r.Send(1, 1024)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, 1024)
				}
			}
		}, Options{})
	}
}

func BenchmarkAlltoall8(b *testing.B) {
	vc, net := newWorldEnv()
	mapping := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < b.N; i++ {
		Run(vc, net, mapping, func(r *Rank) { r.Alltoall(8192) }, Options{})
	}
}
