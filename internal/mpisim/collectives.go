package mpisim

// Collective operations implemented over blocking point-to-point, with the
// classic algorithms of early-2000s MPI implementations (LAM/MPI vintage):
// dissemination barrier, binomial-tree broadcast/reduce/gather/scatter,
// recursive-doubling allreduce, ring allgather, and pairwise-exchange
// alltoall. All ranks of the world must call the collective.

// barrierToken is the size of barrier/control messages.
const barrierToken int64 = 8

// Barrier blocks until every rank reaches it (dissemination algorithm:
// ceil(log2 n) rounds of token exchanges).
func (r *Rank) Barrier() {
	n := r.Size()
	if n == 1 {
		return
	}
	for dist := 1; dist < n; dist *= 2 {
		to := (r.id + dist) % n
		from := (r.id - dist + n) % n
		if to == r.id {
			continue
		}
		// Token sends are eager-size, so Send never blocks on the matching
		// Recv and the dissemination pattern cannot deadlock.
		r.Send(to, barrierToken)
		r.Recv(from)
	}
}

// Bcast distributes size bytes from root to every rank via a binomial tree
// rooted at root.
func (r *Rank) Bcast(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	// Virtual rank with root at 0.
	vr := (r.id - root + n) % n
	// Receive from parent.
	if vr != 0 {
		mask := 1
		for vr&mask == 0 {
			mask *= 2
		}
		parent := ((vr - mask) + root) % n
		r.Recv(parent)
	}
	// Forward to children.
	mask := 1
	for vr&(mask-1) == 0 && mask < n {
		if vr&mask == 0 {
			child := vr + mask
			if child < n {
				r.Send((child+root)%n, size)
			}
		} else {
			break
		}
		mask *= 2
	}
}

// Reduce combines size bytes from every rank onto root (reverse binomial
// tree) and charges combineRef seconds of computation per received
// contribution.
func (r *Rank) Reduce(root int, size int64, combineRef float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	vr := (r.id - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask == 0 {
			src := vr | mask
			if src < n {
				r.Recv((src + root) % n)
				if combineRef > 0 {
					r.Compute(combineRef)
				}
			}
		} else {
			parent := ((vr &^ mask) + root) % n
			r.Send(parent, size)
			break
		}
		mask *= 2
	}
}

// Allreduce combines size bytes across all ranks and leaves the result
// everywhere, using recursive doubling when the world is a power of two and
// reduce+broadcast otherwise. combineRef seconds of computation are charged
// per combining step.
func (r *Rank) Allreduce(size int64, combineRef float64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) == 0 {
		for mask := 1; mask < n; mask *= 2 {
			peer := r.id ^ mask
			r.SendRecv(peer, size, size)
			if combineRef > 0 {
				r.Compute(combineRef)
			}
		}
		return
	}
	r.Reduce(0, size, combineRef)
	r.Bcast(0, size)
}

// Allgather circulates each rank's size-byte contribution around a ring
// (n-1 steps), leaving all contributions everywhere.
func (r *Rank) Allgather(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	for step := 0; step < n-1; step++ {
		if r.id%2 == 0 {
			r.Send(right, size)
			r.Recv(left)
		} else {
			r.Recv(left)
			r.Send(right, size)
		}
	}
}

// tournamentPeer returns id's partner in round `round` of a round-robin
// tournament over n players (circle method), or -1 if id sits the round out
// (odd n only). Every round is a perfect matching, so pairwise SendRecv
// exchanges cannot deadlock; across rounds 0..rounds(n)-1 every pair meets
// exactly once.
func tournamentPeer(n, round, id int) int {
	m := n
	if m%2 == 1 {
		m++ // add a dummy player; pairing with it means sitting idle
	}
	rr := round % (m - 1)
	var peer int
	switch {
	case id == m-1:
		peer = rr
	case id == rr:
		peer = m - 1
	default:
		// Pairs (rr+k, rr-k) mod (m-1); solving for id's partner:
		peer = (2*rr - id + 2*(m-1)) % (m - 1)
	}
	if peer >= n {
		return -1 // paired with the dummy
	}
	return peer
}

// tournamentRounds reports the number of rounds needed for all pairs.
func tournamentRounds(n int) int {
	if n%2 == 0 {
		return n - 1
	}
	return n
}

// Alltoall exchanges size bytes between every ordered pair of ranks using
// round-robin tournament rounds of pairwise exchanges — each round is a
// perfect matching, so the blocking exchanges cannot deadlock.
func (r *Rank) Alltoall(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	for round := 0; round < tournamentRounds(n); round++ {
		peer := tournamentPeer(n, round, r.id)
		if peer < 0 || peer == r.id {
			continue
		}
		r.SendRecv(peer, size, size)
	}
}

// Gather collects size bytes from every rank onto root along a binomial
// tree; intermediate nodes forward aggregated payloads.
func (r *Rank) Gather(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	vr := (r.id - root + n) % n
	mask := 1
	carried := size
	for mask < n {
		if vr&mask == 0 {
			src := vr | mask
			if src < n {
				sz := r.Recv((src + root) % n)
				carried += sz
			}
		} else {
			parent := ((vr &^ mask) + root) % n
			r.Send(parent, carried)
			break
		}
		mask *= 2
	}
}

// Scatter distributes size bytes per rank from root along a binomial tree;
// internal nodes receive their whole subtree's payload and split it.
func (r *Rank) Scatter(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	vr := (r.id - root + n) % n
	// Receive the whole subtree payload from the parent.
	if vr != 0 {
		mask := 1
		for vr&mask == 0 {
			mask *= 2
		}
		parent := ((vr - mask) + root) % n
		r.Recv(parent)
	}
	// Forward halves to children.
	mask := 1
	for vr&(mask-1) == 0 && mask < n {
		if vr&mask == 0 {
			child := vr + mask
			if child < n {
				// Child's subtree spans min(mask, n-child) ranks.
				span := mask
				if child+span > n {
					span = n - child
				}
				r.Send((child+root)%n, size*int64(span))
			}
		} else {
			break
		}
		mask *= 2
	}
}
