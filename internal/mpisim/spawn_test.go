package mpisim

import (
	"testing"
)

func TestDynamicWorldSpawn(t *testing.T) {
	vc, net := newWorldEnv()
	childDone := false
	parentSaw := false
	res := Run(vc, net, []int{0, 1}, func(r *Rank) {
		if r.ID() == 0 {
			// MPI-2-style dynamic process creation: rank 0 launches a
			// 2-rank child application on other nodes and joins it.
			child := r.SpawnWorld([]int{2, 3}, func(c *Rank) {
				c.Compute(0.5)
				if c.ID() == 0 {
					c.Send(1, 1024)
				} else {
					c.Recv(0)
				}
				childDone = true
			}, Options{AppName: "child"})
			r.Compute(0.1)
			r.AwaitWorld(child)
			parentSaw = child.Done()
		}
		r.Barrier()
	}, Options{AppName: "parent"})

	if !childDone {
		t.Fatal("child world never ran")
	}
	if !parentSaw {
		t.Fatal("AwaitWorld returned before the child finished")
	}
	// Parent elapsed covers the child's 0.5s compute.
	if res.Elapsed.Seconds() < 0.5 {
		t.Fatalf("parent elapsed %v should cover the awaited child", res.Elapsed)
	}
	// The parent rank's wait is accounted as blocked time.
	p0 := res.Trace.Segments[0].Procs[0]
	if p0.Blocked.Seconds() < 0.3 {
		t.Fatalf("parent blocked only %v while awaiting child", p0.Blocked)
	}
}

func TestAwaitFinishedWorldReturnsImmediately(t *testing.T) {
	vc, net := newWorldEnv()
	Run(vc, net, []int{0}, func(r *Rank) {
		child := r.SpawnWorld([]int{1}, func(c *Rank) { c.Compute(0.01) }, Options{})
		r.Compute(1.0) // child certainly finished by now
		before := r.Now()
		r.AwaitWorld(child)
		if r.Now() != before {
			t.Error("await of a finished world should not block")
		}
	}, Options{})
}

func TestSpawnedWorldContendsWithParent(t *testing.T) {
	// Child mapped onto the parent's own node: CPU sharing slows both.
	vc, net := newWorldEnv()
	res := Run(vc, net, []int{0}, func(r *Rank) {
		child := r.SpawnWorld([]int{0}, func(c *Rank) { c.Compute(1.0) }, Options{})
		r.Compute(1.0)
		r.AwaitWorld(child)
	}, Options{})
	// Two 1s tasks timesharing one CPU: ~2s total.
	if got := res.Elapsed.Seconds(); got < 1.9 {
		t.Fatalf("elapsed %v: no contention between parent and child", got)
	}
}
