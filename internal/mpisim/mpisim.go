// Package mpisim executes MPI-like parallel programs on the virtual
// cluster: each rank is a simulated process on its mapped node, exchanging
// messages through internal/simnet with LAM/MPI-style blocking,
// standard-mode semantics (eager below a threshold, rendezvous above), and
// collectives built over point-to-point.
//
// While a program runs, an internal/trace.Recorder classifies every rank's
// time into the paper's three buckets — running application code (X),
// executing message-passing library code (O), and blocked on communication
// (B) — and aggregates per-peer same-size message groups. The resulting
// trace is exactly what the CBES application-profiling subsystem consumes.
//
// Per-message software overheads are charged to the node CPUs, so CPU load
// (background processes or co-located ranks) inflates end-to-end latency,
// which is the load effect the CBES latency model corrects for.
package mpisim

import (
	"fmt"
	"sync"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/simnet"
	"cbes/internal/trace"
	"cbes/internal/vcluster"
)

// DefaultEagerThreshold is the message size at and below which sends are
// eager (buffered): the sender proceeds once the message is injected.
// Larger messages use a rendezvous protocol and block the sender until the
// transfer completes.
const DefaultEagerThreshold int64 = 64 << 10

// rtsSize is the size of the rendezvous request-to-send control message.
const rtsSize int64 = 64

// Options configures a program execution.
type Options struct {
	// EagerThreshold overrides DefaultEagerThreshold when > 0.
	EagerThreshold int64
	// ArchEff maps architecture -> application-specific efficiency
	// multiplier on top of the architecture's base speed (cache fit,
	// vectorization, ...). Missing entries default to 1.0.
	ArchEff map[cluster.Arch]float64
	// AppName labels the trace.
	AppName string
	// RecordIntervals retains the full per-rank state timeline in the
	// trace (for XMPI-style visualization); off by default.
	RecordIntervals bool
}

func (o *Options) eager() int64 {
	if o.EagerThreshold > 0 {
		return o.EagerThreshold
	}
	return DefaultEagerThreshold
}

// Result summarises one program execution.
type Result struct {
	Trace   *trace.Trace
	Start   des.Time
	End     des.Time
	Elapsed des.Time
}

// World is one running application instance: a set of ranks on mapped
// nodes.
type World struct {
	vc      *vcluster.Cluster
	net     *simnet.Network
	mapping []int
	opts    Options
	ranks   []*Rank
	rec     *trace.Recorder
	start   des.Time
	end     des.Time
	left    int // ranks still executing
	doneSig des.Signal
}

// message is an in-flight or buffered point-to-point message. Consumed
// messages are recycled through msgPool, so a *message is only valid while
// it sits in an inbox.
type message struct {
	src, dst int
	size     int64
	peer     *Rank // receiving rank (for the pooled delivery callbacks)
	// rendezvous bookkeeping
	rendezvous bool
	sender     *Rank // parked sender (rendezvous only)
	arrived    bool  // payload fully delivered
}

// msgPool recycles message records across sends, worlds, and trials. Sharing
// it across engines is safe: messages carry no engine state once freed.
var msgPool = sync.Pool{New: func() any { return new(message) }}

func allocMsg() *message { return msgPool.Get().(*message) }

func freeMsg(m *message) {
	m.peer, m.sender = nil, nil
	m.rendezvous, m.arrived = false, false
	msgPool.Put(m)
}

// eagerArrived fires when an eager payload reaches the receiver's node.
func eagerArrived(a any) {
	m := a.(*message)
	m.arrived = true
	m.peer.tryWake(m.src)
}

// rtsArrived fires when a rendezvous request-to-send reaches the receiver:
// only then is the message announced in the inbox.
func rtsArrived(a any) {
	m := a.(*message)
	m.peer.inbox[m.src] = append(m.peer.inbox[m.src], m)
	m.peer.tryWake(m.src)
}

// payloadArrived fires when a pulled rendezvous payload completes.
func payloadArrived(a any) {
	m := a.(*message)
	m.arrived = true
	m.peer.tryWake(-2) // wake the dedicated wait in pullRendezvous
}

// Rank is one process of the application. Program bodies receive their Rank
// and use its methods exclusively; all methods block in simulated time.
type Rank struct {
	w    *World
	id   int
	node int
	cpu  *vcluster.CPU
	proc *des.Proc
	rate float64
	ai   cluster.ArchInfo

	inbox   [][]*message // arrived/announced messages, indexed by source rank
	waitSrc int          // source a pending Recv waits on, -1 if none
}

// Launch creates a world for body on the given mapping (rank -> node) and
// starts all ranks at the current simulated time. Use Run for the common
// run-to-completion case.
func Launch(vc *vcluster.Cluster, net *simnet.Network, mapping []int, body func(*Rank), opts Options) *World {
	if len(mapping) == 0 {
		panic("mpisim: empty mapping")
	}
	name := opts.AppName
	if name == "" {
		name = "app"
	}
	w := &World{
		vc:      vc,
		net:     net,
		mapping: append([]int(nil), mapping...),
		opts:    opts,
		start:   vc.Eng.Now(),
		left:    len(mapping),
	}
	w.rec = trace.NewRecorder(name, vc.Topo.Name, w.mapping, vc.Eng.Now)
	if opts.RecordIntervals {
		w.rec.EnableIntervals()
	}
	w.ranks = make([]*Rank, len(mapping))
	for i, node := range w.mapping {
		if node < 0 || node >= vc.Topo.NumNodes() {
			panic(fmt.Sprintf("mpisim: rank %d mapped to invalid node %d", i, node))
		}
		n := vc.Topo.Node(node)
		eff := 1.0
		if opts.ArchEff != nil {
			if v, ok := opts.ArchEff[n.Arch]; ok {
				eff = v
			}
		}
		r := &Rank{
			w:       w,
			id:      i,
			node:    node,
			cpu:     vc.CPU(node),
			rate:    n.Speed * eff,
			ai:      vc.Topo.ArchInfo(n.Arch),
			inbox:   make([][]*message, len(mapping)),
			waitSrc: -1,
		}
		w.ranks[i] = r
		rr := r
		r.proc = vc.Eng.Spawn(fmt.Sprintf("%s.r%d", name, i), func(p *des.Proc) {
			rr.proc = p
			rr.w.rec.SetState(rr.id, trace.StateRun)
			body(rr)
			rr.w.rankDone()
		})
	}
	return w
}

func (w *World) rankDone() {
	w.left--
	if w.left == 0 {
		w.end = w.vc.Eng.Now()
		w.doneSig.Broadcast()
	}
}

// Done reports whether every rank has finished.
func (w *World) Done() bool { return w.left == 0 }

// WaitIn parks the given simulated process until the world completes
// (returns immediately if it already has). It is the proc-level form of
// Rank.AwaitWorld, for daemons that supervise application runs.
func (w *World) WaitIn(p *des.Proc) {
	if w.Done() {
		return
	}
	w.doneSig.Wait(p)
}

// Result assembles the result of a completed world (panics if unfinished);
// use after WaitIn when driving the engine externally.
func (w *World) Result() *Result {
	if !w.Done() {
		panic("mpisim: Result of unfinished world")
	}
	return &Result{
		Trace:   w.rec.Finish(),
		Start:   w.start,
		End:     w.end,
		Elapsed: w.end - w.start,
	}
}

// Wait drives the engine until the world completes, then returns the
// result. Other simulation activity (monitors, background load) proceeds
// concurrently.
func (w *World) Wait() *Result {
	eng := w.vc.Eng
	for !w.Done() {
		if !eng.Step(des.MaxTime) {
			panic("mpisim: simulation deadlock: event queue empty with ranks unfinished")
		}
	}
	return &Result{
		Trace:   w.rec.Finish(),
		Start:   w.start,
		End:     w.end,
		Elapsed: w.end - w.start,
	}
}

// Run executes body on the mapping to completion and returns the result.
func Run(vc *vcluster.Cluster, net *simnet.Network, mapping []int, body func(*Rank), opts Options) *Result {
	return Launch(vc, net, mapping, body, opts).Wait()
}

// ID reports the calling process's rank.
func (r *Rank) ID() int { return r.id }

// Size reports the number of ranks in the world.
func (r *Rank) Size() int { return len(r.w.ranks) }

// NodeID reports the cluster node this rank executes on.
func (r *Rank) NodeID() int { return r.node }

// Arch reports the architecture of this rank's node.
func (r *Rank) Arch() cluster.Arch { return r.w.vc.Topo.Node(r.node).Arch }

// Now reports the current simulated time.
func (r *Rank) Now() des.Time { return r.proc.Now() }

// Compute executes `refSeconds` of application computation (time the work
// takes on the reference architecture at full availability). Elapsed
// simulated time grows with slower architectures, background load, and CPU
// sharing.
func (r *Rank) Compute(refSeconds float64) {
	if refSeconds <= 0 {
		return
	}
	r.w.rec.SetState(r.id, trace.StateRun)
	r.cpu.Compute(r.proc, refSeconds, r.rate)
	r.w.rec.SetState(r.id, trace.StateRun)
}

// overhead charges d of message-passing library CPU time (at dedicated-CPU
// rate 1.0; load and sharing stretch it).
func (r *Rank) overhead(d des.Time) {
	if d <= 0 {
		return
	}
	r.w.rec.SetState(r.id, trace.StateOverhead)
	r.cpu.Compute(r.proc, d.Seconds(), 1.0)
}

// block parks the rank in the Blocked state until woken.
func (r *Rank) block() {
	r.w.rec.SetState(r.id, trace.StateBlocked)
	r.proc.Park()
}

// Send transmits size bytes to rank dst with blocking standard-mode
// semantics: eager below the threshold (returns after injection),
// rendezvous above (returns when the payload has been delivered).
func (r *Rank) Send(dst int, size int64) {
	if dst == r.id {
		panic("mpisim: send to self")
	}
	if size < 0 {
		panic("mpisim: negative message size")
	}
	peer := r.w.ranks[dst]
	r.w.rec.RecordSend(r.id, dst, size)
	r.w.rec.RecordRecv(dst, r.id, size)
	r.overhead(r.ai.SendOverhead)

	m := allocMsg()
	m.src, m.dst, m.size, m.peer = r.id, dst, size, peer

	if size <= r.w.opts.eager() {
		r.w.net.DeliverArg(r.node, peer.node, size, eagerArrived, m)
		peer.inbox[r.id] = append(peer.inbox[r.id], m)
		r.w.rec.SetState(r.id, trace.StateRun)
		return
	}

	// Rendezvous: announce with an RTS, then the receiver pulls the payload;
	// the sender blocks until delivery completes.
	m.rendezvous = true
	m.sender = r
	r.w.net.DeliverArg(r.node, peer.node, rtsSize, rtsArrived, m)
	r.block() // woken by completeRendezvous
	r.w.rec.SetState(r.id, trace.StateRun)
}

// tryWake unblocks a Recv waiting on src, if any.
func (r *Rank) tryWake(src int) {
	if r.waitSrc == src {
		r.waitSrc = -1
		r.proc.Unpark()
	}
}

// Recv blocks until a message from rank src is available and consumed.
// Messages from one source are consumed in send order. It returns the
// message size.
func (r *Rank) Recv(src int) int64 {
	if src == r.id {
		panic("mpisim: recv from self")
	}
	for {
		q := r.inbox[src]
		if len(q) > 0 {
			m := q[0]
			if m.rendezvous {
				r.inbox[src] = q[1:]
				r.pullRendezvous(m)
				size := m.size
				freeMsg(m)
				r.overhead(r.ai.RecvOverhead)
				r.w.rec.SetState(r.id, trace.StateRun)
				return size
			}
			if m.arrived {
				r.inbox[src] = q[1:]
				size := m.size
				freeMsg(m)
				r.overhead(r.ai.RecvOverhead)
				r.w.rec.SetState(r.id, trace.StateRun)
				return size
			}
		}
		// Nothing consumable yet: wait for the next arrival from src.
		r.waitSrc = src
		r.block()
	}
}

// pullRendezvous performs the payload transfer of an announced rendezvous
// message, blocking the receiver until delivery, then releasing the sender.
func (r *Rank) pullRendezvous(m *message) {
	sender := m.sender
	r.w.net.DeliverArg(sender.node, r.node, m.size, payloadArrived, m)
	for !m.arrived {
		r.waitSrc = -2
		r.block()
	}
	// Payload delivered: release the blocked sender.
	sender.proc.Unpark()
}

// SendRecv exchanges messages with peer, ordering the two blocking halves
// by rank parity to avoid rendezvous deadlock (the standard MPI trick for
// pairwise exchanges).
func (r *Rank) SendRecv(peer int, sendSize, recvSize int64) {
	if r.id < peer {
		r.Send(peer, sendSize)
		r.Recv(peer)
	} else {
		r.Recv(peer)
		r.Send(peer, sendSize)
	}
	_ = recvSize // sizes are symmetric in all call sites; kept for clarity
}

// Phase inserts a LAM-style phase marker: a barrier followed (on rank 0) by
// opening a new trace segment, so per-phase profiles can be extracted.
func (r *Rank) Phase(name string) {
	r.Barrier()
	if r.id == 0 {
		r.w.rec.BeginSegment(name)
	}
	r.Barrier()
}

// SpawnWorld launches a child application (MPI-2-style dynamic process
// creation, the paper's §8 extension): the child's ranks start immediately
// on their mapped nodes, contending with this world for CPUs and links.
// The parent continues; use AwaitWorld to join.
func (r *Rank) SpawnWorld(mapping []int, body func(*Rank), opts Options) *World {
	return Launch(r.w.vc, r.w.net, mapping, body, opts)
}

// AwaitWorld blocks (in the Blocked trace state) until the given world —
// typically one started with SpawnWorld — finishes.
func (r *Rank) AwaitWorld(w *World) {
	if w.Done() {
		return
	}
	r.w.rec.SetState(r.id, trace.StateBlocked)
	w.doneSig.Wait(r.proc)
	r.w.rec.SetState(r.id, trace.StateRun)
}
