// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, 95 % confidence intervals on means
// (as the paper reports throughout §5–6), percentiles, and fixed-width
// histograms (fig. 7).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the largest element (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// tTable95 holds two-sided 95 % critical values of Student's t for small
// degrees of freedom; beyond 30 we use the normal value 1.96.
var tTable95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95 % Student-t critical value for the
// given degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(tTable95) {
		return tTable95[df]
	}
	return 1.96
}

// CI95 returns the half-width of the 95 % confidence interval of the mean,
// mean ± CI95. For fewer than two samples it returns 0.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return TCritical95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// MeanCI returns the mean and the 95 % CI half-width together.
func MeanCI(xs []float64) (mean, ci float64) { return Mean(xs), CI95(xs) }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// FractionBelow reports the fraction of samples <= threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, x := range xs {
		if x <= threshold {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Histogram is a fixed-width bucketing of samples.
type Histogram struct {
	Lo, Hi float64 // covered range
	Counts []int   // one per bucket
	Under  int     // samples below Lo
	Over   int     // samples above Hi
}

// NewHistogram buckets xs into n equal-width buckets spanning [lo, hi].
func NewHistogram(xs []float64, lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram spec [%v,%v)/%d", lo, hi, n))
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			b := int((x - lo) / w)
			if b == n {
				b = n - 1
			}
			h.Counts[b]++
		}
	}
	return h
}

// BucketLo returns the lower edge of bucket i.
func (h *Histogram) BucketLo(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w
}

// Total reports the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Render draws the histogram as rows of '#' bars, one row per bucket, for
// terminal output (the fig. 7 reproduction).
func (h *Histogram) Render(width int) string {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		max = 1
	}
	out := ""
	for i, c := range h.Counts {
		bar := int(math.Round(float64(c) / float64(max) * float64(width)))
		out += fmt.Sprintf("%10.2f | %-*s %d\n", h.BucketLo(i), width, repeat('#', bar), c)
	}
	return out
}

func repeat(ch byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
