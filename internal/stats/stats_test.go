package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if s := StdDev(xs); !approx(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", s)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || CI95(nil) != 0 {
		t.Fatal("empty input should give zeros")
	}
	if Variance([]float64{3}) != 0 || CI95([]float64{3}) != 0 {
		t.Fatal("singleton variance/CI should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max sentinel wrong")
	}
}

func TestCI95KnownCase(t *testing.T) {
	// n=5, sd=1: CI = t(4)*1/sqrt(5) = 2.776/2.2360.
	xs := []float64{-1.264911064, -0.632455532, 0, 0.632455532, 1.264911064}
	sd := StdDev(xs)
	want := 2.776 * sd / math.Sqrt(5)
	if ci := CI95(xs); !approx(ci, want, 1e-9) {
		t.Fatalf("CI95 = %v, want %v", ci, want)
	}
}

func TestTCritical(t *testing.T) {
	if !math.IsNaN(TCritical95(0)) {
		t.Fatal("df=0 should be NaN")
	}
	if TCritical95(1) != 12.706 {
		t.Fatal("df=1 wrong")
	}
	if TCritical95(1000) != 1.96 {
		t.Fatal("large df should be 1.96")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5, 10: 1.4}
	for p, want := range cases {
		if got := Percentile(xs, p); !approx(got, want, 1e-12) {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if f := FractionBelow(xs, 2.5); !approx(f, 0.5, 1e-12) {
		t.Fatalf("FractionBelow = %v", f)
	}
	if f := FractionBelow(xs, 4); !approx(f, 1, 1e-12) {
		t.Fatalf("inclusive threshold: %v", f)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.7, 2.5, -1, 10}
	h := NewHistogram(xs, 0, 3, 3)
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if !approx(h.BucketLo(1), 1, 1e-12) {
		t.Fatalf("bucket lo = %v", h.BucketLo(1))
	}
	r := h.Render(20)
	if !strings.Contains(r, "#") || len(strings.Split(strings.TrimSpace(r), "\n")) != 3 {
		t.Fatalf("render:\n%s", r)
	}
}

func TestHistogramPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(nil, 1, 1, 4)
}

// Property: mean lies within [min, max]; CI is nonnegative; percentile is
// monotone in p.
func TestQuickSummaryInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		if CI95(xs) < 0 {
			return false
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < last-1e-9 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves sample count.
func TestQuickHistogramConserves(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*20 - 5
		}
		h := NewHistogram(xs, 0, 10, 7)
		return h.Total()+h.Under+h.Over == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
