package admission

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by Breaker.Allow while the breaker is open:
// recent calls failed consistently and the client fails fast instead of
// feeding an overloaded or dead server. The "cbes:" code prefix keeps it
// machine-matchable if it ever crosses a wire.
var ErrCircuitOpen = errors.New("cbes:circuit-open: client circuit breaker is open (recent calls failed)")

// RetryBudget is a token bucket bounding the *extra* load retries add:
// each retry spends one token, each success earns Ratio tokens. During
// an overload successes dry up, the bucket drains, and retries stop —
// the client degrades to one attempt per call instead of multiplying
// the offered load by its retry limit. A nil *RetryBudget always
// allows (retries bounded only by RetryPolicy.Max).
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

// NewRetryBudget builds a budget earning ratio tokens per success
// (default 0.1 when ratio <= 0 — one retry per ten successes), capped
// at 10 tokens and starting full so cold clients can still retry.
func NewRetryBudget(ratio float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	const max = 10
	return &RetryBudget{tokens: max, max: max, ratio: ratio}
}

// Allow spends one token if available, reporting whether the retry may
// proceed.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Earn credits the success ratio back into the bucket.
func (b *RetryBudget) Earn() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Breaker is a circuit breaker with half-open probing. Closed it passes
// everything; after Threshold consecutive failures it opens and fails
// fast for Cooldown; then it goes half-open and lets exactly one probe
// through — the probe's outcome closes the breaker or re-opens it for
// another cooldown. A nil *Breaker always allows.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int       // consecutive failures while closed
	openUntil time.Time // zero = closed
	probing   bool      // half-open probe in flight
}

// NewBreaker builds a breaker opening after threshold consecutive
// failures (default 8) for cooldown per trip (default 500ms).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 8
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may proceed: nil when allowed,
// ErrCircuitOpen when the breaker is open (or a half-open probe is
// already in flight). Every allowed call must be answered by exactly
// one Report.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return nil
	}
	if b.probing || time.Now().Before(b.openUntil) {
		return ErrCircuitOpen
	}
	b.probing = true // half-open: this caller is the single probe
	return nil
}

// Report records an allowed call's outcome and drives the state
// machine: a half-open probe success closes the breaker, a probe
// failure re-opens it for another cooldown; while closed, Threshold
// consecutive failures trip it open.
func (b *Breaker) Report(failure bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		b.probing = false
		if failure {
			b.openUntil = time.Now().Add(b.cooldown)
		} else {
			b.openUntil = time.Time{}
			b.failures = 0
		}
		return
	}
	if !b.openUntil.IsZero() {
		// Late report from a call admitted before the trip; the open
		// timer already governs recovery.
		return
	}
	if !failure {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
		b.failures = 0
	}
}
