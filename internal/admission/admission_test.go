package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, l *Limiter, class Class) *Ticket {
	t.Helper()
	tk, err := l.Acquire(context.Background(), class)
	if err != nil {
		t.Fatalf("Acquire(%v): %v", class, err)
	}
	if tk == nil {
		t.Fatalf("Acquire(%v): nil ticket from non-nil limiter", class)
	}
	return tk
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	tk, err := l.Acquire(context.Background(), Expensive)
	if err != nil || tk != nil {
		t.Fatalf("nil limiter Acquire = (%v, %v), want (nil, nil)", tk, err)
	}
	l.Release(tk) // must not panic
	if l.Limit() != 0 || l.Inflight() != 0 || l.ShedRatio() != 0 {
		t.Fatal("nil limiter accessors should report zero")
	}
}

func TestAdmitUpToLimitThenShed(t *testing.T) {
	l := New(Config{Initial: 2, Min: 1, Max: 4, MaxQueue: -1})
	a := mustAcquire(t, l, Expensive)
	b := mustAcquire(t, l, Expensive)
	if _, err := l.Acquire(context.Background(), Expensive); !errors.Is(err, ErrShed) {
		t.Fatalf("over-limit expensive with no queue: err = %v, want ErrShed", err)
	}
	l.Release(a)
	c := mustAcquire(t, l, Expensive)
	l.Release(b)
	l.Release(c)
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}
}

func TestCheapBrownoutLaneAndPriorityShed(t *testing.T) {
	l := New(Config{Initial: 1, Min: 1, Max: 1, MaxQueue: -1})
	exp := mustAcquire(t, l, Expensive) // fills the limit

	// The cheap class borrows exactly one slot past the limit...
	cheap := mustAcquire(t, l, Cheap)
	// ...but the lane is serial: a second cheap request sheds.
	if _, err := l.Acquire(context.Background(), Cheap); !errors.Is(err, ErrShed) {
		t.Fatalf("second cheap over limit: err = %v, want ErrShed", err)
	}
	l.Release(cheap)
	l.Release(exp)
}

func TestExpensiveQueueHandoffFIFO(t *testing.T) {
	l := New(Config{Initial: 1, Min: 1, Max: 1, MaxQueue: 4})
	first := mustAcquire(t, l, Expensive)

	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 2 {
				<-start // enqueue second waiter strictly after the first
			}
			tk := mustAcquire(t, l, Expensive)
			order <- i
			if i == 1 {
				close(start)
			}
			time.Sleep(5 * time.Millisecond)
			l.Release(tk)
		}(i)
	}
	// Wait until the first waiter is queued before releasing.
	deadline := time.Now().Add(time.Second)
	for l.queueLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	l.Release(first)
	wg.Wait()
	if a, b := <-order, <-order; a != 1 || b != 2 {
		t.Fatalf("hand-off order = %d,%d, want 1,2", a, b)
	}
}

func (l *Limiter) queueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

func TestQueueFullSheds(t *testing.T) {
	l := New(Config{Initial: 1, Min: 1, Max: 1, MaxQueue: 1})
	tk := mustAcquire(t, l, Expensive)
	done := make(chan error, 1)
	go func() {
		w, err := l.Acquire(context.Background(), Expensive)
		if err == nil {
			l.Release(w)
		}
		done <- err
	}()
	deadline := time.Now().Add(time.Second)
	for l.queueLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Acquire(context.Background(), Expensive); !errors.Is(err, ErrShed) {
		t.Fatalf("queue-full expensive: err = %v, want ErrShed", err)
	}
	l.Release(tk)
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestQueuedWaiterHonorsContext(t *testing.T) {
	l := New(Config{Initial: 1, Min: 1, Max: 1, MaxQueue: 4})
	tk := mustAcquire(t, l, Expensive)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx, Expensive); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire after ctx expiry: err = %v, want DeadlineExceeded", err)
	}
	l.Release(tk)
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after abandoned waiter = %d, want 0 (slot leaked)", got)
	}
	// The slot must still be usable.
	l.Release(mustAcquire(t, l, Expensive))
}

func TestExpiredContextFailsFast(t *testing.T) {
	l := New(Config{Initial: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Acquire(ctx, Expensive); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire with cancelled ctx: err = %v, want Canceled", err)
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

func TestAIMDDecreaseOnSlowWindow(t *testing.T) {
	l := New(Config{Initial: 100, Min: 2, Max: 200, Window: 4, TargetP99: time.Millisecond})
	// Four slow completions: backdate ticket start times so the window
	// p99 far exceeds the 1ms target. The decrease is proportional to
	// the overshoot but clamped at halving, and an overshoot this large
	// (1s vs 1ms) hits the clamp.
	for i := 0; i < 4; i++ {
		tk := mustAcquire(t, l, Expensive)
		tk.start = time.Now().Add(-time.Second)
		l.Release(tk)
	}
	if got := l.Limit(); got != 50 {
		t.Fatalf("limit after slow window = %d, want 50 (100 × 0.5 clamp)", got)
	}
}

func TestAIMDDecreaseProportional(t *testing.T) {
	// A mild overshoot decreases gently, not by the 0.5 clamp: 180ms
	// observations land in the (100ms, 200ms] bucket, whose 200ms upper
	// bound against a 150ms target scales the limit by 150/200 = 0.75.
	l := New(Config{Initial: 100, Min: 2, Max: 200, Window: 4, TargetP99: 150 * time.Millisecond})
	for i := 0; i < 4; i++ {
		tk := mustAcquire(t, l, Expensive)
		tk.start = time.Now().Add(-180 * time.Millisecond)
		l.Release(tk)
	}
	if got := l.Limit(); got < 70 || got > 80 {
		t.Fatalf("limit after mild overshoot = %d, want ≈ 75 (100 × 150ms/200ms)", got)
	}
}

func TestAIMDIncreaseOnFastWindow(t *testing.T) {
	l := New(Config{Initial: 10, Min: 2, Max: 200, Window: 4, TargetP99: time.Hour})
	for i := 0; i < 4; i++ {
		l.Release(mustAcquire(t, l, Expensive))
	}
	if got := l.Limit(); got != 11 {
		t.Fatalf("limit after fast window = %d, want 11 (10 + 1)", got)
	}
}

func TestAIMDClamps(t *testing.T) {
	l := New(Config{Initial: 2, Min: 2, Max: 3, Window: 1, TargetP99: time.Millisecond})
	tk := mustAcquire(t, l, Expensive)
	tk.start = time.Now().Add(-time.Second)
	l.Release(tk)
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit decreased below Min: %d, want 2", got)
	}
	fast := New(Config{Initial: 3, Min: 2, Max: 3, Window: 1, TargetP99: time.Hour})
	fast.Release(mustAcquire(t, fast, Expensive))
	if got := fast.Limit(); got != 3 {
		t.Fatalf("limit increased above Max: %d, want 3", got)
	}
}

func TestCheapCompletionsDoNotFeedController(t *testing.T) {
	l := New(Config{Initial: 10, Min: 2, Max: 200, Window: 2, TargetP99: time.Hour})
	// Many cheap completions never fill the expensive window.
	for i := 0; i < 10; i++ {
		l.Release(mustAcquire(t, l, Cheap))
	}
	if got := l.Limit(); got != 10 {
		t.Fatalf("limit moved on cheap-only traffic: %d, want 10", got)
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	l := New(Config{Initial: 4, Min: 2, Max: 8, Window: 16, MaxQueue: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				class := Expensive
				if (g+i)%3 == 0 {
					class = Cheap
				}
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				tk, err := l.Acquire(ctx, class)
				if err == nil && tk != nil {
					l.Release(tk)
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after churn = %d, want 0", got)
	}
}

func TestRetryBudgetDrainsAndRefills(t *testing.T) {
	b := NewRetryBudget(0.5)
	allowed := 0
	for b.Allow() {
		allowed++
		if allowed > 100 {
			t.Fatal("budget never drained")
		}
	}
	if allowed != 10 {
		t.Fatalf("initial budget allowed %d retries, want 10", allowed)
	}
	b.Earn()
	b.Earn() // 2 × 0.5 = 1 token
	if !b.Allow() {
		t.Fatal("budget should allow one retry after two successes")
	}
	if b.Allow() {
		t.Fatal("budget should be empty again")
	}
	var nilB *RetryBudget
	if !nilB.Allow() {
		t.Fatal("nil budget must always allow")
	}
	nilB.Earn() // must not panic
}

func TestBreakerTripsAndHalfOpens(t *testing.T) {
	b := NewBreaker(3, 30*time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.Report(true)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after %d failures: err = %v, want ErrCircuitOpen", 3, err)
	}
	time.Sleep(40 * time.Millisecond)
	// Half-open: exactly one probe passes, concurrent calls still refused.
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second call during probe: err = %v, want ErrCircuitOpen", err)
	}
	b.Report(false) // probe succeeded -> closed
	if err := b.Allow(); err != nil {
		t.Fatalf("breaker should be closed after successful probe: %v", err)
	}
	b.Report(false)
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(1, 30*time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(true) // trips immediately (threshold 1)
	time.Sleep(40 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	b.Report(true) // probe failed -> re-open
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after failed probe: err = %v, want ErrCircuitOpen", err)
	}
	var nilBr *Breaker
	if err := nilBr.Allow(); err != nil {
		t.Fatal("nil breaker must always allow")
	}
	nilBr.Report(true) // must not panic
}
